// Extension (the paper's second future-work direction, §VI): automatic
// asymmetry diagnosis. The iomodel's two sweeps around the device node
// give both directions of every path touching it; scanning the resulting
// matrix pinpoints the directed pairs behind §IV-A's anomalies — without
// knowing the wiring and without touching a device.
#include <cstdio>

#include "bench/common.h"
#include "mem/membench.h"
#include "model/asymmetry.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();

  bench::banner("Directional asymmetries around node 7 (iomodel matrix)");
  const auto m = model::iomodel_matrix(tb.host(), 7);
  for (const auto& line :
       model::describe(model::find_asymmetric_pairs(m, 1.15))) {
    std::printf("  %s\n", line.c_str());
  }

  bench::banner("Directional asymmetries in the STREAM (PIO) matrix");
  const auto bw = mem::stream_matrix(tb.host(), mem::StreamConfig{});
  const auto pairs = model::find_asymmetric_pairs(bw, 1.10);
  std::printf("  %zu PIO pairs above 1.10x; top finds:\n", pairs.size());
  int shown = 0;
  for (const auto& line : model::describe(pairs)) {
    std::printf("  %s\n", line.c_str());
    if (++shown == 5) break;
  }
  bench::note("");
  bench::note("the DMA-side finds ({2,3}<->{6,7}, {6,7}->4) are the paths");
  bench::note("behind Tables IV/V's weak classes; the PIO-side finds are");
  bench::note("Fig 3's 21.34-vs-18.45 anomaly and friends (§IV-A).");
  return 0;
}
