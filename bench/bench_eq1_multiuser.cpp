// Equation 1 validation (§V-B): multi-user aggregate-bandwidth prediction.
// Paper scenario: 2 RDMA_READ processes on node 2 (class 2) + 2 on node 0
// (class 3). Predicted 20.017 Gbps vs measured 19.415 Gbps: 3.1% error.
// We regenerate the full workflow: classify via memcpy model, probe one
// representative node per class, predict, then run the mixed workload.
#include <cstdio>

#include "bench/common.h"
#include "model/classify.h"
#include "model/predictor.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  bench::banner("Eq. 1: multi-user aggregate bandwidth prediction");

  const auto m =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceRead);
  const auto classes = model::classify(m, tb.machine().topology());

  // Cost-reduced characterization: one RDMA_READ probe per class.
  std::vector<double> class_values;
  for (topo::NodeId rep : model::representative_nodes(classes)) {
    class_values.push_back(bench::run_engine(tb, io::kRdmaRead, rep, 4));
  }
  std::printf("  probed class values (Gbps):");
  for (double v : class_values) std::printf(" %.3f", v);
  std::printf("\n");

  const std::vector<std::pair<topo::NodeId, int>> bindings{{2, 2}, {0, 2}};
  const double predicted =
      model::predict_for_bindings(classes, class_values, bindings);

  io::FioRunner fio(tb.host());
  io::FioJob a;
  a.devices = {&tb.nic()};
  a.engine = io::kRdmaRead;
  a.cpu_node = 2;
  a.num_streams = 2;
  io::FioJob b = a;
  b.cpu_node = 0;
  const double measured = io::combined_aggregate(fio.run_concurrent({a, b}));
  const double eps = model::relative_error(predicted, measured);

  std::printf("\n  %-22s %10s %10s\n", "", "paper", "measured");
  std::printf("  %-22s %10.3f %10.3f\n", "predicted (Eq. 1)", 20.017,
              predicted);
  std::printf("  %-22s %10.3f %10.3f\n", "mixed-run aggregate", 19.415,
              measured);
  std::printf("  %-22s %9.1f%% %9.1f%%\n", "relative error", 3.1,
              eps * 100.0);
  return 0;
}
