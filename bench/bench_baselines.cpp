// Baseline shoot-out: the hop-distance model (what "most current
// performance models" use, §I-A), the STREAM-derived models (Fig 4), and
// the proposed memcpy model, all scored against measured I/O on the same
// footing.
#include <cstdio>

#include "bench/common.h"
#include "mem/membench.h"
#include "model/analysis.h"
#include "model/baselines.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();

  const auto bw = mem::stream_matrix(tb.host(), mem::StreamConfig{});
  const model::HopModel hop =
      model::fit_hop_model(bw, tb.machine().topology());

  bench::banner("Fitted hop-distance model (from the STREAM matrix)");
  for (std::size_t h = 0; h < hop.level.size(); ++h) {
    std::printf("  %zu hop(s): %.2f Gbps\n", h, hop.level[h]);
  }
  bench::note("one level per hop count: all the structure the metric has.");

  const auto hop_pred =
      model::predict_for_target(hop, tb.machine().topology(), 7);
  const auto cpu_model =
      mem::cpu_centric(tb.host(), 7, mem::StreamConfig{});
  const auto mem_model =
      mem::memory_centric(tb.host(), 7, mem::StreamConfig{});
  const auto wmodel =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceWrite);
  const auto rmodel =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceRead);

  bench::banner("Spearman vs measured I/O: every candidate model");
  std::printf("  %-12s %10s %10s %12s %12s\n", "engine", "proposed",
              "hop-dist", "CPU-centric", "mem-centric");
  const struct {
    const char* engine;
    const std::vector<double>* proposed;
  } cases[] = {{io::kRdmaWrite, &wmodel.bw}, {io::kSsdWrite, &wmodel.bw},
               {io::kRdmaRead, &rmodel.bw},  {io::kSsdRead, &rmodel.bw}};
  for (const auto& c : cases) {
    const auto io = bench::sweep_nodes(tb, c.engine, 4);
    std::printf("  %-12s %10.2f %10.2f %12.2f %12.2f\n", c.engine,
                model::spearman(*c.proposed, io),
                model::spearman(hop_pred, io),
                model::spearman(cpu_model, io),
                model::spearman(mem_model, io));
  }

  bench::banner("Class-structure agreement with the device-read model");
  const auto read_classes =
      model::classify(rmodel, tb.machine().topology());
  const auto hop_classes =
      model::classify_by_hops(tb.machine().topology(), 7);
  std::printf("  hop classes vs model classes: %.0f%% of node-pair "
              "orderings agree\n",
              model::class_agreement(read_classes, hop_classes) * 100.0);
  bench::note("");
  bench::note("the proposed model wins on every engine; hop distance is");
  bench::note("competitive only where the fabric happens to be regular.");
  return 0;
}
