// Figure 1: the four possible 4P Magny-Cours interconnect layouts.
// For each variant: the wiring, node-7 hop distances (the paper's worked
// example for layout (a)), diameter and mean remote hops.
#include <cstdio>

#include "bench/common.h"
#include "nm/hwloc_view.h"
#include "topo/presets.h"
#include "topo/routing.h"

int main() {
  using namespace numaio;
  bench::banner("Figure 1: possible topologies of 4P Magny-Cours");
  for (char variant : {'a', 'b', 'c', 'd'}) {
    const topo::Topology t = topo::magny_cours_4p(variant);
    const topo::Routing r(t, topo::Routing::Metric::kHops);
    std::printf("\n-- variant (%c): %s --\n", variant, t.name().c_str());
    std::printf("%s", nm::render_interconnect(t).c_str());
    std::printf("  hop distances from node 7:");
    for (topo::NodeId d = 0; d < t.num_nodes(); ++d) {
      std::printf(" %d", r.hop_distance(7, d));
    }
    std::printf("\n  diameter %d, mean remote hops %.3f\n", r.diameter(),
                r.mean_remote_hops());
  }
  bench::note("");
  bench::note("paper example, layout (a): node 7 is neighbor to 6, one hop");
  bench::note("from {0,2,4}, two hops from {1,3,5} -- see the first row.");
  return 0;
}
