// Table V: NUMA I/O bandwidth performance model for DEVICE READ (Gbps).
// Classes from the proposed memcpy model, with the measured TCP-receive,
// RDMA_READ and SSD-read rows summarized per class.
// Paper averages per class {6,7}/{2,3}/{0,1,5}/{4}:
//   memcpy 49.1/48.6/40.4/27.9, TCP 21.2/20.0/20.6/14.4,
//   RDMA_READ 22.0/22.0/18.3/16.1, SSD read 34.7/33.1/30.1/18.5.
#include <cstdio>

#include "bench/common.h"
#include "model/classify.h"
#include "model/report.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  bench::banner("Table V: device-read performance model (Gbps)");

  const auto m =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceRead);
  const auto classes = model::classify(m, tb.machine().topology());

  std::vector<model::MeasuredRow> rows;
  rows.push_back({"TCP receiver", bench::sweep_nodes(tb, io::kTcpRecv, 4)});
  rows.push_back({"RDMA_READ", bench::sweep_nodes(tb, io::kRdmaRead, 4)});
  rows.push_back({"SSD read", bench::sweep_nodes(tb, io::kSsdRead, 4)});

  std::printf("%s",
              model::format_class_table(classes, "Proposed memcpy", m.bw,
                                        rows)
                  .c_str());
  bench::note("");
  bench::note("paper avgs: memcpy 49.1/48.6/40.4/27.9  TCP 21.2/20.0/20.6/14.4");
  bench::note("            RDMA_R 22.0/22.0/18.3/16.1  SSD_r 34.7/33.1/30.1/18.5");
  return 0;
}
