// Ablation: "for I/O devices with higher maximum bandwidth, a larger
// performance drop is observed if the placement is not aligned" ([5],
// cited in §I). We build synthetic devices with growing ceilings and a
// fixed DMA window, and measure the best-vs-worst binding drop; then the
// converse: growing windows rescue a fast device from NUMA sensitivity.
#include <cstdio>

#include "bench/common.h"

namespace {

numaio::io::EngineSpec synth_engine(double cap, double window_bits) {
  numaio::io::EngineSpec e;
  e.name = "synth";
  e.to_device = true;
  e.device_cap = cap;
  e.window_bits = window_bits;
  return e;
}

}  // namespace

int main() {
  using namespace numaio;
  bench::banner("Ablation: device ceiling vs NUMA drop (device write)");

  std::printf("  %-14s %10s %10s %10s\n", "ceiling Gbps", "best bind",
              "worst bind", "drop");
  for (double cap : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0}) {
    fabric::Machine machine{fabric::dl585_profile()};
    nm::Host host{machine};
    io::PcieDevice device(machine, "synth", 7, io::PcieLink{},
                          {synth_engine(cap, 17100.0)});
    io::FioRunner fio(host);
    double best = 0.0, worst = 1e9;
    for (topo::NodeId node = 0; node < 8; ++node) {
      io::FioJob j;
      j.devices = {&device};
      j.engine = "synth";
      j.cpu_node = node;
      j.num_streams = 4;
      const double agg = fio.run(j).aggregate;
      best = std::max(best, agg);
      worst = std::min(worst, agg);
    }
    std::printf("  %-14.1f %10.2f %10.2f %9.1f%%\n", cap, best, worst,
                (best - worst) / best * 100.0);
  }
  bench::note("");
  bench::note("slow devices hide the fabric: every binding reaches the");
  bench::note("ceiling. fast devices expose the window-limited weak paths");
  bench::note("-- reproducing [5]'s observation.");

  bench::banner("Ablation: DMA window depth vs NUMA drop (25 Gbps device)");
  std::printf("  %-14s %10s %10s %10s\n", "window bits", "best bind",
              "worst bind", "drop");
  for (double window : {8000.0, 12000.0, 17100.0, 26000.0, 40000.0}) {
    fabric::Machine machine{fabric::dl585_profile()};
    nm::Host host{machine};
    io::PcieDevice device(machine, "synth", 7, io::PcieLink{},
                          {synth_engine(25.0, window)});
    io::FioRunner fio(host);
    double best = 0.0, worst = 1e9;
    for (topo::NodeId node = 0; node < 8; ++node) {
      io::FioJob j;
      j.devices = {&device};
      j.engine = "synth";
      j.cpu_node = node;
      j.num_streams = 4;
      const double agg = fio.run(j).aggregate;
      best = std::max(best, agg);
      worst = std::min(worst, agg);
    }
    std::printf("  %-14.0f %10.2f %10.2f %9.1f%%\n", window, best, worst,
                (best - worst) / best * 100.0);
  }
  bench::note("deeper windows amortize path latency: the engineering lever");
  bench::note("behind RDMA_READ's stability on {2,3} vs its 18.3 on {0,1,5}.");
  return 0;
}
