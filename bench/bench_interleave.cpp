// Extension: buffer interleaving as a placement-free mitigation. When a
// task cannot be rebound (§V-B's scheduler assumes it can), interleaving
// its buffers spreads the DMA traffic over the classes, lifting the worst
// bindings toward the mean at the cost of the best ones.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  io::FioRunner fio(tb.host());

  for (const char* engine : {io::kRdmaRead, io::kSsdWrite}) {
    bench::banner(std::string("Buffer policy vs binding: ") + engine +
                  " (Gbps)");
    std::printf("  %-10s %12s %14s %14s\n", "binding", "local bufs",
                "interleave all", "membind best");
    const bool is_ssd = std::string(engine).rfind("ssd", 0) == 0;
    for (topo::NodeId node = 0; node < 8; ++node) {
      io::FioJob j;
      j.devices = is_ssd ? tb.ssds()
                         : std::vector<const io::PcieDevice*>{&tb.nic()};
      j.engine = engine;
      j.cpu_node = node;
      j.num_streams = 4;
      const double local = fio.run(j).aggregate;
      j.mem_policy = nm::parse_numactl("--interleave=0-7");
      const double spread = fio.run(j).aggregate;
      j.mem_policy = nm::parse_numactl("--membind=6");
      const double best = fio.run(j).aggregate;
      std::printf("  node%-6d %12.2f %14.2f %14.2f\n", node, local, spread,
                  best);
    }
  }
  bench::note("");
  bench::note("interleaving flattens the class structure (worst bindings");
  bench::note("rise, best fall toward the harmonic mean); an explicit");
  bench::note("membind to a class-1 node recovers the full rate without");
  bench::note("moving the process.");
  return 0;
}
