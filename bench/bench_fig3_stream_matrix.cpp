// Figure 3: the 8x8 STREAM-Copy bandwidth matrix of the DL585 host
// (CPUn = threads on node n, MEMn = arrays on node n; best of 100 runs).
// Published anchors: cpu7/mem4 = 21.34 Gbps (above cpu7/mem{2,3});
// cpu4/mem7 = 18.45 Gbps (below cpu{2,3}/mem7); node 0's local binding
// beats every other local binding (OS residency).
#include <cstdio>

#include "bench/common.h"
#include "mem/membench.h"
#include "model/report.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  bench::banner("Figure 3: STREAM Copy bandwidth matrix (Gbps)");

  const mem::BandwidthMatrix m =
      mem::stream_matrix(tb.host(), mem::StreamConfig{});
  std::printf("%s", model::format_matrix(m).c_str());
  std::printf("\n%s", model::format_heatmap(m).c_str());

  std::printf("\n  anchors:            paper   measured\n");
  std::printf("  cpu7 / mem4         21.34   %8.2f\n", m.at(7, 4));
  std::printf("  cpu4 / mem7         18.45   %8.2f\n", m.at(4, 7));
  std::printf("  cpu7 / mem2         <21.34  %8.2f\n", m.at(7, 2));
  std::printf("  cpu2 / mem7         >18.45  %8.2f\n", m.at(2, 7));
  std::printf("  node0 local (best)  ~max    %8.2f\n", m.at(0, 0));
  bench::note("");
  bench::note("the matrix is asymmetric: no hop-distance metric explains it");
  return 0;
}
