// google-benchmark microbenchmarks of the toolkit itself: solver and
// fluid-simulation cost, full-characterization cost, and the §V-A point
// that the memcpy model is far cheaper than exhaustive I/O benchmarking.
#include <benchmark/benchmark.h>

#include "simcore/fluid_sim.h"

#include "io/testbed.h"
#include "mem/membench.h"
#include "model/classify.h"
#include "model/iomodel.h"

namespace {

using namespace numaio;

void BM_FlowSolverSolve(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  sim::FlowSolver solver;
  std::vector<sim::ResourceId> links;
  for (int i = 0; i < 16; ++i) {
    links.push_back(solver.add_resource("link", 40.0));
  }
  for (std::size_t f = 0; f < flows; ++f) {
    solver.add_flow_over({links[f % 16], links[(f + 5) % 16]}, 9.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flows));
}
BENCHMARK(BM_FlowSolverSolve)->Arg(8)->Arg(64)->Arg(512);

void BM_FluidSimulationRun(benchmark::State& state) {
  const int transfers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::FlowSolver solver;
    const auto link = solver.add_resource("link", 40.0);
    sim::FluidSimulation fluid(solver);
    for (int i = 0; i < transfers; ++i) {
      fluid.start_transfer({{link, 1.0}},
                           sim::kMiB * static_cast<sim::Bytes>(i + 1));
    }
    benchmark::DoNotOptimize(fluid.run());
  }
}
BENCHMARK(BM_FluidSimulationRun)->Arg(4)->Arg(32)->Arg(128);

void BM_IoModelAlgorithm1(benchmark::State& state) {
  fabric::Machine machine{fabric::dl585_profile()};
  nm::Host host{machine};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::build_iomodel(host, 7, model::Direction::kDeviceWrite));
  }
}
BENCHMARK(BM_IoModelAlgorithm1);

void BM_StreamMatrixFullCharacterization(benchmark::State& state) {
  fabric::Machine machine{fabric::dl585_profile()};
  nm::Host host{machine};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem::stream_matrix(host, mem::StreamConfig{}));
  }
}
BENCHMARK(BM_StreamMatrixFullCharacterization);

void BM_FioFourStreamRun(benchmark::State& state) {
  io::Testbed tb = io::Testbed::dl585();
  io::FioRunner fio(tb.host());
  io::FioJob j;
  j.devices = {&tb.nic()};
  j.engine = io::kRdmaRead;
  j.cpu_node = 0;
  j.num_streams = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fio.run(j));
  }
}
BENCHMARK(BM_FioFourStreamRun);

void BM_ClassifyEightNodes(benchmark::State& state) {
  fabric::Machine machine{fabric::dl585_profile()};
  nm::Host host{machine};
  const auto m = model::build_iomodel(host, 7, model::Direction::kDeviceRead);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::classify(m, machine.topology()));
  }
}
BENCHMARK(BM_ClassifyEightNodes);

}  // namespace

BENCHMARK_MAIN();
