// Figure 4: STREAM-derived bandwidth models of node 7.
//   (a) CPU centric:    benchmark on node 7, data on node i
//   (b) memory centric: data on node 7, benchmark on node i
// §IV-B2 quotes these models ranking {0,1} above {2,3} by 43%-88% —
// the ordering RDMA_READ later inverts.
#include <cstdio>

#include "bench/common.h"
#include "mem/membench.h"
#include "model/report.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  bench::banner("Figure 4: CPU-centric and memory-centric models of node 7");

  const auto cpu = mem::cpu_centric(tb.host(), 7, mem::StreamConfig{});
  const auto mem = mem::memory_centric(tb.host(), 7, mem::StreamConfig{});
  bench::print_node_header(8);
  bench::print_series("CPU centric", cpu);
  bench::print_series("mem centric", mem);

  const double cpu_ratio = (cpu[0] + cpu[1]) / (cpu[2] + cpu[3]);
  const double mem_ratio = (mem[0] + mem[1]) / (mem[2] + mem[3]);
  std::printf("\n  {0,1} over {2,3}:   paper      measured\n");
  std::printf("  CPU centric         +88%%       %+.0f%%\n",
              (cpu_ratio - 1.0) * 100.0);
  std::printf("  memory centric      +43%%       %+.0f%%\n",
              (mem_ratio - 1.0) * 100.0);
  return 0;
}
