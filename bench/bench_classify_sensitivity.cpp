// Ablation: how robust are the Table IV/V class partitions to the
// clustering threshold? The gap-based classifier has one knob (the
// relative gap that opens a new class); this bench sweeps it and reports
// the class count and partition for both directions of node 7. The
// paper's partitions occupy a wide plateau — the classes are real
// structure, not a tuning artifact.
#include <cstdio>

#include "bench/common.h"
#include "model/classify.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();

  const auto wm =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceWrite);
  const auto rm =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceRead);

  bench::banner("Classifier threshold sweep (node 7)");
  std::printf("  %-10s %-34s %-34s\n", "rel_gap", "write classes",
              "read classes");
  for (double gap : {0.01, 0.02, 0.04, 0.06, 0.08, 0.12, 0.20, 0.35}) {
    model::ClassifyConfig config;
    config.rel_gap = gap;
    auto render = [&](const model::IoModelResult& m) {
      const auto c = model::classify(m, tb.machine().topology(), config);
      std::string out;
      for (const auto& cls : c.classes) {
        out += '{';
        for (topo::NodeId v : cls) out += static_cast<char>('0' + v);
        out += '}';
      }
      return out;
    };
    std::printf("  %-10.2f %-34s %-34s\n", gap, render(wm).c_str(),
                render(rm).c_str());
  }
  bench::note("");
  bench::note("the paper's partitions ({67}{0145}{23} and {67}{23}{015}{4})");
  bench::note("hold across roughly a 4x range of thresholds.");
  return 0;
}
