// Figure 10: the proposed methodology's bandwidth model of node 7 —
// Algorithm 1's device-write and device-read memcpy models, without
// touching any I/O device. Published class values:
//   write: {6,7} avg 51.2 / {0,1,4,5} avg 44.5 / {2,3} avg 26.6
//   read:  {6,7} avg 49.1 / {2,3} avg 48.6 / {0,1,5} avg 40.4 / {4} 27.9
#include <cstdio>

#include "bench/common.h"
#include "model/classify.h"
#include "model/report.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  bench::banner("Figure 10: proposed memcpy model of node 7 (Gbps)");

  const auto write =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceWrite);
  const auto read =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceRead);
  bench::print_node_header(8);
  bench::print_series("device write", write.bw);
  bench::print_series("device read", read.bw);

  for (const auto* m : {&write, &read}) {
    const auto classes = model::classify(*m, tb.machine().topology());
    std::printf("\n  %s classes:",
                m->direction == model::Direction::kDeviceWrite ? "write"
                                                               : "read");
    for (int c = 0; c < classes.num_classes(); ++c) {
      std::printf("  class%d {", c + 1);
      for (topo::NodeId v : classes.classes[static_cast<std::size_t>(c)]) {
        std::printf("%d", v);
      }
      std::printf("} avg %.1f", classes.class_avg[static_cast<std::size_t>(c)]);
    }
    std::printf("\n");
  }
  bench::note("");
  bench::note("paper: write {67}/{0145}/{23}, read {67}/{23}/{015}/{4}");
  return 0;
}
