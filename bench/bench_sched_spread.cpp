// §V-B scheduling application: with the model's classes, spread I/O
// processes over the near-equal classes instead of piling them on the
// device-local node. The paper's example uses RDMA_WRITE (class 1 ~ 23.3,
// class 2 ~ 23.2: "almost identical"), pooling classes 1+2. We compare the
// naive all-on-node-7 placement against the model-assisted spread for both
// RDMA_WRITE and TCP send (where CPU contention makes the gap larger).
#include <cstdio>

#include "bench/common.h"
#include "model/classify.h"
#include "model/scheduler.h"

namespace {

double run_placement(numaio::io::Testbed& tb, const std::string& engine,
                     const numaio::model::Placement& placement) {
  numaio::io::FioRunner fio(tb.host());
  std::vector<numaio::io::FioJob> jobs;
  for (numaio::topo::NodeId node : placement.nodes) {
    numaio::io::FioJob j;
    j.devices = {&tb.nic()};
    j.engine = engine;
    j.cpu_node = node;
    j.num_streams = 1;
    jobs.push_back(j);
  }
  return numaio::io::combined_aggregate(fio.run_concurrent(jobs));
}

}  // namespace

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  bench::banner("Model-assisted scheduling: spread vs all-local (Gbps)");

  const auto m =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceWrite);
  const auto classes = model::classify(m, tb.machine().topology());

  std::printf("  %-12s %12s %12s %9s\n", "engine", "all-on-7", "spread",
              "gain");
  for (const char* engine : {io::kRdmaWrite, io::kTcpSend}) {
    std::vector<double> class_values;
    for (topo::NodeId rep : model::representative_nodes(classes)) {
      class_values.push_back(bench::run_engine(tb, engine, rep, 4));
    }
    const model::Placement spread =
        model::schedule_spread(classes, class_values, 6);
    const model::Placement local = model::schedule_all_local(7, 6);
    const double agg_spread = run_placement(tb, engine, spread);
    const double agg_local = run_placement(tb, engine, local);
    std::printf("  %-12s %12.2f %12.2f %8.1f%%\n", engine, agg_local,
                agg_spread, (agg_spread / agg_local - 1.0) * 100.0);
    std::printf("    spread nodes:");
    for (topo::NodeId n : spread.nodes) std::printf(" %d", n);
    std::printf("\n");
  }
  bench::note("");
  bench::note("paper: pool classes whose probed performance is ~identical");
  bench::note("(RDMA_WRITE classes 1+2), avoiding device-node contention.");
  return 0;
}
