// Tables II & III: testbed and network-test configuration. These tables
// define the experimental setup rather than results; this bench prints
// the paper's values next to what the simulated rig is actually built
// with, so configuration drift is impossible to miss.
#include <cstdio>

#include "bench/common.h"
#include "nm/slit.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  const auto& topo = tb.machine().topology();

  bench::banner("Table II: configuration of the AMD 4P server");
  double mem_gb = 0.0;
  for (const auto& n : topo.nodes()) mem_gb += n.memory_gb;
  std::printf("  %-28s %-26s %s\n", "item", "paper", "this rig");
  std::printf("  %-28s %-26s %s\n", "Motherboard", "HP ProLiant DL585 Gen 7",
              topo.name().c_str());
  std::printf("  %-28s %-26s %d/%d\n", "CPU cores/NUMA nodes", "32/8",
              topo.total_cores(), topo.num_nodes());
  std::printf("  %-28s %-26s %.0f GB\n", "Memory", "32GB", mem_gb);
  std::printf("  %-28s %-26s %.0f MB\n", "Last level cache", "5 MBytes",
              tb.machine().profile().llc_mb);
  std::printf("  %-28s %-26s gen%d x%d (%.0f Gbps data)\n", "I/O bus",
              "PCIe Gen 2 x8", tb.nic().pcie().gen, tb.nic().pcie().lanes,
              tb.nic().pcie().data_gbps());
  std::printf("  %-28s %-26s %s on node %d\n", "Network interface",
              "ConnectX-3 EN 40GbE", tb.nic().name().c_str(),
              tb.nic().attach_node());
  std::printf("  %-28s %-26s %zu cards on node %d\n", "SSD drive",
              "2x LSI Nytro WLP4-200", tb.ssds().size(),
              tb.ssds().front()->attach_node());

  bench::banner("Table III: network I/O test parameters");
  const io::FioJob defaults{};
  std::printf("  %-38s %-12s %s\n", "parameter", "paper", "this rig");
  std::printf("  %-38s %-12s %s\n", "Data size per test process",
              "400 GBytes",
              sim::format_bytes(defaults.bytes_per_stream).c_str());
  std::printf("  %-38s %-12s %s\n", "I/O block size", "128 KBytes",
              sim::format_bytes(defaults.block_size).c_str());
  std::printf("  %-38s %-12s %.0f us network RTT\n",
              "Round trip time (ping)", "0.005 ms",
              tb.nic().engine(io::kTcpSend).stream_extra_rtt_ns / 1000.0);
  std::printf("  %-38s %-12s iodepth %d, IRQs on node %d\n",
              "libaio depth / IRQ steering", "16 / local", defaults.iodepth,
              tb.nic().irq_node());

  bench::banner("Firmware SLIT (what numactl --hardware would print)");
  std::printf("%s", nm::render_slit(nm::slit_table(topo)).c_str());
  bench::note("the SLIT is hop-derived and symmetric; §II-B/[18] call such");
  bench::note("distances 'often inaccurate' -- see bench_hopdist_failure.");
  return 0;
}
