// Extension (the paper's future work, §VI): online placement and
// migration of arriving I/O tasks. A mixed open-loop workload runs under
// four policies; model-aware placement cuts turnaround, and chunk-level
// migration squeezes a little more out of load imbalances.
#include <cstdio>

#include "bench/common.h"
#include "model/classify.h"
#include "model/online.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();

  const auto wm =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceWrite);
  const auto rm =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceRead);
  const auto wc = model::classify(wm, tb.machine().topology());
  const auto rc = model::classify(rm, tb.machine().topology());

  model::WorkloadConfig wl;
  wl.num_tasks = 48;
  wl.engine_mix = {io::kRdmaWrite, io::kRdmaRead, io::kTcpSend,
                   io::kTcpRecv};
  const auto tasks = model::generate_workload(wl);

  bench::banner("Online placement policies, 48 mixed tasks (means)");
  std::printf("  %-16s %14s %12s %12s\n", "policy", "turnaround s",
              "agg Gbps", "migrations");
  for (model::OnlinePolicy policy :
       {model::OnlinePolicy::kAllLocal, model::OnlinePolicy::kRoundRobin,
        model::OnlinePolicy::kModelSpread,
        model::OnlinePolicy::kModelAdaptive}) {
    model::OnlineConfig config;
    config.policy = policy;
    model::OnlineScheduler scheduler(tb.host(), tb.nic(), wc, rc, config);
    const auto report = scheduler.run(tasks);
    std::printf("  %-16s %14.2f %12.2f %12d\n",
                model::to_string(policy).c_str(),
                report.mean_turnaround / 1e9, report.aggregate,
                report.total_migrations);
  }

  bench::banner("Migration cost sensitivity (model-adaptive)");
  std::printf("  %-16s %14s %12s\n", "cost per move", "turnaround s",
              "migrations");
  for (double cost : {0.0, 2.0e6, 5.0e7, 5.0e8}) {
    model::OnlineConfig config;
    config.policy = model::OnlinePolicy::kModelAdaptive;
    config.migration_cost = cost;
    model::OnlineScheduler scheduler(tb.host(), tb.nic(), wc, rc, config);
    const auto report = scheduler.run(tasks);
    std::printf("  %13.0f ms %14.2f %12d\n", cost / 1e6,
                report.mean_turnaround / 1e9, report.total_migrations);
  }
  bench::note("");
  bench::note("all-local serializes everything behind node 7's CPUs and");
  bench::note("queues; model-aware policies spread across the near-equal");
  bench::note("classes exactly as §V-B prescribes.");
  return 0;
}
