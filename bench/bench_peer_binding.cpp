// Extension: sender x receiver binding grid for TCP across the host pair.
// The paper's Fig 5 varies one side at a time; [3] (cited in §I) reports
// that placement on remote cores at *either* end can cost ~30% of TCP
// bandwidth. The grid shows both effects and their composition: the
// transfer runs at the minimum of what each side's binding supports.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  io::FioRunner fio(tb.host());

  bench::banner("TCP send: local binding x peer (receiver) binding (Gbps)");
  std::printf("  %-10s", "send\\recv");
  for (int peer = 0; peer < 8; ++peer) std::printf("   peer%d", peer);
  std::printf("\n");
  double diag_best = 0.0, grid_worst = 1e9;
  for (topo::NodeId node = 0; node < 8; ++node) {
    std::printf("  node%-6d", node);
    for (int peer = 0; peer < 8; ++peer) {
      io::FioJob j;
      j.devices = {&tb.nic()};
      j.engine = io::kTcpSend;
      j.cpu_node = node;
      j.num_streams = 4;
      j.peer_node = peer;
      const double agg = fio.run(j).aggregate;
      diag_best = std::max(diag_best, agg);
      grid_worst = std::min(grid_worst, agg);
      std::printf(" %7.2f", agg);
    }
    std::printf("\n");
  }
  std::printf("\n  best %.2f, worst %.2f: worst-case loss %.0f%% "
              "(paper cites ~30%% for one bad end)\n",
              diag_best, grid_worst,
              (diag_best - grid_worst) / diag_best * 100.0);
  bench::note("rows show the send-side classes; columns overlay the");
  bench::note("receive-side classes of the identical peer host.");
  return 0;
}
