// Generalization check (§V-B): "The methodology used to model the
// performance of node 7 can also be generalized to other nodes in the
// host." The DL585 carries a second I/O hub on node 1; this bench moves
// the whole device complement there, re-runs Algorithm 1 and the fio
// sweeps, and verifies the new model's classes track the new measurements.
#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "model/analysis.h"
#include "model/classify.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585_with_devices_on(1);
  bench::banner("Devices rehomed to node 1 (the second I/O hub)");

  const auto wm =
      model::build_iomodel(tb.host(), 1, model::Direction::kDeviceWrite);
  const auto rm =
      model::build_iomodel(tb.host(), 1, model::Direction::kDeviceRead);
  bench::print_node_header(8);
  bench::print_series("write model", wm.bw);
  bench::print_series("read model", rm.bw);

  for (const auto* m : {&wm, &rm}) {
    const auto classes = model::classify(*m, tb.machine().topology());
    std::printf("  %s classes:",
                m->direction == model::Direction::kDeviceWrite ? "write"
                                                               : "read ");
    for (int c = 0; c < classes.num_classes(); ++c) {
      std::printf("  {");
      for (topo::NodeId v : classes.classes[static_cast<std::size_t>(c)]) {
        std::printf("%d", v);
      }
      std::printf("} %.1f", classes.class_avg[static_cast<std::size_t>(c)]);
    }
    std::printf("\n");
  }

  bench::banner("fio sweeps against the node-1 devices (4 streams, Gbps)");
  bench::print_node_header(8);
  for (const char* engine :
       {io::kRdmaWrite, io::kRdmaRead, io::kSsdRead}) {
    bench::print_series(engine, bench::sweep_nodes(tb, engine, 4));
  }

  const auto rdma_read = bench::sweep_nodes(tb, io::kRdmaRead, 4);
  const auto rdma_write = bench::sweep_nodes(tb, io::kRdmaWrite, 4);
  std::printf("\n  model-vs-RDMA_WRITE Spearman: %.2f\n",
              model::spearman(wm.bw, rdma_write));
  std::printf("  model-vs-RDMA_READ  Spearman: %.2f (series is %s)\n",
              model::spearman(rm.bw, rdma_read),
              *std::max_element(rdma_read.begin(), rdma_read.end()) -
                          *std::min_element(rdma_read.begin(),
                                            rdma_read.end()) <
                      0.5
                  ? "flat: no visible NUMA penalty"
                  : "structured");
  bench::note("the class-1 pair is now {0,1}, with no node-7-specific");
  bench::note("knowledge. node 1 sits in a benign fabric position: the");
  bench::note("model's remote classes span only ~40-44 Gbps (vs 26-50 for");
  bench::note("node 7), so most engines saturate at their ceilings from");
  bench::note("every binding. the exception, RDMA_WRITE from {6,7}, is");
  bench::note("window/latency-bound -- a caveat: the capacity-based memcpy");
  bench::note("model cannot see pure latency classes, it flags only");
  bench::note("capacity classes (on the paper's node 7 the two coincide).");
  return 0;
}
