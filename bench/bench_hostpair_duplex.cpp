// Extension: the full two-host model (both DL585s simulated end to end).
// Regenerates the both-ends binding effect with real chained resources
// and adds the full-duplex scenario the analytic peer model cannot
// express: simultaneous send + receive sharing host CPUs and fabric but
// not the wire.
#include <cstdio>

#include "bench/common.h"
#include "io/hostpair.h"

int main() {
  using namespace numaio;
  io::HostPair pair = io::HostPair::dl585();

  bench::banner("Two-host RDMA_WRITE: initiator binding x target memory");
  std::printf("  %-10s", "A\\B-mem");
  for (int b = 0; b < 8; ++b) std::printf("   peer%d", b);
  std::printf("\n");
  for (topo::NodeId a : {5, 2, 7}) {
    std::printf("  node%-6d", a);
    for (int b = 0; b < 8; ++b) {
      io::HostPair::NetJob j;
      j.engine = io::kRdmaWrite;
      j.local_node = a;
      j.peer_node = b;
      j.num_streams = 4;
      std::printf(" %7.2f", pair.run(j).aggregate);
    }
    std::printf("\n");
  }
  bench::note("rows: initiator classes (17.1 from {2,3}); columns: the");
  bench::note("TARGET host's inbound 7->i paths -- Table V's directional");
  bench::note("asymmetry reappears on the passive side.");

  bench::banner("Full duplex (A<->B, both bindings node 6)");
  io::HostPair::NetJob send;
  send.engine = io::kRdmaWrite;
  send.local_node = 6;
  send.peer_node = 6;
  send.num_streams = 4;
  io::HostPair::NetJob recv = send;
  recv.engine = io::kRdmaRead;
  {
    const auto half_send = pair.run(send).aggregate;
    const auto half_recv = pair.run(recv).aggregate;
    const auto both = pair.run_concurrent(
        std::vector<io::HostPair::NetJob>{send, recv});
    std::printf("  RDMA  send alone %.2f, read alone %.2f, duplex %.2f + "
                "%.2f Gbps\n",
                half_send, half_recv, both[0].aggregate,
                both[1].aggregate);
  }
  send.engine = io::kTcpSend;
  recv.engine = io::kTcpRecv;
  {
    const auto half_send = pair.run(send).aggregate;
    const auto half_recv = pair.run(recv).aggregate;
    const auto both = pair.run_concurrent(
        std::vector<io::HostPair::NetJob>{send, recv});
    std::printf("  TCP   send alone %.2f, recv alone %.2f, duplex %.2f + "
                "%.2f Gbps\n",
                half_send, half_recv, both[0].aggregate,
                both[1].aggregate);
  }
  bench::note("");
  bench::note("offloaded RDMA keeps both directions at full rate; TCP's");
  bench::note("duplex sum collapses to the binding node's CPU budget --");
  bench::note("the locality-vs-contention tradeoff in one line.");
  return 0;
}
