// §IV-B3's justification for the SSD test configuration: "regular
// kernel-buffered read/write operations perform much worse than
// kernel-bypassed ones, and asynchronous I/O operations outperform
// synchronous ones. Therefore, we utilize the libaio engine with the
// kernel-bypass option." This bench regenerates that comparison.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  io::FioRunner fio(tb.host());

  const struct {
    const char* label;
    io::IoMode mode;
  } modes[] = {
      {"async + O_DIRECT (paper)", io::IoMode::kAsyncDirect},
      {"async + buffered", io::IoMode::kAsyncBuffered},
      {"sync + O_DIRECT", io::IoMode::kSyncDirect},
      {"sync + buffered", io::IoMode::kSyncBuffered},
  };

  for (const char* engine : {io::kSsdRead, io::kSsdWrite}) {
    bench::banner(std::string("SSD submission modes: ") + engine +
                  " on node 7, 4 procs, iodepth 16 (Gbps)");
    for (const auto& m : modes) {
      io::FioJob j;
      j.devices = tb.ssds();
      j.engine = engine;
      j.cpu_node = 7;
      j.num_streams = 4;
      j.io_mode = m.mode;
      std::printf("  %-26s %8.2f\n", m.label, fio.run(j).aggregate);
    }
  }

  bench::banner("iodepth sweep (async O_DIRECT, ssd_read, node 7, 4 procs)");
  std::printf("  %-10s", "iodepth");
  for (int d : {1, 2, 4, 8, 16, 32}) std::printf(" %7d", d);
  std::printf("\n  %-10s", "Gbps");
  for (int d : {1, 2, 4, 8, 16, 32}) {
    io::FioJob j;
    j.devices = tb.ssds();
    j.engine = io::kSsdRead;
    j.cpu_node = 7;
    j.num_streams = 4;
    j.iodepth = d;
    std::printf(" %7.2f", fio.run(j).aggregate);
  }
  std::printf("\n");
  bench::note("the paper's iodepth 16 sits on the saturation plateau.");
  return 0;
}
