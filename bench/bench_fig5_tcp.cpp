// Figure 5: TCP aggregate bandwidth vs number of parallel streams, per
// NUMA binding (Table III parameters: 400 GB per stream, cubic, 128 KB
// blocks). Published shape: growth until ~4 streams, then a contended
// plateau where orderings wobble; binding on node 6 beats the device-local
// node 7 (interrupt handling); {2,3} bindings cap near 16.2 Gbps on the
// send side; node 4 is the receive-side floor (14.4 Gbps).
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  const int streams[] = {1, 2, 4, 8, 16};

  for (const char* engine : {io::kTcpSend, io::kTcpRecv}) {
    bench::banner(std::string("Figure 5: ") + engine +
                  " aggregate bandwidth (Gbps)");
    std::printf("  %-8s", "binding");
    for (int s : streams) std::printf("  %3d str", s);
    std::printf("\n");
    for (topo::NodeId node = 0; node < 8; ++node) {
      std::printf("  node%-4d", node);
      for (int s : streams) {
        std::printf(" %8.2f", bench::run_engine(tb, engine, node, s));
      }
      std::printf("\n");
    }
  }
  bench::note("");
  bench::note("checks: node6 > node7 at 4 streams (interrupt contention);");
  bench::note("send {2,3} ~ 16.2; recv node4 ~ 14.4; wobble at 8/16.");
  return 0;
}
