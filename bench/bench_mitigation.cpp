// Extension: buffer-policy mitigation for pinned processes. When §V-B's
// rebinding is unavailable, re-homing buffers (membind) moves the DMA
// path without moving the process. The plan is derived from the model +
// one probe per class, then validated with real runs.
#include <cstdio>

#include "bench/common.h"
#include "model/classify.h"
#include "model/mitigate.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  io::FioRunner fio(tb.host());

  const auto m =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceRead);
  const auto classes = model::classify(m, tb.machine().topology());
  std::vector<double> class_values;
  for (topo::NodeId rep : model::representative_nodes(classes)) {
    class_values.push_back(bench::run_engine(tb, io::kRdmaRead, rep, 4));
  }

  // A pinned fleet spread over the weak classes.
  const std::vector<topo::NodeId> fleet{0, 1, 4, 5};
  const auto plan =
      model::plan_buffer_policies(classes, class_values, fleet);

  bench::banner("Buffer-policy mitigation plan (RDMA_READ, pinned fleet)");
  std::printf("  %-8s %-22s %10s\n", "process", "buffer policy",
              "predicted");
  for (const auto& p : plan.processes) {
    std::printf("  node%-4d %-22s %10.2f\n", p.cpu_node,
                nm::to_numactl_string(p.policy).c_str(), p.predicted);
  }
  std::printf("  predicted aggregate: baseline %.2f -> planned %.2f Gbps\n",
              plan.baseline_aggregate, plan.predicted_aggregate);

  // Validate with real concurrent runs.
  auto measure = [&](bool apply_plan) {
    std::vector<io::FioJob> jobs;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      io::FioJob j;
      j.devices = {&tb.nic()};
      j.engine = io::kRdmaRead;
      j.cpu_node = fleet[i];
      j.num_streams = 1;
      if (apply_plan) j.mem_policy = plan.processes[i].policy;
      jobs.push_back(j);
    }
    return io::combined_aggregate(fio.run_concurrent(jobs));
  };
  const double base = measure(false);
  const double planned = measure(true);
  std::printf("  measured aggregate:  baseline %.2f -> planned %.2f Gbps "
              "(%+.0f%%)\n",
              base, planned, (planned / base - 1.0) * 100.0);
  bench::note("");
  bench::note("the buffers now ride the strong 7->{6} path while the");
  bench::note("processes never moved -- the model's classes located the");
  bench::note("lever without touching the device.");
  return 0;
}
