// Figure 7: SSD read/write aggregate bandwidth over both Nytro cards,
// libaio kernel-bypass, 128 KB blocks, iodepth 16, vs process count
// (minimum two: one per card). Published classes: write 28.8/28.5/18.0;
// read 34.7/33.1/30.1/18.5.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  const int procs[] = {2, 4, 8, 16};

  for (const char* engine : {io::kSsdWrite, io::kSsdRead}) {
    bench::banner(std::string("Figure 7: ") + engine +
                  " aggregate bandwidth over 2 cards (Gbps)");
    std::printf("  %-8s", "binding");
    for (int p : procs) std::printf(" %3d proc", p);
    std::printf("\n");
    for (topo::NodeId node = 0; node < 8; ++node) {
      std::printf("  node%-4d", node);
      for (int p : procs) {
        std::printf(" %8.2f", bench::run_engine(tb, engine, node, p));
      }
      std::printf("\n");
    }
  }
  bench::note("");
  bench::note("write rate tracks the TCP/RDMA send classes; read rate");
  bench::note("tracks the receive classes; neither matches STREAM (Fig 3).");
  return 0;
}
