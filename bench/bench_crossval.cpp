// cbench-style benchmark cross-validation ([18],[27], §IV-B): pairwise
// rank agreement of all memory benchmarks' full binding matrices, with
// agreement clusters. Within a cluster, one benchmark's model can stand in
// for another's — but no memory-side cluster predicts the I/O engines
// (see bench_hopdist_failure), which motivates the iomodel methodology.
#include <cstdio>

#include "bench/common.h"
#include "model/crossval.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  bench::banner("Memory-benchmark cross-validation (Spearman agreement)");

  const auto cv = model::cross_validate(tb.host());
  std::printf("  %-14s", "");
  for (const auto& name : cv.names) {
    std::printf(" %9.9s", name.c_str());
  }
  std::printf("\n");
  for (std::size_t a = 0; a < cv.names.size(); ++a) {
    std::printf("  %-14s", cv.names[a].c_str());
    for (std::size_t b = 0; b < cv.names.size(); ++b) {
      std::printf(" %9.2f", cv.agreement[a][b]);
    }
    std::printf("\n");
  }

  for (double threshold : {0.95, 0.85}) {
    std::printf("\n  clusters at agreement >= %.2f:\n", threshold);
    for (const auto& cluster : model::agreement_clusters(cv, threshold)) {
      std::printf("   ");
      for (int idx : cluster) {
        std::printf(" %s", cv.names[static_cast<std::size_t>(idx)].c_str());
      }
      std::printf("\n");
    }
  }
  bench::note("");
  bench::note("copy-family benchmarks validate each other (cbench's");
  bench::note("premise); the latency family orders the nodes differently.");
  return 0;
}
