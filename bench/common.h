// Shared helpers for the table/figure regeneration binaries.
//
// Every binary prints (a) the paper's published numbers for the experiment
// it regenerates and (b) the values measured on the simulated testbed, so
// the comparison EXPERIMENTS.md summarizes is visible in raw output.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "io/testbed.h"

namespace numaio::bench {

inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

/// Runs one fio job on the rig and returns the average aggregate Gbps.
inline double run_engine(io::Testbed& tb, const std::string& engine,
                         topo::NodeId node, int streams) {
  io::FioRunner fio(tb.host());
  io::FioJob j;
  const bool is_ssd = engine.rfind("ssd", 0) == 0;
  j.devices = is_ssd ? tb.ssds()
                     : std::vector<const io::PcieDevice*>{&tb.nic()};
  j.engine = engine;
  j.cpu_node = node;
  j.num_streams = streams;
  return fio.run(j).aggregate;
}

/// Per-binding sweep at a fixed stream count over all nodes.
inline std::vector<double> sweep_nodes(io::Testbed& tb,
                                       const std::string& engine,
                                       int streams) {
  std::vector<double> out;
  for (topo::NodeId n = 0; n < tb.machine().num_nodes(); ++n) {
    out.push_back(run_engine(tb, engine, n, streams));
  }
  return out;
}

inline void print_series(const std::string& label,
                         const std::vector<double>& values) {
  std::printf("  %-14s", label.c_str());
  for (double v : values) std::printf(" %7.2f", v);
  std::printf("\n");
}

inline void print_node_header(int n) {
  std::printf("  %-14s", "binding");
  for (int i = 0; i < n; ++i) std::printf("   node%d", i);
  std::printf("\n");
}

}  // namespace numaio::bench
