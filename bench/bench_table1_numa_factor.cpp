// Table I: NUMA factor of different server configurations.
// Paper values: Intel 4s/4n = 1.5, AMD 4s/8n = 2.7, AMD 8s/8n = 2.8,
// HP 32-node blade = 5.5.
#include <cstdio>

#include "bench/common.h"
#include "topo/latency.h"
#include "topo/presets.h"

int main() {
  using namespace numaio;
  bench::banner("Table I: NUMA factor of different server configurations");
  std::printf("  %-28s %10s %10s %10s\n", "Server type", "paper", "measured",
              "max");
  for (const auto& preset : topo::table1_presets()) {
    const topo::Routing routing(preset.topo,
                                topo::Routing::Metric::kLatency);
    const topo::LatencyModel model(routing, preset.latency);
    std::printf("  %-28s %10.2f %10.2f %10.2f\n", preset.label.c_str(),
                preset.paper_numa_factor, model.numa_factor(),
                model.max_numa_factor());
  }
  bench::note("factor = mean remote access latency / mean local latency");
  return 0;
}
