// numademo-style policy table (§II-B): seven memory test modules under
// local / worst-remote / interleaved placements, plus the per-module
// NUMA-penalty factor — showing that different access patterns experience
// the same fabric very differently (why single-benchmark models mislead).
#include <cstdio>

#include "bench/common.h"
#include "mem/numademo.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();

  for (topo::NodeId cpu : {7, 0}) {
    bench::banner("numademo policy table, threads on node " +
                  std::to_string(cpu) + " (Gbps)");
    std::printf("  %-16s %10s %12s %12s %10s\n", "module", "local",
                "remote-worst", "interleaved", "penalty");
    for (const auto& row : mem::demo_policy_table(tb.host(), cpu)) {
      std::printf("  %-16s %10.2f %12.2f %12.2f %9.2fx\n",
                  mem::to_string(row.module).c_str(), row.local,
                  row.remote_worst, row.interleaved,
                  row.local / row.remote_worst);
    }
  }
  bench::note("");
  bench::note("bandwidth-bound modules suffer the weak-path penalty;");
  bench::note("latency-bound modules (random/chase) track DMA latency --");
  bench::note("two different NUMA orderings from one machine.");
  return 0;
}
