// §III-B1's configuration choice: the four STREAM kernels "exhibit a
// similar performance on modern machines", so the paper characterizes
// with Copy alone (no computation, closest to I/O behaviour). This bench
// regenerates the comparison across representative bindings.
#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "mem/stream.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();

  bench::banner("STREAM kernels across bindings (best of 100, Gbps)");
  std::printf("  %-14s %10s %10s %10s %10s %8s\n", "binding", "Copy",
              "Scale", "Add", "Triad", "spread");
  for (const auto& [cpu, mem_node] :
       std::vector<std::pair<topo::NodeId, topo::NodeId>>{
           {0, 0}, {7, 7}, {7, 4}, {4, 7}, {7, 2}}) {
    double values[4];
    int k = 0;
    for (mem::StreamKind kind :
         {mem::StreamKind::kCopy, mem::StreamKind::kScale,
          mem::StreamKind::kAdd, mem::StreamKind::kTriad}) {
      mem::StreamConfig config;
      config.kind = kind;
      values[k++] = mem::StreamBenchmark(tb.host(), config)
                        .run(cpu, mem_node)
                        .best;
    }
    const double lo = std::min({values[0], values[1], values[2], values[3]});
    const double hi = std::max({values[0], values[1], values[2], values[3]});
    std::printf("  cpu%d/mem%-5d %10.2f %10.2f %10.2f %10.2f %7.1f%%\n",
                cpu, mem_node, values[0], values[1], values[2], values[3],
                (hi / lo - 1.0) * 100.0);
  }
  bench::note("");
  bench::note("kernel spread stays within a few percent on every binding:");
  bench::note("characterizing with Copy alone loses nothing (§III-B1).");
  return 0;
}
