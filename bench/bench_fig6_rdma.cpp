// Figure 6: RDMA_WRITE / RDMA_READ aggregate bandwidth vs stream count per
// NUMA binding. Published shape: saturation by 2 streams and rock-stable
// plateaus (protocol work is offloaded to the adapter); WRITE classes
// 23.3/23.2/17.1; READ classes 22.0/22.0/18.3/16.1 — with {0,1} *below*
// {2,3}, inverting the STREAM ordering (§IV-B2).
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  const int streams[] = {1, 2, 4, 8, 16};

  for (const char* engine : {io::kRdmaWrite, io::kRdmaRead}) {
    bench::banner(std::string("Figure 6: ") + engine +
                  " aggregate bandwidth (Gbps)");
    std::printf("  %-8s", "binding");
    for (int s : streams) std::printf("  %3d str", s);
    std::printf("\n");
    for (topo::NodeId node = 0; node < 8; ++node) {
      std::printf("  node%-4d", node);
      for (int s : streams) {
        std::printf(" %8.2f", bench::run_engine(tb, engine, node, s));
      }
      std::printf("\n");
    }
  }

  bench::banner("RDMA_READ inversion vs STREAM (the paper's key mismatch)");
  const double r0 = bench::run_engine(tb, io::kRdmaRead, 0, 4);
  const double r2 = bench::run_engine(tb, io::kRdmaRead, 2, 4);
  std::printf("  node{0,1} vs node{2,3}: paper 15-18.4%% worse; measured "
              "%.1f%% worse\n",
              (r2 - r0) / r2 * 100.0);
  return 0;
}
