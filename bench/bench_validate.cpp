// The validation suite as an acceptance bench: every claim the paper's
// evidence chain rests on, re-derived through measurement on the
// simulated testbed and reported with its margin.
#include <cstdio>

#include "bench/common.h"
#include "model/validate.h"

int main() {
  using namespace numaio;
  bench::banner("Methodology validation: paper testbed (devices on node 7)");
  {
    io::Testbed tb = io::Testbed::dl585();
    std::printf("%s", model::validate_methodology(tb).to_string().c_str());
  }
  bench::banner("Methodology validation: devices on node 1 (the caveat)");
  {
    io::Testbed tb = io::Testbed::dl585_with_devices_on(1);
    model::ValidateConfig config;
    config.min_offloaded_spearman = 0.0;  // little structure to rank here
    std::printf("%s",
                model::validate_methodology(tb, config).to_string().c_str());
  }
  bench::note("node 1's write coherence fails by design: the capacity-");
  bench::note("based model cannot see pure latency classes. On the paper's");
  bench::note("node 7 capacity and latency classes coincide, so the");
  bench::note("published validation succeeds -- and so does ours.");
  return 0;
}
