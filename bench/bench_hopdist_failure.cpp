// §IV-A/§IV-B analysis: hop distance and STREAM fail to predict I/O.
//  1. Hop-distance explanation scores of the measured STREAM matrix
//     against every Figure-1 layout (all poor; matrix asymmetric).
//  2. Rank correlations: proposed memcpy model vs each I/O engine, against
//     the STREAM-derived CPU-/memory-centric models.
#include <cstdio>

#include "bench/common.h"
#include "mem/membench.h"
#include "model/analysis.h"
#include "model/inference.h"
#include "model/iomodel.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();

  bench::banner("Hop-distance failure on the measured STREAM matrix");
  const auto bw = mem::stream_matrix(tb.host(), mem::StreamConfig{});
  std::printf("  asymmetry index: %.3f (undirected metrics need ~0)\n",
              model::asymmetry_index(bw));
  for (const auto& fit : model::fit_magny_cours_variants(bw)) {
    std::printf("  layout %-20s hop-explanation score %.3f\n",
                fit.variant_name.c_str(), fit.score);
  }
  bench::note("no layout reaches ~1.0: hop distance cannot explain Fig 3");

  bench::banner("Rank agreement with measured I/O (Spearman)");
  const auto cpu_model = mem::cpu_centric(tb.host(), 7, mem::StreamConfig{});
  const auto mem_model =
      mem::memory_centric(tb.host(), 7, mem::StreamConfig{});
  const auto wmodel =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceWrite);
  const auto rmodel =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceRead);

  std::printf("  %-12s %10s %12s %12s\n", "engine", "proposed",
              "CPU-centric", "mem-centric");
  struct Case {
    const char* engine;
    const std::vector<double>* proposed;
  };
  const Case cases[] = {{io::kTcpSend, &wmodel.bw},
                        {io::kRdmaWrite, &wmodel.bw},
                        {io::kSsdWrite, &wmodel.bw},
                        {io::kTcpRecv, &rmodel.bw},
                        {io::kRdmaRead, &rmodel.bw},
                        {io::kSsdRead, &rmodel.bw}};
  for (const Case& c : cases) {
    const auto io = bench::sweep_nodes(tb, c.engine, 4);
    std::printf("  %-12s %10.2f %12.2f %12.2f\n", c.engine,
                model::spearman(*c.proposed, io),
                model::spearman(cpu_model, io),
                model::spearman(mem_model, io));
  }
  bench::note("");
  bench::note("RDMA_READ/SSD read: proposed model high, STREAM models low");
  bench::note("or negative -- the paper's §IV-B2 mismatch, quantified.");
  return 0;
}
