// Ablation: data locality vs resource contention (the paper's second
// future-work axis, §VI). The device-local binding is only a loser because
// interrupt handling competes for its CPUs; this bench sweeps the
// interrupt cost and the per-core protocol capacity to locate the
// crossover where "local is best" flips to "neighbor is best" for TCP.
#include <cstdio>

#include "bench/common.h"

namespace {

double tcp_send_with(numaio::io::Testbed& tb, double irq_cost,
                     numaio::topo::NodeId node) {
  // Rebuild a NIC with a modified interrupt cost on a fresh rig would
  // disturb the shared solver; instead scale the CPU budget, which enters
  // the math identically (capacity / (app + irq) per Gbps).
  (void)irq_cost;
  return numaio::bench::run_engine(tb, numaio::io::kTcpSend, node, 4);
}

}  // namespace

int main() {
  using namespace numaio;
  bench::banner("Ablation: locality vs contention (TCP send, Gbps)");

  // Sweep the per-core protocol capacity: weaker cores make the
  // interrupt-sharing penalty on the device node bite harder.
  std::printf("  %-22s %10s %10s %12s\n", "cpu units/core", "node7",
              "node6", "local wins?");
  for (double units : {4.0, 5.0, 6.0, 7.0, 9.0, 12.0}) {
    fabric::HostProfile profile = fabric::dl585_profile();
    profile.cpu_units_per_core = units;
    fabric::Machine machine{std::move(profile)};
    nm::Host host{machine};
    auto nic = io::make_connectx3(machine, 7);
    io::FioRunner fio(host);
    auto run = [&](topo::NodeId node) {
      io::FioJob j;
      j.devices = {nic.get()};
      j.engine = io::kTcpSend;
      j.cpu_node = node;
      j.num_streams = 4;
      return fio.run(j).aggregate;
    };
    const double n7 = run(7);
    const double n6 = run(6);
    std::printf("  %-22.1f %10.2f %10.2f %12s\n", units, n7, n6,
                n7 >= n6 ? "yes" : "no (paper)");
  }
  bench::note("");
  bench::note("paper's testbed sits left of the crossover: the device-local");
  bench::note("node loses to its neighbor once IRQ work shares its cores.");

  bench::banner("Ablation: IRQ steering moves the contention");
  {
    io::Testbed tb = io::Testbed::dl585();
    std::printf("  %-14s %10s %10s\n", "irq node", "node7", "node6");
    for (topo::NodeId irq : {7, 6, 0}) {
      tb.nic().set_irq_node(irq);
      std::printf("  %-14d %10.2f %10.2f\n", irq,
                  tcp_send_with(tb, 0.0, 7), tcp_send_with(tb, 0.0, 6));
    }
    tb.nic().set_irq_node(7);
  }
  bench::note("steering IRQs off node 7 restores its local-binding edge;");
  bench::note("whichever node hosts the IRQs inherits the penalty.");
  return 0;
}
