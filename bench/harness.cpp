// Perf-regression harness: a curated bench subset with machine-checkable
// output, the teeth behind ci/perf_guard.sh.
//
// The table/figure binaries in this directory regenerate the paper's
// numbers for humans; this harness runs a small, fast subset of the same
// pipeline and writes BENCH_numaio.json — per bench, the wall time and a
// set of simulated metrics (bandwidths, retry counts, trace-derived stall
// fractions). A committed baseline plus `compare` turns that into a perf
// gate:
//
//   bench_harness run [--out FILE] [--reps N]      measure, write JSON
//   bench_harness compare BASE CUR [--wall-tol F] [--metric-tol F]
//                 [--stall-tol F] [--skip-wall]    gate CUR against BASE
//   bench_harness perturb IN OUT --wall-scale F    self-test helper
//
// compare fails (exit 1) when a bench disappeared, a wall time regressed
// past --wall-tol (relative, slowdowns only — getting faster never
// fails), a simulated metric moved past --metric-tol (relative, both
// directions: these are deterministic, drift means behavior changed), or
// a *_stall_frac metric moved past --stall-tol (absolute). --skip-wall
// drops the wall check for noisy shared CI runners; run_all.sh uses it.
// Two suffix rules refine the metric gate: *_info metrics (host facts
// like core counts) are recorded but never gated, and *_speedup metrics
// (wall-time ratios, e.g. solver_storm_mt's threads_speedup) are gated
// against an absolute --speedup-floor (default 3.0) instead of the
// relative tolerance — and only when the current host has at least
// threads_info hardware cores (--skip-speedup drops the rule entirely).
// `perturb` rescales every wall_ms so CI can prove the gate actually
// fails on an injected slowdown (see tools/CMakeLists.txt).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "numaio.h"

namespace {

using namespace numaio;

// ---------------------------------------------------------------------
// Bench results and their JSON serialization (docs/FORMATS.md §5c).

struct BenchResult {
  double wall_ms = 0.0;
  /// Name-sorted; values are simulated (deterministic) measurements.
  std::map<std::string, double> metrics;
};

using BenchSet = std::map<std::string, BenchResult>;

constexpr char kSchema[] = "numaio-bench v1";

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void write_bench_json(const BenchSet& benches, std::ostream& out) {
  out << "{\n  \"schema\": \"" << kSchema << "\",\n  \"benches\": {";
  bool first_bench = true;
  for (const auto& [name, r] : benches) {
    out << (first_bench ? "\n" : ",\n") << "    \"" << name
        << "\": {\"wall_ms\": " << num(r.wall_ms) << ", \"metrics\": {";
    bool first_metric = true;
    for (const auto& [key, value] : r.metrics) {
      out << (first_metric ? "" : ", ") << "\"" << key
          << "\": " << num(value);
      first_metric = false;
    }
    out << "}}";
    first_bench = false;
  }
  out << "\n  }\n}\n";
}

// ---------------------------------------------------------------------
// A minimal JSON reader for the schema above: objects, strings, numbers.

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }
  bool accept(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      if (pos_ < text_.size()) out += text_[pos_++];
    }
    expect('"');
    return out;
  }
  double number() {
    skip_ws();
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(text_.substr(pos_), &used);
    } catch (const std::exception&) {
      fail("expected a number");
    }
    pos_ += used;
    return v;
  }
  void end() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[noreturn]] void fail(const std::string& what) {
    throw std::invalid_argument("bench json, offset " +
                                std::to_string(pos_) + ": " + what);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

BenchSet parse_bench_json(const std::string& text) {
  JsonCursor c(text);
  BenchSet benches;
  c.expect('{');
  bool saw_schema = false;
  while (true) {
    const std::string key = c.string();
    c.expect(':');
    if (key == "schema") {
      if (c.string() != kSchema) {
        throw std::invalid_argument("bench json: unsupported schema");
      }
      saw_schema = true;
    } else if (key == "benches") {
      c.expect('{');
      if (!c.accept('}')) {
        do {
          const std::string name = c.string();
          c.expect(':');
          c.expect('{');
          BenchResult r;
          do {
            const std::string field = c.string();
            c.expect(':');
            if (field == "wall_ms") {
              r.wall_ms = c.number();
            } else if (field == "metrics") {
              c.expect('{');
              if (!c.accept('}')) {
                do {
                  const std::string metric = c.string();
                  c.expect(':');
                  r.metrics[metric] = c.number();
                } while (c.accept(','));
                c.expect('}');
              }
            } else {
              throw std::invalid_argument("bench json: unknown field '" +
                                          field + "'");
            }
          } while (c.accept(','));
          c.expect('}');
          benches[name] = r;
        } while (c.accept(','));
        c.expect('}');
      }
    } else {
      throw std::invalid_argument("bench json: unknown key '" + key + "'");
    }
    if (!c.accept(',')) break;
  }
  c.expect('}');
  c.end();
  if (!saw_schema) throw std::invalid_argument("bench json: no schema");
  return benches;
}

BenchSet load_bench_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_bench_json(text.str());
}

// ---------------------------------------------------------------------
// The curated benches. Each exercises one pipeline layer end to end and
// reports simulated metrics that a behavior change would move.

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Runs `body` `iterations` times under one timer; the metrics of the
/// last iteration win (every iteration is deterministic, so they all
/// agree). Single runs finish in microseconds — too little signal for a
/// relative wall gate — so each bench repeats enough to make wall_ms a
/// tens-of-milliseconds number.
template <typename Body>
BenchResult timed(int iterations, Body&& body) {
  BenchResult r;
  const auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) r.metrics = body();
  r.wall_ms = ms_since(start);
  return r;
}

/// Total attributed stall over total busy time across the capture's
/// contention cells — the trace-derived "how contended was this run".
double overall_stall_frac(const std::vector<obs::Event>& events) {
  const obs::TraceAnalysis analysis = obs::analyze_trace(events);
  double busy = 0.0;
  double stall = 0.0;
  for (const obs::ContentionCell& cell : analysis.contention) {
    busy += cell.busy_ns;
    stall += cell.stall_ns;
  }
  return busy > 0.0 ? stall / busy : 0.0;
}

BenchResult bench_stream_matrix(io::Testbed& tb) {
  return timed(10, [&] {
    const mem::BandwidthMatrix m = mem::stream_matrix(tb.host());
    double local = 0.0;
    double remote_min = 1e18;
    for (topo::NodeId cpu = 0; cpu < m.num_nodes(); ++cpu) {
      local += m.at(cpu, cpu);
      for (topo::NodeId memn = 0; memn < m.num_nodes(); ++memn) {
        if (memn != cpu) remote_min = std::min(remote_min, m.at(cpu, memn));
      }
    }
    return std::map<std::string, double>{
        {"local_avg_gbps", local / m.num_nodes()},
        {"remote_min_gbps", remote_min}};
  });
}

BenchResult bench_iomodel_node7(io::Testbed& tb, int reps) {
  return timed(50, [&] {
    obs::Context ctx;
    obs::MemorySink capture;
    ctx.trace.set_deterministic(true);
    ctx.trace.set_sink(&capture);
    model::IoModelConfig config;
    config.repetitions = reps;
    config.obs = &ctx;
    const model::IoModelResult m = model::build_iomodel(
        tb.host(), 7, model::Direction::kDeviceWrite, config);
    const model::Classification classes =
        model::classify(m, tb.machine().topology());
    return std::map<std::string, double>{
        {"class1_avg_gbps", classes.class_avg.front()},
        {"num_classes", static_cast<double>(classes.num_classes())},
        {"probe_stall_frac", overall_stall_frac(capture.events)}};
  });
}

io::FioJob rdma_job(io::Testbed& tb) {
  io::FioJob job;
  job.devices = {&tb.nic()};
  job.engine = io::kRdmaRead;
  job.cpu_node = 2;
  job.num_streams = 4;
  job.bytes_per_stream = 40 * sim::kGiB;
  return job;
}

BenchResult bench_fio_clean(io::Testbed& tb) {
  return timed(200, [&] {
    obs::Context ctx;
    obs::MemorySink capture;
    ctx.trace.set_deterministic(true);
    ctx.trace.set_sink(&capture);
    io::FioRunner fio(tb.host());
    fio.set_observer(&ctx);
    const io::FioResult result = fio.run(rdma_job(tb));
    return std::map<std::string, double>{
        {"aggregate_gbps", result.aggregate},
        {"io_stall_frac", overall_stall_frac(capture.events)}};
  });
}

BenchResult bench_fio_degraded(io::Testbed& tb) {
  return timed(50, [&] {
    obs::Context ctx;
    obs::MemorySink capture;
    ctx.trace.set_deterministic(true);
    ctx.trace.set_sink(&capture);

    faults::RandomPlanConfig plan_config;
    plan_config.seed = 42;
    plan_config.num_nodes = tb.machine().num_nodes();
    plan_config.num_devices = 1 + static_cast<int>(tb.ssds().size());
    plan_config.num_events = 4;
    faults::FaultInjector injector(tb.machine(),
                                   faults::FaultPlan::random(plan_config));
    injector.set_observer(&ctx);
    injector.register_device(tb.nic().name(), tb.nic().attach_node(),
                             tb.nic().fault_resources());
    for (const io::PcieDevice* ssd : tb.ssds()) {
      injector.register_device(ssd->name(), ssd->attach_node(),
                               ssd->fault_resources());
    }

    io::FioJob job = rdma_job(tb);
    job.retry.timeout = 30.0e9;
    io::FioRunner fio(tb.host());
    fio.set_fault_injector(&injector);
    fio.set_observer(&ctx);
    const io::FioResult result = fio.run(job);
    injector.restore();
    return std::map<std::string, double>{
        {"aggregate_gbps", result.aggregate},
        {"retries", static_cast<double>(result.total_retries)},
        {"io_stall_frac", overall_stall_frac(capture.events)}};
  });
}

BenchResult bench_multiuser(io::Testbed& tb) {
  return timed(200, [&] {
    io::FioRunner fio(tb.host());
    io::FioJob net = rdma_job(tb);
    io::FioJob disk;
    disk.devices = tb.ssds();
    disk.engine = io::kSsdWrite;
    disk.cpu_node = 6;
    disk.num_streams = 4;
    disk.bytes_per_stream = 40 * sim::kGiB;
    const auto results = fio.run_concurrent({net, disk});
    return std::map<std::string, double>{
        {"combined_gbps", io::combined_aggregate(results)}};
  });
}

/// The streaming-core scale bench: 10^6 synthetic records through
/// analyze_stream(). `records` / wall_ms gives the records-per-second
/// throughput of the record-stream core; `peak_open_spans` is the
/// peak-RSS proxy (analysis memory is O(open spans + nodes²), so a small
/// bounded peak here means bounded memory at any capture size — the
/// 10^6-record ctest pins the same invariant). The remaining metrics pin
/// the analysis result itself: the generator is deterministic, so any
/// drift is an analyzer behavior change, not noise.
BenchResult bench_trace_stream() {
  obs::SyntheticTraceConfig config;  // 1M records, 32-stream window
  obs::SyntheticTraceSource source(config);
  return timed(1, [&] {
    const obs::TraceAnalysis a = obs::analyze_stream(source);
    return std::map<std::string, double>{
        {"records", static_cast<double>(a.num_records)},
        {"peak_open_spans", static_cast<double>(a.peak_open_spans)},
        {"passes", static_cast<double>(a.passes)},
        {"path_steps", static_cast<double>(a.critical_path.size())}};
  });
}

/// Flame-fold scale bench: 10^6 synthetic records nested 32 spans deep
/// through FoldedStackCollector (obs/profile.h), the same shape the
/// profiling ctest pins. Wall time is the headline (records / wall_ms =
/// fold throughput); every simulated metric carries the *_info suffix —
/// reported for context, never gated — because the interesting contract
/// here is the gated wall time plus the O(open spans) peak the ctest
/// already asserts, not the exact stack census of the generator.
BenchResult bench_flame_fold() {
  obs::SyntheticTraceConfig config;
  config.records = 1000000;
  config.depth = 32;
  config.fanout = 8;
  config.seed = 11;
  obs::SyntheticTraceSource source(config);
  return timed(3, [&] {
    std::ostringstream out;
    const obs::FoldStats stats =
        obs::export_folded_stacks(source, out, obs::FoldWeight::kSelf);
    return std::map<std::string, double>{
        {"records_info", static_cast<double>(stats.records)},
        {"spans_info", static_cast<double>(stats.spans)},
        {"stacks_info", static_cast<double>(stats.stacks)},
        {"peak_open_spans_info",
         static_cast<double>(stats.peak_open_spans)},
        {"folded_bytes_info", static_cast<double>(out.str().size())}};
  });
}

/// Solver hot-path stress: hundreds of flows over a shared 8-node fabric
/// with add/remove churn, capacity control events, and the
/// aggregate/utilization read-backs the fluid layer issues after every
/// solve. `events` / wall_ms is the records-of-work throughput the
/// incremental-solver work is gated on; the remaining metrics are
/// deterministic allocations (rate checksum, final aggregate) plus the
/// solver's own round counters, so behavior drift and profiling drift
/// both trip the guard.
BenchResult bench_solver_storm() {
  using namespace numaio::sim;
  constexpr int kNodes = 8;
  constexpr int kInitialFlows = 320;
  constexpr int kEvents = 2000;
  return timed(3, [&] {
    obs::Context ctx;
    FlowSolver solver;
    solver.set_observer(&ctx);
    Rng rng(0x5701);
    std::vector<ResourceId> pair(kNodes * kNodes, 0);
    std::vector<ResourceId> mc_rd, mc_wr, cpu;
    for (int a = 0; a < kNodes; ++a) {
      for (int b = 0; b < kNodes; ++b) {
        if (a == b) continue;
        pair[static_cast<std::size_t>(a * kNodes + b)] =
            solver.add_resource("fab", rng.uniform(12.0, 30.0));
      }
    }
    for (int n = 0; n < kNodes; ++n) {
      mc_rd.push_back(solver.add_resource("mc_rd", rng.uniform(30.0, 55.0)));
      mc_wr.push_back(solver.add_resource("mc_wr", rng.uniform(30.0, 55.0)));
      cpu.push_back(solver.add_resource("cpu", 28.0));
    }
    auto make_flow = [&] {
      const int src = static_cast<int>(rng.below(kNodes));
      int dst = static_cast<int>(rng.below(kNodes - 1));
      if (dst >= src) ++dst;
      std::vector<Usage> usages{
          {mc_rd[static_cast<std::size_t>(src)], 1.0},
          {pair[static_cast<std::size_t>(src * kNodes + dst)], 1.0},
          {mc_wr[static_cast<std::size_t>(dst)], 1.0}};
      if (rng.uniform() < 0.5) {
        usages.push_back({cpu[static_cast<std::size_t>(src)], 0.05});
      }
      const Gbps cap =
          rng.uniform() < 0.4 ? rng.uniform(2.0, 18.0) : kUnlimited;
      return solver.add_flow(std::move(usages), cap);
    };
    std::vector<FlowId> live;
    live.reserve(kInitialFlows);
    for (int i = 0; i < kInitialFlows; ++i) live.push_back(make_flow());
    double checksum = 0.0;
    double agg = 0.0;
    double util = 0.0;
    for (int e = 0; e < kEvents; ++e) {
      const std::size_t victim = rng.below(live.size());
      solver.remove_flow(live[victim]);
      live[victim] = make_flow();
      if (e % 16 == 0) {
        const int a = static_cast<int>(rng.below(kNodes));
        int b = static_cast<int>(rng.below(kNodes - 1));
        if (b >= a) ++b;
        solver.set_capacity(pair[static_cast<std::size_t>(a * kNodes + b)],
                            rng.uniform(12.0, 30.0));
      }
      const auto& rates = solver.solve();
      checksum += rates[live[static_cast<std::size_t>(e) % live.size()]];
      agg = solver.aggregate_rate();
      util = solver.utilization(mc_wr[static_cast<std::size_t>(e % kNodes)]);
    }
    // value() of an unregistered name is 0, so summing the old and new
    // round-counter names keeps this bench comparable across the solver
    // rewrite that renamed solver.iterations to solver.rounds.
    return std::map<std::string, double>{
        {"events", static_cast<double>(kEvents)},
        {"rate_checksum_gbps", checksum},
        {"agg_final_gbps", agg},
        {"util_final", util},
        {"rounds_total", ctx.metrics.value("solver.rounds") +
                             ctx.metrics.value("solver.iterations")},
        {"solve_calls", ctx.metrics.value("solver.solves")},
        {"cache_hits", ctx.metrics.value("solver.cache_hits")}};
  });
}

/// Parallel-solver speedup bench: 16 resource-disjoint shards (each a
/// spanning flow plus ~40 churned flows) in ONE partitioned solver, every
/// shard mutated each round so all 16 components re-solve per solve().
/// The identical seeded churn runs twice — SolveOptions{threads=1} and
/// {threads=8} — and `threads_speedup` is the wall ratio, the headline
/// number of the parallel engine. The determinism contract rides along:
/// `mt_checksum_delta` pins the two runs' probe checksums bit-identical
/// (gated at 0), and the component counters pin the decomposition shape.
/// `*_info` metrics (hardware cores, requested threads) are recorded but
/// never gated; compare() floor-gates `*_speedup` only when the current
/// host actually has `threads_info` cores — a laptop or 1-core CI box
/// cannot measure parallel speedup, and a wall-noise relative gate on a
/// ratio of wall times would be meaningless anyway.
BenchResult bench_solver_storm_mt() {
  using namespace numaio::sim;
  constexpr int kShards = 16;
  constexpr int kResPerShard = 6;
  constexpr int kFlowsPerShard = 40;
  constexpr int kRounds = 200;
  constexpr int kThreads = 8;

  struct RunOut {
    double wall_ms = 0.0;
    double checksum = 0.0;
    double agg = 0.0;
    FlowSolver::SolveStats stats;
  };
  const auto run_churn = [&](int threads) {
    SolveOptions options;
    options.threads = threads;
    options.partition = true;
    FlowSolver solver(options);
    Rng rng(0x3417);
    std::vector<std::vector<ResourceId>> res(kShards);
    std::vector<std::vector<FlowId>> live(kShards);
    auto make_flow = [&](int s) {
      const auto n = 2 + rng.below(2);
      std::vector<Usage> usages;
      for (std::uint64_t i = 0; i < n; ++i) {
        usages.push_back(
            {res[static_cast<std::size_t>(s)][rng.below(kResPerShard)],
             rng.uniform(0.2, 1.5)});
      }
      const Gbps cap =
          rng.uniform() < 0.4 ? rng.uniform(2.0, 18.0) : kUnlimited;
      return solver.add_flow(std::move(usages), cap);
    };
    for (int s = 0; s < kShards; ++s) {
      for (int r = 0; r < kResPerShard; ++r) {
        res[static_cast<std::size_t>(s)].push_back(
            solver.add_resource("r", rng.uniform(15.0, 45.0)));
      }
      // The spanning flow pins the shard to one component across churn,
      // so the decomposition stays exactly kShards components.
      std::vector<Usage> span;
      for (ResourceId r : res[static_cast<std::size_t>(s)]) {
        span.push_back({r, 0.1});
      }
      live[static_cast<std::size_t>(s)].push_back(
          solver.add_flow(std::move(span), 1.0));
      for (int f = 0; f < kFlowsPerShard; ++f) {
        live[static_cast<std::size_t>(s)].push_back(make_flow(s));
      }
    }
    RunOut out;
    const auto start = Clock::now();  // setup excluded: identical anyway
    for (int round = 0; round < kRounds; ++round) {
      for (int s = 0; s < kShards; ++s) {
        auto& flows = live[static_cast<std::size_t>(s)];
        // Never the spanning flow at index 0.
        const std::size_t victim = 1 + rng.below(flows.size() - 1);
        solver.remove_flow(flows[victim]);
        flows[victim] = make_flow(s);
        if (round % 16 == s) {
          solver.set_capacity(
              res[static_cast<std::size_t>(s)][rng.below(kResPerShard)],
              rng.uniform(15.0, 45.0));
        }
      }
      const auto& rates = solver.solve();
      const auto& probe = live[static_cast<std::size_t>(round % kShards)];
      out.checksum += rates[probe[static_cast<std::size_t>(round) %
                                  probe.size()]];
    }
    out.agg = solver.aggregate_rate();
    out.wall_ms = ms_since(start);
    out.stats = solver.stats();
    return out;
  };

  BenchResult r;
  const auto start = Clock::now();
  const RunOut t1 = run_churn(1);
  const RunOut t8 = run_churn(kThreads);
  r.wall_ms = ms_since(start);
  r.metrics = std::map<std::string, double>{
      {"events", static_cast<double>(kRounds * kShards)},
      {"rate_checksum_gbps", t1.checksum},
      {"mt_checksum_delta", std::fabs(t1.checksum - t8.checksum)},
      {"agg_final_gbps", t1.agg},
      {"components", static_cast<double>(t8.stats.components)},
      {"largest_component_flows",
       static_cast<double>(t8.stats.largest_component_flows)},
      {"parallel_batches", static_cast<double>(t8.stats.parallel_batches)},
      {"threads_speedup", t8.wall_ms > 0.0 ? t1.wall_ms / t8.wall_ms : 0.0},
      {"threads_info", static_cast<double>(kThreads)},
      {"hw_concurrency_info",
       static_cast<double>(std::thread::hardware_concurrency())}};
  return r;
}

/// Fluid-simulation replay: staggered transfers over a 4-node fabric with
/// completion-spawned follow-ups, capacity control events, no-op watchdog
/// ticks (the cache-hit path across control points that touch nothing)
/// and a few aborts. Pins end-to-end fluid results (simulated makespan,
/// aggregate bandwidth) plus the solver call/round counters driven by the
/// event loop.
BenchResult bench_fluid_replay() {
  using namespace numaio::sim;
  constexpr int kNodes = 4;
  constexpr int kTransfers = 360;
  return timed(3, [&] {
    obs::Context ctx;
    FlowSolver solver;
    solver.set_observer(&ctx);
    Rng rng(0xF1D0);
    std::vector<ResourceId> mc, pair(kNodes * kNodes, 0);
    for (int n = 0; n < kNodes; ++n) {
      mc.push_back(solver.add_resource("mc", 50.0));
    }
    for (int a = 0; a < kNodes; ++a) {
      for (int b = 0; b < kNodes; ++b) {
        if (a == b) continue;
        pair[static_cast<std::size_t>(a * kNodes + b)] =
            solver.add_resource("fab", rng.uniform(14.0, 30.0));
      }
    }
    FluidSimulation fluid(solver);
    fluid.enable_rate_trace();
    auto random_usages = [&] {
      const int src = static_cast<int>(rng.below(kNodes));
      int dst = static_cast<int>(rng.below(kNodes - 1));
      if (dst >= src) ++dst;
      return std::vector<Usage>{
          {mc[static_cast<std::size_t>(src)], 1.0},
          {pair[static_cast<std::size_t>(src * kNodes + dst)], 1.0},
          {mc[static_cast<std::size_t>(dst)], 1.0}};
    };
    for (int i = 0; i < kTransfers; ++i) {
      const sim::Bytes bytes = (4 + rng.below(28)) * sim::kMiB;
      const Ns at = i * 40.0e3 + rng.uniform(0.0, 20.0e3);
      const Gbps cap =
          rng.uniform() < 0.3 ? rng.uniform(3.0, 12.0) : kUnlimited;
      FluidSimulation::CompletionFn follow_up;
      if (i % 8 == 0) {
        follow_up = [&](FluidSimulation::TransferId, Ns) {
          fluid.start_transfer(random_usages(), 2 * sim::kMiB);
        };
      }
      fluid.start_transfer_at(at, random_usages(), bytes, cap,
                              std::move(follow_up));
    }
    for (int k = 0; k < 240; ++k) {
      const Ns at = k * 60.0e3;
      if (k % 3 == 0) {
        const ResourceId p = pair[static_cast<std::size_t>(
            (k % kNodes) * kNodes + ((k + 1) % kNodes))];
        const Gbps cap = 14.0 + (k % 7) * 2.0;
        fluid.schedule_control(at, [&solver, p, cap] {
          solver.set_capacity(p, cap);
        });
      } else {
        fluid.schedule_control(at, [] {});  // watchdog tick, touches nothing
      }
    }
    for (int j = 0; j < 8; ++j) {
      const auto id = static_cast<FluidSimulation::TransferId>(
          rng.below(kTransfers));
      fluid.schedule_control(j * 900.0e3 + 5.0,
                             [&fluid, id] { fluid.abort_transfer(id); });
    }
    const Ns end = fluid.run();
    return std::map<std::string, double>{
        {"transfers", static_cast<double>(fluid.transfer_count())},
        {"sim_ms", end / 1.0e6},
        {"aggregate_gbps", fluid.aggregate_rate()},
        {"rounds_total", ctx.metrics.value("solver.rounds") +
                             ctx.metrics.value("solver.iterations")},
        {"solve_calls", ctx.metrics.value("solver.solves")},
        {"cache_hits", ctx.metrics.value("solver.cache_hits")}};
  });
}

/// Fleet serving core under an overload storm with one host crashing
/// mid-run (src/fleet): three tenants splitting more load than three
/// hosts can carry, host 1 down for a quarter of the run and warming
/// back up at half capacity. Pins the degradation contract — scheduled
/// attempts/s, the shed fraction and the accepted-request p99 — plus the
/// fail-over and breaker counters.
BenchResult bench_fleet_storm() {
  using namespace numaio::fleet;
  return timed(3, [&] {
    StormScenario storm = make_storm(/*num_hosts=*/3, /*num_tenants=*/3,
                                     /*offered_rps=*/700.0, /*seed=*/11,
                                     /*horizon=*/2.0e9);
    FleetSim sim(storm.config, storm.tenants);
    sim.set_fault_plan(storm.plan);
    const FleetReport report = sim.run();
    return std::map<std::string, double>{
        {"sched_rps", report.attempts_per_s},
        {"shed_fraction", report.shed_fraction},
        {"accepted_p99_ms", report.accepted_p99 / 1e6},
        {"completed", static_cast<double>(report.completed)},
        {"replaced", static_cast<double>(report.replaced)},
        {"breaker_trips", static_cast<double>(report.breaker_trips)},
        {"max_queue_depth", static_cast<double>(report.max_queue_depth)}};
  });
}

/// The fleet-scale request path (DESIGN.md §12): thousands of tenants at
/// six-figure offered rps over 16 hosts, batched admission epochs over
/// sharded tenant state, coarse service modeling, class-spread placement
/// and a mid-run host crash. sched_rps carries the throughput contract —
/// the perf guard holds it to an absolute 1e5 floor (it is simulated-time
/// deterministic, so the floor gates capability, not host noise) — and
/// placement_p99_ms pins the admission -> first-dispatch tail.
BenchResult bench_fleet_scale() {
  using namespace numaio::fleet;
  return timed(2, [&] {
    StormScenario storm = make_scale_storm(
        /*num_hosts=*/24, /*num_tenants=*/2000, /*offered_rps=*/1.4e6,
        /*seed=*/11, /*horizon=*/0.4e9);
    // Past 10^6 scheduled req/s: RPC-sized payloads and wide per-host
    // concurrency so slot turnover, not payload drain, sets the pace,
    // and a finer completion grid so alarm rounding stays a small tax.
    // Event lanes follow the machine; the lane count never changes the
    // metrics below (the engine's invariance property), only the wall.
    for (auto& t : storm.tenants) t.request_bytes = 32 * numaio::sim::kKiB;
    storm.config.max_inflight_per_host = 128;
    storm.config.completion_grid = 0.25e6;
    // One admission epoch delivers ~2,800 arrivals; the queue must hold
    // an epoch's worth plus slack or everything past 512 sheds on entry.
    storm.config.queue_depth = 4096;
    const unsigned hw = std::thread::hardware_concurrency();
    storm.config.event_lanes = std::max(
        1, std::min(storm.config.num_hosts, static_cast<int>(hw ? hw : 1)));
    FleetSim sim(storm.config, storm.tenants);
    sim.set_fault_plan(storm.plan);
    const FleetReport report = sim.run();
    return std::map<std::string, double>{
        {"sched_rps", report.attempts_per_s},
        {"placement_p99_ms", report.placement_p99 / 1e6},
        {"shed_fraction", report.shed_fraction},
        {"completed", static_cast<double>(report.completed)},
        {"replaced", static_cast<double>(report.replaced)},
        {"breaker_trips", static_cast<double>(report.breaker_trips)}};
  });
}

BenchSet run_benches(int reps) {
  io::Testbed tb = io::Testbed::dl585();
  BenchSet out;
  out["stream_matrix"] = bench_stream_matrix(tb);
  out["iomodel_node7_write"] = bench_iomodel_node7(tb, reps);
  out["fio_rdma_clean"] = bench_fio_clean(tb);
  out["fio_rdma_degraded_seed42"] = bench_fio_degraded(tb);
  out["multiuser_nic_ssd"] = bench_multiuser(tb);
  out["trace_stream_1m"] = bench_trace_stream();
  out["flame_fold_1m"] = bench_flame_fold();
  out["solver_storm"] = bench_solver_storm();
  out["solver_storm_mt"] = bench_solver_storm_mt();
  out["fluid_replay"] = bench_fluid_replay();
  out["fleet_storm"] = bench_fleet_storm();
  out["fleet_scale"] = bench_fleet_scale();
  return out;
}

// ---------------------------------------------------------------------
// compare / perturb.

struct CompareOptions {
  double wall_tol = 0.20;      ///< Relative; slowdowns only.
  double metric_tol = 0.01;    ///< Relative, either direction.
  double stall_tol = 0.02;     ///< Absolute, for *_stall_frac metrics.
  double speedup_floor = 3.0;  ///< Minimum for *_speedup metrics.
  double rps_floor = 5.0e5;    ///< Minimum for fleet_scale's sched_rps.
  bool skip_wall = false;
  bool skip_speedup = false;   ///< Drop the *_speedup floor gate.
};

double metric_or(const BenchResult& r, const std::string& name,
                 double fallback) {
  const auto it = r.metrics.find(name);
  return it == r.metrics.end() ? fallback : it->second;
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(),
                      suffix) == 0;
}

int compare(const BenchSet& base, const BenchSet& current,
            const CompareOptions& options) {
  int failures = 0;
  for (const auto& [name, b] : base) {
    const auto it = current.find(name);
    if (it == current.end()) {
      std::printf("FAIL %-26s missing from current results\n",
                  name.c_str());
      ++failures;
      continue;
    }
    const BenchResult& c = it->second;

    if (!options.skip_wall && b.wall_ms > 0.0) {
      const double rel = c.wall_ms / b.wall_ms - 1.0;
      if (rel > options.wall_tol) {
        std::printf("FAIL %-26s wall %.3f ms -> %.3f ms (+%.0f%% > %.0f%%)\n",
                    name.c_str(), b.wall_ms, c.wall_ms, 100.0 * rel,
                    100.0 * options.wall_tol);
        ++failures;
      } else {
        std::printf("ok   %-26s wall %.3f ms -> %.3f ms (%+.0f%%)\n",
                    name.c_str(), b.wall_ms, c.wall_ms, 100.0 * rel);
      }
    }

    for (const auto& [metric, base_value] : b.metrics) {
      const auto mit = c.metrics.find(metric);
      if (mit == c.metrics.end()) {
        std::printf("FAIL %-26s metric %s missing\n", name.c_str(),
                    metric.c_str());
        ++failures;
        continue;
      }
      const double cur_value = mit->second;
      // *_info metrics are facts about the measuring host (core count,
      // requested threads): recorded for context, never gated — the
      // baseline may have been refreshed on different hardware.
      if (ends_with(metric, "_info")) continue;
      // *_speedup metrics are ratios of two wall times: a relative gate
      // against the baseline would gate noise on noise. They get an
      // absolute floor instead, and only when the current host has the
      // cores the bench asked for (threads_info) — a smaller box cannot
      // measure parallel speedup, so the gate would only report the
      // host's size, not a regression.
      if (ends_with(metric, "_speedup")) {
        const double hw = metric_or(c, "hw_concurrency_info", 0.0);
        const double want = metric_or(c, "threads_info", 0.0);
        if (options.skip_speedup || hw < want) {
          std::printf("skip %-26s %s %.2fx (host has %.0f of %.0f cores)\n",
                      name.c_str(), metric.c_str(), cur_value, hw, want);
        } else if (cur_value < options.speedup_floor) {
          std::printf("FAIL %-26s %s %.2fx < %.2fx floor\n", name.c_str(),
                      metric.c_str(), cur_value, options.speedup_floor);
          ++failures;
        } else {
          std::printf("ok   %-26s %s %.2fx (floor %.2fx)\n", name.c_str(),
                      metric.c_str(), cur_value, options.speedup_floor);
        }
        continue;
      }
      // fleet_scale's sched_rps is the ISSUE 9 throughput contract: an
      // absolute floor, not a relative band. It is computed from
      // simulated time, so unlike wall-clock it cannot regress from host
      // noise — falling below the floor means the request path itself
      // lost capability.
      if (name == "fleet_scale" && metric == "sched_rps") {
        if (cur_value < options.rps_floor) {
          std::printf("FAIL %-26s %s %.0f < %.0f floor\n", name.c_str(),
                      metric.c_str(), cur_value, options.rps_floor);
          ++failures;
        } else {
          std::printf("ok   %-26s %s %.0f (floor %.0f)\n", name.c_str(),
                      metric.c_str(), cur_value, options.rps_floor);
        }
        continue;
      }
      bool bad = false;
      if (ends_with(metric, "stall_frac")) {
        bad = std::fabs(cur_value - base_value) > options.stall_tol;
      } else if (base_value != 0.0) {
        bad = std::fabs(cur_value / base_value - 1.0) > options.metric_tol;
      } else {
        bad = std::fabs(cur_value) > options.metric_tol;
      }
      if (bad) {
        std::printf("FAIL %-26s %s %.6g -> %.6g\n", name.c_str(),
                    metric.c_str(), base_value, cur_value);
        ++failures;
      }
    }
  }
  // The reverse direction: a bench or metric in the current run that the
  // baseline has never seen means the baseline predates it — the guard
  // would otherwise silently cover nothing for the new code. Fail with
  // the remedy spelled out instead.
  for (const auto& [name, c] : current) {
    const auto bit = base.find(name);
    if (bit == base.end()) {
      std::printf("FAIL %-26s not in baseline — refresh it with "
                  "`bench_harness run --out BENCH_numaio.json`\n",
                  name.c_str());
      ++failures;
      continue;
    }
    for (const auto& metric : c.metrics) {
      if (bit->second.metrics.count(metric.first) == 0) {
        std::printf("FAIL %-26s metric %s not in baseline — refresh it "
                    "with `bench_harness run --out BENCH_numaio.json`\n",
                    name.c_str(), metric.first.c_str());
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::printf("perf guard: %zu benches within tolerance\n", base.size());
    return 0;
  }
  std::printf("perf guard: %d failure(s)\n", failures);
  return 1;
}

// ---------------------------------------------------------------------
// CLI plumbing (kept flag-compatible with numaio_cli's conventions).

std::string flag_value(std::vector<std::string>& args,
                       const std::string& flag,
                       const std::string& fallback) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] != flag) continue;
    const std::string value = args[i + 1];
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
               args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    return value;
  }
  return fallback;
}

bool take_switch(std::vector<std::string>& args, const std::string& flag) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] != flag) continue;
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    return true;
  }
  return false;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: bench_harness run [--out FILE] [--reps N]\n"
      "       bench_harness compare BASELINE CURRENT [--wall-tol F]\n"
      "               [--metric-tol F] [--stall-tol F] [--skip-wall]\n"
      "               [--speedup-floor F] [--skip-speedup] [--rps-floor F]\n"
      "       bench_harness perturb IN OUT --wall-scale F\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "run") {
      const std::string out_path = flag_value(args, "--out", "");
      const int reps = std::stoi(flag_value(args, "--reps", "25"));
      if (!args.empty() || reps < 1) return usage();
      const BenchSet benches = run_benches(reps);
      if (out_path.empty()) {
        write_bench_json(benches, std::cout);
      } else {
        std::ofstream out(out_path, std::ios::binary);
        if (!out) {
          throw std::runtime_error("cannot write '" + out_path + "'");
        }
        write_bench_json(benches, out);
        std::printf("wrote %zu benches to %s\n", benches.size(),
                    out_path.c_str());
      }
      return 0;
    }
    if (cmd == "compare") {
      CompareOptions options;
      options.wall_tol =
          std::stod(flag_value(args, "--wall-tol", "0.20"));
      options.metric_tol =
          std::stod(flag_value(args, "--metric-tol", "0.01"));
      options.stall_tol =
          std::stod(flag_value(args, "--stall-tol", "0.02"));
      options.speedup_floor =
          std::stod(flag_value(args, "--speedup-floor", "3.0"));
      options.rps_floor =
          std::stod(flag_value(args, "--rps-floor", "5.0e5"));
      options.skip_wall = take_switch(args, "--skip-wall");
      options.skip_speedup = take_switch(args, "--skip-speedup");
      if (args.size() != 2) return usage();
      return compare(load_bench_json(args[0]), load_bench_json(args[1]),
                     options);
    }
    if (cmd == "perturb") {
      const double scale =
          std::stod(flag_value(args, "--wall-scale", "1.0"));
      if (args.size() != 2) return usage();
      BenchSet benches = load_bench_json(args[0]);
      for (auto& [name, r] : benches) r.wall_ms *= scale;
      std::ofstream out(args[1], std::ios::binary);
      if (!out) throw std::runtime_error("cannot write '" + args[1] + "'");
      write_bench_json(benches, out);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_harness %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}
