// Table IV: NUMA I/O bandwidth performance model for DEVICE WRITE (Gbps).
// Classes from the proposed memcpy model, with the measured TCP-send,
// RDMA_WRITE and SSD-write rows summarized per class.
// Paper averages per class {6,7}/{0,1,4,5}/{2,3}:
//   memcpy 51.2/44.5/26.6, TCP 20.3/20.4/16.2, RDMA_WRITE 23.3/23.2/17.1,
//   SSD write 28.8/28.5/18.0.
#include <cstdio>

#include "bench/common.h"
#include "model/classify.h"
#include "model/report.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  bench::banner("Table IV: device-write performance model (Gbps)");

  const auto m =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceWrite);
  const auto classes = model::classify(m, tb.machine().topology());

  std::vector<model::MeasuredRow> rows;
  rows.push_back({"TCP sender", bench::sweep_nodes(tb, io::kTcpSend, 4)});
  rows.push_back({"RDMA_WRITE", bench::sweep_nodes(tb, io::kRdmaWrite, 4)});
  rows.push_back({"SSD write", bench::sweep_nodes(tb, io::kSsdWrite, 4)});

  std::printf("%s",
              model::format_class_table(classes, "Proposed memcpy", m.bw,
                                        rows)
                  .c_str());
  bench::note("");
  bench::note("paper avgs: memcpy 51.2/44.5/26.6  TCP 20.3/20.4/16.2");
  bench::note("            RDMA_W 23.3/23.2/17.1  SSD_w 28.8/28.5/18.0");
  return 0;
}
