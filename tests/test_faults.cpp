// Fault subsystem tests: plan validation, seeded-plan determinism,
// injector transition scheduling, pure state queries, machine restoration
// and — the headline guarantee — byte-identical traces and results across
// same-seed runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "simcore/status.h"
#include "io/fio.h"
#include "io/nic.h"
#include "io/testbed.h"

namespace numaio::faults {
namespace {

FaultEvent mc_throttle(NodeId node, sim::Ns start, sim::Ns dur, double sev) {
  FaultEvent e;
  e.kind = FaultKind::kMcThrottle;
  e.node = node;
  e.start = start;
  e.duration = dur;
  e.severity = sev;
  return e;
}

FaultEvent link_degrade(NodeId src, NodeId dst, sim::Ns start, sim::Ns dur,
                        double sev) {
  FaultEvent e;
  e.kind = FaultKind::kLinkDegrade;
  e.src = src;
  e.dst = dst;
  e.start = start;
  e.duration = dur;
  e.severity = sev;
  return e;
}

FaultEvent noise(sim::Ns start, sim::Ns dur, double amp_minus_one) {
  FaultEvent e;
  e.kind = FaultKind::kMeasureNoise;
  e.start = start;
  e.duration = dur;
  e.severity = amp_minus_one;
  return e;
}

TEST(FaultPlanTest, KindNames) {
  EXPECT_STREQ(to_string(FaultKind::kLinkDegrade), "link-degrade");
  EXPECT_STREQ(to_string(FaultKind::kLinkFlap), "link-flap");
  EXPECT_STREQ(to_string(FaultKind::kMcThrottle), "mc-throttle");
  EXPECT_STREQ(to_string(FaultKind::kDeviceStall), "device-stall");
  EXPECT_STREQ(to_string(FaultKind::kIrqStorm), "irq-storm");
  EXPECT_STREQ(to_string(FaultKind::kMeasureNoise), "measure-noise");
}

TEST(FaultPlanTest, RandomPlanIsDeterministic) {
  const FaultPlan a = FaultPlan::random(99, 8, 3);
  const FaultPlan b = FaultPlan::random(99, 8, 3);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.events().size(), 4u);  // default num_events
  const FaultPlan c = FaultPlan::random(100, 8, 3);
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(FaultPlanTest, RandomPlanSkipsDeviceStallsWithoutDevices) {
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    RandomPlanConfig config;
    config.num_events = 12;
    const FaultPlan plan = FaultPlan::random(seed, 8, 0, config);
    for (const FaultEvent& e : plan.events()) {
      EXPECT_NE(e.kind, FaultKind::kDeviceStall);
    }
    plan.validate(8, 0);  // must not throw
  }
}

TEST(FaultPlanTest, ValidateRejectsMalformedEvents) {
  {
    FaultPlan p;
    p.add(mc_throttle(5, -1.0, 1e9, 0.5));  // negative start
    EXPECT_THROW(p.validate(8, 0), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.add(mc_throttle(5, 0.0, 0.0, 0.5));  // zero duration
    EXPECT_THROW(p.validate(8, 0), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.add(mc_throttle(8, 0.0, 1e9, 0.5));  // node out of range
    EXPECT_THROW(p.validate(8, 0), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.add(link_degrade(3, 3, 0.0, 1e9, 0.5));  // src == dst
    EXPECT_THROW(p.validate(8, 0), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.add(mc_throttle(5, 0.0, 1e9, 1.5));  // severity > 1
    EXPECT_THROW(p.validate(8, 0), std::invalid_argument);
  }
  {
    FaultPlan p;
    FaultEvent e;
    e.kind = FaultKind::kDeviceStall;
    e.device = 1;  // only device 0 exists
    e.start = 0.0;
    e.duration = 1e9;
    p.add(e);
    EXPECT_THROW(p.validate(8, 1), std::invalid_argument);
  }
  {
    FaultPlan p;
    FaultEvent e = link_degrade(0, 1, 0.0, 1e9, 0.5);
    e.kind = FaultKind::kLinkFlap;
    e.flaps = 0;  // flap count must be >= 1
    p.add(e);
    EXPECT_THROW(p.validate(8, 0), std::invalid_argument);
  }
}

TEST(FaultInjectorTest, TransitionTimesAndActivityWindows) {
  io::Testbed tb = io::Testbed::dl585();
  FaultPlan plan;
  plan.add(mc_throttle(5, 1.0e9, 2.0e9, 0.5));
  FaultInjector injector(tb.machine(), std::move(plan));

  EXPECT_DOUBLE_EQ(injector.next_transition_after(0.0), 1.0e9);
  EXPECT_DOUBLE_EQ(injector.next_transition_after(1.0e9), 3.0e9);
  EXPECT_TRUE(std::isinf(injector.next_transition_after(3.0e9)));

  EXPECT_FALSE(injector.any_capacity_fault_active(0.5e9));
  EXPECT_TRUE(injector.any_capacity_fault_active(2.0e9));
  EXPECT_FALSE(injector.any_capacity_fault_active(3.5e9));
}

TEST(FaultInjectorTest, DegradedNodesAreSortedAndUnique) {
  io::Testbed tb = io::Testbed::dl585();
  FaultPlan plan;
  plan.add(mc_throttle(5, 0.0, 10.0e9, 0.5));
  plan.add(link_degrade(2, 5, 0.0, 10.0e9, 0.5));  // 5 appears twice
  FaultInjector injector(tb.machine(), std::move(plan));
  const std::vector<NodeId> degraded = injector.degraded_nodes(1.0e9);
  EXPECT_EQ(degraded, (std::vector<NodeId>{2, 5}));
  EXPECT_TRUE(injector.degraded_nodes(20.0e9).empty());
}

TEST(FaultInjectorTest, NoiseAmplificationComposesMultiplicatively) {
  io::Testbed tb = io::Testbed::dl585();
  FaultPlan plan;
  plan.add(noise(0.0, 4.0e9, 1.0));   // amp 2x over [0, 4s)
  plan.add(noise(2.0e9, 4.0e9, 0.5));  // amp 1.5x over [2s, 6s)
  FaultInjector injector(tb.machine(), std::move(plan));
  EXPECT_DOUBLE_EQ(injector.noise_amplification(1.0e9), 2.0);
  EXPECT_DOUBLE_EQ(injector.noise_amplification(3.0e9), 3.0);
  EXPECT_DOUBLE_EQ(injector.noise_amplification(5.0e9), 1.5);
  EXPECT_DOUBLE_EQ(injector.noise_amplification(7.0e9), 1.0);
  // Noise never counts as a capacity fault.
  EXPECT_FALSE(injector.any_capacity_fault_active(3.0e9));
}

TEST(FaultInjectorTest, DeviceRegistrationAndStallQueries) {
  io::Testbed tb = io::Testbed::dl585();
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kDeviceStall;
  e.device = 0;
  e.start = 2.0e9;
  e.duration = 1.0e9;
  plan.add(e);
  FaultInjector injector(tb.machine(), std::move(plan));
  const int idx = injector.register_device(tb.nic().name(),
                                           tb.nic().attach_node(),
                                           tb.nic().fault_resources());
  EXPECT_EQ(idx, 0);
  EXPECT_EQ(injector.device_index(tb.nic().name()), 0);
  EXPECT_EQ(injector.device_index("no-such-device"), -1);
  EXPECT_FALSE(injector.device_stalled(0, 1.0e9));
  EXPECT_TRUE(injector.device_stalled(0, 2.5e9));
  EXPECT_FALSE(injector.device_stalled(0, 3.5e9));
  // The stalled device's attach node reads as degraded.
  const auto degraded = injector.degraded_nodes(2.5e9);
  EXPECT_TRUE(std::binary_search(degraded.begin(), degraded.end(),
                                 tb.nic().attach_node()));
}

TEST(FaultInjectorTest, FlapAppliesOnePairPerDeadWindow) {
  io::Testbed tb = io::Testbed::dl585();
  FaultPlan plan;
  FaultEvent e = link_degrade(0, 1, 1.0e9, 6.0e9, 1.0);
  e.kind = FaultKind::kLinkFlap;
  e.flaps = 3;
  plan.add(e);
  FaultInjector injector(tb.machine(), std::move(plan));
  injector.advance_to(100.0e9);
  const std::string trace = injector.trace_to_string();
  const auto lines = std::count(trace.begin(), trace.end(), '\n');
  EXPECT_EQ(lines, 6);  // three on/off pairs
  injector.restore();
}

TEST(FaultInjectorTest, RestoreReturnsTheMachineToHealthy) {
  io::Testbed tb = io::Testbed::dl585();
  io::FioJob job;
  job.devices = {&tb.nic()};
  job.engine = io::kRdmaRead;
  job.cpu_node = 2;
  job.num_streams = 2;
  job.bytes_per_stream = 4 * sim::kGiB;

  io::FioRunner fio(tb.host());
  const double healthy = fio.run(job).aggregate;

  FaultPlan plan;
  plan.add(mc_throttle(2, 0.0, 1.0e12, 0.9));
  FaultInjector injector(tb.machine(), std::move(plan));
  injector.advance_to(10.0e9);
  injector.restore();

  EXPECT_DOUBLE_EQ(fio.run(job).aggregate, healthy);
}

TEST(FaultInjectorTest, SameSeedRunsAreByteIdentical) {
  auto run_once = [](std::string* trace) {
    io::Testbed tb = io::Testbed::dl585();
    FaultPlan plan = FaultPlan::random(42, tb.machine().num_nodes(), 1);
    FaultInjector injector(tb.machine(), std::move(plan));
    injector.register_device(tb.nic().name(), tb.nic().attach_node(),
                             tb.nic().fault_resources());
    io::FioJob job;
    job.devices = {&tb.nic()};
    job.engine = io::kRdmaRead;
    job.cpu_node = 2;
    job.num_streams = 4;
    job.bytes_per_stream = 40 * sim::kGiB;
    job.retry.timeout = 30.0e9;
    io::FioRunner fio(tb.host());
    fio.set_fault_injector(&injector);
    const io::FioResult result = fio.run(job);
    *trace = injector.trace_to_string();
    return result;
  };
  std::string trace_a, trace_b;
  const io::FioResult a = run_once(&trace_a);
  const io::FioResult b = run_once(&trace_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_FALSE(trace_a.empty());
  EXPECT_EQ(a.aggregate, b.aggregate);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.aborted_streams, b.aborted_streams);
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t s = 0; s < a.streams.size(); ++s) {
    EXPECT_EQ(a.streams[s].avg_rate, b.streams[s].avg_rate) << s;
    EXPECT_EQ(a.streams[s].bytes_moved, b.streams[s].bytes_moved) << s;
    EXPECT_EQ(a.streams[s].outcome.retries, b.streams[s].outcome.retries)
        << s;
    EXPECT_EQ(a.streams[s].outcome.confidence,
              b.streams[s].outcome.confidence)
        << s;
  }
}

// --- fault-plan file format (docs/FORMATS.md §6) -------------------------

// Severity defaults to the FaultEvent default: crash/hang ignore it and
// the renderer omits it for them, so a round-tripped event keeps the
// default value.
FaultEvent host_event(FaultKind kind, int host, sim::Ns start, sim::Ns dur,
                      double sev = 0.5) {
  FaultEvent e;
  e.kind = kind;
  e.host = host;
  e.start = start;
  e.duration = dur;
  e.severity = sev;
  return e;
}

TEST(FaultPlanFileTest, HostKindsRoundTripExactly) {
  FaultPlan plan;
  plan.add(host_event(FaultKind::kHostCrash, 1, 0.3e9, 0.25e9));
  plan.add(host_event(FaultKind::kHostHang, 0, 0.123456789e9, 1.0e9 / 3.0));
  plan.add(host_event(FaultKind::kHostRecover, 1, 0.55e9, 0.2e9, 0.5));
  plan.add(mc_throttle(3, 1.0e9, 2.0e9, 0.75));
  plan.add(link_degrade(0, 7, 0.5e9, 1.5e9, 0.9));

  const std::string text = render_fault_plan(plan);
  const FaultPlan parsed = parse_fault_plan(text);
  ASSERT_EQ(parsed.events().size(), plan.events().size());
  for (std::size_t i = 0; i < plan.events().size(); ++i) {
    const FaultEvent& a = plan.events()[i];
    const FaultEvent& b = parsed.events()[i];
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.host, b.host) << i;
    EXPECT_EQ(a.node, b.node) << i;
    EXPECT_EQ(a.src, b.src) << i;
    EXPECT_EQ(a.dst, b.dst) << i;
    // Bit-exact: the renderer picks the shortest representation that
    // strtod round-trips, so times and severities survive unchanged.
    EXPECT_EQ(a.start, b.start) << i;
    EXPECT_EQ(a.duration, b.duration) << i;
    EXPECT_EQ(a.severity, b.severity) << i;
  }
  // Idempotent: render(parse(render(p))) == render(p).
  EXPECT_EQ(render_fault_plan(parsed), text);
}

TEST(FaultPlanFileTest, ParserAcceptsCommentsSuffixesAndBlankLines) {
  const FaultPlan plan = parse_fault_plan(
      "# comment-only line\n"
      "\n"
      "host-crash host=1 start=1500ms dur=2s   # trailing comment\n"
      "host-hang host=0 start=250000us dur=1000000000ns\n");
  ASSERT_EQ(plan.events().size(), 2u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kHostCrash);
  EXPECT_DOUBLE_EQ(plan.events()[0].start, 1.5e9);
  EXPECT_DOUBLE_EQ(plan.events()[0].duration, 2.0e9);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kHostHang);
  EXPECT_DOUBLE_EQ(plan.events()[1].start, 0.25e9);
  EXPECT_DOUBLE_EQ(plan.events()[1].duration, 1.0e9);
}

TEST(FaultPlanFileTest, DuplicateKeyIsAParseError) {
  try {
    parse_fault_plan("host-crash host=1 host=2 start=0.1 dur=0.2\n");
    FAIL() << "duplicate key accepted";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code, StatusCode::kParse);
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(FaultPlanFileTest, MissingRequiredKeyAndUnknownKindAreParseErrors) {
  EXPECT_THROW(parse_fault_plan("host-crash start=0.1 dur=0.2\n"),
               StatusError);
  EXPECT_THROW(parse_fault_plan("host-crash host=1 dur=0.2\n"), StatusError);
  EXPECT_THROW(parse_fault_plan("host-melt host=1 start=0.1 dur=0.2\n"),
               StatusError);
  EXPECT_THROW(parse_fault_plan("host-crash host=one start=0.1 dur=0.2\n"),
               StatusError);
}

TEST(FaultPlanFileTest, ZeroDurationParsesButFailsValidation) {
  // The parser is syntax-only; the zero-length window is caught by
  // validate(), exactly like a programmatically-built plan.
  const FaultPlan plan =
      parse_fault_plan("host-crash host=0 start=0.5 dur=0\n");
  ASSERT_EQ(plan.events().size(), 1u);
  EXPECT_DOUBLE_EQ(plan.events()[0].duration, 0.0);
  EXPECT_THROW(plan.validate(8, 0, 4), std::invalid_argument);
}

TEST(FaultPlanFileTest, OverlappingHostWindowsValidateAndCompose) {
  // Two overlapping crash windows on one host are legal; the host is down
  // for their union.
  FaultPlan plan;
  plan.add(host_event(FaultKind::kHostCrash, 0, 1.0e9, 2.0e9));
  plan.add(host_event(FaultKind::kHostCrash, 0, 2.0e9, 3.0e9));
  EXPECT_NO_THROW(plan.validate(8, 0, 2));
  const FaultPlan parsed = parse_fault_plan(render_fault_plan(plan));
  io::Testbed tb = io::Testbed::dl585();
  FaultInjector injector(tb.machine(), parsed);
  EXPECT_FALSE(injector.host_crashed(0, 0.5e9));
  EXPECT_TRUE(injector.host_crashed(0, 1.5e9));
  EXPECT_TRUE(injector.host_crashed(0, 2.5e9));  // inside both windows
  EXPECT_TRUE(injector.host_crashed(0, 4.5e9));  // second window only
  EXPECT_FALSE(injector.host_crashed(0, 5.5e9));
  EXPECT_FALSE(injector.host_crashed(1, 1.5e9));
}

TEST(FaultPlanFileTest, HostIndexRangeIsValidatesJob) {
  const FaultPlan plan =
      parse_fault_plan("host-recover host=5 start=0.1 dur=0.2 sev=0.5\n");
  EXPECT_NO_THROW(plan.validate(8, 0, /*num_hosts=*/-1));  // lazy bound
  EXPECT_THROW(plan.validate(8, 0, /*num_hosts=*/4), std::invalid_argument);
}

}  // namespace
}  // namespace numaio::faults
