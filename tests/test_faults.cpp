// Fault subsystem tests: plan validation, seeded-plan determinism,
// injector transition scheduling, pure state queries, machine restoration
// and — the headline guarantee — byte-identical traces and results across
// same-seed runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "io/fio.h"
#include "io/nic.h"
#include "io/testbed.h"

namespace numaio::faults {
namespace {

FaultEvent mc_throttle(NodeId node, sim::Ns start, sim::Ns dur, double sev) {
  FaultEvent e;
  e.kind = FaultKind::kMcThrottle;
  e.node = node;
  e.start = start;
  e.duration = dur;
  e.severity = sev;
  return e;
}

FaultEvent link_degrade(NodeId src, NodeId dst, sim::Ns start, sim::Ns dur,
                        double sev) {
  FaultEvent e;
  e.kind = FaultKind::kLinkDegrade;
  e.src = src;
  e.dst = dst;
  e.start = start;
  e.duration = dur;
  e.severity = sev;
  return e;
}

FaultEvent noise(sim::Ns start, sim::Ns dur, double amp_minus_one) {
  FaultEvent e;
  e.kind = FaultKind::kMeasureNoise;
  e.start = start;
  e.duration = dur;
  e.severity = amp_minus_one;
  return e;
}

TEST(FaultPlanTest, KindNames) {
  EXPECT_STREQ(to_string(FaultKind::kLinkDegrade), "link-degrade");
  EXPECT_STREQ(to_string(FaultKind::kLinkFlap), "link-flap");
  EXPECT_STREQ(to_string(FaultKind::kMcThrottle), "mc-throttle");
  EXPECT_STREQ(to_string(FaultKind::kDeviceStall), "device-stall");
  EXPECT_STREQ(to_string(FaultKind::kIrqStorm), "irq-storm");
  EXPECT_STREQ(to_string(FaultKind::kMeasureNoise), "measure-noise");
}

TEST(FaultPlanTest, RandomPlanIsDeterministic) {
  const FaultPlan a = FaultPlan::random(99, 8, 3);
  const FaultPlan b = FaultPlan::random(99, 8, 3);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.events().size(), 4u);  // default num_events
  const FaultPlan c = FaultPlan::random(100, 8, 3);
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(FaultPlanTest, RandomPlanSkipsDeviceStallsWithoutDevices) {
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    RandomPlanConfig config;
    config.num_events = 12;
    const FaultPlan plan = FaultPlan::random(seed, 8, 0, config);
    for (const FaultEvent& e : plan.events()) {
      EXPECT_NE(e.kind, FaultKind::kDeviceStall);
    }
    plan.validate(8, 0);  // must not throw
  }
}

TEST(FaultPlanTest, ValidateRejectsMalformedEvents) {
  {
    FaultPlan p;
    p.add(mc_throttle(5, -1.0, 1e9, 0.5));  // negative start
    EXPECT_THROW(p.validate(8, 0), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.add(mc_throttle(5, 0.0, 0.0, 0.5));  // zero duration
    EXPECT_THROW(p.validate(8, 0), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.add(mc_throttle(8, 0.0, 1e9, 0.5));  // node out of range
    EXPECT_THROW(p.validate(8, 0), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.add(link_degrade(3, 3, 0.0, 1e9, 0.5));  // src == dst
    EXPECT_THROW(p.validate(8, 0), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.add(mc_throttle(5, 0.0, 1e9, 1.5));  // severity > 1
    EXPECT_THROW(p.validate(8, 0), std::invalid_argument);
  }
  {
    FaultPlan p;
    FaultEvent e;
    e.kind = FaultKind::kDeviceStall;
    e.device = 1;  // only device 0 exists
    e.start = 0.0;
    e.duration = 1e9;
    p.add(e);
    EXPECT_THROW(p.validate(8, 1), std::invalid_argument);
  }
  {
    FaultPlan p;
    FaultEvent e = link_degrade(0, 1, 0.0, 1e9, 0.5);
    e.kind = FaultKind::kLinkFlap;
    e.flaps = 0;  // flap count must be >= 1
    p.add(e);
    EXPECT_THROW(p.validate(8, 0), std::invalid_argument);
  }
}

TEST(FaultInjectorTest, TransitionTimesAndActivityWindows) {
  io::Testbed tb = io::Testbed::dl585();
  FaultPlan plan;
  plan.add(mc_throttle(5, 1.0e9, 2.0e9, 0.5));
  FaultInjector injector(tb.machine(), std::move(plan));

  EXPECT_DOUBLE_EQ(injector.next_transition_after(0.0), 1.0e9);
  EXPECT_DOUBLE_EQ(injector.next_transition_after(1.0e9), 3.0e9);
  EXPECT_TRUE(std::isinf(injector.next_transition_after(3.0e9)));

  EXPECT_FALSE(injector.any_capacity_fault_active(0.5e9));
  EXPECT_TRUE(injector.any_capacity_fault_active(2.0e9));
  EXPECT_FALSE(injector.any_capacity_fault_active(3.5e9));
}

TEST(FaultInjectorTest, DegradedNodesAreSortedAndUnique) {
  io::Testbed tb = io::Testbed::dl585();
  FaultPlan plan;
  plan.add(mc_throttle(5, 0.0, 10.0e9, 0.5));
  plan.add(link_degrade(2, 5, 0.0, 10.0e9, 0.5));  // 5 appears twice
  FaultInjector injector(tb.machine(), std::move(plan));
  const std::vector<NodeId> degraded = injector.degraded_nodes(1.0e9);
  EXPECT_EQ(degraded, (std::vector<NodeId>{2, 5}));
  EXPECT_TRUE(injector.degraded_nodes(20.0e9).empty());
}

TEST(FaultInjectorTest, NoiseAmplificationComposesMultiplicatively) {
  io::Testbed tb = io::Testbed::dl585();
  FaultPlan plan;
  plan.add(noise(0.0, 4.0e9, 1.0));   // amp 2x over [0, 4s)
  plan.add(noise(2.0e9, 4.0e9, 0.5));  // amp 1.5x over [2s, 6s)
  FaultInjector injector(tb.machine(), std::move(plan));
  EXPECT_DOUBLE_EQ(injector.noise_amplification(1.0e9), 2.0);
  EXPECT_DOUBLE_EQ(injector.noise_amplification(3.0e9), 3.0);
  EXPECT_DOUBLE_EQ(injector.noise_amplification(5.0e9), 1.5);
  EXPECT_DOUBLE_EQ(injector.noise_amplification(7.0e9), 1.0);
  // Noise never counts as a capacity fault.
  EXPECT_FALSE(injector.any_capacity_fault_active(3.0e9));
}

TEST(FaultInjectorTest, DeviceRegistrationAndStallQueries) {
  io::Testbed tb = io::Testbed::dl585();
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kDeviceStall;
  e.device = 0;
  e.start = 2.0e9;
  e.duration = 1.0e9;
  plan.add(e);
  FaultInjector injector(tb.machine(), std::move(plan));
  const int idx = injector.register_device(tb.nic().name(),
                                           tb.nic().attach_node(),
                                           tb.nic().fault_resources());
  EXPECT_EQ(idx, 0);
  EXPECT_EQ(injector.device_index(tb.nic().name()), 0);
  EXPECT_EQ(injector.device_index("no-such-device"), -1);
  EXPECT_FALSE(injector.device_stalled(0, 1.0e9));
  EXPECT_TRUE(injector.device_stalled(0, 2.5e9));
  EXPECT_FALSE(injector.device_stalled(0, 3.5e9));
  // The stalled device's attach node reads as degraded.
  const auto degraded = injector.degraded_nodes(2.5e9);
  EXPECT_TRUE(std::binary_search(degraded.begin(), degraded.end(),
                                 tb.nic().attach_node()));
}

TEST(FaultInjectorTest, FlapAppliesOnePairPerDeadWindow) {
  io::Testbed tb = io::Testbed::dl585();
  FaultPlan plan;
  FaultEvent e = link_degrade(0, 1, 1.0e9, 6.0e9, 1.0);
  e.kind = FaultKind::kLinkFlap;
  e.flaps = 3;
  plan.add(e);
  FaultInjector injector(tb.machine(), std::move(plan));
  injector.advance_to(100.0e9);
  const std::string trace = injector.trace_to_string();
  const auto lines = std::count(trace.begin(), trace.end(), '\n');
  EXPECT_EQ(lines, 6);  // three on/off pairs
  injector.restore();
}

TEST(FaultInjectorTest, RestoreReturnsTheMachineToHealthy) {
  io::Testbed tb = io::Testbed::dl585();
  io::FioJob job;
  job.devices = {&tb.nic()};
  job.engine = io::kRdmaRead;
  job.cpu_node = 2;
  job.num_streams = 2;
  job.bytes_per_stream = 4 * sim::kGiB;

  io::FioRunner fio(tb.host());
  const double healthy = fio.run(job).aggregate;

  FaultPlan plan;
  plan.add(mc_throttle(2, 0.0, 1.0e12, 0.9));
  FaultInjector injector(tb.machine(), std::move(plan));
  injector.advance_to(10.0e9);
  injector.restore();

  EXPECT_DOUBLE_EQ(fio.run(job).aggregate, healthy);
}

TEST(FaultInjectorTest, SameSeedRunsAreByteIdentical) {
  auto run_once = [](std::string* trace) {
    io::Testbed tb = io::Testbed::dl585();
    FaultPlan plan = FaultPlan::random(42, tb.machine().num_nodes(), 1);
    FaultInjector injector(tb.machine(), std::move(plan));
    injector.register_device(tb.nic().name(), tb.nic().attach_node(),
                             tb.nic().fault_resources());
    io::FioJob job;
    job.devices = {&tb.nic()};
    job.engine = io::kRdmaRead;
    job.cpu_node = 2;
    job.num_streams = 4;
    job.bytes_per_stream = 40 * sim::kGiB;
    job.retry.timeout = 30.0e9;
    io::FioRunner fio(tb.host());
    fio.set_fault_injector(&injector);
    const io::FioResult result = fio.run(job);
    *trace = injector.trace_to_string();
    return result;
  };
  std::string trace_a, trace_b;
  const io::FioResult a = run_once(&trace_a);
  const io::FioResult b = run_once(&trace_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_FALSE(trace_a.empty());
  EXPECT_EQ(a.aggregate, b.aggregate);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.aborted_streams, b.aborted_streams);
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t s = 0; s < a.streams.size(); ++s) {
    EXPECT_EQ(a.streams[s].avg_rate, b.streams[s].avg_rate) << s;
    EXPECT_EQ(a.streams[s].bytes_moved, b.streams[s].bytes_moved) << s;
    EXPECT_EQ(a.streams[s].outcome.retries, b.streams[s].outcome.retries)
        << s;
    EXPECT_EQ(a.streams[s].outcome.confidence,
              b.streams[s].outcome.confidence)
        << s;
  }
}

}  // namespace
}  // namespace numaio::faults
