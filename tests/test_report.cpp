#include "model/report.h"

#include <gtest/gtest.h>

#include "fabric/calibration.h"

namespace numaio::model {
namespace {

TEST(Report, MatrixHasHeadersAndValues) {
  mem::BandwidthMatrix m;
  m.bw = {{1.0, 2.5}, {3.25, 4.0}};
  const std::string s = format_matrix(m);
  EXPECT_NE(s.find("CPU0"), std::string::npos);
  EXPECT_NE(s.find("MEM1"), std::string::npos);
  EXPECT_NE(s.find("3.25"), std::string::npos);
  EXPECT_NE(s.find("2.50"), std::string::npos);
}

TEST(Report, MatrixCustomPrefixes) {
  mem::BandwidthMatrix m;
  m.bw = {{1.0}};
  const std::string s = format_matrix(m, "SRC", "DST");
  EXPECT_NE(s.find("SRC0"), std::string::npos);
  EXPECT_NE(s.find("DST0"), std::string::npos);
}

TEST(Report, SeriesTitleAndLabels) {
  const std::vector<sim::Gbps> values{10.5, 20.25};
  const std::string s = format_series("write model", values);
  EXPECT_NE(s.find("write model"), std::string::npos);
  EXPECT_NE(s.find("node0"), std::string::npos);
  EXPECT_NE(s.find("node1"), std::string::npos);
  EXPECT_NE(s.find("10.50"), std::string::npos);
}

class ReportWithClasses : public ::testing::Test {
 protected:
  ReportWithClasses() : machine_(fabric::dl585_profile()), host_(machine_) {
    model_ = build_iomodel(host_, 7, Direction::kDeviceWrite);
    classes_ = classify(model_, machine_.topology());
  }
  fabric::Machine machine_;
  nm::Host host_;
  IoModelResult model_;
  Classification classes_;
};

TEST_F(ReportWithClasses, ClassTableShapedLikeTableIV) {
  std::vector<MeasuredRow> rows;
  rows.push_back(MeasuredRow{
      "TCP sender",
      {20.9, 20.9, 16.2, 16.2, 20.9, 20.9, 20.9, 20.0}});
  const std::string s = format_class_table(classes_, "Proposed memcpy",
                                           model_.bw, rows);
  EXPECT_NE(s.find("Class 1"), std::string::npos);
  EXPECT_NE(s.find("Class 3"), std::string::npos);
  EXPECT_NE(s.find("6,7"), std::string::npos);
  EXPECT_NE(s.find("0,1,4,5"), std::string::npos);
  EXPECT_NE(s.find("Proposed memcpy"), std::string::npos);
  EXPECT_NE(s.find("TCP sender avg"), std::string::npos);
}

TEST_F(ReportWithClasses, SummaryByClassComputesRangeAndAvg) {
  const std::vector<sim::Gbps> tcp{20.9, 20.9, 16.2, 16.2,
                                   20.9, 20.9, 20.9, 20.0};
  const ClassSummary s = summarize_by_class(classes_, tcp);
  ASSERT_EQ(s.avg.size(), 3u);
  EXPECT_NEAR(s.avg[0], (20.9 + 20.0) / 2.0, 1e-9);   // {6,7}
  EXPECT_NEAR(s.avg[2], 16.2, 1e-9);                  // {2,3}
  EXPECT_DOUBLE_EQ(s.range[0].first, 20.0);
  EXPECT_DOUBLE_EQ(s.range[0].second, 20.9);
}

TEST(Report, HeatmapShadesScaleWithValues) {
  mem::BandwidthMatrix m;
  m.bw = {{10.0, 20.0}, {30.0, 10.0}};
  const std::string s = format_heatmap(m);
  EXPECT_NE(s.find("CPU0"), std::string::npos);
  EXPECT_NE(s.find("scale: ' ' = 10.0 Gbps ... '@' = 30.0 Gbps"),
            std::string::npos);
  // Min cell renders as lightest, max as heaviest shade.
  EXPECT_NE(s.find("CPU1  @"), std::string::npos);
}

TEST(Report, HeatmapConstantMatrixDoesNotDivideByZero) {
  mem::BandwidthMatrix m;
  m.bw = {{5.0, 5.0}, {5.0, 5.0}};
  const std::string s = format_heatmap(m);
  EXPECT_NE(s.find("scale"), std::string::npos);
}

TEST(Report, CsvRoundTrip) {
  const std::vector<std::string> cols{"binding", "tcp", "rdma"};
  const std::vector<std::string> rows{"node0", "node7"};
  const std::vector<std::vector<double>> cells{{20.9, 23.3}, {20.0, 23.3}};
  const std::string csv = to_csv(cols, rows, cells);
  EXPECT_NE(csv.find("binding,tcp,rdma\n"), std::string::npos);
  EXPECT_NE(csv.find("node0,20.900,23.300\n"), std::string::npos);
}

}  // namespace
}  // namespace numaio::model
