// Profiling-layer tests (obs/profile.h): folded-stack semantics (wall vs
// self weights, unclosed spans, path nesting), byte-determinism of the
// folded export over a fixed-seed fleet run, the O(open spans) memory
// bound on a million-record deep synthetic trace, the scheduler-latency
// collector's event protocol, and the extreme-rank (q = 0.999) quantile
// interpolation the new p99.9 columns stand on.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/stream.h"
#include "obs/trace.h"

namespace numaio::obs {
namespace {

Event make(EventId id, SpanId span, EventId parent, char kind,
           const std::string& name, double t_sim,
           const std::string& outcome = "",
           const std::string& detail = "") {
  Event e;
  e.id = id;
  e.span = span;
  e.parent = parent;
  e.kind = kind;
  e.name = name;
  e.t_sim = t_sim;
  e.outcome = outcome;
  e.detail = detail;
  e.wall_us = -1.0;
  return e;
}

// --- Folded stacks ---------------------------------------------------------

/// root [0, 1000] ns containing child [200, 700] ns.
std::vector<Event> nested_capture() {
  std::vector<Event> events;
  events.push_back(make(1, 1, 0, 'B', "root", 0.0));
  events.push_back(make(2, 2, 1, 'B', "child", 200.0));
  events.push_back(make(3, 2, 0, 'E', "", 700.0, "ok"));
  events.push_back(make(4, 1, 0, 'E', "", 1000.0, "ok"));
  return events;
}

TEST(FoldedStacks, SelfWeightExcludesChildTime) {
  const std::vector<Event> events = nested_capture();
  VectorSource source(events);
  std::ostringstream out;
  const FoldStats stats =
      export_folded_stacks(source, out, FoldWeight::kSelf);
  EXPECT_EQ(out.str(), "root 500\nroot;child 500\n");
  EXPECT_EQ(stats.records, 4u);
  EXPECT_EQ(stats.spans, 2u);
  EXPECT_EQ(stats.stacks, 2u);
  EXPECT_EQ(stats.peak_open_spans, 2u);
}

TEST(FoldedStacks, WallWeightChargesFullDuration) {
  const std::vector<Event> events = nested_capture();
  VectorSource source(events);
  std::ostringstream out;
  export_folded_stacks(source, out, FoldWeight::kWall);
  EXPECT_EQ(out.str(), "root 1000\nroot;child 500\n");
}

TEST(FoldedStacks, UnclosedSpanKeepsClosedChildrenAttributed) {
  // root never ends; its child closes with 300 ns. finish() must fold
  // the root at its accumulated child time: zero self weight (dropped
  // from the output), child line intact under the root path.
  std::vector<Event> events;
  events.push_back(make(1, 1, 0, 'B', "root", 0.0));
  events.push_back(make(2, 2, 1, 'B', "child", 100.0));
  events.push_back(make(3, 2, 0, 'E', "", 400.0, "ok"));
  VectorSource source(events);
  std::ostringstream out;
  const FoldStats stats =
      export_folded_stacks(source, out, FoldWeight::kSelf);
  EXPECT_EQ(out.str(), "root;child 300\n");
  EXPECT_EQ(stats.stacks, 1u);

  // Under wall weight the unclosed root is charged its child time — the
  // only duration the stream can stand behind.
  VectorSource source2(events);
  std::ostringstream wall;
  export_folded_stacks(source2, wall, FoldWeight::kWall);
  EXPECT_EQ(wall.str(), "root 300\nroot;child 300\n");
}

TEST(FoldedStacks, EndWithoutBeginIsTolerated) {
  std::vector<Event> events;
  events.push_back(make(1, 7, 0, 'E', "", 500.0, "ok"));
  events.push_back(make(2, 0, 0, 'I', "note", 600.0));
  VectorSource source(events);
  std::ostringstream out;
  const FoldStats stats = export_folded_stacks(source, out);
  EXPECT_EQ(out.str(), "");
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.spans, 0u);
}

TEST(FoldedStacks, FixedSeedFleetRunFoldsByteIdentically) {
  // The acceptance bar: two same-seed fleet storms, captured
  // deterministically, must fold to byte-identical, well-formed output.
  const auto run_folded = []() {
    Context ctx;
    ctx.trace.set_deterministic(true);
    MemorySink capture;
    ctx.trace.set_sink(&capture);
    fleet::StormScenario storm = fleet::make_storm(
        /*num_hosts=*/2, /*num_tenants=*/2, /*offered_rps=*/120.0,
        /*seed=*/7, /*horizon=*/0.4e9);
    fleet::FleetSim sim(storm.config, storm.tenants);
    sim.set_fault_plan(std::move(storm.plan));
    sim.set_observer(&ctx);
    sim.run();
    VectorSource source(capture.events);
    std::ostringstream out;
    export_folded_stacks(source, out);
    return out.str();
  };
  const std::string first = run_folded();
  const std::string second = run_folded();
  EXPECT_EQ(first, second);
  ASSERT_FALSE(first.empty());
  EXPECT_NE(first.find("fleet.run"), std::string::npos) << first;

  // Every line must be valid folded format: `path;to;span <integer>`
  // with a positive weight and no empty path frames.
  std::istringstream lines(first);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    const std::string path = line.substr(0, space);
    EXPECT_EQ(path.find(' '), std::string::npos) << line;
    EXPECT_NE(path.front(), ';') << line;
    EXPECT_NE(path.back(), ';') << line;
    EXPECT_EQ(path.find(";;"), std::string::npos) << line;
    const long long weight = std::stoll(line.substr(space + 1));
    EXPECT_GT(weight, 0) << line;
  }
}

TEST(FoldedStacks, MillionRecordDeepTraceHoldsOpenSpanBound) {
  // The streaming-memory claim: folding a 10^6-record capture whose
  // spans nest 32 deep must never hold more than the nesting depth of
  // open spans (+1 for the synthetic root) — peak state is O(open
  // spans), not O(records).
  SyntheticTraceConfig config;
  config.records = 1000000;
  config.depth = 32;
  config.fanout = 8;
  config.seed = 11;
  SyntheticTraceSource source(config);
  FoldedStackCollector collector(FoldWeight::kSelf);
  source.stream(collector);
  collector.finish();
  const FoldStats& stats = collector.stats();
  EXPECT_EQ(stats.records, 1000000u);
  EXPECT_GT(stats.spans, 10000u);
  EXPECT_LE(stats.peak_open_spans, 33u);
  EXPECT_GT(stats.stacks, 0u);
}

// --- Scheduler latency -----------------------------------------------------

TEST(SchedLatency, MeasuresQueueWaitDispatchAndMigration) {
  // One request: admitted at 1 ms, first (refused) dispatch at 3 ms,
  // started at 6 ms, then two migrations 2 ms apart.
  const std::string req = "acme prio 1 req 4";
  std::vector<Event> events;
  events.push_back(make(1, 0, 0, 'I', "fleet.admit", 1.0e6, "admitted", req));
  events.push_back(
      make(2, 0, 0, 'I', "fleet.dispatch", 3.0e6, "refused", req));
  events.push_back(
      make(3, 0, 0, 'I', "fleet.dispatch", 6.0e6, "started", req));
  events.push_back(make(4, 0, 0, 'I', "sched.migrate", 8.0e6, "", req));
  events.push_back(make(5, 0, 0, 'I', "sched.migrate", 10.0e6, "", req));
  events.push_back(make(6, 0, 0, 'I', "fleet.complete", 12.0e6, "ok", req));
  VectorSource source(events);
  const SchedLatencyProfile profile = profile_scheduler(source);

  ASSERT_FALSE(profile.empty());
  EXPECT_EQ(profile.queue_wait.count, 1u);
  EXPECT_DOUBLE_EQ(profile.queue_wait.sum, 2.0);  // 1 ms -> 3 ms
  EXPECT_EQ(profile.dispatch.count, 1u);
  EXPECT_DOUBLE_EQ(profile.dispatch.sum, 3.0);  // 3 ms -> 6 ms
  EXPECT_EQ(profile.migration.count, 1u);       // first move only arms it
  EXPECT_DOUBLE_EQ(profile.migration.sum, 2.0);  // 8 ms -> 10 ms
}

TEST(SchedLatency, RefusedOnlyDispatchNeverCountsAsStart) {
  const std::string req = "acme prio 0 req 9";
  std::vector<Event> events;
  events.push_back(make(1, 0, 0, 'I', "fleet.admit", 0.0, "admitted", req));
  events.push_back(
      make(2, 0, 0, 'I', "fleet.dispatch", 2.0e6, "refused", req));
  events.push_back(make(3, 0, 0, 'I', "fleet.shed", 5.0e6, "shed", req));
  VectorSource source(events);
  const SchedLatencyProfile profile = profile_scheduler(source);
  EXPECT_EQ(profile.queue_wait.count, 1u);
  EXPECT_EQ(profile.dispatch.count, 0u);
  EXPECT_EQ(profile.migration.count, 0u);
}

TEST(SchedLatency, UntimedAndUnrelatedRecordsAreIgnored) {
  std::vector<Event> events;
  events.push_back(make(1, 0, 0, 'I', "fleet.admit", -1.0, "admitted", "x"));
  events.push_back(make(2, 0, 0, 'I', "fio.retry", 1.0e6, "retry", "x"));
  VectorSource source(events);
  const SchedLatencyProfile profile = profile_scheduler(source);
  EXPECT_TRUE(profile.empty());
  // Named histograms exist even when empty — report §6 renders
  // zero-count rows rather than vanishing.
  EXPECT_EQ(profile.queue_wait.name, "sched.queue_wait_ms");
  EXPECT_EQ(profile.dispatch.name, "sched.dispatch_ms");
  EXPECT_EQ(profile.migration.name, "sched.migration_ms");
}

TEST(SchedLatency, MergeIntoRegistryFeedsPrometheusNames) {
  const std::string req = "t prio 0 req 1";
  std::vector<Event> events;
  events.push_back(make(1, 0, 0, 'I', "fleet.admit", 0.0, "admitted", req));
  events.push_back(
      make(2, 0, 0, 'I', "fleet.dispatch", 4.0e6, "started", req));
  VectorSource source(events);
  const SchedLatencyProfile profile = profile_scheduler(source);

  MetricsRegistry registry;
  profile.merge_into(registry);
  const MetricsRegistry::Histogram* h =
      registry.find_histogram("sched.queue_wait_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_DOUBLE_EQ(h->sum, 4.0);
  // Merging twice doubles the counts (merge is additive, not replace).
  profile.merge_into(registry);
  EXPECT_EQ(registry.find_histogram("sched.queue_wait_ms")->count, 2u);
}

// --- Extreme-rank quantiles (the p99.9 columns) ----------------------------

TEST(HistogramQuantile, ExtremeRankInterpolatesWithFewSamples) {
  // Three samples in the single finite bucket [0, 10]: rank 0.999 * 3 =
  // 2.997 interpolates to 10 * (2.997 / 3) = 9.99 — the estimate moves
  // continuously with q even when the sample count is tiny.
  MetricsRegistry::Histogram h;
  h.name = "t";
  h.bounds = {10.0};
  h.counts.assign(2, 0);
  h.observe(5.0);
  h.observe(5.0);
  h.observe(5.0);
  EXPECT_NEAR(h.quantile(0.999), 9.99, 1e-12);
  // And it stays ordered against the neighbouring quantiles.
  EXPECT_LT(h.quantile(0.99), h.quantile(0.999));
  EXPECT_LE(h.quantile(0.999), h.quantile(1.0));
}

TEST(HistogramQuantile, ExtremeRankAcrossBuckets) {
  // 1 sample in [0,1], 3 in (1,2]: rank 3.996 lands in the second
  // bucket -> 1 + (3.996 - 1) / 3 = 1.99866...
  MetricsRegistry::Histogram h;
  h.name = "t";
  h.bounds = {1.0, 2.0};
  h.counts.assign(3, 0);
  h.observe(0.5);
  h.observe(1.2);
  h.observe(1.5);
  h.observe(1.8);
  EXPECT_NEAR(h.quantile(0.999), 1.0 + 2.996 / 3.0, 1e-12);
}

TEST(HistogramQuantile, OverflowRankClampsToLastBound) {
  MetricsRegistry::Histogram h;
  h.name = "t";
  h.bounds = {10.0};
  h.counts.assign(2, 0);
  h.observe(500.0);  // overflow bucket
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 10.0);
}

}  // namespace
}  // namespace numaio::obs
