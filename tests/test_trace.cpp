#include "io/trace.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "io/testbed.h"

namespace numaio::io {
namespace {

constexpr char kTrace[] = R"(# a data-mover request log
0.0,rdma_write,7,32
1.25,tcp_recv,2,8
2.5,ssd_read,0,16   # replay against the flash cards
)";

TEST(Trace, ParsesEntriesAndComments) {
  const auto entries = parse_trace(kTrace);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_DOUBLE_EQ(entries[0].arrival, 0.0);
  EXPECT_EQ(entries[0].engine, "rdma_write");
  EXPECT_EQ(entries[0].cpu_node, 7);
  EXPECT_EQ(entries[0].bytes, 32 * sim::kGiB);
  EXPECT_DOUBLE_EQ(entries[1].arrival, 1.25e9);
  EXPECT_EQ(entries[2].engine, "ssd_read");
}

TEST(Trace, FormatRoundTrips) {
  const auto entries = parse_trace(kTrace);
  const auto again = parse_trace(format_trace(entries));
  ASSERT_EQ(again.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_NEAR(again[i].arrival, entries[i].arrival, 1e3);
    EXPECT_EQ(again[i].engine, entries[i].engine);
    EXPECT_EQ(again[i].cpu_node, entries[i].cpu_node);
    EXPECT_NEAR(static_cast<double>(again[i].bytes),
                static_cast<double>(entries[i].bytes), 1e4);
  }
}

TEST(Trace, RejectsMalformedInput) {
  EXPECT_THROW(parse_trace(""), std::invalid_argument);
  EXPECT_THROW(parse_trace("0.0,rdma_write,7\n"), std::invalid_argument);
  EXPECT_THROW(parse_trace("abc,rdma_write,7,1\n"), std::invalid_argument);
  EXPECT_THROW(parse_trace("0.0,rdma_write,7,-2\n"), std::invalid_argument);
  EXPECT_THROW(parse_trace("-1.0,rdma_write,7,2\n"), std::invalid_argument);
}

TEST(Trace, RejectsUnsortedArrivals) {
  EXPECT_THROW(parse_trace("2.0,rdma_write,7,1\n1.0,rdma_write,7,1\n"),
               std::invalid_argument);
}

TEST(Trace, ErrorsCarryLineNumbers) {
  try {
    parse_trace("0.0,rdma_write,7,1\nbroken\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Trace, JobsPickTheRightDevices) {
  Testbed tb = Testbed::dl585();
  const auto entries = parse_trace(kTrace);
  const auto jobs = trace_to_jobs(entries, &tb.nic(), tb.ssds());
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].job.devices, std::vector<const PcieDevice*>{&tb.nic()});
  EXPECT_EQ(jobs[2].job.devices.size(), 1u);
  EXPECT_EQ(jobs[2].job.devices[0]->name().rfind("nytro", 0), 0u);
  EXPECT_DOUBLE_EQ(jobs[1].start, 1.25e9);
  EXPECT_EQ(jobs[1].job.bytes_per_stream, 8 * sim::kGiB);
}

TEST(Trace, MissingDevicesThrow) {
  const auto entries = parse_trace("0.0,ssd_read,0,1\n");
  EXPECT_THROW(trace_to_jobs(entries, nullptr, {}), std::invalid_argument);
}

TEST(Trace, ReplayRunsDeterministically) {
  Testbed tb = Testbed::dl585();
  const auto entries = parse_trace(kTrace);
  const auto jobs = trace_to_jobs(entries, &tb.nic(), tb.ssds());
  FioRunner fio(tb.host());
  const auto r1 = fio.run_timed(jobs);
  const auto r2 = fio.run_timed(jobs);
  ASSERT_EQ(r1.size(), 3u);
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_GT(r1[i].aggregate, 0.0);
    EXPECT_DOUBLE_EQ(r1[i].aggregate, r2[i].aggregate);
  }
}

}  // namespace
}  // namespace numaio::io
