// Interleaved buffers in I/O jobs: DMA traffic splits across the pages'
// nodes, so the transfer rate composes harmonically over the per-node
// classes — a placement-free mitigation knob for multi-tenant hosts.
#include <gtest/gtest.h>

#include "io/testbed.h"

namespace numaio::io {
namespace {

class InterleaveIoTest : public ::testing::Test {
 protected:
  InterleaveIoTest() : tb_(Testbed::dl585()), fio_(tb_.host()) {}

  double run(const std::string& engine, NodeId node,
             const std::string& policy_spec) {
    FioJob j;
    j.devices = {&tb_.nic()};
    j.engine = engine;
    j.cpu_node = node;
    j.num_streams = 4;
    if (!policy_spec.empty()) j.mem_policy = nm::parse_numactl(policy_spec);
    return fio_.run(j).aggregate;
  }

  Testbed tb_;
  FioRunner fio_;
};

TEST_F(InterleaveIoTest, DefaultPolicyMatchesLocalBinding) {
  EXPECT_DOUBLE_EQ(run(kRdmaRead, 0, ""), run(kRdmaRead, 0, "--localalloc"));
}

TEST_F(InterleaveIoTest, MembindOverridesTheBindingNode) {
  // Process on node 0, buffers forced to node 2: the transfer takes the
  // 7->2 path and reaches the class-2 rate despite the class-3 binding.
  const double local = run(kRdmaRead, 0, "");
  const double rebound = run(kRdmaRead, 0, "--membind=2");
  EXPECT_NEAR(local, 18.3, 0.2);
  EXPECT_NEAR(rebound, 22.0, 0.2);
}

TEST_F(InterleaveIoTest, InterleaveAveragesTheClasses) {
  // Pages split between nodes 2 (22.0 class) and 0 (18.3 class): the
  // window limit composes harmonically, slightly below the arithmetic
  // mean, and the engine cap may clip it.
  const double mixed = run(kRdmaRead, 0, "--interleave=0,2");
  EXPECT_GT(mixed, 18.3);
  EXPECT_LT(mixed, 22.0);
  // Harmonic-ish composition: 2 / (1/18.3 + 1/29.2-capped...) — just
  // bracket against the per-node runs.
  const double lo = run(kRdmaRead, 0, "--membind=0");
  const double hi = run(kRdmaRead, 0, "--membind=2");
  EXPECT_GT(mixed, lo);
  EXPECT_LT(mixed, hi);
}

TEST_F(InterleaveIoTest, FullInterleaveIsBindingIndependent) {
  // With pages over all nodes, the binding node no longer matters for the
  // DMA path (only CPU costs could differ, and RDMA has none to speak of).
  const double a = run(kRdmaRead, 0, "--interleave=0-7");
  const double b = run(kRdmaRead, 5, "--interleave=0-7");
  EXPECT_NEAR(a, b, 0.05);
}

TEST_F(InterleaveIoTest, InterleaveLiftsTheWorstBinding) {
  // Node 4's 16.1 Gbps RDMA_READ floor improves when its buffers spread.
  const double pinned = run(kRdmaRead, 4, "");
  const double spread = run(kRdmaRead, 4, "--interleave=0-7");
  EXPECT_GT(spread, pinned);
}

TEST_F(InterleaveIoTest, SsdWriteInterleaveBetweenClasses) {
  FioJob j;
  j.devices = tb_.ssds();
  j.engine = kSsdWrite;
  j.cpu_node = 2;
  j.num_streams = 4;
  const double pinned = fio_.run(j).aggregate;  // 18.0 class
  j.mem_policy = nm::parse_numactl("--interleave=2,6");
  const double mixed = fio_.run(j).aggregate;
  EXPECT_GT(mixed, pinned);
}

TEST_F(InterleaveIoTest, StreamStatsReportDominantNode) {
  FioJob j;
  j.devices = {&tb_.nic()};
  j.engine = kRdmaWrite;
  j.cpu_node = 3;
  j.num_streams = 2;
  j.mem_policy = nm::parse_numactl("--membind=5");
  const auto result = fio_.run(j);
  for (const auto& s : result.streams) EXPECT_EQ(s.mem_node, 5);
}

}  // namespace
}  // namespace numaio::io
