#include "mem/stream.h"

#include <gtest/gtest.h>

#include "io/testbed.h"

namespace numaio::mem {
namespace {

class StreamTest : public ::testing::Test {
 protected:
  fabric::Machine machine_{fabric::dl585_profile()};
  nm::Host host_{machine_};
};

TEST_F(StreamTest, BestIsAtMostTheCalibratedValueAndClose) {
  StreamBenchmark bench(host_, StreamConfig{});
  const StreamResult r = bench.run(7, 7);
  EXPECT_LE(r.best, 29.0);
  EXPECT_GT(r.best, 29.0 * 0.995);  // max-of-100 sits at the ceiling
}

TEST_F(StreamTest, BestMeanWorstOrdering) {
  StreamBenchmark bench(host_, StreamConfig{});
  const StreamResult r = bench.run(3, 5);
  EXPECT_GE(r.best, r.mean);
  EXPECT_GE(r.mean, r.worst);
  EXPECT_GT(r.worst, 0.0);
}

TEST_F(StreamTest, PaperAnchorCpu7Mem4) {
  StreamBenchmark bench(host_, StreamConfig{});
  EXPECT_NEAR(bench.run(7, 4).best, 21.34, 0.15);
}

TEST_F(StreamTest, PaperAnchorCpu4Mem7) {
  StreamBenchmark bench(host_, StreamConfig{});
  EXPECT_NEAR(bench.run(4, 7).best, 18.45, 0.15);
}

TEST_F(StreamTest, PaperAsymmetryObservation) {
  // §IV-A: 21.34 from node 7 to node 4's memory beats node 7 against
  // {2,3}; but running on node 4 against node 7's memory (18.45) is worse
  // than running on {2,3}.
  StreamBenchmark bench(host_, StreamConfig{});
  const double cpu7mem4 = bench.run(7, 4).best;
  EXPECT_GT(cpu7mem4, bench.run(7, 2).best);
  EXPECT_GT(cpu7mem4, bench.run(7, 3).best);
  const double cpu4mem7 = bench.run(4, 7).best;
  EXPECT_LT(cpu4mem7, bench.run(2, 7).best);
  EXPECT_LT(cpu4mem7, bench.run(3, 7).best);
}

TEST_F(StreamTest, Node0LocalBeatsOtherLocals) {
  StreamBenchmark bench(host_, StreamConfig{});
  const double node0 = bench.run(0, 0).best;
  for (NodeId i = 1; i < 8; ++i) {
    EXPECT_GT(node0, bench.run(i, i).best) << i;
  }
}

TEST_F(StreamTest, DeterministicAcrossRuns) {
  StreamBenchmark a(host_, StreamConfig{});
  StreamBenchmark b(host_, StreamConfig{});
  EXPECT_DOUBLE_EQ(a.run(5, 2).best, b.run(5, 2).best);
}

TEST_F(StreamTest, SeedChangesNoiseNotScale) {
  StreamConfig c1;
  StreamConfig c2;
  c2.seed = 999;
  StreamBenchmark a(host_, c1);
  StreamBenchmark b(host_, c2);
  const double ra = a.run(5, 2).best;
  const double rb = b.run(5, 2).best;
  EXPECT_NE(ra, rb);
  EXPECT_NEAR(ra, rb, 0.02 * ra);
}

TEST_F(StreamTest, UndersizedArraysAreFlaggedAndInflated) {
  // Paper rule: arrays at least 4x the 5 MB LLC (2,621,440 elements).
  StreamConfig small;
  small.array_elems = 500'000;  // 4 MB arrays: cache-contaminated
  StreamBenchmark contaminated(host_, small);
  const StreamResult r = contaminated.run(6, 6);
  EXPECT_TRUE(r.cache_contaminated);
  StreamBenchmark clean(host_, StreamConfig{});
  const StreamResult ok = clean.run(6, 6);
  EXPECT_FALSE(ok.cache_contaminated);
  EXPECT_GT(r.best, ok.best);  // cache reuse inflates the number
}

TEST_F(StreamTest, DefaultArraySizeSatisfiesPaperRule) {
  const StreamConfig c;
  EXPECT_GE(c.array_elems * 8, 4 * 5 * 1000 * 1000u);
  EXPECT_EQ(c.array_elems, 2'621'440u);
  EXPECT_EQ(c.repetitions, 100);
}

TEST_F(StreamTest, FourKernelsPerformSimilarly) {
  // §III-B1: the four operations "exhibit a similar performance".
  double lo = 1e9, hi = 0.0;
  for (StreamKind k : {StreamKind::kCopy, StreamKind::kScale,
                       StreamKind::kAdd, StreamKind::kTriad}) {
    StreamConfig c;
    c.kind = k;
    const double best = StreamBenchmark(host_, c).run(5, 5).best;
    lo = std::min(lo, best);
    hi = std::max(hi, best);
  }
  EXPECT_LT(hi / lo, 1.06);
}

TEST_F(StreamTest, KindNames) {
  EXPECT_EQ(to_string(StreamKind::kCopy), "Copy");
  EXPECT_EQ(to_string(StreamKind::kTriad), "Triad");
}

TEST_F(StreamTest, AllocationsAreReleased) {
  const auto before = host_.node_free_bytes(2);
  StreamBenchmark bench(host_, StreamConfig{});
  bench.run(7, 2);
  EXPECT_EQ(host_.node_free_bytes(2), before);
}

TEST_F(StreamTest, FewerThreadsLowerBandwidth) {
  StreamConfig one;
  one.threads = 1;
  StreamConfig four;
  four.threads = 4;
  const double r1 = StreamBenchmark(host_, one).run(5, 5).best;
  const double r4 = StreamBenchmark(host_, four).run(5, 5).best;
  EXPECT_NEAR(r1 * 4.0, r4, 0.05 * r4);
}

// Every (cpu, mem) cell is positive and deterministic — a property sweep
// over the whole binding space.
class StreamCellSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StreamCellSweep, PositiveAndStable) {
  fabric::Machine machine{fabric::dl585_profile()};
  nm::Host host{machine};
  const auto [cpu, mem] = GetParam();
  StreamBenchmark bench(host, StreamConfig{});
  const StreamResult r = bench.run(cpu, mem);
  EXPECT_GT(r.worst, 5.0);
  EXPECT_LT(r.best, 40.0);
}

INSTANTIATE_TEST_SUITE_P(AllBindings, StreamCellSweep,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Range(0, 8)));

}  // namespace
}  // namespace numaio::mem
