#include "topo/routing.h"

#include <gtest/gtest.h>

#include "topo/presets.h"

namespace numaio::topo {
namespace {

TEST(Routing, SelfRouteIsTrivial) {
  const Topology t = magny_cours_4p('a');
  const Routing r(t, Routing::Metric::kHops);
  EXPECT_EQ(r.hop_distance(3, 3), 0);
  EXPECT_EQ(r.route(3, 3).nodes, std::vector<NodeId>{3});
  EXPECT_DOUBLE_EQ(r.path_latency(3, 3), 0.0);
}

TEST(Routing, PaperExampleHopDistancesVariantA) {
  // §II-A for node 7 on layout (a): 6 at 1 hop (intra), {0,2,4} at 1 hop,
  // {1,3,5} at 2 hops.
  const Topology t = magny_cours_4p('a');
  const Routing r(t, Routing::Metric::kHops);
  EXPECT_EQ(r.hop_distance(7, 6), 1);
  for (NodeId v : {0, 2, 4}) EXPECT_EQ(r.hop_distance(7, v), 1) << v;
  for (NodeId v : {1, 3, 5}) EXPECT_EQ(r.hop_distance(7, v), 2) << v;
}

TEST(Routing, HopMatrixIsSymmetricForUndirectedLinks) {
  const Topology t = magny_cours_4p('b');
  const Routing r(t, Routing::Metric::kHops);
  const auto m = r.hop_matrix();
  for (NodeId i = 0; i < t.num_nodes(); ++i) {
    for (NodeId j = 0; j < t.num_nodes(); ++j) {
      EXPECT_EQ(m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                m[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)]);
    }
  }
}

TEST(Routing, DeterministicTieBreakPrefersSmallestPath) {
  // Square: 0-1, 1-3, 0-2, 2-3. Routes 0->3 via 1 or 2 tie on hops;
  // lexicographic tie-break must pick {0,1,3}.
  std::vector<NodeSpec> nodes(4, NodeSpec{0, 4, 4.0, false});
  const auto t = Topology::build("square", nodes,
                                 {LinkSpec{0, 1, 8, 8, 40.0},
                                  LinkSpec{1, 3, 8, 8, 40.0},
                                  LinkSpec{0, 2, 8, 8, 40.0},
                                  LinkSpec{2, 3, 8, 8, 40.0}});
  const Routing r(t, Routing::Metric::kHops);
  EXPECT_EQ(r.route(0, 3).nodes, (std::vector<NodeId>{0, 1, 3}));
}

TEST(Routing, LatencyMetricPrefersFastDetour) {
  // 0-1 direct but slow (200 ns); 0-2-1 fast (40+40).
  std::vector<NodeSpec> nodes(3, NodeSpec{0, 4, 4.0, false});
  const auto t = Topology::build("detour", nodes,
                                 {LinkSpec{0, 1, 8, 8, 200.0},
                                  LinkSpec{0, 2, 8, 8, 40.0},
                                  LinkSpec{2, 1, 8, 8, 40.0}});
  const Routing hops(t, Routing::Metric::kHops);
  EXPECT_EQ(hops.route(0, 1).hops(), 1);
  const Routing lat(t, Routing::Metric::kLatency);
  EXPECT_EQ(lat.route(0, 1).nodes, (std::vector<NodeId>{0, 2, 1}));
  EXPECT_DOUBLE_EQ(lat.path_latency(0, 1), 80.0);
}

TEST(Routing, DiameterOfVariants) {
  EXPECT_EQ(Routing(magny_cours_4p('a'), Routing::Metric::kHops).diameter(),
            2);
  // Hub layout: odd -> odd of another package takes 3 hops.
  EXPECT_EQ(Routing(magny_cours_4p('c'), Routing::Metric::kHops).diameter(),
            3);
}

TEST(Routing, MeanRemoteHopsVariantA) {
  // From every node: 4 destinations at 1 hop, 3 at 2 hops -> 10/7.
  const Topology t = magny_cours_4p('a');  // Routing keeps a reference.
  const Routing r(t, Routing::Metric::kHops);
  EXPECT_NEAR(r.mean_remote_hops(), 10.0 / 7.0, 1e-9);
}

TEST(Routing, PathLatencySumsLinkLatencies) {
  const Topology t = magny_cours_4p('a');  // intra 50 ns, inter 120 ns
  const Routing r(t, Routing::Metric::kHops);
  EXPECT_DOUBLE_EQ(r.path_latency(7, 6), 50.0);
  EXPECT_DOUBLE_EQ(r.path_latency(7, 0), 120.0);
  // 7 -> 1: inter + intra.
  EXPECT_DOUBLE_EQ(r.path_latency(7, 1), 170.0);
}

// Property sweep over all variants: routes are well-formed (consecutive
// nodes adjacent, no repeats) and distances obey the triangle inequality.
class RouteInvariants : public ::testing::TestWithParam<char> {};

TEST_P(RouteInvariants, WellFormedRoutesAndTriangleInequality) {
  const Topology t = magny_cours_4p(GetParam());
  const Routing r(t, Routing::Metric::kHops);
  const int n = t.num_nodes();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      const Route& route = r.route(s, d);
      ASSERT_FALSE(route.nodes.empty());
      EXPECT_EQ(route.nodes.front(), s);
      EXPECT_EQ(route.nodes.back(), d);
      for (std::size_t i = 0; i + 1 < route.nodes.size(); ++i) {
        EXPECT_TRUE(t.adjacent(route.nodes[i], route.nodes[i + 1]));
      }
      for (NodeId via = 0; via < n; ++via) {
        EXPECT_LE(r.hop_distance(s, d),
                  r.hop_distance(s, via) + r.hop_distance(via, d));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, RouteInvariants,
                         ::testing::Values('a', 'b', 'c', 'd'));

}  // namespace
}  // namespace numaio::topo
