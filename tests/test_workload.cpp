#include "model/workload.h"

#include <gtest/gtest.h>

#include <set>

#include "io/nic.h"

namespace numaio::model {
namespace {

WorkloadConfig base_config() {
  WorkloadConfig c;
  c.engine_mix = {io::kRdmaWrite, io::kRdmaRead};
  return c;
}

TEST(Workload, GeneratesRequestedCount) {
  const auto tasks = generate_workload(base_config());
  EXPECT_EQ(tasks.size(), 40u);
}

TEST(Workload, ArrivalsAreMonotoneAndPositive) {
  const auto tasks = generate_workload(base_config());
  sim::Ns prev = 0.0;
  for (const auto& t : tasks) {
    EXPECT_GT(t.arrival, prev);
    prev = t.arrival;
  }
}

TEST(Workload, MeanInterarrivalApproximatesConfig) {
  WorkloadConfig c = base_config();
  c.num_tasks = 4000;
  const auto tasks = generate_workload(c);
  const double mean = tasks.back().arrival / static_cast<double>(c.num_tasks);
  EXPECT_NEAR(mean, c.mean_interarrival, 0.1 * c.mean_interarrival);
}

TEST(Workload, SizesWithinBounds) {
  const auto tasks = generate_workload(base_config());
  for (const auto& t : tasks) {
    EXPECT_GE(t.bytes, 4 * sim::kGiB * 99 / 100);  // exp/log rounding slack
    EXPECT_LE(t.bytes, 64 * sim::kGiB);
  }
}

TEST(Workload, UsesWholeEngineMix) {
  WorkloadConfig c = base_config();
  c.engine_mix = {io::kRdmaWrite, io::kRdmaRead, io::kTcpSend};
  c.num_tasks = 100;
  std::set<std::string> seen;
  for (const auto& t : generate_workload(c)) seen.insert(t.engine);
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Workload, DeterministicPerSeed) {
  const auto a = generate_workload(base_config());
  const auto b = generate_workload(base_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].engine, b[i].engine);
  }
}

TEST(Workload, SeedChangesTheDraw) {
  WorkloadConfig c1 = base_config();
  WorkloadConfig c2 = base_config();
  c2.seed = 99;
  const auto a = generate_workload(c1);
  const auto b = generate_workload(c2);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].bytes != b[i].bytes) ++differing;
  }
  EXPECT_GT(differing, 30);
}

}  // namespace
}  // namespace numaio::model
