#include "fabric/machine.h"

#include <gtest/gtest.h>

namespace numaio::fabric {
namespace {

class MachineTest : public ::testing::Test {
 protected:
  Machine machine_{dl585_profile()};
};

TEST_F(MachineTest, FabricResourcesCarryPathCapacities) {
  auto& solver = machine_.solver();
  EXPECT_DOUBLE_EQ(solver.capacity(machine_.fabric_resource(2, 7)), 26.0);
  EXPECT_DOUBLE_EQ(solver.capacity(machine_.fabric_resource(7, 2)), 50.3);
}

TEST_F(MachineTest, McResourcesMatchLocalCopyLimit) {
  auto& solver = machine_.solver();
  EXPECT_DOUBLE_EQ(solver.capacity(machine_.mc_read(7)), 53.5);
  EXPECT_DOUBLE_EQ(solver.capacity(machine_.mc_write(7)), 53.5);
}

TEST_F(MachineTest, CpuCapacityIsCoresTimesUnits) {
  EXPECT_DOUBLE_EQ(machine_.cpu_capacity(3), 4 * 7.0);
  EXPECT_DOUBLE_EQ(machine_.solver().capacity(machine_.cpu(3)), 28.0);
}

TEST_F(MachineTest, LocalCopyUsagesTouchOnlyMc) {
  const auto usages = machine_.copy_usages(5, 5, 5);
  ASSERT_EQ(usages.size(), 2u);
  EXPECT_EQ(usages[0].resource, machine_.mc_read(5));
  EXPECT_EQ(usages[1].resource, machine_.mc_write(5));
}

TEST_F(MachineTest, RemoteLoadLegAddsFabric) {
  // Threads on 7 loading from 2, storing locally: mc_rd(2), fab(2->7),
  // mc_wr(7).
  const auto usages = machine_.copy_usages(7, 2, 7);
  ASSERT_EQ(usages.size(), 3u);
  EXPECT_EQ(usages[0].resource, machine_.mc_read(2));
  EXPECT_EQ(usages[1].resource, machine_.fabric_resource(2, 7));
  EXPECT_EQ(usages[2].resource, machine_.mc_write(7));
}

TEST_F(MachineTest, TwoLegCopyCrossesBothDirections) {
  // Threads on 7 copying 2 -> 3: load leg 2->7, store leg 7->3.
  const auto usages = machine_.copy_usages(7, 2, 3);
  ASSERT_EQ(usages.size(), 4u);
  EXPECT_EQ(usages[1].resource, machine_.fabric_resource(2, 7));
  EXPECT_EQ(usages[2].resource, machine_.fabric_resource(7, 3));
}

TEST_F(MachineTest, DmaUsagesToDevice) {
  const auto usages = machine_.dma_usages(2, 7, /*to_device=*/true);
  ASSERT_EQ(usages.size(), 2u);
  EXPECT_EQ(usages[0].resource, machine_.mc_read(2));
  EXPECT_EQ(usages[1].resource, machine_.fabric_resource(2, 7));
}

TEST_F(MachineTest, DmaUsagesFromDevice) {
  const auto usages = machine_.dma_usages(2, 7, /*to_device=*/false);
  ASSERT_EQ(usages.size(), 2u);
  EXPECT_EQ(usages[0].resource, machine_.fabric_resource(7, 2));
  EXPECT_EQ(usages[1].resource, machine_.mc_write(2));
}

TEST_F(MachineTest, DmaUsagesLocalSkipsFabric) {
  const auto usages = machine_.dma_usages(7, 7, /*to_device=*/true);
  ASSERT_EQ(usages.size(), 1u);
  EXPECT_EQ(usages[0].resource, machine_.mc_read(7));
}

TEST_F(MachineTest, WindowRateDividesByLatency) {
  // 16650 bits over the 910 ns 7->0 path = 18.3 Gbps (the RDMA_READ
  // class-3 value).
  EXPECT_NEAR(machine_.window_rate(7, 0, 16650.0), 18.2967, 1e-3);
}

TEST_F(MachineTest, ConcurrentStreamsShareAFabricPath) {
  auto& solver = machine_.solver();
  const auto usages = machine_.dma_usages(0, 7, true);
  const auto f1 = solver.add_flow(usages);
  const auto f2 = solver.add_flow(usages);
  const auto rates = solver.solve();
  EXPECT_NEAR(rates[f1], 22.0, 1e-9);  // 44.0 / 2
  EXPECT_NEAR(rates[f2], 22.0, 1e-9);
  solver.remove_flow(f1);
  solver.remove_flow(f2);
}

}  // namespace
}  // namespace numaio::fabric
