#include "mem/numademo.h"

#include <gtest/gtest.h>

#include "fabric/calibration.h"

namespace numaio::mem {
namespace {

class NumademoTest : public ::testing::Test {
 protected:
  fabric::Machine machine_{fabric::dl585_profile()};
  nm::Host host_{machine_};
};

TEST_F(NumademoTest, SevenModulesInOrder) {
  const auto modules = all_demo_modules();
  ASSERT_EQ(modules.size(), 7u);
  EXPECT_EQ(modules.front(), DemoModule::kMemset);
  EXPECT_EQ(modules.back(), DemoModule::kPtrChase);
}

TEST_F(NumademoTest, ModuleNames) {
  EXPECT_EQ(to_string(DemoModule::kMemset), "memset");
  EXPECT_EQ(to_string(DemoModule::kRandomAccess), "random-access");
  EXPECT_EQ(to_string(DemoModule::kPtrChase), "ptr-chase");
}

TEST_F(NumademoTest, BandwidthOrderingAcrossModules) {
  // Streaming loops are bandwidth-bound, random access latency-bound, the
  // pointer chase serialized: memset >= memcpy > random >> chase.
  const NodeId cpu = 5, mem = 5;
  const double memset_bw = run_demo(host_, DemoModule::kMemset, cpu, mem).bandwidth;
  const double memcpy_bw = run_demo(host_, DemoModule::kMemcpy, cpu, mem).bandwidth;
  const double walk = run_demo(host_, DemoModule::kForwardWalk, cpu, mem).bandwidth;
  const double rnd = run_demo(host_, DemoModule::kRandomAccess, cpu, mem).bandwidth;
  const double chase = run_demo(host_, DemoModule::kPtrChase, cpu, mem).bandwidth;
  EXPECT_GE(memset_bw, memcpy_bw);
  EXPECT_GT(walk, memcpy_bw);
  EXPECT_GT(memcpy_bw, rnd);
  EXPECT_GT(rnd, chase);
  EXPECT_GT(chase, 0.0);
}

TEST_F(NumademoTest, MemcpyModuleMatchesStreamCalibration) {
  // The memcpy/stream modules are the same PIO loop the STREAM Copy
  // kernel measures.
  const auto r = run_demo(host_, DemoModule::kMemcpy, 4, 7);
  EXPECT_NEAR(r.bandwidth, 18.45, 0.01);
  const auto s = run_demo(host_, DemoModule::kStreamCopy, 4, 7);
  EXPECT_NEAR(s.bandwidth, 18.45, 0.01);
}

TEST_F(NumademoTest, BackwardWalkSlowerThanForward) {
  const double fwd =
      run_demo(host_, DemoModule::kForwardWalk, 3, 0).bandwidth;
  const double bwd =
      run_demo(host_, DemoModule::kBackwardWalk, 3, 0).bandwidth;
  EXPECT_NEAR(bwd, 0.75 * fwd, 1e-6);
}

TEST_F(NumademoTest, LatencyBoundModulesFollowLatencyNotBandwidth) {
  // 7->2 has high streaming capacity (50.3) but a *short* DMA latency
  // (570 ns), while 7->0 has low capacity (40.9) and long latency
  // (910 ns). Bandwidth-bound modules and latency-bound modules must
  // rank them accordingly.
  const double chase_2 =
      run_demo(host_, DemoModule::kPtrChase, 7, 2).bandwidth;
  const double chase_0 =
      run_demo(host_, DemoModule::kPtrChase, 7, 0).bandwidth;
  EXPECT_GT(chase_2, chase_0);  // latency-bound: shorter lat wins
  const double walk_2 =
      run_demo(host_, DemoModule::kForwardWalk, 7, 2).bandwidth;
  const double walk_0 =
      run_demo(host_, DemoModule::kForwardWalk, 7, 0).bandwidth;
  EXPECT_LT(walk_2, walk_0);  // PIO-bound: the weak {2,3} paths lose
}

TEST_F(NumademoTest, ResultRecordsBinding) {
  const auto r = run_demo(host_, DemoModule::kMemset, 2, 6);
  EXPECT_EQ(r.module, DemoModule::kMemset);
  EXPECT_EQ(r.cpu_node, 2);
  EXPECT_EQ(r.mem_node, 6);
}

TEST_F(NumademoTest, MemoryReleasedAfterRun) {
  const auto before = host_.node_free_bytes(6);
  run_demo(host_, DemoModule::kMemcpy, 2, 6);
  EXPECT_EQ(host_.node_free_bytes(6), before);
}

TEST_F(NumademoTest, PolicyTableShapesAndOrdering) {
  const auto rows = demo_policy_table(host_, 5);
  ASSERT_EQ(rows.size(), 7u);
  for (const auto& row : rows) {
    EXPECT_GT(row.local, 0.0) << to_string(row.module);
    // Local beats the worst remote; interleaved sits between them.
    EXPECT_GE(row.local, row.remote_worst) << to_string(row.module);
    EXPECT_GE(row.local, row.interleaved) << to_string(row.module);
    EXPECT_GE(row.interleaved, row.remote_worst) << to_string(row.module);
  }
}

TEST_F(NumademoTest, ThreadScalingForBandwidthModules) {
  DemoConfig one;
  one.threads = 1;
  DemoConfig all;
  const double r1 = run_demo(host_, DemoModule::kMemcpy, 3, 3, one).bandwidth;
  const double r4 = run_demo(host_, DemoModule::kMemcpy, 3, 3, all).bandwidth;
  EXPECT_NEAR(r4, 4.0 * r1, 1e-6);
}

// Property sweep: every module on every binding yields a positive rate not
// exceeding the local memory-controller limit.
class DemoSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DemoSweep, PositiveAndBounded) {
  fabric::Machine machine{fabric::dl585_profile()};
  nm::Host host{machine};
  const auto [module_idx, node] = GetParam();
  const DemoModule module = all_demo_modules()[static_cast<std::size_t>(module_idx)];
  const auto r = run_demo(host, module, 7, node);
  EXPECT_GT(r.bandwidth, 0.0);
  EXPECT_LE(r.bandwidth, 53.5 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllModulesAllNodes, DemoSweep,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Range(0, 8)));

}  // namespace
}  // namespace numaio::mem
