// Tests for the I/O-mode, IRQ-steering and peer-binding extensions.
#include <gtest/gtest.h>

#include "io/testbed.h"

namespace numaio::io {
namespace {

class IoModeTest : public ::testing::Test {
 protected:
  IoModeTest() : tb_(Testbed::dl585()), fio_(tb_.host()) {}

  double run_ssd(NodeId node, IoMode mode, int iodepth = 16) {
    FioJob j;
    j.devices = tb_.ssds();
    j.engine = kSsdRead;
    j.cpu_node = node;
    j.num_streams = 4;
    j.io_mode = mode;
    j.iodepth = iodepth;
    return fio_.run(j).aggregate;
  }

  double run_nic(const std::string& engine, NodeId node, int peer = -1) {
    FioJob j;
    j.devices = {&tb_.nic()};
    j.engine = engine;
    j.cpu_node = node;
    j.num_streams = 4;
    j.peer_node = peer;
    return fio_.run(j).aggregate;
  }

  Testbed tb_;
  FioRunner fio_;
};

// --- §IV-B3: mode observations ---------------------------------------------

TEST_F(IoModeTest, BufferedIsMuchWorseThanDirect) {
  // "regular kernel-buffered read/write operations perform much worse
  // than kernel-bypassed ones".
  const double direct = run_ssd(7, IoMode::kAsyncDirect);
  const double buffered = run_ssd(7, IoMode::kAsyncBuffered);
  EXPECT_LT(buffered, 0.7 * direct);
  EXPECT_GT(buffered, 0.3 * direct);
}

TEST_F(IoModeTest, AsyncBeatsSync) {
  // "asynchronous I/O operations outperform synchronous ones".
  const double async_rate = run_ssd(7, IoMode::kAsyncDirect);
  const double sync_rate = run_ssd(7, IoMode::kSyncDirect);
  EXPECT_LT(sync_rate, 0.5 * async_rate);
}

TEST_F(IoModeTest, SyncBufferedIsWorst) {
  const double rates[] = {
      run_ssd(7, IoMode::kAsyncDirect), run_ssd(7, IoMode::kAsyncBuffered),
      run_ssd(7, IoMode::kSyncDirect), run_ssd(7, IoMode::kSyncBuffered)};
  EXPECT_GT(rates[0], rates[1]);
  EXPECT_GT(rates[1], rates[3]);
  EXPECT_GT(rates[2], rates[3]);
}

TEST_F(IoModeTest, ModesDoNotAffectNetworkEngines) {
  FioJob j;
  j.devices = {&tb_.nic()};
  j.engine = kRdmaWrite;
  j.cpu_node = 5;
  j.num_streams = 4;
  const double direct = fio_.run(j).aggregate;
  j.io_mode = IoMode::kSyncBuffered;
  EXPECT_DOUBLE_EQ(fio_.run(j).aggregate, direct);
}

TEST_F(IoModeTest, SyncEqualsIodepthOne) {
  EXPECT_NEAR(run_ssd(6, IoMode::kSyncDirect, 16),
              run_ssd(6, IoMode::kAsyncDirect, 1), 1e-9);
}

// --- IRQ steering -----------------------------------------------------------

TEST_F(IoModeTest, DefaultIrqNodeIsLocal) {
  EXPECT_EQ(tb_.nic().irq_node(), tb_.nic().attach_node());
}

TEST_F(IoModeTest, SteeringIrqsAwayHelpsTheDeviceNodeBinding) {
  // The node-7 TCP penalty comes from sharing CPUs with the interrupt
  // handler; steering IRQs to node 6 moves the penalty.
  const double before = run_nic(kTcpSend, 7);
  tb_.nic().set_irq_node(6);
  const double after = run_nic(kTcpSend, 7);
  EXPECT_GT(after, before);
  // And now binding on node 6 inherits the contention.
  const double node6 = run_nic(kTcpSend, 6);
  EXPECT_LT(node6, after);
  tb_.nic().set_irq_node(7);
}

TEST_F(IoModeTest, SteeringDoesNotDisturbOffloadedEngines) {
  const double before = run_nic(kRdmaWrite, 7);
  tb_.nic().set_irq_node(3);
  EXPECT_NEAR(run_nic(kRdmaWrite, 7), before, 0.05);
  tb_.nic().set_irq_node(7);
}

// --- peer-host binding ------------------------------------------------------

TEST_F(IoModeTest, OptimalPeerChangesNothing) {
  const double base = run_nic(kTcpSend, 5);
  EXPECT_NEAR(run_nic(kTcpSend, 5, /*peer=*/6), base, 0.2);
}

TEST_F(IoModeTest, BadPeerPlacementCapsTcp) {
  // [3] (cited §I): remote-core placement at *either* end can cost ~30%
  // of TCP bandwidth. Our sender is well placed; the peer receiver on its
  // node 4 (the receive-side floor) drags the transfer to ~14.4 Gbps.
  const double base = run_nic(kTcpSend, 5);
  const double bad_peer = run_nic(kTcpSend, 5, /*peer=*/4);
  EXPECT_NEAR(bad_peer, 14.4, 0.3);
  const double loss = (base - bad_peer) / base;
  EXPECT_GT(loss, 0.25);
  EXPECT_LT(loss, 0.35);
}

TEST_F(IoModeTest, PeerClassesMirrorReceiveModel) {
  // Peer on {2,3} (its TCP-recv residual class) caps below peer on 6.
  const double peer6 = run_nic(kTcpSend, 5, 6);
  const double peer2 = run_nic(kTcpSend, 5, 2);
  EXPECT_GT(peer6, peer2);
}

TEST_F(IoModeTest, RdmaReadWithBadPeerSender) {
  // Our reader pulls from the peer's memory; the peer-side complement is
  // rdma_write from its node 2 (17.1 Gbps class).
  const double base = run_nic(kRdmaRead, 7);
  const double capped = run_nic(kRdmaRead, 7, /*peer=*/2);
  EXPECT_NEAR(base, 22.0, 0.2);
  EXPECT_NEAR(capped, 17.1, 0.2);
}

TEST_F(IoModeTest, PeerIgnoredForSsdEngines) {
  FioJob j;
  j.devices = tb_.ssds();
  j.engine = kSsdWrite;
  j.cpu_node = 7;
  j.num_streams = 2;
  const double base = fio_.run(j).aggregate;
  j.peer_node = 4;
  EXPECT_DOUBLE_EQ(fio_.run(j).aggregate, base);
}

}  // namespace
}  // namespace numaio::io
