// Live-telemetry tests (obs/serve.h): hub publish/read semantics, the
// tap's refresh cadence (first record, timed refreshes, flush), and the
// HTTP endpoint scraped over a real loopback socket while fleet storms
// feed the tap — the second scrape's counters must be monotonically >=
// the first, and every scrape must survive the shared Prometheus
// parse-back validator (tests/prom_parse.h).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet.h"
#include "obs/obs.h"
#include "obs/serve.h"
#include "obs/stream.h"
#include "obs/trace.h"
#include "prom_parse.h"

namespace numaio::obs {
namespace {

using test_support::parse_back;

/// Minimal HTTP/1.0 GET over loopback; returns the full response
/// (status line + headers + body), empty string on connect failure.
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

/// Label-free sample values (counters/gauges/_sum/_count lines) from an
/// exposition document — the monotonicity surface of a scrape.
std::map<std::string, double> sample_values(const std::string& text) {
  std::map<std::string, double> values;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.find('{') != std::string::npos) continue;
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) continue;
    values[line.substr(0, space)] = std::stod(line.substr(space + 1));
  }
  return values;
}

TEST(TelemetryHub, PublishReplacesDocumentsAndBumpsGeneration) {
  TelemetryHub hub;
  EXPECT_EQ(hub.generation(), 0u);
  EXPECT_TRUE(hub.metrics_text().empty());
  hub.publish("m1", "r1");
  EXPECT_EQ(hub.generation(), 1u);
  EXPECT_EQ(hub.metrics_text(), "m1");
  EXPECT_EQ(hub.report_text(), "r1");
  hub.publish("m2", "r2");
  EXPECT_EQ(hub.generation(), 2u);
  EXPECT_EQ(hub.metrics_text(), "m2");
}

TEST(TelemetryTap, FirstRecordAlwaysPublishesThenCadenceGates) {
  TelemetryHub hub;
  MetricsRegistry metrics;
  // A cadence far beyond the test's runtime: only the first record and
  // the explicit flush may publish.
  TelemetryTap tap(hub, &metrics, /*refresh_ms=*/60000);
  Event e;
  e.id = 1;
  e.kind = 'I';
  e.name = "fleet.admit";
  e.t_sim = 1.0;
  tap.record(e);
  EXPECT_EQ(hub.generation(), 1u);
  for (int i = 2; i <= 10; ++i) {
    e.id = static_cast<EventId>(i);
    tap.record(e);
  }
  EXPECT_EQ(hub.generation(), 1u) << "cadence must gate mid-run records";
  EXPECT_EQ(tap.records_seen(), 10u);
  tap.flush();
  EXPECT_EQ(hub.generation(), 2u);
}

TEST(TelemetryTap, RefreshCadenceElapsesWithWallClock) {
  TelemetryHub hub;
  TelemetryTap tap(hub, nullptr, /*refresh_ms=*/40);
  Event e;
  e.id = 1;
  e.kind = 'I';
  e.name = "x";
  tap.record(e);
  ASSERT_EQ(hub.generation(), 1u);
  e.id = 2;
  tap.record(e);  // immediately after: inside the refresh window
  EXPECT_EQ(hub.generation(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  e.id = 3;
  tap.record(e);  // past the window: must publish
  EXPECT_EQ(hub.generation(), 2u);
}

TEST(TelemetryServer, ServesHubDocumentsAndRejectsUnknownPaths) {
  TelemetryHub hub;
  hub.publish("# TYPE numaio_x_total counter\nnumaio_x_total 1\n",
              "# rolling report\n");
  TelemetryServer server(hub);
  server.start(0);  // ephemeral
  ASSERT_GT(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_EQ(body_of(metrics),
            "# TYPE numaio_x_total counter\nnumaio_x_total 1\n");

  const std::string report = http_get(server.port(), "/report");
  EXPECT_NE(report.find("text/markdown"), std::string::npos) << report;
  EXPECT_EQ(body_of(report), "# rolling report\n");

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_EQ(body_of(health), "ok generation=1\n");

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;

  server.stop();
  server.stop();  // idempotent
}

TEST(TelemetryServe, LiveFleetScrapesAreMonotonicAndParseBack) {
  // The refresh-cadence ctest of the ISSUE: drive fleet storms through
  // a live tap, scrape /metrics over a real socket after each round, and
  // require (a) both scrapes round-trip the shared exposition-format
  // validator, (b) every label-free sample in the second scrape is >=
  // its first-scrape value (counters and histogram _count/_sum only
  // ever grow), (c) the rolling report advanced with the run.
  Context ctx;
  ctx.trace.set_deterministic(true);
  TelemetryHub hub;
  TelemetryTap tap(hub, &ctx.metrics, /*refresh_ms=*/25);
  VisitorSink tap_sink(tap);
  ctx.trace.set_sink(&tap_sink);
  TelemetryServer server(hub);
  server.start(0);
  ASSERT_GT(server.port(), 0);

  const auto run_round = [&](std::uint64_t seed) {
    fleet::StormScenario storm = fleet::make_storm(
        /*num_hosts=*/2, /*num_tenants=*/2, /*offered_rps=*/120.0, seed,
        /*horizon=*/0.3e9);
    fleet::FleetSim sim(storm.config, storm.tenants);
    sim.set_fault_plan(std::move(storm.plan));
    sim.set_observer(&ctx);
    sim.run();
    tap.flush();
  };

  run_round(3);
  const std::uint64_t generation_after_first = hub.generation();
  EXPECT_GE(generation_after_first, 1u);
  const std::string first = body_of(http_get(server.port(), "/metrics"));
  ASSERT_FALSE(first.empty());

  run_round(4);
  EXPECT_GT(hub.generation(), generation_after_first)
      << "second round must republish";
  const std::string second = body_of(http_get(server.port(), "/metrics"));
  ASSERT_FALSE(second.empty());

  std::map<std::string, std::string> first_types;
  parse_back(first, &first_types);
  std::map<std::string, std::string> second_types;
  parse_back(second, &second_types);
  EXPECT_NE(second_types.count("numaio_sched_queue_wait_ms"), 0u)
      << second;

  const std::map<std::string, double> before = sample_values(first);
  const std::map<std::string, double> after = sample_values(second);
  ASSERT_FALSE(before.empty());
  int compared = 0;
  for (const auto& [name, value] : before) {
    const auto it = after.find(name);
    ASSERT_NE(it, after.end()) << "sample vanished between scrapes: "
                               << name;
    if (name.rfind("_total") != std::string::npos ||
        name.rfind("_count") != std::string::npos ||
        name.rfind("_sum") != std::string::npos) {
      EXPECT_GE(it->second, value) << name << " went backwards";
      ++compared;
    }
  }
  EXPECT_GT(compared, 0);

  const std::string report = body_of(http_get(server.port(), "/report"));
  EXPECT_NE(report.find("# numaio live telemetry"), std::string::npos);
  EXPECT_NE(report.find("## Scheduler latency (rolling)"),
            std::string::npos);
  EXPECT_NE(report.find("p99.9"), std::string::npos);
  server.stop();
}

TEST(TelemetryServe, SyntheticStreamRollsTheReportForward) {
  // The tap is source-agnostic: a synthetic deep trace through the same
  // VisitorSink path must populate the folded-stack section.
  TelemetryHub hub;
  TelemetryTap tap(hub, nullptr, /*refresh_ms=*/0);  // publish every record
  SyntheticTraceConfig config;
  config.records = 64;
  config.depth = 4;
  SyntheticTraceSource source(config);
  source.stream(tap);
  EXPECT_EQ(hub.generation(), 64u);
  tap.flush();
  const std::string report = hub.report_text();
  EXPECT_NE(report.find("synth.run"), std::string::npos) << report;
  EXPECT_NE(report.find("## Folded stacks"), std::string::npos);
}

}  // namespace
}  // namespace numaio::obs
