#include "simcore/units.h"

#include <gtest/gtest.h>

namespace numaio::sim {
namespace {

TEST(Units, GbpsFromBytesAndNs) {
  // 1 byte in 8 ns = 1 Gbps.
  EXPECT_DOUBLE_EQ(gbps(1, 8.0), 1.0);
  // 128 KiB in 1 us.
  EXPECT_DOUBLE_EQ(gbps(128 * kKiB, 1000.0), 128.0 * 1024 * 8 / 1000.0);
}

TEST(Units, TransferNsInvertsGbps) {
  const Bytes bytes = 400 * kGiB;
  const Gbps rate = 20.0;
  const Ns t = transfer_ns(bytes, rate);
  EXPECT_NEAR(gbps(bytes, t), rate, 1e-9);
}

TEST(Units, BytesInRate) {
  // 8 Gbps for 1000 ns = 1000 bytes.
  EXPECT_EQ(bytes_in(8.0, 1000.0), 1000u);
}

TEST(Units, SizeConstants) {
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024u * kMiB);
}

TEST(Units, FormatGbps) {
  EXPECT_EQ(format_gbps(21.346), "21.35 Gbps");
  EXPECT_EQ(format_gbps(0.0), "0.00 Gbps");
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(128 * kKiB), "128 KiB");
  EXPECT_EQ(format_bytes(400 * kGiB), "400 GiB");
  EXPECT_EQ(format_bytes(64 * kMiB), "64 MiB");
  EXPECT_EQ(format_bytes(123), "123 B");
}

TEST(Units, TransferTimeFor400GBAt20Gbps) {
  // The paper's 400 GB streams at ~20 Gbps take about 172 seconds.
  const Ns t = transfer_ns(400 * kGiB, 20.0);
  EXPECT_NEAR(t / 1e9, 171.8, 0.5);
}

}  // namespace
}  // namespace numaio::sim
