// HostPair: both network endpoints fully simulated.
#include <gtest/gtest.h>

#include <stdexcept>

#include "io/hostpair.h"
#include "io/testbed.h"

namespace numaio::io {
namespace {

class HostPairTest : public ::testing::Test {
 protected:
  HostPairTest() : pair_(HostPair::dl585()) {}

  double run(const std::string& engine, NodeId a, NodeId b,
             int streams = 4) {
    HostPair::NetJob j;
    j.engine = engine;
    j.local_node = a;
    j.peer_node = b;
    j.num_streams = streams;
    return pair_.run(j).aggregate;
  }

  HostPair pair_;
};

TEST_F(HostPairTest, SixteenNodesTwoNicsOneWire) {
  EXPECT_EQ(pair_.machine().num_nodes(), 16);
  EXPECT_EQ(pair_.nic_a().attach_node(), 7);
  EXPECT_EQ(pair_.nic_b().attach_node(), 15);
  EXPECT_EQ(pair_.peer(7), 15);
  EXPECT_EQ(pair_.machine().profile().name, "hp-dl585-g7-pair");
}

TEST_F(HostPairTest, HostBFabricMirrorsHostA) {
  const auto& m = pair_.machine();
  for (NodeId i = 0; i < 8; ++i) {
    for (NodeId j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(m.path(i, j).dma_cap,
                       m.path(pair_.peer(i), pair_.peer(j)).dma_cap);
    }
  }
  // Cross-host coherent paths are deliberately absurd.
  EXPECT_LT(m.path(0, pair_.peer(0)).dma_cap, 0.1);
}

TEST_F(HostPairTest, OptimalBothEndsMatchesSingleHostModel) {
  // With good bindings at both ends the chained model reproduces the
  // single-host engine calibration (send-side ceiling binds). The
  // genuinely optimal peer is its node 6 — B's 7->6 inbound path is the
  // short one, just as on host A.
  EXPECT_NEAR(run(kRdmaWrite, 5, 6), 23.3, 0.2);
  EXPECT_NEAR(run(kTcpSend, 5, 6), 20.9, 0.3);
}

TEST_F(HostPairTest, TargetSideMemoryPlacementMatters) {
  // Writing into B's node-5 memory rides B's 910 ns 7->5 inbound path:
  // the same directional asymmetry Table V shows for reads on host A.
  EXPECT_NEAR(run(kRdmaWrite, 5, 5), 17100.0 / 910.0, 0.2);
}

TEST_F(HostPairTest, WeakSendSideBindsEndToEnd) {
  EXPECT_NEAR(run(kRdmaWrite, 2, 5), 17.1, 0.2);
  EXPECT_NEAR(run(kTcpSend, 2, 6), 16.2, 0.3);
}

TEST_F(HostPairTest, WeakReceiveSideBindsEndToEnd) {
  // Peer bound to its node 4: the receive-side floor caps the transfer.
  EXPECT_NEAR(run(kTcpSend, 5, 4), 14.4, 0.3);
  // One-sided write into B's node-0 memory: the target-side tag pool over
  // B's 910 ns path sustains 17100/910 = 18.8 Gbps.
  EXPECT_NEAR(run(kRdmaWrite, 5, 0), 18.8, 0.3);
}

TEST_F(HostPairTest, BothEndsWeakTakeTheMinimum) {
  const double both = run(kTcpSend, 2, 4);
  EXPECT_NEAR(both, std::min(16.2, 14.4), 0.4);
}

TEST_F(HostPairTest, AgreesWithAnalyticPeerApproximation) {
  // The single-host FioRunner's peer cap should approximate the full
  // two-host chain for one-directional traffic.
  Testbed tb = Testbed::dl585();
  FioRunner fio(tb.host());
  for (const auto& [a, b] : std::vector<std::pair<NodeId, NodeId>>{
           {5, 6}, {2, 6}, {5, 4}, {0, 2}}) {
    FioJob j;
    j.devices = {&tb.nic()};
    j.engine = kTcpSend;
    j.cpu_node = a;
    j.num_streams = 4;
    j.peer_node = b;
    const double approx = fio.run(j).aggregate;
    const double full = run(kTcpSend, a, b);
    EXPECT_NEAR(full, approx, 0.05 * approx) << a << "->" << b;
  }
}

TEST_F(HostPairTest, FullDuplexSharesHostResourcesNotTheWire) {
  // A sends while A also receives: the two directions use different wire
  // resources, different NIC engines, but share host CPUs/fabric.
  HostPair::NetJob send;
  send.engine = kRdmaWrite;
  send.local_node = 5;
  send.peer_node = 5;
  send.num_streams = 4;
  HostPair::NetJob recv = send;
  recv.engine = kRdmaRead;
  const auto results = pair_.run_concurrent(
      std::vector<HostPair::NetJob>{send, recv});
  // Send: B's inbound 7->5 path (18.8); read: A's own 7->5 window (18.3,
  // the Table V class-3 value). Separate RX/TX pools keep them
  // independent.
  EXPECT_NEAR(results[0].aggregate, 18.8, 0.3);
  EXPECT_NEAR(results[1].aggregate, 18.3, 0.3);
}

TEST_F(HostPairTest, FullDuplexTcpContendsOnCpu) {
  // TCP send + receive on the same binding node burn its CPU twice over.
  HostPair::NetJob send;
  send.engine = kTcpSend;
  send.local_node = 5;
  send.peer_node = 6;
  send.num_streams = 4;
  HostPair::NetJob recv = send;
  recv.engine = kTcpRecv;
  const auto results = pair_.run_concurrent(
      std::vector<HostPair::NetJob>{send, recv});
  const double total = results[0].aggregate + results[1].aggregate;
  // cpu(5) capacity 28 with weight 1.0/Gbps on each direction: the sum
  // cannot exceed ~28 even though each direction alone reaches ~21.
  EXPECT_LT(total, 29.0);
  EXPECT_GT(total, 26.0);
}

TEST_F(HostPairTest, PcieCapsConcurrentEnginesBeforeTheWire) {
  // TCP send and RDMA write both push A->B: their ceilings sum to 44.2,
  // the wire carries 37.6, but the NIC's PCIe Gen2 x8 link (32 Gbps of
  // data) binds first — §IV-B1's "theoretical performance limit" made
  // operational.
  HostPair::NetJob tcp;
  tcp.engine = kTcpSend;
  tcp.local_node = 5;
  tcp.peer_node = 6;
  tcp.num_streams = 4;
  HostPair::NetJob rdma = tcp;
  rdma.engine = kRdmaWrite;
  const auto results = pair_.run_concurrent(
      std::vector<HostPair::NetJob>{tcp, rdma});
  const double total = results[0].aggregate + results[1].aggregate;
  EXPECT_NEAR(total, 32.0, 0.5);
  EXPECT_LT(total, 37.6);
}

TEST_F(HostPairTest, RejectsNonNetworkEngines) {
  HostPair::NetJob j;
  j.engine = "ssd_write";
  EXPECT_THROW(pair_.run(j), std::invalid_argument);
}

TEST_F(HostPairTest, MemoryReleasedOnBothHosts) {
  const auto a_before = pair_.host().node_free_bytes(5);
  const auto b_before = pair_.host().node_free_bytes(pair_.peer(6));
  run(kTcpSend, 5, 6);
  EXPECT_EQ(pair_.host().node_free_bytes(5), a_before);
  EXPECT_EQ(pair_.host().node_free_bytes(pair_.peer(6)), b_before);
}

}  // namespace
}  // namespace numaio::io
