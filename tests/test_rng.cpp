#include "simcore/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace numaio::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, ForkIsOrderIndependent) {
  Rng base(100);
  // Consuming values from the base must not change what forks produce.
  Rng f1 = base.fork(5);
  base.next_u64();
  base.next_u64();
  Rng f2 = base.fork(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(f1.next_u64(), f2.next_u64());
}

TEST(Rng, ForksWithDistinctKeysDiffer) {
  Rng base(100);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, TwoKeyForkDistinguishesOrder) {
  Rng base(100);
  Rng ab = base.fork(1, 2);
  Rng ba = base.fork(2, 1);
  EXPECT_NE(ab.next_u64(), ba.next_u64());
}

// Property sweep: every seed yields values filling the unit interval
// reasonably (no stuck generator states).
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, ProducesSpreadOfValues) {
  Rng rng(GetParam());
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0u, 1u, 42u, 0xDEADBEEFu,
                                           ~std::uint64_t{0}));

}  // namespace
}  // namespace numaio::sim
