#include "model/iomodel.h"

#include <gtest/gtest.h>

#include "fabric/calibration.h"

namespace numaio::model {
namespace {

class IoModelTest : public ::testing::Test {
 protected:
  fabric::Machine machine_{fabric::dl585_profile()};
  nm::Host host_{machine_};
};

TEST_F(IoModelTest, WriteModelDiscoversFabricColumn) {
  // Algorithm 1's write mode must rediscover the i->7 streaming
  // capacities through measurement (small negative bias from the
  // averaged one-sided jitter).
  const IoModelResult m =
      build_iomodel(host_, 7, Direction::kDeviceWrite);
  ASSERT_EQ(m.bw.size(), 8u);
  for (NodeId i = 0; i < 8; ++i) {
    const double truth = machine_.path(i, 7).dma_cap;
    EXPECT_NEAR(m.bw[static_cast<std::size_t>(i)], truth, 0.01 * truth) << i;
    EXPECT_LE(m.bw[static_cast<std::size_t>(i)], truth) << i;
  }
}

TEST_F(IoModelTest, ReadModelDiscoversFabricRow) {
  const IoModelResult m = build_iomodel(host_, 7, Direction::kDeviceRead);
  for (NodeId i = 0; i < 8; ++i) {
    const double truth = machine_.path(7, i).dma_cap;
    EXPECT_NEAR(m.bw[static_cast<std::size_t>(i)], truth, 0.01 * truth) << i;
  }
}

TEST_F(IoModelTest, WriteModelClassStructure) {
  // Table IV: {6,7} ~ 46.5+, {0,1,4,5} in 42.9-46.9, {2,3} in 26.0-27.3.
  const IoModelResult m =
      build_iomodel(host_, 7, Direction::kDeviceWrite);
  for (NodeId i : {0, 1, 4, 5}) {
    EXPECT_GT(m.bw[static_cast<std::size_t>(i)], 42.0) << i;
    EXPECT_LT(m.bw[static_cast<std::size_t>(i)], 47.0) << i;
  }
  for (NodeId i : {2, 3}) {
    EXPECT_GT(m.bw[static_cast<std::size_t>(i)], 25.5) << i;
    EXPECT_LT(m.bw[static_cast<std::size_t>(i)], 27.5) << i;
  }
  EXPECT_GT(m.bw[6], 46.0);
  EXPECT_GT(m.bw[7], 52.0);
}

TEST_F(IoModelTest, ReadModelClassStructure) {
  // Table V: {6,7} / {2,3} / {0,1,5} / {4}.
  const IoModelResult m = build_iomodel(host_, 7, Direction::kDeviceRead);
  for (NodeId i : {2, 3}) EXPECT_GT(m.bw[static_cast<std::size_t>(i)], 46.0);
  for (NodeId i : {0, 1, 5}) {
    EXPECT_GT(m.bw[static_cast<std::size_t>(i)], 39.0) << i;
    EXPECT_LT(m.bw[static_cast<std::size_t>(i)], 41.0) << i;
  }
  EXPECT_NEAR(m.bw[4], 27.9, 0.3);
}

TEST_F(IoModelTest, ReadAndWriteModelsDiffer) {
  // The directional asymmetry is the whole point: node 4 is mid-class for
  // writes but the worst class for reads; {2,3} the other way around.
  const auto w = build_iomodel(host_, 7, Direction::kDeviceWrite);
  const auto r = build_iomodel(host_, 7, Direction::kDeviceRead);
  EXPECT_GT(w.bw[4], r.bw[4] + 10.0);
  EXPECT_GT(r.bw[2], w.bw[2] + 10.0);
}

TEST_F(IoModelTest, MetadataFilledIn) {
  const auto m = build_iomodel(host_, 3, Direction::kDeviceRead);
  EXPECT_EQ(m.target, 3);
  EXPECT_EQ(m.direction, Direction::kDeviceRead);
}

TEST_F(IoModelTest, DeterministicAcrossRuns) {
  const auto a = build_iomodel(host_, 7, Direction::kDeviceWrite);
  const auto b = build_iomodel(host_, 7, Direction::kDeviceWrite);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(a.bw[i], b.bw[i]);
}

TEST_F(IoModelTest, BuffersReleasedAfterModelling) {
  const auto free0 = host_.node_free_bytes(0);
  const auto free7 = host_.node_free_bytes(7);
  build_iomodel(host_, 7, Direction::kDeviceWrite);
  EXPECT_EQ(host_.node_free_bytes(0), free0);
  EXPECT_EQ(host_.node_free_bytes(7), free7);
}

TEST_F(IoModelTest, WorksForAnyTargetNode) {
  // §V-B: "the methodology ... can also be generalized to other nodes".
  for (NodeId target : {0, 3, 6}) {
    const auto m = build_iomodel(host_, target, Direction::kDeviceWrite);
    ASSERT_EQ(m.bw.size(), 8u);
    // Local entry is the strongest or near-strongest.
    const double local = m.bw[static_cast<std::size_t>(target)];
    for (NodeId i = 0; i < 8; ++i) {
      EXPECT_LE(m.bw[static_cast<std::size_t>(i)], local * 1.02) << i;
    }
  }
}

TEST_F(IoModelTest, FewerRepetitionsStillCloseToTruth) {
  IoModelConfig quick;
  quick.repetitions = 5;
  const auto m = build_iomodel(host_, 7, Direction::kDeviceWrite, quick);
  EXPECT_NEAR(m.bw[0], machine_.path(0, 7).dma_cap, 0.5);
}

}  // namespace
}  // namespace numaio::model
