// Checks that the DL585 calibrated ground truth encodes every anchor the
// paper publishes. Downstream tests verify these re-emerge through the
// measurement procedures; this file pins the calibration itself.
#include "fabric/calibration.h"

#include <gtest/gtest.h>

#include "topo/presets.h"

namespace numaio::fabric {
namespace {

class Dl585 : public ::testing::Test {
 protected:
  HostProfile profile_ = dl585_profile();
};

TEST_F(Dl585, EightNodesNamedAfterTheHost) {
  EXPECT_EQ(profile_.num_nodes(), 8);
  EXPECT_EQ(profile_.name, "hp-dl585-g7");
  EXPECT_DOUBLE_EQ(profile_.llc_mb, 5.0);
}

TEST_F(Dl585, DeviceWriteModelColumnClasses) {
  // Table IV proposed-memcpy classes: {6,7} / {0,1,4,5} / {2,3}.
  const auto cap_to_7 = [&](NodeId i) { return profile_.paths.at(i, 7).dma_cap; };
  for (NodeId i : {0, 1, 4, 5}) {
    EXPECT_GE(cap_to_7(i), 42.9) << i;
    EXPECT_LE(cap_to_7(i), 46.9) << i;
  }
  for (NodeId i : {2, 3}) {
    EXPECT_GE(cap_to_7(i), 26.0) << i;
    EXPECT_LE(cap_to_7(i), 27.3) << i;
  }
  EXPECT_GE(cap_to_7(6), 46.5);
  EXPECT_GE(cap_to_7(7), 51.0);
}

TEST_F(Dl585, DeviceReadModelRowClasses) {
  // Table V proposed-memcpy classes: {6,7} / {2,3} / {0,1,5} / {4}.
  const auto cap_from_7 = [&](NodeId i) {
    return profile_.paths.at(7, i).dma_cap;
  };
  for (NodeId i : {2, 3}) {
    EXPECT_GE(cap_from_7(i), 46.9) << i;
    EXPECT_LE(cap_from_7(i), 50.3) << i;
  }
  for (NodeId i : {0, 1, 5}) {
    EXPECT_GE(cap_from_7(i), 39.9) << i;
    EXPECT_LE(cap_from_7(i), 40.9) << i;
  }
  EXPECT_NEAR(cap_from_7(4), 27.9, 1e-9);
  EXPECT_GE(cap_from_7(6), 47.1);
}

TEST_F(Dl585, DirectionalAsymmetryOfWeakPaths) {
  // {2,3}->7 is weak while 7->{2,3} is strong; 7->4 weak while 4->7 is
  // mid-range — the request/response-buffer asymmetry of §IV-A.
  EXPECT_LT(profile_.paths.at(2, 7).dma_cap, 30.0);
  EXPECT_GT(profile_.paths.at(7, 2).dma_cap, 45.0);
  EXPECT_LT(profile_.paths.at(7, 4).dma_cap, 30.0);
  EXPECT_GT(profile_.paths.at(4, 7).dma_cap, 40.0);
}

TEST_F(Dl585, StreamAnchorsFromFigure3) {
  // cpu7/mem4 = 21.34, better than cpu7/mem{2,3}.
  EXPECT_DOUBLE_EQ(profile_.paths.at(7, 4).stream_bw, 21.34);
  EXPECT_LT(profile_.paths.at(7, 2).stream_bw, 21.34);
  EXPECT_LT(profile_.paths.at(7, 3).stream_bw, 21.34);
  // cpu4/mem7 = 18.45, worse than cpu{2,3}/mem7.
  EXPECT_DOUBLE_EQ(profile_.paths.at(4, 7).stream_bw, 18.45);
  EXPECT_GT(profile_.paths.at(2, 7).stream_bw, 18.45);
  EXPECT_GT(profile_.paths.at(3, 7).stream_bw, 18.45);
}

TEST_F(Dl585, Node0LocalStreamBoost) {
  // §IV-A: node 0 outperforms all other local bindings (OS residency).
  const double node0 = profile_.paths.at(0, 0).stream_bw;
  for (NodeId i = 1; i < 8; ++i) {
    EXPECT_GT(node0, profile_.paths.at(i, i).stream_bw) << i;
  }
}

TEST_F(Dl585, CpuCentricRatioZeroOneVsTwoThree) {
  // §IV-B2: in the CPU-centric model node {0,1} beat {2,3} by up to ~88%.
  const double avg01 = (profile_.paths.at(7, 0).stream_bw +
                        profile_.paths.at(7, 1).stream_bw) / 2.0;
  const double avg23 = (profile_.paths.at(7, 2).stream_bw +
                        profile_.paths.at(7, 3).stream_bw) / 2.0;
  EXPECT_NEAR(avg01 / avg23, 1.88, 0.08);
}

TEST_F(Dl585, MemoryCentricRatioZeroOneVsTwoThree) {
  // ... and by ~43% in the memory-centric model.
  const double avg01 = (profile_.paths.at(0, 7).stream_bw +
                        profile_.paths.at(1, 7).stream_bw) / 2.0;
  const double avg23 = (profile_.paths.at(2, 7).stream_bw +
                        profile_.paths.at(3, 7).stream_bw) / 2.0;
  EXPECT_NEAR(avg01 / avg23, 1.43, 0.08);
}

TEST_F(Dl585, PioAndDmaPathsDisagree) {
  // The central §IV-C observation: the PIO path from 7 to {2,3} is bad
  // while the DMA path 7->{2,3} is good. A single-path model cannot
  // represent this; PathCharacter carries both.
  EXPECT_LT(profile_.paths.at(7, 2).stream_bw,
            profile_.paths.at(7, 0).stream_bw);
  EXPECT_GT(profile_.paths.at(7, 2).dma_cap,
            profile_.paths.at(7, 0).dma_cap);
}

TEST_F(Dl585, DmaLatencyAnchors) {
  // Window math of the device engines (see io/nic.cpp): these three
  // latencies produce the RDMA_READ classes 18.3 / 16.1 / 22.0.
  EXPECT_DOUBLE_EQ(profile_.paths.at(7, 0).dma_lat, 910.0);
  EXPECT_DOUBLE_EQ(profile_.paths.at(7, 4).dma_lat, 1035.0);
  EXPECT_DOUBLE_EQ(profile_.paths.at(7, 2).dma_lat, 570.0);
  EXPECT_DOUBLE_EQ(profile_.paths.at(2, 7).dma_lat, 1000.0);
}

TEST_F(Dl585, AllCellsPositive) {
  for (NodeId i = 0; i < 8; ++i) {
    for (NodeId j = 0; j < 8; ++j) {
      const auto& c = profile_.paths.at(i, j);
      EXPECT_GT(c.dma_cap, 0.0);
      EXPECT_GT(c.dma_lat, 0.0);
      EXPECT_GT(c.stream_bw, 0.0);
    }
  }
}

TEST(DerivedProfile, WrapsTopologyName) {
  const auto topo = topo::magny_cours_4p('b');
  const HostProfile p = derived_profile(topo);
  EXPECT_EQ(p.name, topo.name());
  EXPECT_EQ(p.num_nodes(), 8);
}

}  // namespace
}  // namespace numaio::fabric
