#include "nm/cores.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "fabric/calibration.h"
#include "mem/stream.h"
#include "topo/presets.h"

namespace numaio::nm {
namespace {

TEST(Cores, NodeMajorMapping) {
  const auto topo = topo::dl585_g7();
  EXPECT_EQ(node_of_core(topo, 0), 0);
  EXPECT_EQ(node_of_core(topo, 3), 0);
  EXPECT_EQ(node_of_core(topo, 4), 1);
  EXPECT_EQ(node_of_core(topo, 31), 7);
  EXPECT_EQ(first_core_of(topo, 7), 28);
  EXPECT_EQ(first_core_of(topo, 0), 0);
}

TEST(Cores, OutOfRangeThrows) {
  const auto topo = topo::dl585_g7();
  EXPECT_THROW(node_of_core(topo, 32), std::out_of_range);
  EXPECT_THROW(node_of_core(topo, -1), std::out_of_range);
}

TEST(Cores, CoreListParsing) {
  const auto topo = topo::dl585_g7();
  EXPECT_EQ(nodes_of_core_list(topo, "0,3-5"),
            (std::vector<topo::NodeId>{0, 1}));
  EXPECT_EQ(nodes_of_core_list(topo, "28-31"),
            (std::vector<topo::NodeId>{7}));
  EXPECT_EQ(nodes_of_core_list(topo, "31,0"),
            (std::vector<topo::NodeId>{0, 7}));
}

TEST(Cores, CoreListErrors) {
  const auto topo = topo::dl585_g7();
  EXPECT_THROW(nodes_of_core_list(topo, ""), std::invalid_argument);
  EXPECT_THROW(nodes_of_core_list(topo, "5-2"), std::invalid_argument);
  EXPECT_THROW(nodes_of_core_list(topo, "a"), std::invalid_argument);
  EXPECT_THROW(nodes_of_core_list(topo, "30-40"), std::out_of_range);
}

TEST(Cores, CoresOfANodeShowIdenticalStreamBandwidth) {
  // §IV-A's justification for node-level characterization, made explicit:
  // single-thread STREAM from any core of node 5 against node 7 measures
  // the same bandwidth (cores differ only in identity, not fabric path).
  fabric::Machine machine{fabric::dl585_profile()};
  Host host{machine};
  mem::StreamConfig config;
  config.threads = 1;  // one core at a time
  mem::StreamBenchmark bench(host, config);
  const auto topo = machine.topology();
  const double reference = bench.run(5, 7).best;
  for (int core = first_core_of(topo, 5);
       core < first_core_of(topo, 5) + topo.node(5).cores; ++core) {
    EXPECT_EQ(node_of_core(topo, core), 5);
    EXPECT_DOUBLE_EQ(bench.run(node_of_core(topo, core), 7).best,
                     reference);
  }
}

}  // namespace
}  // namespace numaio::nm
