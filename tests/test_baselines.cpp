#include "model/baselines.h"

#include <gtest/gtest.h>

#include "io/testbed.h"
#include "model/analysis.h"
#include "topo/presets.h"

namespace numaio::model {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() : tb_(io::Testbed::dl585()) {
    bw_ = mem::stream_matrix(tb_.host(), mem::StreamConfig{});
  }

  std::vector<double> rdma_read_sweep() {
    io::FioRunner fio(tb_.host());
    std::vector<double> out;
    for (topo::NodeId node = 0; node < 8; ++node) {
      io::FioJob j;
      j.devices = {&tb_.nic()};
      j.engine = io::kRdmaRead;
      j.cpu_node = node;
      j.num_streams = 4;
      out.push_back(fio.run(j).aggregate);
    }
    return out;
  }

  io::Testbed tb_;
  mem::BandwidthMatrix bw_;
};

TEST_F(BaselinesTest, HopModelLevelsDecreaseWithDistance) {
  const HopModel m = fit_hop_model(bw_, tb_.machine().topology());
  ASSERT_EQ(m.level.size(), 3u);  // hops 0..2 on layout (a)
  EXPECT_GT(m.level[0], m.level[1]);
  EXPECT_GT(m.level[1], m.level[2] * 0.95);  // remote levels nearly merge
}

TEST_F(BaselinesTest, PredictBeyondDiameterClampsToLast) {
  HopModel m;
  m.level = {30.0, 20.0};
  EXPECT_DOUBLE_EQ(m.predict(0), 30.0);
  EXPECT_DOUBLE_EQ(m.predict(5), 20.0);
}

TEST_F(BaselinesTest, HopClassesPartitionByDistance) {
  const auto c = classify_by_hops(tb_.machine().topology(), 7);
  // Layout (a): class1 {6,7}; one-hop {0,2,4}; two-hop {1,3,5}.
  ASSERT_EQ(c.num_classes(), 3);
  EXPECT_EQ(c.classes[0], (std::vector<NodeId>{6, 7}));
  EXPECT_EQ(c.classes[1], (std::vector<NodeId>{0, 2, 4}));
  EXPECT_EQ(c.classes[2], (std::vector<NodeId>{1, 3, 5}));
}

TEST_F(BaselinesTest, HopModelLosesToIoModelOnRdmaRead) {
  // The paper's argument in one assertion: hop-predicted bandwidth ranks
  // real RDMA_READ worse than the proposed model does.
  const auto io = rdma_read_sweep();
  const HopModel hop = fit_hop_model(bw_, tb_.machine().topology());
  const auto hop_pred =
      predict_for_target(hop, tb_.machine().topology(), 7);
  const auto proposed =
      build_iomodel(tb_.host(), 7, Direction::kDeviceRead);
  EXPECT_GT(spearman(proposed.bw, io),
            spearman(hop_pred, io) + 0.3);
}

TEST_F(BaselinesTest, HopClassesDisagreeWithModelClassesOnReads) {
  // Hop classes put {0,2,4} together; the device-read model splits them
  // across three classes (2 strong, 0 mid, 4 floor).
  const auto hops = classify_by_hops(tb_.machine().topology(), 7);
  const auto m = build_iomodel(tb_.host(), 7, Direction::kDeviceRead);
  const auto classes = classify(m, tb_.machine().topology());
  const double agreement = class_agreement(classes, hops);
  EXPECT_LT(agreement, 0.85);  // well below the control host (>= 0.9)
  // Same-structure sanity: a classification agrees with itself fully.
  EXPECT_DOUBLE_EQ(class_agreement(classes, classes), 1.0);
}

TEST_F(BaselinesTest, HopClassesMatchOnAnIdealizedHost) {
  // Control: on a derived (wiring-faithful) fabric, hop classes and model
  // classes coincide, so the baseline is only wrong where the hardware is
  // weird — exactly the paper's framing.
  fabric::Machine machine{
      fabric::derived_profile(topo::magny_cours_4p('a'))};
  nm::Host host{machine};
  const auto m = build_iomodel(host, 7, Direction::kDeviceWrite);
  const auto model_classes = classify(m, machine.topology());
  const auto hop_classes = classify_by_hops(machine.topology(), 7);
  EXPECT_GE(class_agreement(model_classes, hop_classes), 0.9);
}

}  // namespace
}  // namespace numaio::model
