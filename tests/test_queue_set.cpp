// Sharded admission-queue tests (DESIGN.md §13): the PriorityFifo's two
// ends (pop order and shed order), the QueueSet's global depth bound,
// and the property the sharded queue rests on — for ANY shard count,
// push verdicts, shed victims and pop order are bit-identical to the
// single BoundedQueue reference.
#include <gtest/gtest.h>

#include <vector>

#include "fleet/admission.h"
#include "fleet/queue_set.h"
#include "fleet/shard.h"
#include "simcore/rng.h"

namespace numaio::fleet {
namespace {

QueueItem item(int request, int priority, int tenant) {
  QueueItem it;
  it.request = request;
  it.priority = priority;
  it.tenant = tenant;
  return it;
}

// --- PriorityFifo --------------------------------------------------------

TEST(PriorityFifoTest, BestAndVictimAreOppositeEnds) {
  PriorityFifo fifo;
  fifo.push(item(0, 1, 0), 0);
  fifo.push(item(1, 3, 0), 1);
  fifo.push(item(2, 1, 0), 2);
  fifo.push(item(3, 3, 0), 3);
  ASSERT_EQ(fifo.size(), 4);
  // best: highest priority, earliest seq. victim: lowest priority,
  // latest seq.
  EXPECT_EQ(fifo.best().item.request, 1);
  EXPECT_EQ(fifo.victim().item.request, 2);
  EXPECT_EQ(fifo.pop_best().request, 1);
  EXPECT_EQ(fifo.pop_victim().request, 2);
  EXPECT_EQ(fifo.pop_best().request, 3);
  EXPECT_EQ(fifo.pop_best().request, 0);
  EXPECT_TRUE(fifo.empty());
}

TEST(PriorityFifoTest, RemoveDropsExactlyTheNamedRequest) {
  PriorityFifo fifo;
  for (int i = 0; i < 6; ++i) {
    fifo.push(item(i, i % 2, 0), static_cast<std::uint64_t>(i));
  }
  EXPECT_TRUE(fifo.remove(3));
  EXPECT_FALSE(fifo.remove(3));  // already gone
  EXPECT_FALSE(fifo.remove(99));
  EXPECT_EQ(fifo.size(), 5);
  // Pop everything; 3 must not appear.
  std::vector<int> popped;
  while (!fifo.empty()) popped.push_back(fifo.pop_best().request);
  EXPECT_EQ(popped, (std::vector<int>{1, 5, 0, 2, 4}));
}

// --- QueueSet ------------------------------------------------------------

TEST(QueueSetTest, ShedsIncomingWhenItDoesNotOutrank) {
  QueueSet set(/*max_depth=*/2, /*num_shards=*/4);
  EXPECT_TRUE(set.push(item(0, 1, 0)).accepted);
  EXPECT_TRUE(set.push(item(1, 1, 1)).accepted);
  // Full; an equal-priority arrival is the latest lowest-priority item,
  // so it sheds itself.
  const auto r = set.push(item(2, 1, 2));
  EXPECT_FALSE(r.accepted);
  EXPECT_TRUE(r.shed);
  EXPECT_EQ(r.victim.request, 2);
  EXPECT_EQ(set.depth(), 2);
  // A higher-priority arrival evicts the latest of the lowest level.
  const auto r2 = set.push(item(3, 2, 3));
  EXPECT_TRUE(r2.accepted);
  EXPECT_TRUE(r2.shed);
  EXPECT_EQ(r2.victim.request, 1);
  EXPECT_EQ(set.pop().request, 3);
  EXPECT_EQ(set.pop().request, 0);
  EXPECT_TRUE(set.empty());
}

TEST(QueueSetTest, CrossShardStealsAreCountedAndBounded) {
  // Two shards; pick tenants that land on different shards so the shed
  // pass must steal the victim from the other shard's arena.
  int tenant_a = -1, tenant_b = -1;
  for (int t = 0; t < 64 && (tenant_a < 0 || tenant_b < 0); ++t) {
    if (shard_of_tenant(t, 2) == 0 && tenant_a < 0) tenant_a = t;
    if (shard_of_tenant(t, 2) == 1 && tenant_b < 0) tenant_b = t;
  }
  ASSERT_GE(tenant_a, 0);
  ASSERT_GE(tenant_b, 0);

  QueueSet set(/*max_depth=*/3, /*num_shards=*/2);
  EXPECT_TRUE(set.push(item(0, 0, tenant_a)).accepted);
  EXPECT_TRUE(set.push(item(1, 0, tenant_a)).accepted);
  EXPECT_TRUE(set.push(item(2, 0, tenant_a)).accepted);
  EXPECT_EQ(set.cross_shard_steals(), 0);
  // Queue full, all victims live in shard 0; a high-priority arrival
  // homed on shard 1 must steal its victim cross-shard.
  const auto r = set.push(item(3, 5, tenant_b));
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.shed);
  EXPECT_EQ(r.victim.request, 2);  // latest arrival of the lowest level
  EXPECT_EQ(set.cross_shard_steals(), 1);
  EXPECT_EQ(set.depth(), 3);
  EXPECT_LE(set.max_shard_depth(), 3);
  EXPECT_EQ(set.shard_depth(0) + set.shard_depth(1), 3);
}

TEST(QueueSetTest, PropertyMatchesBoundedQueueForAnyShardCount) {
  // The determinism contract of the sharded queue: replay one randomized
  // push/pop/remove trace against the single-queue reference and every
  // shard count; verdicts, victims, pop order and depths must be
  // bit-identical throughout. The trace runs well past the depth bound
  // so the two-level shed policy (local victim, then cross-shard steal)
  // is exercised constantly.
  for (const int shards : {1, 2, 8}) {
    sim::Rng rng(1234);  // same seed per shard count -> same op stream
    BoundedQueue reference(/*max_depth=*/24);
    QueueSet set(/*max_depth=*/24, shards);
    std::vector<int> tenant_of;  // request id -> tenant, for remove()
    long long sheds = 0;
    for (int op = 0; op < 20000; ++op) {
      const std::uint64_t pick = rng.below(10);
      if (pick < 6) {
        const int request = static_cast<int>(tenant_of.size());
        const int priority = static_cast<int>(rng.below(4));
        const int tenant = static_cast<int>(rng.below(300));
        tenant_of.push_back(tenant);
        const auto a = reference.push(item(request, priority, tenant));
        const auto b = set.push(item(request, priority, tenant));
        ASSERT_EQ(a.accepted, b.accepted) << "op " << op;
        ASSERT_EQ(a.shed, b.shed) << "op " << op;
        ASSERT_EQ(a.victim.request, b.victim.request) << "op " << op;
        if (b.shed) ++sheds;
      } else if (pick < 9) {
        ASSERT_EQ(reference.empty(), set.empty());
        if (!reference.empty()) {
          const QueueItem a = reference.pop();
          const QueueItem b = set.pop();
          ASSERT_EQ(a.request, b.request) << "op " << op;
          ASSERT_EQ(a.priority, b.priority) << "op " << op;
        }
      } else if (!tenant_of.empty()) {
        const int target =
            static_cast<int>(rng.below(tenant_of.size()));
        const bool a = reference.remove(target);
        const bool b = set.remove(
            target, tenant_of[static_cast<std::size_t>(target)]);
        ASSERT_EQ(a, b) << "op " << op;
      }
      ASSERT_EQ(reference.depth(), set.depth()) << "op " << op;
      ASSERT_LE(set.depth(), set.max_depth());
      ASSERT_LE(set.max_shard_depth(), set.max_depth());
    }
    // The trace must have actually shed (otherwise the property above
    // never touched the interesting path).
    EXPECT_GT(sheds, 100) << shards << " shards";
    if (shards > 1) {
      EXPECT_GT(set.cross_shard_steals(), 0);
    }
  }
}

}  // namespace
}  // namespace numaio::fleet
