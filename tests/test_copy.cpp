#include "mem/copy.h"

#include <gtest/gtest.h>

#include "fabric/calibration.h"

namespace numaio::mem {
namespace {

class CopyTest : public ::testing::Test {
 protected:
  fabric::Machine machine_{fabric::dl585_profile()};
};

TEST_F(CopyTest, StreamingLocalCopyHitsMcLimit) {
  CopyTask t{.threads_node = 7, .src_node = 7, .dst_node = 7,
             .threads = 0, .engine = CopyEngine::kStreaming};
  EXPECT_NEAR(run_copy_alone(machine_, t), 53.5, 1e-9);
}

TEST_F(CopyTest, StreamingRemoteLoadIsFabricBound) {
  // Threads on 7 pulling from node 2: the weak 2->7 direction (26 Gbps).
  CopyTask t{.threads_node = 7, .src_node = 2, .dst_node = 7,
             .threads = 0, .engine = CopyEngine::kStreaming};
  EXPECT_NEAR(run_copy_alone(machine_, t), 26.0, 1e-9);
}

TEST_F(CopyTest, StreamingDirectionMatters) {
  // 7->2 push uses the strong direction.
  CopyTask t{.threads_node = 7, .src_node = 7, .dst_node = 2,
             .threads = 0, .engine = CopyEngine::kStreaming};
  EXPECT_NEAR(run_copy_alone(machine_, t), 50.3, 1e-9);
}

TEST_F(CopyTest, StreamingWindowNeverBindsOnCalibratedHost) {
  // The streaming engine must be capacity-bound everywhere for the
  // DMA-imitation argument to hold.
  for (topo::NodeId i = 0; i < 8; ++i) {
    for (topo::NodeId j = 0; j < 8; ++j) {
      const double window_cap =
          kStreamingWindowBits / machine_.path(i, j).dma_lat;
      EXPECT_GT(window_cap, machine_.path(i, j).dma_cap) << i << "," << j;
    }
  }
}

TEST_F(CopyTest, PioLocalCopyMatchesCalibratedStream) {
  CopyTask t{.threads_node = 4, .src_node = 4, .dst_node = 4,
             .threads = 0, .engine = CopyEngine::kPio};
  EXPECT_NEAR(run_copy_alone(machine_, t), 28.6, 1e-6);
}

TEST_F(CopyTest, PioRemoteMatchesCalibratedStream) {
  CopyTask t{.threads_node = 4, .src_node = 7, .dst_node = 7,
             .threads = 0, .engine = CopyEngine::kPio};
  EXPECT_NEAR(run_copy_alone(machine_, t), 18.45, 1e-6);
}

TEST_F(CopyTest, PioIsMuchSlowerThanStreamingOnTheSamePath) {
  // §IV-C: the PIO and DMA paths differ; remote streaming throughput far
  // exceeds the CPU's load/store loop on every remote path.
  CopyTask pio{.threads_node = 7, .src_node = 0, .dst_node = 7,
               .threads = 0, .engine = CopyEngine::kPio};
  CopyTask stream = pio;
  stream.engine = CopyEngine::kStreaming;
  EXPECT_GT(run_copy_alone(machine_, stream),
            1.3 * run_copy_alone(machine_, pio));
}

TEST_F(CopyTest, ThreadCountScalesCap) {
  CopyTask full{.threads_node = 6, .src_node = 6, .dst_node = 6,
                .threads = 4, .engine = CopyEngine::kPio};
  CopyTask half = full;
  half.threads = 2;
  EXPECT_NEAR(copy_rate_cap(machine_, half),
              copy_rate_cap(machine_, full) / 2.0, 1e-9);
}

TEST_F(CopyTest, ZeroThreadsMeansAllCores) {
  CopyTask all{.threads_node = 6, .src_node = 6, .dst_node = 6,
               .threads = 0, .engine = CopyEngine::kPio};
  CopyTask four = all;
  four.threads = 4;
  EXPECT_DOUBLE_EQ(copy_rate_cap(machine_, all),
                   copy_rate_cap(machine_, four));
}

TEST_F(CopyTest, PioSplitSrcDstComposesLegs) {
  // Copy with distinct src/dst nodes: rate below either single-node rate
  // because the thread's issue budget is split across legs.
  CopyTask split{.threads_node = 7, .src_node = 0, .dst_node = 4,
                 .threads = 0, .engine = CopyEngine::kPio};
  CopyTask src_only{.threads_node = 7, .src_node = 0, .dst_node = 0,
                    .threads = 0, .engine = CopyEngine::kPio};
  const double r_split = copy_rate_cap(machine_, split);
  const double r_src = copy_rate_cap(machine_, src_only);
  EXPECT_LT(r_split, r_src * (1.0 + kPioStoreFactor));
  EXPECT_GT(r_split, 0.0);
}

TEST_F(CopyTest, TwoConcurrentStreamingCopiesShareThePath) {
  auto& solver = machine_.solver();
  CopyTask t{.threads_node = 7, .src_node = 0, .dst_node = 7,
             .threads = 0, .engine = CopyEngine::kStreaming};
  const auto usages = copy_usages(machine_, t);
  const auto cap = copy_rate_cap(machine_, t);
  const auto f1 = solver.add_flow(usages, cap);
  const auto f2 = solver.add_flow(usages, cap);
  const auto rates = solver.solve();
  EXPECT_NEAR(rates[f1] + rates[f2], 44.0, 1e-9);  // fab(0->7) shared
  solver.remove_flow(f1);
  solver.remove_flow(f2);
}

}  // namespace
}  // namespace numaio::mem
