// Rate tracing and the paper's stability claim ("the bandwidth
// performance is stable over the whole data transfer process", §V-B).
#include <gtest/gtest.h>

#include "simcore/fluid_sim.h"

namespace numaio::sim {
namespace {

TEST(RateTrace, DisabledByDefault) {
  FlowSolver solver;
  const auto link = solver.add_resource("link", 8.0);
  FluidSimulation fluid(solver);
  const auto id = fluid.start_transfer({{link, 1.0}}, 1000);
  fluid.run();
  EXPECT_TRUE(fluid.trace(id).empty());
  EXPECT_DOUBLE_EQ(fluid.rate_stability(id).mean, 0.0);
}

TEST(RateTrace, SteadyTransferHasOneSegmentAndZeroCv) {
  FlowSolver solver;
  const auto link = solver.add_resource("link", 8.0);
  FluidSimulation fluid(solver);
  fluid.enable_rate_trace();
  const auto id = fluid.start_transfer({{link, 1.0}}, 1000);
  fluid.run();
  ASSERT_EQ(fluid.trace(id).size(), 1u);
  EXPECT_DOUBLE_EQ(fluid.trace(id)[0].rate, 8.0);
  EXPECT_DOUBLE_EQ(fluid.trace(id)[0].duration, 1000.0);
  const auto stability = fluid.rate_stability(id);
  EXPECT_DOUBLE_EQ(stability.mean, 8.0);
  EXPECT_DOUBLE_EQ(stability.cv, 0.0);
}

TEST(RateTrace, RateChangeCreatesSegments) {
  FlowSolver solver;
  const auto link = solver.add_resource("link", 8.0);
  FluidSimulation fluid(solver);
  fluid.enable_rate_trace();
  const auto lng = fluid.start_transfer({{link, 1.0}}, 1500);
  fluid.start_transfer({{link, 1.0}}, 500);
  fluid.run();
  // Long flow: 4 Gbps while sharing, 8 Gbps alone.
  ASSERT_EQ(fluid.trace(lng).size(), 2u);
  EXPECT_DOUBLE_EQ(fluid.trace(lng)[0].rate, 4.0);
  EXPECT_DOUBLE_EQ(fluid.trace(lng)[1].rate, 8.0);
  const auto stability = fluid.rate_stability(lng);
  EXPECT_GT(stability.cv, 0.2);
  EXPECT_NEAR(stability.mean, 4.0 * 0.5 + 8.0 * 0.5, 1e-9);
}

TEST(RateTrace, SegmentsWithEqualRateMerge) {
  FlowSolver solver;
  const auto link = solver.add_resource("link", 8.0);
  FluidSimulation fluid(solver);
  fluid.enable_rate_trace();
  const auto a = fluid.start_transfer({{link, 1.0}}, 1000);
  // An arrival on a different resource re-solves but does not change a's
  // rate: the trace must not fragment.
  const auto other = solver.add_resource("other", 4.0);
  fluid.start_transfer_at(200.0, {{other, 1.0}}, 100);
  fluid.run();
  EXPECT_EQ(fluid.trace(a).size(), 1u);
}

TEST(RateTrace, TraceDurationsSumToLifetime) {
  FlowSolver solver;
  const auto link = solver.add_resource("link", 10.0);
  FluidSimulation fluid(solver);
  fluid.enable_rate_trace();
  const auto a = fluid.start_transfer({{link, 1.0}}, 5000);
  fluid.start_transfer_at(1000.0, {{link, 1.0}}, 1000);
  fluid.start_transfer_at(2000.0, {{link, 1.0}}, 1000);
  fluid.run();
  double total = 0.0;
  for (const auto& seg : fluid.trace(a)) total += seg.duration;
  EXPECT_NEAR(total, fluid.stats(a).end - fluid.stats(a).start, 1e-6);
}

}  // namespace
}  // namespace numaio::sim
