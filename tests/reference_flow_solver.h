// Reference max-min-fair allocator: the historical FlowSolver algorithm,
// retained verbatim for property testing. It stores flows as per-flow
// usage vectors, never recycles ids, rescans every flow each round and
// allocates all scratch per solve — exactly the pre-CSR implementation —
// so the production solver's rates can be asserted *bit-identical*
// against it under arbitrary add/remove/capacity churn.
//
// Do not "improve" this file: its value is that it stays frozen.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "simcore/flow_solver.h"
#include "simcore/units.h"

namespace numaio::sim::test {

class ReferenceFlowSolver {
 public:
  ResourceId add_resource(Gbps capacity) {
    capacities_.push_back(capacity);
    return capacities_.size() - 1;
  }

  void set_capacity(ResourceId id, Gbps capacity) {
    capacities_[id] = capacity;
  }

  std::size_t add_flow(std::vector<Usage> usages, Gbps rate_cap) {
    flows_.push_back(Flow{std::move(usages), rate_cap, true});
    ++live_flows_;
    return flows_.size() - 1;
  }

  void remove_flow(std::size_t id) {
    assert(flows_[id].alive);
    flows_[id].alive = false;
    --live_flows_;
  }

  void set_flow_cap(std::size_t id, Gbps rate_cap) {
    flows_[id].cap = rate_cap;
  }

  std::vector<Gbps> solve() const {
    std::vector<Gbps> rate(flows_.size(), 0.0);
    if (live_flows_ == 0) return rate;

    constexpr double kWeightEps = 1e-9;

    std::vector<bool> frozen(flows_.size(), true);
    for (std::size_t f = 0; f < flows_.size(); ++f) {
      frozen[f] = !flows_[f].alive;
    }

    std::vector<Gbps> residual(capacities_.size());
    for (ResourceId r = 0; r < capacities_.size(); ++r) {
      residual[r] = capacities_[r];
    }
    std::vector<double> weight(capacities_.size(), 0.0);
    for (std::size_t f = 0; f < flows_.size(); ++f) {
      if (frozen[f]) continue;
      for (const Usage& u : flows_[f].usages) weight[u.resource] += u.weight;
    }

    std::size_t unfrozen = live_flows_;
    while (unfrozen > 0) {
      double delta = std::numeric_limits<double>::infinity();
      for (ResourceId r = 0; r < capacities_.size(); ++r) {
        if (weight[r] > kWeightEps && std::isfinite(residual[r])) {
          delta = std::min(delta, std::max(residual[r], 0.0) / weight[r]);
        }
      }
      for (std::size_t f = 0; f < flows_.size(); ++f) {
        if (!frozen[f] && std::isfinite(flows_[f].cap)) {
          delta = std::min(delta, flows_[f].cap - rate[f]);
        }
      }
      assert(std::isfinite(delta));
      delta = std::max(delta, 0.0);

      for (std::size_t f = 0; f < flows_.size(); ++f) {
        if (frozen[f]) continue;
        rate[f] += delta;
        for (const Usage& u : flows_[f].usages) {
          residual[u.resource] -= delta * u.weight;
        }
      }

      constexpr double kEps = 1e-12;
      std::vector<bool> saturated(capacities_.size(), false);
      for (ResourceId r = 0; r < capacities_.size(); ++r) {
        if (weight[r] > kWeightEps && std::isfinite(residual[r]) &&
            residual[r] <= kEps * std::max(1.0, capacities_[r])) {
          saturated[r] = true;
        }
      }
      bool any_frozen_this_round = false;
      for (std::size_t f = 0; f < flows_.size(); ++f) {
        if (frozen[f]) continue;
        bool freeze =
            std::isfinite(flows_[f].cap) && rate[f] >= flows_[f].cap - kEps;
        if (!freeze) {
          for (const Usage& u : flows_[f].usages) {
            if (saturated[u.resource]) {
              freeze = true;
              break;
            }
          }
        }
        if (freeze) {
          frozen[f] = true;
          --unfrozen;
          any_frozen_this_round = true;
          for (const Usage& u : flows_[f].usages) {
            weight[u.resource] -= u.weight;
            if (weight[u.resource] < kWeightEps) weight[u.resource] = 0.0;
          }
        }
      }
      if (!any_frozen_this_round) {
        assert(false && "reference solver failed to make progress");
        break;
      }
    }
    return rate;
  }

  Gbps aggregate_rate() const {
    const auto rates = solve();
    Gbps sum = 0.0;
    for (std::size_t f = 0; f < flows_.size(); ++f) {
      if (flows_[f].alive) sum += rates[f];
    }
    return sum;
  }

  double utilization(ResourceId id) const {
    if (!std::isfinite(capacities_[id]) || capacities_[id] <= 0.0) {
      return 0.0;
    }
    const auto rates = solve();
    double used = 0.0;
    for (std::size_t f = 0; f < flows_.size(); ++f) {
      if (!flows_[f].alive) continue;
      for (const Usage& u : flows_[f].usages) {
        if (u.resource == id) used += rates[f] * u.weight;
      }
    }
    return used / capacities_[id];
  }

 private:
  struct Flow {
    std::vector<Usage> usages;
    Gbps cap = kUnlimited;
    bool alive = false;
  };

  std::vector<Gbps> capacities_;
  std::vector<Flow> flows_;
  std::size_t live_flows_ = 0;
};

}  // namespace numaio::sim::test
