// Degraded-mode pipeline tests: retry/backoff and timeout aborts in the
// fio runner, degraded characterization under active faults, the robust
// scheduler's hop-distance fallback, drift detection + versioned stale
// marking, and online migration away from fault-degraded nodes.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "io/fio.h"
#include "io/nic.h"
#include "io/testbed.h"
#include "model/baselines.h"
#include "model/characterize.h"
#include "model/online.h"
#include "model/scheduler.h"
#include "model/workload.h"
#include "obs/obs.h"

namespace numaio {
namespace {

using model::Direction;

faults::FaultEvent mc_throttle(topo::NodeId node, sim::Ns start, sim::Ns dur,
                               double sev) {
  faults::FaultEvent e;
  e.kind = faults::FaultKind::kMcThrottle;
  e.node = node;
  e.start = start;
  e.duration = dur;
  e.severity = sev;
  return e;
}

io::FioJob basic_job(io::Testbed& tb, int streams, sim::Bytes bytes) {
  io::FioJob job;
  job.devices = {&tb.nic()};
  job.engine = io::kRdmaRead;
  job.cpu_node = 2;
  job.num_streams = streams;
  job.bytes_per_stream = bytes;
  return job;
}

// --- fio runner: timeouts, retries, partial results ----------------------

TEST(DegradedFio, TimeoutExhaustionAbortsWithPartialResult) {
  io::Testbed tb = io::Testbed::dl585();
  io::FioJob job = basic_job(tb, 1, 40 * sim::kGiB);
  job.retry.timeout = 1.0e6;  // 1 ms: a 40 GiB stream can never finish
  job.retry.max_retries = 2;

  io::FioRunner fio(tb.host());
  const io::FioResult result = fio.run(job);
  ASSERT_EQ(result.streams.size(), 1u);
  const io::FioStreamStats& st = result.streams.front();
  EXPECT_FALSE(st.outcome.ok);
  EXPECT_TRUE(st.outcome.aborted);
  EXPECT_EQ(st.outcome.retries, 2);
  EXPECT_LT(st.outcome.confidence, 0.5);
  // Partial progress is banked across attempts, not thrown away.
  EXPECT_GT(st.bytes_moved, 0);
  EXPECT_LT(st.bytes_moved, job.bytes_per_stream);
  EXPECT_EQ(result.aborted_streams, 1);
  EXPECT_EQ(result.total_retries, 2);
  EXPECT_TRUE(result.degraded);
}

TEST(DegradedFio, GenerousTimeoutMatchesFaultFreeExactly) {
  io::Testbed tb = io::Testbed::dl585();
  io::FioRunner fio(tb.host());
  io::FioJob plain = basic_job(tb, 4, 4 * sim::kGiB);
  io::FioJob guarded = plain;
  guarded.retry.timeout = 1.0e15;  // never fires

  const io::FioResult a = fio.run(plain);
  const io::FioResult b = fio.run(guarded);
  EXPECT_EQ(a.aggregate, b.aggregate);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_FALSE(b.degraded);
  for (const io::FioStreamStats& st : b.streams) {
    EXPECT_TRUE(st.outcome.ok);
    EXPECT_EQ(st.outcome.retries, 0);
    EXPECT_DOUBLE_EQ(st.outcome.confidence, 1.0);
    EXPECT_EQ(st.bytes_moved, 4 * sim::kGiB);
  }
}

TEST(DegradedFio, DeviceStallAbortsInFlightStreamsThenRecovers) {
  io::Testbed tb = io::Testbed::dl585();
  faults::FaultPlan plan;
  faults::FaultEvent stall;
  stall.kind = faults::FaultKind::kDeviceStall;
  stall.device = 0;
  stall.start = 5.0e9;
  stall.duration = 2.0e9;
  plan.add(stall);
  faults::FaultInjector injector(tb.machine(), std::move(plan));
  injector.register_device(tb.nic().name(), tb.nic().attach_node(),
                           tb.nic().fault_resources());

  io::FioJob job = basic_job(tb, 2, 40 * sim::kGiB);  // runs well past 5 s
  job.retry.timeout = 30.0e9;
  job.retry.max_retries = 3;

  io::FioRunner fio(tb.host());
  fio.set_fault_injector(&injector);
  const io::FioResult result = fio.run(job);
  EXPECT_TRUE(result.degraded);
  EXPECT_GE(result.total_retries, 1);
  EXPECT_EQ(result.aborted_streams, 0);  // retries carried them through
  for (const io::FioStreamStats& st : result.streams) {
    EXPECT_TRUE(st.outcome.ok);
    EXPECT_EQ(st.bytes_moved, 40 * sim::kGiB);
    EXPECT_LT(st.outcome.confidence, 1.0);
  }
}

// --- observability of degraded runs ---------------------------------------

TEST(DegradedObservability, AbortedStreamsEmitCorrelatedRetryEvents) {
  io::Testbed tb = io::Testbed::dl585();
  faults::FaultPlan plan;
  faults::FaultEvent stall;
  stall.kind = faults::FaultKind::kDeviceStall;
  stall.device = 0;
  stall.start = 5.0e9;
  stall.duration = 2.0e9;
  plan.add(stall);
  faults::FaultInjector injector(tb.machine(), std::move(plan));
  injector.register_device(tb.nic().name(), tb.nic().attach_node(),
                           tb.nic().fault_resources());

  obs::MemorySink sink;
  obs::Context ctx;
  ctx.trace.set_sink(&sink);
  injector.set_observer(&ctx);

  io::FioJob job = basic_job(tb, 2, 40 * sim::kGiB);
  job.retry.timeout = 30.0e9;
  job.retry.max_retries = 3;

  io::FioRunner fio(tb.host());
  fio.set_fault_injector(&injector);
  fio.set_observer(&ctx);
  const io::FioResult result = fio.run(job);
  EXPECT_TRUE(result.degraded);

  // The device stall's transition event must precede (and be cited by)
  // every retry the aborted attempts triggered.
  obs::EventId transition = 0;
  for (const obs::Event& e : sink.events) {
    if (e.name == "fault.transition" && e.outcome == "on") {
      transition = e.id;
      break;
    }
  }
  ASSERT_NE(transition, 0u);
  int correlated_retries = 0;
  for (const obs::Event& e : sink.events) {
    if (e.name != "fio.retry") continue;
    EXPECT_EQ(e.parent, transition);
    EXPECT_GT(e.id, transition);
    ++correlated_retries;
  }
  EXPECT_GE(correlated_retries, 1);
  EXPECT_EQ(ctx.metrics.value("fio.retries"),
            static_cast<double>(result.total_retries));
  EXPECT_EQ(ctx.metrics.value("faults.transitions"), 2.0);  // on + off

  // Span sanity: every stream span nests under a job span.
  obs::SpanId job_span = 0;
  for (const obs::Event& e : sink.events) {
    if (e.kind == 'B' && e.name == "fio.job") job_span = e.id;
    if (e.kind == 'B' && e.name == "fio.stream") {
      EXPECT_EQ(e.parent, job_span);
    }
  }
  ASSERT_NE(job_span, 0u);
}

TEST(DegradedObservability, RetryBudgetExhaustionEmitsAbortWithCause) {
  io::Testbed tb = io::Testbed::dl585();
  faults::FaultPlan plan;
  plan.add(mc_throttle(2, 0.0, 1.0e15, 0.95));  // cripples node 2 forever
  faults::FaultInjector injector(tb.machine(), std::move(plan));

  obs::MemorySink sink;
  obs::Context ctx;
  ctx.trace.set_sink(&sink);
  injector.set_observer(&ctx);

  io::FioJob job = basic_job(tb, 1, 40 * sim::kGiB);
  job.retry.timeout = 5.0e9;  // generous healthy, hopeless throttled
  job.retry.max_retries = 1;

  io::FioRunner fio(tb.host());
  fio.set_fault_injector(&injector);
  fio.set_observer(&ctx);
  const io::FioResult result = fio.run(job);
  ASSERT_EQ(result.aborted_streams, 1);

  obs::EventId transition = 0;
  const obs::Event* abort_event = nullptr;
  for (const obs::Event& e : sink.events) {
    if (e.name == "fault.transition" && e.outcome == "on") transition = e.id;
    if (e.name == "fio.abort") abort_event = &e;
  }
  ASSERT_NE(transition, 0u);
  ASSERT_NE(abort_event, nullptr);
  // The abort cites the capacity fault that was active at the deadline.
  EXPECT_EQ(abort_event->parent, transition);
  EXPECT_EQ(abort_event->outcome, "abort");
  EXPECT_EQ(ctx.metrics.value("fio.aborted_streams"), 1.0);
}

TEST(DegradedObservability, OnlineMigrationCitesActiveFault) {
  io::Testbed tb = io::Testbed::dl585();
  const auto write_model =
      model::build_iomodel(tb.host(), 7, Direction::kDeviceWrite);
  const auto read_model =
      model::build_iomodel(tb.host(), 7, Direction::kDeviceRead);
  const auto write_classes =
      model::classify(write_model, tb.machine().topology());
  const auto read_classes =
      model::classify(read_model, tb.machine().topology());

  std::vector<model::IoTask> tasks(1);
  tasks[0].engine = io::kRdmaRead;
  tasks[0].bytes = 64 * sim::kGiB;
  tasks[0].arrival = 0.0;

  model::OnlineConfig config;
  config.policy = model::OnlinePolicy::kModelAdaptive;
  model::OnlineScheduler plain(tb.host(), tb.nic(), write_classes,
                               read_classes, config);
  const topo::NodeId home = plain.run(tasks).tasks[0].first_node;

  faults::FaultPlan plan;
  plan.add(mc_throttle(home, 0.05e9, 1.0e15, 0.9));
  faults::FaultInjector injector(tb.machine(), std::move(plan));

  obs::MemorySink sink;
  obs::Context ctx;
  ctx.trace.set_sink(&sink);
  injector.set_observer(&ctx);

  model::OnlineScheduler degraded(tb.host(), tb.nic(), write_classes,
                                  read_classes, config);
  degraded.set_fault_injector(&injector);
  degraded.set_observer(&ctx);
  const auto report = degraded.run(tasks);
  ASSERT_GE(report.total_migrations, 1);

  obs::EventId transition = 0;
  const obs::Event* migrate = nullptr;
  obs::SpanId run_span = 0;
  for (const obs::Event& e : sink.events) {
    if (e.kind == 'B' && e.name == "online.run") run_span = e.id;
    if (e.name == "fault.transition" && e.outcome == "on") transition = e.id;
    if (e.name == "sched.migrate" && migrate == nullptr) migrate = &e;
  }
  ASSERT_NE(run_span, 0u);
  ASSERT_NE(transition, 0u);
  ASSERT_NE(migrate, nullptr);
  EXPECT_EQ(migrate->span, run_span);
  EXPECT_EQ(migrate->parent, transition);  // migration blamed on the fault
  EXPECT_EQ(migrate->node_a, home);
  EXPECT_NE(migrate->node_b, home);
  EXPECT_EQ(ctx.metrics.value("sched.migrations"),
            static_cast<double>(report.total_migrations));
}

// --- characterization under faults ---------------------------------------

TEST(DegradedIoModel, TinyTimeoutAbortsEveryRepetition) {
  io::Testbed tb = io::Testbed::dl585();
  model::IoModelConfig config;
  config.repetitions = 10;
  config.retry.timeout = 1.0;  // 1 ns: every repetition times out
  config.retry.max_retries = 2;
  const model::IoModelResult result =
      model::build_iomodel(tb.host(), 7, Direction::kDeviceWrite, config);
  EXPECT_TRUE(result.degraded);
  for (std::size_t i = 0; i < result.bw.size(); ++i) {
    EXPECT_EQ(result.bw[i], 0.0) << i;
    EXPECT_FALSE(result.outcomes[i].ok) << i;
    EXPECT_TRUE(result.outcomes[i].aborted) << i;
    EXPECT_EQ(result.outcomes[i].confidence, 0.0) << i;
    EXPECT_EQ(result.outcomes[i].retries, 2 * config.repetitions) << i;
  }
}

TEST(DegradedIoModel, CharacterizationUnderActiveFaultsCompletes) {
  io::Testbed tb = io::Testbed::dl585();

  // Fault-free reference run to size a per-rep timeout: generous for any
  // healthy repetition, far too tight for a 10x-throttled one.
  model::IoModelConfig reference;
  reference.repetitions = 3;
  const auto healthy =
      model::build_iomodel(tb.host(), 7, Direction::kDeviceWrite, reference);
  const int n = tb.host().num_configured_nodes();
  const int m = tb.host().num_configured_cores() / n;
  const double rep_bits =
      static_cast<double>(m) * 8.0 * static_cast<double>(reference.buffer_bytes);
  double worst_healthy = 0.0;
  for (double bw : healthy.bw) {
    worst_healthy = std::max(worst_healthy, rep_bits / bw);
  }

  faults::FaultPlan plan;
  faults::FaultEvent amp;
  amp.kind = faults::FaultKind::kMeasureNoise;
  amp.start = 0.0;
  amp.duration = 1.0e15;  // covers the whole synthetic timeline
  amp.severity = 49.0;    // 50x noise amplification
  plan.add(amp);
  plan.add(mc_throttle(3, 0.0, 1.0e15, 0.9));
  faults::FaultInjector injector(tb.machine(), std::move(plan));

  model::IoModelConfig config;
  config.repetitions = 30;
  config.injector = &injector;
  config.retry.timeout = 2.0 * worst_healthy;
  config.retry.max_retries = 2;
  const model::IoModelResult result =
      model::build_iomodel(tb.host(), 7, Direction::kDeviceWrite, config);
  injector.restore();

  // The run completes with degraded marking instead of crashing or
  // hanging: the throttled node's repetitions blow the timeout and are
  // dropped as aborted, the rest survive with discounted confidence.
  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(result.outcomes[3].aborted);
  EXPECT_EQ(result.bw[3], 0.0);
  int clean = 0;
  for (std::size_t i = 0; i < result.bw.size(); ++i) {
    if (result.outcomes[i].ok && result.bw[i] > 0.0) ++clean;
  }
  EXPECT_GE(clean, n - 2);
}

TEST(DegradedIoModel, FaultFreeRunsAreDeterministicAndClean) {
  io::Testbed tb = io::Testbed::dl585();
  model::IoModelConfig config;
  config.repetitions = 20;
  const auto a =
      model::build_iomodel(tb.host(), 7, Direction::kDeviceRead, config);
  const auto b =
      model::build_iomodel(tb.host(), 7, Direction::kDeviceRead, config);
  EXPECT_FALSE(a.degraded);
  ASSERT_EQ(a.bw.size(), b.bw.size());
  for (std::size_t i = 0; i < a.bw.size(); ++i) {
    EXPECT_EQ(a.bw[i], b.bw[i]) << i;
    EXPECT_TRUE(a.outcomes[i].ok) << i;
    EXPECT_DOUBLE_EQ(a.outcomes[i].confidence, 1.0) << i;
  }
}

// --- robust scheduling: hop-distance fallback -----------------------------

class RobustSchedulerTest : public ::testing::Test {
 protected:
  RobustSchedulerTest() : tb_(io::Testbed::dl585()) {
    model::CharacterizeConfig config;
    config.iomodel.repetitions = 5;
    model_ = model::characterize_host(tb_.host(), config);
  }

  std::vector<sim::Gbps> class_values(topo::NodeId target,
                                      Direction dir) const {
    return model_.classes_for(target, dir).class_avg;
  }

  io::Testbed tb_;
  model::HostModel model_;
};

TEST_F(RobustSchedulerTest, HealthyModelMatchesPlainSpread) {
  const auto values = class_values(7, Direction::kDeviceWrite);
  const auto robust = model::schedule_robust(
      model_, tb_.machine().topology(), 7, Direction::kDeviceWrite, values,
      8);
  EXPECT_FALSE(robust.used_fallback);
  EXPECT_TRUE(robust.reason.empty());
  const auto spread = model::schedule_spread(
      model_.classes_for(7, Direction::kDeviceWrite), values, 8);
  EXPECT_EQ(robust.placement.nodes, spread.nodes);
}

TEST_F(RobustSchedulerTest, StaleModelFallsBackToHopDistance) {
  model_.stale = true;
  const auto values = class_values(7, Direction::kDeviceWrite);
  const auto robust = model::schedule_robust(
      model_, tb_.machine().topology(), 7, Direction::kDeviceWrite, values,
      6);
  EXPECT_TRUE(robust.used_fallback);
  EXPECT_EQ(robust.reason, "model marked stale");
  // Fallback spreads over the local+neighbour hop class only.
  const auto hops =
      model::classify_by_hops(tb_.machine().topology(), 7).classes.front();
  ASSERT_EQ(robust.placement.nodes.size(), 6u);
  for (topo::NodeId n : robust.placement.nodes) {
    EXPECT_NE(std::find(hops.begin(), hops.end(), n), hops.end()) << n;
  }
}

TEST_F(RobustSchedulerTest, AbortedOrLowConfidenceProbesFallBack) {
  const auto values = class_values(7, Direction::kDeviceWrite);
  {
    model::HostModel m = model_;
    m.write_models[7].outcomes[3].ok = false;
    const auto robust = model::schedule_robust(
        m, tb_.machine().topology(), 7, Direction::kDeviceWrite, values, 4);
    EXPECT_TRUE(robust.used_fallback);
    EXPECT_EQ(robust.reason, "a model probe aborted");
  }
  {
    model::HostModel m = model_;
    m.write_models[7].outcomes[1].confidence = 0.2;
    const auto robust = model::schedule_robust(
        m, tb_.machine().topology(), 7, Direction::kDeviceWrite, values, 4);
    EXPECT_TRUE(robust.used_fallback);
    EXPECT_EQ(robust.reason, "a model probe reported low confidence");
  }
}

TEST_F(RobustSchedulerTest, UnusableClassValuesFallBack) {
  const std::vector<sim::Gbps> zeros(
      static_cast<std::size_t>(
          model_.classes_for(7, Direction::kDeviceWrite).num_classes()),
      0.0);
  const auto robust = model::schedule_robust(
      model_, tb_.machine().topology(), 7, Direction::kDeviceWrite, zeros,
      4);
  EXPECT_TRUE(robust.used_fallback);
  EXPECT_EQ(robust.reason, "no usable class probe values");

  const std::vector<sim::Gbps> mismatched{10.0};
  const auto robust2 = model::schedule_robust(
      model_, tb_.machine().topology(), 7, Direction::kDeviceWrite,
      mismatched, 4);
  EXPECT_TRUE(robust2.used_fallback);
  EXPECT_EQ(robust2.reason, "class value count mismatch");
}

// --- drift detection & versioned stale marking ----------------------------

TEST(DriftTest, SteadyHostShowsNoDrift) {
  io::Testbed tb = io::Testbed::dl585();
  model::CharacterizeConfig config;
  config.iomodel.repetitions = 5;
  model::HostModel model = model::characterize_host(tb.host(), config);

  model::DriftConfig drift;
  drift.iomodel.repetitions = 5;  // matches the stored model's measurement
  const auto report = model::check_drift(tb.host(), model, 7,
                                         Direction::kDeviceWrite, drift);
  EXPECT_FALSE(report.drifted);
  EXPECT_FALSE(model.stale);
  EXPECT_FALSE(report.notes.empty());
}

TEST(DriftTest, DriftMarksStaleAndRefreshBumpsRevision) {
  io::Testbed tb = io::Testbed::dl585();
  model::CharacterizeConfig config;
  config.iomodel.repetitions = 5;
  model::HostModel model = model::characterize_host(tb.host(), config);
  EXPECT_EQ(model.revision, 1);

  // Corrupt the stored write model of node 7: the fresh re-probe will
  // deviate ~33% from these inflated values.
  for (double& bw : model.write_models[7].bw) bw *= 1.5;

  model::DriftConfig drift;
  drift.iomodel.repetitions = 5;
  const auto report = model::check_drift(tb.host(), model, 7,
                                         Direction::kDeviceWrite, drift);
  EXPECT_TRUE(report.drifted);
  EXPECT_TRUE(model.stale);
  bool flagged = false;
  for (const std::string& note : report.notes) {
    if (note.find("DRIFT") != std::string::npos) flagged = true;
  }
  EXPECT_TRUE(flagged);

  EXPECT_TRUE(model::refresh_if_drifted(tb.host(), model, config, drift));
  EXPECT_EQ(model.revision, 2);
  EXPECT_FALSE(model.stale);
  // And the refreshed model is healthy again: no further drift.
  EXPECT_FALSE(model::refresh_if_drifted(tb.host(), model, config, drift));
  EXPECT_EQ(model.revision, 2);
}

TEST(DriftTest, StatusRecordRoundTripsAndDefaultsStayImplicit) {
  io::Testbed tb = io::Testbed::dl585();
  model::CharacterizeConfig config;
  config.iomodel.repetitions = 3;
  model::HostModel model = model::characterize_host(tb.host(), config);

  // Default revision/fresh: no status record in the serialized form.
  EXPECT_EQ(model::serialize(model).find("status"), std::string::npos);

  model.revision = 3;
  model.stale = true;
  const std::string text = model::serialize(model);
  EXPECT_NE(text.find("status 3 stale"), std::string::npos);
  const model::HostModel parsed = model::parse_host_model(text);
  EXPECT_EQ(parsed.revision, 3);
  EXPECT_TRUE(parsed.stale);
  EXPECT_EQ(model::serialize(parsed), text);
}

// --- online scheduling under faults ---------------------------------------

class OnlineDegradedTest : public ::testing::Test {
 protected:
  OnlineDegradedTest()
      : tb_(io::Testbed::dl585()),
        write_model_(model::build_iomodel(tb_.host(), 7,
                                          Direction::kDeviceWrite)),
        read_model_(model::build_iomodel(tb_.host(), 7,
                                         Direction::kDeviceRead)),
        write_classes_(
            model::classify(write_model_, tb_.machine().topology())),
        read_classes_(
            model::classify(read_model_, tb_.machine().topology())) {}

  io::Testbed tb_;
  model::IoModelResult write_model_;
  model::IoModelResult read_model_;
  model::Classification write_classes_;
  model::Classification read_classes_;
};

TEST_F(OnlineDegradedTest, SpreadAvoidsThrottledPoolNodes) {
  model::WorkloadConfig wc;
  wc.num_tasks = 16;
  wc.engine_mix = {io::kRdmaWrite, io::kRdmaRead};
  const auto tasks = model::generate_workload(wc);

  model::OnlineConfig config;
  config.policy = model::OnlinePolicy::kModelSpread;
  config.class_tolerance = 1.0;  // pool = every node, including node 0

  // Fault-free: round-robin over the full pool lands tasks on node 0.
  model::OnlineScheduler plain(tb_.host(), tb_.nic(), write_classes_,
                               read_classes_, config);
  const auto baseline = plain.run(tasks);
  bool used_node0 = false;
  for (const auto& t : baseline.tasks) used_node0 |= (t.first_node == 0);
  EXPECT_TRUE(used_node0);

  // Node 0's memory controller is throttled for the whole run: the
  // model-driven policy must steer around it.
  faults::FaultPlan plan;
  plan.add(mc_throttle(0, 0.0, 1.0e15, 0.9));
  faults::FaultInjector injector(tb_.machine(), std::move(plan));
  model::OnlineScheduler degraded(tb_.host(), tb_.nic(), write_classes_,
                                  read_classes_, config);
  degraded.set_fault_injector(&injector);
  const auto report = degraded.run(tasks);
  for (const auto& t : report.tasks) {
    EXPECT_NE(t.first_node, 0);
    EXPECT_GT(t.completion, t.arrival);
  }
}

TEST_F(OnlineDegradedTest, AdaptiveMigratesOffANodeDegradedMidRun) {
  // One long task: adaptive placement is stable while the machine is
  // healthy, so any migration is attributable to the injected fault.
  std::vector<model::IoTask> tasks(1);
  tasks[0].engine = io::kRdmaRead;
  tasks[0].bytes = 64 * sim::kGiB;
  tasks[0].arrival = 0.0;

  model::OnlineConfig config;
  config.policy = model::OnlinePolicy::kModelAdaptive;

  model::OnlineScheduler plain(tb_.host(), tb_.nic(), write_classes_,
                               read_classes_, config);
  const auto baseline = plain.run(tasks);
  EXPECT_EQ(baseline.total_migrations, 0);
  const topo::NodeId home = baseline.tasks[0].first_node;

  // Degrade the chosen node shortly after launch; the task must move away
  // at its next chunk boundary.
  faults::FaultPlan plan;
  plan.add(mc_throttle(home, 0.05e9, 1.0e15, 0.9));
  faults::FaultInjector injector(tb_.machine(), std::move(plan));
  model::OnlineScheduler degraded(tb_.host(), tb_.nic(), write_classes_,
                                  read_classes_, config);
  degraded.set_fault_injector(&injector);
  const auto report = degraded.run(tasks);
  EXPECT_EQ(report.tasks[0].first_node, home);  // placed before the fault
  EXPECT_GE(report.total_migrations, 1);
  EXPECT_GT(report.tasks[0].completion, 0.0);
}

}  // namespace
}  // namespace numaio
