// FioRunner::diagnose — identifying the binding resource of a transfer.
#include <gtest/gtest.h>

#include "io/testbed.h"

namespace numaio::io {
namespace {

class DiagnoseTest : public ::testing::Test {
 protected:
  DiagnoseTest() : tb_(Testbed::dl585()), fio_(tb_.host()) {}

  FioJob job(const std::string& engine, NodeId node, int streams = 4) {
    FioJob j;
    const bool is_ssd = engine.rfind("ssd", 0) == 0;
    j.devices = is_ssd ? tb_.ssds()
                       : std::vector<const PcieDevice*>{&tb_.nic()};
    j.engine = engine;
    j.cpu_node = node;
    j.num_streams = streams;
    return j;
  }

  Testbed tb_;
  FioRunner fio_;
};

TEST_F(DiagnoseTest, DeviceCapBindsTheGoodBindings) {
  const auto report = fio_.diagnose(job(kRdmaWrite, 5));
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report.front().name, "mlx4_0:rdma_write");
  EXPECT_NEAR(report.front().utilization, 1.0, 1e-6);
}

TEST_F(DiagnoseTest, EngineWindowStillChargesTheEngineOnWeakPaths) {
  // On {2,3} the engine-window term saturates the occupancy resource at
  // the window-limited level (tau = 1/17.1 each): the engine is the
  // nominal bottleneck, with the fabric pair visibly loaded too.
  const auto report = fio_.diagnose(job(kRdmaWrite, 2));
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report.front().name, "mlx4_0:rdma_write");
  bool fabric_seen = false;
  for (const auto& r : report) {
    if (r.name == "fab:2>7") {
      fabric_seen = true;
      EXPECT_GT(r.utilization, 0.5);
      EXPECT_LT(r.utilization, 0.8);  // 17.1 of 26.0
    }
  }
  EXPECT_TRUE(fabric_seen);
}

TEST_F(DiagnoseTest, CpuBindsTcpOnTheDeviceNode) {
  const auto report = fio_.diagnose(job(kTcpSend, 7));
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report.front().name, "cpu:7");
  EXPECT_NEAR(report.front().utilization, 1.0, 1e-6);
}

TEST_F(DiagnoseTest, SingleStreamIsWindowNotResourceBound) {
  const auto report = fio_.diagnose(job(kTcpSend, 5, 1));
  // Nothing saturates: the per-stream congestion window is the limit.
  for (const auto& r : report) {
    EXPECT_LT(r.utilization, 0.75) << r.name;
  }
}

TEST_F(DiagnoseTest, ReportSortedAndHostUnchanged) {
  const auto before = tb_.host().node_free_bytes(3);
  const auto live_flows = tb_.machine().solver().live_flow_count();
  const auto report = fio_.diagnose(job(kSsdRead, 3));
  for (std::size_t i = 1; i < report.size(); ++i) {
    EXPECT_GE(report[i - 1].utilization, report[i].utilization);
  }
  EXPECT_EQ(tb_.host().node_free_bytes(3), before);
  EXPECT_EQ(tb_.machine().solver().live_flow_count(), live_flows);
}

TEST_F(DiagnoseTest, PcieNeverBindsOnThisTestbed) {
  // §IV-B1's point inverted: 32 Gbps of PCIe data headroom means the
  // protocol engines, not the bus, are the ceiling everywhere.
  for (NodeId node : {0, 2, 7}) {
    for (const auto& r : fio_.diagnose(job(kTcpSend, node))) {
      if (r.name.find("pcie") != std::string::npos) {
        EXPECT_LT(r.utilization, 0.99) << node;
      }
    }
  }
}

}  // namespace
}  // namespace numaio::io
