#include "model/scheduler.h"

#include <gtest/gtest.h>

#include "io/testbed.h"
#include "model/predictor.h"

namespace numaio::model {
namespace {

TEST(Scheduler, AllLocalPinsEverythingToTheDeviceNode) {
  const Placement p = schedule_all_local(7, 5);
  EXPECT_EQ(p.nodes, (std::vector<NodeId>{7, 7, 7, 7, 7}));
}

class SchedulerEndToEnd : public ::testing::Test {
 protected:
  SchedulerEndToEnd()
      : testbed_(io::Testbed::dl585()),
        model_(build_iomodel(testbed_.host(), 7, Direction::kDeviceWrite)),
        classes_(classify(model_, testbed_.machine().topology())) {}

  std::vector<sim::Gbps> probe(const std::string& engine) {
    io::FioRunner fio(testbed_.host());
    std::vector<sim::Gbps> values;
    for (NodeId rep : representative_nodes(classes_)) {
      io::FioJob j;
      j.devices = {&testbed_.nic()};
      j.engine = engine;
      j.cpu_node = rep;
      j.num_streams = 4;
      values.push_back(fio.run(j).aggregate);
    }
    return values;
  }

  /// Runs `engine` with one stream per placed process, all concurrent.
  double run_placement(const std::string& engine, const Placement& p) {
    io::FioRunner fio(testbed_.host());
    std::vector<io::FioJob> jobs;
    for (NodeId node : p.nodes) {
      io::FioJob j;
      j.devices = {&testbed_.nic()};
      j.engine = engine;
      j.cpu_node = node;
      j.num_streams = 1;
      jobs.push_back(j);
    }
    return io::combined_aggregate(fio.run_concurrent(jobs));
  }

  io::Testbed testbed_;
  IoModelResult model_;
  Classification classes_;
};

TEST_F(SchedulerEndToEnd, RdmaWritePoolsClassesOneAndTwo) {
  // The paper's example: for RDMA_WRITE "class 1 and class 2 have almost
  // identical performance" (23.3 vs 23.2), so the spread pool is their
  // union.
  const auto values = probe(io::kRdmaWrite);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_NEAR(values[0], values[1], 0.3);
  const Placement p = schedule_spread(classes_, values, 6);
  EXPECT_EQ(p.nodes, (std::vector<NodeId>{0, 1, 4, 5, 6, 7}));
}

TEST_F(SchedulerEndToEnd, WeakClassStaysOutOfThePool) {
  const auto values = probe(io::kRdmaWrite);
  const Placement p = schedule_spread(classes_, values, 12);
  for (NodeId node : p.nodes) {
    EXPECT_NE(node, 2);
    EXPECT_NE(node, 3);
  }
}

TEST_F(SchedulerEndToEnd, RoundRobinWraps) {
  const auto values = probe(io::kRdmaWrite);
  const Placement p = schedule_spread(classes_, values, 8);
  EXPECT_EQ(p.nodes[6], p.nodes[0]);
  EXPECT_EQ(p.nodes[7], p.nodes[1]);
}

TEST_F(SchedulerEndToEnd, SpreadBeatsAllLocalForTcp) {
  // TCP burns CPU on its binding node; all-on-node-7 also fights the
  // interrupt handler (§IV-B1). Spreading wins.
  const auto values = probe(io::kTcpSend);
  const double spread =
      run_placement(io::kTcpSend,
                    schedule_spread(classes_, values, 6));
  const double local =
      run_placement(io::kTcpSend, schedule_all_local(7, 6));
  EXPECT_GT(spread, local * 1.02);
}

TEST_F(SchedulerEndToEnd, TightToleranceKeepsOnlyBestClass) {
  // With probed values {23.3, 23.3, 17.1}-ish, a zero tolerance still
  // pools classes 1 and 2 (they tie); a synthetic value set with class 2
  // slightly lower excludes it.
  const std::vector<sim::Gbps> values{23.3, 22.0, 17.1};
  SpreadConfig tight;
  tight.class_tolerance = 0.01;
  const Placement p = schedule_spread(classes_, values, 4, tight);
  EXPECT_EQ(p.nodes, (std::vector<NodeId>{6, 7, 6, 7}));
}

TEST_F(SchedulerEndToEnd, LooseToleranceAdmitsEverything) {
  const std::vector<sim::Gbps> values{23.3, 23.2, 17.1};
  SpreadConfig loose;
  loose.class_tolerance = 0.5;
  const Placement p = schedule_spread(classes_, values, 8);
  (void)loose;
  const Placement all = schedule_spread(classes_, values, 8, loose);
  EXPECT_EQ(all.nodes.size(), 8u);
  // With every class admitted the pool is all 8 nodes.
  std::vector<NodeId> sorted = all.nodes;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<NodeId>{0, 1, 2, 3, 4, 5, 6, 7}));
  (void)p;
}

}  // namespace
}  // namespace numaio::model
