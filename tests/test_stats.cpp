#include "simcore/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace numaio::sim {
namespace {

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Stats, SingleValue) {
  const std::vector<double> v{42.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, KnownSeries) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.4);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.9), 9.0);
}

TEST(Stats, PercentileDoesNotMutateInput) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  percentile(v, 0.5);
  EXPECT_EQ(v[0], 3.0);
}

}  // namespace
}  // namespace numaio::sim
