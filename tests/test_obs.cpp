// Observability layer tests: span nesting and cause edges through
// MemorySink, null-sink no-op guarantees, JSONL/CSV serialization,
// histogram bucket-edge semantics, metrics JSON round-trip, scoped timers
// and the known-metrics catalogue.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace numaio::obs {
namespace {

// --- trace recorder -------------------------------------------------------

TEST(TraceRecorder, SpanNestingAndCauseEdges) {
  MemorySink sink;
  TraceRecorder trace;
  trace.set_sink(&sink);
  ASSERT_TRUE(trace.enabled());

  EventFields job_fields;
  job_fields.node_a = 2;
  job_fields.bytes = 4096;
  const SpanId job = trace.begin_span("fio.job", 0, job_fields);
  const SpanId stream = trace.begin_span("fio.stream", job);
  const EventId fault = trace.event("fault.transition", 0, 0, "on");
  const EventId abort_id =
      trace.event("fio.abort", stream, fault, "abort");
  trace.end_span(stream, "aborted");
  trace.end_span(job, "degraded");

  ASSERT_EQ(sink.events.size(), 6u);
  // Ids are unique and monotonically increasing.
  for (std::size_t i = 1; i < sink.events.size(); ++i) {
    EXPECT_GT(sink.events[i].id, sink.events[i - 1].id) << i;
  }
  EXPECT_EQ(trace.records_emitted(), 6u);

  const Event& b_job = sink.events[0];
  EXPECT_EQ(b_job.kind, 'B');
  EXPECT_EQ(b_job.name, "fio.job");
  EXPECT_EQ(b_job.id, job);
  EXPECT_EQ(b_job.span, job);  // a begin record's span is its own id
  EXPECT_EQ(b_job.parent, 0u);
  EXPECT_EQ(b_job.node_a, 2);
  EXPECT_EQ(b_job.bytes, 4096);

  const Event& b_stream = sink.events[1];
  EXPECT_EQ(b_stream.kind, 'B');
  EXPECT_EQ(b_stream.span, stream);
  EXPECT_EQ(b_stream.parent, job);  // nesting via the parent field

  const Event& i_abort = sink.events[3];
  EXPECT_EQ(i_abort.kind, 'I');
  EXPECT_EQ(i_abort.id, abort_id);
  EXPECT_EQ(i_abort.span, stream);
  EXPECT_EQ(i_abort.parent, fault);  // the cause edge
  EXPECT_EQ(i_abort.outcome, "abort");

  const Event& e_stream = sink.events[4];
  EXPECT_EQ(e_stream.kind, 'E');
  EXPECT_EQ(e_stream.span, stream);
  EXPECT_EQ(e_stream.outcome, "aborted");
  const Event& e_job = sink.events[5];
  EXPECT_EQ(e_job.span, job);
  EXPECT_EQ(e_job.outcome, "degraded");
}

TEST(TraceRecorder, NullSinkIsANoOp) {
  TraceRecorder trace;
  EXPECT_FALSE(trace.enabled());
  EXPECT_EQ(trace.begin_span("fio.job"), 0u);
  EXPECT_EQ(trace.event("fio.retry", 7, 3, "retry"), 0u);
  trace.end_span(42, "ok");  // must not crash or record
  EXPECT_EQ(trace.records_emitted(), 0u);

  // Detaching returns to the no-op state; ids keep advancing only while a
  // sink is attached.
  MemorySink sink;
  trace.set_sink(&sink);
  const SpanId s = trace.begin_span("probe");
  trace.set_sink(nullptr);
  EXPECT_EQ(trace.event("ignored", s), 0u);
  EXPECT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(trace.records_emitted(), 1u);
}

TEST(TraceRecorder, JsonlSinkShape) {
  std::ostringstream out;
  JsonlSink sink(out);
  TraceRecorder trace;
  trace.set_sink(&sink);

  EventFields fields;
  fields.node_a = 1;
  fields.node_b = 3;
  fields.dir = 'w';
  fields.bytes = 1024;
  fields.t_sim = 2.5e9;
  fields.detail = "say \"hi\"";
  const SpanId span = trace.begin_span("iomodel.probe", 0, fields);
  trace.end_span(span, "ok");

  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> records;
  while (std::getline(lines, line)) records.push_back(line);
  ASSERT_EQ(records.size(), 2u);

  const std::string& begin = records[0];
  EXPECT_EQ(begin.rfind("{\"id\":1,\"span\":1,\"parent\":0,\"kind\":\"B\","
                        "\"name\":\"iomodel.probe\"",
                        0),
            0u);
  EXPECT_NE(begin.find("\"node_a\":1"), std::string::npos);
  EXPECT_NE(begin.find("\"node_b\":3"), std::string::npos);
  EXPECT_NE(begin.find("\"dir\":\"w\""), std::string::npos);
  EXPECT_NE(begin.find("\"bytes\":1024"), std::string::npos);
  EXPECT_NE(begin.find("\"detail\":\"say \\\"hi\\\"\""), std::string::npos);
  // wall_us is the only nondeterministic field and is serialized last so
  // textual strippers can remove it.
  EXPECT_NE(begin.find(",\"wall_us\":"), std::string::npos);
  EXPECT_LT(begin.find("\"outcome\""), begin.find("\"wall_us\""));
  EXPECT_EQ(begin.back(), '}');

  EXPECT_NE(records[1].find("\"kind\":\"E\""), std::string::npos);
  EXPECT_NE(records[1].find("\"outcome\":\"ok\""), std::string::npos);
}

TEST(TraceRecorder, CsvSinkHeaderAndQuoting) {
  std::ostringstream out;
  CsvSink sink(out);
  TraceRecorder trace;
  trace.set_sink(&sink);

  EventFields fields;
  fields.detail = "a \"quoted\" word, and a comma";
  trace.event("sched.place", 0, 0, "model", fields);

  std::istringstream lines(out.str());
  std::string header;
  std::string row;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_EQ(header,
            "id,span,parent,kind,name,node_a,node_b,dir,bytes,t,outcome,"
            "detail,wall_us");
  // RFC 4180: strings quoted, inner quotes doubled; commas stay inside.
  EXPECT_NE(row.find("\"sched.place\""), std::string::npos);
  EXPECT_NE(row.find("\"a \"\"quoted\"\" word, and a comma\""),
            std::string::npos);
  std::string rest;
  EXPECT_FALSE(std::getline(lines, rest));  // one row per record
}

TEST(TraceRecorder, SameWorkloadEmitsIdenticalRecordsModuloWallClock) {
  const auto run = [] {
    MemorySink sink;
    TraceRecorder trace;
    trace.set_sink(&sink);
    const SpanId span = trace.begin_span("fio.job");
    EventFields fields;
    fields.bytes = 512;
    trace.event("fio.attempt", span, 0, {}, fields);
    trace.end_span(span, "ok");
    return sink.events;
  };
  const std::vector<Event> a = run();
  const std::vector<Event> b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << i;
    EXPECT_EQ(a[i].span, b[i].span) << i;
    EXPECT_EQ(a[i].parent, b[i].parent) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].name, b[i].name) << i;
    EXPECT_EQ(a[i].bytes, b[i].bytes) << i;
    EXPECT_EQ(a[i].outcome, b[i].outcome) << i;
    // wall_us deliberately not compared: it is the one wall-clock field.
  }
}

// --- metrics registry -----------------------------------------------------

TEST(Metrics, CountersAndGaugesAccumulate) {
  MetricsRegistry m;
  const auto retries = m.counter("fio.retries");
  EXPECT_EQ(m.counter("fio.retries"), retries);  // get-or-create is stable
  m.add(retries);
  m.add(retries, 3.0);
  EXPECT_EQ(m.value("fio.retries"), 4.0);

  const auto depth = m.gauge("queue.depth");
  m.set(depth, 7.0);
  m.set(depth, 2.0);
  EXPECT_EQ(m.value("queue.depth"), 2.0);  // last write wins
  EXPECT_EQ(m.value("never.registered"), 0.0);
  EXPECT_FALSE(m.empty());
}

TEST(Metrics, KindMismatchThrows) {
  MetricsRegistry m;
  m.counter("x");
  EXPECT_THROW(m.gauge("x"), std::invalid_argument);
  EXPECT_THROW(m.histogram("x", {1.0}), std::invalid_argument);
  m.histogram("h", {1.0, 2.0});
  EXPECT_THROW(m.counter("h"), std::invalid_argument);
  EXPECT_THROW(m.histogram("h", {1.0, 3.0}), std::invalid_argument);
  EXPECT_THROW(m.histogram("bad", {2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(m.histogram("bad", {}), std::invalid_argument);
}

TEST(Metrics, HistogramBucketEdgesAreInclusive) {
  MetricsRegistry m;
  const auto h = m.histogram("lat", {10.0, 20.0});
  m.observe(h, 0.0);    // <= 10
  m.observe(h, 10.0);   // exactly on the edge: still the first bucket
  m.observe(h, 10.5);   // (10, 20]
  m.observe(h, 20.0);   // edge of the second bucket
  m.observe(h, 20.001);  // overflow
  const MetricsRegistry::Histogram* hist = m.find_histogram("lat");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->counts.size(), 3u);  // bounds + overflow
  EXPECT_EQ(hist->counts[0], 2u);
  EXPECT_EQ(hist->counts[1], 2u);
  EXPECT_EQ(hist->counts[2], 1u);
  EXPECT_EQ(hist->count, 5u);
  EXPECT_DOUBLE_EQ(hist->sum, 0.0 + 10.0 + 10.5 + 20.0 + 20.001);
  EXPECT_EQ(m.find_histogram("absent"), nullptr);
}

TEST(Metrics, NoneIdIsANoOpEverywhere) {
  MetricsRegistry m;
  m.add(MetricsRegistry::kNone);
  m.set(MetricsRegistry::kNone, 5.0);
  m.observe(MetricsRegistry::kNone, 5.0);
  EXPECT_TRUE(m.empty());
}

TEST(Metrics, JsonRoundTripIsExact) {
  MetricsRegistry m;
  m.add(m.counter("fio.retries"), 3.0);
  m.add(m.counter("solver.iterations"), 17.0);
  m.set(m.gauge("model.revision"), 2.0);
  const auto h = m.histogram("solver.solve_us", {1.0, 10.0, 100.0});
  m.observe(h, 0.5);
  m.observe(h, 42.0);
  m.observe(h, 5000.0);

  const std::string json = m.to_json();
  const MetricsRegistry parsed = parse_metrics_json(json);
  EXPECT_EQ(parsed.to_json(), json);
  EXPECT_EQ(parsed.value("fio.retries"), 3.0);
  const MetricsRegistry::Histogram* hist =
      parsed.find_histogram("solver.solve_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 3u);
  EXPECT_DOUBLE_EQ(hist->sum, 0.5 + 42.0 + 5000.0);

  EXPECT_THROW(parse_metrics_json("{\"bogus\": {}}"), std::invalid_argument);
  EXPECT_THROW(parse_metrics_json("{} trailing"), std::invalid_argument);
}

TEST(Metrics, EmptyRegistrySerializesAndSummarizes) {
  MetricsRegistry m;
  const MetricsRegistry parsed = parse_metrics_json(m.to_json());
  EXPECT_TRUE(parsed.empty());
  EXPECT_NE(m.summary().find("no metrics recorded"), std::string::npos);
}

// --- scoped timer ---------------------------------------------------------

TEST(ScopedTimerTest, ObservesOnDestruction) {
  MetricsRegistry m;
  const auto h = m.histogram("op.us", {1.0e9});  // everything lands <= 1e9
  const auto total = m.counter("op.total_ns");
  {
    ScopedTimer timer(&m, h, total);
  }
  const MetricsRegistry::Histogram* hist = m.find_histogram("op.us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
  EXPECT_GE(m.value("op.total_ns"), 0.0);
}

TEST(ScopedTimerTest, NullRegistryIsSafe) {
  ScopedTimer timer(nullptr, MetricsRegistry::kNone);
  // Destruction must be a no-op; nothing to assert beyond not crashing.
}

// --- metric catalogue -----------------------------------------------------

TEST(KnownMetrics, CatalogueIsSortedAndDescribed) {
  const std::vector<MetricInfo> metrics = known_metrics();
  ASSERT_FALSE(metrics.empty());
  for (std::size_t i = 1; i < metrics.size(); ++i) {
    EXPECT_LT(std::string(metrics[i - 1].name), std::string(metrics[i].name))
        << i;
  }
  bool has_retries = false;
  for (const MetricInfo& m : metrics) {
    EXPECT_NE(std::string(m.help), "");
    const std::string kind = m.kind;
    EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
        << m.name;
    has_retries |= std::string(m.name) == "fio.retries";
  }
  EXPECT_TRUE(has_retries);
}

}  // namespace
}  // namespace numaio::obs
