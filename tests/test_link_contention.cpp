// Link-level contention on derived (wiring-known) fabrics: streams whose
// routes cross the same directed HT link share its capacity, even when
// their endpoints differ — the "congestion among concurrent tasks on
// shared queues and buses" of [9] (§I-A).
#include <gtest/gtest.h>

#include "fabric/machine.h"
#include "mem/copy.h"
#include "topo/presets.h"

namespace numaio::fabric {
namespace {

/// Chain topology 0-1-2-3: routes 0->3 and 1->3 share links.
topo::Topology chain4() {
  std::vector<topo::NodeSpec> nodes(4, topo::NodeSpec{0, 4, 4.0, false});
  nodes[3].package = 1;
  return topo::Topology::build(
      "chain4", std::move(nodes),
      {topo::LinkSpec{0, 1, 8, 8, 50.0}, topo::LinkSpec{1, 2, 8, 8, 50.0},
       topo::LinkSpec{2, 3, 8, 8, 50.0}});
}

TEST(LinkContention, DerivedProfilesRegisterLinkResources) {
  Machine machine{derived_profile(chain4())};
  // 4*3 pair resources + 3*2 link directions + 4 mc_rd + 4 mc_wr + 4 cpu.
  EXPECT_EQ(machine.solver().resource_count(), 12u + 6u + 12u);
  // The 0->3 path crosses three links.
  EXPECT_EQ(machine.fabric_usages(0, 3).size(), 1u + 3u);
  EXPECT_EQ(machine.fabric_usages(0, 1).size(), 1u + 1u);
}

TEST(LinkContention, CalibratedProfileHasNoLinkResources) {
  Machine machine{dl585_profile()};
  EXPECT_EQ(machine.fabric_usages(2, 7).size(), 1u);
}

TEST(LinkContention, OverlappingRoutesShareTheLink) {
  Machine machine{derived_profile(chain4())};
  auto& solver = machine.solver();
  // Streams 0->3 and 1->3 both cross links 1->2 and 2->3 (25.6 Gbps each
  // direction at 8 bits): together they cannot exceed one link.
  mem::CopyTask a{.threads_node = 3, .src_node = 0, .dst_node = 3,
                  .threads = 0, .engine = mem::CopyEngine::kStreaming};
  mem::CopyTask b = a;
  b.src_node = 1;
  const auto fa = solver.add_flow(mem::copy_usages(machine, a),
                                  mem::copy_rate_cap(machine, a));
  const auto fb = solver.add_flow(mem::copy_usages(machine, b),
                                  mem::copy_rate_cap(machine, b));
  const auto rates = solver.solve();
  EXPECT_NEAR(rates[fa] + rates[fb], 25.6, 1e-6);
  EXPECT_NEAR(rates[fa], rates[fb], 1e-6);  // fair split
  solver.remove_flow(fa);
  solver.remove_flow(fb);
}

TEST(LinkContention, DisjointRoutesDoNotInterfere) {
  Machine machine{derived_profile(chain4())};
  auto& solver = machine.solver();
  // 0->1 and 2->3 use different links: both run at full link speed.
  mem::CopyTask a{.threads_node = 1, .src_node = 0, .dst_node = 1,
                  .threads = 0, .engine = mem::CopyEngine::kStreaming};
  mem::CopyTask b{.threads_node = 3, .src_node = 2, .dst_node = 3,
                  .threads = 0, .engine = mem::CopyEngine::kStreaming};
  const auto fa = solver.add_flow(mem::copy_usages(machine, a),
                                  mem::copy_rate_cap(machine, a));
  const auto fb = solver.add_flow(mem::copy_usages(machine, b),
                                  mem::copy_rate_cap(machine, b));
  const auto rates = solver.solve();
  EXPECT_NEAR(rates[fa], 25.6, 1e-6);
  EXPECT_NEAR(rates[fb], 25.6, 1e-6);
  solver.remove_flow(fa);
  solver.remove_flow(fb);
}

TEST(LinkContention, OppositeDirectionsAreIndependent) {
  Machine machine{derived_profile(chain4())};
  auto& solver = machine.solver();
  // 0->1 and 1->0 use the two directions of one link: no sharing.
  mem::CopyTask a{.threads_node = 1, .src_node = 0, .dst_node = 1,
                  .threads = 0, .engine = mem::CopyEngine::kStreaming};
  mem::CopyTask b{.threads_node = 0, .src_node = 1, .dst_node = 0,
                  .threads = 0, .engine = mem::CopyEngine::kStreaming};
  const auto fa = solver.add_flow(mem::copy_usages(machine, a),
                                  mem::copy_rate_cap(machine, a));
  const auto fb = solver.add_flow(mem::copy_usages(machine, b),
                                  mem::copy_rate_cap(machine, b));
  const auto rates = solver.solve();
  EXPECT_NEAR(rates[fa], 25.6, 1e-6);
  EXPECT_NEAR(rates[fb], 25.6, 1e-6);
  solver.remove_flow(fa);
  solver.remove_flow(fb);
}

TEST(LinkContention, AsymmetricLinkWidthsGiveAsymmetricDirections) {
  std::vector<topo::NodeSpec> nodes(2, topo::NodeSpec{0, 4, 4.0, false});
  const auto topo = topo::Topology::build(
      "asym2", std::move(nodes), {topo::LinkSpec{0, 1, 16, 8, 50.0}});
  Machine machine{derived_profile(topo)};
  mem::CopyTask fwd{.threads_node = 1, .src_node = 0, .dst_node = 1,
                    .threads = 0, .engine = mem::CopyEngine::kStreaming};
  mem::CopyTask rev{.threads_node = 0, .src_node = 1, .dst_node = 0,
                    .threads = 0, .engine = mem::CopyEngine::kStreaming};
  EXPECT_NEAR(mem::run_copy_alone(machine, fwd), 51.2, 1e-6);
  EXPECT_NEAR(mem::run_copy_alone(machine, rev), 25.6, 1e-6);
}

}  // namespace
}  // namespace numaio::fabric
