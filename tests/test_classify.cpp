#include "model/classify.h"

#include <gtest/gtest.h>

#include "fabric/calibration.h"

namespace numaio::model {
namespace {

class ClassifyTest : public ::testing::Test {
 protected:
  fabric::Machine machine_{fabric::dl585_profile()};
  nm::Host host_{machine_};
};

TEST_F(ClassifyTest, WriteModelMatchesTableIV) {
  const auto model = build_iomodel(host_, 7, Direction::kDeviceWrite);
  const auto c = classify(model, machine_.topology());
  ASSERT_EQ(c.num_classes(), 3);
  EXPECT_EQ(c.classes[0], (std::vector<NodeId>{6, 7}));
  EXPECT_EQ(c.classes[1], (std::vector<NodeId>{0, 1, 4, 5}));
  EXPECT_EQ(c.classes[2], (std::vector<NodeId>{2, 3}));
}

TEST_F(ClassifyTest, ReadModelMatchesTableV) {
  const auto model = build_iomodel(host_, 7, Direction::kDeviceRead);
  const auto c = classify(model, machine_.topology());
  ASSERT_EQ(c.num_classes(), 4);
  EXPECT_EQ(c.classes[0], (std::vector<NodeId>{6, 7}));
  EXPECT_EQ(c.classes[1], (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(c.classes[2], (std::vector<NodeId>{0, 1, 5}));
  EXPECT_EQ(c.classes[3], (std::vector<NodeId>{4}));
}

TEST_F(ClassifyTest, ClassAveragesMatchTableIV) {
  const auto model = build_iomodel(host_, 7, Direction::kDeviceWrite);
  const auto c = classify(model, machine_.topology());
  // Paper: 51.2 / 44.5 / 26.6 (we sit within a Gbps of each).
  EXPECT_NEAR(c.class_avg[0], 49.8, 1.5);
  EXPECT_NEAR(c.class_avg[1], 44.5, 1.0);
  EXPECT_NEAR(c.class_avg[2], 26.6, 1.0);
}

TEST_F(ClassifyTest, ClassOfIsConsistent) {
  const auto model = build_iomodel(host_, 7, Direction::kDeviceRead);
  const auto c = classify(model, machine_.topology());
  for (int cls = 0; cls < c.num_classes(); ++cls) {
    for (NodeId v : c.classes[static_cast<std::size_t>(cls)]) {
      EXPECT_EQ(c.class_of[static_cast<std::size_t>(v)], cls);
    }
  }
}

TEST_F(ClassifyTest, PartitionCoversEveryNodeOnce) {
  const auto model = build_iomodel(host_, 7, Direction::kDeviceRead);
  const auto c = classify(model, machine_.topology());
  std::vector<int> seen(8, 0);
  for (const auto& cls : c.classes) {
    for (NodeId v : cls) ++seen[static_cast<std::size_t>(v)];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST_F(ClassifyTest, RangesBracketAverages) {
  const auto model = build_iomodel(host_, 7, Direction::kDeviceWrite);
  const auto c = classify(model, machine_.topology());
  for (int cls = 0; cls < c.num_classes(); ++cls) {
    const auto [lo, hi] = c.class_range[static_cast<std::size_t>(cls)];
    EXPECT_LE(lo, c.class_avg[static_cast<std::size_t>(cls)]);
    EXPECT_GE(hi, c.class_avg[static_cast<std::size_t>(cls)]);
  }
}

TEST_F(ClassifyTest, RemoteClassesAreDescending) {
  const auto model = build_iomodel(host_, 7, Direction::kDeviceRead);
  const auto c = classify(model, machine_.topology());
  for (int cls = 2; cls < c.num_classes(); ++cls) {
    EXPECT_GT(c.class_avg[static_cast<std::size_t>(cls - 1)],
              c.class_avg[static_cast<std::size_t>(cls)]);
  }
}

TEST_F(ClassifyTest, LocalAndNeighborForcedIntoClassOne) {
  // Even if a remote value beats the neighbor's, class 1 stays
  // {target, neighbor} (§V-A).
  std::vector<sim::Gbps> bw{50.0, 10.0, 10.0, 10.0, 10.0, 10.0, 30.0, 52.0};
  const auto c = classify_values(bw, 7, machine_.topology());
  EXPECT_EQ(c.classes[0], (std::vector<NodeId>{6, 7}));
  EXPECT_EQ(c.classes[1], (std::vector<NodeId>{0}));
}

TEST_F(ClassifyTest, SingleValueLevelsCollapseToOneRemoteClass) {
  std::vector<sim::Gbps> bw(8, 40.0);
  const auto c = classify_values(bw, 7, machine_.topology());
  EXPECT_EQ(c.num_classes(), 2);
  EXPECT_EQ(c.classes[1].size(), 6u);
}

TEST_F(ClassifyTest, TighterGapSplitsMore) {
  const auto model = build_iomodel(host_, 7, Direction::kDeviceRead);
  ClassifyConfig tight;
  tight.rel_gap = 0.005;
  const auto c = classify(model, machine_.topology(), tight);
  EXPECT_GT(c.num_classes(), 4);
}

TEST_F(ClassifyTest, RepresentativesOnePerClass) {
  const auto model = build_iomodel(host_, 7, Direction::kDeviceRead);
  const auto c = classify(model, machine_.topology());
  const auto reps = representative_nodes(c);
  ASSERT_EQ(reps.size(), 4u);
  // §V-A: 4 representative tests instead of 8 -> evaluation cost halves.
  EXPECT_EQ(reps[0], 6);
  EXPECT_EQ(reps[1], 2);
  EXPECT_EQ(reps[2], 0);
  EXPECT_EQ(reps[3], 4);
}

TEST_F(ClassifyTest, WorksForOtherTargets) {
  const auto model = build_iomodel(host_, 0, Direction::kDeviceWrite);
  const auto c = classify(model, machine_.topology());
  EXPECT_EQ(c.classes[0], (std::vector<NodeId>{0, 1}));
  EXPECT_GE(c.num_classes(), 2);
}

}  // namespace
}  // namespace numaio::model
