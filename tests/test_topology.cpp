#include "topo/topology.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "topo/presets.h"

namespace numaio::topo {
namespace {

std::vector<NodeSpec> two_nodes() {
  return {NodeSpec{0, 4, 4.0, false}, NodeSpec{0, 4, 4.0, false}};
}

TEST(Topology, BuildsMinimalPair) {
  auto t = Topology::build("pair", two_nodes(),
                           {LinkSpec{0, 1, 16, 16, 40.0}});
  EXPECT_EQ(t.num_nodes(), 2);
  EXPECT_TRUE(t.adjacent(0, 1));
  EXPECT_TRUE(t.adjacent(1, 0));
  EXPECT_EQ(t.name(), "pair");
  EXPECT_EQ(t.total_cores(), 8);
}

TEST(Topology, RejectsEmptyNodeList) {
  EXPECT_THROW(Topology::build("x", {}, {}), std::invalid_argument);
}

TEST(Topology, RejectsSelfLink) {
  EXPECT_THROW(
      Topology::build("x", two_nodes(), {LinkSpec{0, 0, 16, 16, 40.0}}),
      std::invalid_argument);
}

TEST(Topology, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(
      Topology::build("x", two_nodes(), {LinkSpec{0, 5, 16, 16, 40.0}}),
      std::invalid_argument);
}

TEST(Topology, RejectsDuplicateLink) {
  EXPECT_THROW(Topology::build("x", two_nodes(),
                               {LinkSpec{0, 1, 16, 16, 40.0},
                                LinkSpec{1, 0, 8, 8, 40.0}}),
               std::invalid_argument);
}

TEST(Topology, RejectsDisconnectedGraph) {
  std::vector<NodeSpec> nodes(3, NodeSpec{0, 4, 4.0, false});
  EXPECT_THROW(
      Topology::build("x", nodes, {LinkSpec{0, 1, 16, 16, 40.0}}),
      std::invalid_argument);
}

TEST(Topology, RejectsZeroLatencyLink) {
  EXPECT_THROW(
      Topology::build("x", two_nodes(), {LinkSpec{0, 1, 16, 16, 0.0}}),
      std::invalid_argument);
}

TEST(Topology, RejectsPortBudgetViolation) {
  // Five 16-bit links on node 0 exceed the 4-port G34 budget.
  std::vector<NodeSpec> nodes(6, NodeSpec{0, 4, 4.0, false});
  std::vector<LinkSpec> links;
  for (NodeId v = 1; v <= 5; ++v) links.push_back(LinkSpec{0, v, 16, 16, 40.0});
  EXPECT_THROW(Topology::build("x", nodes, links), std::invalid_argument);
}

TEST(Topology, IoHubConsumesAPort) {
  // Four 16-bit links are fine without a hub, too many with one.
  std::vector<NodeSpec> nodes(5, NodeSpec{0, 4, 4.0, false});
  std::vector<LinkSpec> links;
  for (NodeId v = 1; v <= 4; ++v) links.push_back(LinkSpec{0, v, 16, 16, 40.0});
  // Also connect the leaves so the graph stays connected in both variants.
  EXPECT_NO_THROW(Topology::build("ok", nodes, links));
  nodes[0].io_hub = true;
  EXPECT_THROW(Topology::build("x", nodes, links), std::invalid_argument);
}

TEST(Topology, DirectionWidths) {
  auto t = Topology::build("pair", two_nodes(),
                           {LinkSpec{0, 1, 16, 8, 40.0}});
  EXPECT_DOUBLE_EQ(t.direction_width(0, 1), 16.0);
  EXPECT_DOUBLE_EQ(t.direction_width(1, 0), 8.0);
  EXPECT_DOUBLE_EQ(t.direction_width(0, 0), 0.0);
}

TEST(Topology, PackagePeersAndNeighbors) {
  const Topology t = magny_cours_4p('a');
  EXPECT_EQ(t.num_packages(), 4);
  EXPECT_EQ(t.package_peers(7), std::vector<NodeId>{6});
  EXPECT_TRUE(t.is_neighbor(6, 7));
  EXPECT_FALSE(t.is_neighbor(5, 7));
  EXPECT_FALSE(t.is_neighbor(7, 7));
}

TEST(Topology, MagnyCoursVariantAMatchesPaperExample) {
  // §II-A: node 7 is local to itself, neighbor to 6, one hop from
  // {0,2,4}, two hops from {1,3,5}.
  const Topology t = magny_cours_4p('a');
  EXPECT_EQ(t.neighbors(7), (std::vector<NodeId>{0, 2, 4, 6}));
}

TEST(Topology, AllMagnyCoursVariantsBuildWithEightNodes) {
  for (char v : {'a', 'b', 'c', 'd'}) {
    const Topology t = magny_cours_4p(v);
    EXPECT_EQ(t.num_nodes(), 8) << v;
    EXPECT_EQ(t.num_packages(), 4) << v;
    EXPECT_EQ(t.total_cores(), 32) << v;
  }
}

TEST(Topology, VariantsAreStructurallyDistinct) {
  // Compare adjacency fingerprints pairwise.
  auto fingerprint = [](const Topology& t) {
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (const auto& l : t.links()) {
      edges.emplace_back(std::min(l.a, l.b), std::max(l.a, l.b));
    }
    std::sort(edges.begin(), edges.end());
    return edges;
  };
  const auto fa = fingerprint(magny_cours_4p('a'));
  const auto fb = fingerprint(magny_cours_4p('b'));
  const auto fc = fingerprint(magny_cours_4p('c'));
  const auto fd = fingerprint(magny_cours_4p('d'));
  EXPECT_NE(fa, fb);
  EXPECT_NE(fa, fc);
  EXPECT_NE(fa, fd);
  EXPECT_NE(fb, fc);
  EXPECT_NE(fb, fd);
  EXPECT_NE(fc, fd);
}

TEST(Topology, UnknownVariantThrows) {
  EXPECT_THROW(magny_cours_4p('z'), std::invalid_argument);
}

TEST(Topology, Dl585HasIoHubsOnNodes1And7) {
  const Topology t = dl585_g7();
  EXPECT_EQ(t.io_hub_nodes(), (std::vector<NodeId>{1, 7}));
  EXPECT_EQ(t.name(), "hp-dl585-g7");
}

TEST(Topology, Dl585MatchesTableII) {
  // Table II: 32 cores / 8 NUMA nodes, 32 GB total.
  const Topology t = dl585_g7();
  EXPECT_EQ(t.total_cores(), 32);
  EXPECT_EQ(t.num_nodes(), 8);
  double mem = 0.0;
  for (const auto& n : t.nodes()) mem += n.memory_gb;
  EXPECT_DOUBLE_EQ(mem, 32.0);
}

}  // namespace
}  // namespace numaio::topo
