// Trace-analysis tests on hand-built traces: JSONL parse-back, span-kind
// aggregates, critical-path selection (dominant root, dominant child,
// cause-edge extension), contention attribution with and without payload
// bytes, the fault audit, and histogram quantile estimation.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/analysis.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace numaio::obs {
namespace {

EventFields at(double t_sim) {
  EventFields f;
  f.t_sim = t_sim;
  return f;
}

// --- JSONL parse-back -----------------------------------------------------

TEST(ParseTraceJsonl, RoundTripsSerializedRecords) {
  std::ostringstream text;
  JsonlSink jsonl(text);
  MemorySink memory;
  TeeSink tee;
  tee.add(&jsonl);
  tee.add(&memory);
  TraceRecorder trace;
  trace.set_deterministic(true);
  trace.set_sink(&tee);

  EventFields fields;
  fields.node_a = 2;
  fields.node_b = 7;
  fields.dir = 'w';
  fields.bytes = 4096;
  fields.t_sim = 1.5;
  fields.detail = "with \"quotes\" and\nnewline";
  const SpanId job = trace.begin_span("fio.job", 0, fields);
  const EventId cause = trace.event("fault.transition", 0, 0, "on", at(2.0));
  trace.event("fio.retry", job, cause, "retry", at(3.0));
  trace.end_span(job, "degraded", at(9.0));

  const std::vector<Event> parsed = parse_trace_jsonl(text.str());
  ASSERT_EQ(parsed.size(), memory.events.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const Event& a = parsed[i];
    const Event& b = memory.events[i];
    EXPECT_EQ(a.id, b.id) << i;
    EXPECT_EQ(a.span, b.span) << i;
    EXPECT_EQ(a.parent, b.parent) << i;
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.name, b.name) << i;
    EXPECT_EQ(a.node_a, b.node_a) << i;
    EXPECT_EQ(a.node_b, b.node_b) << i;
    EXPECT_EQ(a.dir, b.dir) << i;
    EXPECT_EQ(a.bytes, b.bytes) << i;
    EXPECT_DOUBLE_EQ(a.t_sim, b.t_sim) << i;
    EXPECT_EQ(a.outcome, b.outcome) << i;
    EXPECT_EQ(a.detail, b.detail) << i;
    // Deterministic capture: the field is omitted and parses as -1.
    EXPECT_DOUBLE_EQ(a.wall_us, -1.0) << i;
  }
}

TEST(ParseTraceJsonl, ReadsWallClockWhenPresent) {
  const auto events = parse_trace_jsonl(
      "{\"id\":1,\"kind\":\"I\",\"name\":\"x\",\"wall_us\":12.5}\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].wall_us, 12.5);
}

TEST(ParseTraceJsonl, RejectsMalformedInputWithLineNumber) {
  try {
    parse_trace_jsonl("{\"id\":1,\"kind\":\"I\",\"name\":\"ok\"}\n"
                      "{\"id\":2,\"kind\":\"I\",\"nope\":3}\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(parse_trace_jsonl("{\"kind\":\"I\"}\n"),
               std::invalid_argument);  // record without an id
  EXPECT_THROW(parse_trace_jsonl("not json\n"), std::invalid_argument);
}

// --- aggregates -----------------------------------------------------------

TEST(AnalyzeTrace, SpanKindAggregates) {
  MemorySink sink;
  TraceRecorder trace;
  trace.set_deterministic(true);
  trace.set_sink(&sink);

  const SpanId a = trace.begin_span("fio.stream", 0, at(0.0));
  EventFields end_a = at(100.0);
  end_a.bytes = 1000;
  trace.end_span(a, "ok", end_a);
  const SpanId b = trace.begin_span("fio.stream", 0, at(50.0));
  EventFields end_b = at(300.0);
  end_b.bytes = 500;
  trace.end_span(b, "aborted", end_b);
  trace.begin_span("fio.stream", 0, at(60.0));  // never closed

  const TraceAnalysis analysis = analyze_trace(sink.events);
  EXPECT_EQ(analysis.num_records, 5);
  EXPECT_DOUBLE_EQ(analysis.first_ns, 0.0);
  EXPECT_DOUBLE_EQ(analysis.last_ns, 300.0);
  ASSERT_EQ(analysis.span_kinds.size(), 1u);
  const SpanKindStats& k = analysis.span_kinds[0];
  EXPECT_EQ(k.name, "fio.stream");
  EXPECT_EQ(k.count, 3);
  EXPECT_EQ(k.unclosed, 1);
  EXPECT_DOUBLE_EQ(k.total_ns, 350.0);
  EXPECT_DOUBLE_EQ(k.max_ns, 250.0);
  EXPECT_EQ(k.bytes, 1500);
  // Outcomes sorted by string: (open), aborted, ok.
  ASSERT_EQ(k.outcomes.size(), 3u);
  EXPECT_EQ(k.outcomes[0].first, "(open)");
  EXPECT_EQ(k.outcomes[1].first, "aborted");
  EXPECT_EQ(k.outcomes[2].first, "ok");
}

// --- critical path --------------------------------------------------------

TEST(AnalyzeTrace, CriticalPathDescendsToDominantChildAndFollowsCauses) {
  MemorySink sink;
  TraceRecorder trace;
  trace.set_deterministic(true);
  trace.set_sink(&sink);

  const SpanId job = trace.begin_span("fio.job", 0, at(0.0));     // id 1
  const SpanId quick = trace.begin_span("fio.stream", job, at(0.0));
  const SpanId slow = trace.begin_span("fio.stream", job, at(10.0));
  trace.end_span(quick, "ok", at(40.0));
  const EventId fault =
      trace.event("fault.transition", 0, 0, "on", at(20.0));
  const EventId retry =
      trace.event("fio.retry", slow, fault, "retry", at(30.0));
  trace.end_span(slow, "ok", at(100.0));
  trace.end_span(job, "degraded", at(100.0));

  const TraceAnalysis analysis = analyze_trace(sink.events);
  EXPECT_DOUBLE_EQ(analysis.critical_path_ns, 100.0);
  // job -> slow (ends later than quick) -> retry instant -> its cause.
  ASSERT_EQ(analysis.critical_path.size(), 4u);
  EXPECT_EQ(analysis.critical_path[0].id, job);
  EXPECT_EQ(analysis.critical_path[0].name, "fio.job");
  EXPECT_DOUBLE_EQ(analysis.critical_path[0].self_ns, 10.0);  // 100 - 90
  EXPECT_EQ(analysis.critical_path[1].id, slow);
  EXPECT_DOUBLE_EQ(analysis.critical_path[1].self_ns, 90.0);
  EXPECT_EQ(analysis.critical_path[2].id, retry);
  EXPECT_EQ(analysis.critical_path[2].name, "fio.retry");
  EXPECT_EQ(analysis.critical_path[3].id, fault);
  EXPECT_EQ(analysis.critical_path[3].name, "fault.transition");
  EXPECT_EQ(analysis.critical_path[3].outcome, "on");
}

TEST(AnalyzeTrace, CriticalPathPicksDominantRoot) {
  MemorySink sink;
  TraceRecorder trace;
  trace.set_deterministic(true);
  trace.set_sink(&sink);

  const SpanId early = trace.begin_span("run.a", 0, at(0.0));
  trace.end_span(early, "ok", at(50.0));
  const SpanId late = trace.begin_span("run.b", 0, at(10.0));
  trace.end_span(late, "ok", at(80.0));

  const TraceAnalysis analysis = analyze_trace(sink.events);
  ASSERT_FALSE(analysis.critical_path.empty());
  EXPECT_EQ(analysis.critical_path[0].id, late);  // later end wins
  EXPECT_DOUBLE_EQ(analysis.critical_path_ns, 70.0);
}

// --- contention -----------------------------------------------------------

TEST(AnalyzeTrace, ContentionAttributesStallAgainstBestRate) {
  MemorySink sink;
  TraceRecorder trace;
  trace.set_deterministic(true);
  trace.set_sink(&sink);

  // Same span kind + direction; the 100 bytes / 10 ns transfer sets the
  // reference rate, so the 100 bytes / 25 ns one stalls for 15 ns.
  EventFields fast = at(0.0);
  fast.node_a = 0;
  fast.node_b = 1;
  fast.dir = 'w';
  fast.bytes = 100;
  const SpanId f = trace.begin_span("mem.copy", 0, fast);
  trace.end_span(f, "ok", at(10.0));

  EventFields slow = at(0.0);
  slow.node_a = 0;
  slow.node_b = 2;
  slow.dir = 'w';
  slow.bytes = 100;
  const SpanId s = trace.begin_span("mem.copy", 0, slow);
  trace.end_span(s, "ok", at(25.0));

  const TraceAnalysis analysis = analyze_trace(sink.events);
  ASSERT_EQ(analysis.contention.size(), 2u);
  // Sorted by stall descending: the contended (0, 2) pair first.
  EXPECT_EQ(analysis.contention[0].node_a, 0);
  EXPECT_EQ(analysis.contention[0].node_b, 2);
  EXPECT_DOUBLE_EQ(analysis.contention[0].busy_ns, 25.0);
  EXPECT_DOUBLE_EQ(analysis.contention[0].stall_ns, 15.0);
  EXPECT_DOUBLE_EQ(analysis.contention[0].stall_frac(), 0.6);
  EXPECT_EQ(analysis.contention[0].bytes, 100);
  EXPECT_DOUBLE_EQ(analysis.contention[1].stall_ns, 0.0);
}

TEST(AnalyzeTrace, ContentionWithoutBytesUsesFastestDuration) {
  MemorySink sink;
  TraceRecorder trace;
  trace.set_deterministic(true);
  trace.set_sink(&sink);

  EventFields probe = at(0.0);
  probe.node_a = 3;
  probe.node_b = 7;
  probe.dir = 'r';
  const SpanId p1 = trace.begin_span("iomodel.probe", 0, probe);
  trace.end_span(p1, "ok", at(10.0));
  probe.node_a = 4;
  const SpanId p2 = trace.begin_span("iomodel.probe", 0, probe);
  trace.end_span(p2, "ok", at(30.0));

  const TraceAnalysis analysis = analyze_trace(sink.events);
  ASSERT_EQ(analysis.contention.size(), 2u);
  EXPECT_EQ(analysis.contention[0].node_a, 4);
  EXPECT_DOUBLE_EQ(analysis.contention[0].stall_ns, 20.0);  // 30 - 10
  EXPECT_DOUBLE_EQ(analysis.contention[1].stall_ns, 0.0);
}

// --- fault audit ----------------------------------------------------------

TEST(AnalyzeTrace, FaultAuditCountsAndAttributesConsequences) {
  MemorySink sink;
  TraceRecorder trace;
  trace.set_deterministic(true);
  trace.set_sink(&sink);

  const SpanId stream = trace.begin_span("fio.stream", 0, at(0.0));
  EventFields on = at(5.0);
  on.detail = "link-degrade 0<->1";
  const EventId f1 = trace.event("fault.transition", 0, 0, "on", on);
  trace.event("fio.retry", stream, f1, "retry", at(6.0));
  trace.event("fio.retry", stream, f1, "retry", at(7.0));
  EventFields off = at(8.0);
  off.detail = "device-stall nic";
  trace.event("fault.transition", 0, 0, "off", off);
  trace.event("fio.abort", stream, f1, "abort", at(9.0));
  trace.end_span(stream, "aborted", at(10.0));

  const TraceAnalysis analysis = analyze_trace(sink.events);
  EXPECT_EQ(analysis.faults.transitions, 2);
  EXPECT_EQ(analysis.faults.retries, 2);
  EXPECT_EQ(analysis.faults.aborts, 2);  // the instant + the "aborted" end
  EXPECT_EQ(analysis.faults.caused, 3);
  ASSERT_EQ(analysis.faults.by_fault.size(), 2u);
  EXPECT_EQ(analysis.faults.by_fault[0].first,
            "link-degrade 0<->1 on (id " + std::to_string(f1) + ")");
  EXPECT_EQ(analysis.faults.by_fault[0].second, 3);
  EXPECT_EQ(analysis.faults.by_fault[1].second, 0);
}

// --- histogram quantiles --------------------------------------------------

TEST(HistogramQuantile, InterpolatesWithinBuckets) {
  MetricsRegistry metrics;
  const auto h = metrics.histogram("t", {10.0, 20.0});
  for (const double v : {5.0, 5.0, 5.0, 5.0, 15.0, 15.0, 15.0, 15.0}) {
    metrics.observe(h, v);
  }
  const MetricsRegistry::Histogram* hist = metrics.find_histogram("t");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->quantile(0.25), 5.0);   // halfway into bucket 1
  EXPECT_DOUBLE_EQ(hist->quantile(0.5), 10.0);   // exactly at the edge
  EXPECT_DOUBLE_EQ(hist->quantile(0.75), 15.0);  // halfway into bucket 2
  EXPECT_DOUBLE_EQ(hist->quantile(1.0), 20.0);
}

TEST(HistogramQuantile, OverflowClampsToLastBoundAndEmptyIsZero) {
  MetricsRegistry metrics;
  const auto h = metrics.histogram("t", {10.0, 20.0});
  const MetricsRegistry::Histogram* hist = metrics.find_histogram("t");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->quantile(0.5), 0.0);  // empty
  metrics.observe(h, 100.0);                   // lands in +inf overflow
  EXPECT_DOUBLE_EQ(hist->quantile(0.99), 20.0);
}

TEST(HistogramQuantile, SummarySurfacesP50P95P99) {
  MetricsRegistry metrics;
  const auto h = metrics.histogram("solver.rounds", {4.0, 16.0});
  metrics.observe(h, 2.0);
  metrics.observe(h, 8.0);
  const std::string summary = metrics.summary();
  EXPECT_NE(summary.find("p50"), std::string::npos) << summary;
  EXPECT_NE(summary.find("p95"), std::string::npos) << summary;
  EXPECT_NE(summary.find("p99"), std::string::npos) << summary;
}

}  // namespace
}  // namespace numaio::obs
