#include "model/validate.h"

#include <gtest/gtest.h>

namespace numaio::model {
namespace {

TEST(Validate, MethodologyHoldsOnThePaperTestbed) {
  io::Testbed tb = io::Testbed::dl585();
  ValidateConfig quick;
  quick.iomodel_repetitions = 5;
  const ValidationReport report = validate_methodology(tb, quick);
  for (const auto& claim : report.claims) {
    EXPECT_TRUE(claim.passed) << claim.name << ": " << claim.value
                              << " vs " << claim.threshold;
  }
  EXPECT_TRUE(report.all_passed());
  // 4 rank claims + 4 coherence claims + prediction + cost ratio.
  EXPECT_EQ(report.claims.size(), 10u);
}

TEST(Validate, ReportRendersEveryClaim) {
  io::Testbed tb = io::Testbed::dl585();
  ValidateConfig quick;
  quick.iomodel_repetitions = 5;
  const auto report = validate_methodology(tb, quick);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("[pass] rank agreement rdma_read"),
            std::string::npos);
  EXPECT_NE(text.find("Eq.1 prediction error"), std::string::npos);
  EXPECT_NE(text.find("methodology holds on this host"),
            std::string::npos);
}

TEST(Validate, StrictThresholdsCanFail) {
  io::Testbed tb = io::Testbed::dl585();
  ValidateConfig impossible;
  impossible.iomodel_repetitions = 5;
  impossible.min_offloaded_spearman = 0.9999;
  impossible.max_prediction_error = 1e-6;
  const auto report = validate_methodology(tb, impossible);
  EXPECT_FALSE(report.all_passed());
  EXPECT_NE(report.to_string().find("NOT validated"), std::string::npos);
}

TEST(Validate, FlagsTheCapacityModelCaveatOnNode1) {
  // The suite earns its keep by *catching* where the methodology thins
  // out: with devices on node 1, the capacity-based memcpy model lumps
  // {6,7} with the other remotes, but window-limited writes from {6,7}
  // ride a long-latency path — a latency class the model cannot see
  // (see bench_node1_device). Coherence must flag it; the read side and
  // the predictor still hold.
  io::Testbed tb = io::Testbed::dl585_with_devices_on(1);
  ValidateConfig quick;
  quick.iomodel_repetitions = 5;
  quick.min_offloaded_spearman = 0.0;  // little structure to rank here
  const auto report = validate_methodology(tb, quick);
  EXPECT_FALSE(report.all_passed());
  for (const auto& claim : report.claims) {
    if (claim.name.rfind("class coherence", 0) == 0 &&
        claim.name.find("write") != std::string::npos) {
      EXPECT_FALSE(claim.passed) << claim.name;
    }
    if (claim.name == "Eq.1 prediction error" ||
        claim.name.find("read") != std::string::npos) {
      EXPECT_TRUE(claim.passed) << claim.name;
    }
  }
}

TEST(Validate, LeavesTheTestbedClean) {
  io::Testbed tb = io::Testbed::dl585();
  const auto free_before = tb.host().node_free_bytes(7);
  const auto flows_before = tb.machine().solver().live_flow_count();
  ValidateConfig quick;
  quick.iomodel_repetitions = 5;
  validate_methodology(tb, quick);
  EXPECT_EQ(tb.host().node_free_bytes(7), free_before);
  EXPECT_EQ(tb.machine().solver().live_flow_count(), flows_before);
}

}  // namespace
}  // namespace numaio::model
