#include "simcore/fluid_sim.h"

#include <gtest/gtest.h>

#include "simcore/rng.h"

namespace numaio::sim {
namespace {

TEST(FluidSim, SingleTransferTiming) {
  FlowSolver solver;
  const ResourceId link = solver.add_resource("link", 8.0);  // 8 Gbps
  FluidSimulation fluid(solver);
  // 1000 bytes at 8 Gbps = 1000 ns.
  const auto id = fluid.start_transfer({{link, 1.0}}, 1000);
  fluid.run();
  EXPECT_DOUBLE_EQ(fluid.stats(id).end, 1000.0);
  EXPECT_DOUBLE_EQ(fluid.stats(id).avg_rate(), 8.0);
  EXPECT_TRUE(fluid.stats(id).done);
}

TEST(FluidSim, TwoEqualTransfersShareAndFinishTogether) {
  FlowSolver solver;
  const ResourceId link = solver.add_resource("link", 8.0);
  FluidSimulation fluid(solver);
  const auto a = fluid.start_transfer({{link, 1.0}}, 1000);
  const auto b = fluid.start_transfer({{link, 1.0}}, 1000);
  fluid.run();
  EXPECT_DOUBLE_EQ(fluid.stats(a).end, 2000.0);
  EXPECT_DOUBLE_EQ(fluid.stats(b).end, 2000.0);
}

TEST(FluidSim, ShortTransferLeavesThenLongSpeedsUp) {
  FlowSolver solver;
  const ResourceId link = solver.add_resource("link", 8.0);
  FluidSimulation fluid(solver);
  const auto lng = fluid.start_transfer({{link, 1.0}}, 1500);
  const auto sht = fluid.start_transfer({{link, 1.0}}, 500);
  fluid.run();
  // Phase 1: both at 4 Gbps until short (500 B = 4000 bits) ends at
  // t=1000. Long has 8000 bits left, finishes at 1000 + 8000/8 = 2000.
  EXPECT_DOUBLE_EQ(fluid.stats(sht).end, 1000.0);
  EXPECT_DOUBLE_EQ(fluid.stats(lng).end, 2000.0);
}

TEST(FluidSim, DelayedStartWaits) {
  FlowSolver solver;
  const ResourceId link = solver.add_resource("link", 8.0);
  FluidSimulation fluid(solver);
  const auto id = fluid.start_transfer_at(5000.0, {{link, 1.0}}, 1000);
  fluid.run();
  EXPECT_DOUBLE_EQ(fluid.stats(id).start, 5000.0);
  EXPECT_DOUBLE_EQ(fluid.stats(id).end, 6000.0);
}

TEST(FluidSim, ArrivalPreemptsAndReshares) {
  FlowSolver solver;
  const ResourceId link = solver.add_resource("link", 8.0);
  FluidSimulation fluid(solver);
  const auto first = fluid.start_transfer({{link, 1.0}}, 2000);
  // Arrives at t=1000, when first has 8000 bits left.
  const auto second = fluid.start_transfer_at(1000.0, {{link, 1.0}}, 1000);
  fluid.run();
  // After t=1000 both run at 4 Gbps. First needs 2000 ns more -> 3000.
  // Second needs 8000 bits at 4 -> 2000 ns -> ends 3000 too.
  EXPECT_DOUBLE_EQ(fluid.stats(first).end, 3000.0);
  EXPECT_DOUBLE_EQ(fluid.stats(second).end, 3000.0);
}

TEST(FluidSim, RateCapHonored) {
  FlowSolver solver;
  const ResourceId link = solver.add_resource("link", 100.0);
  FluidSimulation fluid(solver);
  const auto id = fluid.start_transfer({{link, 1.0}}, 1000, /*cap=*/4.0);
  fluid.run();
  EXPECT_DOUBLE_EQ(fluid.stats(id).avg_rate(), 4.0);
}

TEST(FluidSim, CompletionCallbackChainsTransfers) {
  FlowSolver solver;
  const ResourceId link = solver.add_resource("link", 8.0);
  FluidSimulation fluid(solver);
  Ns second_end = 0.0;
  fluid.start_transfer({{link, 1.0}}, 1000, kUnlimited,
                       [&](FluidSimulation::TransferId, Ns) {
                         const auto next = fluid.start_transfer(
                             {{link, 1.0}}, 1000, kUnlimited,
                             [&](FluidSimulation::TransferId, Ns t) {
                               second_end = t;
                             });
                         (void)next;
                       });
  fluid.run();
  EXPECT_DOUBLE_EQ(second_end, 2000.0);
  EXPECT_EQ(fluid.transfer_count(), 2u);
}

TEST(FluidSim, AggregateRateOverMakespan) {
  FlowSolver solver;
  const ResourceId link = solver.add_resource("link", 8.0);
  FluidSimulation fluid(solver);
  fluid.start_transfer({{link, 1.0}}, 1000);
  fluid.start_transfer({{link, 1.0}}, 1000);
  fluid.run();
  // 2000 bytes over 2000 ns = 8 Gbps.
  EXPECT_DOUBLE_EQ(fluid.aggregate_rate(), 8.0);
}

TEST(FluidSim, WeightedUsageTransfers) {
  FlowSolver solver;
  const ResourceId cpu = solver.add_resource("cpu", 14.0);
  FluidSimulation fluid(solver);
  // Weight 1.4/Gbps: effective 10 Gbps -> 1000 B in 800 ns.
  const auto id = fluid.start_transfer({{cpu, 1.4}}, 1000);
  fluid.run();
  EXPECT_NEAR(fluid.stats(id).end, 800.0, 1e-6);
}

// Property sweep with random arrivals: total delivered bytes equal the
// sum of transfer sizes and every completion time is consistent with its
// average rate (work conservation under churn).
class FluidRandomArrivals : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FluidRandomArrivals, ByteAccounting) {
  Rng rng(GetParam());
  FlowSolver solver;
  std::vector<ResourceId> links;
  for (int i = 0; i < 3; ++i) {
    links.push_back(solver.add_resource("l", rng.uniform(5.0, 30.0)));
  }
  FluidSimulation fluid(solver);
  fluid.enable_rate_trace();
  std::vector<FluidSimulation::TransferId> ids;
  Ns clock = 0.0;
  for (int i = 0; i < 12; ++i) {
    clock += rng.uniform(0.0, 500.0);
    const Bytes size = 200 + rng.below(5000);
    std::vector<Usage> usages{{links[rng.below(3)], 1.0}};
    if (rng.uniform() < 0.5) usages.push_back({links[rng.below(3)], 1.0});
    ids.push_back(fluid.start_transfer_at(clock, usages, size));
  }
  fluid.run();
  for (const auto id : ids) {
    const auto& st = fluid.stats(id);
    ASSERT_TRUE(st.done);
    EXPECT_GT(st.end, st.start);
    // Trace integral equals the transfer size.
    double bits = 0.0;
    for (const auto& seg : fluid.trace(id)) bits += seg.duration * seg.rate;
    EXPECT_NEAR(bits, static_cast<double>(st.bytes) * 8.0, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidRandomArrivals,
                         ::testing::Values(3u, 17u, 99u, 12345u));

// Property sweep: n transfers over one link conserve work: makespan equals
// total bits / capacity regardless of n.
class FluidWorkConservation : public ::testing::TestWithParam<int> {};

TEST_P(FluidWorkConservation, MakespanMatchesTotalWork) {
  const int n = GetParam();
  FlowSolver solver;
  const ResourceId link = solver.add_resource("link", 10.0);
  FluidSimulation fluid(solver);
  for (int i = 0; i < n; ++i) {
    fluid.start_transfer({{link, 1.0}}, 500 * static_cast<Bytes>(i + 1));
  }
  const Ns end = fluid.run();
  Bytes total = 0;
  for (int i = 0; i < n; ++i) total += 500 * static_cast<Bytes>(i + 1);
  EXPECT_NEAR(end, static_cast<double>(total) * 8.0 / 10.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Counts, FluidWorkConservation,
                         ::testing::Values(1, 2, 5, 13));

// Batched completion application is contracted to be bit-identical to
// per-event application (the batched fleet admission path relies on it):
// same rate traces, same start/end times, same callback firing order —
// only the number of solver re-solves may differ. The workload starts
// equal-size clusters on shared links so plenty of completions land on
// the very same instant, the case batching actually coalesces.
class FluidBatchEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FluidBatchEquivalence, BatchedCompletionsMatchPerEventBitForBit) {
  struct Run {
    std::vector<FluidSimulation::TransferId> ids;
    std::vector<FluidSimulation::TransferId> callback_order;
    std::vector<FluidSimulation::TransferStats> stats;
    std::vector<std::vector<FluidSimulation::RateSegment>> traces;
    Ns makespan = 0.0;
  };
  const auto execute = [&](bool batched) {
    Rng rng(GetParam());
    FlowSolver solver;
    std::vector<ResourceId> links;
    for (int i = 0; i < 3; ++i) {
      links.push_back(solver.add_resource("l", rng.uniform(5.0, 30.0)));
    }
    FluidSimulation fluid(solver);
    fluid.set_batch_completions(batched);
    fluid.enable_rate_trace();
    Run run;
    Ns clock = 0.0;
    for (int cluster = 0; cluster < 6; ++cluster) {
      clock += rng.uniform(0.0, 800.0);
      const std::uint64_t width = 1 + rng.below(3);
      const Bytes size = 500 + rng.below(4000);
      const ResourceId link = links[rng.below(3)];
      for (std::uint64_t w = 0; w < width; ++w) {
        // Same link, size and start: the whole cluster completes at one
        // instant once the share equalizes.
        run.ids.push_back(fluid.start_transfer_at(
            clock, {{link, 1.0}}, size, kUnlimited,
            [&run](FluidSimulation::TransferId id, Ns) {
              run.callback_order.push_back(id);
            }));
      }
    }
    run.makespan = fluid.run();
    for (const auto id : run.ids) {
      run.stats.push_back(fluid.stats(id));
      run.traces.emplace_back(fluid.trace(id).begin(),
                              fluid.trace(id).end());
    }
    return run;
  };

  const Run per_event = execute(false);
  const Run batched = execute(true);
  EXPECT_EQ(batched.makespan, per_event.makespan);
  ASSERT_EQ(batched.ids, per_event.ids);
  EXPECT_EQ(batched.callback_order, per_event.callback_order);
  for (std::size_t i = 0; i < per_event.ids.size(); ++i) {
    const FluidSimulation::TransferStats& a = per_event.stats[i];
    const FluidSimulation::TransferStats& b = batched.stats[i];
    EXPECT_EQ(b.start, a.start);
    ASSERT_EQ(b.end, a.end) << "seed " << GetParam() << " transfer " << i;
    EXPECT_EQ(b.bytes_moved, a.bytes_moved);
    EXPECT_TRUE(b.done);
    ASSERT_EQ(batched.traces[i].size(), per_event.traces[i].size());
    for (std::size_t s = 0; s < per_event.traces[i].size(); ++s) {
      EXPECT_EQ(batched.traces[i][s].rate, per_event.traces[i][s].rate);
      EXPECT_EQ(batched.traces[i][s].duration,
                per_event.traces[i][s].duration);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidBatchEquivalence,
                         ::testing::Values(1u, 7u, 42u, 2013u, 90210u));

}  // namespace
}  // namespace numaio::sim
