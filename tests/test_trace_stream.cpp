// The record-stream core: streaming analysis/export must match the
// in-memory path byte for byte on real captures, the synthetic scale
// source must be deterministic and §4a-well-formed, memory must stay
// bounded (peak open spans) at 10^6 records, and scheduler migration
// chains must stitch into the critical path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "io/fio.h"
#include "io/testbed.h"
#include "model/perf_report.h"
#include "obs/analysis.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/stream.h"
#include "obs/trace.h"
#include "simcore/units.h"

namespace numaio::obs {
namespace {

EventFields at(double t_sim) {
  EventFields f;
  f.t_sim = t_sim;
  return f;
}

void expect_same_analysis(const TraceAnalysis& a, const TraceAnalysis& b) {
  EXPECT_EQ(a.num_records, b.num_records);
  EXPECT_DOUBLE_EQ(a.first_ns, b.first_ns);
  EXPECT_DOUBLE_EQ(a.last_ns, b.last_ns);
  EXPECT_DOUBLE_EQ(a.critical_path_ns, b.critical_path_ns);

  ASSERT_EQ(a.span_kinds.size(), b.span_kinds.size());
  for (std::size_t i = 0; i < a.span_kinds.size(); ++i) {
    EXPECT_EQ(a.span_kinds[i].name, b.span_kinds[i].name) << i;
    EXPECT_EQ(a.span_kinds[i].count, b.span_kinds[i].count) << i;
    EXPECT_EQ(a.span_kinds[i].unclosed, b.span_kinds[i].unclosed) << i;
    EXPECT_DOUBLE_EQ(a.span_kinds[i].total_ns, b.span_kinds[i].total_ns)
        << i;
    EXPECT_DOUBLE_EQ(a.span_kinds[i].max_ns, b.span_kinds[i].max_ns) << i;
    EXPECT_EQ(a.span_kinds[i].bytes, b.span_kinds[i].bytes) << i;
    EXPECT_EQ(a.span_kinds[i].outcomes, b.span_kinds[i].outcomes) << i;
  }

  ASSERT_EQ(a.critical_path.size(), b.critical_path.size());
  for (std::size_t i = 0; i < a.critical_path.size(); ++i) {
    EXPECT_EQ(a.critical_path[i].id, b.critical_path[i].id) << i;
    EXPECT_EQ(a.critical_path[i].name, b.critical_path[i].name) << i;
    EXPECT_DOUBLE_EQ(a.critical_path[i].self_ns, b.critical_path[i].self_ns)
        << i;
    EXPECT_DOUBLE_EQ(a.critical_path[i].start_ns,
                     b.critical_path[i].start_ns)
        << i;
    EXPECT_DOUBLE_EQ(a.critical_path[i].end_ns, b.critical_path[i].end_ns)
        << i;
    EXPECT_EQ(a.critical_path[i].outcome, b.critical_path[i].outcome) << i;
    EXPECT_EQ(a.critical_path[i].detail, b.critical_path[i].detail) << i;
  }

  ASSERT_EQ(a.contention.size(), b.contention.size());
  for (std::size_t i = 0; i < a.contention.size(); ++i) {
    EXPECT_EQ(a.contention[i].node_a, b.contention[i].node_a) << i;
    EXPECT_EQ(a.contention[i].node_b, b.contention[i].node_b) << i;
    EXPECT_EQ(a.contention[i].spans, b.contention[i].spans) << i;
    EXPECT_EQ(a.contention[i].bytes, b.contention[i].bytes) << i;
    EXPECT_DOUBLE_EQ(a.contention[i].busy_ns, b.contention[i].busy_ns) << i;
    EXPECT_DOUBLE_EQ(a.contention[i].stall_ns, b.contention[i].stall_ns)
        << i;
  }

  EXPECT_EQ(a.faults.transitions, b.faults.transitions);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.aborts, b.faults.aborts);
  EXPECT_EQ(a.faults.caused, b.faults.caused);
  EXPECT_EQ(a.faults.by_fault, b.faults.by_fault);
}

/// A degraded fio run under an injected fault plan: the richest capture
/// the pipeline produces (transfer spans with bytes and node pairs,
/// fault transitions, retries, aborts, cause edges).
std::vector<Event> degraded_capture() {
  io::Testbed tb = io::Testbed::dl585();
  Context ctx;
  MemorySink capture;
  ctx.trace.set_deterministic(true);
  ctx.trace.set_sink(&capture);

  faults::RandomPlanConfig plan_config;
  plan_config.seed = 42;
  plan_config.num_nodes = tb.machine().num_nodes();
  plan_config.num_devices = 1 + static_cast<int>(tb.ssds().size());
  plan_config.num_events = 4;
  faults::FaultInjector injector(tb.machine(),
                                 faults::FaultPlan::random(plan_config));
  injector.set_observer(&ctx);
  injector.register_device(tb.nic().name(), tb.nic().attach_node(),
                           tb.nic().fault_resources());
  for (const io::PcieDevice* ssd : tb.ssds()) {
    injector.register_device(ssd->name(), ssd->attach_node(),
                             ssd->fault_resources());
  }

  io::FioJob job;
  job.devices = {&tb.nic()};
  job.engine = io::kRdmaRead;
  job.cpu_node = 2;
  job.num_streams = 4;
  job.bytes_per_stream = 40 * sim::kGiB;
  job.retry.timeout = 30.0e9;
  io::FioRunner fio(tb.host());
  fio.set_fault_injector(&injector);
  fio.set_observer(&ctx);
  fio.run(job);
  injector.restore();
  return capture.events;
}

std::string serialize_jsonl(const std::vector<Event>& events) {
  std::ostringstream text;
  JsonlSink sink(text);
  for (const Event& e : events) sink.write(e);
  return text.str();
}

// --- streaming vs in-memory equivalence -----------------------------------

TEST(TraceStream, StreamedAnalysisMatchesInMemoryOnDegradedCapture) {
  const std::vector<Event> events = degraded_capture();
  ASSERT_FALSE(events.empty());
  const TraceAnalysis in_memory = analyze_trace(events);

  // Through the serialized form, the way `report --trace-in` consumes it.
  JsonlTextSource text_source(serialize_jsonl(events));
  const TraceAnalysis streamed = analyze_stream(text_source);
  expect_same_analysis(in_memory, streamed);

  // The analyzer is multi-pass and its memory profile is the point:
  // every pass holds only the open spans of the moment.
  EXPECT_GE(streamed.passes, 1);
  EXPECT_GT(streamed.peak_open_spans, 0u);
  EXPECT_LT(streamed.peak_open_spans,
            static_cast<std::uint64_t>(events.size()));
}

TEST(TraceStream, JsonlFileSourceMatchesInMemory) {
  const std::vector<Event> events = degraded_capture();
  const std::string path = testing::TempDir() + "numaio_stream_eq.jsonl";
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open());
    out << serialize_jsonl(events);
  }
  JsonlFileSource file_source(path);
  expect_same_analysis(analyze_trace(events), analyze_stream(file_source));
  std::remove(path.c_str());
}

TEST(TraceStream, JsonlFileSourceThrowsOnMissingFile) {
  JsonlFileSource source(testing::TempDir() + "numaio_no_such_capture.jsonl");
  MemorySink sink;
  EXPECT_THROW(source.stream(sink), std::runtime_error);
}

TEST(TraceStream, StreamedChromeExportIsByteIdentical) {
  const std::vector<Event> events = degraded_capture();
  std::ostringstream via_vector;
  export_chrome_trace(events, via_vector);

  JsonlTextSource source(serialize_jsonl(events));
  std::ostringstream via_stream;
  export_chrome_trace(source, via_stream);
  EXPECT_EQ(via_vector.str(), via_stream.str());
}

TEST(TraceStream, StreamedRunReportIsByteIdentical) {
  const std::vector<Event> events = degraded_capture();
  const model::RunReport in_memory =
      model::build_run_report("report --trace-in x", nullptr, events,
                              nullptr);

  JsonlTextSource source(serialize_jsonl(events));
  const model::RunReport streamed =
      model::build_run_report("report --trace-in x", nullptr, source,
                              nullptr);
  EXPECT_EQ(model::render_markdown(in_memory),
            model::render_markdown(streamed));
  EXPECT_EQ(model::render_json(in_memory), model::render_json(streamed));
}

TEST(TraceStream, AuditFaultsMatchesAnalysisAudit) {
  const std::vector<Event> events = degraded_capture();
  VectorSource source(events);
  const FaultAudit audit = audit_faults(source);
  const FaultAudit full = analyze_trace(events).faults;
  EXPECT_EQ(audit.transitions, full.transitions);
  EXPECT_EQ(audit.retries, full.retries);
  EXPECT_EQ(audit.aborts, full.aborts);
  EXPECT_EQ(audit.caused, full.caused);
  EXPECT_EQ(audit.by_fault, full.by_fault);
}

class CountingVisitor final : public TraceVisitor {
 public:
  void record(const Event& e) override {
    ++records_;
    last_id_ = e.id;
  }
  int records() const { return records_; }
  EventId last_id() const { return last_id_; }

 private:
  int records_ = 0;
  EventId last_id_ = 0;
};

TEST(TraceStream, LiveRecorderTapFeedsAVisitorDirectly) {
  // VisitorSink: a live recorder streaming into a visitor with no
  // capture buffer at all.
  CountingVisitor probe;
  VisitorSink tap(probe);
  TraceRecorder trace;
  trace.set_deterministic(true);
  trace.set_sink(&tap);
  const SpanId job = trace.begin_span("fio.job", 0, at(0.0));
  const EventId fault =
      trace.event("fault.transition", 0, 0, "degraded", at(1.0));
  trace.event("fio.retry", job, fault, "retry", at(2.0));
  trace.end_span(job, "ok", at(3.0));
  EXPECT_EQ(probe.records(), 4);
  EXPECT_EQ(probe.last_id(), 4);
}

// --- synthetic scale source -----------------------------------------------

TEST(SyntheticTrace, EveryPassRegeneratesIdenticalRecords) {
  SyntheticTraceConfig config;
  config.records = 5000;
  config.seed = 7;
  SyntheticTraceSource source(config);
  MemorySink first;
  MemorySink second;
  source.stream(first);
  source.stream(second);
  ASSERT_EQ(first.events.size(), 5000u);
  ASSERT_EQ(first.events.size(), second.events.size());
  for (std::size_t i = 0; i < first.events.size(); ++i) {
    EXPECT_EQ(first.events[i].id, second.events[i].id) << i;
    EXPECT_EQ(first.events[i].kind, second.events[i].kind) << i;
    EXPECT_EQ(first.events[i].name, second.events[i].name) << i;
    EXPECT_DOUBLE_EQ(first.events[i].t_sim, second.events[i].t_sim) << i;
  }
}

TEST(SyntheticTrace, HonorsRecordOrderGuarantees) {
  SyntheticTraceConfig config;
  config.records = 4000;
  SyntheticTraceSource source(config);
  MemorySink sink;
  source.stream(sink);
  ASSERT_EQ(sink.events.size(), 4000u);

  EventId last_id = 0;
  std::vector<SpanId> open;
  for (const Event& e : sink.events) {
    EXPECT_GT(e.id, last_id);  // monotonic ids
    last_id = e.id;
    if (e.kind == 'B') {
      open.push_back(e.id);
    } else if (e.kind == 'E') {
      // LIFO-compatible nesting: the closed span is currently open.
      auto it = std::find(open.begin(), open.end(), e.span);
      ASSERT_NE(it, open.end()) << "E for a span that is not open";
      open.erase(it);
    } else if (e.parent != 0) {
      EXPECT_LT(e.parent, e.id);  // causes precede consequences
    }
  }
  EXPECT_TRUE(open.empty()) << "generator must close every span";
}

TEST(SyntheticTrace, MillionRecordAnalysisKeepsOpenSpansBounded) {
  SyntheticTraceConfig config;  // 10^6 records, 32-stream window
  SyntheticTraceSource source(config);
  const TraceAnalysis analysis = analyze_stream(source);
  EXPECT_EQ(analysis.num_records, 1000000);
  // The load-bearing invariant: however many records stream through,
  // the analyzer held at most the open-span window (+ the root span).
  EXPECT_LE(analysis.peak_open_spans,
            static_cast<std::uint64_t>(config.concurrent_streams) + 1);
  EXPECT_FALSE(analysis.span_kinds.empty());
  EXPECT_FALSE(analysis.critical_path.empty());
  EXPECT_GT(analysis.faults.transitions, 0);
  EXPECT_GT(analysis.faults.retries, 0);
}

TEST(SyntheticTrace, TinyRequestStillEmitsAWellFormedCapture) {
  SyntheticTraceConfig config;
  config.records = 1;  // below the root B/E + window minimum
  SyntheticTraceSource source(config);
  MemorySink sink;
  source.stream(sink);
  EXPECT_EQ(sink.events.size(), 8u);
  EXPECT_EQ(sink.events.front().kind, 'B');
  EXPECT_EQ(sink.events.back().kind, 'E');
}

// --- scheduler migration stitching ----------------------------------------

TEST(TraceStream, MigrationChainStitchesIntoCriticalPath) {
  // One root span; a fault causes three migrations of the same task.
  // The dominant-leaf pivot is the *last* migration; the earlier ones
  // must be stitched in before it, then the cause chain follows.
  TraceRecorder trace;
  MemorySink sink;
  trace.set_deterministic(true);
  trace.set_sink(&sink);
  const SpanId run = trace.begin_span("online.run", 0, at(0.0));  // id 1
  const EventId fault =
      trace.event("fault.transition", run, 0, "degraded", at(1.0));  // id 2
  EventFields migrate = at(2.0);
  migrate.detail = "task 3";
  trace.event("sched.migrate", run, fault, "moved", migrate);  // id 3
  migrate.t_sim = 3.0;
  trace.event("sched.migrate", run, fault, "moved", migrate);  // id 4
  migrate.t_sim = 4.0;
  trace.event("sched.migrate", run, fault, "moved", migrate);  // id 5
  trace.end_span(run, "ok", at(10.0));

  const TraceAnalysis analysis = analyze_trace(sink.events);
  ASSERT_EQ(analysis.critical_path.size(), 5u);
  EXPECT_EQ(analysis.critical_path[0].name, "online.run");
  EXPECT_EQ(analysis.critical_path[1].id, 3);
  EXPECT_EQ(analysis.critical_path[2].id, 4);
  EXPECT_EQ(analysis.critical_path[3].id, 5);
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(analysis.critical_path[static_cast<std::size_t>(i)].name,
              "sched.migrate");
  }
  EXPECT_EQ(analysis.critical_path[4].name, "fault.transition");
  EXPECT_EQ(analysis.critical_path[4].id, 2);
}

TEST(TraceStream, MigrationsOfOtherTasksAreNotStitched) {
  TraceRecorder trace;
  MemorySink sink;
  trace.set_deterministic(true);
  trace.set_sink(&sink);
  const SpanId run = trace.begin_span("online.run", 0, at(0.0));
  const EventId fault =
      trace.event("fault.transition", run, 0, "degraded", at(1.0));
  EventFields other = at(2.0);
  other.detail = "task 1";  // different task: must not ride along
  trace.event("sched.migrate", run, fault, "moved", other);
  EventFields mine = at(3.0);
  mine.detail = "task 3";
  trace.event("sched.migrate", run, fault, "moved", mine);
  trace.end_span(run, "ok", at(10.0));

  const TraceAnalysis analysis = analyze_trace(sink.events);
  // Root span, the pivot migration, its fault — and nothing stitched.
  ASSERT_EQ(analysis.critical_path.size(), 3u);
  EXPECT_EQ(analysis.critical_path[1].name, "sched.migrate");
  EXPECT_EQ(analysis.critical_path[1].detail, "task 3");
  EXPECT_EQ(analysis.critical_path[2].name, "fault.transition");
}

}  // namespace
}  // namespace numaio::obs

namespace numaio::model {
namespace {

/// A deterministic trace-only report over a synthetic capture.
RunReport synthetic_report(std::uint64_t records, std::uint64_t seed) {
  obs::SyntheticTraceConfig config;
  config.records = records;
  config.seed = seed;
  obs::SyntheticTraceSource source(config);
  return build_run_report("report synth", nullptr, source, nullptr);
}

TEST(ReportDiff, ParsesRenderedJsonBack) {
  const RunReport report = synthetic_report(3000, 42);
  const ReportSummary summary = parse_report_json(render_json(report));
  EXPECT_EQ(summary.command, "report synth");
  EXPECT_EQ(summary.records, 3000);
  EXPECT_DOUBLE_EQ(summary.critical_path_ns,
                   report.analysis.critical_path_ns);
  EXPECT_EQ(summary.span_kinds.size(), report.analysis.span_kinds.size());
  EXPECT_EQ(summary.fault_transitions, report.analysis.faults.transitions);
  EXPECT_EQ(summary.retries, report.analysis.faults.retries);
}

TEST(ReportDiff, RejectsMalformedJson) {
  EXPECT_THROW(parse_report_json("not json"), std::invalid_argument);
  EXPECT_THROW(parse_report_json("{\"command\": \"x\"}"),
               std::invalid_argument);
}

TEST(ReportDiff, SelfDiffReportsNoChanges) {
  const ReportSummary s =
      parse_report_json(render_json(synthetic_report(3000, 42)));
  const std::string diff = diff_reports(s, s);
  EXPECT_NE(diff.find("unchanged"), std::string::npos);
  EXPECT_NE(diff.find("+0.000 ms"), std::string::npos);
}

TEST(ReportDiff, ReportsCriticalPathAndSpanDeltas) {
  const ReportSummary before =
      parse_report_json(render_json(synthetic_report(3000, 42)));
  const ReportSummary after =
      parse_report_json(render_json(synthetic_report(6000, 43)));
  const std::string diff = diff_reports(before, after);
  EXPECT_NE(diff.find("- before: `report synth` (3000 records)"),
            std::string::npos);
  EXPECT_NE(diff.find("- after:  `report synth` (6000 records)"),
            std::string::npos);
  EXPECT_NE(diff.find("## Critical path"), std::string::npos);
  EXPECT_NE(diff.find("## Span kinds"), std::string::npos);
  EXPECT_NE(diff.find("synth.stream: count"), std::string::npos);
}

}  // namespace
}  // namespace numaio::model
