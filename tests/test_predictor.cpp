#include "model/predictor.h"

#include <gtest/gtest.h>

#include "io/testbed.h"

namespace numaio::model {
namespace {

TEST(Predictor, Eq1PaperArithmetic) {
  // The paper's worked example: 50% from class 2 (21.998 Gbps) and 50%
  // from class 3 (18.036 Gbps) -> 20.017 Gbps.
  const std::vector<sim::Gbps> class_values{22.0, 21.998, 18.036, 16.1};
  const std::vector<ClassShare> shares{{1, 0.5}, {2, 0.5}};
  EXPECT_NEAR(predict_aggregate(class_values, shares), 20.017, 1e-9);
}

TEST(Predictor, SingleClassDegenerates) {
  const std::vector<sim::Gbps> class_values{30.0};
  const std::vector<ClassShare> shares{{0, 1.0}};
  EXPECT_DOUBLE_EQ(predict_aggregate(class_values, shares), 30.0);
}

TEST(Predictor, RelativeErrorMatchesPaperFormula) {
  // epsilon = |20.017 - 19.415| / 19.415 = 3.1%.
  EXPECT_NEAR(relative_error(20.017, 19.415), 0.031, 0.001);
}

class PredictorEndToEnd : public ::testing::Test {
 protected:
  PredictorEndToEnd()
      : testbed_(io::Testbed::dl585()),
        model_(build_iomodel(testbed_.host(), 7, Direction::kDeviceRead)),
        classes_(classify(model_, testbed_.machine().topology())) {}

  /// Probes the RDMA_READ bandwidth of each class's representative node —
  /// the cost-reduced characterization of §V-A.
  std::vector<sim::Gbps> probe_class_values() {
    io::FioRunner fio(testbed_.host());
    std::vector<sim::Gbps> values;
    for (NodeId rep : representative_nodes(classes_)) {
      io::FioJob j;
      j.devices = {&testbed_.nic()};
      j.engine = io::kRdmaRead;
      j.cpu_node = rep;
      j.num_streams = 4;
      values.push_back(fio.run(j).aggregate);
    }
    return values;
  }

  io::Testbed testbed_;
  IoModelResult model_;
  Classification classes_;
};

TEST_F(PredictorEndToEnd, BindingsMapThroughClassOf) {
  const auto values = probe_class_values();
  // Node 2 is class 2 (index 1), node 0 class 3 (index 2) in Table V.
  const std::vector<std::pair<NodeId, int>> bindings{{2, 2}, {0, 2}};
  const double predicted =
      predict_for_bindings(classes_, values, bindings);
  EXPECT_NEAR(predicted,
              0.5 * values[1] + 0.5 * values[2], 1e-9);
}

TEST_F(PredictorEndToEnd, PaperValidationScenario) {
  // Predict, then measure the mixed run; the relative error must be small
  // (the paper reports 3.1%).
  const auto values = probe_class_values();
  const std::vector<std::pair<NodeId, int>> bindings{{2, 2}, {0, 2}};
  const double predicted =
      predict_for_bindings(classes_, values, bindings);

  io::FioRunner fio(testbed_.host());
  io::FioJob a;
  a.devices = {&testbed_.nic()};
  a.engine = io::kRdmaRead;
  a.cpu_node = 2;
  a.num_streams = 2;
  io::FioJob b = a;
  b.cpu_node = 0;
  const double measured =
      io::combined_aggregate(fio.run_concurrent({a, b}));

  EXPECT_NEAR(predicted, 20.15, 0.2);
  EXPECT_NEAR(measured, 19.4, 0.3);
  const double eps = relative_error(predicted, measured);
  EXPECT_GT(eps, 0.005);  // the model is an over-estimate, like the paper
  EXPECT_LT(eps, 0.06);   // but a close one
}

TEST_F(PredictorEndToEnd, UniformMixPredictsTheClassValue) {
  const auto values = probe_class_values();
  const std::vector<std::pair<NodeId, int>> bindings{{0, 1}, {1, 1}, {5, 2}};
  // All three bindings are class index 2.
  EXPECT_DOUBLE_EQ(predict_for_bindings(classes_, values, bindings),
                   values[2]);
}

}  // namespace
}  // namespace numaio::model
