// ShardedEventEngine tests (DESIGN.md §13): control-queue ordering,
// lanes-drain-before-control at shared instants, the serial merge
// barrier, lane-local rescheduling, run_until clock semantics, and the
// worker-count invariance property the fleet's bit-identical traces
// rest on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "simcore/sharded_event_engine.h"
#include "simcore/thread_pool.h"
#include "simcore/units.h"

namespace numaio::sim {
namespace {

TEST(ShardedEventEngineTest, ControlEventsFireInTimeThenFifoOrder) {
  ShardedEventEngine eng(/*num_lanes=*/2, /*pool=*/nullptr);
  std::vector<int> order;
  eng.schedule_at(20.0, [&] { order.push_back(2); });
  eng.schedule_at(10.0, [&] {
    order.push_back(0);
    EXPECT_DOUBLE_EQ(eng.now(), 10.0);
  });
  eng.schedule_at(10.0, [&] { order.push_back(1); });  // same instant: FIFO
  const Ns end = eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(end, 20.0);
  EXPECT_EQ(eng.pending(), 0u);
}

TEST(ShardedEventEngineTest, LanesDrainBeforeControlAtTheSameInstant) {
  ShardedEventEngine eng(/*num_lanes=*/2, /*pool=*/nullptr);
  std::vector<std::string> order;
  eng.set_lane_handler([&](int lane, const ShardedEventEngine::LaneEvent&) {
    // Serial drain (null pool): appending here is safe and records the
    // lane phase.
    order.push_back("lane" + std::to_string(lane));
  });
  eng.set_merge_hook([&](Ns at) {
    order.push_back("merge@" + std::to_string(static_cast<int>(at)));
  });
  eng.schedule_at(10.0, [&] { order.push_back("control"); });
  eng.schedule_lane(1, 10.0, /*kind=*/1, 0, 0, /*gen=*/0);
  eng.schedule_lane(0, 10.0, /*kind=*/1, 0, 0, /*gen=*/0);
  eng.run();
  // Both lanes drain (ascending lane order when serial), then the merge
  // barrier, then the control closure — all at t = 10.
  EXPECT_EQ(order, (std::vector<std::string>{"lane0", "lane1", "merge@10",
                                             "control"}));
  EXPECT_EQ(eng.lane_rounds(), 1);
  EXPECT_EQ(eng.lane_events_fired(), 2);
}

TEST(ShardedEventEngineTest, LaneHandlerMayRescheduleItsOwnLane) {
  ShardedEventEngine eng(/*num_lanes=*/3, /*pool=*/nullptr);
  std::vector<long long> fired(3, 0);
  eng.set_lane_handler(
      [&](int lane, const ShardedEventEngine::LaneEvent& ev) {
        ++fired[static_cast<std::size_t>(lane)];
        if (ev.gen > 0) {
          eng.schedule_lane(lane, ev.at + 5.0, ev.kind, ev.a, ev.b,
                            ev.gen - 1);
        }
      });
  for (int lane = 0; lane < 3; ++lane) {
    eng.schedule_lane(lane, 10.0, 1, 0, 0, /*gen=*/3);
  }
  const Ns end = eng.run();
  // Each lane fires at 10, 15, 20, 25.
  EXPECT_EQ(fired, (std::vector<long long>{4, 4, 4}));
  EXPECT_DOUBLE_EQ(end, 25.0);
  EXPECT_EQ(eng.lane_rounds(), 4);  // shared instants batch into rounds
  EXPECT_EQ(eng.lane_events_fired(), 12);
}

TEST(ShardedEventEngineTest, RunUntilStopsAndAdvancesTheClock) {
  ShardedEventEngine eng(/*num_lanes=*/1, /*pool=*/nullptr);
  std::vector<Ns> fired;
  eng.schedule_at(10.0, [&] { fired.push_back(10.0); });
  eng.schedule_at(30.0, [&] { fired.push_back(30.0); });
  eng.schedule_lane(0, 25.0, 1, 0, 0, 0);
  eng.set_lane_handler(
      [&](int, const ShardedEventEngine::LaneEvent& ev) {
        fired.push_back(ev.at);
      });

  EXPECT_DOUBLE_EQ(eng.run_until(20.0), 20.0);
  EXPECT_EQ(fired, (std::vector<Ns>{10.0}));
  EXPECT_EQ(eng.pending(), 2u);
  EXPECT_DOUBLE_EQ(eng.next_event_time(), 25.0);

  // An empty stretch still advances the clock to `until`.
  EXPECT_DOUBLE_EQ(eng.run_until(22.0), 22.0);

  EXPECT_DOUBLE_EQ(eng.run(), 30.0);
  EXPECT_EQ(fired, (std::vector<Ns>{10.0, 25.0, 30.0}));
  EXPECT_EQ(eng.pending(), 0u);
}

TEST(ShardedEventEngineTest, ControlMayScheduleLaneEventsAndViceVersa) {
  // Merge hooks are serial phases: scheduling new lane or control work
  // from one must land in later rounds, never be lost.
  ShardedEventEngine eng(/*num_lanes=*/2, /*pool=*/nullptr);
  std::vector<std::string> order;
  eng.set_lane_handler([&](int lane, const ShardedEventEngine::LaneEvent&) {
    order.push_back("lane" + std::to_string(lane));
  });
  eng.set_merge_hook([&](Ns at) {
    if (at == 10.0) {
      eng.schedule_lane(1, 20.0, 1, 0, 0, 0);
      eng.schedule_at(15.0, [&] { order.push_back("control"); });
    }
  });
  eng.schedule_lane(0, 10.0, 1, 0, 0, 0);
  const Ns end = eng.run();
  EXPECT_EQ(order, (std::vector<std::string>{"lane0", "control", "lane1"}));
  EXPECT_DOUBLE_EQ(end, 20.0);
}

/// Runs a scripted mixed workload and returns the merge-committed log.
/// Lane handlers mutate only their own lane's accumulator; the merge
/// barrier publishes all of them in lane order, so the log is the
/// observable the invariance property quantifies over.
std::vector<long long> scripted_run(ThreadPool* pool,
                                    long long* parallel_batches) {
  ShardedEventEngine eng(/*num_lanes=*/8, pool);
  std::vector<long long> acc(8, 0);
  std::vector<long long> log;
  eng.set_lane_handler(
      [&](int lane, const ShardedEventEngine::LaneEvent& ev) {
        auto& a = acc[static_cast<std::size_t>(lane)];
        a = a * 31 + ev.kind * 7 + ev.a;
        if (ev.gen > 0) {
          eng.schedule_lane(lane, ev.at + 3.0, ev.kind, ev.a + 1, 0,
                            ev.gen - 1);
        }
      });
  eng.set_merge_hook([&](Ns at) {
    log.push_back(static_cast<long long>(at));
    for (const long long a : acc) log.push_back(a);
  });
  for (int lane = 0; lane < 8; ++lane) {
    eng.schedule_lane(lane, 10.0, /*kind=*/1 + lane % 2, lane, 0, /*gen=*/4);
  }
  eng.schedule_at(16.0, [&] { eng.schedule_lane(3, 19.0, 5, 100, 0, 0); });
  eng.run();
  if (parallel_batches != nullptr) *parallel_batches = eng.parallel_batches();
  return log;
}

TEST(ShardedEventEngineTest, MergeLogIsInvariantToWorkerCount) {
  // The tentpole property: the same script through a serial drain, a
  // 2-worker pool and an 8-worker pool commits byte-identical logs —
  // parallelism changes wall time only, never outcomes.
  long long serial_batches = 0;
  const std::vector<long long> serial =
      scripted_run(nullptr, &serial_batches);
  EXPECT_GT(serial.size(), 0u);
  EXPECT_EQ(serial_batches, 0);
  for (const int workers : {2, 8}) {
    ThreadPool pool(workers);
    long long batches = 0;
    const std::vector<long long> parallel = scripted_run(&pool, &batches);
    EXPECT_EQ(serial, parallel) << workers << " workers";
    // Rounds with >1 due lane really fanned out.
    EXPECT_GT(batches, 0) << workers << " workers";
  }
}

}  // namespace
}  // namespace numaio::sim
