#include "model/analysis.h"

#include <gtest/gtest.h>

#include <vector>

namespace numaio::model {
namespace {

const std::vector<double> kAscending{1, 2, 3, 4, 5};
const std::vector<double> kDescending{5, 4, 3, 2, 1};

TEST(Analysis, SpearmanPerfectAgreement) {
  const std::vector<double> scaled{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(spearman(kAscending, scaled), 1.0);
}

TEST(Analysis, SpearmanPerfectInversion) {
  EXPECT_DOUBLE_EQ(spearman(kAscending, kDescending), -1.0);
}

TEST(Analysis, SpearmanIsRankBasedNotLinear) {
  // A monotone nonlinear map preserves Spearman exactly.
  const std::vector<double> exp{2.7, 7.4, 20.1, 54.6, 148.4};
  EXPECT_DOUBLE_EQ(spearman(kAscending, exp), 1.0);
}

TEST(Analysis, SpearmanHandlesTies) {
  const std::vector<double> a{1, 2, 2, 3};
  const std::vector<double> b{1, 2, 2, 3};
  EXPECT_DOUBLE_EQ(spearman(a, b), 1.0);
}

TEST(Analysis, SpearmanConstantSeriesIsZero) {
  const std::vector<double> flat{3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(spearman(kAscending, flat), 0.0);
}

TEST(Analysis, KendallPerfectAgreementAndInversion) {
  EXPECT_DOUBLE_EQ(kendall_tau(kAscending, kAscending), 1.0);
  EXPECT_DOUBLE_EQ(kendall_tau(kAscending, kDescending), -1.0);
}

TEST(Analysis, KendallSingleSwap) {
  const std::vector<double> swapped{1, 2, 3, 5, 4};
  // 9 of 10 pairs concordant, 1 discordant -> tau = 0.8.
  EXPECT_DOUBLE_EQ(kendall_tau(kAscending, swapped), 0.8);
}

TEST(Analysis, KendallTieCorrection) {
  const std::vector<double> a{1, 1, 2, 3};
  const std::vector<double> b{1, 2, 3, 4};
  const double tau = kendall_tau(a, b);
  EXPECT_GT(tau, 0.9);
  EXPECT_LE(tau, 1.0);
}

TEST(Analysis, PairwiseAgreementBounds) {
  EXPECT_DOUBLE_EQ(pairwise_agreement(kAscending, kAscending), 1.0);
  EXPECT_DOUBLE_EQ(pairwise_agreement(kAscending, kDescending), 0.0);
}

TEST(Analysis, PairwiseAgreementSkipsTies) {
  const std::vector<double> a{1, 1, 2};
  const std::vector<double> b{5, 9, 10};
  // Only pairs (0,2) and (1,2) comparable, both concordant.
  EXPECT_DOUBLE_EQ(pairwise_agreement(a, b), 1.0);
}

TEST(Analysis, PairwiseAgreementAllTiedIsHalf) {
  const std::vector<double> flat{1, 1, 1};
  EXPECT_DOUBLE_EQ(pairwise_agreement(flat, kAscending.size() == 5
                                                ? std::vector<double>{2, 2, 2}
                                                : std::vector<double>{}),
                   0.5);
}

TEST(Analysis, ShortSeriesReturnZero) {
  const std::vector<double> one{1.0};
  EXPECT_DOUBLE_EQ(spearman(one, one), 0.0);
  EXPECT_DOUBLE_EQ(kendall_tau(one, one), 0.0);
}

}  // namespace
}  // namespace numaio::model
