// End-to-end checks of the paper's central claims, exercised through the
// full public workflow: STREAM characterization, Algorithm 1, fio
// measurements, rank analysis, prediction, scheduling.
#include <gtest/gtest.h>

#include "io/testbed.h"
#include "mem/membench.h"
#include "model/analysis.h"
#include "model/classify.h"
#include "model/predictor.h"

namespace numaio {
namespace {

class PaperClaims : public ::testing::Test {
 protected:
  PaperClaims() : testbed_(io::Testbed::dl585()), fio_(testbed_.host()) {}

  std::vector<double> io_per_node(const std::string& engine) {
    std::vector<double> out;
    for (topo::NodeId node = 0; node < 8; ++node) {
      io::FioJob j;
      const bool is_ssd = engine.rfind("ssd", 0) == 0;
      j.devices = is_ssd ? testbed_.ssds()
                         : std::vector<const io::PcieDevice*>{&testbed_.nic()};
      j.engine = engine;
      j.cpu_node = node;
      j.num_streams = 4;
      out.push_back(fio_.run(j).aggregate);
    }
    return out;
  }

  io::Testbed testbed_;
  io::FioRunner fio_;
};

TEST_F(PaperClaims, MemcpyModelRanksEveryWriteEngineWell) {
  // Table IV's claim: the device-write memcpy model lands the same
  // classes as TCP send, RDMA_WRITE and SSD write.
  const auto model =
      model::build_iomodel(testbed_.host(), 7,
                           model::Direction::kDeviceWrite);
  for (const char* engine :
       {io::kTcpSend, io::kRdmaWrite, io::kSsdWrite}) {
    const auto io = io_per_node(engine);
    // TCP's rank agreement is dented by the node-7 interrupt-contention
    // inversion (the paper's own Fig-5 observation that node 6 beats the
    // local node), so the full-vector threshold is modest; the offloaded
    // engines agree strongly.
    const double floor =
        std::string(engine) == io::kTcpSend ? 0.40 : 0.55;
    EXPECT_GT(model::spearman(model.bw, io), floor) << engine;
    // The binary separation that matters operationally: the model's
    // bottom class ({2,3}) is the measurement's bottom class.
    const double weakest_model = std::min(model.bw[2], model.bw[3]);
    for (topo::NodeId i : {0, 1, 4, 5, 6, 7}) {
      EXPECT_GT(model.bw[static_cast<std::size_t>(i)], weakest_model)
          << engine;
      EXPECT_GT(io[static_cast<std::size_t>(i)],
                std::min(io[2], io[3]) - 1e-9)
          << engine;
    }
  }
}

TEST_F(PaperClaims, MemcpyModelRanksReadEnginesWell) {
  const auto model = model::build_iomodel(testbed_.host(), 7,
                                          model::Direction::kDeviceRead);
  for (const char* engine : {io::kRdmaRead, io::kSsdRead}) {
    const auto io = io_per_node(engine);
    EXPECT_GT(model::spearman(model.bw, io), 0.6) << engine;
  }
}

TEST_F(PaperClaims, StreamModelsFailForRdmaRead) {
  // §IV-B2: RDMA_READ "does not match with neither the CPU centric model
  // nor memory centric model".
  mem::StreamConfig config;
  const auto cpu_model = mem::cpu_centric(testbed_.host(), 7, config);
  const auto mem_model = mem::memory_centric(testbed_.host(), 7, config);
  const auto rdma_read = io_per_node(io::kRdmaRead);

  const auto read_model = model::build_iomodel(
      testbed_.host(), 7, model::Direction::kDeviceRead);
  const double proposed = model::spearman(read_model.bw, rdma_read);
  EXPECT_GT(proposed, model::spearman(cpu_model, rdma_read) + 0.3);
  EXPECT_GT(proposed, model::spearman(mem_model, rdma_read) + 0.3);
}

TEST_F(PaperClaims, StreamRanksZeroOneAboveTwoThreeButRdmaReadInverts) {
  // The paper's sharpest mismatch example, in one assertion.
  mem::StreamConfig config;
  const auto mem_model = mem::memory_centric(testbed_.host(), 7, config);
  const auto rdma_read = io_per_node(io::kRdmaRead);
  EXPECT_GT((mem_model[0] + mem_model[1]) / 2,
            (mem_model[2] + mem_model[3]) / 2 * 1.3);
  EXPECT_LT((rdma_read[0] + rdma_read[1]) / 2,
            (rdma_read[2] + rdma_read[3]) / 2 * 0.9);
}

TEST_F(PaperClaims, TcpSendFollowsCpuCentricShape) {
  // §IV-B1: "TCP send performance ... is close to that in the CPU centric
  // model" — at least in rank terms, and closer than the memory-centric
  // alternative is to RDMA_READ-style inversions.
  mem::StreamConfig config;
  const auto cpu_model = mem::cpu_centric(testbed_.host(), 7, config);
  const auto tcp_send = io_per_node(io::kTcpSend);
  EXPECT_GT(model::spearman(cpu_model, tcp_send), 0.4);
  // Excluding the interrupt-loaded device node itself, the agreement is
  // strong.
  std::vector<double> cpu_no7(cpu_model.begin(), cpu_model.end() - 1);
  std::vector<double> tcp_no7(tcp_send.begin(), tcp_send.end() - 1);
  EXPECT_GT(model::spearman(cpu_no7, tcp_no7), 0.6);
}

TEST_F(PaperClaims, HalvedCharacterizationCostStillPredicts) {
  // §V-A cost reduction: probing one node per class must reproduce the
  // full sweep's class averages.
  const auto model = model::build_iomodel(testbed_.host(), 7,
                                          model::Direction::kDeviceRead);
  const auto classes = model::classify(model, testbed_.machine().topology());
  const auto reps = model::representative_nodes(classes);
  EXPECT_EQ(reps.size(), 4u);  // 4 probes instead of 8: cost halves

  const auto full = io_per_node(io::kRdmaRead);
  for (std::size_t c = 0; c < reps.size(); ++c) {
    io::FioJob j;
    j.devices = {&testbed_.nic()};
    j.engine = io::kRdmaRead;
    j.cpu_node = reps[c];
    j.num_streams = 4;
    const double probe = fio_.run(j).aggregate;
    for (topo::NodeId member : classes.classes[c]) {
      EXPECT_NEAR(full[static_cast<std::size_t>(member)], probe,
                  0.05 * probe)
          << "class " << c << " member " << member;
    }
  }
}

TEST_F(PaperClaims, WholeWorkflowIsDeterministic) {
  io::Testbed other = io::Testbed::dl585();
  const auto m1 = model::build_iomodel(testbed_.host(), 7,
                                       model::Direction::kDeviceWrite);
  const auto m2 = model::build_iomodel(other.host(), 7,
                                       model::Direction::kDeviceWrite);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(m1.bw[i], m2.bw[i]);
}

}  // namespace
}  // namespace numaio
