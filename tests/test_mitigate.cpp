#include "model/mitigate.h"

#include <gtest/gtest.h>

#include "io/testbed.h"
#include "model/predictor.h"

namespace numaio::model {
namespace {

class MitigateTest : public ::testing::Test {
 protected:
  MitigateTest()
      : tb_(io::Testbed::dl585()),
        model_(build_iomodel(tb_.host(), 7, Direction::kDeviceRead)),
        classes_(classify(model_, tb_.machine().topology())),
        fio_(tb_.host()) {
    for (NodeId rep : representative_nodes(classes_)) {
      io::FioJob j;
      j.devices = {&tb_.nic()};
      j.engine = io::kRdmaRead;
      j.cpu_node = rep;
      j.num_streams = 4;
      class_values_.push_back(fio_.run(j).aggregate);
    }
  }

  io::Testbed tb_;
  IoModelResult model_;
  Classification classes_;
  io::FioRunner fio_;
  std::vector<sim::Gbps> class_values_;
};

TEST_F(MitigateTest, BestClassProcessesKeepLocalBuffers) {
  const std::vector<NodeId> procs{6, 7};
  const auto plan =
      plan_buffer_policies(classes_, class_values_, procs);
  for (const auto& p : plan.processes) {
    EXPECT_EQ(p.policy, nm::Policy{});
    EXPECT_EQ(p.buffer_class, 0);
  }
  EXPECT_DOUBLE_EQ(plan.predicted_aggregate, plan.baseline_aggregate);
}

TEST_F(MitigateTest, WeakClassProcessesGetMembind) {
  // Nodes {0, 4} sit in RDMA_READ classes 3 and 4; the plan re-homes
  // their buffers to class 1's first node.
  const std::vector<NodeId> procs{0, 4};
  const auto plan =
      plan_buffer_policies(classes_, class_values_, procs);
  for (const auto& p : plan.processes) {
    EXPECT_EQ(p.policy.mode, nm::MemMode::kBind);
    EXPECT_EQ(p.policy.mem_nodes, (std::vector<NodeId>{6}));
    EXPECT_EQ(p.buffer_class, 0);
  }
  EXPECT_GT(plan.predicted_aggregate, plan.baseline_aggregate * 1.1);
}

TEST_F(MitigateTest, PredictionUsesEquationOneArithmetic) {
  const std::vector<NodeId> procs{0, 6};
  const auto plan =
      plan_buffer_policies(classes_, class_values_, procs);
  // Baseline: mean of class values of classes(0) and classes(6).
  const double expect_base =
      (class_values_[static_cast<std::size_t>(
           classes_.class_of[0])] +
       class_values_[0]) /
      2.0;
  EXPECT_NEAR(plan.baseline_aggregate, expect_base, 1e-9);
}

TEST_F(MitigateTest, MeasuredImprovementMatchesThePlanDirection) {
  // Validate with real runs: 4 RDMA_READ streams from node 4 (16.1 class)
  // with local buffers vs the planned membind.
  const std::vector<NodeId> procs{4};
  const auto plan =
      plan_buffer_policies(classes_, class_values_, procs);
  io::FioJob j;
  j.devices = {&tb_.nic()};
  j.engine = io::kRdmaRead;
  j.cpu_node = 4;
  j.num_streams = 4;
  const double baseline = fio_.run(j).aggregate;
  j.mem_policy = plan.processes.front().policy;
  const double mitigated = fio_.run(j).aggregate;
  EXPECT_NEAR(baseline, 16.1, 0.3);
  EXPECT_NEAR(mitigated, 22.0, 0.3);
  EXPECT_NEAR(mitigated, plan.processes.front().predicted, 0.5);
}

TEST_F(MitigateTest, MixedFleetImprovesAggregate) {
  const std::vector<NodeId> procs{0, 1, 4, 5};
  const auto plan =
      plan_buffer_policies(classes_, class_values_, procs);
  std::vector<io::FioJob> baseline_jobs, planned_jobs;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    io::FioJob j;
    j.devices = {&tb_.nic()};
    j.engine = io::kRdmaRead;
    j.cpu_node = procs[i];
    j.num_streams = 1;
    baseline_jobs.push_back(j);
    j.mem_policy = plan.processes[i].policy;
    planned_jobs.push_back(j);
  }
  const double base =
      io::combined_aggregate(fio_.run_concurrent(baseline_jobs));
  const double planned =
      io::combined_aggregate(fio_.run_concurrent(planned_jobs));
  EXPECT_GT(planned, base * 1.1);
}

}  // namespace
}  // namespace numaio::model
