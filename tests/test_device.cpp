#include "io/device.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "io/nic.h"
#include "io/ssd.h"

namespace numaio::io {
namespace {

TEST(Pcie, Gen2x8Gives32GbpsData) {
  // §IV-B1: 40 Gbps raw minus 8b/10b encoding = 32 Gbps.
  const PcieLink link{2, 8};
  EXPECT_DOUBLE_EQ(link.data_gbps(), 32.0);
}

TEST(Pcie, Gen1HalvesTheRate) {
  EXPECT_DOUBLE_EQ((PcieLink{1, 8}.data_gbps()), 16.0);
}

TEST(Pcie, Gen3UsesEfficientEncoding) {
  EXPECT_NEAR((PcieLink{3, 8}.data_gbps()), 63.0, 0.1);
}

class DeviceTest : public ::testing::Test {
 protected:
  fabric::Machine machine_{fabric::dl585_profile()};
};

TEST_F(DeviceTest, NicHasFourEngines) {
  auto nic = make_connectx3(machine_, 7);
  EXPECT_TRUE(nic->has_engine(kTcpSend));
  EXPECT_TRUE(nic->has_engine(kTcpRecv));
  EXPECT_TRUE(nic->has_engine(kRdmaWrite));
  EXPECT_TRUE(nic->has_engine(kRdmaRead));
  EXPECT_FALSE(nic->has_engine("udp"));
  EXPECT_EQ(nic->attach_node(), 7);
  EXPECT_EQ(nic->name(), "mlx4_0");
}

TEST_F(DeviceTest, UnknownEngineThrows) {
  auto nic = make_connectx3(machine_, 7);
  EXPECT_THROW(nic->engine("udp"), std::out_of_range);
  EXPECT_THROW(nic->engine_resource("udp"), std::out_of_range);
}

TEST_F(DeviceTest, EngineCapsMatchPaperCeilings) {
  auto nic = make_connectx3(machine_, 7);
  EXPECT_DOUBLE_EQ(nic->engine(kRdmaWrite).device_cap, 23.3);
  EXPECT_DOUBLE_EQ(nic->engine(kRdmaRead).device_cap, 22.0);
  EXPECT_LT(nic->engine(kTcpSend).device_cap,
            nic->engine(kRdmaWrite).device_cap);
}

TEST_F(DeviceTest, EngineDirections) {
  auto nic = make_connectx3(machine_, 7);
  EXPECT_TRUE(nic->engine(kTcpSend).to_device);
  EXPECT_FALSE(nic->engine(kTcpRecv).to_device);
  EXPECT_TRUE(nic->engine(kRdmaWrite).to_device);
  EXPECT_FALSE(nic->engine(kRdmaRead).to_device);
}

TEST_F(DeviceTest, RdmaOffloadsCpuWork) {
  auto nic = make_connectx3(machine_, 7);
  EXPECT_LT(nic->engine(kRdmaWrite).cpu_app_per_gbps,
            0.1 * nic->engine(kTcpSend).cpu_app_per_gbps);
}

TEST_F(DeviceTest, PcieResourcesRegisteredPerDirection) {
  auto nic = make_connectx3(machine_, 7);
  auto& solver = machine_.solver();
  EXPECT_DOUBLE_EQ(solver.capacity(nic->pcie_resource(true)), 32.0);
  EXPECT_DOUBLE_EQ(solver.capacity(nic->pcie_resource(false)), 32.0);
  EXPECT_NE(nic->pcie_resource(true), nic->pcie_resource(false));
}

TEST_F(DeviceTest, EngineOccupancyIsNormalized) {
  auto nic = make_connectx3(machine_, 7);
  EXPECT_DOUBLE_EQ(
      machine_.solver().capacity(nic->engine_resource(kTcpSend)), 1.0);
}

TEST_F(DeviceTest, SsdPairCombinedCapsMatchPaper) {
  auto pair = make_nytro_pair(machine_, 7);
  ASSERT_EQ(pair.size(), 2u);
  const double write_total = pair[0]->engine(kSsdWrite).device_cap +
                             pair[1]->engine(kSsdWrite).device_cap;
  const double read_total = pair[0]->engine(kSsdRead).device_cap +
                            pair[1]->engine(kSsdRead).device_cap;
  EXPECT_NEAR(write_total, 29.1, 1e-9);
  EXPECT_NEAR(read_total, 34.7, 1e-9);
  EXPECT_NE(pair[0]->name(), pair[1]->name());
}

TEST_F(DeviceTest, ResidualLookup) {
  auto pair = make_nytro_pair(machine_, 7);
  const EngineSpec& read = pair[0]->engine(kSsdRead);
  EXPECT_DOUBLE_EQ(read.residual_for(4), 0.70);
  EXPECT_DOUBLE_EQ(read.residual_for(6), 1.0);
}

TEST_F(DeviceTest, DeviceOnSecondIoHubWorks) {
  auto nic = make_connectx3(machine_, 1);
  EXPECT_EQ(nic->attach_node(), 1);
}

}  // namespace
}  // namespace numaio::io
