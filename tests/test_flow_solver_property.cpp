// Randomized property tests of the max-min-fair allocator: for seeded
// random resource networks, the solution must be feasible, and satisfy
// the bottleneck condition that characterizes max-min fairness (every
// flow is limited by its own cap, or crosses a saturated resource on
// which it has a maximal rate).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "simcore/flow_solver.h"
#include "simcore/rng.h"

namespace numaio::sim {
namespace {

struct Instance {
  FlowSolver solver;
  std::vector<ResourceId> resources;
  std::vector<FlowId> flows;
  std::vector<std::vector<ResourceId>> paths;  // per flow
};

/// Random network: 3-8 resources with capacities in [5, 50], 2-13 flows
/// over 1-3 distinct resources, ~half the flows carrying a private cap.
Instance random_instance(std::uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  const std::uint64_t R = 3 + rng.below(6);
  const std::uint64_t F = 2 + rng.below(12);
  for (std::uint64_t r = 0; r < R; ++r) {
    inst.resources.push_back(
        inst.solver.add_resource("r", rng.uniform(5.0, 50.0)));
  }
  for (std::uint64_t f = 0; f < F; ++f) {
    const std::uint64_t hops = 1 + rng.below(3);
    std::vector<ResourceId> path;
    for (std::uint64_t h = 0; h < hops; ++h) {
      const ResourceId r = inst.resources[rng.below(inst.resources.size())];
      if (std::find(path.begin(), path.end(), r) == path.end()) {
        path.push_back(r);
      }
    }
    const Gbps cap =
        rng.uniform() < 0.5 ? rng.uniform(1.0, 30.0) : kUnlimited;
    inst.flows.push_back(inst.solver.add_flow_over(path, cap));
    inst.paths.push_back(std::move(path));
  }
  return inst;
}

class SolverProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverProperty, FeasibleAndBottleneckFair) {
  const Instance inst = random_instance(GetParam());
  const auto rates = inst.solver.solve();
  constexpr double kEps = 1e-7;

  // Per-resource load from the known paths.
  std::vector<double> load(inst.resources.size(), 0.0);
  for (std::size_t fi = 0; fi < inst.flows.size(); ++fi) {
    EXPECT_LE(rates[inst.flows[fi]],
              inst.solver.flow_cap(inst.flows[fi]) + kEps);
    EXPECT_GE(rates[inst.flows[fi]], 0.0);
    for (ResourceId r : inst.paths[fi]) {
      const auto idx = static_cast<std::size_t>(
          std::find(inst.resources.begin(), inst.resources.end(), r) -
          inst.resources.begin());
      load[idx] += rates[inst.flows[fi]];
    }
  }
  // Feasibility.
  for (std::size_t r = 0; r < inst.resources.size(); ++r) {
    const double cap = inst.solver.capacity(inst.resources[r]);
    EXPECT_LE(load[r], cap + 1e-6 * std::max(1.0, cap));
  }

  // Bottleneck condition.
  for (std::size_t fi = 0; fi < inst.flows.size(); ++fi) {
    const FlowId f = inst.flows[fi];
    const bool capped = std::isfinite(inst.solver.flow_cap(f)) &&
                        rates[f] >= inst.solver.flow_cap(f) - kEps;
    if (capped) continue;
    bool bottlenecked = false;
    for (ResourceId r : inst.paths[fi]) {
      const auto idx = static_cast<std::size_t>(
          std::find(inst.resources.begin(), inst.resources.end(), r) -
          inst.resources.begin());
      const double cap = inst.solver.capacity(inst.resources[idx]);
      const bool saturated =
          load[idx] >= cap - 1e-6 * std::max(1.0, cap);
      if (!saturated) continue;
      // f must have a maximal rate among flows crossing r.
      double max_rate = 0.0;
      for (std::size_t gi = 0; gi < inst.flows.size(); ++gi) {
        if (std::find(inst.paths[gi].begin(), inst.paths[gi].end(), r) !=
            inst.paths[gi].end()) {
          max_rate = std::max(max_rate, rates[inst.flows[gi]]);
        }
      }
      if (rates[f] >= max_rate - 1e-6) {
        bottlenecked = true;
        break;
      }
    }
    EXPECT_TRUE(bottlenecked)
        << "seed " << GetParam() << " flow " << f << " rate " << rates[f];
  }
}

TEST_P(SolverProperty, RemovingAFlowRaisesTheMinimum) {
  // Individual flows CAN lose from a removal (a competitor that was held
  // back elsewhere may claim its fair share), but max-min maximizes the
  // minimum: the worst-off remaining flow never gets worse.
  Instance inst = random_instance(GetParam());
  const auto before = inst.solver.solve();
  if (inst.flows.size() < 2) return;
  double min_before = kUnlimited;
  for (std::size_t fi = 1; fi < inst.flows.size(); ++fi) {
    min_before = std::min(min_before, before[inst.flows[fi]]);
  }
  inst.solver.remove_flow(inst.flows.front());
  const auto after = inst.solver.solve();
  double min_after = kUnlimited;
  for (std::size_t fi = 1; fi < inst.flows.size(); ++fi) {
    min_after = std::min(min_after, after[inst.flows[fi]]);
  }
  EXPECT_GE(min_after, min_before - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, SolverProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace numaio::sim
