// Randomized property tests of the max-min-fair allocator: for seeded
// random resource networks, the solution must be feasible, and satisfy
// the bottleneck condition that characterizes max-min fairness (every
// flow is limited by its own cap, or crosses a saturated resource on
// which it has a maximal rate).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "reference_flow_solver.h"
#include "simcore/flow_solver.h"
#include "simcore/rng.h"

namespace numaio::sim {
namespace {

struct Instance {
  FlowSolver solver;
  std::vector<ResourceId> resources;
  std::vector<FlowId> flows;
  std::vector<std::vector<ResourceId>> paths;  // per flow
};

/// Random network: 3-8 resources with capacities in [5, 50], 2-13 flows
/// over 1-3 distinct resources, ~half the flows carrying a private cap.
Instance random_instance(std::uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  const std::uint64_t R = 3 + rng.below(6);
  const std::uint64_t F = 2 + rng.below(12);
  for (std::uint64_t r = 0; r < R; ++r) {
    inst.resources.push_back(
        inst.solver.add_resource("r", rng.uniform(5.0, 50.0)));
  }
  for (std::uint64_t f = 0; f < F; ++f) {
    const std::uint64_t hops = 1 + rng.below(3);
    std::vector<ResourceId> path;
    for (std::uint64_t h = 0; h < hops; ++h) {
      const ResourceId r = inst.resources[rng.below(inst.resources.size())];
      if (std::find(path.begin(), path.end(), r) == path.end()) {
        path.push_back(r);
      }
    }
    const Gbps cap =
        rng.uniform() < 0.5 ? rng.uniform(1.0, 30.0) : kUnlimited;
    inst.flows.push_back(inst.solver.add_flow_over(path, cap));
    inst.paths.push_back(std::move(path));
  }
  return inst;
}

class SolverProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverProperty, FeasibleAndBottleneckFair) {
  const Instance inst = random_instance(GetParam());
  const auto rates = inst.solver.solve();
  constexpr double kEps = 1e-7;

  // Per-resource load from the known paths.
  std::vector<double> load(inst.resources.size(), 0.0);
  for (std::size_t fi = 0; fi < inst.flows.size(); ++fi) {
    EXPECT_LE(rates[inst.flows[fi]],
              inst.solver.flow_cap(inst.flows[fi]) + kEps);
    EXPECT_GE(rates[inst.flows[fi]], 0.0);
    for (ResourceId r : inst.paths[fi]) {
      const auto idx = static_cast<std::size_t>(
          std::find(inst.resources.begin(), inst.resources.end(), r) -
          inst.resources.begin());
      load[idx] += rates[inst.flows[fi]];
    }
  }
  // Feasibility.
  for (std::size_t r = 0; r < inst.resources.size(); ++r) {
    const double cap = inst.solver.capacity(inst.resources[r]);
    EXPECT_LE(load[r], cap + 1e-6 * std::max(1.0, cap));
  }

  // Bottleneck condition.
  for (std::size_t fi = 0; fi < inst.flows.size(); ++fi) {
    const FlowId f = inst.flows[fi];
    const bool capped = std::isfinite(inst.solver.flow_cap(f)) &&
                        rates[f] >= inst.solver.flow_cap(f) - kEps;
    if (capped) continue;
    bool bottlenecked = false;
    for (ResourceId r : inst.paths[fi]) {
      const auto idx = static_cast<std::size_t>(
          std::find(inst.resources.begin(), inst.resources.end(), r) -
          inst.resources.begin());
      const double cap = inst.solver.capacity(inst.resources[idx]);
      const bool saturated =
          load[idx] >= cap - 1e-6 * std::max(1.0, cap);
      if (!saturated) continue;
      // f must have a maximal rate among flows crossing r.
      double max_rate = 0.0;
      for (std::size_t gi = 0; gi < inst.flows.size(); ++gi) {
        if (std::find(inst.paths[gi].begin(), inst.paths[gi].end(), r) !=
            inst.paths[gi].end()) {
          max_rate = std::max(max_rate, rates[inst.flows[gi]]);
        }
      }
      if (rates[f] >= max_rate - 1e-6) {
        bottlenecked = true;
        break;
      }
    }
    EXPECT_TRUE(bottlenecked)
        << "seed " << GetParam() << " flow " << f << " rate " << rates[f];
  }
}

TEST_P(SolverProperty, RemovingAFlowRaisesTheMinimum) {
  // Individual flows CAN lose from a removal (a competitor that was held
  // back elsewhere may claim its fair share), but max-min maximizes the
  // minimum: the worst-off remaining flow never gets worse.
  Instance inst = random_instance(GetParam());
  const auto before = inst.solver.solve();
  if (inst.flows.size() < 2) return;
  double min_before = kUnlimited;
  for (std::size_t fi = 1; fi < inst.flows.size(); ++fi) {
    min_before = std::min(min_before, before[inst.flows[fi]]);
  }
  inst.solver.remove_flow(inst.flows.front());
  const auto after = inst.solver.solve();
  double min_after = kUnlimited;
  for (std::size_t fi = 1; fi < inst.flows.size(); ++fi) {
    min_after = std::min(min_after, after[inst.flows[fi]]);
  }
  EXPECT_GE(min_after, min_before - 1e-9);
}

// The CSR solver must produce *bit-identical* rates to the retained
// pre-CSR reference implementation (tests/reference_flow_solver.h) under
// arbitrary churn: slot recycling, incidence-list freezing and the
// touched-resource delta scan must not change a single floating-point
// operation's order. The reference never reuses ids, so a mapping from
// production FlowId (recycled slots) to reference id rides along.
TEST_P(SolverProperty, ChurnMatchesReferenceBitForBit) {
  Rng rng(GetParam() * 7919 + 13);
  FlowSolver solver;
  test::ReferenceFlowSolver ref;

  std::vector<ResourceId> resources;
  const std::uint64_t R = 4 + rng.below(5);
  for (std::uint64_t r = 0; r < R; ++r) {
    const Gbps cap = rng.uniform(5.0, 50.0);
    resources.push_back(solver.add_resource("r", cap));
    const ResourceId ref_r = ref.add_resource(cap);
    ASSERT_EQ(ref_r, resources.back());
  }

  auto random_usages = [&] {
    // Duplicate resources and non-unit weights are deliberate: they
    // exercise weight accumulation and release order.
    const std::uint64_t n = 1 + rng.below(3);
    std::vector<Usage> usages;
    for (std::uint64_t i = 0; i < n; ++i) {
      usages.push_back(Usage{resources[rng.below(resources.size())],
                             rng.uniform(0.1, 2.0)});
    }
    return usages;
  };

  struct LiveFlow {
    FlowId id;           // production id (may be a recycled slot)
    std::size_t ref_id;  // reference id (never recycled)
  };
  std::vector<LiveFlow> live;  // in insertion order

  const auto compare = [&] {
    const auto& rates = solver.solve();
    const auto ref_rates = ref.solve();
    for (const LiveFlow& l : live) {
      ASSERT_EQ(rates[l.id], ref_rates[l.ref_id])
          << "seed " << GetParam() << " flow slot " << l.id;
    }
    EXPECT_EQ(solver.aggregate_rate(), ref.aggregate_rate());
    const std::size_t probe = rng.below(resources.size());
    EXPECT_EQ(solver.utilization(resources[probe]),
              ref.utilization(resources[probe]));
  };

  for (int op = 0; op < 80; ++op) {
    const std::uint64_t kind = rng.below(4);
    if (kind == 0 || live.empty()) {
      auto usages = random_usages();
      const Gbps cap =
          rng.uniform() < 0.5 ? rng.uniform(1.0, 30.0) : kUnlimited;
      const std::size_t ref_id = ref.add_flow(usages, cap);
      live.push_back(LiveFlow{solver.add_flow(std::move(usages), cap), ref_id});
    } else if (kind == 1) {
      const std::size_t k = rng.below(live.size());
      solver.remove_flow(live[k].id);
      ref.remove_flow(live[k].ref_id);
      // Order-preserving erase: both solvers iterate live flows in
      // insertion order, so the mapping must preserve it too.
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    } else if (kind == 2) {
      const std::size_t r = rng.below(resources.size());
      const Gbps cap = rng.uniform(5.0, 50.0);
      solver.set_capacity(resources[r], cap);
      ref.set_capacity(resources[r], cap);
    } else {
      const std::size_t k = rng.below(live.size());
      const Gbps cap = rng.uniform(1.0, 30.0);
      solver.set_flow_cap(live[k].id, cap);
      ref.set_flow_cap(live[k].ref_id, cap);
    }
    if (op % 3 == 0) compare();
  }
  compare();
}

// Bulk removal is contracted to be bit-identical to the equivalent
// remove_flow sequence while paying exactly one epoch bump — the batched
// admission path leans on both halves (a same-instant completion burst
// must neither perturb rates nor re-solve per flow).
TEST_P(SolverProperty, BulkRemovalMatchesSequentialBitForBit) {
  Instance bulk = random_instance(GetParam());
  Instance seq = random_instance(GetParam());
  Rng rng(GetParam() * 6151 + 7);

  // Random subset to remove, with a duplicate and an already-dead id
  // mixed in: remove_flows must skip both without counting them.
  std::vector<FlowId> victims;
  for (const FlowId f : bulk.flows) {
    if (rng.uniform() < 0.5) victims.push_back(f);
  }
  if (victims.empty()) victims.push_back(bulk.flows.front());
  victims.push_back(victims.front());  // duplicate
  const FlowId dead = bulk.flows.back();
  const bool kill_one = std::find(victims.begin(), victims.end(), dead) ==
                        victims.end();
  std::size_t expected = victims.size() - 1;
  if (kill_one) {
    ASSERT_TRUE(bulk.solver.remove_flow(dead).ok());
    ASSERT_TRUE(seq.solver.remove_flow(dead).ok());
    victims.push_back(dead);
  }

  const std::uint64_t epoch_before = bulk.solver.epoch();
  EXPECT_EQ(bulk.solver.remove_flows(victims), expected);
  EXPECT_EQ(bulk.solver.epoch(), epoch_before + 1);
  for (const FlowId f : victims) seq.solver.remove_flow(f);

  const auto& bulk_rates = bulk.solver.solve();
  const auto& seq_rates = seq.solver.solve();
  for (const FlowId f : bulk.flows) {
    EXPECT_EQ(bulk.solver.flow_alive(f), seq.solver.flow_alive(f));
    if (!bulk.solver.flow_alive(f)) continue;
    ASSERT_EQ(bulk_rates[f], seq_rates[f])
        << "seed " << GetParam() << " flow " << f;
  }
  EXPECT_EQ(bulk.solver.aggregate_rate(), seq.solver.aggregate_rate());

  // Removing nothing (all dead / empty) keeps the solve cache warm.
  const std::uint64_t warm = bulk.solver.epoch();
  EXPECT_EQ(bulk.solver.remove_flows(victims), 0u);
  const std::vector<FlowId> none;
  EXPECT_EQ(bulk.solver.remove_flows(none), 0u);
  EXPECT_EQ(bulk.solver.epoch(), warm);
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, SolverProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace numaio::sim
