#include <gtest/gtest.h>

#include <stdexcept>

#include "fabric/machine.h"
#include "topo/presets.h"
#include "topo/routing.h"

namespace numaio::topo {
namespace {

TEST(Generators, FullyConnectedHasDiameterOne) {
  const Topology t = make_fully_connected(4);
  const Routing r(t, Routing::Metric::kHops);
  EXPECT_EQ(r.diameter(), 1);
  EXPECT_EQ(t.links().size(), 6u);
}

TEST(Generators, FullyConnectedRespectsPortBudget) {
  // 5 nodes x 16-bit links = 4 ports on each node + an I/O hub on node 0
  // would bust the budget; narrower links fit.
  EXPECT_THROW(make_fully_connected(6), std::invalid_argument);
  EXPECT_NO_THROW(make_fully_connected(6, 8.0));
}

TEST(Generators, RingDiameterIsHalfTheNodes) {
  const Topology t = make_ring(8);
  const Routing r(t, Routing::Metric::kHops);
  EXPECT_EQ(r.diameter(), 4);
  EXPECT_EQ(t.links().size(), 8u);
}

TEST(Generators, ChordedRingShrinksTheDiameter) {
  const Topology ring = make_ring(8);
  const Topology chorded = make_chorded_ring(8);
  EXPECT_LT(Routing(chorded, Routing::Metric::kHops).diameter(),
            Routing(ring, Routing::Metric::kHops).diameter());
}

TEST(Generators, DerivedProfilesRunTheMethodology) {
  // The generators exist so the methodology can run on arbitrary shapes.
  fabric::Machine machine{fabric::derived_profile(make_chorded_ring(8))};
  EXPECT_EQ(machine.num_nodes(), 8);
  EXPECT_GT(machine.path(0, 4).dma_cap, 0.0);
}

// --- pair profile (two hosts in one network) ------------------------------

TEST(PairProfile, DoublesTheHost) {
  const fabric::HostProfile single = fabric::dl585_profile();
  const fabric::HostProfile pair = fabric::pair_profile(single);
  EXPECT_EQ(pair.num_nodes(), 16);
  EXPECT_EQ(pair.topo.num_packages(), 8);
  EXPECT_EQ(pair.name, "hp-dl585-g7-pair");
  EXPECT_FALSE(pair.link_level_contention);
}

TEST(PairProfile, BlocksMirrorAndCrossBlockIsAbsurd) {
  const fabric::HostProfile single = fabric::dl585_profile();
  const fabric::HostProfile pair = fabric::pair_profile(single);
  EXPECT_DOUBLE_EQ(pair.paths.at(10, 15).dma_cap,
                   single.paths.at(2, 7).dma_cap);
  EXPECT_LT(pair.paths.at(3, 11).dma_cap, 0.1);
  EXPECT_GT(pair.paths.at(3, 11).dma_lat, 1e8);
}

TEST(PairProfile, HostBKeepsIoHubs) {
  const fabric::HostProfile pair =
      fabric::pair_profile(fabric::dl585_profile());
  const auto hubs = pair.topo.io_hub_nodes();
  EXPECT_EQ(hubs, (std::vector<NodeId>{1, 7, 9, 15}));
}

TEST(PairProfile, PeerNodeMapping) {
  const fabric::HostProfile single = fabric::dl585_profile();
  EXPECT_EQ(fabric::pair_peer_node(single, 0), 8);
  EXPECT_EQ(fabric::pair_peer_node(single, 7), 15);
}

}  // namespace
}  // namespace numaio::topo
