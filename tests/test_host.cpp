#include "nm/host.h"

#include <gtest/gtest.h>

#include <new>

#include "nm/hwloc_view.h"
#include "topo/presets.h"

namespace numaio::nm {
namespace {

class HostTest : public ::testing::Test {
 protected:
  fabric::Machine machine_{fabric::dl585_profile()};
  Host host_{machine_};
};

TEST_F(HostTest, EnumerationMatchesTableII) {
  EXPECT_EQ(host_.num_configured_nodes(), 8);
  EXPECT_EQ(host_.num_configured_cores(), 32);
  EXPECT_EQ(host_.cores_on_node(3), 4);
  EXPECT_EQ(host_.node_size_bytes(0), 4 * sim::kGiB);
}

TEST_F(HostTest, Node0HasLessFreeMemoryOnIdleSystem) {
  // §IV-A: "all nodes have almost 4GBytes free memory, except for the
  // first one with only 1.5GBytes".
  EXPECT_NEAR(static_cast<double>(host_.node_free_bytes(0)) / sim::kGiB,
              1.5, 0.01);
  for (NodeId i = 1; i < 8; ++i) {
    EXPECT_GT(host_.node_free_bytes(i), 3 * sim::kGiB) << i;
  }
}

TEST_F(HostTest, AllocOnNodeTracksFreeMemoryAndStats) {
  const auto before = host_.node_free_bytes(5);
  Buffer b = host_.alloc_on_node(64 * sim::kMiB, 5);
  EXPECT_EQ(host_.node_free_bytes(5), before - 64 * sim::kMiB);
  EXPECT_EQ(b.home(), 5);
  EXPECT_FALSE(b.interleaved());
  EXPECT_EQ(host_.stats().node(5).numa_hit, 1u);
  host_.free(b);
  EXPECT_EQ(host_.node_free_bytes(5), before);
  EXPECT_EQ(b.size, 0u);
}

TEST_F(HostTest, AllocOnFullNodeThrows) {
  EXPECT_THROW(host_.alloc_on_node(8 * sim::kGiB, 2), std::bad_alloc);
}

TEST_F(HostTest, LocalPreferredFallsBackWhenFull) {
  // Fill node 3, then a local-preferred allocation from node 3 must land
  // elsewhere and count as a miss + foreign.
  Buffer fill = host_.alloc_on_node(host_.node_free_bytes(3), 3);
  Buffer b = host_.alloc_local(16 * sim::kMiB, 3);
  EXPECT_NE(b.home(), 3);
  EXPECT_EQ(host_.stats().node(3).numa_foreign, 1u);
  EXPECT_EQ(host_.stats().node(b.home()).numa_miss, 1u);
  host_.free(b);
  host_.free(fill);
}

TEST_F(HostTest, InterleaveSpreadsAcrossAllNodes) {
  Buffer b = host_.alloc_interleaved(8 * sim::kMiB);
  EXPECT_TRUE(b.interleaved());
  EXPECT_EQ(b.placement.size(), 8u);
  sim::Bytes total = 0;
  for (const auto& [node, bytes] : b.placement) {
    EXPECT_EQ(bytes, sim::kMiB);
    EXPECT_EQ(host_.stats().node(node).interleave_hit, 1u);
    total += bytes;
  }
  EXPECT_EQ(total, b.size);
  host_.free(b);
}

TEST_F(HostTest, InterleaveOverSubsetWithRemainder) {
  const std::vector<NodeId> nodes{2, 5};
  Buffer b = host_.alloc_interleaved(3 * sim::kMiB + 1, nodes);
  ASSERT_EQ(b.placement.size(), 2u);
  EXPECT_EQ(b.placement[0].first, 2);
  EXPECT_EQ(b.placement[1].first, 5);
  EXPECT_EQ(b.placement[0].second + b.placement[1].second, b.size);
  host_.free(b);
}

TEST_F(HostTest, PolicyBindUsesFirstNodeWithRoom) {
  const Policy p = parse_numactl("--membind=2,4");
  Buffer b = host_.alloc_with_policy(32 * sim::kMiB, p, /*running=*/0);
  EXPECT_EQ(b.home(), 2);
  host_.free(b);
}

TEST_F(HostTest, PolicyBindFailsHardWhenSetIsFull) {
  Buffer fill = host_.alloc_on_node(host_.node_free_bytes(2), 2);
  const Policy p = parse_numactl("--membind=2");
  EXPECT_THROW(host_.alloc_with_policy(16 * sim::kMiB, p, 0),
               std::bad_alloc);
  host_.free(fill);
}

TEST_F(HostTest, PolicyPreferredFallsBackSoftly) {
  Buffer fill = host_.alloc_on_node(host_.node_free_bytes(2), 2);
  const Policy p = parse_numactl("--preferred=2");
  Buffer b = host_.alloc_with_policy(16 * sim::kMiB, p, 0);
  EXPECT_NE(b.home(), 2);
  host_.free(b);
  host_.free(fill);
}

TEST_F(HostTest, PolicyLocalFollowsCpuBind) {
  const Policy p = parse_numactl("--cpunodebind=6 --localalloc");
  Buffer b = host_.alloc_with_policy(16 * sim::kMiB, p, /*running=*/1);
  EXPECT_EQ(b.home(), 6);
  host_.free(b);
}

TEST_F(HostTest, HardwareReportShowsNode0Residency) {
  const std::string report = host_.hardware_report();
  EXPECT_NE(report.find("available: 8 nodes (0-7)"), std::string::npos);
  EXPECT_NE(report.find("node 0 free: 1536 MB"), std::string::npos);
  EXPECT_NE(report.find("node 7 free: 3993 MB"), std::string::npos);
  // Node-major core numbering: node 7 owns cores 28-31.
  EXPECT_NE(report.find("node 7 cpus: 28 29 30 31"), std::string::npos);
}

TEST_F(HostTest, ResetStatsClearsCounters) {
  Buffer b = host_.alloc_on_node(sim::kMiB, 1);
  host_.free(b);
  host_.reset_stats();
  EXPECT_EQ(host_.stats().node(1).numa_hit, 0u);
}

TEST_F(HostTest, StatsReportMentionsAllNodes) {
  const std::string report = host_.stats().report();
  EXPECT_NE(report.find("numa_hit"), std::string::npos);
  EXPECT_NE(report.find("node7"), std::string::npos);
}

TEST(HwlocView, ShowsHierarchyButNotWiring) {
  const auto topo = topo::dl585_g7();
  const std::string view = render_hwloc(topo);
  EXPECT_NE(view.find("Package P#3"), std::string::npos);
  EXPECT_NE(view.find("NUMANode N#7"), std::string::npos);
  EXPECT_NE(view.find("HostBridge"), std::string::npos);
  // hwloc's blind spot, stated explicitly (§II-B).
  EXPECT_NE(view.find("interconnect wiring is not part of this view"),
            std::string::npos);
  const std::string wiring = render_interconnect(topo);
  EXPECT_NE(wiring.find("6 <-> 7"), std::string::npos);
}

TEST(BufferHome, TiesResolveToLowestNode) {
  Buffer b;
  b.size = 2;
  b.placement = {{5, 1}, {3, 1}};
  EXPECT_EQ(b.home(), 3);
}

}  // namespace
}  // namespace numaio::nm
