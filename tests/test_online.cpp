#include "model/online.h"

#include <gtest/gtest.h>

#include "io/testbed.h"

namespace numaio::model {
namespace {

class OnlineTest : public ::testing::Test {
 protected:
  OnlineTest()
      : tb_(io::Testbed::dl585()),
        write_model_(build_iomodel(tb_.host(), 7, Direction::kDeviceWrite)),
        read_model_(build_iomodel(tb_.host(), 7, Direction::kDeviceRead)),
        write_classes_(classify(write_model_, tb_.machine().topology())),
        read_classes_(classify(read_model_, tb_.machine().topology())) {}

  std::vector<IoTask> workload(int n = 24) {
    WorkloadConfig c;
    c.num_tasks = n;
    c.engine_mix = {io::kRdmaWrite, io::kRdmaRead, io::kTcpSend,
                    io::kTcpRecv};
    return generate_workload(c);
  }

  OnlineReport run_policy(OnlinePolicy policy,
                          std::span<const IoTask> tasks) {
    OnlineConfig config;
    config.policy = policy;
    OnlineScheduler scheduler(tb_.host(), tb_.nic(), write_classes_,
                              read_classes_, config);
    return scheduler.run(tasks);
  }

  io::Testbed tb_;
  IoModelResult write_model_;
  IoModelResult read_model_;
  Classification write_classes_;
  Classification read_classes_;
};

TEST_F(OnlineTest, PolicyNames) {
  EXPECT_EQ(to_string(OnlinePolicy::kAllLocal), "all-local");
  EXPECT_EQ(to_string(OnlinePolicy::kModelAdaptive), "model-adaptive");
}

TEST_F(OnlineTest, AllTasksComplete) {
  const auto tasks = workload();
  const auto report = run_policy(OnlinePolicy::kModelAdaptive, tasks);
  ASSERT_EQ(report.tasks.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_GT(report.tasks[i].completion, tasks[i].arrival) << i;
  }
  EXPECT_GT(report.aggregate, 0.0);
  EXPECT_GT(report.makespan, 0.0);
}

TEST_F(OnlineTest, AllLocalPinsToDeviceNode) {
  const auto tasks = workload(8);
  const auto report = run_policy(OnlinePolicy::kAllLocal, tasks);
  for (const auto& t : report.tasks) EXPECT_EQ(t.first_node, 7);
  EXPECT_EQ(report.total_migrations, 0);
}

TEST_F(OnlineTest, SpreadStaysInsideThePools) {
  const auto tasks = workload();
  OnlineConfig config;
  config.policy = OnlinePolicy::kModelSpread;
  OnlineScheduler scheduler(tb_.host(), tb_.nic(), write_classes_,
                            read_classes_, config);
  const auto report = scheduler.run(tasks);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const bool write =
        tb_.nic().engine(tasks[i].engine).to_device;
    const auto& classes = write ? write_classes_ : read_classes_;
    // With the default 25% tolerance the weakest class stays excluded.
    const int cls = classes.class_of[static_cast<std::size_t>(
        report.tasks[i].first_node)];
    EXPECT_LT(cls, classes.num_classes() - 1) << i;
  }
}

TEST_F(OnlineTest, ModelPoliciesBeatAllLocalOnTurnaround) {
  const auto tasks = workload();
  const auto local = run_policy(OnlinePolicy::kAllLocal, tasks);
  const auto spread = run_policy(OnlinePolicy::kModelSpread, tasks);
  const auto adaptive = run_policy(OnlinePolicy::kModelAdaptive, tasks);
  EXPECT_LT(spread.mean_turnaround, local.mean_turnaround);
  EXPECT_LT(adaptive.mean_turnaround, local.mean_turnaround);
}

TEST_F(OnlineTest, AdaptivePolicyMigrates) {
  const auto tasks = workload();
  const auto adaptive = run_policy(OnlinePolicy::kModelAdaptive, tasks);
  EXPECT_GT(adaptive.total_migrations, 0);
  // Migration counts land in the per-task outcomes.
  int sum = 0;
  for (const auto& t : adaptive.tasks) sum += t.migrations;
  EXPECT_EQ(sum, adaptive.total_migrations);
}

TEST_F(OnlineTest, NonAdaptivePoliciesNeverMigrate) {
  const auto tasks = workload();
  EXPECT_EQ(run_policy(OnlinePolicy::kRoundRobin, tasks).total_migrations,
            0);
  EXPECT_EQ(run_policy(OnlinePolicy::kModelSpread, tasks).total_migrations,
            0);
}

TEST_F(OnlineTest, DeterministicRuns) {
  const auto tasks = workload();
  const auto a = run_policy(OnlinePolicy::kModelAdaptive, tasks);
  const auto b = run_policy(OnlinePolicy::kModelAdaptive, tasks);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_migrations, b.total_migrations);
}

TEST_F(OnlineTest, MemoryFullyReleased) {
  const auto before7 = tb_.host().node_free_bytes(7);
  const auto before0 = tb_.host().node_free_bytes(0);
  run_policy(OnlinePolicy::kModelAdaptive, workload(12));
  EXPECT_EQ(tb_.host().node_free_bytes(7), before7);
  EXPECT_EQ(tb_.host().node_free_bytes(0), before0);
}

TEST_F(OnlineTest, HigherMigrationCostReducesNothingButDelays) {
  const auto tasks = workload();
  OnlineConfig cheap;
  cheap.policy = OnlinePolicy::kModelAdaptive;
  cheap.migration_cost = 0.0;
  OnlineConfig dear = cheap;
  dear.migration_cost = 5.0e8;  // 500 ms per move
  OnlineScheduler s1(tb_.host(), tb_.nic(), write_classes_, read_classes_,
                     cheap);
  OnlineScheduler s2(tb_.host(), tb_.nic(), write_classes_, read_classes_,
                     dear);
  const auto r1 = s1.run(tasks);
  const auto r2 = s2.run(tasks);
  EXPECT_GE(r2.mean_turnaround, r1.mean_turnaround);
}

TEST_F(OnlineTest, SingleChunkDisablesMigration) {
  const auto tasks = workload();
  OnlineConfig config;
  config.policy = OnlinePolicy::kModelAdaptive;
  config.chunks_per_task = 1;
  OnlineScheduler scheduler(tb_.host(), tb_.nic(), write_classes_,
                            read_classes_, config);
  EXPECT_EQ(scheduler.run(tasks).total_migrations, 0);
}

}  // namespace
}  // namespace numaio::model
