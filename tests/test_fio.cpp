#include "io/fio.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "io/testbed.h"

namespace numaio::io {
namespace {

class FioTest : public ::testing::Test {
 protected:
  FioTest() : testbed_(Testbed::dl585()), fio_(testbed_.host()) {}

  FioJob nic_job(const std::string& engine, NodeId node, int streams) {
    FioJob j;
    j.devices = {&testbed_.nic()};
    j.engine = engine;
    j.cpu_node = node;
    j.num_streams = streams;
    return j;
  }
  FioJob ssd_job(const std::string& engine, NodeId node, int streams) {
    FioJob j;
    j.devices = testbed_.ssds();
    j.engine = engine;
    j.cpu_node = node;
    j.num_streams = streams;
    return j;
  }

  Testbed testbed_;
  FioRunner fio_;
};

// --- Table IV: device-write side at 4 parallel streams --------------------

TEST_F(FioTest, TcpSendClassValues) {
  EXPECT_NEAR(fio_.run(nic_job(kTcpSend, 0, 4)).aggregate, 20.9, 0.3);
  EXPECT_NEAR(fio_.run(nic_job(kTcpSend, 2, 4)).aggregate, 16.2, 0.2);
  EXPECT_NEAR(fio_.run(nic_job(kTcpSend, 3, 4)).aggregate, 16.2, 0.2);
}

TEST_F(FioTest, RdmaWriteClassValues) {
  EXPECT_NEAR(fio_.run(nic_job(kRdmaWrite, 7, 4)).aggregate, 23.3, 0.2);
  EXPECT_NEAR(fio_.run(nic_job(kRdmaWrite, 0, 4)).aggregate, 23.3, 0.2);
  EXPECT_NEAR(fio_.run(nic_job(kRdmaWrite, 2, 4)).aggregate, 17.1, 0.2);
}

TEST_F(FioTest, SsdWriteClassValues) {
  EXPECT_NEAR(fio_.run(ssd_job(kSsdWrite, 7, 4)).aggregate, 28.8, 0.5);
  EXPECT_NEAR(fio_.run(ssd_job(kSsdWrite, 0, 4)).aggregate, 28.5, 0.6);
  EXPECT_NEAR(fio_.run(ssd_job(kSsdWrite, 2, 4)).aggregate, 18.0, 0.3);
}

// --- Table V: device-read side ---------------------------------------------

TEST_F(FioTest, TcpRecvClassValues) {
  EXPECT_NEAR(fio_.run(nic_job(kTcpRecv, 6, 4)).aggregate, 21.8, 0.3);
  EXPECT_NEAR(fio_.run(nic_job(kTcpRecv, 2, 4)).aggregate, 20.0, 0.3);
  EXPECT_NEAR(fio_.run(nic_job(kTcpRecv, 0, 4)).aggregate, 20.6, 0.3);
  EXPECT_NEAR(fio_.run(nic_job(kTcpRecv, 4, 4)).aggregate, 14.4, 0.3);
}

TEST_F(FioTest, RdmaReadClassValues) {
  EXPECT_NEAR(fio_.run(nic_job(kRdmaRead, 7, 4)).aggregate, 22.0, 0.2);
  EXPECT_NEAR(fio_.run(nic_job(kRdmaRead, 2, 4)).aggregate, 22.0, 0.2);
  EXPECT_NEAR(fio_.run(nic_job(kRdmaRead, 0, 4)).aggregate, 18.3, 0.2);
  EXPECT_NEAR(fio_.run(nic_job(kRdmaRead, 4, 4)).aggregate, 16.1, 0.2);
}

TEST_F(FioTest, SsdReadClassValues) {
  EXPECT_NEAR(fio_.run(ssd_job(kSsdRead, 7, 4)).aggregate, 34.7, 0.4);
  EXPECT_NEAR(fio_.run(ssd_job(kSsdRead, 2, 4)).aggregate, 33.1, 0.4);
  EXPECT_NEAR(fio_.run(ssd_job(kSsdRead, 0, 4)).aggregate, 30.1, 0.4);
  EXPECT_NEAR(fio_.run(ssd_job(kSsdRead, 4, 4)).aggregate, 18.5, 0.4);
}

// --- Qualitative findings ---------------------------------------------------

TEST_F(FioTest, RdmaReadInvertsStreamOrdering) {
  // §IV-B2: RDMA_READ on {0,1} is 15-18.4% *worse* than on {2,3} even
  // though STREAM ranks {0,1} far above {2,3}.
  const double r0 = fio_.run(nic_job(kRdmaRead, 0, 4)).aggregate;
  const double r2 = fio_.run(nic_job(kRdmaRead, 2, 4)).aggregate;
  const double drop = (r2 - r0) / r2;
  EXPECT_GT(drop, 0.14);
  EXPECT_LT(drop, 0.20);
}

TEST_F(FioTest, TcpNode6BeatsNode7) {
  // §IV-B1: interrupt handling on node 7 makes its neighbor the better
  // binding.
  const double n6 = fio_.run(nic_job(kTcpSend, 6, 4)).aggregate;
  const double n7 = fio_.run(nic_job(kTcpSend, 7, 4)).aggregate;
  EXPECT_GT(n6, n7);
}

TEST_F(FioTest, RdmaImmuneToDeviceNodeContention) {
  const double n6 = fio_.run(nic_job(kRdmaWrite, 6, 4)).aggregate;
  const double n7 = fio_.run(nic_job(kRdmaWrite, 7, 4)).aggregate;
  EXPECT_NEAR(n6, n7, 0.1);
}

TEST_F(FioTest, TcpGrowsUntilFourStreams) {
  const double s1 = fio_.run(nic_job(kTcpSend, 5, 1)).aggregate;
  const double s2 = fio_.run(nic_job(kTcpSend, 5, 2)).aggregate;
  const double s4 = fio_.run(nic_job(kTcpSend, 5, 4)).aggregate;
  const double s8 = fio_.run(nic_job(kTcpSend, 5, 8)).aggregate;
  EXPECT_NEAR(s2, 2.0 * s1, 0.1);
  EXPECT_GT(s4, 1.5 * s2);
  EXPECT_NEAR(s8, s4, 0.08 * s4);  // plateau with jitter
}

TEST_F(FioTest, RdmaSaturatesAtTwoStreams) {
  const double s1 = fio_.run(nic_job(kRdmaWrite, 5, 1)).aggregate;
  const double s2 = fio_.run(nic_job(kRdmaWrite, 5, 2)).aggregate;
  const double s4 = fio_.run(nic_job(kRdmaWrite, 5, 4)).aggregate;
  EXPECT_LT(s1, 12.0);
  EXPECT_NEAR(s2, 23.3, 0.1);
  EXPECT_NEAR(s4, 23.3, 0.1);
}

TEST_F(FioTest, RdmaIsStableAtHighStreamCounts) {
  // Fig 6 vs Fig 5: RDMA bandwidth "is more stable than that of TCP".
  const double s4 = fio_.run(nic_job(kRdmaWrite, 5, 4)).aggregate;
  const double s16 = fio_.run(nic_job(kRdmaWrite, 5, 16)).aggregate;
  EXPECT_NEAR(s16, s4, 0.01 * s4);
}

TEST_F(FioTest, SsdGrowsFromTwoToFourProcesses) {
  const double p2 = fio_.run(ssd_job(kSsdRead, 7, 2)).aggregate;
  const double p4 = fio_.run(ssd_job(kSsdRead, 7, 4)).aggregate;
  EXPECT_GT(p4, 1.3 * p2);
}

TEST_F(FioTest, StreamsRoundRobinAcrossSsdCards) {
  const FioResult r = fio_.run(ssd_job(kSsdWrite, 7, 4));
  ASSERT_EQ(r.streams.size(), 4u);
  EXPECT_EQ(r.streams[0].device, testbed_.ssds()[0]);
  EXPECT_EQ(r.streams[1].device, testbed_.ssds()[1]);
  EXPECT_EQ(r.streams[2].device, testbed_.ssds()[0]);
}

TEST_F(FioTest, BuffersAreLocalToTheBindingNode) {
  const FioResult r = fio_.run(nic_job(kRdmaWrite, 3, 2));
  for (const auto& s : r.streams) EXPECT_EQ(s.mem_node, 3);
}

TEST_F(FioTest, DeterministicRepeats) {
  const double a = fio_.run(nic_job(kTcpSend, 5, 8)).aggregate;
  const double b = fio_.run(nic_job(kTcpSend, 5, 8)).aggregate;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(FioTest, ConcurrentMixedJobsShareTheEngine) {
  // The Eq-1 scenario: 2 streams node 2 + 2 streams node 0, RDMA_READ.
  FioJob a = nic_job(kRdmaRead, 2, 2);
  FioJob b = nic_job(kRdmaRead, 0, 2);
  const auto results = fio_.run_concurrent({a, b});
  const double combined = combined_aggregate(results);
  // Between the class-3 value (18.3) and the device cap (22.0), and below
  // the arithmetic mix (~20.15): heterogeneous queues drag the engine.
  EXPECT_GT(combined, 18.3);
  EXPECT_LT(combined, 20.15);
}

TEST_F(FioTest, CombinedAggregateOfOneJobIsItsAggregate) {
  const auto results = fio_.run_concurrent({nic_job(kRdmaWrite, 5, 2)});
  EXPECT_NEAR(combined_aggregate(results), results[0].aggregate, 1e-9);
}

TEST_F(FioTest, FreeMemoryRestoredAfterRun) {
  const auto before = testbed_.host().node_free_bytes(3);
  fio_.run(nic_job(kTcpSend, 3, 4));
  EXPECT_EQ(testbed_.host().node_free_bytes(3), before);
}

TEST_F(FioTest, InterleavedBuffersCountInNumastat) {
  testbed_.host().reset_stats();
  FioJob j = nic_job(kRdmaWrite, 3, 2);
  j.mem_policy = nm::parse_numactl("--interleave=0,1");
  fio_.run(j);
  EXPECT_GT(testbed_.host().stats().node(0).interleave_hit, 0u);
  EXPECT_GT(testbed_.host().stats().node(1).interleave_hit, 0u);
  EXPECT_EQ(testbed_.host().stats().node(3).numa_hit, 0u);
}

TEST_F(FioTest, LocalBuffersCountAsNumaHits) {
  testbed_.host().reset_stats();
  fio_.run(nic_job(kRdmaWrite, 3, 2));
  EXPECT_EQ(testbed_.host().stats().node(3).numa_hit, 2u);
}

TEST_F(FioTest, RejectsEmptyDeviceList) {
  FioJob j;
  j.engine = kTcpSend;
  EXPECT_THROW(fio_.run(j), std::invalid_argument);
}

TEST_F(FioTest, RejectsZeroStreams) {
  FioJob j = nic_job(kTcpSend, 0, 0);
  EXPECT_THROW(fio_.run(j), std::invalid_argument);
}

TEST_F(FioTest, SsdJobsNeedAStreamPerCard) {
  // §IV-B3: "the total number of test processes is at least two".
  EXPECT_THROW(fio_.run(ssd_job(kSsdWrite, 7, 1)), std::invalid_argument);
}

TEST_F(FioTest, LowerIodepthLowersSsdThroughput) {
  FioJob deep = ssd_job(kSsdRead, 7, 2);
  FioJob shallow = deep;
  shallow.iodepth = 4;
  EXPECT_GT(fio_.run(deep).aggregate, 1.5 * fio_.run(shallow).aggregate);
}

// Property sweep: every engine x binding yields a positive aggregate that
// never exceeds the engine's total ceiling.
class EngineBindingSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(EngineBindingSweep, WithinPhysicalBounds) {
  Testbed tb = Testbed::dl585();
  FioRunner fio(tb.host());
  const auto [engine, node] = GetParam();
  FioJob j;
  const bool is_ssd = std::string(engine).rfind("ssd", 0) == 0;
  j.devices = is_ssd ? tb.ssds()
                     : std::vector<const PcieDevice*>{&tb.nic()};
  j.engine = engine;
  j.cpu_node = node;
  j.num_streams = 4;
  const double agg = fio.run(j).aggregate;
  EXPECT_GT(agg, 5.0);
  double ceiling = 0.0;
  for (const auto* d : j.devices) ceiling += d->engine(engine).device_cap;
  EXPECT_LE(agg, ceiling + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesAllNodes, EngineBindingSweep,
    ::testing::Combine(::testing::Values(kTcpSend, kTcpRecv, kRdmaWrite,
                                         kRdmaRead, kSsdWrite, kSsdRead),
                       ::testing::Range(0, 8)));

}  // namespace
}  // namespace numaio::io
