#include "mem/membench.h"

#include <gtest/gtest.h>

namespace numaio::mem {
namespace {

class MembenchTest : public ::testing::Test {
 protected:
  fabric::Machine machine_{fabric::dl585_profile()};
  nm::Host host_{machine_};
  StreamConfig config_{};
};

TEST_F(MembenchTest, MatrixIsFullAndPositive) {
  const BandwidthMatrix m = stream_matrix(host_, config_);
  EXPECT_EQ(m.num_nodes(), 8);
  for (NodeId c = 0; c < 8; ++c) {
    for (NodeId d = 0; d < 8; ++d) {
      EXPECT_GT(m.at(c, d), 0.0);
    }
  }
}

TEST_F(MembenchTest, MatrixIsAsymmetric) {
  // Fig 3's headline property: the matrix is not symmetric, so no
  // undirected distance metric can explain it.
  const BandwidthMatrix m = stream_matrix(host_, config_);
  EXPECT_GT(std::abs(m.at(7, 4) - m.at(4, 7)), 2.0);
}

TEST_F(MembenchTest, CentricModelsMatchMatrixSlices) {
  const BandwidthMatrix m = stream_matrix(host_, config_);
  const auto cpu_model = cpu_centric(host_, 7, config_);
  const auto mem_model = memory_centric(host_, 7, config_);
  ASSERT_EQ(cpu_model.size(), 8u);
  ASSERT_EQ(mem_model.size(), 8u);
  for (NodeId i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(cpu_model[static_cast<std::size_t>(i)], m.at(7, i));
    EXPECT_DOUBLE_EQ(mem_model[static_cast<std::size_t>(i)], m.at(i, 7));
  }
}

TEST_F(MembenchTest, CpuCentricOrderingFig4a) {
  // Running on node 7: memory on {0,1} far ahead of {2,3}.
  const auto model = cpu_centric(host_, 7, config_);
  const double avg01 = (model[0] + model[1]) / 2.0;
  const double avg23 = (model[2] + model[3]) / 2.0;
  EXPECT_NEAR(avg01 / avg23, 1.88, 0.1);
}

TEST_F(MembenchTest, MemoryCentricOrderingFig4b) {
  const auto model = memory_centric(host_, 7, config_);
  const double avg01 = (model[0] + model[1]) / 2.0;
  const double avg23 = (model[2] + model[3]) / 2.0;
  EXPECT_NEAR(avg01 / avg23, 1.43, 0.1);
}

TEST_F(MembenchTest, LocalCellIsBestInEachCentricModelRow) {
  // In both Fig-4 models the local binding (node 7 itself) wins.
  const auto cpu_model = cpu_centric(host_, 7, config_);
  const auto mem_model = memory_centric(host_, 7, config_);
  for (NodeId i = 0; i < 7; ++i) {
    EXPECT_GT(cpu_model[7], cpu_model[static_cast<std::size_t>(i)]) << i;
    EXPECT_GT(mem_model[7], mem_model[static_cast<std::size_t>(i)]) << i;
  }
}

}  // namespace
}  // namespace numaio::mem
