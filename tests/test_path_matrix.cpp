#include "fabric/path_matrix.h"

#include <gtest/gtest.h>

#include "topo/presets.h"

namespace numaio::fabric {
namespace {

class DerivedMatrix : public ::testing::Test {
 protected:
  DerivedMatrix()
      : topo_(topo::magny_cours_4p('a')),
        routing_(topo_, topo::Routing::Metric::kLatency),
        matrix_(derive_from_topology(topo_, routing_, params_)) {}

  DerivedFabricParams params_{};
  topo::Topology topo_;
  topo::Routing routing_;
  PathMatrix matrix_;
};

TEST_F(DerivedMatrix, DiagonalIsLocalCopyLimit) {
  for (NodeId i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(matrix_.at(i, i).dma_cap, params_.local_copy_gbps);
    EXPECT_DOUBLE_EQ(matrix_.at(i, i).dma_lat, params_.dma_lat_local);
  }
}

TEST_F(DerivedMatrix, IntraPackageLinkIsWide) {
  // 16-bit link * 3.2 Gbps/bit = 51.2, below the 52.0 local limit.
  EXPECT_NEAR(matrix_.at(6, 7).dma_cap, 51.2, 1e-9);
}

TEST_F(DerivedMatrix, InterPackageLinkIsNarrow) {
  // 8-bit inter-package links: 25.6 Gbps.
  EXPECT_NEAR(matrix_.at(7, 0).dma_cap, 25.6, 1e-9);
}

TEST_F(DerivedMatrix, TwoHopPathTakesNarrowestLink) {
  // 7 -> 1 crosses an 8-bit inter link and a 16-bit intra link.
  EXPECT_NEAR(matrix_.at(7, 1).dma_cap, 25.6, 1e-9);
}

TEST_F(DerivedMatrix, LatencyGrowsWithDistance) {
  EXPECT_LT(matrix_.at(7, 6).dma_lat, matrix_.at(7, 0).dma_lat);
  EXPECT_LT(matrix_.at(7, 0).dma_lat, matrix_.at(7, 1).dma_lat);
}

TEST_F(DerivedMatrix, StreamBandwidthDropsWithDistance) {
  EXPECT_GT(matrix_.at(7, 7).stream_bw, matrix_.at(7, 6).stream_bw);
  EXPECT_GT(matrix_.at(7, 6).stream_bw, matrix_.at(7, 1).stream_bw);
}

TEST_F(DerivedMatrix, SymmetricTopologyGivesSymmetricMatrix) {
  // Derived (uncalibrated) fabrics have no directional asymmetry: the
  // asymmetry of the paper's host is a *measured* property, not a
  // topological one.
  for (NodeId i = 0; i < 8; ++i) {
    for (NodeId j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(matrix_.at(i, j).dma_cap, matrix_.at(j, i).dma_cap);
    }
  }
}

TEST(PathMatrix, AtIsMutable) {
  PathMatrix m(4);
  m.at(1, 2).dma_cap = 33.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2).dma_cap, 33.0);
  EXPECT_EQ(m.num_nodes(), 4);
}

}  // namespace
}  // namespace numaio::fabric
