// Robustness property tests for the three text parsers (fio job files,
// host-model documents, transfer traces): random single-character
// mutations of valid documents must either parse or throw
// std::invalid_argument — never crash, never hang, never corrupt state.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "io/jobfile.h"
#include "io/trace.h"
#include "model/characterize.h"
#include "simcore/rng.h"

namespace numaio {
namespace {

const char kJobFile[] =
    "[global]\nioengine=rdma\nrw=read\nbs=128k\niodepth=16\nnumjobs=4\n"
    "[a]\ncpunodebind=2\n[b]\ncpunodebind=0\nnumjobs=2\n";

const char kTrace[] =
    "# log\n0.0,rdma_write,7,32\n1.25,tcp_recv,2,8\n2.5,ssd_read,0,16\n";

std::string valid_model_doc() {
  return "numaio-model v1\n"
         "host tiny nodes 2\n"
         "model 0 write 50.0 40.0\n"
         "classes 0 write 1 { 0 1 }\n"
         "model 0 read 50.0 41.0\n"
         "classes 0 read 1 { 0 1 }\n"
         "model 1 write 39.0 52.0\n"
         "classes 1 write 1 { 0 1 }\n"
         "model 1 read 38.0 52.0\n"
         "classes 1 read 1 { 0 1 }\n"
         "end\n";
}

std::string mutate(const std::string& doc, sim::Rng& rng) {
  std::string out = doc;
  const auto pos = rng.below(out.size());
  switch (rng.below(3)) {
    case 0:  // flip a character
      out[pos] = static_cast<char>(' ' + rng.below(95));
      break;
    case 1:  // delete a character
      out.erase(pos, 1);
      break;
    default:  // duplicate a character
      out.insert(pos, 1, out[pos]);
      break;
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, JobFileNeverCrashes) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::string doc = mutate(kJobFile, rng);
    try {
      const auto parsed = io::parse_job_file(doc);
      EXPECT_FALSE(parsed.jobs.empty());  // success implies jobs exist
    } catch (const std::invalid_argument&) {
      // acceptable outcome
    } catch (const std::out_of_range&) {
      // std::stoi overflow on huge duplicated digits — acceptable
    }
  }
}

TEST_P(ParserFuzz, HostModelNeverCrashes) {
  sim::Rng rng(GetParam() + 1000);
  const std::string base = valid_model_doc();
  for (int i = 0; i < 200; ++i) {
    const std::string doc = mutate(base, rng);
    try {
      const auto parsed = model::parse_host_model(doc);
      EXPECT_EQ(parsed.num_nodes, 2);
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
}

TEST_P(ParserFuzz, TraceNeverCrashes) {
  sim::Rng rng(GetParam() + 2000);
  for (int i = 0; i < 200; ++i) {
    const std::string doc = mutate(kTrace, rng);
    try {
      const auto parsed = io::parse_trace(doc);
      EXPECT_FALSE(parsed.empty());
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u));

// --- deterministic job-file edge cases ------------------------------------

void expect_rejected(const std::string& doc, const std::string& needle) {
  try {
    io::parse_job_file(doc);
    FAIL() << "expected rejection mentioning '" << needle << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(JobFileEdgeCases, DuplicateOptionInOneSectionRejected) {
  expect_rejected(
      "[a]\nioengine=rdma\nrw=read\ncpunodebind=2\nsize=400g\nsize=4g\n",
      "duplicate option 'size'");
}

TEST(JobFileEdgeCases, GlobalOverrideIsNotADuplicate) {
  const auto file = io::parse_job_file(
      "[global]\nioengine=rdma\nrw=read\nsize=400g\n"
      "[a]\ncpunodebind=2\nsize=4g\n");
  ASSERT_EQ(file.jobs.size(), 1u);
  EXPECT_EQ(file.jobs[0].job.bytes_per_stream, 4 * sim::kGiB);
}

TEST(JobFileEdgeCases, EmptySectionInheritsEverythingFromGlobal) {
  const auto file = io::parse_job_file(
      "[global]\nioengine=tcp\nrw=write\ncpunodebind=3\n[solo]\n");
  ASSERT_EQ(file.jobs.size(), 1u);
  EXPECT_EQ(file.jobs[0].name, "solo");
  EXPECT_EQ(file.jobs[0].job.cpu_node, 3);
}

TEST(JobFileEdgeCases, EmptyAndDuplicateSectionNamesRejected) {
  expect_rejected("[  ]\nioengine=rdma\n", "empty section name");
  expect_rejected(
      "[a]\nioengine=rdma\nrw=read\ncpunodebind=1\n"
      "[a]\ncpunodebind=2\n",
      "duplicate section [a]");
}

TEST(JobFileEdgeCases, IodepthRangeEnforced) {
  expect_rejected("[a]\niodepth=0\n", "'iodepth' out of range");
  expect_rejected("[a]\niodepth=5000\n", "'iodepth' out of range");
  expect_rejected("[a]\niodepth=16abc\n", "wants an integer");
}

TEST(JobFileEdgeCases, BlockSizeRangeEnforced) {
  expect_rejected("[a]\nbs=256\n", "'bs' out of range");  // < one sector
  expect_rejected("[a]\nbs=2g\n", "'bs' out of range");   // > 1 GiB
}

TEST(JobFileEdgeCases, SizeOverflowRejected) {
  expect_rejected("[a]\nsize=99999999999999999999\n", "overflows 64 bits");
  expect_rejected("[a]\nsize=99999999999g\n", "overflows 64 bits");
}

TEST(JobFileEdgeCases, LineNumbersPointAtTheOffendingLine) {
  try {
    io::parse_job_file("[a]\nioengine=rdma\niodepth=-1\n");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace numaio
