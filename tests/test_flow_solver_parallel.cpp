// The partitioned / parallel execution engine of FlowSolver
// (SolveOptions; DESIGN.md §11): the ThreadPool contract, per-component
// bit-identity against the frozen reference solver under sharded churn,
// the thread-count-invariance determinism contract (1 == 2 == 8 threads,
// bitwise), dirty-component caching, union-find rebuilds after removal
// churn, the typed-Status dead-id mutators, and byte-identical I/O
// traces across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "io/fio.h"
#include "io/testbed.h"
#include "obs/obs.h"
#include "reference_flow_solver.h"
#include "simcore/flow_solver.h"
#include "simcore/rng.h"
#include "simcore/solve_options.h"
#include "simcore/thread_pool.h"

namespace numaio::sim {
namespace {

SolveOptions options_for(int threads) {
  SolveOptions o;
  o.threads = threads;
  o.partition = true;
  return o;
}

// --- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(101);
  for (auto& h : hits) h.store(0);
  pool.run(101, /*deterministic=*/true, [&](std::size_t i, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, DeterministicModePinsIndexToWorker) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> worker_of(10);
  for (auto& w : worker_of) w.store(-1);
  pool.run(10, /*deterministic=*/true, [&](std::size_t i, int worker) {
    worker_of[i].store(worker);
  });
  for (std::size_t i = 0; i < worker_of.size(); ++i) {
    EXPECT_EQ(worker_of[i].load(), static_cast<int>(i % 3));
  }
}

TEST(ThreadPool, DynamicModeStillCoversEveryIndex) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::atomic<int>> hits(57);
  for (auto& h : hits) h.store(0);
  pool.run(57, /*deterministic=*/false, [&](std::size_t i, int) {
    hits[i].fetch_add(1);
    total.fetch_add(1);
  });
  EXPECT_EQ(total.load(), 57);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatchesAndClampsThreads) {
  ThreadPool pool(0);  // clamps to 1: everything inline on the caller
  EXPECT_EQ(pool.threads(), 1);
  int calls = 0;
  for (int batch = 0; batch < 3; ++batch) {
    pool.run(5, true, [&](std::size_t, int worker) {
      EXPECT_EQ(worker, 0);
      ++calls;
    });
  }
  EXPECT_EQ(calls, 15);
  pool.run(0, true, [&](std::size_t, int) { ++calls; });  // empty batch
  EXPECT_EQ(calls, 15);
}

// --- Sharded churn: bit-identity per component ---------------------------

// A shard is a set of resources kept connected by a never-removed
// spanning flow, so it stays one resource-connected component for the
// whole history. Each shard carries its own frozen ReferenceFlowSolver;
// the production solver holds *all* shards and must reproduce every
// shard's reference rates bit for bit — the component decomposition must
// not change a single floating-point operation within a component.
struct Shard {
  std::vector<ResourceId> res;  ///< Production resource ids.
  test::ReferenceFlowSolver ref;
  struct LiveFlow {
    FlowId id;           ///< Production id (recycled slots).
    std::size_t ref_id;  ///< Reference id (never recycled).
  };
  std::vector<LiveFlow> live;  ///< Insertion order, spanning flow first.
};

class ParallelSolverProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelSolverProperty, ShardedChurnMatchesReferencePerShard) {
  constexpr std::size_t kShards = 5;
  constexpr std::size_t kResPerShard = 3;
  Rng rng(GetParam() * 6151 + 7);
  FlowSolver solver(options_for(2));

  std::vector<Shard> shards(kShards);
  for (Shard& shard : shards) {
    for (std::size_t r = 0; r < kResPerShard; ++r) {
      const Gbps cap = rng.uniform(5.0, 50.0);
      shard.res.push_back(solver.add_resource("r", cap));
      shard.ref.add_resource(cap);
    }
    // The spanning flow glues the shard into one component forever.
    std::vector<Usage> span;
    for (std::size_t r = 0; r < kResPerShard; ++r) {
      span.push_back(Usage{shard.res[r], 0.5});
    }
    std::vector<Usage> ref_span;
    for (std::size_t r = 0; r < kResPerShard; ++r) {
      ref_span.push_back(Usage{r, 0.5});
    }
    const Gbps cap = rng.uniform(10.0, 40.0);
    const std::size_t ref_id = shard.ref.add_flow(std::move(ref_span), cap);
    shard.live.push_back({solver.add_flow(std::move(span), cap), ref_id});
  }

  const auto compare_all = [&] {
    const auto& rates = solver.solve();
    for (std::size_t si = 0; si < shards.size(); ++si) {
      const auto ref_rates = shards[si].ref.solve();
      for (const Shard::LiveFlow& l : shards[si].live) {
        ASSERT_EQ(rates[l.id], ref_rates[l.ref_id])
            << "seed " << GetParam() << " shard " << si << " slot " << l.id;
      }
    }
  };

  compare_all();
  for (int op = 0; op < 120; ++op) {
    Shard& shard = shards[rng.below(shards.size())];
    const std::uint64_t kind = rng.below(4);
    if (kind == 0 || shard.live.size() < 2) {
      // Add a flow over 1-3 shard resources (duplicates + weights on
      // purpose: weight accumulation order must survive partitioning).
      const std::uint64_t n = 1 + rng.below(3);
      std::vector<Usage> usages, ref_usages;
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::size_t r = rng.below(shard.res.size());
        const double w = rng.uniform(0.1, 2.0);
        usages.push_back(Usage{shard.res[r], w});
        ref_usages.push_back(Usage{r, w});
      }
      const Gbps cap =
          rng.uniform() < 0.5 ? rng.uniform(1.0, 30.0) : kUnlimited;
      const std::size_t ref_id = shard.ref.add_flow(std::move(ref_usages), cap);
      shard.live.push_back({solver.add_flow(std::move(usages), cap), ref_id});
    } else if (kind == 1) {
      // Remove any flow but the spanning one (index 0).
      const std::size_t k = 1 + rng.below(shard.live.size() - 1);
      ASSERT_TRUE(solver.remove_flow(shard.live[k].id).ok());
      shard.ref.remove_flow(shard.live[k].ref_id);
      shard.live.erase(shard.live.begin() + static_cast<std::ptrdiff_t>(k));
    } else if (kind == 2) {
      const std::size_t r = rng.below(shard.res.size());
      const Gbps cap = rng.uniform(5.0, 50.0);
      solver.set_capacity(shard.res[r], cap);
      shard.ref.set_capacity(r, cap);
    } else {
      const std::size_t k = rng.below(shard.live.size());
      const Gbps cap = rng.uniform(1.0, 30.0);
      ASSERT_TRUE(solver.set_flow_cap(shard.live[k].id, cap).ok());
      shard.ref.set_flow_cap(shard.live[k].ref_id, cap);
    }
    if (op % 4 == 0) compare_all();
  }
  compare_all();
  EXPECT_EQ(solver.stats().components, kShards);
}

// The determinism contract: for a fixed mutation history the rate vector
// is a pure function of `partition` alone — any thread count (and either
// scheduling mode) produces bitwise-identical rates and aggregates.
TEST_P(ParallelSolverProperty, RatesAreInvariantAcrossThreadCounts) {
  const auto run_history = [&](const SolveOptions& options) {
    Rng rng(GetParam() * 31 + 5);
    FlowSolver solver(options);
    std::vector<std::vector<ResourceId>> shard_res(6);
    for (auto& res : shard_res) {
      for (int r = 0; r < 3; ++r) {
        res.push_back(solver.add_resource("r", rng.uniform(5.0, 50.0)));
      }
    }
    std::vector<FlowId> live;
    std::vector<Gbps> checkpoints;
    for (int op = 0; op < 150; ++op) {
      const auto& res = shard_res[rng.below(shard_res.size())];
      if (rng.below(3) != 0 || live.empty()) {
        std::vector<Usage> usages;
        const std::uint64_t n = 1 + rng.below(3);
        for (std::uint64_t i = 0; i < n; ++i) {
          usages.push_back(
              Usage{res[rng.below(res.size())], rng.uniform(0.1, 2.0)});
        }
        const Gbps cap =
            rng.uniform() < 0.5 ? rng.uniform(1.0, 30.0) : kUnlimited;
        live.push_back(solver.add_flow(std::move(usages), cap));
      } else {
        const std::size_t k = rng.below(live.size());
        EXPECT_TRUE(solver.remove_flow(live[k]).ok());
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      }
      if (op % 5 == 0) {
        const auto& rates = solver.solve();
        checkpoints.insert(checkpoints.end(), rates.begin(), rates.end());
        checkpoints.push_back(solver.aggregate_rate());
      }
    }
    return checkpoints;
  };

  const auto t1 = run_history(options_for(1));
  const auto t2 = run_history(options_for(2));
  const auto t8 = run_history(options_for(8));
  ASSERT_EQ(t1.size(), t2.size());
  ASSERT_EQ(t1.size(), t8.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    ASSERT_EQ(t1[i], t2[i]) << "checkpoint value " << i;
    ASSERT_EQ(t1[i], t8[i]) << "checkpoint value " << i;
  }
  // Dynamic scheduling must not change the arithmetic either.
  SolveOptions dynamic = options_for(8);
  dynamic.deterministic = false;
  const auto td = run_history(dynamic);
  ASSERT_EQ(t1.size(), td.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    ASSERT_EQ(t1[i], td[i]) << "checkpoint value " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShardedNetworks, ParallelSolverProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// On a single-component graph the partitioned engine degenerates to the
// monolithic walk (same flows, same insertion order), so partition on/off
// must agree bitwise there — the FP caveat is multi-component only.
TEST(FlowSolverParallel, SingleComponentMatchesMonolithicBitwise) {
  const auto build = [](const SolveOptions& options) {
    FlowSolver s(options);
    const ResourceId a = s.add_resource("a", 10.0);
    const ResourceId b = s.add_resource("b", 20.0);
    const ResourceId c = s.add_resource("c", 7.5);
    (void)s.add_flow({{a, 1.0}, {b, 0.5}}, kUnlimited);
    (void)s.add_flow({{b, 1.3}, {c, 1.0}}, 6.0);
    (void)s.add_flow({{a, 0.7}, {c, 0.2}}, kUnlimited);
    (void)s.add_flow_over({a, b, c});
    return s;
  };
  FlowSolver mono = build(SolveOptions{});
  FlowSolver part = build(options_for(1));
  const auto& mr = mono.solve();
  const auto& pr = part.solve();
  ASSERT_EQ(mr.size(), pr.size());
  for (std::size_t f = 0; f < mr.size(); ++f) EXPECT_EQ(mr[f], pr[f]);
  EXPECT_EQ(mono.aggregate_rate(), part.aggregate_rate());
  EXPECT_EQ(part.stats().components, 1u);
}

// --- Dirty-component caching ---------------------------------------------

TEST(FlowSolverParallel, MutationReSolvesOnlyItsComponent) {
  FlowSolver s(options_for(1));
  const ResourceId a1 = s.add_resource("a1", 10.0);
  const ResourceId a2 = s.add_resource("a2", 20.0);
  const ResourceId b1 = s.add_resource("b1", 15.0);
  const ResourceId b2 = s.add_resource("b2", 25.0);
  const FlowId fa = s.add_flow_over({a1, a2});
  const FlowId fb = s.add_flow_over({b1, b2});

  const auto& r1 = s.solve();
  EXPECT_EQ(s.stats().components, 2u);
  EXPECT_EQ(s.stats().dirty_components, 2u);  // first solve: all dirty
  const Gbps fb_before = r1[fb];

  s.set_flow_cap(fa, 3.0);
  const auto& r2 = s.solve();
  EXPECT_EQ(s.stats().components, 2u);
  EXPECT_EQ(s.stats().dirty_components, 1u)
      << "a flow-cap change on one component re-solved the other too";
  EXPECT_EQ(r2[fa], 3.0);
  EXPECT_EQ(r2[fb], fb_before);  // clean component kept its cached rate

  s.set_capacity(b1, 12.0);
  (void)s.solve();
  EXPECT_EQ(s.stats().dirty_components, 1u);
}

TEST(FlowSolverParallel, ParallelBatchesCountPoolDispatches) {
  FlowSolver s(options_for(8));
  std::vector<FlowId> flows;
  for (int i = 0; i < 4; ++i) {
    const ResourceId r = s.add_resource("r", 10.0 + i);
    flows.push_back(s.add_flow_over({r}));
  }
  EXPECT_EQ(s.stats().parallel_batches, 0u);
  (void)s.solve();
  EXPECT_EQ(s.stats().components, 4u);
  EXPECT_EQ(s.stats().largest_component_flows, 1u);
  EXPECT_EQ(s.stats().parallel_batches, 1u);
  // One dirty component is not worth a fan-out: no new batch.
  s.set_flow_cap(flows[0], 2.0);
  (void)s.solve();
  EXPECT_EQ(s.stats().parallel_batches, 1u);
}

// --- Union-find rebuilds --------------------------------------------------

TEST(FlowSolverParallel, RemovalChurnRebuildsAndSplitsComponents) {
  FlowSolver s(options_for(1));
  const ResourceId a1 = s.add_resource("a1", 10.0);
  const ResourceId a2 = s.add_resource("a2", 20.0);
  const ResourceId b1 = s.add_resource("b1", 15.0);
  const ResourceId b2 = s.add_resource("b2", 25.0);
  (void)s.add_flow_over({a1, a2});
  (void)s.add_flow_over({b1, b2});
  const FlowId bridge = s.add_flow_over({a2, b1});

  (void)s.solve();
  EXPECT_EQ(s.stats().components, 1u);  // the bridge merges the shards

  // Union-find cannot split: removing the bridge leaves the merged
  // component in place until removal churn triggers a rebuild.
  ASSERT_TRUE(s.remove_flow(bridge).ok());
  for (int i = 0; i < 20; ++i) {
    const FlowId tmp = s.add_flow_over({a1});
    ASSERT_TRUE(s.remove_flow(tmp).ok());
  }
  (void)s.solve();
  EXPECT_GE(s.stats().component_rebuilds, 1u);
  EXPECT_EQ(s.stats().components, 2u)
      << "the rebuild did not split the bridged shards";
}

// --- Typed Status from dead-id mutators ----------------------------------

TEST(FlowSolverStatus, DeadIdMutatorsReturnUsageAndLeaveSolverIntact) {
  FlowSolver s;
  const ResourceId r = s.add_resource("r", 10.0);
  const FlowId f = s.add_flow_over({r});
  const FlowId g = s.add_flow_over({r});

  EXPECT_TRUE(s.set_flow_cap(f, 4.0).ok());
  EXPECT_TRUE(s.remove_flow(f).ok());
  (void)s.solve();
  const std::uint64_t epoch = s.epoch();

  // Double remove: typed usage error, not an assert or corruption.
  const Status dead = s.remove_flow(f);
  EXPECT_EQ(dead.code, StatusCode::kUsage);
  EXPECT_FALSE(dead.message.empty());

  // Out-of-range ids on both mutators.
  EXPECT_EQ(s.remove_flow(12345).code, StatusCode::kUsage);
  EXPECT_EQ(s.set_flow_cap(12345, 1.0).code, StatusCode::kUsage);
  EXPECT_EQ(s.set_flow_cap(f, 1.0).code, StatusCode::kUsage);

  // Failed mutations left the solver untouched: cache still warm, live
  // set unchanged, and the surviving flow still solves.
  EXPECT_EQ(s.epoch(), epoch);
  EXPECT_EQ(s.live_flow_count(), 1u);
  EXPECT_EQ(s.solve()[g], 10.0);
  EXPECT_EQ(s.stats().cache_hits, 1u);

  // The recycled slot is usable again after the failures.
  const FlowId h = s.add_flow_over({r});
  EXPECT_EQ(h, f);
  EXPECT_TRUE(s.set_flow_cap(h, 2.0).ok());
}

// --- Byte-identical traces across thread counts --------------------------

std::string traced_fio_run(int threads) {
  std::ostringstream out;
  obs::Context ctx;
  obs::JsonlSink sink(out);
  ctx.trace.set_deterministic(true);
  ctx.trace.set_sink(&sink);

  io::Testbed tb = io::Testbed::dl585(options_for(threads));
  tb.machine().solver().set_observer(&ctx);
  io::FioRunner fio(tb.host());
  fio.set_observer(&ctx);
  io::FioJob job;
  job.devices = {&tb.nic()};
  job.engine = io::kRdmaWrite;
  job.cpu_node = 2;
  job.num_streams = 4;
  (void)fio.run(job);
  job.engine = io::kRdmaRead;
  job.cpu_node = 5;
  (void)fio.run(job);
  return out.str();
}

TEST(FlowSolverParallel, FioTracesAreByteIdenticalAcrossThreadCounts) {
  const std::string t1 = traced_fio_run(1);
  const std::string t2 = traced_fio_run(2);
  const std::string t8 = traced_fio_run(8);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

}  // namespace
}  // namespace numaio::sim
