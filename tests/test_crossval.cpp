#include "model/crossval.h"

#include <gtest/gtest.h>

#include "fabric/calibration.h"

namespace numaio::model {
namespace {

class CrossValTest : public ::testing::Test {
 protected:
  CrossValTest() : machine_(fabric::dl585_profile()), host_(machine_) {
    cv_ = cross_validate(host_);
  }
  int index_of(const std::string& name) const {
    for (std::size_t i = 0; i < cv_.names.size(); ++i) {
      if (cv_.names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
  double agreement(const std::string& a, const std::string& b) const {
    return cv_.agreement[static_cast<std::size_t>(index_of(a))]
                        [static_cast<std::size_t>(index_of(b))];
  }

  fabric::Machine machine_;
  nm::Host host_;
  CrossValidation cv_;
};

TEST_F(CrossValTest, EightBenchmarksWithFullMatrices) {
  ASSERT_EQ(cv_.names.size(), 8u);  // 7 numademo modules + STREAM
  for (const auto& cells : cv_.cells) EXPECT_EQ(cells.size(), 64u);
  EXPECT_GE(index_of("STREAM-Copy"), 0);
  EXPECT_GE(index_of("ptr-chase"), 0);
}

TEST_F(CrossValTest, AgreementIsSymmetricWithUnitDiagonal) {
  for (std::size_t a = 0; a < cv_.names.size(); ++a) {
    EXPECT_DOUBLE_EQ(cv_.agreement[a][a], 1.0);
    for (std::size_t b = 0; b < cv_.names.size(); ++b) {
      EXPECT_DOUBLE_EQ(cv_.agreement[a][b], cv_.agreement[b][a]);
    }
  }
}

TEST_F(CrossValTest, CopyLikeBenchmarksAgreeStrongly) {
  // memcpy, stream-copy and STREAM measure the same loop; the walks share
  // the load path. cbench's premise holds *within* this family.
  EXPECT_GT(agreement("memcpy", "stream-copy"), 0.99);
  EXPECT_GT(agreement("memcpy", "STREAM-Copy"), 0.95);
  EXPECT_GT(agreement("forward-walk", "backward-walk"), 0.99);
  EXPECT_GT(agreement("memcpy", "forward-walk"), 0.9);
}

TEST_F(CrossValTest, LatencyBoundBenchmarksFormTheirOwnFamily) {
  EXPECT_GT(agreement("random-access", "ptr-chase"), 0.99);
  // ...and disagree with the bandwidth family (different NUMA ordering:
  // e.g. 7->2 is latency-good but PIO-bad).
  EXPECT_LT(agreement("ptr-chase", "memcpy"), 0.8);
}

TEST_F(CrossValTest, ClustersSeparateTheFamilies) {
  const auto clusters = agreement_clusters(cv_, 0.9);
  // At 0.9 the copy family and the latency family split apart.
  EXPECT_GE(clusters.size(), 2u);
  // Every benchmark lands in exactly one cluster.
  std::vector<int> seen(cv_.names.size(), 0);
  for (const auto& cluster : clusters) {
    for (int idx : cluster) ++seen[static_cast<std::size_t>(idx)];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST_F(CrossValTest, LooseThresholdMergesEverything) {
  const auto clusters = agreement_clusters(cv_, -1.0);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), cv_.names.size());
}

TEST_F(CrossValTest, StrictThresholdIsolatesEverything) {
  const auto clusters = agreement_clusters(cv_, 1.01);
  EXPECT_EQ(clusters.size(), cv_.names.size());
}

}  // namespace
}  // namespace numaio::model
