#include "io/jobfile.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "io/testbed.h"

namespace numaio::io {
namespace {

constexpr char kPaperJobFile[] = R"(
; Table III network test parameters
[global]
ioengine=rdma
rw=read
bs=128k
iodepth=16
size=400g
numjobs=4

[reader-node2]
cpunodebind=2

[reader-node0]
cpunodebind=0
numjobs=2
)";

TEST(JobFile, ParsesGlobalDefaultsAndOverrides) {
  const JobFile file = parse_job_file(kPaperJobFile);
  ASSERT_EQ(file.jobs.size(), 2u);

  const auto& a = file.jobs[0];
  EXPECT_EQ(a.name, "reader-node2");
  EXPECT_EQ(a.job.engine, kRdmaRead);
  EXPECT_EQ(a.job.cpu_node, 2);
  EXPECT_EQ(a.job.num_streams, 4);
  EXPECT_EQ(a.job.block_size, 128 * sim::kKiB);
  EXPECT_EQ(a.job.iodepth, 16);
  EXPECT_EQ(a.job.bytes_per_stream, 400 * sim::kGiB);

  const auto& b = file.jobs[1];
  EXPECT_EQ(b.job.cpu_node, 0);
  EXPECT_EQ(b.job.num_streams, 2);  // override wins
}

TEST(JobFile, EngineMapping) {
  struct Case {
    const char* ioengine;
    const char* rw;
    const char* expect;
  };
  const Case cases[] = {
      {"net", "write", kTcpSend},   {"net", "read", kTcpRecv},
      {"tcp", "write", kTcpSend},   {"rdma", "write", kRdmaWrite},
      {"rdma", "read", kRdmaRead},  {"libaio", "write", kSsdWrite},
      {"libaio", "read", kSsdRead},
  };
  for (const Case& c : cases) {
    const std::string text = std::string("[j]\nioengine=") + c.ioengine +
                             "\nrw=" + c.rw + "\ncpunodebind=1\n";
    const JobFile file = parse_job_file(text);
    EXPECT_EQ(file.jobs[0].job.engine, c.expect) << c.ioengine;
  }
}

TEST(JobFile, CommentsAndWhitespaceTolerated) {
  const JobFile file = parse_job_file(
      "  [ j1 ]  # trailing comment\n"
      "ioengine = rdma ; another comment\n"
      "  rw=write\n"
      "\n"
      "cpunodebind=3\n");
  ASSERT_EQ(file.jobs.size(), 1u);
  EXPECT_EQ(file.jobs[0].name, "j1");
  EXPECT_EQ(file.jobs[0].job.engine, kRdmaWrite);
}

TEST(JobFile, ParseSizeSuffixes) {
  EXPECT_EQ(parse_size("128k"), 128 * sim::kKiB);
  EXPECT_EQ(parse_size("4M"), 4 * sim::kMiB);
  EXPECT_EQ(parse_size("400g"), 400 * sim::kGiB);
  EXPECT_EQ(parse_size("12345"), 12345u);
  EXPECT_THROW(parse_size("12q"), std::invalid_argument);
  EXPECT_THROW(parse_size(""), std::invalid_argument);
  EXPECT_THROW(parse_size("k"), std::invalid_argument);
}

TEST(JobFile, ErrorsCarryLineNumbers) {
  try {
    parse_job_file("[j]\nioengine=rdma\nbogus=1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(JobFile, RejectsOptionBeforeSection) {
  EXPECT_THROW(parse_job_file("ioengine=rdma\n"), std::invalid_argument);
}

TEST(JobFile, RejectsMalformedHeader) {
  EXPECT_THROW(parse_job_file("[oops\nioengine=rdma\n"),
               std::invalid_argument);
}

TEST(JobFile, RejectsMissingEngineOrBinding) {
  EXPECT_THROW(parse_job_file("[j]\ncpunodebind=1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_job_file("[j]\nioengine=rdma\nrw=read\n"),
               std::invalid_argument);
}

TEST(JobFile, RejectsBadRwAndEngine) {
  EXPECT_THROW(
      parse_job_file("[j]\nioengine=rdma\nrw=randrw\ncpunodebind=1\n"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_job_file("[j]\nioengine=nvme\nrw=read\ncpunodebind=1\n"),
      std::invalid_argument);
}

TEST(JobFile, RejectsEmptyFile) {
  EXPECT_THROW(parse_job_file(""), std::invalid_argument);
  EXPECT_THROW(parse_job_file("[global]\nioengine=rdma\n"),
               std::invalid_argument);
}

TEST(JobFile, ResolveAttachesDevices) {
  Testbed tb = Testbed::dl585();
  DeviceSet set;
  set.nic = &tb.nic();
  set.ssds = tb.ssds();

  const JobFile file = parse_job_file(
      "[net]\nioengine=rdma\nrw=read\ncpunodebind=2\n"
      "[disk]\nioengine=libaio\nrw=write\ncpunodebind=7\nnumjobs=2\n");
  const auto jobs = resolve_jobs(file, set);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].devices, std::vector<const PcieDevice*>{&tb.nic()});
  EXPECT_EQ(jobs[1].devices, tb.ssds());
}

TEST(JobFile, ResolveFailsWithoutNeededDevice) {
  const JobFile file = parse_job_file(
      "[disk]\nioengine=libaio\nrw=write\ncpunodebind=7\nnumjobs=2\n");
  DeviceSet empty;
  EXPECT_THROW(resolve_jobs(file, empty), std::invalid_argument);
}

TEST(JobFile, EndToEndThroughRunner) {
  // A job file drives the same measurement as hand-built jobs.
  Testbed tb = Testbed::dl585();
  DeviceSet set;
  set.nic = &tb.nic();
  const JobFile file = parse_job_file(
      "[global]\nioengine=rdma\nrw=read\nnumjobs=4\n"
      "[probe]\ncpunodebind=0\n");
  FioRunner fio(tb.host());
  const auto jobs = resolve_jobs(file, set);
  EXPECT_NEAR(fio.run(jobs[0]).aggregate, 18.3, 0.2);
}

}  // namespace
}  // namespace numaio::io
