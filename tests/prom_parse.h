// Shared Prometheus exposition-format parse-back validator, used by
// test_export.cpp (offline --prom exports) and test_serve.cpp (live
// /metrics scrapes): one set of format rules — TYPE headers, metric-name
// charset, cumulative buckets, the +Inf terminator — checked against
// every exporter surface.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

namespace numaio::obs::test_support {

/// Minimal exposition-format parser: validates comment/TYPE structure,
/// metric-name charset, and histogram bucket monotonicity, filling
/// family -> declared type. Fails the test on any malformed line (void
/// return so the ASSERT macros can bail out).
inline void parse_back(const std::string& text,
                       std::map<std::string, std::string>* out_types) {
  std::map<std::string, std::string>& types = *out_types;
  std::map<std::string, double> last_bucket;  // family -> last cumulative
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition output";
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string family, type;
      fields >> family >> type;
      ASSERT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram")
          << line;
      types[family] = type;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment: " << line;
    // Sample line: name[{labels}] value
    const std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    const std::string name = line.substr(0, name_end);
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      ASSERT_TRUE(ok) << "bad metric name char in " << name;
    }
    const std::size_t value_at = line.find_last_of(' ');
    const double value = std::stod(line.substr(value_at + 1));
    // Every sample must belong to a declared family.
    std::string family = name;
    for (const std::string suffix : {"_bucket", "_sum", "_count"}) {
      const std::size_t pos = family.size() > suffix.size()
                                  ? family.rfind(suffix)
                                  : std::string::npos;
      if (pos != std::string::npos && pos == family.size() - suffix.size() &&
          types.count(family.substr(0, pos)) != 0U) {
        family = family.substr(0, pos);
        break;
      }
    }
    ASSERT_NE(types.count(family), 0U) << "sample without TYPE: " << line;
    if (types[family] == "histogram" &&
        line.find("_bucket{le=") != std::string::npos) {
      ASSERT_GE(value, last_bucket[family]) << "non-cumulative: " << line;
      last_bucket[family] = value;
      if (line.find("le=\"+Inf\"") != std::string::npos) {
        last_bucket.erase(family);
      }
    }
  }
  for (const auto& [family, cum] : last_bucket) {
    ADD_FAILURE() << "histogram " << family << " missing +Inf bucket";
  }
}

}  // namespace numaio::obs::test_support
