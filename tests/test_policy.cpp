#include "nm/policy.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace numaio::nm {
namespace {

TEST(Policy, DefaultIsLocalPreferred) {
  const Policy p;
  EXPECT_EQ(p.mode, MemMode::kLocalPreferred);
  EXPECT_FALSE(p.cpu_node.has_value());
}

TEST(Policy, ParseCpuBindAndMemBind) {
  const Policy p = parse_numactl("--cpunodebind=7 --membind=3");
  EXPECT_EQ(p.cpu_node, 7);
  EXPECT_EQ(p.mode, MemMode::kBind);
  EXPECT_EQ(p.mem_nodes, (std::vector<NodeId>{3}));
}

TEST(Policy, ParseInterleaveList) {
  const Policy p = parse_numactl("--interleave=0,1,2");
  EXPECT_EQ(p.mode, MemMode::kInterleave);
  EXPECT_EQ(p.mem_nodes, (std::vector<NodeId>{0, 1, 2}));
}

TEST(Policy, ParseNodeRange) {
  const Policy p = parse_numactl("--membind=2-5");
  EXPECT_EQ(p.mem_nodes, (std::vector<NodeId>{2, 3, 4, 5}));
}

TEST(Policy, ParsePreferred) {
  const Policy p = parse_numactl("--preferred=2");
  EXPECT_EQ(p.mode, MemMode::kPreferred);
  EXPECT_EQ(p.mem_nodes, (std::vector<NodeId>{2}));
}

TEST(Policy, ParseLocalAlloc) {
  const Policy p = parse_numactl("--cpunodebind=4 --localalloc");
  EXPECT_EQ(p.mode, MemMode::kLocalPreferred);
  EXPECT_EQ(p.cpu_node, 4);
}

TEST(Policy, ShortOptions) {
  const Policy p = parse_numactl("-N=6 -i=0,7");
  EXPECT_EQ(p.cpu_node, 6);
  EXPECT_EQ(p.mode, MemMode::kInterleave);
  EXPECT_EQ(p.mem_nodes, (std::vector<NodeId>{0, 7}));
}

TEST(Policy, EmptySpecIsDefault) {
  EXPECT_EQ(parse_numactl(""), Policy{});
}

TEST(Policy, RejectsUnknownOption) {
  EXPECT_THROW(parse_numactl("--bogus=1"), std::invalid_argument);
}

TEST(Policy, RejectsMissingValue) {
  EXPECT_THROW(parse_numactl("--membind"), std::invalid_argument);
  EXPECT_THROW(parse_numactl("--membind="), std::invalid_argument);
}

TEST(Policy, RejectsMalformedList) {
  EXPECT_THROW(parse_numactl("--membind=1,,2"), std::invalid_argument);
  EXPECT_THROW(parse_numactl("--membind=a"), std::invalid_argument);
  EXPECT_THROW(parse_numactl("--membind=5-2"), std::invalid_argument);
}

TEST(Policy, RejectsMultiNodeCpuBind) {
  EXPECT_THROW(parse_numactl("--cpunodebind=1,2"), std::invalid_argument);
}

TEST(Policy, RejectsMultiNodePreferred) {
  EXPECT_THROW(parse_numactl("--preferred=1,2"), std::invalid_argument);
}

TEST(Policy, RoundTripThroughString) {
  for (const char* spec :
       {"--cpunodebind=7 --membind=3", "--cpunodebind=4 --interleave=0,1,2",
        "--preferred=2", "--localalloc"}) {
    const Policy p = parse_numactl(spec);
    EXPECT_EQ(parse_numactl(to_numactl_string(p)), p) << spec;
  }
}

TEST(Policy, ToStringSpellings) {
  Policy p;
  p.cpu_node = 7;
  p.mode = MemMode::kBind;
  p.mem_nodes = {3};
  EXPECT_EQ(to_numactl_string(p), "--cpunodebind=7 --membind=3");
}

}  // namespace
}  // namespace numaio::nm
