#include "model/asymmetry.h"

#include <gtest/gtest.h>

#include "fabric/calibration.h"
#include "topo/presets.h"

namespace numaio::model {
namespace {

class AsymmetryTest : public ::testing::Test {
 protected:
  fabric::Machine machine_{fabric::dl585_profile()};
  nm::Host host_{machine_};
  IoModelConfig quick_{.repetitions = 5};
};

TEST_F(AsymmetryTest, IoModelMatrixFillsRowAndColumnOfTheTarget) {
  const auto m = iomodel_matrix(host_, 7, quick_);
  EXPECT_GT(m.at(2, 7), 25.0);  // write model, weak direction
  EXPECT_GT(m.at(7, 2), 45.0);  // read model, strong direction
  EXPECT_DOUBLE_EQ(m.at(2, 3), 0.0);  // unmeasured stays empty
}

TEST_F(AsymmetryTest, FindsTheCalibratedWeakDirections) {
  const auto m = iomodel_matrix(host_, 7, quick_);
  const auto pairs = find_asymmetric_pairs(m, 1.15);
  ASSERT_FALSE(pairs.empty());
  // Worst asymmetry: 7->2 (50.3) vs 2->7 (26.0), ratio ~1.93.
  EXPECT_EQ(pairs.front().strong_src, 7);
  EXPECT_EQ(pairs.front().strong_dst, 2);
  EXPECT_NEAR(pairs.front().ratio, 1.93, 0.05);
  // The 4<->7 inversion (4->7 strong at 42.9, 7->4 weak at 27.9) shows up.
  bool found_47 = false;
  for (const auto& p : pairs) {
    if (p.strong_src == 4 && p.strong_dst == 7) found_47 = true;
  }
  EXPECT_TRUE(found_47);
}

TEST_F(AsymmetryTest, SortedByDescendingRatio) {
  const auto m = iomodel_matrix(host_, 7, quick_);
  const auto pairs = find_asymmetric_pairs(m, 1.05);
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_GE(pairs[i - 1].ratio, pairs[i].ratio);
  }
  for (const auto& p : pairs) {
    EXPECT_GE(p.forward, p.backward);
    EXPECT_GE(p.ratio, 1.05);
  }
}

TEST_F(AsymmetryTest, IdealizedHostHasNoFindings) {
  fabric::Machine machine{
      fabric::derived_profile(topo::magny_cours_4p('a'))};
  nm::Host host{machine};
  const auto m = iomodel_matrix(host, 7, quick_);
  EXPECT_TRUE(find_asymmetric_pairs(m, 1.15).empty());
}

TEST_F(AsymmetryTest, ThresholdGatesFindings) {
  const auto m = iomodel_matrix(host_, 7, quick_);
  EXPECT_GT(find_asymmetric_pairs(m, 1.05).size(),
            find_asymmetric_pairs(m, 1.5).size());
  EXPECT_TRUE(find_asymmetric_pairs(m, 10.0).empty());
}

TEST_F(AsymmetryTest, DescriptionsNameTheDirections) {
  const auto m = iomodel_matrix(host_, 7, quick_);
  const auto lines = describe(find_asymmetric_pairs(m, 1.5));
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.front().find("7->2"), std::string::npos);
  EXPECT_NE(lines.front().find("unganged link"), std::string::npos);
}

TEST_F(AsymmetryTest, FullStreamMatrixAlsoDiagnosable) {
  // The same scan works on the STREAM matrix (§IV-A's asymmetry).
  const auto bw = mem::stream_matrix(host_, mem::StreamConfig{});
  const auto pairs = find_asymmetric_pairs(bw, 1.15);
  ASSERT_FALSE(pairs.empty());
  bool found_74 = false;
  for (const auto& p : pairs) {
    // cpu7/mem4 = 21.34 vs cpu4/mem7 = 18.45 -> PIO asymmetry 7 vs 4.
    if ((p.strong_src == 7 && p.strong_dst == 4)) found_74 = true;
  }
  EXPECT_TRUE(found_74);
}

}  // namespace
}  // namespace numaio::model
