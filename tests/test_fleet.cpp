// Fleet serving core tests: admission primitives (token bucket, bounded
// shedding queue), circuit-breaker state sequencing, retry-budget
// exhaustion, and the full degradation contract of the storm scenario —
// bounded queue, lowest-priority-first sheds, accepted p99 within the
// deadline, crash re-placement, and every shed/trip/recovery trace event
// citing its causing `fault.transition` record — plus byte-identical
// same-seed runs.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "fleet/admission.h"
#include "fleet/breaker.h"
#include "fleet/fleet.h"
#include "obs/obs.h"

namespace numaio::fleet {
namespace {

// --- TokenBucket ---------------------------------------------------------

TEST(TokenBucketTest, StartsFullAndDrains) {
  TokenBucket bucket(/*rate_per_s=*/10.0, /*burst=*/3.0);
  EXPECT_DOUBLE_EQ(bucket.tokens(0.0), 3.0);
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_FALSE(bucket.try_take(0.0));
}

TEST(TokenBucketTest, RefillsAtRateAndCapsAtBurst) {
  TokenBucket bucket(/*rate_per_s=*/10.0, /*burst=*/3.0);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(bucket.try_take(0.0));
  // 10 tokens/s: one token back after 0.1 simulated seconds.
  EXPECT_FALSE(bucket.try_take(0.05e9));
  EXPECT_TRUE(bucket.try_take(0.11e9));
  // A long idle period refills to burst, not beyond.
  EXPECT_NEAR(bucket.tokens(100.0e9), 3.0, 1e-9);
}

TEST(TokenBucketTest, TimeNeverRunsBackwards) {
  TokenBucket bucket(10.0, 2.0);
  EXPECT_TRUE(bucket.try_take(1.0e9));
  const double level = bucket.tokens(1.0e9);
  EXPECT_DOUBLE_EQ(bucket.tokens(0.5e9), level);  // stale clock: no refill
}

// --- BoundedQueue --------------------------------------------------------

TEST(BoundedQueueTest, PopsHighestPriorityFifoWithinLevel) {
  BoundedQueue q(8);
  q.push({1, 0});
  q.push({2, 5});
  q.push({3, 5});
  q.push({4, 2});
  EXPECT_EQ(q.pop().request, 2);  // highest priority, earliest arrival
  EXPECT_EQ(q.pop().request, 3);
  EXPECT_EQ(q.pop().request, 4);
  EXPECT_EQ(q.pop().request, 1);
  EXPECT_TRUE(q.empty());
}

TEST(BoundedQueueTest, ShedsLowestPriorityLatestArrivalWhenFull) {
  BoundedQueue q(3);
  q.push({1, 1});
  q.push({2, 0});
  q.push({3, 0});
  // Full. A higher-priority push evicts the latest-arrived lowest item.
  const auto r = q.push({4, 2});
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.shed);
  EXPECT_EQ(r.victim.request, 3);
  EXPECT_EQ(q.depth(), 3);
}

TEST(BoundedQueueTest, IncomingItemIsShedWhenItDoesNotOutrank) {
  BoundedQueue q(2);
  q.push({1, 1});
  q.push({2, 1});
  const auto r = q.push({3, 1});  // ties do not displace queued work
  EXPECT_FALSE(r.accepted);
  EXPECT_TRUE(r.shed);
  EXPECT_EQ(r.victim.request, 3);
  EXPECT_EQ(q.depth(), 2);
}

TEST(BoundedQueueTest, DepthNeverExceedsMaxAndShedIsAlwaysMinimum) {
  BoundedQueue q(4);
  std::vector<int> priorities = {2, 0, 1, 3, 1, 0, 2, 3, 0, 1};
  for (int i = 0; i < static_cast<int>(priorities.size()); ++i) {
    const auto r = q.push({i, priorities[static_cast<std::size_t>(i)]});
    ASSERT_LE(q.depth(), 4);
    if (r.shed) {
      // Contract: the victim's priority is <= everything still queued.
      BoundedQueue copy = q;
      while (!copy.empty()) {
        EXPECT_LE(r.victim.priority, copy.pop().priority);
      }
    }
  }
}

TEST(BoundedQueueTest, RemoveDropsTheNamedRequest) {
  BoundedQueue q(4);
  q.push({1, 0});
  q.push({2, 1});
  EXPECT_TRUE(q.remove(1));
  EXPECT_FALSE(q.remove(1));
  EXPECT_EQ(q.pop().request, 2);
}

// --- CircuitBreaker ------------------------------------------------------

BreakerConfig small_breaker() {
  BreakerConfig config;
  config.failure_threshold = 3;
  config.open_cooldown = 1.0e9;
  config.probe_successes = 2;
  return config;
}

TEST(CircuitBreakerTest, ConsecutiveFailuresTripSuccessResets) {
  CircuitBreaker b(small_breaker());
  b.on_failure(0.0, false, "timeout");
  b.on_failure(0.0, false, "timeout");
  b.on_success(0.0, 1.0e6, false);  // streak broken
  b.on_failure(0.0, false, "timeout");
  b.on_failure(0.0, false, "timeout");
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  b.on_failure(0.0, false, "timeout");
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.trips(), 1);
}

TEST(CircuitBreakerTest, HalfOpenProbeSequencing) {
  CircuitBreaker b(small_breaker());
  b.trip(0.0, "crash");
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_FALSE(b.can_accept(0.5e9));  // cooldown still running
  EXPECT_TRUE(b.can_accept(1.0e9));

  bool probe = false;
  ASSERT_TRUE(b.try_acquire(1.0e9, &probe));
  EXPECT_TRUE(probe);
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  // One probe at a time: a second dispatch is refused while it is out.
  bool probe2 = false;
  EXPECT_FALSE(b.try_acquire(1.0e9, &probe2));

  b.on_success(1.1e9, 1.0e6, /*probe=*/true);
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);  // needs 2 successes
  ASSERT_TRUE(b.try_acquire(1.1e9, &probe));
  EXPECT_TRUE(probe);
  b.on_success(1.2e9, 1.0e6, /*probe=*/true);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndRestartsCooldown) {
  CircuitBreaker b(small_breaker());
  b.trip(0.0, "crash");
  bool probe = false;
  ASSERT_TRUE(b.try_acquire(1.0e9, &probe));
  b.on_failure(1.1e9, /*probe=*/true, "timeout");
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.trips(), 2);
  EXPECT_FALSE(b.can_accept(1.5e9));
  EXPECT_DOUBLE_EQ(b.reopen_at(), 2.1e9);
}

TEST(CircuitBreakerTest, P99BreachTripsOnceWindowIsFull) {
  BreakerConfig config;
  config.failure_threshold = 1000;  // only the p99 path can trip
  config.p99_limit = 10.0e6;
  config.latency_window = 4;
  CircuitBreaker b(config);
  for (int i = 0; i < 3; ++i) b.on_success(0.0, 50.0e6, false);
  EXPECT_EQ(b.state(), BreakerState::kClosed);  // window not yet full
  b.on_success(0.0, 50.0e6, false);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, TransitionCallbackSeesEveryEdge) {
  CircuitBreaker b(small_breaker());
  std::vector<std::string> edges;
  b.set_transition_callback([&](BreakerState from, BreakerState to, sim::Ns,
                                const char* reason) {
    edges.push_back(std::string(to_string(from)) + ">" + to_string(to) +
                    ":" + reason);
  });
  b.trip(0.0, "crash");
  bool probe = false;
  b.try_acquire(1.0e9, &probe);
  b.on_success(1.1e9, 1e6, true);
  b.try_acquire(1.1e9, &probe);
  b.on_success(1.2e9, 1e6, true);
  const std::vector<std::string> want = {"closed>open:crash",
                                         "open>half-open:cooldown",
                                         "half-open>closed:probes"};
  EXPECT_EQ(edges, want);
}

// --- admission status ----------------------------------------------------

TEST(AdmissionStatusTest, RejectionIsTypedOverloaded) {
  EXPECT_TRUE(admission_status(true, "").ok());
  const Status s = admission_status(false, "tenant quota exceeded");
  EXPECT_EQ(s.code, StatusCode::kOverloaded);
  EXPECT_EQ(s.message, "tenant quota exceeded");
}

// --- FleetSim ------------------------------------------------------------

TEST(FleetSimTest, RejectsDegenerateConfigs) {
  EXPECT_THROW(FleetSim(FleetConfig{}, {}), StatusError);
  FleetConfig config;
  config.num_hosts = 0;
  EXPECT_THROW(FleetSim(config, {TenantSpec{}}), StatusError);
  try {
    FleetSim sim(config, {TenantSpec{}});
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code, StatusCode::kUsage);
  }
}

/// All hosts hang for the whole run: every attempt times out, so retries
/// burn until the per-tenant budget is gone and requests fail typed.
TEST(FleetSimTest, RetryBudgetExhaustionUnderTotalHang) {
  FleetConfig config;
  config.num_hosts = 2;
  config.seed = 9;
  config.horizon = 0.4e9;
  config.deadline = 0.35e9;
  config.retry.max_retries = 10;       // budget binds first
  config.retry.timeout = 0.04e9;
  config.retry.base_backoff = 1.0e6;
  config.retry.max_backoff = 4.0e6;
  TenantSpec tenant;
  tenant.name = "stuck";
  tenant.arrival_rate_per_s = 30.0;
  tenant.quota_rate_per_s = 100.0;
  tenant.retry_budget = 2;

  faults::FaultPlan plan;
  for (int h = 0; h < config.num_hosts; ++h) {
    faults::FaultEvent hang;
    hang.kind = faults::FaultKind::kHostHang;
    hang.host = h;
    hang.start = 0.0;
    hang.duration = 1.0e9;
    plan.add(hang);
  }

  obs::Context ctx;
  obs::MemorySink capture;
  ctx.trace.set_sink(&capture);
  FleetSim sim(config, {tenant});
  sim.set_fault_plan(plan);
  sim.set_observer(&ctx);
  const FleetReport report = sim.run();

  EXPECT_GT(report.admitted, 0);
  EXPECT_EQ(report.completed, 0);
  EXPECT_EQ(report.failed, report.admitted);
  EXPECT_EQ(report.retries, 2);  // exactly the budget
  bool saw_budget_exhausted = false;
  for (const auto& e : capture.events) {
    if (e.name == "fleet.fail" && e.outcome == "retry-budget") {
      saw_budget_exhausted = true;
    }
  }
  EXPECT_TRUE(saw_budget_exhausted);
}

TEST(FleetSimTest, CalmFleetCompletesEverythingAdmitted) {
  // Control: same shape with no faults and mild load completes all
  // admitted work within deadline.
  FleetConfig config;
  config.num_hosts = 2;
  config.seed = 3;
  config.horizon = 1.0e9;
  TenantSpec tenant;
  tenant.name = "calm";
  tenant.arrival_rate_per_s = 50.0;
  tenant.quota_rate_per_s = 80.0;
  FleetSim sim(config, {tenant});
  const FleetReport report = sim.run();
  EXPECT_GT(report.admitted, 0);
  EXPECT_EQ(report.completed, report.admitted);
  EXPECT_EQ(report.shed, 0);
  EXPECT_EQ(report.failed, 0);
  EXPECT_LE(report.accepted_p99, config.deadline);
}

/// The ISSUE's acceptance scenario: seeded overload + one host crash.
/// Asserts the whole degradation contract on one captured run.
TEST(FleetSimTest, StormHonorsTheDegradationContract) {
  // Offered load sits just above 3-host capacity (~215 req/s per host);
  // the bounded queue rides out the mild overload until the crash removes
  // a third of the fleet — every shed is then a consequence of the fault
  // and must cite it.
  StormScenario storm =
      make_storm(/*num_hosts=*/3, /*num_tenants=*/3, /*offered_rps=*/700.0,
                 /*seed=*/11, /*horizon=*/2.0e9);
  obs::Context ctx;
  obs::MemorySink capture;
  ctx.trace.set_sink(&capture);
  FleetSim sim(storm.config, storm.tenants);
  sim.set_fault_plan(storm.plan);
  sim.set_observer(&ctx);
  const FleetReport report = sim.run();

  // No unbounded queue growth: depth never exceeded the configured bound.
  EXPECT_GT(report.submitted, 0);
  EXPECT_LE(report.max_queue_depth, storm.config.queue_depth);

  // Overload + a lost host actually shed work, and shed lowest-first:
  // the lowest-priority tenant takes the sheds, the highest loses none.
  ASSERT_EQ(report.tenants.size(), 3u);
  EXPECT_GT(report.shed, 0);
  EXPECT_GT(report.tenants[0].shed, 0);
  EXPECT_EQ(report.tenants[2].shed, 0);

  // Accepted requests stayed within the deadline bound.
  EXPECT_GT(report.completed, 0);
  EXPECT_LE(report.accepted_p99, storm.config.deadline);

  // The crash was noticed and survived: breaker tripped, in-flight work
  // re-placed, and the fleet still completed most of what it admitted.
  EXPECT_GE(report.breaker_trips, 1);
  EXPECT_GT(report.replaced, 0);
  EXPECT_GT(report.completed, report.admitted / 2);

  // Every shed / replace / breaker decision cites a causing
  // fault.transition record id present in the same capture.
  std::set<obs::EventId> transitions;
  for (const auto& e : capture.events) {
    if (e.name == "fault.transition") transitions.insert(e.id);
  }
  ASSERT_FALSE(transitions.empty());
  int audited = 0;
  for (const auto& e : capture.events) {
    if (e.name == "fleet.shed" || e.name == "fleet.replace" ||
        e.name == "fleet.breaker") {
      ++audited;
      EXPECT_NE(e.parent, 0u) << e.name << " at t=" << e.t_sim;
      EXPECT_TRUE(transitions.count(e.parent)) << e.name;
    }
  }
  EXPECT_GT(audited, 0);

  // Breaker recovery (half-open probes closing it) is in the record.
  bool saw_recovery = false;
  for (const auto& e : capture.events) {
    if (e.name == "fleet.breaker" && e.outcome == "closed") {
      saw_recovery = true;
    }
  }
  EXPECT_TRUE(saw_recovery);
}

std::string serialized_storm_run(std::uint64_t seed) {
  StormScenario storm = make_storm(3, 3, 700.0, seed, 1.5e9);
  std::ostringstream out;
  obs::Context ctx;
  obs::JsonlSink sink(out);
  ctx.trace.set_deterministic(true);
  ctx.trace.set_sink(&sink);
  FleetSim sim(storm.config, storm.tenants);
  sim.set_fault_plan(storm.plan);
  sim.set_observer(&ctx);
  sim.run();
  return out.str();
}

TEST(FleetSimTest, SameSeedRunsAreByteIdentical) {
  const std::string a = serialized_storm_run(21);
  const std::string b = serialized_storm_run(21);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, serialized_storm_run(22));
}

}  // namespace
}  // namespace numaio::fleet
