// Fleet-scale request path tests (DESIGN.md §12): the sharded admission
// state (tenant -> shard map, batched verdicts bit-identical to the
// per-request path, retry budgets isolated per tenant), and whole-run
// properties of the scale scenario — serialized traces invariant to the
// shard count, batched epochs replacing per-request admit/reject events,
// and shedding spread fairly across shards instead of concentrating in
// one arena. Every scale run here uses >= 2,000 tenants.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/admission.h"
#include "fleet/fleet.h"
#include "fleet/shard.h"
#include "obs/obs.h"
#include "simcore/rng.h"
#include "simcore/thread_pool.h"

namespace numaio::fleet {
namespace {

constexpr int kTenants = 2000;

std::vector<TenantSpec> scale_specs(int n) {
  std::vector<TenantSpec> specs;
  specs.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    TenantSpec s;
    s.name = "t";
    s.name += std::to_string(t);
    s.priority = t % 4;
    s.quota_rate_per_s = 40.0 + t % 7;
    s.quota_burst = 4.0;
    s.retry_budget = 8;
    specs.push_back(std::move(s));
  }
  return specs;
}

// --- ShardSet ------------------------------------------------------------

TEST(ShardSetTest, TenantMapIsDeterministicAndSpreads) {
  // Sequential tenant ids must not cluster: with 2,000 tenants over 8
  // shards every shard gets a meaningful population.
  std::vector<int> population(8, 0);
  for (int t = 0; t < kTenants; ++t) {
    const int s = shard_of_tenant(t, 8);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 8);
    EXPECT_EQ(s, shard_of_tenant(t, 8));  // pure function of (t, shards)
    ++population[static_cast<std::size_t>(s)];
  }
  for (const int p : population) EXPECT_GT(p, kTenants / 16);
  // Degenerate shard counts collapse to shard 0.
  EXPECT_EQ(shard_of_tenant(123, 1), 0);
  EXPECT_EQ(shard_of_tenant(123, 0), 0);
}

TEST(ShardSetTest, ShardOfMatchesFreeFunction) {
  const auto specs = scale_specs(kTenants);
  ShardSet set(specs, 8);
  EXPECT_EQ(set.num_shards(), 8);
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_EQ(set.shard_of(t), shard_of_tenant(t, 8));
  }
}

TEST(ShardSetTest, BatchVerdictsMatchPerRequestPathAcrossShardCounts) {
  // The contract the batched admission epoch rests on: verdicts from a
  // parallel multi-shard drain are bit-identical to taking each token
  // bucket serially in arrival order, for any shard count.
  const auto specs = scale_specs(kTenants);
  sim::Rng rng(404);
  std::vector<ShardSet::Arrival> arrivals;
  sim::Ns clock = 0.0;
  for (int i = 0; i < 6000; ++i) {
    clock += rng.uniform(0.0, 2.0e4);
    arrivals.push_back(
        {static_cast<int>(rng.below(kTenants)), clock});
  }

  // Reference: one bucket per tenant, drained serially.
  std::vector<TokenBucket> reference;
  reference.reserve(specs.size());
  for (const auto& s : specs) {
    reference.emplace_back(s.quota_rate_per_s, s.quota_burst);
  }
  std::vector<unsigned char> expected;
  for (const auto& a : arrivals) {
    expected.push_back(
        reference[static_cast<std::size_t>(a.tenant)].try_take(a.at) ? 1
                                                                     : 0);
  }

  sim::ThreadPool pool(4);
  for (const int shards : {1, 3, 8}) {
    ShardSet set(specs, shards);
    std::vector<unsigned char> verdicts;
    set.admit_batch(arrivals, verdicts, shards > 1 ? &pool : nullptr);
    EXPECT_EQ(verdicts, expected) << shards << " shards";
  }
}

TEST(ShardSetTest, RetryBudgetsDoNotLeakAcrossShards) {
  // Draining one tenant's retry budget must not move any other tenant's
  // — in its own shard or any other.
  const auto specs = scale_specs(kTenants);
  ShardSet set(specs, 8);
  std::set<int> drained;
  for (int t = 0; t < kTenants; t += 97) {
    set.retry_budget(t) = 0;
    drained.insert(t);
  }
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_EQ(set.retry_budget(t), drained.count(t) ? 0 : 8) << t;
  }
}

// --- whole-run scale properties ------------------------------------------

std::string serialized_scale_run(int shards, std::uint64_t seed) {
  StormScenario storm = make_scale_storm(
      /*num_hosts=*/8, /*num_tenants=*/kTenants, /*offered_rps=*/30000.0,
      seed, /*horizon=*/0.4e9);
  storm.config.shards = shards;
  std::ostringstream out;
  obs::Context ctx;
  obs::JsonlSink sink(out);
  ctx.trace.set_deterministic(true);
  ctx.trace.set_sink(&sink);
  FleetSim sim(storm.config, storm.tenants);
  sim.set_fault_plan(storm.plan);
  sim.set_observer(&ctx);
  sim.run();
  return out.str();
}

TEST(FleetScaleTest, TracesAreByteIdenticalAcrossShardCounts) {
  // The determinism contract: the shard count partitions work, it never
  // changes outcomes — one shard and eight produce the same trace bytes.
  const std::string one = serialized_scale_run(1, 29);
  const std::string eight = serialized_scale_run(8, 29);
  EXPECT_GT(one.size(), 0u);
  EXPECT_EQ(one, eight);
  // Still seed-sensitive (the comparison above is not trivially true).
  EXPECT_NE(one, serialized_scale_run(8, 30));
}

TEST(FleetScaleTest, BatchedEpochsReplacePerRequestAdmissionEvents) {
  StormScenario storm =
      make_scale_storm(8, kTenants, 30000.0, /*seed=*/5, /*horizon=*/0.4e9);
  obs::Context ctx;
  obs::MemorySink capture;
  ctx.trace.set_sink(&capture);
  FleetSim sim(storm.config, storm.tenants);
  sim.set_fault_plan(storm.plan);
  sim.set_observer(&ctx);
  const FleetReport report = sim.run();

  ASSERT_GT(report.submitted, 0);
  EXPECT_GT(report.completed, 0);

  long long epochs = 0;
  long long arrivals_spanned = 0;
  for (const auto& e : capture.events) {
    if (e.kind != 'B' || e.name != "fleet.admit_batch") continue;
    ++epochs;
    arrivals_spanned += e.bytes;
  }
  // Epochs coalesce arrivals: far fewer spans than requests, but every
  // submitted request is accounted to exactly one epoch.
  ASSERT_GT(epochs, 0);
  EXPECT_LT(epochs, report.submitted);
  EXPECT_EQ(arrivals_spanned, report.submitted);
  // And the per-request admission events are gone in batched mode.
  for (const auto& e : capture.events) {
    EXPECT_NE(e.name, "fleet.admit");
    EXPECT_NE(e.name, "fleet.reject");
  }

  // Placement latency (admission -> first dispatch) is ordered sanely;
  // at this light load most requests dispatch within their own epoch.
  EXPECT_GE(report.placement_p99, 0.0);
  EXPECT_LE(report.placement_p50, report.placement_p99);
}

std::string serialized_engine_run(int event_lanes, int queue_shards,
                                  std::uint64_t seed) {
  StormScenario storm = make_scale_storm(
      /*num_hosts=*/8, /*num_tenants=*/kTenants, /*offered_rps=*/30000.0,
      seed, /*horizon=*/0.4e9);
  storm.config.event_lanes = event_lanes;
  storm.config.queue_shards = queue_shards;
  std::ostringstream out;
  obs::Context ctx;
  obs::JsonlSink sink(out);
  ctx.trace.set_deterministic(true);
  ctx.trace.set_sink(&sink);
  FleetSim sim(storm.config, storm.tenants);
  sim.set_fault_plan(storm.plan);
  sim.set_observer(&ctx);
  sim.run();
  return out.str();
}

TEST(FleetScaleTest, TracesAreByteIdenticalAcrossEventLanes) {
  // The ISSUE 10 determinism contract: event lanes partition the host
  // timelines, they never change outcomes — one lane (the serial
  // reference), two, and eight produce the same trace bytes.
  const std::string one = serialized_engine_run(/*event_lanes=*/1, 8, 31);
  const std::string two = serialized_engine_run(/*event_lanes=*/2, 8, 31);
  const std::string eight = serialized_engine_run(/*event_lanes=*/8, 8, 31);
  EXPECT_GT(one.size(), 0u);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  // Still seed-sensitive (the comparison above is not trivially true).
  EXPECT_NE(one, serialized_engine_run(8, 8, 32));
}

TEST(FleetScaleTest, TracesAreByteIdenticalAcrossQueueShardCounts) {
  // Same contract for the sharded post-admission queue: shed victims and
  // dispatch order are global properties, whatever the shard count.
  const std::string one = serialized_engine_run(1, /*queue_shards=*/1, 37);
  const std::string eight = serialized_engine_run(1, /*queue_shards=*/8, 37);
  EXPECT_GT(one.size(), 0u);
  EXPECT_EQ(one, eight);
}

TEST(FleetScaleTest, MixedSkuFleetSplitsIntoClassesAndSpreads) {
  // make_scale_storm marks every third host as the lite SKU (~55% of the
  // ConnectX-3 ceilings): with 6 hosts, 2 and 5 run the slow NIC. The
  // gap classifier must see two capacity populations, and the
  // class-spread cursor must actually serve from more than one class.
  StormScenario storm = make_scale_storm(
      /*num_hosts=*/6, /*num_tenants=*/kTenants, /*offered_rps=*/30000.0,
      /*seed=*/7, /*horizon=*/0.4e9);
  obs::Context ctx;
  FleetSim sim(storm.config, storm.tenants);
  sim.set_fault_plan(storm.plan);
  sim.set_observer(&ctx);
  const FleetReport report = sim.run();

  EXPECT_GT(report.completed, 0);
  EXPECT_GE(ctx.metrics.value("placement.class_count"), 2.0);
  EXPECT_GT(ctx.metrics.value("placement.class_spread"), 0.0);
  // The engine/queue instrumentation of the scale scenario is live.
  EXPECT_EQ(ctx.metrics.value("fleet.queue_shards"), 8.0);
  EXPECT_EQ(ctx.metrics.value("engine.lanes"), 6.0);  // one lane per host
  EXPECT_GT(ctx.metrics.value("engine.lane_rounds"), 0.0);
  EXPECT_GT(report.lane_rounds, 0);
}

TEST(FleetScaleTest, SheddingIsSpreadFairlyAcrossShards) {
  // Overload a small fleet hard enough that the bounded queue sheds, and
  // check no shard's tenants are singled out: sheds land in every shard,
  // none absorbs a majority. (Priorities cycle t % 4, and the tenant
  // hash spreads priorities evenly across shards, so a fair queue sheds
  // evenly by shard even though it sheds strictly by priority.)
  StormScenario storm = make_scale_storm(
      /*num_hosts=*/2, /*num_tenants=*/kTenants, /*offered_rps=*/60000.0,
      /*seed=*/17, /*horizon=*/0.4e9);
  FleetSim sim(storm.config, storm.tenants);
  sim.set_fault_plan(storm.plan);
  const FleetReport report = sim.run();

  ASSERT_GT(report.shed, 0);
  // With a real backlog, placement latency is measurable and positive.
  EXPECT_GT(report.placement_p99, 0.0);
  EXPECT_LE(report.placement_p50, report.placement_p99);
  ASSERT_EQ(report.tenants.size(), static_cast<std::size_t>(kTenants));
  std::vector<long long> shed_by_shard(8, 0);
  for (int t = 0; t < kTenants; ++t) {
    shed_by_shard[static_cast<std::size_t>(
        shard_of_tenant(t, storm.config.shards))] +=
        report.tenants[static_cast<std::size_t>(t)].shed;
  }
  for (int s = 0; s < 8; ++s) {
    EXPECT_GT(shed_by_shard[static_cast<std::size_t>(s)], 0) << "shard " << s;
    EXPECT_LT(shed_by_shard[static_cast<std::size_t>(s)], report.shed / 2)
        << "shard " << s;
  }
}

TEST(FleetScaleTest, RetryBudgetsStayPerTenantUnderLoad) {
  // A run where retries happen (host crash mid-run) must never push any
  // tenant past its own budget: retries are per-tenant state in the
  // tenant's shard, not a shared pool that a hot shard could drain.
  StormScenario storm =
      make_scale_storm(4, kTenants, 20000.0, /*seed=*/23, /*horizon=*/0.5e9);
  FleetSim sim(storm.config, storm.tenants);
  sim.set_fault_plan(storm.plan);
  const FleetReport report = sim.run();

  ASSERT_EQ(report.tenants.size(), static_cast<std::size_t>(kTenants));
  const long long budget = storm.tenants.front().retry_budget;
  long long total_retries = 0;
  for (const auto& t : report.tenants) {
    EXPECT_LE(t.retries, budget) << t.name;
    total_retries += t.retries;
  }
  EXPECT_EQ(total_retries, report.retries);
}

}  // namespace
}  // namespace numaio::fleet
