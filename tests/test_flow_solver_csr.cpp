// CSR / epoch-cache behavior of FlowSolver: cache hits and invalidation
// per mutator, free-list slot recycling, capacity factors, profiling
// counters, and the zero-steady-state-allocation guarantee of the solve
// scratch (a fluid_replay-style run must not grow scratch after warmup).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/obs.h"
#include "simcore/fluid_sim.h"
#include "simcore/flow_solver.h"
#include "simcore/rng.h"
#include "simcore/units.h"

namespace numaio::sim {
namespace {

FlowSolver two_link_solver(ResourceId* a, ResourceId* b) {
  FlowSolver s;
  *a = s.add_resource("a", 10.0);
  *b = s.add_resource("b", 20.0);
  return s;
}

TEST(FlowSolverCache, RepeatedSolvesHitTheCache) {
  ResourceId a = 0, b = 0;
  FlowSolver s = two_link_solver(&a, &b);
  const FlowId f = s.add_flow_over({a, b});
  const FlowId g = s.add_flow_over({a});

  const auto& r1 = s.solve();
  EXPECT_EQ(s.stats().solve_calls, 1u);
  EXPECT_EQ(s.stats().cache_misses, 1u);
  EXPECT_EQ(s.stats().cache_hits, 0u);

  const auto& r2 = s.solve();
  EXPECT_EQ(&r1, &r2);  // same cached vector, no recompute
  EXPECT_EQ(s.stats().cache_hits, 1u);
  EXPECT_EQ(s.stats().cache_misses, 1u);

  // aggregate_rate and utilization ride the cache after a solve.
  const Gbps agg = s.aggregate_rate();
  const double util = s.utilization(a);
  EXPECT_EQ(s.stats().cache_hits, 3u);
  EXPECT_EQ(s.stats().cache_misses, 1u);
  EXPECT_DOUBLE_EQ(agg, r1[f] + r1[g]);
  EXPECT_DOUBLE_EQ(util, 1.0);
}

TEST(FlowSolverCache, EveryMutatorInvalidates) {
  ResourceId a = 0, b = 0;
  FlowSolver s = two_link_solver(&a, &b);
  const FlowId f = s.add_flow_over({a, b});
  (void)f;

  auto expect_miss_after = [&](const char* what) {
    const std::uint64_t misses = s.stats().cache_misses;
    (void)s.solve();
    EXPECT_EQ(s.stats().cache_misses, misses + 1) << what;
  };

  expect_miss_after("initial");
  s.set_capacity(a, 12.0);
  expect_miss_after("set_capacity");
  s.set_capacity_factor(a, 0.5);
  expect_miss_after("set_capacity_factor");
  s.set_flow_cap(f, 3.0);
  expect_miss_after("set_flow_cap");
  const FlowId g = s.add_flow_over({b});
  expect_miss_after("add_flow");
  s.remove_flow(g);
  expect_miss_after("remove_flow");
}

TEST(FlowSolverCache, ValuePreservingMutationsKeepTheCacheWarm) {
  ResourceId a = 0, b = 0;
  FlowSolver s = two_link_solver(&a, &b);
  const FlowId f = s.add_flow_over({a, b}, 4.0);
  (void)s.solve();
  const std::uint64_t epoch = s.epoch();

  s.set_capacity(a, 10.0);        // unchanged capacity
  s.set_capacity_factor(a, 1.0);  // unchanged factor
  s.set_flow_cap(f, 4.0);         // unchanged cap
  EXPECT_EQ(s.epoch(), epoch);

  (void)s.solve();
  EXPECT_EQ(s.stats().cache_hits, 1u);
  EXPECT_EQ(s.stats().cache_misses, 1u);

  s.set_capacity(a, 9.0);
  EXPECT_GT(s.epoch(), epoch);
}

TEST(FlowSolverCache, ProfilingCountersReachTheRegistry) {
  obs::Context ctx;
  ResourceId a = 0, b = 0;
  FlowSolver s = two_link_solver(&a, &b);
  s.set_observer(&ctx);
  (void)s.add_flow_over({a, b}, 4.0);
  (void)s.add_flow_over({a});

  (void)s.solve();
  (void)s.solve();            // hit
  (void)s.aggregate_rate();   // hit

  EXPECT_EQ(ctx.metrics.value("solver.solves"), 3.0);
  EXPECT_EQ(ctx.metrics.value("solver.cache_hits"), 2.0);
  EXPECT_EQ(ctx.metrics.value("solver.cache_misses"), 1.0);
  EXPECT_EQ(ctx.metrics.value("solver.rounds"),
            static_cast<double>(s.stats().rounds));
  EXPECT_GT(ctx.metrics.value("solver.flows_scanned"), 0.0);
  EXPECT_GT(ctx.metrics.value("solver.resource_touches"), 0.0);
  // Intrinsic stats mirror the registry even without an observer.
  EXPECT_EQ(static_cast<double>(s.stats().flows_scanned),
            ctx.metrics.value("solver.flows_scanned"));
}

TEST(FlowSolverFreeList, RemovedSlotsAreRecycled) {
  ResourceId a = 0, b = 0;
  FlowSolver s = two_link_solver(&a, &b);
  const FlowId f0 = s.add_flow_over({a});
  const FlowId f1 = s.add_flow_over({a, b});
  const FlowId f2 = s.add_flow_over({b});
  EXPECT_EQ(s.live_flow_count(), 3u);

  s.remove_flow(f1);
  EXPECT_FALSE(s.flow_alive(f1));

  // A same-or-smaller flow reuses the freed slot (and its arena span).
  const FlowId g = s.add_flow_over({b, a});
  EXPECT_EQ(g, f1);
  EXPECT_TRUE(s.flow_alive(g));
  EXPECT_EQ(s.live_flow_count(), 3u);
  EXPECT_EQ(s.solve().size(), 3u);  // slot table did not grow

  // A wider flow still recycles the slot id, with a fresh arena span.
  s.remove_flow(f0);
  const FlowId h = s.add_flow_over({a, b, a});
  EXPECT_EQ(h, f0);
  EXPECT_EQ(s.solve().size(), 3u);
  (void)f2;
}

TEST(FlowSolverFreeList, ChurnKeepsTheSlotTableBounded) {
  ResourceId a = 0, b = 0;
  FlowSolver s = two_link_solver(&a, &b);
  Rng rng(99);
  std::vector<FlowId> live;
  for (int i = 0; i < 8; ++i) live.push_back(s.add_flow_over({a, b}));
  for (int i = 0; i < 500; ++i) {
    const std::size_t k = rng.below(live.size());
    s.remove_flow(live[k]);
    live[k] = s.add_flow_over(rng.uniform() < 0.5
                                  ? std::vector<ResourceId>{a, b}
                                  : std::vector<ResourceId>{b});
    EXPECT_LE(live[k], 8u);  // always a recycled slot
  }
  EXPECT_EQ(s.live_flow_count(), 8u);
  EXPECT_EQ(s.solve().size(), 8u);
}

TEST(FlowSolverCapacityFactor, FactorsComposeWithBaseCapacity) {
  FlowSolver s;
  const ResourceId r = s.add_resource("r", 10.0);
  EXPECT_EQ(s.capacity_factor(r), 1.0);

  s.set_capacity_factor(r, 0.5);
  EXPECT_DOUBLE_EQ(s.capacity(r), 5.0);
  EXPECT_EQ(s.capacity_factor(r), 0.5);

  // set_capacity adjusts the base; the factor survives.
  s.set_capacity(r, 20.0);
  EXPECT_DOUBLE_EQ(s.capacity(r), 10.0);
  EXPECT_EQ(s.capacity_factor(r), 0.5);

  // Factor 1.0 restores the base bit-exactly (no multiply involved).
  s.set_capacity_factor(r, 1.0);
  EXPECT_EQ(s.capacity(r), 20.0);

  const FlowId f = s.add_flow_over({r});
  s.set_capacity_factor(r, 0.25);
  EXPECT_DOUBLE_EQ(s.solve()[f], 5.0);
}

// The fluid_replay allocation gate: after the warmup ramp (all initial
// transfers active once, scratch sized to the peak), a steady-state churn
// of completions spawning follow-up transfers must not grow any solve
// scratch — stats().scratch_grows stays frozen for the rest of the run.
TEST(FlowSolverScratch, FluidReplaySteadyStateDoesNotAllocate) {
  FlowSolver solver;
  std::vector<ResourceId> links;
  for (int i = 0; i < 6; ++i) {
    links.push_back(solver.add_resource("link", 25.0));
  }
  FluidSimulation fluid(solver);
  Rng rng(0x5CA7);

  auto usages = [&] {
    const std::size_t i = rng.below(links.size());
    return std::vector<Usage>{{links[i], 1.0},
                              {links[(i + 1) % links.size()], 1.0}};
  };
  // Completion chains: each of 24 initial transfers respawns itself 20
  // times, so slots churn through the free-list at peak concurrency.
  std::function<void(int)> spawn = [&](int generation) {
    FluidSimulation::CompletionFn next;
    if (generation > 0) {
      next = [&spawn, generation](FluidSimulation::TransferId, Ns) {
        spawn(generation - 1);
      };
    }
    fluid.start_transfer(usages(), (1 + rng.below(4)) * kMiB, kUnlimited,
                         std::move(next));
  };
  for (int i = 0; i < 24; ++i) spawn(20);

  // By this control point every initial transfer has been active and
  // solved at least once, so all scratch has reached its peak size.
  std::uint64_t warm_grows = 0;
  bool recorded = false;
  fluid.schedule_control(2.0e6, [&] {
    warm_grows = solver.stats().scratch_grows;
    recorded = true;
  });

  fluid.run();
  ASSERT_TRUE(recorded);
  EXPECT_GT(solver.stats().solve_calls, 100u);
  EXPECT_EQ(solver.stats().scratch_grows, warm_grows)
      << "solve scratch reallocated during steady-state churn";
}

}  // namespace
}  // namespace numaio::sim
