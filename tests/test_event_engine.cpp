#include "simcore/event_engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace numaio::sim {
namespace {

TEST(EventEngine, StartsAtZero) {
  EventEngine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(EventEngine, RunsEventsInTimeOrder) {
  EventEngine e;
  std::vector<int> order;
  e.schedule_at(30.0, [&] { order.push_back(3); });
  e.schedule_at(10.0, [&] { order.push_back(1); });
  e.schedule_at(20.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 30.0);
}

TEST(EventEngine, SameTimestampFifo) {
  EventEngine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventEngine, ScheduleInIsRelative) {
  EventEngine e;
  double fired_at = -1.0;
  e.schedule_at(100.0, [&] {
    e.schedule_in(50.0, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 150.0);
}

TEST(EventEngine, RunUntilStopsAtBoundary) {
  EventEngine e;
  int fired = 0;
  e.schedule_at(10.0, [&] { ++fired; });
  e.schedule_at(20.0, [&] { ++fired; });
  e.schedule_at(30.0, [&] { ++fired; });
  e.run_until(20.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 20.0);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventEngine, RunUntilAdvancesClockWithoutEvents) {
  EventEngine e;
  e.run_until(500.0);
  EXPECT_DOUBLE_EQ(e.now(), 500.0);
}

TEST(EventEngine, EventsCanCascade) {
  EventEngine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) e.schedule_in(1.0, chain);
  };
  e.schedule_at(0.0, chain);
  e.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(e.now(), 9.0);
}

TEST(EventEngine, NextEventTime) {
  EventEngine e;
  EXPECT_EQ(e.next_event_time(), kUnlimited);
  e.schedule_at(42.0, [] {});
  EXPECT_DOUBLE_EQ(e.next_event_time(), 42.0);
}

}  // namespace
}  // namespace numaio::sim
