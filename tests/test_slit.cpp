#include "nm/slit.h"

#include <gtest/gtest.h>

#include "fabric/calibration.h"
#include "topo/presets.h"

namespace numaio::nm {
namespace {

TEST(Slit, DiagonalIsTenAndHopsScaleByTen) {
  const auto topo = topo::magny_cours_4p('a');
  const auto slit = slit_table(topo);
  EXPECT_EQ(slit[7][7], 10);
  EXPECT_EQ(slit[7][6], 20);  // neighbor: one hop
  EXPECT_EQ(slit[7][0], 20);  // one inter-package hop
  EXPECT_EQ(slit[7][1], 30);  // two hops
}

TEST(Slit, TableIsSymmetricForUndirectedWiring) {
  const auto slit = slit_table(topo::magny_cours_4p('b'));
  for (std::size_t a = 0; a < slit.size(); ++a) {
    for (std::size_t b = 0; b < slit.size(); ++b) {
      EXPECT_EQ(slit[a][b], slit[b][a]);
    }
  }
}

TEST(Slit, RenderLooksLikeNumactl) {
  const auto text = render_slit(slit_table(topo::magny_cours_4p('a')));
  EXPECT_NE(text.find("node distances:"), std::string::npos);
  EXPECT_NE(text.find("   0:"), std::string::npos);
  EXPECT_NE(text.find("  10"), std::string::npos);
}

TEST(Slit, AccurateOnIdealizedHost) {
  fabric::Machine machine{
      fabric::derived_profile(topo::magny_cours_4p('a'))};
  Host host{machine};
  const auto bw = mem::stream_matrix(host, mem::StreamConfig{});
  const double acc = slit_accuracy(slit_table(machine.topology()), bw);
  EXPECT_GT(acc, 0.95);
}

TEST(Slit, InaccurateOnTheCalibratedHost) {
  // The paper's complaint ([18], §II-B): numactl's distances mispredict
  // the measured behaviour of the real machine.
  fabric::Machine machine{fabric::dl585_profile()};
  Host host{machine};
  const auto bw = mem::stream_matrix(host, mem::StreamConfig{});
  const double acc = slit_accuracy(slit_table(machine.topology()), bw);
  EXPECT_LT(acc, 0.85);
}

}  // namespace
}  // namespace numaio::nm
