#include "simcore/flow_solver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace numaio::sim {
namespace {

TEST(FlowSolver, SingleFlowTakesFullCapacity) {
  FlowSolver s;
  const ResourceId r = s.add_resource("link", 10.0);
  const FlowId f = s.add_flow_over({r});
  EXPECT_DOUBLE_EQ(s.solve()[f], 10.0);
}

TEST(FlowSolver, EqualSharingAmongPeers) {
  FlowSolver s;
  const ResourceId r = s.add_resource("link", 12.0);
  const FlowId a = s.add_flow_over({r});
  const FlowId b = s.add_flow_over({r});
  const FlowId c = s.add_flow_over({r});
  const auto rates = s.solve();
  EXPECT_DOUBLE_EQ(rates[a], 4.0);
  EXPECT_DOUBLE_EQ(rates[b], 4.0);
  EXPECT_DOUBLE_EQ(rates[c], 4.0);
}

TEST(FlowSolver, FlowCapFreesCapacityForOthers) {
  FlowSolver s;
  const ResourceId r = s.add_resource("link", 12.0);
  const FlowId a = s.add_flow_over({r}, /*rate_cap=*/2.0);
  const FlowId b = s.add_flow_over({r});
  const auto rates = s.solve();
  EXPECT_DOUBLE_EQ(rates[a], 2.0);
  EXPECT_DOUBLE_EQ(rates[b], 10.0);  // max-min: leftover goes to b
}

TEST(FlowSolver, BottleneckIsTheNarrowestResource) {
  FlowSolver s;
  const ResourceId wide = s.add_resource("wide", 100.0);
  const ResourceId narrow = s.add_resource("narrow", 5.0);
  const FlowId f = s.add_flow_over({wide, narrow});
  EXPECT_DOUBLE_EQ(s.solve()[f], 5.0);
}

TEST(FlowSolver, MultiHopFlowsShareEveryLink) {
  // Classic max-min example: one long flow over two links, one short flow
  // on each link. The long flow gets the min fair share.
  FlowSolver s;
  const ResourceId l1 = s.add_resource("l1", 10.0);
  const ResourceId l2 = s.add_resource("l2", 10.0);
  const FlowId lng = s.add_flow_over({l1, l2});
  const FlowId s1 = s.add_flow_over({l1});
  const FlowId s2 = s.add_flow_over({l2});
  const auto rates = s.solve();
  EXPECT_DOUBLE_EQ(rates[lng], 5.0);
  EXPECT_DOUBLE_EQ(rates[s1], 5.0);
  EXPECT_DOUBLE_EQ(rates[s2], 5.0);
}

TEST(FlowSolver, DuplicateResourceCountsTwice) {
  // A copy whose both legs cross the same memory controller consumes 2x.
  FlowSolver s;
  const ResourceId mc = s.add_resource("mc", 10.0);
  const FlowId f = s.add_flow_over({mc, mc});
  EXPECT_DOUBLE_EQ(s.solve()[f], 5.0);
}

TEST(FlowSolver, WeightedUsageScalesConsumption) {
  // A flow consuming 0.5 units per Gbps can run at twice the capacity.
  FlowSolver s;
  const ResourceId cpu = s.add_resource("cpu", 10.0);
  const FlowId f = s.add_flow({{cpu, 0.5}});
  EXPECT_DOUBLE_EQ(s.solve()[f], 20.0);
}

TEST(FlowSolver, MixedWeightsShareProportionally) {
  FlowSolver s;
  const ResourceId r = s.add_resource("r", 9.0);
  const FlowId heavy = s.add_flow({{r, 2.0}});
  const FlowId light = s.add_flow({{r, 1.0}});
  const auto rates = s.solve();
  // Equal-rate filling: both reach x where 2x + x = 9 -> x = 3.
  EXPECT_DOUBLE_EQ(rates[heavy], 3.0);
  EXPECT_DOUBLE_EQ(rates[light], 3.0);
}

TEST(FlowSolver, SameResourceTwiceWithDifferentWeightsAccumulates) {
  // App work and IRQ work both landing on one node's CPU.
  FlowSolver s;
  const ResourceId cpu = s.add_resource("cpu", 28.0);
  const FlowId f = s.add_flow({{cpu, 1.0}, {cpu, 0.4}});
  EXPECT_NEAR(s.solve()[f], 28.0 / 1.4, 1e-9);
}

TEST(FlowSolver, RemoveFlowRestoresCapacity) {
  FlowSolver s;
  const ResourceId r = s.add_resource("r", 10.0);
  const FlowId a = s.add_flow_over({r});
  const FlowId b = s.add_flow_over({r});
  EXPECT_DOUBLE_EQ(s.solve()[a], 5.0);
  s.remove_flow(b);
  EXPECT_FALSE(s.flow_alive(b));
  const auto rates = s.solve();
  EXPECT_DOUBLE_EQ(rates[a], 10.0);
  EXPECT_DOUBLE_EQ(rates[b], 0.0);
}

TEST(FlowSolver, SetCapacityTakesEffect) {
  FlowSolver s;
  const ResourceId r = s.add_resource("r", 10.0);
  const FlowId f = s.add_flow_over({r});
  s.set_capacity(r, 4.0);
  EXPECT_DOUBLE_EQ(s.solve()[f], 4.0);
  EXPECT_DOUBLE_EQ(s.capacity(r), 4.0);
}

TEST(FlowSolver, SetFlowCapTakesEffect) {
  FlowSolver s;
  const ResourceId r = s.add_resource("r", 10.0);
  const FlowId f = s.add_flow_over({r});
  s.set_flow_cap(f, 3.0);
  EXPECT_DOUBLE_EQ(s.solve()[f], 3.0);
  EXPECT_DOUBLE_EQ(s.flow_cap(f), 3.0);
}

TEST(FlowSolver, UnlimitedResourceNeverBinds) {
  FlowSolver s;
  const ResourceId inf = s.add_resource("inf", kUnlimited);
  const FlowId f = s.add_flow_over({inf}, 7.5);
  EXPECT_DOUBLE_EQ(s.solve()[f], 7.5);
  EXPECT_DOUBLE_EQ(s.utilization(inf), 0.0);
}

TEST(FlowSolver, ZeroCapacityResourceStarvesFlows) {
  FlowSolver s;
  const ResourceId dead = s.add_resource("dead", 0.0);
  const FlowId f = s.add_flow_over({dead});
  EXPECT_DOUBLE_EQ(s.solve()[f], 0.0);
}

TEST(FlowSolver, AggregateRateSumsLiveFlows) {
  FlowSolver s;
  const ResourceId r = s.add_resource("r", 10.0);
  s.add_flow_over({r});
  s.add_flow_over({r}, 1.0);
  EXPECT_DOUBLE_EQ(s.aggregate_rate(), 10.0);
}

TEST(FlowSolver, UtilizationReflectsWeightedLoad) {
  FlowSolver s;
  const ResourceId r = s.add_resource("r", 10.0);
  s.add_flow({{r, 2.0}}, 2.0);  // 2 Gbps * weight 2 = 4 units of 10
  EXPECT_NEAR(s.utilization(r), 0.4, 1e-9);
}

TEST(FlowSolver, ResourceNamesAreKept) {
  FlowSolver s;
  const ResourceId r = s.add_resource("fab:2>7", 26.0);
  EXPECT_EQ(s.resource_name(r), "fab:2>7");
  EXPECT_EQ(s.resource_count(), 1u);
}

TEST(FlowSolver, SolveIsIdempotent) {
  FlowSolver s;
  const ResourceId r = s.add_resource("r", 10.0);
  const FlowId a = s.add_flow_over({r});
  const auto r1 = s.solve();
  const auto r2 = s.solve();
  EXPECT_EQ(r1[a], r2[a]);
}

TEST(FlowSolver, FrozenWeightResidueDoesNotStallIndependentFlows) {
  // Regression: four flows with weight 0.0485 on one engine leave a
  // ~1e-17 weight residue when they freeze; that residue must not make
  // the saturated engine emit a bogus delta and stall the *other*
  // engine's flows below their fair level (found via the staging
  // pipeline: SSD flushes froze at the TCP flows' level).
  FlowSolver s;
  const ResourceId e = s.add_resource("tcp-engine", 1.0);
  const ResourceId f = s.add_resource("ssd-engine", 1.0);
  std::vector<FlowId> tcp, ssd;
  for (int i = 0; i < 4; ++i) tcp.push_back(s.add_flow({{e, 0.0485}}, 5.829));
  for (int i = 0; i < 2; ++i) ssd.push_back(s.add_flow({{f, 0.0689}}, 8.48));
  const auto rates = s.solve();
  EXPECT_NEAR(rates[tcp[0]], 1.0 / (4 * 0.0485), 1e-9);
  EXPECT_NEAR(rates[ssd[0]], 1.0 / (2 * 0.0689), 1e-9);
  EXPECT_NEAR(s.utilization(f), 1.0, 1e-9);
}

// Property sweep: with n identical flows over one resource, each gets
// capacity/n and the sum saturates the resource exactly.
class FairShareSweep : public ::testing::TestWithParam<int> {};

TEST_P(FairShareSweep, EqualSplitSaturates) {
  const int n = GetParam();
  FlowSolver s;
  const ResourceId r = s.add_resource("r", 33.0);
  std::vector<FlowId> flows;
  for (int i = 0; i < n; ++i) flows.push_back(s.add_flow_over({r}));
  const auto rates = s.solve();
  double sum = 0.0;
  for (const FlowId f : flows) {
    EXPECT_NEAR(rates[f], 33.0 / n, 1e-9);
    sum += rates[f];
  }
  EXPECT_NEAR(sum, 33.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Counts, FairShareSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 64));

// Property sweep: max-min allocations never exceed flow caps or resource
// capacities, for a mixed scenario parameterized by the bottleneck size.
class BottleneckSweep : public ::testing::TestWithParam<double> {};

TEST_P(BottleneckSweep, FeasibilityInvariants) {
  const double cap = GetParam();
  FlowSolver s;
  const ResourceId a = s.add_resource("a", cap);
  const ResourceId b = s.add_resource("b", 20.0);
  const FlowId f1 = s.add_flow_over({a, b}, 7.0);
  const FlowId f2 = s.add_flow_over({a});
  const FlowId f3 = s.add_flow_over({b});
  const auto rates = s.solve();
  EXPECT_LE(rates[f1], 7.0 + 1e-9);
  EXPECT_LE(rates[f1] + rates[f2], cap + 1e-9);
  EXPECT_LE(rates[f1] + rates[f3], 20.0 + 1e-9);
  // Work conservation: at least one constraint is tight.
  const bool some_tight =
      std::abs(rates[f1] - 7.0) < 1e-6 ||
      std::abs(rates[f1] + rates[f2] - cap) < 1e-6 ||
      std::abs(rates[f1] + rates[f3] - 20.0) < 1e-6;
  EXPECT_TRUE(some_tight);
}

INSTANTIATE_TEST_SUITE_P(Capacities, BottleneckSweep,
                         ::testing::Values(1.0, 5.0, 10.0, 14.0, 40.0));

}  // namespace
}  // namespace numaio::sim
