#include "model/inference.h"

#include <gtest/gtest.h>

#include "fabric/calibration.h"
#include "topo/presets.h"

namespace numaio::model {
namespace {

mem::BandwidthMatrix measure_dl585() {
  fabric::Machine machine{fabric::dl585_profile()};
  nm::Host host{machine};
  return mem::stream_matrix(host, mem::StreamConfig{});
}

mem::BandwidthMatrix measure_derived(char variant) {
  fabric::Machine machine{
      fabric::derived_profile(topo::magny_cours_4p(variant))};
  nm::Host host{machine};
  return mem::stream_matrix(host, mem::StreamConfig{});
}

TEST(Inference, HopDistanceExplainsAnIdealizedHost) {
  // Control: on a fabric *derived* from layout (a), hop distance explains
  // the STREAM matrix almost perfectly.
  const auto bw = measure_derived('a');
  const double score =
      hop_explanation_score(bw, topo::magny_cours_4p('a'));
  EXPECT_GT(score, 0.95);
}

TEST(Inference, HopDistanceFailsOnTheCalibratedHost) {
  // §IV-A's conclusion: the measured matrix is not explained by the
  // host's own nominal wiring.
  const auto bw = measure_dl585();
  const double score =
      hop_explanation_score(bw, topo::dl585_g7());
  EXPECT_LT(score, 0.80);
}

TEST(Inference, NoMagnyCoursVariantExplainsTheMeasurements) {
  // "The connectivity inferred from the test data does not match any of
  // the topologies shown in Figure 1."
  const auto bw = measure_dl585();
  const auto fits = fit_magny_cours_variants(bw);
  ASSERT_EQ(fits.size(), 4u);
  for (const auto& fit : fits) {
    EXPECT_LT(fit.score, 0.85) << fit.variant_name;
  }
  // Results are sorted best-first.
  for (std::size_t i = 1; i < fits.size(); ++i) {
    EXPECT_GE(fits[i - 1].score, fits[i].score);
  }
}

TEST(Inference, CalibratedHostIsAsymmetric) {
  // Cannot draw *any* undirected topology from an asymmetric matrix.
  const auto bw = measure_dl585();
  EXPECT_GT(asymmetry_index(bw), 0.04);
}

TEST(Inference, DerivedHostIsSymmetric) {
  const auto bw = measure_derived('a');
  EXPECT_LT(asymmetry_index(bw), 0.02);
}

TEST(Inference, InferredAdjacencyOnIdealHostFindsRealNeighbors) {
  const auto bw = measure_derived('a');
  const auto edges = infer_adjacency(bw);
  const auto topo = topo::magny_cours_4p('a');
  for (const auto& [a, b] : edges) {
    EXPECT_TRUE(topo.adjacent(a, b)) << a << "-" << b;
  }
}

TEST(Inference, InferredAdjacencyOnCalibratedHostContradictsWiring) {
  // On the paper's host the "fastest remote destination" heuristic
  // produces at least one edge the nominal wiring does not contain (e.g.
  // node 0's fastest is its package peer... but some node's best remote
  // is a non-adjacent one).
  const auto bw = measure_dl585();
  const auto edges = infer_adjacency(bw);
  const auto topo = topo::dl585_g7();
  int contradictions = 0;
  for (const auto& [a, b] : edges) {
    if (!topo.adjacent(a, b)) ++contradictions;
  }
  EXPECT_GT(contradictions, 0);
}

}  // namespace
}  // namespace numaio::model
