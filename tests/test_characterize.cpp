#include "model/characterize.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "fabric/calibration.h"

namespace numaio::model {
namespace {

class CharacterizeTest : public ::testing::Test {
 protected:
  CharacterizeTest() : machine_(fabric::dl585_profile()), host_(machine_) {
    CharacterizeConfig quick;
    quick.iomodel.repetitions = 5;  // keep the 16-model sweep snappy
    model_ = characterize_host(host_, quick);
  }
  fabric::Machine machine_;
  nm::Host host_;
  HostModel model_;
};

TEST_F(CharacterizeTest, CoversEveryNodeBothDirections) {
  EXPECT_EQ(model_.host_name, "hp-dl585-g7");
  EXPECT_EQ(model_.num_nodes, 8);
  ASSERT_EQ(model_.write_models.size(), 8u);
  ASSERT_EQ(model_.read_models.size(), 8u);
  for (NodeId t = 0; t < 8; ++t) {
    EXPECT_EQ(model_.model_for(t, Direction::kDeviceWrite).target, t);
    EXPECT_EQ(model_.model_for(t, Direction::kDeviceRead).target, t);
    EXPECT_EQ(model_.classes_for(t, Direction::kDeviceWrite)
                  .classes.front()
                  .size() +
                  0u,
              2u);  // target + its package neighbor
  }
}

TEST_F(CharacterizeTest, Node7MatchesSingleTargetRun) {
  IoModelConfig quick;
  quick.repetitions = 5;
  const auto direct =
      build_iomodel(host_, 7, Direction::kDeviceRead, quick);
  const auto& from_sweep = model_.model_for(7, Direction::kDeviceRead);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(direct.bw[i], from_sweep.bw[i]);
  }
}

TEST_F(CharacterizeTest, BestRemoteClassForNode7Read) {
  // Table V: beyond class 1 ({6,7}), the best remote class is {2,3}.
  const int cls = best_remote_class(model_, 7, Direction::kDeviceRead);
  EXPECT_EQ(cls, 1);
  EXPECT_EQ(model_.classes_for(7, Direction::kDeviceRead)
                .classes[static_cast<std::size_t>(cls)],
            (std::vector<NodeId>{2, 3}));
}

TEST_F(CharacterizeTest, SerializeRoundTripsExactly) {
  const std::string text = serialize(model_);
  const HostModel parsed = parse_host_model(text);
  EXPECT_EQ(parsed.host_name, model_.host_name);
  EXPECT_EQ(parsed.num_nodes, model_.num_nodes);
  for (NodeId t = 0; t < 8; ++t) {
    for (Direction dir :
         {Direction::kDeviceWrite, Direction::kDeviceRead}) {
      const auto& a = model_.model_for(t, dir);
      const auto& b = parsed.model_for(t, dir);
      for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_DOUBLE_EQ(a.bw[i], b.bw[i]) << t;
      }
      const auto& ca = model_.classes_for(t, dir);
      const auto& cb = parsed.classes_for(t, dir);
      EXPECT_EQ(ca.classes, cb.classes) << t;
      for (int c = 0; c < ca.num_classes(); ++c) {
        EXPECT_NEAR(ca.class_avg[static_cast<std::size_t>(c)],
                    cb.class_avg[static_cast<std::size_t>(c)], 1e-9);
      }
      EXPECT_EQ(ca.class_of, cb.class_of);
    }
  }
  // Serialize(parse(serialize(x))) is byte-identical.
  EXPECT_EQ(serialize(parsed), text);
}

TEST_F(CharacterizeTest, SerializedFormHasTheDocumentedShape) {
  const std::string text = serialize(model_);
  EXPECT_EQ(text.rfind("numaio-model v1\n", 0), 0u);
  EXPECT_NE(text.find("host hp-dl585-g7 nodes 8"), std::string::npos);
  EXPECT_NE(text.find("model 7 read"), std::string::npos);
  EXPECT_NE(text.find("classes 7 write 3"), std::string::npos);
  EXPECT_NE(text.find("\nend\n"), std::string::npos);
}

TEST_F(CharacterizeTest, ParserRejectsGarbage) {
  EXPECT_THROW(parse_host_model(""), std::invalid_argument);
  EXPECT_THROW(parse_host_model("not a model\n"), std::invalid_argument);
  EXPECT_THROW(parse_host_model("numaio-model v1\nhost x nodes 0\nend\n"),
               std::invalid_argument);
}

TEST_F(CharacterizeTest, ParserRejectsTruncation) {
  std::string text = serialize(model_);
  text.resize(text.size() / 2);
  EXPECT_THROW(parse_host_model(text), std::invalid_argument);
}

TEST_F(CharacterizeTest, ParserRejectsBandwidthCountMismatch) {
  EXPECT_THROW(
      parse_host_model("numaio-model v1\nhost x nodes 2\n"
                       "model 0 write 10.0\n"
                       "classes 0 write 1 { 0 1 }\nend\n"),
      std::invalid_argument);
}

TEST_F(CharacterizeTest, ParserRejectsNonPartitionClasses) {
  EXPECT_THROW(
      parse_host_model("numaio-model v1\nhost x nodes 2\n"
                       "model 0 write 10.0 11.0\n"
                       "classes 0 write 1 { 0 0 }\nend\n"),
      std::invalid_argument);
}

TEST_F(CharacterizeTest, ParserReportsLineNumbers) {
  try {
    parse_host_model("numaio-model v1\nhost x nodes 2\nbogus 0 write\nend\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST_F(CharacterizeTest, MinimalValidDocumentParses) {
  const HostModel m = parse_host_model(
      "numaio-model v1\n"
      "host tiny nodes 2\n"
      "model 0 write 50.0 40.0\n"
      "classes 0 write 1 { 0 1 }\n"
      "model 0 read 50.0 41.0\n"
      "classes 0 read 1 { 0 1 }\n"
      "model 1 write 39.0 52.0\n"
      "classes 1 write 1 { 0 1 }\n"
      "model 1 read 38.0 52.0\n"
      "classes 1 read 1 { 0 1 }\n"
      "end\n");
  EXPECT_EQ(m.num_nodes, 2);
  EXPECT_DOUBLE_EQ(m.model_for(1, Direction::kDeviceRead).bw[0], 38.0);
  EXPECT_NEAR(m.classes_for(0, Direction::kDeviceWrite).class_avg[0], 45.0,
              1e-9);
}

}  // namespace
}  // namespace numaio::model
