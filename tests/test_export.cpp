// Exporter tests: an exact golden rendering of a hand-built capture in
// Chrome trace-event JSON (metadata, X/B/i phases, flow-event cause
// edges), and Prometheus text exposition pinned by golden plus a
// parse-back validator (tests/prom_parse.h, shared with the live-serve
// tests) that re-checks the format rules (TYPE headers, cumulative
// buckets, +Inf terminator, _sum/_count consistency).
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prom_parse.h"

namespace numaio::obs {
namespace {

Event make(EventId id, SpanId span, EventId parent, char kind,
           const std::string& name, double t_sim,
           const std::string& outcome = "",
           const std::string& detail = "") {
  Event e;
  e.id = id;
  e.span = span;
  e.parent = parent;
  e.kind = kind;
  e.name = name;
  e.t_sim = t_sim;
  e.outcome = outcome;
  e.detail = detail;
  e.wall_us = -1.0;
  return e;
}

// --- Chrome trace-event JSON ----------------------------------------------

TEST(ChromeTraceExport, GoldenRendering) {
  std::vector<Event> events;
  Event job = make(1, 1, 0, 'B', "fio.job", 0.0);
  job.node_a = 2;
  job.node_b = 7;
  job.dir = 'r';
  job.bytes = 1000;
  events.push_back(job);
  events.push_back(
      make(2, 0, 0, 'I', "fault.transition", 500.0, "on", "device-stall nic"));
  Event retry = make(3, 1, 2, 'I', "fio.retry", 1000.0, "retry");
  retry.node_a = 2;
  events.push_back(retry);
  Event end = make(4, 1, 0, 'E', "", 2000.0, "degraded");
  end.bytes = 900;
  events.push_back(end);

  std::ostringstream out;
  export_chrome_trace(events, out);

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"numaio\"}},\n"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":2,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"node 2\"}},\n"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":4096,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"unbound\"}},\n"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":2,\"ts\":0.000,\"dur\":2.000,"
      "\"cat\":\"span\",\"name\":\"fio.job\",\"args\":{\"record\":1,"
      "\"outcome\":\"degraded\",\"detail\":\"\",\"node_a\":2,\"node_b\":7,"
      "\"dir\":\"r\",\"bytes\":900}},\n"
      "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":4096,\"ts\":0.500,"
      "\"cat\":\"instant\",\"name\":\"fault.transition\",\"args\":"
      "{\"record\":2,\"outcome\":\"on\",\"detail\":\"device-stall nic\","
      "\"node_a\":-1,\"node_b\":-1,\"dir\":\"-\",\"bytes\":-1}},\n"
      "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":2,\"ts\":1.000,"
      "\"cat\":\"instant\",\"name\":\"fio.retry\",\"args\":{\"record\":3,"
      "\"outcome\":\"retry\",\"detail\":\"\",\"node_a\":2,\"node_b\":-1,"
      "\"dir\":\"-\",\"bytes\":-1}},\n"
      "{\"ph\":\"s\",\"pid\":0,\"tid\":4096,\"ts\":0.500,\"cat\":\"cause\","
      "\"name\":\"cause\",\"id\":3},\n"
      "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":2,\"ts\":1.000,"
      "\"cat\":\"cause\",\"name\":\"cause\",\"id\":3}\n"
      "]}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(ChromeTraceExport, UnclosedSpanRendersAsOpenSlice) {
  std::vector<Event> events;
  Event open = make(1, 1, 0, 'B', "fio.stream", 100.0);
  open.node_a = 3;
  events.push_back(open);

  std::ostringstream out;
  export_chrome_trace(events, out);
  EXPECT_NE(out.str().find("{\"ph\":\"B\",\"pid\":0,\"tid\":3,\"ts\":0.100"),
            std::string::npos)
      << out.str();
}

TEST(ChromeTraceExport, UntimedRecordsLandAtTsZero) {
  std::vector<Event> events;
  events.push_back(make(1, 0, 0, 'I', "note", -1.0));
  std::ostringstream out;
  export_chrome_trace(events, out);
  EXPECT_NE(out.str().find("\"ts\":0.000"), std::string::npos) << out.str();
}

// --- Prometheus text exposition -------------------------------------------

TEST(PrometheusExport, GoldenRendering) {
  MetricsRegistry metrics;
  metrics.add(metrics.counter("test.count"), 3.0);
  metrics.set(metrics.gauge("test.gauge"), 2.5);
  const auto h = metrics.histogram("test.lat", {1.0, 2.0});
  metrics.observe(h, 0.5);
  metrics.observe(h, 1.5);
  metrics.observe(h, 5.0);

  std::ostringstream out;
  export_prometheus(metrics, out);
  const std::string expected =
      "# HELP numaio_test_count_total numaio metric test.count\n"
      "# TYPE numaio_test_count_total counter\n"
      "numaio_test_count_total 3\n"
      "# HELP numaio_test_gauge numaio metric test.gauge\n"
      "# TYPE numaio_test_gauge gauge\n"
      "numaio_test_gauge 2.5\n"
      "# HELP numaio_test_lat numaio metric test.lat\n"
      "# TYPE numaio_test_lat histogram\n"
      "numaio_test_lat_bucket{le=\"1\"} 1\n"
      "numaio_test_lat_bucket{le=\"2\"} 2\n"
      "numaio_test_lat_bucket{le=\"+Inf\"} 3\n"
      "numaio_test_lat_sum 7\n"
      "numaio_test_lat_count 3\n";
  EXPECT_EQ(out.str(), expected);
}

using test_support::parse_back;

TEST(PrometheusExport, ParsesBackWithCatalogueHelp) {
  MetricsRegistry metrics;
  // Names from the known_metrics() catalogue get their real HELP text and
  // the numaio_ prefix with dots mapped to underscores.
  metrics.add(metrics.counter("fio.attempts"), 7.0);
  const auto h = metrics.histogram("solver.rounds", {1.0, 4.0, 16.0});
  metrics.observe(h, 2.0);
  metrics.observe(h, 50.0);
  metrics.set(metrics.gauge("faults.active"), 1.0);

  std::ostringstream out;
  export_prometheus(metrics, out);
  const std::string text = out.str();

  std::map<std::string, std::string> types;
  parse_back(text, &types);
  ASSERT_NE(types.count("numaio_fio_attempts_total"), 0U) << text;
  EXPECT_EQ(types.at("numaio_fio_attempts_total"), "counter");
  ASSERT_NE(types.count("numaio_solver_rounds"), 0U) << text;
  EXPECT_EQ(types.at("numaio_solver_rounds"), "histogram");
  EXPECT_NE(text.find("numaio_solver_rounds_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("numaio_solver_rounds_count 2"), std::string::npos);
}

TEST(PrometheusExport, EmptyRegistryExportsNothing) {
  MetricsRegistry metrics;
  std::ostringstream out;
  export_prometheus(metrics, out);
  EXPECT_TRUE(out.str().empty());
}

}  // namespace
}  // namespace numaio::obs
