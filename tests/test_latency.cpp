#include "topo/latency.h"

#include <gtest/gtest.h>

#include "topo/presets.h"

namespace numaio::topo {
namespace {

TEST(Latency, LocalAccessIsTheBase) {
  const Topology t = magny_cours_4p('a');
  const Routing r(t, Routing::Metric::kHops);
  const LatencyModel m(r, LatencyParams{100.0, 10.0});
  EXPECT_DOUBLE_EQ(m.access_latency(3, 3), 100.0);
}

TEST(Latency, RemoteAddsPathAndRouterCosts) {
  const Topology t = magny_cours_4p('a');  // intra 50, inter 120
  const Routing r(t, Routing::Metric::kHops);
  const LatencyModel m(r, LatencyParams{100.0, 10.0});
  EXPECT_DOUBLE_EQ(m.access_latency(7, 6), 100.0 + 50.0 + 10.0);
  EXPECT_DOUBLE_EQ(m.access_latency(7, 1), 100.0 + 170.0 + 20.0);
}

TEST(Latency, MatrixShape) {
  const Topology t = magny_cours_4p('a');
  const Routing r(t, Routing::Metric::kHops);
  const LatencyModel m(r, LatencyParams{});
  const auto mat = m.matrix();
  ASSERT_EQ(mat.size(), 8u);
  for (const auto& row : mat) ASSERT_EQ(row.size(), 8u);
}

TEST(Latency, SingleNodeFactorIsOne) {
  const auto t = Topology::build(
      "solo", {NodeSpec{0, 4, 4.0, false}}, {});
  const Routing r(t, Routing::Metric::kHops);
  const LatencyModel m(r, LatencyParams{});
  EXPECT_DOUBLE_EQ(m.numa_factor(), 1.0);
}

TEST(Latency, MaxFactorAtLeastMeanFactor) {
  const Topology t = magny_cours_4p('c');
  const Routing r(t, Routing::Metric::kHops);
  const LatencyModel m(r, LatencyParams{100.0, 15.0});
  EXPECT_GE(m.max_numa_factor(), m.numa_factor());
}

// --- Table I: NUMA factors of the four server configurations -------------

struct Table1Case {
  int index;
  const char* label;
};

class Table1Factors : public ::testing::TestWithParam<int> {};

TEST_P(Table1Factors, MatchesPublishedFactor) {
  const auto presets = table1_presets();
  const ServerPreset& preset = presets[static_cast<std::size_t>(GetParam())];
  const Routing routing(preset.topo, Routing::Metric::kLatency);
  const LatencyModel model(routing, preset.latency);
  EXPECT_NEAR(model.numa_factor(), preset.paper_numa_factor,
              0.05 * preset.paper_numa_factor)
      << preset.label;
}

INSTANTIATE_TEST_SUITE_P(Rows, Table1Factors, ::testing::Values(0, 1, 2, 3));

TEST(Latency, Table1FactorsAreMonotone) {
  // Table I's point: bigger hosts suffer bigger NUMA factors.
  const auto presets = table1_presets();
  double prev = 0.0;
  for (const auto& p : presets) {
    const Routing r(p.topo, Routing::Metric::kLatency);
    const double f = LatencyModel(r, p.latency).numa_factor();
    EXPECT_GT(f, prev) << p.label;
    prev = f;
  }
}

TEST(Latency, Table1PresetLabels) {
  const auto presets = table1_presets();
  ASSERT_EQ(presets.size(), 4u);
  EXPECT_EQ(presets[0].label, "Intel 4 sockets/4 nodes");
  EXPECT_EQ(presets[3].label, "HP blade system 32 nodes");
  EXPECT_EQ(presets[3].topo.num_nodes(), 32);
}

}  // namespace
}  // namespace numaio::topo
