// numaio command-line tool — the "first NUMA characterization software for
// bulk data I/O tasks" the paper claims as its third contribution, in the
// spirit of the numactl/numademo family it extends (§II-B, §V-B).
//
//   numaio_cli hardware                  numactl --hardware + hwloc views
//   numaio_cli stream-matrix             Fig-3 STREAM characterization
//   numaio_cli iomodel [--target N] [--direction read|write]
//                                        Algorithm 1 + classes (Fig 10)
//   numaio_cli demo [--node N]           numademo policy table
//   numaio_cli fio <jobfile>             run a fio-format job file
//   numaio_cli fleet [--hosts N] [--tenants N] [--rate RPS] ...
//                                        serve a multi-tenant request storm
//                                        across N simulated hosts with
//                                        admission control, shedding and a
//                                        mid-run host crash (src/fleet)
//   numaio_cli metrics [--in FILE]       metric registry / captured summary
//   numaio_cli report [--trace-in FILE] [--format md|json] [--diff FILE]
//                                        analyzed run report (critical path,
//                                        contention, class table, fault audit)
//                                        or deltas against a saved JSON report
//   numaio_cli export --trace-in FILE [--chrome FILE] [--folded FILE]
//                                        re-render a capture for Perfetto
//                                        or flamegraph.pl / speedscope
//   numaio_cli synth-trace --out FILE    write a deterministic synthetic
//                                        capture (scale testing); --depth/
//                                        --fanout build deep span chains
//   numaio_cli serve [--port P] [--refresh-ms MS] [--rounds N]
//                                        run fleet storm rounds while a
//                                        local HTTP endpoint serves live
//                                        Prometheus text and a rolling
//                                        report (src/obs/serve.h)
//   numaio_cli help
//
// `report --trace-in` and `export --trace-in` stream the JSONL capture
// through the src/obs record-stream core — the file is re-read pass by
// pass and never materialized, so they work on arbitrarily large traces.
//
// Every subcommand accepts --trace-out FILE (structured span/event trace,
// JSONL by default, CSV when FILE ends in .csv), --metrics-out FILE
// (counters/gauges/histograms as JSON), --prom-out FILE (the same
// snapshot in Prometheus text exposition format), --chrome-out FILE (the
// trace as Chrome trace-event JSON for Perfetto) and
// --trace-deterministic (omit the wall-clock field so same-seed runs
// write byte-identical traces) — the observability layer of src/obs
// threaded through the measurement pipeline.
//
// Everything runs against the simulated DL585 testbed; on real hardware
// the same library calls would sit on top of libnuma (see DESIGN.md).
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "numaio.h"

namespace {

using namespace numaio;

// Exit codes: 0 success, 1 runtime failure, 2 usage error, 3 missing or
// unreadable file, 4 malformed input file. Scripts can branch on them.
// The codes are simply numaio::StatusCode values; errors are raised as
// StatusError and mapped back in main().
constexpr int kExitRuntime = static_cast<int>(StatusCode::kRuntime);
constexpr int kExitUsage = static_cast<int>(StatusCode::kUsage);
constexpr int kExitParse = static_cast<int>(StatusCode::kParse);

/// Bad flags / missing operands; main() maps it to exit code 2.
[[noreturn]] void usage_error(const std::string& what) {
  throw StatusError(StatusCode::kUsage, what);
}

int usage() {
  std::printf(
      "usage: numaio_cli <command> [options]\n"
      "  hardware                         host topology and memory view\n"
      "  stream-matrix                    full STREAM bandwidth matrix\n"
      "  iomodel [--target N] [--direction read|write]\n"
      "                                   run the iomodel methodology\n"
      "  characterize [--out FILE] [--reps N]\n"
      "                                   model every node, optionally save\n"
      "  classes --in FILE [--target N] [--direction read|write]\n"
      "                                   inspect a saved host model\n"
      "  demo [--node N]                  numademo policy table\n"
      "  fio <jobfile>                    run a fio-format job file\n"
      "  fleet [--hosts N] [--tenants N] [--rate RPS] [--seed S]\n"
      "        [--duration SECONDS] [--queue-depth N] [--deadline-ms MS]\n"
      "        [--plan FILE] [--print-plan] [--scale]\n"
      "        [--shards N] [--batch-window MS]\n"
      "        [--queue-shards N] [--event-lanes N]\n"
      "        [--service fluid|coarse]\n"
      "        [--placement least-loaded|class-spread]\n"
      "        [--serve-port P] [--refresh-ms MS] [--linger-ms MS]\n"
      "                                   run the fleet serving core: a\n"
      "                                   multi-tenant storm over N hosts\n"
      "                                   with admission control, shedding,\n"
      "                                   breakers and (by default) one\n"
      "                                   host crashing mid-run; --plan\n"
      "                                   replaces the default fault plan\n"
      "                                   (docs/FORMATS.md section 6);\n"
      "                                   --scale switches to the scale\n"
      "                                   scenario (batched admission over\n"
      "                                   sharded tenant state, coarse\n"
      "                                   service, class-spread placement,\n"
      "                                   a sharded post-admission queue\n"
      "                                   and per-host event lanes —\n"
      "                                   --queue-shards/--event-lanes\n"
      "                                   override the partition counts,\n"
      "                                   1 = serial reference);\n"
      "                                   --serve-port exposes live\n"
      "                                   telemetry over HTTP during the\n"
      "                                   run (0 = ephemeral port)\n"
      "  faults [--seed S] [--events N] [--jobfile FILE]\n"
      "                                   run I/O under an injected fault plan\n"
      "  replay <trace.csv> [--serve-port P] [--refresh-ms MS]\n"
      "         [--linger-ms MS]           replay a transfer trace;\n"
      "                                   --serve-port exposes live\n"
      "                                   telemetry during the replay\n"
      "  online [--policy all-local|round-robin|model-spread|model-adaptive]\n"
      "         [--tasks N] [--seed S] [--mean-arrival SECONDS] [--reps N]\n"
      "         [--serve-port P] [--refresh-ms MS] [--linger-ms MS]\n"
      "                                   place a seeded open-loop workload\n"
      "                                   with the online scheduler (paper\n"
      "                                   section VI); --serve-port exposes\n"
      "                                   live telemetry during the run\n"
      "  validate [--reps N]              check the methodology end to end\n"
      "  asymmetry [--target N] [--min-ratio R]\n"
      "                                   hunt directional asymmetries\n"
      "  metrics [--in FILE]              list known metrics, or summarize a\n"
      "                                   --metrics-out capture\n"
      "  report [--trace-in FILE] [--format md|json] [--out FILE]\n"
      "         [--seed S] [--reps N] [--events N] [--top K] [--diff FILE]\n"
      "                                   analyze a capture (streamed, any\n"
      "                                   size), or run a seeded degraded\n"
      "                                   characterization + I/O run, and\n"
      "                                   report classes, critical path,\n"
      "                                   contention and the fault audit;\n"
      "                                   --diff prints class-structure and\n"
      "                                   critical-path deltas against a\n"
      "                                   saved --format json report\n"
      "  export [--trace-in FILE [--chrome FILE] [--folded FILE]\n"
      "          [--fold-weight wall|self]]\n"
      "         [--metrics-in FILE --prom FILE]\n"
      "                                   re-render saved captures (Chrome\n"
      "                                   trace JSON / folded stacks for\n"
      "                                   flamegraph.pl or speedscope /\n"
      "                                   Prometheus text); traces stream,\n"
      "                                   any size\n"
      "  synth-trace --out FILE [--records N] [--streams N] [--seed S]\n"
      "              [--depth D] [--fanout F]\n"
      "                                   write a deterministic synthetic\n"
      "                                   JSONL capture for scale testing;\n"
      "                                   --depth > 1 nests spans D deep\n"
      "                                   (flame-fold stress shape)\n"
      "  serve [--port P] [--refresh-ms MS] [--rounds N] [--linger-ms MS]\n"
      "        [--hosts N] [--tenants N] [--rate RPS] [--seed S]\n"
      "        [--duration SECONDS]\n"
      "                                   run N fleet storm rounds while\n"
      "                                   serving GET /metrics (Prometheus\n"
      "                                   text), /report (rolling markdown)\n"
      "                                   and /healthz on 127.0.0.1:P\n"
      "                                   (default port 0 = ephemeral,\n"
      "                                   printed on stdout)\n"
      "  help                             this text\n"
      "global options (any subcommand):\n"
      "  --trace-out FILE                 write a span/event trace (JSONL;\n"
      "                                   CSV when FILE ends in .csv)\n"
      "  --trace-deterministic            omit the wall-clock field: same-seed\n"
      "                                   runs write byte-identical traces\n"
      "  --metrics-out FILE               write counters/histograms as JSON\n"
      "  --prom-out FILE                  write metrics in Prometheus text\n"
      "                                   exposition format\n"
      "  --chrome-out FILE                write the trace as Chrome\n"
      "                                   trace-event JSON (Perfetto)\n"
      "  --solver-threads N               run the contention solver on N\n"
      "                                   threads with component\n"
      "                                   partitioning (N > 1); results\n"
      "                                   are bit-identical to N=1\n"
      "exit codes: 0 ok, 1 runtime failure, 2 usage, 3 unreadable file,\n"
      "            4 malformed input file\n");
  return kExitUsage;
}

std::string flag_value(const std::vector<std::string>& args,
                       const std::string& flag, const std::string& fallback) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) return args[i + 1];
  }
  return fallback;
}

/// Removes `flag VALUE` from args and returns VALUE ("" when absent).
/// Used for the global --trace-out/--metrics-out options so subcommand
/// parsers never see them.
std::string take_flag(std::vector<std::string>& args,
                      const std::string& flag) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] != flag) continue;
    if (i + 1 >= args.size()) {
      usage_error(flag + " wants a value");
    }
    const std::string value = args[i + 1];
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
               args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    return value;
  }
  return "";
}

/// Removes a valueless boolean `flag`; returns whether it was present.
bool take_switch(std::vector<std::string>& args, const std::string& flag) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] != flag) continue;
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    return true;
  }
  return false;
}

/// Integer flag with a one-line actionable error instead of a bare stoi
/// exception escaping as a generic runtime failure.
int int_flag(const std::vector<std::string>& args, const std::string& flag,
             int fallback) {
  const std::string text =
      flag_value(args, flag, std::to_string(fallback));
  try {
    std::size_t pos = 0;
    const int v = std::stoi(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    usage_error(flag + " wants an integer, got '" + text + "'");
  }
}

double double_flag(const std::vector<std::string>& args,
                   const std::string& flag, double fallback) {
  const std::string text = flag_value(args, flag, "");
  if (text.empty()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    usage_error(flag + " wants a number, got '" + text + "'");
  }
}

std::uint64_t u64_flag(const std::vector<std::string>& args,
                       const std::string& flag, std::uint64_t fallback) {
  const std::string text =
      flag_value(args, flag, std::to_string(fallback));
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    usage_error(flag + " wants an unsigned integer, got '" + text + "'");
  }
}

// Consuming flag parsers for subcommands that reject unknown options:
// each removes `flag VALUE` from args, so whatever remains afterwards is
// by definition unrecognized and the command can fail loudly on it.

int take_int(std::vector<std::string>& args, const std::string& flag,
             int fallback) {
  const std::string text = take_flag(args, flag);
  if (text.empty()) return fallback;
  try {
    std::size_t pos = 0;
    const int v = std::stoi(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    usage_error(flag + " wants an integer, got '" + text + "'");
  }
}

double take_double(std::vector<std::string>& args, const std::string& flag,
                   double fallback) {
  const std::string text = take_flag(args, flag);
  if (text.empty()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    usage_error(flag + " wants a number, got '" + text + "'");
  }
}

std::uint64_t take_u64(std::vector<std::string>& args,
                       const std::string& flag, std::uint64_t fallback) {
  const std::string text = take_flag(args, flag);
  if (text.empty()) return fallback;
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    usage_error(flag + " wants an unsigned integer, got '" + text + "'");
  }
}

/// Slurps a file or throws StatusError(kNoFile) with the OS reason.
std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw StatusError(StatusCode::kNoFile, "cannot open '" + path + "': " +
                                               std::strerror(errno));
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Streaming source over a --trace-in capture. Openability is probed up
/// front so a missing file still exits 3 (kNoFile) like every other
/// input; after that the source re-reads the file pass by pass and the
/// capture is never held in memory.
obs::JsonlFileSource open_trace_source(const std::string& path) {
  std::ifstream probe(path);
  if (!probe) {
    throw StatusError(StatusCode::kNoFile, "cannot open '" + path + "': " +
                                               std::strerror(errno));
  }
  return obs::JsonlFileSource(path);
}

int cmd_hardware(io::Testbed& tb) {
  std::printf("%s\n", tb.host().hardware_report().c_str());
  std::printf("%s\n", nm::render_hwloc(tb.machine().topology()).c_str());
  std::printf("%s", nm::render_interconnect(tb.machine().topology()).c_str());
  std::printf("\n%s",
              nm::render_slit(nm::slit_table(tb.machine().topology())).c_str());
  return 0;
}

int cmd_stream_matrix(io::Testbed& tb) {
  const auto m = mem::stream_matrix(tb.host(), mem::StreamConfig{});
  std::printf("%s", model::format_matrix(m).c_str());
  return 0;
}

int cmd_iomodel(io::Testbed& tb, obs::Context& ctx,
                const std::vector<std::string>& args) {
  const int target = int_flag(args, "--target", 7);
  const std::string dir = flag_value(args, "--direction", "write");
  if (target < 0 || target >= tb.machine().num_nodes()) {
    std::fprintf(stderr, "iomodel: target node out of range\n");
    return 2;
  }
  if (dir != "read" && dir != "write") {
    std::fprintf(stderr, "iomodel: --direction must be read or write\n");
    return 2;
  }
  const auto direction = dir == "write" ? model::Direction::kDeviceWrite
                                        : model::Direction::kDeviceRead;
  model::IoModelConfig config;
  config.obs = &ctx;
  const auto m = model::build_iomodel(tb.host(), target, direction, config);
  std::printf("%s",
              model::format_series("device-" + dir + " model of node " +
                                       std::to_string(target),
                                   m.bw)
                  .c_str());
  const auto classes = model::classify(m, tb.machine().topology());
  for (int c = 0; c < classes.num_classes(); ++c) {
    std::printf("class %d:", c + 1);
    for (topo::NodeId v : classes.classes[static_cast<std::size_t>(c)]) {
      std::printf(" %d", v);
    }
    std::printf("  (avg %.1f Gbps, range %.1f-%.1f)\n",
                classes.class_avg[static_cast<std::size_t>(c)],
                classes.class_range[static_cast<std::size_t>(c)].first,
                classes.class_range[static_cast<std::size_t>(c)].second);
  }
  std::printf("representatives:");
  for (topo::NodeId v : model::representative_nodes(classes)) {
    std::printf(" %d", v);
  }
  std::printf("  (probe these %d bindings instead of all %d)\n",
              classes.num_classes(), tb.machine().num_nodes());
  return 0;
}

int cmd_demo(io::Testbed& tb, const std::vector<std::string>& args) {
  const int node = int_flag(args, "--node", 7);
  if (node < 0 || node >= tb.machine().num_nodes()) {
    std::fprintf(stderr, "demo: node out of range\n");
    return 2;
  }
  std::printf("numademo on node %d (Gbps)\n", node);
  std::printf("%-16s %10s %12s %12s\n", "module", "local", "remote-worst",
              "interleaved");
  for (const auto& row : mem::demo_policy_table(tb.host(), node)) {
    std::printf("%-16s %10.2f %12.2f %12.2f\n",
                mem::to_string(row.module).c_str(), row.local,
                row.remote_worst, row.interleaved);
  }
  return 0;
}

void print_classes(const model::Classification& classes) {
  for (int c = 0; c < classes.num_classes(); ++c) {
    std::printf("  class %d:", c + 1);
    for (topo::NodeId v : classes.classes[static_cast<std::size_t>(c)]) {
      std::printf(" %d", v);
    }
    std::printf("  (avg %.1f Gbps)\n",
                classes.class_avg[static_cast<std::size_t>(c)]);
  }
}

int cmd_characterize(io::Testbed& tb, obs::Context& ctx,
                     const std::vector<std::string>& args) {
  model::CharacterizeConfig config;
  config.iomodel.repetitions = int_flag(args, "--reps", 100);
  config.iomodel.obs = &ctx;
  const model::HostModel host_model = model::characterize_host(
      tb.host(), config);
  std::printf("characterized %s: %d nodes, both directions\n",
              host_model.host_name.c_str(), host_model.num_nodes);
  for (topo::NodeId t = 0; t < host_model.num_nodes; ++t) {
    std::printf("node %d: %d write classes, %d read classes\n", t,
                host_model.write_classes[static_cast<std::size_t>(t)]
                    .num_classes(),
                host_model.read_classes[static_cast<std::size_t>(t)]
                    .num_classes());
  }
  const std::string out = flag_value(args, "--out", "");
  if (!out.empty()) {
    model::save_model(host_model, out);  // StatusError(kNoFile) on failure
    std::printf("saved to %s\n", out.c_str());
  }
  return 0;
}

int cmd_classes(const std::vector<std::string>& args) {
  const std::string in = flag_value(args, "--in", "");
  if (in.empty()) {
    std::fprintf(stderr, "classes: --in FILE is required\n");
    return 2;
  }
  const model::HostModel host_model = model::load_model(in);
  const int target = int_flag(args, "--target", 7);
  const std::string dir = flag_value(args, "--direction", "read");
  if (target < 0 || target >= host_model.num_nodes) {
    std::fprintf(stderr, "classes: target out of range\n");
    return 2;
  }
  const auto direction = dir == "write" ? model::Direction::kDeviceWrite
                                        : model::Direction::kDeviceRead;
  std::printf("host %s, device-%s model of node %d:\n",
              host_model.host_name.c_str(), dir.c_str(), target);
  print_classes(host_model.classes_for(target, direction));
  return 0;
}

int cmd_asymmetry(io::Testbed& tb, const std::vector<std::string>& args) {
  const int target = int_flag(args, "--target", 7);
  const double min_ratio = double_flag(args, "--min-ratio", 1.15);
  if (target < 0 || target >= tb.machine().num_nodes()) {
    std::fprintf(stderr, "asymmetry: target out of range\n");
    return 2;
  }
  const auto m = model::iomodel_matrix(tb.host(), target);
  const auto pairs = model::find_asymmetric_pairs(m, min_ratio);
  if (pairs.empty()) {
    std::printf("no directional asymmetry above %.2fx around node %d\n",
                min_ratio, target);
    return 0;
  }
  for (const auto& line : model::describe(pairs)) {
    std::printf("%s\n", line.c_str());
  }
  return 0;
}

int cmd_validate(io::Testbed& tb, const std::vector<std::string>& args) {
  model::ValidateConfig config;
  config.iomodel_repetitions = int_flag(args, "--reps", 100);
  const model::ValidationReport report =
      model::validate_methodology(tb, config);
  std::printf("%s", report.to_string().c_str());
  return report.all_passed() ? 0 : 1;
}

/// `--serve-port` wiring shared by the subcommands that can expose a live
/// telemetry endpoint (fleet, replay, online). start() tees a refresh-
/// cadenced tap (obs/serve.h) with whatever sink main() wired — file
/// serializer, capture, or none — brings the HTTP server up and prints
/// (and flushes) the endpoint line before the workload starts, so scripts
/// can scrape mid-run. finish() flushes the final snapshot, optionally
/// lingers so late scrapers still land, then stops the server and
/// restores the previous sink. Both are no-ops when start() was never
/// called (port < 0).
class ServeTap {
 public:
  ~ServeTap() {
    // Belt and braces: a StatusError thrown mid-run must not leave the
    // context pointed at our dying tee.
    if (active_) finish(0);
  }

  void start(obs::Context& ctx, int port, int refresh_ms) {
    ctx_ = &ctx;
    refresh_ms_ = refresh_ms;
    tap_ = std::make_unique<obs::TelemetryTap>(hub_, &ctx.metrics,
                                               refresh_ms);
    tap_sink_ = std::make_unique<obs::VisitorSink>(*tap_);
    prev_sink_ = ctx.trace.sink();
    tee_.add(prev_sink_);  // add() ignores nullptr
    tee_.add(tap_sink_.get());
    ctx.trace.set_sink(&tee_);
    server_.start(port);
    std::printf("serving telemetry on http://127.0.0.1:%d"
                " (GET /metrics /report /healthz), refresh %d ms\n",
                server_.port(), refresh_ms_);
    std::fflush(stdout);
    active_ = true;
  }

  void finish(int linger_ms) {
    if (!active_) return;
    tap_->flush();  // final state stays scrapeable regardless of cadence
    if (linger_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
    }
    server_.stop();
    ctx_->trace.set_sink(prev_sink_);
    active_ = false;
  }

  bool active() const { return active_; }

 private:
  obs::Context* ctx_ = nullptr;
  obs::TelemetryHub hub_;
  obs::TelemetryServer server_{hub_};
  std::unique_ptr<obs::TelemetryTap> tap_;
  std::unique_ptr<obs::VisitorSink> tap_sink_;
  obs::TeeSink tee_;
  obs::TraceSink* prev_sink_ = nullptr;
  int refresh_ms_ = 250;
  bool active_ = false;
};

int cmd_replay(io::Testbed& tb, obs::Context& ctx,
               std::vector<std::string>& args) {
  const int serve_port = take_int(args, "--serve-port", -1);
  const int refresh_ms = take_int(args, "--refresh-ms", 250);
  const int linger_ms = take_int(args, "--linger-ms", 0);
  if (serve_port > 65535) usage_error("--serve-port wants a port <= 65535");
  if (linger_ms < 0) usage_error("--linger-ms wants >= 0");
  if (args.empty()) {
    std::fprintf(stderr, "replay: missing trace path\n");
    return kExitUsage;
  }
  const auto entries = io::parse_trace(read_file(args.front()));
  const auto jobs = io::trace_to_jobs(entries, &tb.nic(), tb.ssds());
  io::FioRunner fio(tb.host());
  fio.set_observer(&ctx);
  ServeTap serve;
  if (serve_port >= 0) serve.start(ctx, serve_port, refresh_ms);
  const auto results = fio.run_timed(jobs);
  serve.finish(linger_ms);
  double total_gib = 0.0;
  sim::Ns last_end = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%8.3fs %-10s node%d %8.1f GiB  %7.2f Gbps\n",
                entries[i].arrival / 1e9, entries[i].engine.c_str(),
                entries[i].cpu_node,
                static_cast<double>(entries[i].bytes) /
                    static_cast<double>(sim::kGiB),
                results[i].aggregate);
    total_gib += static_cast<double>(entries[i].bytes) /
                 static_cast<double>(sim::kGiB);
    last_end =
        std::max(last_end, entries[i].arrival + results[i].duration);
  }
  std::printf("replayed %zu requests, %.1f GiB in %.2f s\n",
              results.size(), total_gib, last_end / 1e9);
  return 0;
}

/// `online`: the paper's §VI future-work direction as a subcommand — a
/// seeded open-loop workload placed by model::OnlineScheduler under a
/// chosen policy, with the same live telemetry tap `fleet` and `replay`
/// offer. Strict flag parsing, like `fleet`.
int cmd_online(io::Testbed& tb, obs::Context& ctx,
               std::vector<std::string>& args) {
  const std::string policy_name = take_flag(args, "--policy");
  const int tasks_n = take_int(args, "--tasks", 24);
  const std::uint64_t seed = take_u64(args, "--seed", 20130601);
  const double mean_arrival_s = take_double(args, "--mean-arrival", 2.0);
  const int reps = take_int(args, "--reps", 100);
  const int serve_port = take_int(args, "--serve-port", -1);
  const int refresh_ms = take_int(args, "--refresh-ms", 250);
  const int linger_ms = take_int(args, "--linger-ms", 0);
  if (!args.empty()) {
    usage_error("online: unknown option '" + args.front() + "'");
  }
  if (tasks_n < 1) usage_error("--tasks wants a positive count");
  if (mean_arrival_s <= 0.0) {
    usage_error("--mean-arrival wants positive seconds");
  }
  if (reps < 1) usage_error("--reps wants a positive count");
  if (serve_port > 65535) usage_error("--serve-port wants a port <= 65535");
  if (linger_ms < 0) usage_error("--linger-ms wants >= 0");
  model::OnlineConfig config;
  if (policy_name.empty() || policy_name == "model-adaptive") {
    config.policy = model::OnlinePolicy::kModelAdaptive;
  } else if (policy_name == "all-local") {
    config.policy = model::OnlinePolicy::kAllLocal;
  } else if (policy_name == "round-robin") {
    config.policy = model::OnlinePolicy::kRoundRobin;
  } else if (policy_name == "model-spread") {
    config.policy = model::OnlinePolicy::kModelSpread;
  } else {
    usage_error("--policy wants all-local|round-robin|model-spread|"
                "model-adaptive");
  }

  // Boot-time characterization of the NIC's node, both directions — the
  // model the placement policies consult (Algorithm 1).
  const int target = tb.nic().attach_node();
  model::IoModelConfig iomodel;
  iomodel.repetitions = reps;
  const auto wm = model::build_iomodel(
      tb.host(), target, model::Direction::kDeviceWrite, iomodel);
  const auto rm = model::build_iomodel(
      tb.host(), target, model::Direction::kDeviceRead, iomodel);
  const auto wc = model::classify(wm, tb.machine().topology());
  const auto rc = model::classify(rm, tb.machine().topology());

  model::WorkloadConfig wl;
  wl.seed = seed;
  wl.num_tasks = tasks_n;
  wl.mean_interarrival = mean_arrival_s * 1e9;
  wl.engine_mix = {io::kTcpSend, io::kTcpRecv, io::kRdmaWrite,
                   io::kRdmaRead};
  const auto tasks = model::generate_workload(wl);

  model::OnlineScheduler scheduler(tb.host(), tb.nic(), wc, rc, config);
  scheduler.set_observer(&ctx);

  ServeTap serve;
  if (serve_port >= 0) serve.start(ctx, serve_port, refresh_ms);
  const model::OnlineReport report = scheduler.run(tasks);
  serve.finish(linger_ms);

  std::printf(
      "online: %d tasks, policy %s, seed %llu\n"
      "makespan %.2f s, aggregate %.2f Gbps, mean turnaround %.2f s, "
      "%d migrations\n",
      tasks_n, model::to_string(config.policy).c_str(),
      static_cast<unsigned long long>(seed), report.makespan / 1e9,
      report.aggregate, report.mean_turnaround / 1e9,
      report.total_migrations);
  return 0;
}

int cmd_fio(io::Testbed& tb, obs::Context& ctx,
            const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "fio: missing job file path\n");
    return kExitUsage;
  }
  io::DeviceSet set;
  set.nic = &tb.nic();
  set.ssds = tb.ssds();
  const io::JobFile file = io::load_job_file(args.front());
  const auto jobs = io::resolve_jobs(file, set);

  io::FioRunner fio(tb.host());
  fio.set_observer(&ctx);
  const auto results = fio.run_concurrent(jobs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%-20s engine=%-10s node=%d streams=%d  %8.3f Gbps\n",
                file.jobs[i].name.c_str(), jobs[i].engine.c_str(),
                jobs[i].cpu_node, jobs[i].num_streams,
                results[i].aggregate);
  }
  if (results.size() > 1) {
    std::printf("%-20s %53.3f Gbps\n", "combined",
                io::combined_aggregate(results));
  }
  return 0;
}

int cmd_faults(io::Testbed& tb, obs::Context& ctx,
               const std::vector<std::string>& args) {
  const std::uint64_t seed = u64_flag(args, "--seed", 42);
  const int events = int_flag(args, "--events", 4);
  if (events < 1) usage_error("--events wants a positive count");

  faults::RandomPlanConfig plan_config;
  plan_config.seed = seed;
  plan_config.num_nodes = tb.machine().num_nodes();
  plan_config.num_devices = 1 + static_cast<int>(tb.ssds().size());
  plan_config.num_events = events;
  faults::FaultPlan plan = faults::FaultPlan::random(plan_config);
  std::printf("fault plan (seed %llu, %d events):\n%s",
              static_cast<unsigned long long>(seed), events,
              plan.to_string().c_str());

  faults::FaultInjector injector(tb.machine(), std::move(plan));
  injector.set_observer(&ctx);
  injector.register_device(tb.nic().name(), tb.nic().attach_node(),
                           tb.nic().fault_resources());
  for (const io::PcieDevice* ssd : tb.ssds()) {
    injector.register_device(ssd->name(), ssd->attach_node(),
                             ssd->fault_resources());
  }

  std::vector<io::FioJob> jobs;
  std::vector<std::string> names;
  const std::string jobfile = flag_value(args, "--jobfile", "");
  if (!jobfile.empty()) {
    io::DeviceSet set;
    set.nic = &tb.nic();
    set.ssds = tb.ssds();
    const io::JobFile file = io::load_job_file(jobfile);
    jobs = io::resolve_jobs(file, set);
    for (const auto& job : file.jobs) names.push_back(job.name);
  } else {
    io::FioJob job;
    job.devices = {&tb.nic()};
    job.engine = io::kRdmaRead;
    job.cpu_node = 2;
    job.num_streams = 4;
    job.bytes_per_stream = 40 * sim::kGiB;
    jobs.push_back(job);
    names.emplace_back("degraded-rdma");
  }
  // Degraded-mode runs need a per-attempt budget; leave explicit jobfile
  // timeouts alone but give timeout-less jobs a 30 s one so stalls abort
  // and retry instead of hanging the stream forever.
  for (io::FioJob& job : jobs) {
    if (job.retry.timeout <= 0.0) job.retry.timeout = 30.0e9;
  }

  io::FioRunner fio(tb.host());
  fio.set_fault_injector(&injector);
  fio.set_observer(&ctx);
  const auto results = fio.run_concurrent(jobs);
  std::printf("\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const io::FioResult& r = results[i];
    std::printf("%-20s engine=%-10s node=%d  %8.3f Gbps  %s"
                " (retries %d, aborted %d/%zu)\n",
                names[i].c_str(), jobs[i].engine.c_str(), jobs[i].cpu_node,
                r.aggregate, r.degraded ? "DEGRADED" : "clean",
                r.total_retries, r.aborted_streams, r.streams.size());
    for (std::size_t s = 0; s < r.streams.size(); ++s) {
      const io::FioStreamStats& st = r.streams[s];
      std::printf("  stream %zu: mem node %d  %7.3f Gbps  %6.1f GiB  %s\n",
                  s, st.mem_node, st.avg_rate,
                  static_cast<double>(st.bytes_moved) /
                      static_cast<double>(sim::kGiB),
                  sim::to_string(st.outcome).c_str());
    }
  }
  std::printf("\napplied fault transitions:\n%s",
              injector.trace_to_string().c_str());
  return 0;
}

/// The fleet serving core (src/fleet): a multi-tenant request storm over
/// N simulated DL585 hosts. Strict flag parsing: anything left in `args`
/// after the known flags are consumed is a usage error — this command is
/// the template for scripting against exit codes, so typos must not
/// silently become defaults.
int cmd_fleet(obs::Context& ctx, std::vector<std::string>& args,
              const sim::SolveOptions& solve) {
  const int hosts = take_int(args, "--hosts", 4);
  const int tenants = take_int(args, "--tenants", 3);
  const double rate = take_double(args, "--rate", 900.0);
  const std::uint64_t seed = take_u64(args, "--seed", 42);
  const double duration_s = take_double(args, "--duration", 4.0);
  const int queue_depth = take_int(args, "--queue-depth", 0);
  const double deadline_ms = take_double(args, "--deadline-ms", 0.0);
  const std::string plan_path = take_flag(args, "--plan");
  const bool print_plan = take_switch(args, "--print-plan");
  const int serve_port = take_int(args, "--serve-port", -1);
  const int refresh_ms = take_int(args, "--refresh-ms", 250);
  const int linger_ms = take_int(args, "--linger-ms", 0);
  const bool scale = take_switch(args, "--scale");
  const int shards = take_int(args, "--shards", 0);
  const int queue_shards = take_int(args, "--queue-shards", 0);
  const int event_lanes = take_int(args, "--event-lanes", 0);
  const double batch_window_ms = take_double(args, "--batch-window", -1.0);
  const std::string service = take_flag(args, "--service");
  const std::string placement = take_flag(args, "--placement");
  if (!args.empty()) {
    usage_error("fleet: unknown option '" + args.front() + "'");
  }
  if (hosts < 1) usage_error("--hosts wants a positive count");
  if (tenants < 1) usage_error("--tenants wants a positive count");
  if (rate <= 0.0) usage_error("--rate wants a positive req/s");
  if (duration_s <= 0.0) usage_error("--duration wants positive seconds");
  if (deadline_ms < 0.0) usage_error("--deadline-ms wants >= 0");
  if (serve_port > 65535) usage_error("--serve-port wants a port <= 65535");
  if (linger_ms < 0) usage_error("--linger-ms wants >= 0");
  if (shards < 0) usage_error("--shards wants a positive count");
  if (queue_shards < 0) usage_error("--queue-shards wants a positive count");
  if (event_lanes < 0) usage_error("--event-lanes wants a positive count");
  if (!service.empty() && service != "fluid" && service != "coarse") {
    usage_error("--service wants 'fluid' or 'coarse'");
  }
  if (!placement.empty() && placement != "least-loaded" &&
      placement != "class-spread") {
    usage_error("--placement wants 'least-loaded' or 'class-spread'");
  }

  // --scale swaps in the ISSUE 9 scale scenario (batched + sharded +
  // coarse + class-spread); the individual flags then override either
  // scenario's defaults.
  fleet::StormScenario storm =
      scale ? fleet::make_scale_storm(hosts, tenants, rate, seed,
                                      duration_s * 1e9)
            : fleet::make_storm(hosts, tenants, rate, seed,
                                duration_s * 1e9);
  storm.config.solve = solve;
  if (queue_depth > 0) storm.config.queue_depth = queue_depth;
  if (deadline_ms > 0.0) storm.config.deadline = deadline_ms * 1e6;
  if (shards > 0) storm.config.shards = shards;
  if (queue_shards > 0) storm.config.queue_shards = queue_shards;
  if (event_lanes > 0) storm.config.event_lanes = event_lanes;
  if (batch_window_ms >= 0.0) {
    storm.config.batch_window = batch_window_ms * 1e6;
  }
  if (!service.empty()) {
    storm.config.service_model = service == "coarse"
                                     ? fleet::ServiceModel::kCoarse
                                     : fleet::ServiceModel::kFluid;
  }
  if (!placement.empty()) {
    storm.config.placement = placement == "class-spread"
                                 ? fleet::PlacementPolicy::kClassSpread
                                 : fleet::PlacementPolicy::kLeastLoaded;
  }
  if (!plan_path.empty()) {
    // Replaces the built-in crash/recover schedule; exit 3 when the file
    // is unreadable, 4 when it does not parse (docs/FORMATS.md section 6).
    storm.plan = faults::parse_fault_plan(read_file(plan_path));
  }
  if (print_plan) {
    std::printf("fault plan:\n%s\n", storm.plan.to_string().c_str());
  }

  fleet::FleetSim sim(storm.config, storm.tenants);
  sim.set_fault_plan(std::move(storm.plan));
  sim.set_observer(&ctx);

  // --serve-port: expose the run's rolling telemetry snapshot over HTTP
  // for the duration of the storm (ServeTap above); --linger-ms keeps the
  // endpoint up after the drain.
  ServeTap serve;
  if (serve_port >= 0) serve.start(ctx, serve_port, refresh_ms);

  const fleet::FleetReport report = sim.run();

  serve.finish(linger_ms);
  std::printf(
      "fleet: %d hosts, %d tenants, %.0f req/s offered, seed %llu, "
      "%.1f s horizon\n\n%s",
      hosts, tenants, rate, static_cast<unsigned long long>(seed),
      duration_s, report.summary().c_str());
  return 0;
}

/// `serve`: the standing-telemetry counterpart of `fleet --serve-port`.
/// Runs `--rounds` storm rounds back to back (seed advancing per round)
/// with the live tap attached the whole time, so /metrics and /report
/// roll forward across rounds; then lingers `--linger-ms` before
/// shutting the endpoint down.
int cmd_serve(obs::Context& ctx, std::vector<std::string>& args,
              const sim::SolveOptions& solve) {
  const int port = take_int(args, "--port", 0);
  const int refresh_ms = take_int(args, "--refresh-ms", 250);
  const int rounds = take_int(args, "--rounds", 3);
  const int linger_ms = take_int(args, "--linger-ms", 0);
  const int hosts = take_int(args, "--hosts", 4);
  const int tenants = take_int(args, "--tenants", 3);
  const double rate = take_double(args, "--rate", 900.0);
  const std::uint64_t seed = take_u64(args, "--seed", 42);
  const double duration_s = take_double(args, "--duration", 2.0);
  if (!args.empty()) {
    usage_error("serve: unknown option '" + args.front() + "'");
  }
  if (port < 0 || port > 65535) usage_error("--port wants 0..65535");
  if (rounds < 1) usage_error("--rounds wants a positive count");
  if (linger_ms < 0) usage_error("--linger-ms wants >= 0");
  if (hosts < 1) usage_error("--hosts wants a positive count");
  if (tenants < 1) usage_error("--tenants wants a positive count");
  if (rate <= 0.0) usage_error("--rate wants a positive req/s");
  if (duration_s <= 0.0) usage_error("--duration wants positive seconds");

  obs::TelemetryHub hub;
  obs::TelemetryTap tap(hub, &ctx.metrics, refresh_ms);
  obs::VisitorSink tap_sink(tap);
  obs::TeeSink tee;
  obs::TraceSink* const prev_sink = ctx.trace.sink();
  tee.add(prev_sink);  // add() ignores nullptr
  tee.add(&tap_sink);
  ctx.trace.set_sink(&tee);

  obs::TelemetryServer server(hub);
  server.start(port);
  std::printf("serving telemetry on http://127.0.0.1:%d"
              " (GET /metrics /report /healthz), refresh %d ms\n",
              server.port(), refresh_ms);
  std::fflush(stdout);

  for (int round = 0; round < rounds; ++round) {
    fleet::StormScenario storm = fleet::make_storm(
        hosts, tenants, rate, seed + static_cast<std::uint64_t>(round),
        duration_s * 1e9);
    storm.config.solve = solve;
    fleet::FleetSim sim(storm.config, storm.tenants);
    sim.set_fault_plan(std::move(storm.plan));
    sim.set_observer(&ctx);
    const fleet::FleetReport report = sim.run();
    tap.flush();  // round boundary is always scrapeable
    std::printf("round %d/%d: %lld submitted, %lld completed, "
                "accepted p99 %.1f ms / p99.9 %.1f ms (generation %llu)\n",
                round + 1, rounds, report.submitted, report.completed,
                report.accepted_p99 / 1e6, report.accepted_p999 / 1e6,
                static_cast<unsigned long long>(hub.generation()));
    std::fflush(stdout);
  }
  if (linger_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  server.stop();
  ctx.trace.set_sink(prev_sink);
  std::printf("served %llu records across %d rounds, %llu refreshes\n",
              static_cast<unsigned long long>(tap.records_seen()), rounds,
              static_cast<unsigned long long>(hub.generation()));
  return 0;
}

/// The seeded workload behind the default `report` run: a clean
/// characterization (the paper's class tables) followed by the same
/// degraded rdma-read job `faults` runs, so the report has a critical
/// path, contention and a fault audit worth reading. Everything lands in
/// the context's recorder/registry; the caller analyzes the capture.
model::HostModel run_report_workload(io::Testbed& tb, obs::Context& ctx,
                                     std::uint64_t seed, int events,
                                     int reps) {
  model::CharacterizeConfig characterize;
  characterize.iomodel.repetitions = reps;
  characterize.iomodel.obs = &ctx;
  model::HostModel host_model = model::characterize_host(tb.host(),
                                                         characterize);

  faults::RandomPlanConfig plan_config;
  plan_config.seed = seed;
  plan_config.num_nodes = tb.machine().num_nodes();
  plan_config.num_devices = 1 + static_cast<int>(tb.ssds().size());
  plan_config.num_events = events;
  faults::FaultInjector injector(tb.machine(),
                                 faults::FaultPlan::random(plan_config));
  injector.set_observer(&ctx);
  injector.register_device(tb.nic().name(), tb.nic().attach_node(),
                           tb.nic().fault_resources());
  for (const io::PcieDevice* ssd : tb.ssds()) {
    injector.register_device(ssd->name(), ssd->attach_node(),
                             ssd->fault_resources());
  }

  io::FioJob job;
  job.devices = {&tb.nic()};
  job.engine = io::kRdmaRead;
  job.cpu_node = 2;
  job.num_streams = 4;
  job.bytes_per_stream = 40 * sim::kGiB;
  job.retry.timeout = 30.0e9;  // per-attempt budget: abort + retry stalls
  io::FioRunner fio(tb.host());
  fio.set_fault_injector(&injector);
  fio.set_observer(&ctx);
  fio.run_concurrent({job});
  injector.restore();
  return host_model;
}

int cmd_report(io::Testbed& tb, obs::Context& ctx, obs::MemorySink* capture,
               const std::vector<std::string>& args) {
  const std::string trace_in = flag_value(args, "--trace-in", "");
  const std::string format = flag_value(args, "--format", "md");
  if (format != "md" && format != "json") {
    usage_error("--format must be md or json, got '" + format + "'");
  }
  model::RunReportOptions options;
  options.top_contended = int_flag(args, "--top", 5);
  if (options.top_contended < 1) usage_error("--top wants a positive count");

  model::RunReport report;
  if (!trace_in.empty()) {
    // Trace-only report over a saved capture: no class table, no
    // counters, but the full analysis (span summary, critical path,
    // contention, fault audit) of whatever run wrote the file. The
    // capture streams through the analyzer pass by pass — never
    // materialized, so file size is not a constraint.
    obs::JsonlFileSource source = open_trace_source(trace_in);
    report = model::build_run_report("report --trace-in " + trace_in,
                                     nullptr, source, nullptr);
  } else {
    const std::uint64_t seed = u64_flag(args, "--seed", 42);
    const int events = int_flag(args, "--events", 4);
    const int reps = int_flag(args, "--reps", 12);
    if (events < 1) usage_error("--events wants a positive count");
    if (reps < 1) usage_error("--reps wants a positive count");
    const model::HostModel host_model =
        run_report_workload(tb, ctx, seed, events, reps);
    const std::string command =
        "report --seed " + std::to_string(seed) + " --events " +
        std::to_string(events) + " --reps " + std::to_string(reps);
    report = model::build_run_report(command, &host_model, capture->events,
                                     &ctx.metrics);
  }

  // --diff OLD.json: render the current report's diffable surface and
  // print the deltas against a previously saved --format json report
  // instead of the report itself.
  const std::string diff_in = flag_value(args, "--diff", "");
  std::string text;
  if (!diff_in.empty()) {
    const model::ReportSummary before =
        model::parse_report_json(read_file(diff_in));
    const model::ReportSummary after =
        model::parse_report_json(model::render_json(report, options));
    text = model::diff_reports(before, after);
  } else {
    text = format == "md" ? model::render_markdown(report, options)
                          : model::render_json(report, options);
  }
  const std::string out = flag_value(args, "--out", "");
  if (out.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream file(out, std::ios::binary);
    if (!file) {
      throw StatusError(StatusCode::kNoFile, "cannot write '" + out + "'");
    }
    file << text;
  }
  return 0;
}

int cmd_export(const std::vector<std::string>& args) {
  const std::string trace_in = flag_value(args, "--trace-in", "");
  const std::string chrome = flag_value(args, "--chrome", "");
  const std::string folded = flag_value(args, "--folded", "");
  const std::string fold_weight = flag_value(args, "--fold-weight", "self");
  const std::string metrics_in = flag_value(args, "--metrics-in", "");
  const std::string prom = flag_value(args, "--prom", "");
  if (trace_in.empty() && metrics_in.empty()) {
    usage_error("export wants --trace-in FILE and/or --metrics-in FILE");
  }
  if (fold_weight != "wall" && fold_weight != "self") {
    usage_error("--fold-weight must be wall or self, got '" + fold_weight +
                "'");
  }
  if (!trace_in.empty()) {
    if (chrome.empty() && folded.empty()) {
      usage_error("--trace-in wants --chrome FILE and/or --folded FILE");
    }
    // Streaming passes over the file; the capture never lands in
    // memory, so exports scale to any trace the disk holds.
    obs::JsonlFileSource source = open_trace_source(trace_in);
    if (!chrome.empty()) {
      std::ofstream file(chrome, std::ios::binary);
      if (!file) {
        throw StatusError(StatusCode::kNoFile,
                          "cannot write '" + chrome + "'");
      }
      obs::export_chrome_trace(source, file);
    }
    if (!folded.empty()) {
      std::ofstream file(folded, std::ios::binary);
      if (!file) {
        throw StatusError(StatusCode::kNoFile,
                          "cannot write '" + folded + "'");
      }
      const obs::FoldWeight weight = fold_weight == "wall"
                                         ? obs::FoldWeight::kWall
                                         : obs::FoldWeight::kSelf;
      const obs::FoldStats stats =
          obs::export_folded_stacks(source, file, weight);
      std::printf("folded %llu records into %llu stacks "
                  "(%llu spans, peak %llu open) -> %s\n",
                  static_cast<unsigned long long>(stats.records),
                  static_cast<unsigned long long>(stats.stacks),
                  static_cast<unsigned long long>(stats.spans),
                  static_cast<unsigned long long>(stats.peak_open_spans),
                  folded.c_str());
    }
  }
  if (!metrics_in.empty()) {
    if (prom.empty()) usage_error("--metrics-in wants --prom FILE");
    const obs::MetricsRegistry registry =
        obs::parse_metrics_json(read_file(metrics_in));
    std::ofstream file(prom, std::ios::binary);
    if (!file) {
      throw StatusError(StatusCode::kNoFile, "cannot write '" + prom + "'");
    }
    obs::export_prometheus(registry, file);
  }
  return 0;
}

int cmd_metrics(const std::vector<std::string>& args) {
  const std::string in = flag_value(args, "--in", "");
  if (in.empty()) {
    // No capture file: print the registry of metric names the pipeline
    // can emit, so scripts know what to look for in --metrics-out files.
    std::printf("%-28s %-10s %s\n", "metric", "kind", "description");
    for (const obs::MetricInfo& m : obs::known_metrics()) {
      std::printf("%-28s %-10s %s\n", m.name, m.kind, m.help);
    }
    return 0;
  }
  const obs::MetricsRegistry registry = obs::parse_metrics_json(read_file(in));
  if (registry.empty()) {
    std::printf("no metrics recorded in %s\n", in.c_str());
    return 0;
  }
  std::printf("%s", registry.summary().c_str());
  return 0;
}

int cmd_synth_trace(const std::vector<std::string>& args) {
  const std::string out = flag_value(args, "--out", "");
  if (out.empty()) usage_error("synth-trace wants --out FILE");
  obs::SyntheticTraceConfig config;
  config.records = u64_flag(args, "--records", config.records);
  config.concurrent_streams =
      int_flag(args, "--streams", config.concurrent_streams);
  config.seed = u64_flag(args, "--seed", config.seed);
  config.depth = int_flag(args, "--depth", config.depth);
  config.fanout = int_flag(args, "--fanout", config.fanout);
  if (config.concurrent_streams < 1) {
    usage_error("--streams wants a positive count");
  }
  if (config.depth < 1) usage_error("--depth wants a positive depth");
  if (config.fanout < 1) usage_error("--fanout wants a positive count");

  std::ofstream file(out, std::ios::binary);
  if (!file) {
    throw StatusError(StatusCode::kNoFile, "cannot write '" + out + "'");
  }
  // One generator pass straight into the serializer: records are written
  // as produced, so a 10^8-record capture costs the same memory as a
  // 10-record one.
  obs::JsonlSink sink(file);
  obs::SinkVisitor writer(sink);
  obs::SyntheticTraceSource source(config);
  source.stream(writer);
  std::printf("wrote %llu synthetic records to %s\n",
              static_cast<unsigned long long>(
                  config.records < 8 ? 8 : config.records),
              out.c_str());
  return 0;
}

}  // namespace

namespace {

/// Dispatches the subcommand with observability wired through the whole
/// measurement pipeline; returns the exit code or -1 for unknown commands.
/// `observing` gates the solver's per-solve timer (the one instrumentation
/// hook with a wall-clock read on a hot path) so runs without --trace-out/
/// --metrics-out cost nothing measurable.
int dispatch(const std::string& cmd, std::vector<std::string>& args,
             obs::Context& ctx, bool observing, obs::MemorySink* capture,
             const sim::SolveOptions& solve) {
  if (cmd == "metrics") return cmd_metrics(args);
  if (cmd == "classes") return cmd_classes(args);
  if (cmd == "export") return cmd_export(args);
  if (cmd == "synth-trace") return cmd_synth_trace(args);
  // `fleet` and `serve` build their own hosts (one testbed per fleet
  // host).
  if (cmd == "fleet") return cmd_fleet(ctx, args, solve);
  if (cmd == "serve") return cmd_serve(ctx, args, solve);

  io::Testbed tb = io::Testbed::dl585(solve);
  if (observing) tb.machine().solver().set_observer(&ctx);
  if (cmd == "report") return cmd_report(tb, ctx, capture, args);
  if (cmd == "hardware") return cmd_hardware(tb);
  if (cmd == "stream-matrix") return cmd_stream_matrix(tb);
  if (cmd == "iomodel") return cmd_iomodel(tb, ctx, args);
  if (cmd == "demo") return cmd_demo(tb, args);
  if (cmd == "fio") return cmd_fio(tb, ctx, args);
  if (cmd == "faults") return cmd_faults(tb, ctx, args);
  if (cmd == "characterize") return cmd_characterize(tb, ctx, args);
  if (cmd == "replay") return cmd_replay(tb, ctx, args);
  if (cmd == "online") return cmd_online(tb, ctx, args);
  if (cmd == "validate") return cmd_validate(tb, args);
  if (cmd == "asymmetry") return cmd_asymmetry(tb, args);
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    usage();
    return 0;
  }

  try {
    // Global observability options, valid on every subcommand.
    const std::string trace_out = take_flag(args, "--trace-out");
    const std::string metrics_out = take_flag(args, "--metrics-out");
    const std::string prom_out = take_flag(args, "--prom-out");
    const std::string chrome_out = take_flag(args, "--chrome-out");
    const bool deterministic = take_switch(args, "--trace-deterministic");
    const int solver_threads = take_int(args, "--solver-threads", 1);
    if (solver_threads < 1) {
      usage_error("--solver-threads wants a positive thread count");
    }
    sim::SolveOptions solve;
    solve.threads = solver_threads;
    solve.partition = solver_threads > 1;

    obs::Context ctx;
    ctx.trace.set_deterministic(deterministic);

    // The Chrome exporter and the default `report` run consume the
    // record stream in process, so those paths capture into a MemorySink
    // — teed with the file serializer when --trace-out is also given.
    const bool need_capture =
        !chrome_out.empty() ||
        (cmd == "report" && flag_value(args, "--trace-in", "").empty());
    std::ofstream trace_file;
    std::unique_ptr<obs::TraceSink> file_sink;
    obs::MemorySink capture;
    obs::TeeSink tee;
    if (!trace_out.empty()) {
      trace_file.open(trace_out, std::ios::binary);
      if (!trace_file) {
        throw StatusError(StatusCode::kNoFile,
                          "cannot write '" + trace_out + "'");
      }
      const bool csv = trace_out.size() >= 4 &&
                       trace_out.compare(trace_out.size() - 4, 4, ".csv") == 0;
      if (csv) {
        file_sink = std::make_unique<obs::CsvSink>(trace_file);
      } else {
        file_sink = std::make_unique<obs::JsonlSink>(trace_file);
      }
    }
    obs::TraceSink* sink = nullptr;
    if (file_sink != nullptr && need_capture) {
      tee.add(file_sink.get());
      tee.add(&capture);
      sink = &tee;
    } else if (file_sink != nullptr) {
      sink = file_sink.get();
    } else if (need_capture) {
      sink = &capture;
    }
    if (sink != nullptr) ctx.trace.set_sink(sink);

    const bool observing = sink != nullptr || !metrics_out.empty() ||
                           !prom_out.empty();
    const int rc = dispatch(cmd, args, ctx, observing,
                            need_capture ? &capture : nullptr, solve);
    if (rc < 0) {
      std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
      return usage();
    }
    if (!metrics_out.empty()) {
      std::ofstream metrics_file(metrics_out, std::ios::binary);
      if (!metrics_file) {
        throw StatusError(StatusCode::kNoFile,
                          "cannot write '" + metrics_out + "'");
      }
      metrics_file << ctx.metrics.to_json() << "\n";
    }
    if (!prom_out.empty()) {
      std::ofstream prom_file(prom_out, std::ios::binary);
      if (!prom_file) {
        throw StatusError(StatusCode::kNoFile,
                          "cannot write '" + prom_out + "'");
      }
      obs::export_prometheus(ctx.metrics, prom_file);
    }
    if (!chrome_out.empty()) {
      std::ofstream chrome_file(chrome_out, std::ios::binary);
      if (!chrome_file) {
        throw StatusError(StatusCode::kNoFile,
                          "cannot write '" + chrome_out + "'");
      }
      obs::export_chrome_trace(capture.events, chrome_file);
    }
    return rc;
  } catch (const StatusError& e) {
    // Library and CLI errors carry their exit code: 2 usage, 3 missing or
    // unwritable file, 4 malformed input.
    std::fprintf(stderr, "%s: %s\n", cmd.c_str(), e.what());
    return e.status().exit_code();
  } catch (const std::invalid_argument& e) {
    // Parsers (jobfile, host model, trace) throw invalid_argument with a
    // line number attached — malformed input, not a tool failure.
    std::fprintf(stderr, "%s: %s\n", cmd.c_str(), e.what());
    return kExitParse;
  } catch (const std::out_of_range& e) {
    std::fprintf(stderr, "%s: %s\n", cmd.c_str(), e.what());
    return kExitParse;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", cmd.c_str(), e.what());
    return kExitRuntime;
  }
}
