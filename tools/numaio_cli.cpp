// numaio command-line tool — the "first NUMA characterization software for
// bulk data I/O tasks" the paper claims as its third contribution, in the
// spirit of the numactl/numademo family it extends (§II-B, §V-B).
//
//   numaio_cli hardware                  numactl --hardware + hwloc views
//   numaio_cli stream-matrix             Fig-3 STREAM characterization
//   numaio_cli iomodel [--target N] [--direction read|write]
//                                        Algorithm 1 + classes (Fig 10)
//   numaio_cli demo [--node N]           numademo policy table
//   numaio_cli fio <jobfile>             run a fio-format job file
//   numaio_cli help
//
// Everything runs against the simulated DL585 testbed; on real hardware
// the same library calls would sit on top of libnuma (see DESIGN.md).
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "io/jobfile.h"
#include "io/nic.h"
#include "io/trace.h"
#include "io/testbed.h"
#include "mem/membench.h"
#include "mem/numademo.h"
#include "model/asymmetry.h"
#include "model/characterize.h"
#include "model/classify.h"
#include "model/report.h"
#include "model/validate.h"
#include "nm/hwloc_view.h"
#include "nm/slit.h"

namespace {

using namespace numaio;

// Exit codes: 0 success, 1 runtime failure, 2 usage error, 3 missing or
// unreadable file, 4 malformed input file. Scripts can branch on them.
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitNoFile = 3;
constexpr int kExitParse = 4;

/// Bad flags / missing operands; main() maps it to exit code 2.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Missing or unreadable input file; main() maps it to exit code 3.
struct FileError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

int usage() {
  std::printf(
      "usage: numaio_cli <command> [options]\n"
      "  hardware                         host topology and memory view\n"
      "  stream-matrix                    full STREAM bandwidth matrix\n"
      "  iomodel [--target N] [--direction read|write]\n"
      "                                   run the iomodel methodology\n"
      "  characterize [--out FILE] [--reps N]\n"
      "                                   model every node, optionally save\n"
      "  classes --in FILE [--target N] [--direction read|write]\n"
      "                                   inspect a saved host model\n"
      "  demo [--node N]                  numademo policy table\n"
      "  fio <jobfile>                    run a fio-format job file\n"
      "  faults [--seed S] [--events N] [--jobfile FILE]\n"
      "                                   run I/O under an injected fault plan\n"
      "  replay <trace.csv>               replay a transfer trace\n"
      "  validate [--reps N]              check the methodology end to end\n"
      "  asymmetry [--target N] [--min-ratio R]\n"
      "                                   hunt directional asymmetries\n"
      "  help                             this text\n"
      "exit codes: 0 ok, 1 runtime failure, 2 usage, 3 unreadable file,\n"
      "            4 malformed input file\n");
  return kExitUsage;
}

std::string flag_value(const std::vector<std::string>& args,
                       const std::string& flag, const std::string& fallback) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) return args[i + 1];
  }
  return fallback;
}

/// Integer flag with a one-line actionable error instead of a bare stoi
/// exception escaping as a generic runtime failure.
int int_flag(const std::vector<std::string>& args, const std::string& flag,
             int fallback) {
  const std::string text =
      flag_value(args, flag, std::to_string(fallback));
  try {
    std::size_t pos = 0;
    const int v = std::stoi(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw UsageError(flag + " wants an integer, got '" + text + "'");
  }
}

double double_flag(const std::vector<std::string>& args,
                   const std::string& flag, double fallback) {
  const std::string text = flag_value(args, flag, "");
  if (text.empty()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw UsageError(flag + " wants a number, got '" + text + "'");
  }
}

std::uint64_t u64_flag(const std::vector<std::string>& args,
                       const std::string& flag, std::uint64_t fallback) {
  const std::string text =
      flag_value(args, flag, std::to_string(fallback));
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw UsageError(flag + " wants an unsigned integer, got '" + text +
                     "'");
  }
}

/// Slurps a file or throws FileError with the OS reason attached.
std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw FileError("cannot open '" + path + "': " + std::strerror(errno));
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

int cmd_hardware(io::Testbed& tb) {
  std::printf("%s\n", tb.host().hardware_report().c_str());
  std::printf("%s\n", nm::render_hwloc(tb.machine().topology()).c_str());
  std::printf("%s", nm::render_interconnect(tb.machine().topology()).c_str());
  std::printf("\n%s",
              nm::render_slit(nm::slit_table(tb.machine().topology())).c_str());
  return 0;
}

int cmd_stream_matrix(io::Testbed& tb) {
  const auto m = mem::stream_matrix(tb.host(), mem::StreamConfig{});
  std::printf("%s", model::format_matrix(m).c_str());
  return 0;
}

int cmd_iomodel(io::Testbed& tb, const std::vector<std::string>& args) {
  const int target = int_flag(args, "--target", 7);
  const std::string dir = flag_value(args, "--direction", "write");
  if (target < 0 || target >= tb.machine().num_nodes()) {
    std::fprintf(stderr, "iomodel: target node out of range\n");
    return 2;
  }
  if (dir != "read" && dir != "write") {
    std::fprintf(stderr, "iomodel: --direction must be read or write\n");
    return 2;
  }
  const auto direction = dir == "write" ? model::Direction::kDeviceWrite
                                        : model::Direction::kDeviceRead;
  const auto m = model::build_iomodel(tb.host(), target, direction);
  std::printf("%s",
              model::format_series("device-" + dir + " model of node " +
                                       std::to_string(target),
                                   m.bw)
                  .c_str());
  const auto classes = model::classify(m, tb.machine().topology());
  for (int c = 0; c < classes.num_classes(); ++c) {
    std::printf("class %d:", c + 1);
    for (topo::NodeId v : classes.classes[static_cast<std::size_t>(c)]) {
      std::printf(" %d", v);
    }
    std::printf("  (avg %.1f Gbps, range %.1f-%.1f)\n",
                classes.class_avg[static_cast<std::size_t>(c)],
                classes.class_range[static_cast<std::size_t>(c)].first,
                classes.class_range[static_cast<std::size_t>(c)].second);
  }
  std::printf("representatives:");
  for (topo::NodeId v : model::representative_nodes(classes)) {
    std::printf(" %d", v);
  }
  std::printf("  (probe these %d bindings instead of all %d)\n",
              classes.num_classes(), tb.machine().num_nodes());
  return 0;
}

int cmd_demo(io::Testbed& tb, const std::vector<std::string>& args) {
  const int node = int_flag(args, "--node", 7);
  if (node < 0 || node >= tb.machine().num_nodes()) {
    std::fprintf(stderr, "demo: node out of range\n");
    return 2;
  }
  std::printf("numademo on node %d (Gbps)\n", node);
  std::printf("%-16s %10s %12s %12s\n", "module", "local", "remote-worst",
              "interleaved");
  for (const auto& row : mem::demo_policy_table(tb.host(), node)) {
    std::printf("%-16s %10.2f %12.2f %12.2f\n",
                mem::to_string(row.module).c_str(), row.local,
                row.remote_worst, row.interleaved);
  }
  return 0;
}

void print_classes(const model::Classification& classes) {
  for (int c = 0; c < classes.num_classes(); ++c) {
    std::printf("  class %d:", c + 1);
    for (topo::NodeId v : classes.classes[static_cast<std::size_t>(c)]) {
      std::printf(" %d", v);
    }
    std::printf("  (avg %.1f Gbps)\n",
                classes.class_avg[static_cast<std::size_t>(c)]);
  }
}

int cmd_characterize(io::Testbed& tb, const std::vector<std::string>& args) {
  model::CharacterizeConfig config;
  config.iomodel.repetitions = int_flag(args, "--reps", 100);
  const model::HostModel host_model = model::characterize_host(
      tb.host(), config);
  std::printf("characterized %s: %d nodes, both directions\n",
              host_model.host_name.c_str(), host_model.num_nodes);
  for (topo::NodeId t = 0; t < host_model.num_nodes; ++t) {
    std::printf("node %d: %d write classes, %d read classes\n", t,
                host_model.write_classes[static_cast<std::size_t>(t)]
                    .num_classes(),
                host_model.read_classes[static_cast<std::size_t>(t)]
                    .num_classes());
  }
  const std::string out = flag_value(args, "--out", "");
  if (!out.empty()) {
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "characterize: cannot write '%s'\n", out.c_str());
      return 2;
    }
    file << model::serialize(host_model);
    std::printf("saved to %s\n", out.c_str());
  }
  return 0;
}

int cmd_classes(const std::vector<std::string>& args) {
  const std::string in = flag_value(args, "--in", "");
  if (in.empty()) {
    std::fprintf(stderr, "classes: --in FILE is required\n");
    return 2;
  }
  const model::HostModel host_model = model::parse_host_model(read_file(in));
  const int target = int_flag(args, "--target", 7);
  const std::string dir = flag_value(args, "--direction", "read");
  if (target < 0 || target >= host_model.num_nodes) {
    std::fprintf(stderr, "classes: target out of range\n");
    return 2;
  }
  const auto direction = dir == "write" ? model::Direction::kDeviceWrite
                                        : model::Direction::kDeviceRead;
  std::printf("host %s, device-%s model of node %d:\n",
              host_model.host_name.c_str(), dir.c_str(), target);
  print_classes(host_model.classes_for(target, direction));
  return 0;
}

int cmd_asymmetry(io::Testbed& tb, const std::vector<std::string>& args) {
  const int target = int_flag(args, "--target", 7);
  const double min_ratio = double_flag(args, "--min-ratio", 1.15);
  if (target < 0 || target >= tb.machine().num_nodes()) {
    std::fprintf(stderr, "asymmetry: target out of range\n");
    return 2;
  }
  const auto m = model::iomodel_matrix(tb.host(), target);
  const auto pairs = model::find_asymmetric_pairs(m, min_ratio);
  if (pairs.empty()) {
    std::printf("no directional asymmetry above %.2fx around node %d\n",
                min_ratio, target);
    return 0;
  }
  for (const auto& line : model::describe(pairs)) {
    std::printf("%s\n", line.c_str());
  }
  return 0;
}

int cmd_validate(io::Testbed& tb, const std::vector<std::string>& args) {
  model::ValidateConfig config;
  config.iomodel_repetitions = int_flag(args, "--reps", 100);
  const model::ValidationReport report =
      model::validate_methodology(tb, config);
  std::printf("%s", report.to_string().c_str());
  return report.all_passed() ? 0 : 1;
}

int cmd_replay(io::Testbed& tb, const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "replay: missing trace path\n");
    return kExitUsage;
  }
  const auto entries = io::parse_trace(read_file(args.front()));
  const auto jobs = io::trace_to_jobs(entries, &tb.nic(), tb.ssds());
  io::FioRunner fio(tb.host());
  const auto results = fio.run_timed(jobs);
  double total_gib = 0.0;
  sim::Ns last_end = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%8.3fs %-10s node%d %8.1f GiB  %7.2f Gbps\n",
                entries[i].arrival / 1e9, entries[i].engine.c_str(),
                entries[i].cpu_node,
                static_cast<double>(entries[i].bytes) /
                    static_cast<double>(sim::kGiB),
                results[i].aggregate);
    total_gib += static_cast<double>(entries[i].bytes) /
                 static_cast<double>(sim::kGiB);
    last_end =
        std::max(last_end, entries[i].arrival + results[i].duration);
  }
  std::printf("replayed %zu requests, %.1f GiB in %.2f s\n",
              results.size(), total_gib, last_end / 1e9);
  return 0;
}

int cmd_fio(io::Testbed& tb, const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "fio: missing job file path\n");
    return kExitUsage;
  }
  io::DeviceSet set;
  set.nic = &tb.nic();
  set.ssds = tb.ssds();
  const io::JobFile file = io::parse_job_file(read_file(args.front()));
  const auto jobs = io::resolve_jobs(file, set);

  io::FioRunner fio(tb.host());
  const auto results = fio.run_concurrent(jobs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%-20s engine=%-10s node=%d streams=%d  %8.3f Gbps\n",
                file.jobs[i].name.c_str(), jobs[i].engine.c_str(),
                jobs[i].cpu_node, jobs[i].num_streams,
                results[i].aggregate);
  }
  if (results.size() > 1) {
    std::printf("%-20s %53.3f Gbps\n", "combined",
                io::combined_aggregate(results));
  }
  return 0;
}

int cmd_faults(io::Testbed& tb, const std::vector<std::string>& args) {
  const std::uint64_t seed = u64_flag(args, "--seed", 42);
  const int events = int_flag(args, "--events", 4);
  if (events < 1) throw UsageError("--events wants a positive count");

  faults::RandomPlanConfig plan_config;
  plan_config.num_events = events;
  const int num_devices = 1 + static_cast<int>(tb.ssds().size());
  faults::FaultPlan plan = faults::FaultPlan::random(
      seed, tb.machine().num_nodes(), num_devices, plan_config);
  std::printf("fault plan (seed %llu, %d events):\n%s",
              static_cast<unsigned long long>(seed), events,
              plan.to_string().c_str());

  faults::FaultInjector injector(tb.machine(), std::move(plan));
  injector.register_device(tb.nic().name(), tb.nic().attach_node(),
                           tb.nic().fault_resources());
  for (const io::PcieDevice* ssd : tb.ssds()) {
    injector.register_device(ssd->name(), ssd->attach_node(),
                             ssd->fault_resources());
  }

  std::vector<io::FioJob> jobs;
  std::vector<std::string> names;
  const std::string jobfile = flag_value(args, "--jobfile", "");
  if (!jobfile.empty()) {
    io::DeviceSet set;
    set.nic = &tb.nic();
    set.ssds = tb.ssds();
    const io::JobFile file = io::parse_job_file(read_file(jobfile));
    jobs = io::resolve_jobs(file, set);
    for (const auto& job : file.jobs) names.push_back(job.name);
  } else {
    io::FioJob job;
    job.devices = {&tb.nic()};
    job.engine = io::kRdmaRead;
    job.cpu_node = 2;
    job.num_streams = 4;
    job.bytes_per_stream = 40 * sim::kGiB;
    jobs.push_back(job);
    names.emplace_back("degraded-rdma");
  }
  // Degraded-mode runs need a per-attempt budget; leave explicit jobfile
  // timeouts alone but give timeout-less jobs a 30 s one so stalls abort
  // and retry instead of hanging the stream forever.
  for (io::FioJob& job : jobs) {
    if (job.retry.timeout <= 0.0) job.retry.timeout = 30.0e9;
  }

  io::FioRunner fio(tb.host());
  fio.set_fault_injector(&injector);
  const auto results = fio.run_concurrent(jobs);
  std::printf("\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const io::FioResult& r = results[i];
    std::printf("%-20s engine=%-10s node=%d  %8.3f Gbps  %s"
                " (retries %d, aborted %d/%zu)\n",
                names[i].c_str(), jobs[i].engine.c_str(), jobs[i].cpu_node,
                r.aggregate, r.degraded ? "DEGRADED" : "clean",
                r.total_retries, r.aborted_streams, r.streams.size());
    for (std::size_t s = 0; s < r.streams.size(); ++s) {
      const io::FioStreamStats& st = r.streams[s];
      std::printf("  stream %zu: mem node %d  %7.3f Gbps  %6.1f GiB  %s\n",
                  s, st.mem_node, st.avg_rate,
                  static_cast<double>(st.bytes_moved) /
                      static_cast<double>(sim::kGiB),
                  sim::to_string(st.outcome).c_str());
    }
  }
  std::printf("\napplied fault transitions:\n%s",
              injector.trace_to_string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    usage();
    return 0;
  }

  io::Testbed tb = io::Testbed::dl585();
  try {
    if (cmd == "hardware") return cmd_hardware(tb);
    if (cmd == "stream-matrix") return cmd_stream_matrix(tb);
    if (cmd == "iomodel") return cmd_iomodel(tb, args);
    if (cmd == "demo") return cmd_demo(tb, args);
    if (cmd == "fio") return cmd_fio(tb, args);
    if (cmd == "faults") return cmd_faults(tb, args);
    if (cmd == "characterize") return cmd_characterize(tb, args);
    if (cmd == "classes") return cmd_classes(args);
    if (cmd == "replay") return cmd_replay(tb, args);
    if (cmd == "validate") return cmd_validate(tb, args);
    if (cmd == "asymmetry") return cmd_asymmetry(tb, args);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "%s: %s\n", cmd.c_str(), e.what());
    return kExitUsage;
  } catch (const FileError& e) {
    std::fprintf(stderr, "%s: %s\n", cmd.c_str(), e.what());
    return kExitNoFile;
  } catch (const std::invalid_argument& e) {
    // Parsers (jobfile, host model, trace) throw invalid_argument with a
    // line number attached — malformed input, not a tool failure.
    std::fprintf(stderr, "%s: %s\n", cmd.c_str(), e.what());
    return kExitParse;
  } catch (const std::out_of_range& e) {
    std::fprintf(stderr, "%s: %s\n", cmd.c_str(), e.what());
    return kExitParse;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", cmd.c_str(), e.what());
    return kExitRuntime;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return usage();
}
