// numaio command-line tool — the "first NUMA characterization software for
// bulk data I/O tasks" the paper claims as its third contribution, in the
// spirit of the numactl/numademo family it extends (§II-B, §V-B).
//
//   numaio_cli hardware                  numactl --hardware + hwloc views
//   numaio_cli stream-matrix             Fig-3 STREAM characterization
//   numaio_cli iomodel [--target N] [--direction read|write]
//                                        Algorithm 1 + classes (Fig 10)
//   numaio_cli demo [--node N]           numademo policy table
//   numaio_cli fio <jobfile>             run a fio-format job file
//   numaio_cli help
//
// Everything runs against the simulated DL585 testbed; on real hardware
// the same library calls would sit on top of libnuma (see DESIGN.md).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/jobfile.h"
#include "io/trace.h"
#include "io/testbed.h"
#include "mem/membench.h"
#include "mem/numademo.h"
#include "model/asymmetry.h"
#include "model/characterize.h"
#include "model/classify.h"
#include "model/report.h"
#include "model/validate.h"
#include "nm/hwloc_view.h"
#include "nm/slit.h"

namespace {

using namespace numaio;

int usage() {
  std::printf(
      "usage: numaio_cli <command> [options]\n"
      "  hardware                         host topology and memory view\n"
      "  stream-matrix                    full STREAM bandwidth matrix\n"
      "  iomodel [--target N] [--direction read|write]\n"
      "                                   run the iomodel methodology\n"
      "  characterize [--out FILE] [--reps N]\n"
      "                                   model every node, optionally save\n"
      "  classes --in FILE [--target N] [--direction read|write]\n"
      "                                   inspect a saved host model\n"
      "  demo [--node N]                  numademo policy table\n"
      "  fio <jobfile>                    run a fio-format job file\n"
      "  replay <trace.csv>               replay a transfer trace\n"
      "  validate [--reps N]              check the methodology end to end\n"
      "  asymmetry [--target N] [--min-ratio R]\n"
      "                                   hunt directional asymmetries\n"
      "  help                             this text\n");
  return 2;
}

std::string flag_value(const std::vector<std::string>& args,
                       const std::string& flag, const std::string& fallback) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) return args[i + 1];
  }
  return fallback;
}

int cmd_hardware(io::Testbed& tb) {
  std::printf("%s\n", tb.host().hardware_report().c_str());
  std::printf("%s\n", nm::render_hwloc(tb.machine().topology()).c_str());
  std::printf("%s", nm::render_interconnect(tb.machine().topology()).c_str());
  std::printf("\n%s",
              nm::render_slit(nm::slit_table(tb.machine().topology())).c_str());
  return 0;
}

int cmd_stream_matrix(io::Testbed& tb) {
  const auto m = mem::stream_matrix(tb.host(), mem::StreamConfig{});
  std::printf("%s", model::format_matrix(m).c_str());
  return 0;
}

int cmd_iomodel(io::Testbed& tb, const std::vector<std::string>& args) {
  const int target = std::stoi(flag_value(args, "--target", "7"));
  const std::string dir = flag_value(args, "--direction", "write");
  if (target < 0 || target >= tb.machine().num_nodes()) {
    std::fprintf(stderr, "iomodel: target node out of range\n");
    return 2;
  }
  if (dir != "read" && dir != "write") {
    std::fprintf(stderr, "iomodel: --direction must be read or write\n");
    return 2;
  }
  const auto direction = dir == "write" ? model::Direction::kDeviceWrite
                                        : model::Direction::kDeviceRead;
  const auto m = model::build_iomodel(tb.host(), target, direction);
  std::printf("%s",
              model::format_series("device-" + dir + " model of node " +
                                       std::to_string(target),
                                   m.bw)
                  .c_str());
  const auto classes = model::classify(m, tb.machine().topology());
  for (int c = 0; c < classes.num_classes(); ++c) {
    std::printf("class %d:", c + 1);
    for (topo::NodeId v : classes.classes[static_cast<std::size_t>(c)]) {
      std::printf(" %d", v);
    }
    std::printf("  (avg %.1f Gbps, range %.1f-%.1f)\n",
                classes.class_avg[static_cast<std::size_t>(c)],
                classes.class_range[static_cast<std::size_t>(c)].first,
                classes.class_range[static_cast<std::size_t>(c)].second);
  }
  std::printf("representatives:");
  for (topo::NodeId v : model::representative_nodes(classes)) {
    std::printf(" %d", v);
  }
  std::printf("  (probe these %d bindings instead of all %d)\n",
              classes.num_classes(), tb.machine().num_nodes());
  return 0;
}

int cmd_demo(io::Testbed& tb, const std::vector<std::string>& args) {
  const int node = std::stoi(flag_value(args, "--node", "7"));
  if (node < 0 || node >= tb.machine().num_nodes()) {
    std::fprintf(stderr, "demo: node out of range\n");
    return 2;
  }
  std::printf("numademo on node %d (Gbps)\n", node);
  std::printf("%-16s %10s %12s %12s\n", "module", "local", "remote-worst",
              "interleaved");
  for (const auto& row : mem::demo_policy_table(tb.host(), node)) {
    std::printf("%-16s %10.2f %12.2f %12.2f\n",
                mem::to_string(row.module).c_str(), row.local,
                row.remote_worst, row.interleaved);
  }
  return 0;
}

void print_classes(const model::Classification& classes) {
  for (int c = 0; c < classes.num_classes(); ++c) {
    std::printf("  class %d:", c + 1);
    for (topo::NodeId v : classes.classes[static_cast<std::size_t>(c)]) {
      std::printf(" %d", v);
    }
    std::printf("  (avg %.1f Gbps)\n",
                classes.class_avg[static_cast<std::size_t>(c)]);
  }
}

int cmd_characterize(io::Testbed& tb, const std::vector<std::string>& args) {
  model::CharacterizeConfig config;
  config.iomodel.repetitions =
      std::stoi(flag_value(args, "--reps", "100"));
  const model::HostModel host_model = model::characterize_host(
      tb.host(), config);
  std::printf("characterized %s: %d nodes, both directions\n",
              host_model.host_name.c_str(), host_model.num_nodes);
  for (topo::NodeId t = 0; t < host_model.num_nodes; ++t) {
    std::printf("node %d: %d write classes, %d read classes\n", t,
                host_model.write_classes[static_cast<std::size_t>(t)]
                    .num_classes(),
                host_model.read_classes[static_cast<std::size_t>(t)]
                    .num_classes());
  }
  const std::string out = flag_value(args, "--out", "");
  if (!out.empty()) {
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "characterize: cannot write '%s'\n", out.c_str());
      return 2;
    }
    file << model::serialize(host_model);
    std::printf("saved to %s\n", out.c_str());
  }
  return 0;
}

int cmd_classes(const std::vector<std::string>& args) {
  const std::string in = flag_value(args, "--in", "");
  if (in.empty()) {
    std::fprintf(stderr, "classes: --in FILE is required\n");
    return 2;
  }
  std::ifstream file(in);
  if (!file) {
    std::fprintf(stderr, "classes: cannot open '%s'\n", in.c_str());
    return 2;
  }
  std::ostringstream text;
  text << file.rdbuf();
  const model::HostModel host_model = model::parse_host_model(text.str());
  const int target = std::stoi(flag_value(args, "--target", "7"));
  const std::string dir = flag_value(args, "--direction", "read");
  if (target < 0 || target >= host_model.num_nodes) {
    std::fprintf(stderr, "classes: target out of range\n");
    return 2;
  }
  const auto direction = dir == "write" ? model::Direction::kDeviceWrite
                                        : model::Direction::kDeviceRead;
  std::printf("host %s, device-%s model of node %d:\n",
              host_model.host_name.c_str(), dir.c_str(), target);
  print_classes(host_model.classes_for(target, direction));
  return 0;
}

int cmd_asymmetry(io::Testbed& tb, const std::vector<std::string>& args) {
  const int target = std::stoi(flag_value(args, "--target", "7"));
  const double min_ratio = std::stod(flag_value(args, "--min-ratio", "1.15"));
  if (target < 0 || target >= tb.machine().num_nodes()) {
    std::fprintf(stderr, "asymmetry: target out of range\n");
    return 2;
  }
  const auto m = model::iomodel_matrix(tb.host(), target);
  const auto pairs = model::find_asymmetric_pairs(m, min_ratio);
  if (pairs.empty()) {
    std::printf("no directional asymmetry above %.2fx around node %d\n",
                min_ratio, target);
    return 0;
  }
  for (const auto& line : model::describe(pairs)) {
    std::printf("%s\n", line.c_str());
  }
  return 0;
}

int cmd_validate(io::Testbed& tb, const std::vector<std::string>& args) {
  model::ValidateConfig config;
  config.iomodel_repetitions = std::stoi(flag_value(args, "--reps", "100"));
  const model::ValidationReport report =
      model::validate_methodology(tb, config);
  std::printf("%s", report.to_string().c_str());
  return report.all_passed() ? 0 : 1;
}

int cmd_replay(io::Testbed& tb, const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "replay: missing trace path\n");
    return 2;
  }
  std::ifstream in(args.front());
  if (!in) {
    std::fprintf(stderr, "replay: cannot open '%s'\n", args.front().c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const auto entries = io::parse_trace(text.str());
  const auto jobs = io::trace_to_jobs(entries, &tb.nic(), tb.ssds());
  io::FioRunner fio(tb.host());
  const auto results = fio.run_timed(jobs);
  double total_gib = 0.0;
  sim::Ns last_end = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%8.3fs %-10s node%d %8.1f GiB  %7.2f Gbps\n",
                entries[i].arrival / 1e9, entries[i].engine.c_str(),
                entries[i].cpu_node,
                static_cast<double>(entries[i].bytes) /
                    static_cast<double>(sim::kGiB),
                results[i].aggregate);
    total_gib += static_cast<double>(entries[i].bytes) /
                 static_cast<double>(sim::kGiB);
    last_end =
        std::max(last_end, entries[i].arrival + results[i].duration);
  }
  std::printf("replayed %zu requests, %.1f GiB in %.2f s\n",
              results.size(), total_gib, last_end / 1e9);
  return 0;
}

int cmd_fio(io::Testbed& tb, const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "fio: missing job file path\n");
    return 2;
  }
  std::ifstream in(args.front());
  if (!in) {
    std::fprintf(stderr, "fio: cannot open '%s'\n", args.front().c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  io::DeviceSet set;
  set.nic = &tb.nic();
  set.ssds = tb.ssds();
  const io::JobFile file = io::parse_job_file(text.str());
  const auto jobs = io::resolve_jobs(file, set);

  io::FioRunner fio(tb.host());
  const auto results = fio.run_concurrent(jobs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%-20s engine=%-10s node=%d streams=%d  %8.3f Gbps\n",
                file.jobs[i].name.c_str(), jobs[i].engine.c_str(),
                jobs[i].cpu_node, jobs[i].num_streams,
                results[i].aggregate);
  }
  if (results.size() > 1) {
    std::printf("%-20s %53.3f Gbps\n", "combined",
                io::combined_aggregate(results));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    usage();
    return 0;
  }

  io::Testbed tb = io::Testbed::dl585();
  try {
    if (cmd == "hardware") return cmd_hardware(tb);
    if (cmd == "stream-matrix") return cmd_stream_matrix(tb);
    if (cmd == "iomodel") return cmd_iomodel(tb, args);
    if (cmd == "demo") return cmd_demo(tb, args);
    if (cmd == "fio") return cmd_fio(tb, args);
    if (cmd == "characterize") return cmd_characterize(tb, args);
    if (cmd == "classes") return cmd_classes(args);
    if (cmd == "replay") return cmd_replay(tb, args);
    if (cmd == "validate") return cmd_validate(tb, args);
    if (cmd == "asymmetry") return cmd_asymmetry(tb, args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return usage();
}
