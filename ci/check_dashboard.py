#!/usr/bin/env python3
"""Grafana dashboard checker for the numaio metric families.

Usage: check_dashboard.py DASHBOARD.json PROM_SNAPSHOT.txt

Two gates, both cheap and deterministic:

  1. The dashboard must be well-formed JSON with at least one panel
     carrying a PromQL expr (a truncated or hand-mangled file fails
     loudly instead of rendering as an empty board).
  2. Every `numaio_*` series name referenced by any expr must exist in
     the given Prometheus text-exposition snapshot — the output of
     `numaio_cli ... --prom-out FILE` or a GET /metrics scrape. This
     pins the dashboard to the exporter's real naming scheme (numaio_
     prefix, dots to underscores, counters suffixed _total, histograms
     split into _bucket/_sum/_count), so a renamed or dropped metric
     breaks CI here rather than silently blanking a panel.

Exit code 0 on success, 1 with one line per problem otherwise.
"""

import json
import re
import sys


def series_names(prom_text):
    """All series names in a text-exposition snapshot (labels stripped)."""
    names = set()
    for line in prom_text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        names.add(re.split(r"[{ ]", line, maxsplit=1)[0])
    return names


def panel_exprs(node):
    """Every 'expr' string anywhere in the dashboard tree."""
    if isinstance(node, dict):
        for key, value in node.items():
            if key == "expr" and isinstance(value, str):
                yield value
            else:
                yield from panel_exprs(value)
    elif isinstance(node, list):
        for value in node:
            yield from panel_exprs(value)


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    dash_path, prom_path = sys.argv[1], sys.argv[2]

    with open(dash_path, encoding="utf-8") as f:
        dashboard = json.load(f)  # gate 1: must parse

    exprs = list(panel_exprs(dashboard.get("panels", [])))
    if not exprs:
        print(f"FAIL {dash_path}: no panel exprs found")
        return 1

    referenced = set()
    for expr in exprs:
        referenced.update(re.findall(r"numaio_[a-z0-9_]+", expr))
    if not referenced:
        print(f"FAIL {dash_path}: exprs reference no numaio_* families")
        return 1

    with open(prom_path, encoding="utf-8") as f:
        exported = series_names(f.read())

    missing = sorted(referenced - exported)
    for name in missing:
        print(f"FAIL {dash_path}: {name} not exported (see {prom_path})")
    if missing:
        return 1

    print(
        f"dashboard ok: {len(exprs)} exprs over "
        f"{len(referenced)} exported numaio_* series"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
