#!/usr/bin/env bash
# ASan+UBSan build and test run. Usage: ci/sanitize.sh [build-dir]
#
# Configures a separate build tree with AddressSanitizer and
# UndefinedBehaviorSanitizer enabled, builds everything and runs the full
# ctest suite with sanitizer errors promoted to hard failures.
set -euo pipefail

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$ROOT/build-sanitize"}
SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer -g"
JOBS=$(nproc 2>/dev/null || echo 2)

cmake -B "$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"

cmake --build "$BUILD_DIR" -j "$JOBS"

# The solver property suite runs first, on its own: it is the randomized
# stress for the CSR arena / free-list / incidence bookkeeping (including
# bit-identical churn vs the reference solver), exactly the code where an
# out-of-bounds arena index or stale incidence back-pointer would hide.
# The parallel suites ride along: component buckets index the same arena.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  "$BUILD_DIR/tests/numaio_tests" \
  --gtest_filter='*SolverProperty*:FlowSolverCache.*:FlowSolverFreeList.*:FlowSolverCapacityFactor.*:FlowSolverScratch.*:FlowSolverParallel.*:FlowSolverStatus.*:ThreadPool.*'

# The fleet serving suite also runs standalone: its runtime is the one
# place where event-engine callbacks hold (id, generation) handles across
# host crashes that tear down in-flight state — exactly where a stale
# pointer or double-detach would surface as a use-after-free. The scale
# suites (FleetScale/ShardSet) add the batched admission path: per-shard
# arenas drained by pool lanes and 2,000-tenant storm runs. ISSUE 10
# adds the sharded queue (PriorityFifo/QueueSet: map-of-deque arenas
# churned by a 20,000-op shed/steal property trace) and the sharded
# event engine (per-lane heaps drained in fork-join rounds).
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  "$BUILD_DIR/tests/numaio_tests" \
  --gtest_filter='TokenBucket*:BoundedQueue*:PriorityFifo*:QueueSet*:CircuitBreaker*:AdmissionStatus*:FleetSim*:FleetScale*:ShardSet*:ShardedEventEngine*:FaultPlanFile*'

# halt_on_error: the first sanitizer report fails the test run instead of
# scrolling past; detect_leaks exercises the Host/Buffer ownership paths.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "sanitize: all tests passed under ASan+UBSan"

# ThreadSanitizer pass over the parallel solver engine. TSan cannot be
# combined with ASan, so it gets its own tree; the filter covers the
# ThreadPool handshake and every multi-threaded solve path (sharded
# churn, thread-count invariance, traced fio runs at 8 threads) — the
# code where a missing happens-before edge would surface as a data race
# on rates_, the per-worker scratch, or the stats counters.
TSAN_BUILD_DIR="${BUILD_DIR}-tsan"
TSAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer -g"

cmake -B "$TSAN_BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="$TSAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$TSAN_FLAGS"

cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" --target numaio_tests

# FleetScale/ShardSet join the TSan filter for the batched admission
# fan-out: shard arenas and verdict bytes are written concurrently by
# pool lanes, relying only on the fork-join barrier for publication.
# ShardedEventEngine adds the lane-drain rounds: per-lane heaps and
# accumulators mutated by concurrent workers, published to the serial
# merge hook through the same barrier (worker-count invariance test
# runs the identical script serial, 2-worker and 8-worker).
TSAN_OPTIONS="halt_on_error=1" \
  "$TSAN_BUILD_DIR/tests/numaio_tests" \
  --gtest_filter='ThreadPool.*:*ParallelSolverProperty*:FlowSolverParallel.*:FleetScale*:ShardSet*:ShardedEventEngine*'

echo "sanitize: parallel solver is clean under TSan"
