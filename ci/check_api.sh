#!/usr/bin/env bash
# Public-API hygiene check. Usage: ci/check_api.sh [compiler]
#
# Compiles a tiny translation unit that includes ONLY the umbrella header
# (src/numaio.h) under strict warnings. Catches umbrella breakage early:
# a header dropped from the umbrella, a declaration needing an include it
# no longer gets transitively, or a warning-dirty inline definition —
# exactly the failures a downstream consumer of `#include "numaio.h"`
# would hit first.
set -euo pipefail

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
CXX=${1:-${CXX:-c++}}
TU=$(mktemp /tmp/numaio_api_XXXXXX.cpp)
OBJ=$(mktemp /tmp/numaio_api_XXXXXX.o)
trap 'rm -f "$TU" "$OBJ"' EXIT

cat > "$TU" <<'EOF'
// The whole public surface through the single supported include, and a
// handful of odr-uses so the compiler instantiates what matters.
#include "numaio.h"

int api_probe() {
  numaio::obs::Context ctx;
  const numaio::Status status;
  numaio::faults::RandomPlanConfig plan;
  numaio::model::IoModelConfig iomodel;
  iomodel.obs = &ctx;
  return status.exit_code() + plan.num_events +
         static_cast<int>(ctx.metrics.empty());
}
EOF

"$CXX" -std=c++20 -Wall -Wextra -Werror -Wshadow \
  -I"$ROOT/src" -c "$TU" -o "$OBJ"

echo "check_api: numaio.h compiles clean under -Wall -Wextra -Werror -Wshadow"
