#!/usr/bin/env bash
# Full CI pipeline. Usage: ci/run_all.sh [build-dir]
#
# 1. configure + build the default tree,
# 2. run the full ctest suite,
# 3. check the public API surface (ci/check_api.sh),
# 4. smoke the streaming trace pipeline at scale: synth-trace writes a
#    10^6-record capture, then report + export stream it back (the
#    CLI paths that must work on arbitrarily large files),
# 5. gate perf against the committed baseline (ci/perf_guard.sh;
#    metrics-only by default — see that script for wall-time gating),
# 6. rebuild and re-test under ASan+UBSan (ci/sanitize.sh).
#
# bash + `set -euo pipefail` so a failing stage — including one on the
# left side of a pipe — fails the pipeline instead of scrolling past.
set -euo pipefail

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$ROOT/build-ci"}
JOBS=$(nproc 2>/dev/null || echo 2)

cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

"$ROOT/ci/check_api.sh"

# Large-trace smoke: the full streaming pipeline over a million-record
# capture. Fails if any stage slurps the file into memory badly enough to
# die, truncates, or emits unparseable output.
SMOKE_DIR=$(mktemp -d /tmp/numaio_trace_smoke_XXXXXX)
trap 'rm -rf "$SMOKE_DIR"' EXIT
CLI="$BUILD_DIR/tools/numaio_cli"
"$CLI" synth-trace --out "$SMOKE_DIR/big.jsonl" --records 1000000
[ "$(wc -l < "$SMOKE_DIR/big.jsonl")" -eq 1000000 ]
"$CLI" report --trace-in "$SMOKE_DIR/big.jsonl" --format json \
    --out "$SMOKE_DIR/big_report.json"
grep -q '"records": 1000000' "$SMOKE_DIR/big_report.json"
"$CLI" report --trace-in "$SMOKE_DIR/big.jsonl" \
    --diff "$SMOKE_DIR/big_report.json" | grep -q 'critical path'
"$CLI" export --trace-in "$SMOKE_DIR/big.jsonl" \
    --chrome "$SMOKE_DIR/big_chrome.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
    "$SMOKE_DIR/big_chrome.json"
echo "run_all: large-trace streaming smoke green (10^6 records)"

# Flame-fold smoke: a 10^6-record deep-chain capture (spans nested 32
# deep) folded to flamegraph.pl input. Checks the record count survives
# the deep generator, the fold stays within its O(open spans) bound
# (the CLI prints the peak), and every folded line is `path weight` with
# a positive integer weight and no empty frames.
"$CLI" synth-trace --out "$SMOKE_DIR/deep.jsonl" --records 1000000 \
    --depth 32 --fanout 8
[ "$(wc -l < "$SMOKE_DIR/deep.jsonl")" -eq 1000000 ]
"$CLI" export --trace-in "$SMOKE_DIR/deep.jsonl" \
    --folded "$SMOKE_DIR/deep.folded" | grep -q 'peak 33 open'
[ -s "$SMOKE_DIR/deep.folded" ]
awk 'NF != 2 || $2 + 0 <= 0 || $1 ~ /^;|;;|;$/ { bad = 1 }
     END { exit bad }' "$SMOKE_DIR/deep.folded"
echo "run_all: flame-fold smoke green (10^6 records, depth 32)"

"$ROOT/ci/perf_guard.sh" "$BUILD_DIR"
"$ROOT/ci/sanitize.sh" "$BUILD_DIR-sanitize"

echo "run_all: build, tests, API check, perf guard and sanitizers all green"
