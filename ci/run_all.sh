#!/usr/bin/env bash
# Full CI pipeline. Usage: ci/run_all.sh [build-dir]
#
# 1. configure + build the default tree,
# 2. run the full ctest suite,
# 3. check the public API surface (ci/check_api.sh),
# 4. gate perf against the committed baseline (ci/perf_guard.sh;
#    metrics-only by default — see that script for wall-time gating),
# 5. rebuild and re-test under ASan+UBSan (ci/sanitize.sh).
#
# bash + `set -euo pipefail` so a failing stage — including one on the
# left side of a pipe — fails the pipeline instead of scrolling past.
set -euo pipefail

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$ROOT/build-ci"}
JOBS=$(nproc 2>/dev/null || echo 2)

cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

"$ROOT/ci/check_api.sh"
"$ROOT/ci/perf_guard.sh" "$BUILD_DIR"
"$ROOT/ci/sanitize.sh" "$BUILD_DIR-sanitize"

echo "run_all: build, tests, API check, perf guard and sanitizers all green"
