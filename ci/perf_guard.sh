#!/usr/bin/env bash
# Perf-regression gate. Usage: ci/perf_guard.sh [build-dir]
#
# Runs bench/harness.cpp's curated subset and compares the result against
# the committed baseline (BENCH_numaio.json at the repo root) with
# per-metric tolerances. Simulated metrics (bandwidths, retry counts,
# stall fractions) are deterministic and always gated; wall-time gating
# is opt-in because shared CI runners are too noisy for a relative
# threshold:
#
#   PERF_GUARD_FLAGS   compare flags, default "--skip-wall". Set to ""
#                      (or "--wall-tol 0.20") on a quiet dedicated box to
#                      gate wall time too. The solver_storm_mt bench's
#                      threads_speedup metric is floor-gated (>= 3x at 8
#                      threads) whenever the runner has >= 8 hardware
#                      cores and skipped otherwise; add "--skip-speedup"
#                      to drop that rule, or "--speedup-floor F" to tune
#                      it. The fleet_scale bench's sched_rps metric is
#                      floor-gated unconditionally (>= 5e5 scheduled
#                      requests/s; the sharded-engine scenario itself
#                      clears 1e6, the ISSUE 10 throughput contract,
#                      and the floor leaves headroom for future
#                      scenario tweaks):
#                      it is computed from simulated time, so it cannot
#                      regress from runner noise; "--rps-floor F" tunes
#                      the threshold.
#   PERF_GUARD_CURRENT use an existing results file instead of running
#                      the harness — how the CTest self-test proves the
#                      gate fails on an injected slowdown.
#
# Refreshing the baseline after an intentional perf change:
#   build/bench/bench_harness run --out BENCH_numaio.json
set -euo pipefail

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$ROOT/build"}
BASELINE="$ROOT/BENCH_numaio.json"
HARNESS="$BUILD_DIR/bench/bench_harness"
JOBS=$(nproc 2>/dev/null || echo 2)

if [ ! -f "$BASELINE" ]; then
  echo "perf_guard: no baseline at $BASELINE" >&2
  exit 1
fi
if [ ! -x "$HARNESS" ]; then
  cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_harness
fi

CURRENT=${PERF_GUARD_CURRENT:-}
if [ -z "$CURRENT" ]; then
  CURRENT=$(mktemp /tmp/bench_numaio_XXXXXX.json)
  trap 'rm -f "$CURRENT"' EXIT
  "$HARNESS" run --out "$CURRENT"
fi

# Intentionally unquoted: PERF_GUARD_FLAGS holds zero or more flags.
# shellcheck disable=SC2086
if ! "$HARNESS" compare "$BASELINE" "$CURRENT" ${PERF_GUARD_FLAGS---skip-wall}; then
  # compare prints one FAIL line per offending bench/metric, including
  # benches or metrics absent from the baseline (a stale baseline after a
  # harness change). Spell out the remedy either way.
  echo "perf_guard: FAILED against $BASELINE" >&2
  echo "perf_guard: if the change is intentional (new bench, new metric, or" >&2
  echo "perf_guard: an accepted perf shift), refresh the baseline with:" >&2
  echo "perf_guard:   $HARNESS run --out $BASELINE" >&2
  exit 1
fi
