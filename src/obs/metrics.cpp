#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

namespace numaio::obs {

namespace {

std::string number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_string(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

template <typename Vec>
typename Vec::value_type* find_by_name(Vec& entries, std::string_view name) {
  for (auto& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

}  // namespace

MetricsRegistry::Id MetricsRegistry::counter(std::string_view name) {
  if (find_by_name(gauges_, name) != nullptr ||
      find_by_name(histograms_, name) != nullptr) {
    throw std::invalid_argument("metric '" + std::string(name) +
                                "' already registered with a different kind");
  }
  for (Id i = 0; i < counters_.size(); ++i) {
    if (counters_[i].name == name) return i;
  }
  counters_.push_back(Scalar{std::string(name), 0.0});
  return counters_.size() - 1;
}

MetricsRegistry::Id MetricsRegistry::gauge(std::string_view name) {
  if (find_by_name(counters_, name) != nullptr ||
      find_by_name(histograms_, name) != nullptr) {
    throw std::invalid_argument("metric '" + std::string(name) +
                                "' already registered with a different kind");
  }
  for (Id i = 0; i < gauges_.size(); ++i) {
    if (gauges_[i].name == name) return i;
  }
  gauges_.push_back(Scalar{std::string(name), 0.0});
  return gauges_.size() - 1;
}

MetricsRegistry::Id MetricsRegistry::histogram(
    std::string_view name, std::vector<double> upper_bounds) {
  if (upper_bounds.empty() ||
      !std::is_sorted(upper_bounds.begin(), upper_bounds.end()) ||
      std::adjacent_find(upper_bounds.begin(), upper_bounds.end()) !=
          upper_bounds.end()) {
    throw std::invalid_argument("histogram '" + std::string(name) +
                                "' bounds must be strictly ascending");
  }
  if (find_by_name(counters_, name) != nullptr ||
      find_by_name(gauges_, name) != nullptr) {
    throw std::invalid_argument("metric '" + std::string(name) +
                                "' already registered with a different kind");
  }
  for (Id i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i].name == name) {
      if (histograms_[i].bounds != upper_bounds) {
        throw std::invalid_argument("histogram '" + std::string(name) +
                                    "' re-registered with different bounds");
      }
      return i;
    }
  }
  Histogram h;
  h.name.assign(name);
  h.bounds = std::move(upper_bounds);
  h.counts.assign(h.bounds.size() + 1, 0);
  histograms_.push_back(std::move(h));
  return histograms_.size() - 1;
}

void MetricsRegistry::add(Id id, double delta) {
  if (id < counters_.size()) counters_[id].value += delta;
}

void MetricsRegistry::set(Id id, double value) {
  if (id < gauges_.size()) gauges_[id].value = value;
}

void MetricsRegistry::observe(Id id, double value) {
  if (id >= histograms_.size()) return;
  histograms_[id].observe(value);
}

void MetricsRegistry::Histogram::observe(double value) {
  // First bucket whose upper bound is >= value; past-the-end = overflow.
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  counts[static_cast<std::size_t>(it - bounds.begin())] += 1;
  count += 1;
  sum += value;
}

void MetricsRegistry::merge_histogram(const Histogram& histogram) {
  if (histogram.bounds.empty()) return;
  const Id id = this->histogram(histogram.name, histogram.bounds);
  Histogram& h = histograms_[id];
  const std::size_t n = std::min(h.counts.size(), histogram.counts.size());
  for (std::size_t i = 0; i < n; ++i) {
    h.counts[i] += histogram.counts[i];
  }
  h.count += histogram.count;
  h.sum += histogram.sum;
}

double MetricsRegistry::value(std::string_view name) const {
  for (const Scalar& c : counters_) {
    if (c.name == name) return c.value;
  }
  for (const Scalar& g : gauges_) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

const MetricsRegistry::Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  for (const Histogram& h : histograms_) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

double MetricsRegistry::Histogram::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (cum + in_bucket < rank || in_bucket == 0.0) {
      cum += in_bucket;
      continue;
    }
    if (i >= bounds.size()) return bounds.back();  // +inf overflow bucket
    const double hi = bounds[i];
    const double lo = i == 0 ? std::min(0.0, hi) : bounds[i - 1];
    return lo + (hi - lo) * ((rank - cum) / in_bucket);
  }
  return bounds.back();
}

std::vector<MetricsRegistry::NamedValue> MetricsRegistry::counter_values()
    const {
  std::vector<NamedValue> out;
  for (const Scalar& c : counters_) out.push_back({c.name, c.value});
  std::sort(out.begin(), out.end(),
            [](const NamedValue& a, const NamedValue& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<MetricsRegistry::NamedValue> MetricsRegistry::gauge_values()
    const {
  std::vector<NamedValue> out;
  for (const Scalar& g : gauges_) out.push_back({g.name, g.value});
  std::sort(out.begin(), out.end(),
            [](const NamedValue& a, const NamedValue& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<const MetricsRegistry::Histogram*>
MetricsRegistry::histograms_sorted() const {
  std::vector<const Histogram*> out;
  for (const Histogram& h : histograms_) out.push_back(&h);
  std::sort(out.begin(), out.end(),
            [](const Histogram* a, const Histogram* b) {
              return a->name < b->name;
            });
  return out;
}

std::string MetricsRegistry::to_json() const {
  // Sorted maps make the snapshot independent of registration order, so
  // same-seed runs diff clean.
  std::map<std::string, double> counters;
  for (const Scalar& c : counters_) counters[c.name] = c.value;
  std::map<std::string, double> gauges;
  for (const Scalar& g : gauges_) gauges[g.name] = g.value;
  std::map<std::string, const Histogram*> histograms;
  for (const Histogram& h : histograms_) histograms[h.name] = &h;

  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n" : ",\n") << "    " << json_string(name) << ": "
        << number(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out << (first ? "\n" : ",\n") << "    " << json_string(name) << ": "
        << number(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out << (first ? "\n" : ",\n") << "    " << json_string(name)
        << ": {\"bounds\": [";
    for (std::size_t i = 0; i < h->bounds.size(); ++i) {
      out << (i == 0 ? "" : ", ") << number(h->bounds[i]);
    }
    out << "], \"counts\": [";
    for (std::size_t i = 0; i < h->counts.size(); ++i) {
      out << (i == 0 ? "" : ", ") << h->counts[i];
    }
    out << "], \"count\": " << h->count << ", \"sum\": " << number(h->sum)
        << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string MetricsRegistry::summary() const {
  std::map<std::string, double> counters;
  for (const Scalar& c : counters_) counters[c.name] = c.value;
  std::map<std::string, double> gauges;
  for (const Scalar& g : gauges_) gauges[g.name] = g.value;
  std::map<std::string, const Histogram*> histograms;
  for (const Histogram& h : histograms_) histograms[h.name] = &h;

  std::ostringstream out;
  if (!counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : counters) {
      out << "  " << name << " = " << number(value) << "\n";
    }
  }
  if (!gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, value] : gauges) {
      out << "  " << name << " = " << number(value) << "\n";
    }
  }
  if (!histograms.empty()) {
    out << "histograms:\n";
    for (const auto& [name, h] : histograms) {
      out << "  " << name << " (count " << h->count << ", sum "
          << number(h->sum);
      if (h->count > 0) {
        out << ", mean " << number(h->sum / static_cast<double>(h->count));
        out << ", p50 " << number(h->quantile(0.50)) << ", p95 "
            << number(h->quantile(0.95)) << ", p99 "
            << number(h->quantile(0.99)) << ", p99.9 "
            << number(h->quantile(0.999));
      }
      out << ")\n";
      for (std::size_t i = 0; i < h->counts.size(); ++i) {
        out << "    ";
        if (i < h->bounds.size()) {
          out << "<= " << number(h->bounds[i]);
        } else {
          out << "> " << number(h->bounds.back());
        }
        out << ": " << h->counts[i] << "\n";
      }
    }
  }
  if (counters.empty() && gauges.empty() && histograms.empty()) {
    out << "(no metrics recorded)\n";
  }
  return out.str();
}

namespace {

/// Minimal recursive-descent parser for the exact JSON subset to_json()
/// emits (objects, arrays of numbers, string keys, numbers). Not a general
/// JSON parser; rejects anything outside that subset.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!try_consume(c)) {
      throw std::invalid_argument("metrics JSON: expected '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(pos_));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out += c;
    }
    if (pos_ >= text_.size()) {
      throw std::invalid_argument("metrics JSON: unterminated string");
    }
    ++pos_;  // closing quote
    return out;
  }

  double parse_number() {
    skip_ws();
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(text_.substr(pos_), &consumed);
    } catch (const std::exception&) {
      throw std::invalid_argument("metrics JSON: expected number at offset " +
                                  std::to_string(pos_));
    }
    pos_ += consumed;
    return value;
  }

  std::vector<double> parse_number_array() {
    std::vector<double> out;
    expect('[');
    if (try_consume(']')) return out;
    do {
      out.push_back(parse_number());
    } while (try_consume(','));
    expect(']');
    return out;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

MetricsRegistry parse_metrics_json(const std::string& text) {
  MetricsRegistry registry;
  JsonCursor cur(text);
  cur.expect('{');
  bool first_section = true;
  while (!cur.try_consume('}')) {
    if (!first_section) cur.expect(',');
    first_section = false;
    const std::string section = cur.parse_string();
    if (section != "counters" && section != "gauges" &&
        section != "histograms") {
      throw std::invalid_argument("metrics JSON: unknown section '" +
                                  section + "'");
    }
    cur.expect(':');
    cur.expect('{');
    bool first_entry = true;
    while (!cur.try_consume('}')) {
      if (!first_entry) cur.expect(',');
      first_entry = false;
      const std::string name = cur.parse_string();
      cur.expect(':');
      if (section == "counters") {
        registry.add(registry.counter(name), cur.parse_number());
      } else if (section == "gauges") {
        registry.set(registry.gauge(name), cur.parse_number());
      } else if (section == "histograms") {
        cur.expect('{');
        std::vector<double> bounds;
        std::vector<double> counts;
        double sum = 0.0;
        bool first_field = true;
        while (!cur.try_consume('}')) {
          if (!first_field) cur.expect(',');
          first_field = false;
          const std::string field = cur.parse_string();
          cur.expect(':');
          if (field == "bounds") {
            bounds = cur.parse_number_array();
          } else if (field == "counts") {
            counts = cur.parse_number_array();
          } else if (field == "count") {
            cur.parse_number();  // redundant with the counts array
          } else if (field == "sum") {
            sum = cur.parse_number();
          } else {
            throw std::invalid_argument(
                "metrics JSON: unknown histogram field '" + field + "'");
          }
        }
        if (counts.size() != bounds.size() + 1) {
          throw std::invalid_argument("metrics JSON: histogram '" + name +
                                      "' counts/bounds size mismatch");
        }
        MetricsRegistry::Histogram h;
        h.name = name;
        h.bounds = std::move(bounds);
        h.sum = sum;
        for (const double c : counts) {
          if (c < 0.0) {
            throw std::invalid_argument("metrics JSON: histogram '" + name +
                                        "' has a negative bucket count");
          }
          h.counts.push_back(static_cast<std::uint64_t>(c));
          h.count += h.counts.back();
        }
        registry.histograms_.push_back(std::move(h));
      } else {
        throw std::invalid_argument("metrics JSON: unknown section '" +
                                    section + "'");
      }
    }
  }
  if (!cur.at_end()) {
    throw std::invalid_argument("metrics JSON: trailing content");
  }
  return registry;
}

}  // namespace numaio::obs
