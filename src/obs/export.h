// Exporters: render captures in formats external tools already speak.
//
// - export_chrome_trace(): Chrome trace-event JSON ("JSON Array Format"),
//   loadable in Perfetto and chrome://tracing. Spans map to complete
//   ("X") slices on tid = the span's NUMA node, instants to thread-scoped
//   "i" marks, and cause edges (retry/abort/migration citing a
//   fault.transition) to flow-event pairs ("s" -> "f"), so a degraded run
//   renders with arrows from each fault to everything it broke.
//   Simulated nanoseconds map to the format's microsecond `ts` field.
// - export_prometheus(): a MetricsRegistry snapshot in Prometheus text
//   exposition format 0.0.4 — counters as `numaio_*_total`, gauges
//   plain, histograms as cumulative `_bucket{le=...}` series with `_sum`
//   and `_count`. HELP lines come from the known_metrics() catalogue.
//
// The Chrome exporter is streaming: pass 1 builds a compact span-end
// index (the "span skeleton": per-span end time/outcome/bytes, the
// tracks in use, the ids cited as causes), pass 2 re-streams the capture
// and writes one event per record as it goes. Memory is O(spans + cause
// edges), never O(records), so arbitrarily large JSONL captures export
// without being materialized.
//
// Both exporters are pure serializers over deterministic inputs: the
// golden-file tests in tests/test_export.cpp pin the exact rendering.
// docs/FORMATS.md §5 documents the mappings.
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/metrics.h"
#include "obs/stream.h"
#include "obs/trace.h"

namespace numaio::obs {

/// Writes the capture as Chrome trace-event JSON in two streaming passes
/// over `source`. Records without a node binding land on the dedicated
/// "unbound" track; records without a simulated timestamp render at ts 0.
void export_chrome_trace(RecordSource& source, std::ostream& out);

/// In-memory convenience wrapper: streams the vector through the
/// two-pass exporter above. Byte-identical output.
void export_chrome_trace(const std::vector<Event>& events,
                         std::ostream& out);

/// Writes the registry snapshot in Prometheus text exposition format.
/// Metric names are prefixed "numaio_" with '.' mapped to '_'; families
/// render name-sorted so same-seed runs export byte-identically.
void export_prometheus(const MetricsRegistry& metrics, std::ostream& out);

}  // namespace numaio::obs
