#include "obs/profile.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <ostream>

namespace numaio::obs {

namespace {

/// Millisecond buckets shared by the three scheduler-latency histograms:
/// sub-ms dispatch decisions up to the second-scale waits an overload
/// storm produces. Matching fleet.latency_ms's flavor keeps Grafana
/// queries uniform.
std::vector<double> sched_latency_bounds() {
  return {0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
          250.0, 500.0, 1000.0};
}

MetricsRegistry::Histogram make_sched_histogram(const char* name) {
  MetricsRegistry::Histogram h;
  h.name = name;
  h.bounds = sched_latency_bounds();
  h.counts.assign(h.bounds.size() + 1, 0);
  return h;
}

}  // namespace

// ---------------------------------------------------------------------
// Folded stacks.

void FoldedStackCollector::record(const Event& event) {
  stats_.records += 1;
  if (event.kind == 'B') {
    stats_.spans += 1;
    OpenSpan span;
    const auto parent = open_.find(event.parent);
    if (parent != open_.end()) {
      span.path = parent->second.path;
      span.path += ';';
      span.path += event.name;
      span.parent = event.parent;
    } else {
      span.path = event.name;
    }
    span.t0 = event.t_sim;
    open_.emplace(event.id, std::move(span));
    if (open_.size() > stats_.peak_open_spans) {
      stats_.peak_open_spans = open_.size();
    }
  } else if (event.kind == 'E') {
    fold(event.span, event.t_sim);
  }
  // Instants carry no duration; they shape the analysis module's cause
  // chains, not the flame.
}

void FoldedStackCollector::fold(EventId id, double end_t) {
  const auto it = open_.find(id);
  if (it == open_.end()) return;  // end without begin: tolerated
  OpenSpan& span = it->second;
  const bool timed = span.t0 >= 0.0 && end_t >= span.t0;
  const double duration = timed ? end_t - span.t0 : 0.0;
  const double weight = weight_ == FoldWeight::kSelf
                            ? std::max(0.0, duration - span.child_ns)
                            : duration;
  folded_[span.path] += weight;
  const auto parent = open_.find(span.parent);
  if (parent != open_.end()) parent->second.child_ns += duration;
  open_.erase(it);
}

void FoldedStackCollector::finish() {
  // Drain unclosed spans innermost-first (ids are monotonic and nesting
  // is LIFO, so the largest open id has no open children left). With no
  // end record, the only duration we can stand behind is the child time
  // already attributed beneath the span.
  while (!open_.empty()) {
    const auto it = std::prev(open_.end());
    const EventId id = it->first;
    const double synthetic_end =
        it->second.t0 >= 0.0 ? it->second.t0 + it->second.child_ns : -1.0;
    fold(id, synthetic_end);
  }
  stats_.stacks = 0;
  for (const auto& [path, weight] : folded_) {
    if (std::llround(weight) > 0) stats_.stacks += 1;
  }
}

void FoldedStackCollector::write(std::ostream& out) const {
  for (const auto& [path, weight] : folded_) {
    const long long w = std::llround(weight);
    if (w <= 0) continue;
    out << path << ' ' << w << '\n';
  }
}

FoldStats export_folded_stacks(RecordSource& source, std::ostream& out,
                               FoldWeight weight) {
  FoldedStackCollector collector(weight);
  source.stream(collector);
  collector.finish();
  collector.write(out);
  return collector.stats();
}

// ---------------------------------------------------------------------
// Scheduler latency.

void SchedLatencyProfile::merge_into(MetricsRegistry& registry) const {
  registry.merge_histogram(queue_wait);
  registry.merge_histogram(dispatch);
  registry.merge_histogram(migration);
}

SchedLatencyCollector::SchedLatencyCollector() {
  profile_.queue_wait = make_sched_histogram("sched.queue_wait_ms");
  profile_.dispatch = make_sched_histogram("sched.dispatch_ms");
  profile_.migration = make_sched_histogram("sched.migration_ms");
}

void SchedLatencyCollector::record(const Event& event) {
  const double t = event.t_sim;
  if (t < 0.0) return;  // untimed records carry no latency information
  const std::string& name = event.name;

  if (name == "fleet.admit") {
    if (event.outcome == "admitted") pending_[event.detail].admit_t = t;
    return;
  }
  if (name == "fleet.dispatch") {
    PendingTask& task = pending_[event.detail];
    if (task.first_dispatch_t < 0.0) {
      task.first_dispatch_t = t;
      if (task.admit_t >= 0.0 && t >= task.admit_t) {
        profile_.queue_wait.observe((t - task.admit_t) / 1e6);
      }
    }
    if (event.outcome == "started" && !task.started) {
      task.started = true;
      if (t >= task.first_dispatch_t) {
        profile_.dispatch.observe((t - task.first_dispatch_t) / 1e6);
      }
    }
    return;
  }
  if (name == "sched.migrate" || name == "fleet.replace") {
    PendingTask& task = pending_[event.detail];
    if (task.last_move_t >= 0.0 && t >= task.last_move_t) {
      profile_.migration.observe((t - task.last_move_t) / 1e6);
    }
    task.last_move_t = t;
    return;
  }
  if (name == "fleet.complete" || name == "fleet.fail" ||
      name == "fleet.shed" || name == "fleet.reject") {
    pending_.erase(event.detail);
  }
}

SchedLatencyProfile profile_scheduler(RecordSource& source) {
  SchedLatencyCollector collector;
  source.stream(collector);
  return collector.profile();
}

}  // namespace numaio::obs
