// Entry point of the observability layer: one Context bundling the trace
// recorder and the metrics registry, plus the catalogue of metric names
// the toolkit emits.
//
// A Context is plumbed as a nullable pointer: library code treats
// `obs == nullptr` exactly like an attached-but-sinkless recorder (record
// nothing, cost nothing). The CLI owns one Context per invocation and
// wires `--trace-out` / `--metrics-out` to it; tests attach a MemorySink.
#pragma once

#include <vector>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace numaio::obs {

struct Context {
  TraceRecorder trace;
  MetricsRegistry metrics;
};

/// One entry of the metric-name registry (docs/OBSERVABILITY.md keeps the
/// prose version). `numaio_cli metrics` prints this table when invoked
/// without a snapshot file.
struct MetricInfo {
  const char* name;
  const char* kind;  ///< "counter", "gauge" or "histogram".
  const char* help;
};

/// Every metric name the library emits, sorted by name. Instrumented code
/// registers lazily, so a given run's snapshot holds the subset of these
/// that the exercised paths touched.
std::vector<MetricInfo> known_metrics();

}  // namespace numaio::obs
