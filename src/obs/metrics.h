// Always-on metrics for the measurement pipeline.
//
// A MetricsRegistry holds named counters (monotonic sums), gauges (last
// value wins) and fixed-bucket histograms. Registration resolves a name to
// a dense integer Id once; the hot-path operations (add / set / observe)
// are then a bounds-checked vector index and an arithmetic op, cheap
// enough to leave compiled-in and attached even on measurement paths —
// the contention solver counts every water-filling round through one.
//
// Snapshots serialize to a small JSON document (names sorted, so
// same-seed runs produce byte-identical files) and parse back with
// parse_metrics_json(); summary() renders the human table behind
// `numaio_cli metrics`. The metric names the toolkit emits are catalogued
// in known_metrics() (obs/obs.h) and docs/OBSERVABILITY.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace numaio::obs {

class MetricsRegistry {
 public:
  using Id = std::size_t;
  /// "No metric": add/set/observe on it are no-ops, so call sites can keep
  /// one unconditional statement.
  static constexpr Id kNone = static_cast<Id>(-1);

  /// Get-or-create by name. Ids are stable for the registry's lifetime.
  /// Registering the same name as two different kinds throws
  /// std::invalid_argument.
  Id counter(std::string_view name);
  Id gauge(std::string_view name);
  /// `upper_bounds` must be strictly ascending; an implicit +inf overflow
  /// bucket is appended. Re-registering must repeat the same bounds.
  Id histogram(std::string_view name, std::vector<double> upper_bounds);

  void add(Id id, double delta = 1.0);  ///< Counter increment.
  void set(Id id, double value);        ///< Gauge assignment.
  void observe(Id id, double value);    ///< Histogram sample.

  /// Value of a counter or gauge by name; 0 when absent.
  double value(std::string_view name) const;

  struct Histogram {
    std::string name;
    /// Ascending upper bounds; bucket i counts samples v with
    /// bounds[i-1] < v <= bounds[i] (first bucket: v <= bounds[0]).
    std::vector<double> bounds;
    /// bounds.size() + 1 entries; the last is the +inf overflow bucket.
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;

    /// Quantile estimate by linear interpolation inside the bucket the
    /// rank q*count lands in (Prometheus histogram_quantile style). The
    /// first bucket interpolates from min(0, bounds[0]); ranks landing in
    /// the +inf overflow bucket report bounds.back() — the estimate is
    /// clamped to the observable range. Returns 0 for an empty histogram.
    double quantile(double q) const;

    /// Records one sample (same bucketing as MetricsRegistry::observe).
    /// Lets standalone collectors (obs/profile.h) accumulate into a plain
    /// Histogram value before merging it into a registry.
    void observe(double value);
  };
  /// nullptr when no histogram of that name exists.
  const Histogram* find_histogram(std::string_view name) const;

  /// Folds an externally accumulated histogram into the registry: buckets,
  /// count and sum are added into the histogram of the same name
  /// (registered on first merge). Bounds must match an existing
  /// registration; empty-bounds inputs are ignored. This is how the
  /// scheduler-latency profile (obs/profile.h) lands in Prometheus
  /// exports without the collector owning a registry.
  void merge_histogram(const Histogram& histogram);

  /// Name-sorted snapshots, the exporters' iteration surface (the JSON
  /// and Prometheus renderings must not depend on registration order).
  struct NamedValue {
    std::string name;
    double value = 0.0;
  };
  std::vector<NamedValue> counter_values() const;
  std::vector<NamedValue> gauge_values() const;
  std::vector<const Histogram*> histograms_sorted() const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Deterministic JSON snapshot (docs/FORMATS.md §4).
  std::string to_json() const;

  /// Human-readable table: counters, gauges, then histograms with their
  /// per-bucket counts.
  std::string summary() const;

 private:
  friend MetricsRegistry parse_metrics_json(const std::string& text);

  struct Scalar {
    std::string name;
    double value = 0.0;
  };

  std::vector<Scalar> counters_;
  std::vector<Scalar> gauges_;
  std::vector<Histogram> histograms_;
};

/// Parses the JSON produced by MetricsRegistry::to_json() back into a
/// registry (the CLI's `metrics --in` summary view). Throws
/// std::invalid_argument on malformed input.
MetricsRegistry parse_metrics_json(const std::string& text);

}  // namespace numaio::obs
