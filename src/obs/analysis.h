// Trace analysis: from a raw record stream to the three artifacts a
// characterization run is judged by.
//
// PR 2 made the pipeline *emit* its story (spans, instants, cause edges);
// this module makes the story computable. Given a capture — any
// RecordSource (obs/stream.h): a JSONL file, an in-memory MemorySink
// vector, a synthetic workload — analyze_stream() derives:
//
//   1. per-span-kind aggregates: how many fio.stream / iomodel.probe /
//      online.run spans ran, their simulated time, bytes and outcome mix;
//   2. the critical path: the longest causally-linked chain of records,
//      walking the span tree from the dominant root down to the dominant
//      leaf and onward through cause edges to the fault.transition that
//      shaped it (every step cites the record id from the capture);
//   3. a per-node-pair contention heatmap: each transfer span's simulated
//      stall time — time beyond what the fastest same-kind transfer would
//      have needed — attributed to the (node_a, node_b) path it ran on,
//      i.e. to the links and memory controllers between that pair.
//
// The analyzer is streaming and multi-pass: pass 1 folds span-kind
// aggregates, the fault audit and the critical-path skeleton while
// holding only the currently *open* spans (each carrying its dominant
// closed-child chain); one follow-up pass attributes contention stall
// against the per-group reference rates pass 1 established and resolves
// the leaf's cause pivot; each further cause-chain link costs one more
// (cheap, bounded) pass. Memory is O(open spans + span kinds + node
// pairs), never O(records) — the §4a record-order guarantees (monotonic
// ids, LIFO span nesting, causes before consequences) are what make the
// single-visit fold equivalent to the old whole-capture reassembly.
//
// Everything here is a pure function of the record stream: analyzing the
// same capture twice yields identical results, and no wall-clock field is
// ever read, so reports built on top are byte-deterministic for
// deterministic traces.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/stream.h"
#include "obs/trace.h"

namespace numaio::obs {

/// Parses a JSONL trace (the JsonlSink serialization, FORMATS.md §4a)
/// back into records. Accepts records with or without the trailing
/// `wall_us` field (deterministic traces omit it; absent parses as -1).
/// Throws std::invalid_argument with a line number on malformed input.
std::vector<Event> parse_trace_jsonl(const std::string& text);

/// Aggregates over every span sharing one name ("span kind").
struct SpanKindStats {
  std::string name;       ///< e.g. "fio.stream".
  int count = 0;          ///< Spans begun.
  int unclosed = 0;       ///< Begins with no matching end record.
  double total_ns = 0.0;  ///< Sum of simulated durations (timed spans).
  double max_ns = 0.0;    ///< Longest single span.
  long long bytes = 0;    ///< Sum of end-record bytes (where recorded).
  /// Outcome -> span count, sorted by outcome string.
  std::vector<std::pair<std::string, int>> outcomes;
};

/// One step of the critical path, root-first. Span steps carry their
/// exclusive simulated time (duration minus the chosen child's); the
/// trailing cause steps (an instant and the record it cites) carry 0.
struct CriticalPathStep {
  EventId id = 0;       ///< Record id in the capture.
  std::string name;
  std::string outcome;
  std::string detail;
  double start_ns = -1.0;  ///< Span begin / instant time; -1 untimed.
  double end_ns = -1.0;    ///< Span end time; -1 untimed / instant.
  double self_ns = 0.0;    ///< Exclusive contribution to the path.
};

/// Simulated stall time attributed to one directed node pair: the links
/// and memory controllers on the node_a -> node_b path.
struct ContentionCell {
  int node_a = -1;
  int node_b = -1;
  int spans = 0;          ///< Transfer spans that ran on this pair.
  long long bytes = 0;    ///< Payload carried over the pair.
  double busy_ns = 0.0;   ///< Sum of span durations on the pair.
  double stall_ns = 0.0;  ///< busy time beyond the uncontended ideal.

  double stall_frac() const {
    return busy_ns > 0.0 ? stall_ns / busy_ns : 0.0;
  }
};

/// Degraded-mode audit: every fault transition, what it caused, and the
/// retry/abort totals of the run.
struct FaultAudit {
  int transitions = 0;  ///< fault.transition records.
  int retries = 0;      ///< "*.retry" instants.
  int aborts = 0;       ///< "*.abort" instants + spans ended "aborted".
  int caused = 0;       ///< Records citing a fault.transition as cause.
  /// Per-transition consequence count, label = "<detail> <outcome> (id N)",
  /// sorted by count descending then record id. Transitions that caused
  /// nothing are included with count 0.
  std::vector<std::pair<std::string, int>> by_fault;
};

struct TraceAnalysis {
  int num_records = 0;
  double first_ns = -1.0;  ///< Earliest simulated timestamp (-1: untimed).
  double last_ns = -1.0;   ///< Latest simulated timestamp.
  std::vector<SpanKindStats> span_kinds;  ///< Sorted by name.
  std::vector<CriticalPathStep> critical_path;  ///< Root-first.
  double critical_path_ns = 0.0;  ///< Root span duration (end-to-end).
  /// Sorted by stall_ns descending, then (node_a, node_b).
  std::vector<ContentionCell> contention;
  FaultAudit faults;
  // Streaming-core diagnostics (deterministic, but deliberately not
  // rendered into reports): what the analysis *cost*, not what it found.
  int passes = 0;  ///< Record-stream passes consumed.
  std::uint64_t peak_open_spans = 0;  ///< High-water mark of concurrently
                                      ///< tracked open spans.
};

/// Streaming analysis over a restartable record source; holds open spans
/// plus fixed-size aggregates, never the capture. Identical output to
/// analyze_trace() on the same records.
TraceAnalysis analyze_stream(RecordSource& source);

/// Pure analysis of an in-memory capture (any order-preserving capture
/// of one recorder's output; ids must be unique). A thin wrapper that
/// streams the vector through analyze_stream().
TraceAnalysis analyze_trace(const std::vector<Event>& events);

/// The fault/retry audit alone, in a single streaming pass — for
/// consumers that only need the degraded-mode story.
FaultAudit audit_faults(RecordSource& source);

}  // namespace numaio::obs
