#include "obs/stream.h"

#include <algorithm>
#include <deque>
#include <fstream>
#include <stdexcept>

namespace numaio::obs {

namespace {

// ---------------------------------------------------------------------
// JSONL parse-back: the exact object layout JsonlSink writes, one record
// per line, keys accepted in any order so hand-edited fixtures also load.

class ObjectCursor {
 public:
  ObjectCursor(std::string_view line, int line_no)
      : line_(line), line_no_(line_no) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("trace line " + std::to_string(line_no_) +
                                ": " + what);
  }

  void skip_ws() {
    while (pos_ < line_.size() &&
           (line_[pos_] == ' ' || line_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < line_.size() && line_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!try_consume(c)) fail(std::string("expected '") + c + "'");
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < line_.size() && line_[pos_] != '"') {
      char c = line_[pos_++];
      if (c == '\\') {
        if (pos_ >= line_.size()) fail("dangling escape");
        const char esc = line_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'u': {
            if (pos_ + 4 > line_.size()) fail("short \\u escape");
            unsigned value = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = line_[pos_++];
              value <<= 4;
              if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                value |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                value |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            c = static_cast<char>(value);  // sinks only escape < 0x20
            break;
          }
          default:
            fail("unknown escape");
        }
      }
      out += c;
    }
    if (pos_ >= line_.size()) fail("unterminated string");
    ++pos_;
    return out;
  }

  double parse_number() {
    skip_ws();
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(std::string(line_.substr(pos_)), &consumed);
    } catch (const std::exception&) {
      fail("expected a number");
    }
    pos_ += consumed;
    return value;
  }

 private:
  std::string_view line_;
  std::size_t pos_ = 0;
  int line_no_;
};

}  // namespace

Event parse_trace_line(std::string_view line, int line_no) {
  ObjectCursor cur(line, line_no);
  Event e;
  e.wall_us = -1.0;  // deterministic traces omit the field
  cur.expect('{');
  bool first = true;
  while (!cur.try_consume('}')) {
    if (!first) cur.expect(',');
    first = false;
    const std::string key = cur.parse_string();
    cur.expect(':');
    if (key == "id") {
      e.id = static_cast<EventId>(cur.parse_number());
    } else if (key == "span") {
      e.span = static_cast<SpanId>(cur.parse_number());
    } else if (key == "parent") {
      e.parent = static_cast<EventId>(cur.parse_number());
    } else if (key == "kind") {
      const std::string v = cur.parse_string();
      if (v.size() != 1) cur.fail("kind must be one character");
      e.kind = v[0];
    } else if (key == "name") {
      e.name = cur.parse_string();
    } else if (key == "node_a") {
      e.node_a = static_cast<int>(cur.parse_number());
    } else if (key == "node_b") {
      e.node_b = static_cast<int>(cur.parse_number());
    } else if (key == "dir") {
      const std::string v = cur.parse_string();
      if (v.size() != 1) cur.fail("dir must be one character");
      e.dir = v[0];
    } else if (key == "bytes") {
      e.bytes = static_cast<long long>(cur.parse_number());
    } else if (key == "t") {
      e.t_sim = cur.parse_number();
    } else if (key == "outcome") {
      e.outcome = cur.parse_string();
    } else if (key == "detail") {
      e.detail = cur.parse_string();
    } else if (key == "wall_us") {
      e.wall_us = cur.parse_number();
    } else {
      cur.fail("unknown field '" + key + "'");
    }
  }
  if (e.id == 0) cur.fail("record without an id");
  return e;
}

void JsonlFileSource::stream(TraceVisitor& visitor) {
  std::ifstream in(path_);
  if (!in) {
    throw std::runtime_error("cannot open trace file '" + path_ + "'");
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    visitor.record(parse_trace_line(line, line_no));
  }
}

void JsonlTextSource::stream(TraceVisitor& visitor) {
  std::size_t start = 0;
  int line_no = 0;
  while (start < text_.size()) {
    std::size_t end = text_.find('\n', start);
    if (end == std::string::npos) end = text_.size();
    ++line_no;
    const std::string_view line(text_.data() + start, end - start);
    if (!line.empty()) visitor.record(parse_trace_line(line, line_no));
    start = end + 1;
  }
}

// ---------------------------------------------------------------------
// Synthetic workload generator.

void SyntheticTraceSource::stream(TraceVisitor& visitor) {
  if (config_.depth > 1) {
    stream_deep(visitor);
    return;
  }
  const std::uint64_t total = std::max<std::uint64_t>(config_.records, 8);
  const std::size_t window =
      static_cast<std::size_t>(std::max(config_.concurrent_streams, 1));
  const int nodes = std::max(config_.nodes, 2);

  // Inline xorshift64: the obs layer depends only on the standard
  // library, and a fixed recurrence keeps every pass bit-identical.
  std::uint64_t state =
      config_.seed != 0 ? config_.seed : 0x9e3779b97f4a7c15ull;
  const auto rng = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  EventId next_id = 1;
  double t = 0.0;
  std::uint64_t emitted = 0;
  const auto emit = [&](Event&& e) {
    e.wall_us = -1.0;  // deterministic shape, like --trace-deterministic
    ++emitted;
    visitor.record(e);
  };

  struct OpenStream {
    EventId id = 0;
  };
  std::deque<OpenStream> open;
  EventId last_fault = 0;

  Event root;
  root.id = next_id++;
  root.span = root.id;
  root.kind = 'B';
  root.name = "synth.run";
  root.t_sim = t;
  const EventId root_id = root.id;
  emit(std::move(root));

  const auto begin_stream = [&]() {
    Event b;
    b.id = next_id++;
    b.span = b.id;
    b.parent = root_id;
    b.kind = 'B';
    b.name = "synth.stream";
    b.node_a = static_cast<int>(rng() % static_cast<std::uint64_t>(nodes));
    b.node_b = static_cast<int>(rng() % static_cast<std::uint64_t>(nodes));
    b.dir = (rng() & 1) != 0 ? 'w' : 'r';
    b.t_sim = t;
    b.detail = "task " + std::to_string(b.id % 7);
    open.push_back({b.id});
    emit(std::move(b));
  };

  const auto close_oldest = [&]() {
    const OpenStream s = open.front();
    open.pop_front();
    Event e;
    e.id = next_id++;
    e.span = s.id;
    e.kind = 'E';
    e.t_sim = t;
    e.bytes = static_cast<long long>(1 + rng() % 64) * (1 << 20);
    const bool aborted = last_fault != 0 && rng() % 16 == 0;
    e.outcome = aborted ? "aborted" : "ok";
    emit(std::move(e));
  };

  while (true) {
    // Budget = records still available beyond the one E per open span
    // plus the root's E that the drain below must emit.
    const std::uint64_t committed = emitted + open.size() + 1;
    if (committed >= total) break;
    const std::uint64_t budget = total - committed;
    t += 1.0 + static_cast<double>(rng() % 997);
    const std::uint64_t roll = rng() % 10;
    if (open.size() < window && budget >= 2 && (open.empty() || roll < 3)) {
      begin_stream();
    } else if (roll < 5 && !open.empty()) {
      close_oldest();
    } else if (roll == 5) {
      Event f;
      f.id = next_id++;
      f.span = root_id;
      f.kind = 'I';
      f.name = "fault.transition";
      f.outcome = "degraded";
      f.detail = "link " + std::to_string(rng() % 4) + "-" +
                 std::to_string(4 + rng() % 4);
      f.t_sim = t;
      last_fault = f.id;
      emit(std::move(f));
    } else {
      Event i;
      i.id = next_id++;
      i.span = open.empty()
                   ? root_id
                   : open[static_cast<std::size_t>(rng() % open.size())].id;
      i.kind = 'I';
      i.t_sim = t;
      if (last_fault != 0 && roll >= 8) {
        i.name = "synth.retry";
        i.outcome = "retry";
        i.parent = last_fault;
      } else {
        i.name = "synth.attempt";
        i.outcome = "launched";
      }
      emit(std::move(i));
    }
  }

  while (!open.empty()) {
    t += 1.0 + static_cast<double>(rng() % 997);
    close_oldest();
  }
  t += 1.0 + static_cast<double>(rng() % 997);
  Event end;
  end.id = next_id++;
  end.span = root_id;
  end.kind = 'E';
  end.outcome = "ok";
  end.t_sim = t;
  emit(std::move(end));
}

// Deep-chain shape (config_.depth > 1): under one root, consecutive
// blocks of `depth` strictly nested spans — synth.d1;synth.d2;...;
// synth.leafK, with K cycling over `fanout` — each block fully closed
// (LIFO) before the next opens, instants padding the tail so the record
// count lands exactly on config_.records. The folded-stack stress
// fixture: 10^6 records fold into `fanout` deep stacks plus their
// prefixes while never holding more than depth + 1 open spans.
void SyntheticTraceSource::stream_deep(TraceVisitor& visitor) {
  const std::uint64_t total = std::max<std::uint64_t>(config_.records, 8);
  const std::uint64_t depth =
      static_cast<std::uint64_t>(std::max(config_.depth, 2));
  const std::uint64_t fanout =
      static_cast<std::uint64_t>(std::max(config_.fanout, 1));
  const int nodes = std::max(config_.nodes, 2);

  std::uint64_t state =
      config_.seed != 0 ? config_.seed : 0x9e3779b97f4a7c15ull;
  const auto rng = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  EventId next_id = 1;
  double t = 0.0;
  std::uint64_t emitted = 0;
  const auto emit = [&](Event&& e) {
    e.wall_us = -1.0;
    ++emitted;
    visitor.record(e);
  };
  const auto advance = [&] {
    t += 1.0 + static_cast<double>(rng() % 97);
  };

  Event root;
  root.id = next_id++;
  root.span = root.id;
  root.kind = 'B';
  root.name = "synth.run";
  root.t_sim = t;
  const EventId root_id = root.id;
  emit(std::move(root));

  // One block = depth begins + one instant + depth ends.
  const std::uint64_t block_records = 2 * depth + 1;
  std::uint64_t block = 0;
  std::vector<EventId> chain;
  chain.reserve(depth);
  while (emitted + block_records + 1 <= total) {
    chain.clear();
    EventId parent = root_id;
    for (std::uint64_t level = 0; level < depth; ++level) {
      advance();
      Event b;
      b.id = next_id++;
      b.span = b.id;
      b.parent = parent;
      b.kind = 'B';
      b.name = level + 1 == depth
                   ? "synth.leaf" + std::to_string(block % fanout)
                   : "synth.d" + std::to_string(level + 1);
      if (level + 1 == depth) {
        b.node_a =
            static_cast<int>(rng() % static_cast<std::uint64_t>(nodes));
        b.node_b =
            static_cast<int>(rng() % static_cast<std::uint64_t>(nodes));
        b.dir = (rng() & 1) != 0 ? 'w' : 'r';
      }
      b.t_sim = t;
      parent = b.id;
      chain.push_back(b.id);
      emit(std::move(b));
    }
    advance();
    Event i;
    i.id = next_id++;
    i.span = chain.back();
    i.kind = 'I';
    i.name = "synth.attempt";
    i.outcome = "launched";
    i.t_sim = t;
    emit(std::move(i));
    while (!chain.empty()) {
      advance();
      Event e;
      e.id = next_id++;
      e.span = chain.back();
      e.kind = 'E';
      e.outcome = "ok";
      e.t_sim = t;
      if (chain.size() == depth) {
        e.bytes = static_cast<long long>(1 + rng() % 64) * (1 << 20);
      }
      chain.pop_back();
      emit(std::move(e));
    }
    ++block;
  }

  // Pad to the exact record count (minus the root's end) with instants.
  while (emitted + 1 < total) {
    advance();
    Event i;
    i.id = next_id++;
    i.span = root_id;
    i.kind = 'I';
    i.name = "synth.attempt";
    i.outcome = "launched";
    i.t_sim = t;
    emit(std::move(i));
  }

  advance();
  Event end;
  end.id = next_id++;
  end.span = root_id;
  end.kind = 'E';
  end.outcome = "ok";
  end.t_sim = t;
  emit(std::move(end));
}

}  // namespace numaio::obs
