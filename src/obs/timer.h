// Scoped wall-clock timer feeding the metrics registry.
//
// Intended for hot paths (e.g. one FlowSolver::solve call): construction
// and destruction each cost one steady_clock read when a registry is
// attached, and nothing at all when `metrics` is nullptr — the null-sink
// guarantee extends to timers.
#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace numaio::obs {

class ScopedTimer {
 public:
  /// Observes the scope's elapsed time on destruction: microseconds into
  /// `histogram_us` (if not kNone) and nanoseconds onto the counter
  /// `total_ns` (if not kNone). A nullptr registry disables the timer
  /// entirely, including the clock reads.
  ScopedTimer(MetricsRegistry* metrics, MetricsRegistry::Id histogram_us,
              MetricsRegistry::Id total_ns = MetricsRegistry::kNone)
      : metrics_(metrics), histogram_us_(histogram_us), total_ns_(total_ns) {
    if (metrics_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (metrics_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    if (histogram_us_ != MetricsRegistry::kNone) {
      metrics_->observe(histogram_us_, ns / 1000.0);
    }
    if (total_ns_ != MetricsRegistry::kNone) metrics_->add(total_ns_, ns);
  }

 private:
  MetricsRegistry* metrics_;
  MetricsRegistry::Id histogram_us_;
  MetricsRegistry::Id total_ns_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace numaio::obs
