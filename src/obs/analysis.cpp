#include "obs/analysis.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string_view>
#include <utility>

namespace numaio::obs {

namespace {

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

// ---------------------------------------------------------------------
// Critical-path skeleton: what a span hands to its parent when it closes.

/// Dominance key of a closed span. "a dominates b": later end time, then
/// longer duration, then the earlier record. Untimed spans (t1 = -1)
/// lose to any timed one. A strict total order, so the fold's winner is
/// independent of the order children close in.
struct PathKey {
  double t1 = -1.0;
  double dur = 0.0;
  EventId id = 0;
};

bool dominates(const PathKey& a, const PathKey& b) {
  if (a.t1 != b.t1) return a.t1 > b.t1;
  if (a.dur != b.dur) return a.dur > b.dur;
  return a.id < b.id;
}

/// The dominant descent below (and including) one closed span: its path
/// steps root-first, plus the leaf's best cause-citing instant. Chains
/// propagate upward when spans close; only the dominant child's chain
/// survives at each level, so live memory is one chain per *open* span.
struct Chain {
  std::vector<CriticalPathStep> steps;
  bool has_pivot = false;
  Event pivot;            ///< Leaf's latest instant citing a cause.
  EventId leaf_span = 0;  ///< Span the pivot was recorded in.
};

/// Live state per open span during pass 1 — everything the fold needs,
/// never the span's records.
struct OpenSpan {
  std::string name;
  std::string detail;
  EventId parent = 0;
  double t0 = -1.0;
  int node_a = -1;
  int node_b = -1;
  char dir = '-';
  long long begin_bytes = -1;
  bool has_pivot = false;
  Event pivot;
  bool has_child = false;
  PathKey child_key;
  Chain child_chain;
};

/// Per (name, dir) transfer-group reference established in pass 1: the
/// best observed rate and the fastest duration define the uncontended
/// ideal that pass 2 attributes stall against.
struct GroupRef {
  double ref_rate = 0.0;  ///< Bytes per simulated ns, best in group.
  double min_dur = 0.0;
};

// ---------------------------------------------------------------------
// Fault/retry audit: a single-pass fold shared by analyze_stream() and
// the standalone audit_faults().

class FaultAccumulator final : public TraceVisitor {
 public:
  void record(const Event& e) override {
    if (e.name == "fault.transition") {
      ++audit_.transitions;
      transitions_[e.id] = {e.detail + ' ' + e.outcome + " (id " +
                               std::to_string(e.id) + ')',
                           0};
    }
    if (e.kind == 'I' && ends_with(e.name, ".retry")) ++audit_.retries;
    if (e.kind == 'I' && ends_with(e.name, ".abort")) ++audit_.aborts;
    if (e.kind == 'E' && e.outcome == "aborted") ++audit_.aborts;
    if (e.kind == 'I' && e.parent != 0) {
      const auto it = transitions_.find(e.parent);
      if (it != transitions_.end()) {
        ++audit_.caused;
        ++it->second.second;
      }
    }
  }

  FaultAudit finish() {
    for (const auto& [id, labelled] : transitions_) {
      audit_.by_fault.push_back(labelled);
    }
    std::sort(audit_.by_fault.begin(), audit_.by_fault.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    return std::move(audit_);
  }

 private:
  FaultAudit audit_;
  /// id -> (label, consequence count); one entry per fault transition.
  std::map<EventId, std::pair<std::string, int>> transitions_;
};

// ---------------------------------------------------------------------
// Pass 1: span-kind aggregates, fault audit, contention group references
// and the critical-path skeleton, holding only open spans.

class SkeletonPass final : public TraceVisitor {
 public:
  void record(const Event& e) override {
    ++num_records_;
    if (e.t_sim >= 0.0) {
      if (first_ns_ < 0.0 || e.t_sim < first_ns_) first_ns_ = e.t_sim;
      if (e.t_sim > last_ns_) last_ns_ = e.t_sim;
    }
    faults_.record(e);
    if (e.kind == 'B') {
      OpenSpan s;
      s.name = e.name;
      s.detail = e.detail;
      s.parent = e.parent;
      s.t0 = e.t_sim;
      s.node_a = e.node_a;
      s.node_b = e.node_b;
      s.dir = e.dir;
      s.begin_bytes = e.bytes;
      open_.emplace(e.id, std::move(s));
      peak_open_ = std::max(peak_open_,
                            static_cast<std::uint64_t>(open_.size()));
    } else if (e.kind == 'E') {
      const auto it = open_.find(e.span);
      if (it == open_.end()) return;  // end without a begin: skip
      close(it->first, it->second, &e);
      open_.erase(it);
    } else if (e.span != 0 && e.parent != 0) {
      // Candidate cause pivot for its enclosing span: latest simulated
      // time wins, ties to the earliest record.
      const auto it = open_.find(e.span);
      if (it == open_.end()) return;
      OpenSpan& s = it->second;
      if (!s.has_pivot || e.t_sim > s.pivot.t_sim ||
          (e.t_sim == s.pivot.t_sim && e.id < s.pivot.id)) {
        s.has_pivot = true;
        s.pivot = e;
      }
    }
  }

  /// Folds still-open spans (unclosed capture tails) and moves the
  /// aggregates into `out`. Children close before parents: a child's id
  /// is always greater than its parent's, so walking the map backwards
  /// preserves the bottom-up chain hand-off.
  void finish(TraceAnalysis& out) {
    while (!open_.empty()) {
      const auto it = std::prev(open_.end());
      close(it->first, it->second, nullptr);
      open_.erase(it);
    }
    out.num_records = num_records_;
    out.first_ns = first_ns_;
    out.last_ns = last_ns_;
    out.peak_open_spans = peak_open_;
    for (auto& [name, k] : kinds_) {
      for (const auto& [outcome, n] : kind_outcomes_[name]) {
        k.outcomes.emplace_back(outcome, n);
      }
      out.span_kinds.push_back(std::move(k));
    }
    out.faults = faults_.finish();
    if (has_root_) {
      out.critical_path_ns = root_key_.dur;
      out.critical_path = std::move(root_chain_.steps);
    }
  }

  const std::map<std::string, GroupRef>& groups() const { return groups_; }
  bool has_pivot() const { return has_root_ && root_chain_.has_pivot; }
  const Event& pivot() const { return root_chain_.pivot; }
  EventId leaf_span() const { return root_chain_.leaf_span; }

 private:
  void close(EventId id, OpenSpan& s, const Event* end) {
    const double t1 = end != nullptr ? end->t_sim : -1.0;
    const double dur = s.t0 >= 0.0 && t1 >= s.t0 ? t1 - s.t0 : 0.0;

    SpanKindStats& k = kinds_[s.name];
    k.name = s.name;
    ++k.count;
    k.total_ns += dur;
    k.max_ns = std::max(k.max_ns, dur);
    if (end == nullptr) {
      ++k.unclosed;
      ++kind_outcomes_[s.name]["(open)"];
    } else {
      if (end->bytes > 0) k.bytes += end->bytes;
      ++kind_outcomes_[s.name][end->outcome];
    }

    // Transfer spans feed their group's uncontended reference.
    if (s.node_a >= 0 && s.node_b >= 0 && dur > 0.0) {
      long long bytes = -1;
      if (end != nullptr && end->bytes > 0) bytes = end->bytes;
      else if (s.begin_bytes > 0) bytes = s.begin_bytes;
      GroupRef& g = groups_[s.name + '|' + s.dir];
      if (bytes > 0) {
        g.ref_rate =
            std::max(g.ref_rate, static_cast<double>(bytes) / dur);
      }
      if (g.min_dur == 0.0 || dur < g.min_dur) g.min_dur = dur;
    }

    // This span's step on top of its dominant child's chain.
    Chain chain;
    CriticalPathStep step;
    step.id = id;
    step.name = s.name;
    step.outcome = end != nullptr ? end->outcome : "(open)";
    step.detail = s.detail;
    step.start_ns = s.t0;
    step.end_ns = t1;
    step.self_ns =
        std::max(0.0, dur - (s.has_child ? s.child_key.dur : 0.0));
    chain.steps.push_back(std::move(step));
    if (s.has_child) {
      chain.steps.insert(
          chain.steps.end(),
          std::make_move_iterator(s.child_chain.steps.begin()),
          std::make_move_iterator(s.child_chain.steps.end()));
      chain.has_pivot = s.child_chain.has_pivot;
      chain.pivot = std::move(s.child_chain.pivot);
      chain.leaf_span = s.child_chain.leaf_span;
    } else {
      chain.has_pivot = s.has_pivot;
      chain.pivot = std::move(s.pivot);
      chain.leaf_span = id;
    }

    // Hand the chain to the parent (still open: children close first),
    // or enter it in the root contest.
    const PathKey key{t1, dur, id};
    const auto parent_it =
        s.parent != 0 ? open_.find(s.parent) : open_.end();
    if (parent_it != open_.end()) {
      OpenSpan& p = parent_it->second;
      if (!p.has_child || dominates(key, p.child_key)) {
        p.has_child = true;
        p.child_key = key;
        p.child_chain = std::move(chain);
      }
    } else if (!has_root_ || dominates(key, root_key_)) {
      has_root_ = true;
      root_key_ = key;
      root_chain_ = std::move(chain);
    }
  }

  int num_records_ = 0;
  double first_ns_ = -1.0;
  double last_ns_ = -1.0;
  std::uint64_t peak_open_ = 0;
  std::map<EventId, OpenSpan> open_;
  std::map<std::string, SpanKindStats> kinds_;
  std::map<std::string, std::map<std::string, int>> kind_outcomes_;
  std::map<std::string, GroupRef> groups_;
  FaultAccumulator faults_;
  bool has_root_ = false;
  PathKey root_key_;
  Chain root_chain_;
};

// ---------------------------------------------------------------------
// Pass 2: contention attribution against the pass-1 group references,
// plus the leaf pivot's loose ends — its first cause link and, when the
// pivot is a scheduler migration, the earlier migrations of the same
// task so the whole chain lands on the path.

class ResolvePass final : public TraceVisitor {
 public:
  ResolvePass(const std::map<std::string, GroupRef>& groups, EventId wanted,
              EventId stitch_span, std::string stitch_detail,
              EventId stitch_before)
      : groups_(groups),
        wanted_(wanted),
        stitch_span_(stitch_span),
        stitch_detail_(std::move(stitch_detail)),
        stitch_before_(stitch_before) {}

  void record(const Event& e) override {
    if (wanted_ != 0 && e.id == wanted_) {
      found_ = e;
      has_found_ = true;
    }
    if (stitch_span_ != 0 && e.kind == 'I' && e.span == stitch_span_ &&
        e.id < stitch_before_ && e.name == "sched.migrate" &&
        e.detail == stitch_detail_) {
      migrates_.push_back(e);
    }
    if (e.kind == 'B') {
      if (e.node_a >= 0 && e.node_b >= 0) {
        open_.emplace(e.id, Xfer{e.name, e.dir, e.node_a, e.node_b, e.t_sim,
                                 e.bytes});
      }
      return;
    }
    if (e.kind != 'E') return;
    const auto it = open_.find(e.span);
    if (it == open_.end()) return;
    const Xfer x = it->second;
    open_.erase(it);
    const double dur = x.t0 >= 0.0 && e.t_sim >= x.t0 ? e.t_sim - x.t0 : 0.0;
    if (dur <= 0.0) return;
    long long bytes = -1;
    if (e.bytes > 0) bytes = e.bytes;
    else if (x.begin_bytes > 0) bytes = x.begin_bytes;
    const auto group = groups_.find(x.name + '|' + x.dir);
    if (group == groups_.end()) return;  // unmatched pass-1 state
    const GroupRef& g = group->second;
    const double ideal = bytes > 0 && g.ref_rate > 0.0
                             ? static_cast<double>(bytes) / g.ref_rate
                             : g.min_dur;
    ContentionCell& cell = cells_[{x.node_a, x.node_b}];
    cell.node_a = x.node_a;
    cell.node_b = x.node_b;
    ++cell.spans;
    if (bytes > 0) cell.bytes += bytes;
    cell.busy_ns += dur;
    cell.stall_ns += std::max(0.0, dur - ideal);
  }

  void finish(TraceAnalysis& out) {
    for (const auto& [pair, cell] : cells_) out.contention.push_back(cell);
    std::sort(out.contention.begin(), out.contention.end(),
              [](const ContentionCell& a, const ContentionCell& b) {
                if (a.stall_ns != b.stall_ns) return a.stall_ns > b.stall_ns;
                if (a.node_a != b.node_a) return a.node_a < b.node_a;
                return a.node_b < b.node_b;
              });
  }

  bool has_found() const { return has_found_; }
  const Event& found() const { return found_; }
  const std::vector<Event>& migrates() const { return migrates_; }

 private:
  struct Xfer {
    std::string name;
    char dir = '-';
    int node_a = -1;
    int node_b = -1;
    double t0 = -1.0;
    long long begin_bytes = -1;
  };

  const std::map<std::string, GroupRef>& groups_;
  EventId wanted_ = 0;
  EventId stitch_span_ = 0;
  std::string stitch_detail_;
  EventId stitch_before_ = 0;
  std::map<EventId, Xfer> open_;
  std::map<std::pair<int, int>, ContentionCell> cells_;
  bool has_found_ = false;
  Event found_;
  std::vector<Event> migrates_;
};

/// Passes 3..k: fetch one record by id (cause-chain links; ids strictly
/// decrease along real cause edges, so the pass count is the chain
/// length, not the record count).
class FindPass final : public TraceVisitor {
 public:
  explicit FindPass(EventId wanted) : wanted_(wanted) {}
  void record(const Event& e) override {
    if (e.id == wanted_) {
      found_ = e;
      has_found_ = true;
    }
  }
  bool has_found() const { return has_found_; }
  const Event& found() const { return found_; }

 private:
  EventId wanted_ = 0;
  bool has_found_ = false;
  Event found_;
};

CriticalPathStep instant_step(const Event& e) {
  CriticalPathStep step;
  step.id = e.id;
  step.name = e.name;
  step.outcome = e.outcome;
  step.detail = e.detail;
  step.start_ns = e.t_sim;
  return step;
}

}  // namespace

std::vector<Event> parse_trace_jsonl(const std::string& text) {
  MemorySink sink;
  JsonlTextSource source(text);
  source.stream(sink);
  return std::move(sink.events);
}

TraceAnalysis analyze_stream(RecordSource& source) {
  TraceAnalysis out;
  SkeletonPass skeleton;
  source.stream(skeleton);
  out.passes = 1;
  skeleton.finish(out);

  // What pass 2 owes us: contention attribution when transfer groups
  // exist, the pivot's first cause link, and — when the leaf pivot is a
  // scheduler migration — the earlier sched.migrate instants of the same
  // task, stitched into the path in record order.
  const bool has_pivot = skeleton.has_pivot();
  const Event pivot = has_pivot ? skeleton.pivot() : Event{};
  EventId wanted = 0;
  if (has_pivot && pivot.parent != 0 && pivot.parent < pivot.id) {
    wanted = pivot.parent;
  }
  const bool stitch = has_pivot && pivot.name == "sched.migrate";
  if (!skeleton.groups().empty() || wanted != 0 || stitch) {
    ResolvePass resolve(skeleton.groups(), wanted,
                        stitch ? skeleton.leaf_span() : 0, pivot.detail,
                        pivot.id);
    source.stream(resolve);
    ++out.passes;
    resolve.finish(out);
    if (has_pivot) {
      for (const Event& m : resolve.migrates()) {
        out.critical_path.push_back(instant_step(m));
      }
      out.critical_path.push_back(instant_step(pivot));
      // Walk the remaining cause chain, one pass per link; ids strictly
      // decrease along real cause edges, which also guards against
      // cycles in corrupt input.
      const Event* link =
          wanted != 0 && resolve.has_found() ? &resolve.found() : nullptr;
      Event held;
      while (link != nullptr) {
        out.critical_path.push_back(instant_step(*link));
        const EventId next =
            link->parent != 0 && link->parent < link->id ? link->parent : 0;
        if (next == 0) break;
        FindPass find(next);
        source.stream(find);
        ++out.passes;
        if (!find.has_found()) break;
        held = find.found();
        link = &held;
      }
    }
  } else if (has_pivot) {
    out.critical_path.push_back(instant_step(pivot));
  }
  return out;
}

TraceAnalysis analyze_trace(const std::vector<Event>& events) {
  VectorSource source(events);
  return analyze_stream(source);
}

FaultAudit audit_faults(RecordSource& source) {
  FaultAccumulator acc;
  source.stream(acc);
  return acc.finish();
}

}  // namespace numaio::obs
