#include "obs/analysis.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string_view>

namespace numaio::obs {

namespace {

// ---------------------------------------------------------------------
// JSONL parse-back: the exact object layout JsonlSink writes, one record
// per line, keys accepted in any order so hand-edited fixtures also load.

class ObjectCursor {
 public:
  ObjectCursor(std::string_view line, int line_no)
      : line_(line), line_no_(line_no) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("trace line " + std::to_string(line_no_) +
                                ": " + what);
  }

  void skip_ws() {
    while (pos_ < line_.size() &&
           (line_[pos_] == ' ' || line_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < line_.size() && line_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!try_consume(c)) fail(std::string("expected '") + c + "'");
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < line_.size() && line_[pos_] != '"') {
      char c = line_[pos_++];
      if (c == '\\') {
        if (pos_ >= line_.size()) fail("dangling escape");
        const char esc = line_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'u': {
            if (pos_ + 4 > line_.size()) fail("short \\u escape");
            unsigned value = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = line_[pos_++];
              value <<= 4;
              if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                value |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                value |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            c = static_cast<char>(value);  // sinks only escape < 0x20
            break;
          }
          default:
            fail("unknown escape");
        }
      }
      out += c;
    }
    if (pos_ >= line_.size()) fail("unterminated string");
    ++pos_;
    return out;
  }

  double parse_number() {
    skip_ws();
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(std::string(line_.substr(pos_)), &consumed);
    } catch (const std::exception&) {
      fail("expected a number");
    }
    pos_ += consumed;
    return value;
  }

 private:
  std::string_view line_;
  std::size_t pos_ = 0;
  int line_no_;
};

Event parse_record(std::string_view line, int line_no) {
  ObjectCursor cur(line, line_no);
  Event e;
  e.wall_us = -1.0;  // deterministic traces omit the field
  cur.expect('{');
  bool first = true;
  while (!cur.try_consume('}')) {
    if (!first) cur.expect(',');
    first = false;
    const std::string key = cur.parse_string();
    cur.expect(':');
    if (key == "id") {
      e.id = static_cast<EventId>(cur.parse_number());
    } else if (key == "span") {
      e.span = static_cast<SpanId>(cur.parse_number());
    } else if (key == "parent") {
      e.parent = static_cast<EventId>(cur.parse_number());
    } else if (key == "kind") {
      const std::string v = cur.parse_string();
      if (v.size() != 1) cur.fail("kind must be one character");
      e.kind = v[0];
    } else if (key == "name") {
      e.name = cur.parse_string();
    } else if (key == "node_a") {
      e.node_a = static_cast<int>(cur.parse_number());
    } else if (key == "node_b") {
      e.node_b = static_cast<int>(cur.parse_number());
    } else if (key == "dir") {
      const std::string v = cur.parse_string();
      if (v.size() != 1) cur.fail("dir must be one character");
      e.dir = v[0];
    } else if (key == "bytes") {
      e.bytes = static_cast<long long>(cur.parse_number());
    } else if (key == "t") {
      e.t_sim = cur.parse_number();
    } else if (key == "outcome") {
      e.outcome = cur.parse_string();
    } else if (key == "detail") {
      e.detail = cur.parse_string();
    } else if (key == "wall_us") {
      e.wall_us = cur.parse_number();
    } else {
      cur.fail("unknown field '" + key + "'");
    }
  }
  if (e.id == 0) cur.fail("record without an id");
  return e;
}

// ---------------------------------------------------------------------
// Analysis proper.

/// One reassembled span: its begin/end records and tree links.
struct SpanInfo {
  const Event* begin = nullptr;
  const Event* end = nullptr;
  std::vector<EventId> child_spans;     ///< In id (= begin) order.
  std::vector<const Event*> instants;   ///< Instants inside, id order.
  double t0 = -1.0;
  double t1 = -1.0;
  double dur = 0.0;
};

/// "a dominates b" for root/descent choice: later end time, then longer
/// duration, then the earlier record. Untimed spans (t1 = -1) lose to any
/// timed one.
bool dominates(const SpanInfo& a, EventId a_id, const SpanInfo& b,
               EventId b_id) {
  if (a.t1 != b.t1) return a.t1 > b.t1;
  if (a.dur != b.dur) return a.dur > b.dur;
  return a_id < b_id;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

}  // namespace

std::vector<Event> parse_trace_jsonl(const std::string& text) {
  std::vector<Event> events;
  std::size_t start = 0;
  int line_no = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    ++line_no;
    const std::string_view line(text.data() + start, end - start);
    if (!line.empty()) events.push_back(parse_record(line, line_no));
    start = end + 1;
  }
  return events;
}

TraceAnalysis analyze_trace(const std::vector<Event>& events) {
  TraceAnalysis out;
  out.num_records = static_cast<int>(events.size());

  // Reassemble spans and the id index. std::map keeps ids ordered, which
  // pins every later tie-break to record order.
  std::map<EventId, const Event*> by_id;
  std::map<EventId, SpanInfo> spans;
  for (const Event& e : events) {
    by_id.emplace(e.id, &e);
    if (e.kind == 'B') {
      spans[e.id].begin = &e;
    } else if (e.kind == 'E') {
      spans[e.span].end = &e;
    } else if (e.span != 0) {
      spans[e.span].instants.push_back(&e);
    }
    if (e.t_sim >= 0.0) {
      if (out.first_ns < 0.0 || e.t_sim < out.first_ns) out.first_ns = e.t_sim;
      if (e.t_sim > out.last_ns) out.last_ns = e.t_sim;
    }
  }
  for (auto& [id, info] : spans) {
    if (info.begin == nullptr) continue;  // partial capture: end only
    if (info.begin->parent != 0) {
      const auto parent = spans.find(info.begin->parent);
      if (parent != spans.end()) parent->second.child_spans.push_back(id);
    }
    info.t0 = info.begin->t_sim;
    if (info.end != nullptr) info.t1 = info.end->t_sim;
    if (info.t0 >= 0.0 && info.t1 >= info.t0) info.dur = info.t1 - info.t0;
  }

  // 1. Per-span-kind aggregates.
  std::map<std::string, SpanKindStats> kinds;
  std::map<std::string, std::map<std::string, int>> kind_outcomes;
  for (const auto& [id, info] : spans) {
    if (info.begin == nullptr) continue;
    SpanKindStats& k = kinds[info.begin->name];
    k.name = info.begin->name;
    ++k.count;
    k.total_ns += info.dur;
    k.max_ns = std::max(k.max_ns, info.dur);
    if (info.end == nullptr) {
      ++k.unclosed;
      ++kind_outcomes[k.name]["(open)"];
    } else {
      if (info.end->bytes > 0) k.bytes += info.end->bytes;
      ++kind_outcomes[k.name][info.end->outcome];
    }
  }
  for (auto& [name, k] : kinds) {
    for (const auto& [outcome, n] : kind_outcomes[name]) {
      k.outcomes.emplace_back(outcome, n);
    }
    out.span_kinds.push_back(std::move(k));
  }

  // 2. Critical path: dominant root span, descend through the dominant
  // child at each level, then extend through the leaf's latest cause edge
  // to the record (typically a fault.transition) that shaped it.
  EventId root = 0;
  for (const auto& [id, info] : spans) {
    if (info.begin == nullptr) continue;
    const bool is_root = info.begin->parent == 0 ||
                         spans.find(info.begin->parent) == spans.end();
    if (!is_root) continue;
    if (root == 0 || dominates(info, id, spans.at(root), root)) root = id;
  }
  if (root != 0) {
    out.critical_path_ns = spans.at(root).dur;
    EventId cur = root;
    while (cur != 0) {
      const SpanInfo& info = spans.at(cur);
      EventId next = 0;
      for (const EventId child : info.child_spans) {
        if (next == 0 ||
            dominates(spans.at(child), child, spans.at(next), next)) {
          next = child;
        }
      }
      CriticalPathStep step;
      step.id = cur;
      step.name = info.begin->name;
      step.outcome = info.end != nullptr ? info.end->outcome : "(open)";
      step.detail = info.begin->detail;
      step.start_ns = info.t0;
      step.end_ns = info.t1;
      step.self_ns =
          std::max(0.0, info.dur - (next != 0 ? spans.at(next).dur : 0.0));
      out.critical_path.push_back(std::move(step));
      if (next == 0) {
        // Leaf: follow the latest instant that cites a cause.
        const Event* pivot = nullptr;
        for (const Event* i : info.instants) {
          if (i->parent == 0) continue;
          if (pivot == nullptr || i->t_sim > pivot->t_sim ||
              (i->t_sim == pivot->t_sim && i->id < pivot->id)) {
            pivot = i;
          }
        }
        // Walk the cause chain; ids strictly decrease along real cause
        // edges (a cause is emitted before its consequence), which also
        // guards against cycles in corrupt input.
        EventId guard = pivot != nullptr ? pivot->id : 0;
        const Event* link = pivot;
        while (link != nullptr) {
          CriticalPathStep cause_step;
          cause_step.id = link->id;
          cause_step.name = link->name;
          cause_step.outcome = link->outcome;
          cause_step.detail = link->detail;
          cause_step.start_ns = link->t_sim;
          out.critical_path.push_back(std::move(cause_step));
          const auto it =
              link->parent != 0 && link->parent < guard
                  ? by_id.find(link->parent)
                  : by_id.end();
          guard = link->parent;
          link = it != by_id.end() ? it->second : nullptr;
        }
      }
      cur = next;
    }
  }

  // 3. Contention heatmap. A transfer span is any span carrying a node
  // pair and a positive duration. Within each (name, dir) group the
  // fastest observed transfer defines the uncontended ideal — by rate
  // when payload bytes are recorded, by duration otherwise — and every
  // span's time beyond its ideal is stall attributed to its node pair.
  struct Xfer {
    const SpanInfo* info;
    long long bytes;
  };
  std::map<std::string, std::vector<Xfer>> groups;
  for (const auto& [id, info] : spans) {
    if (info.begin == nullptr || info.dur <= 0.0) continue;
    if (info.begin->node_a < 0 || info.begin->node_b < 0) continue;
    long long bytes = -1;
    if (info.end != nullptr && info.end->bytes > 0) bytes = info.end->bytes;
    else if (info.begin->bytes > 0) bytes = info.begin->bytes;
    groups[info.begin->name + '|' + info.begin->dir].push_back(
        {&info, bytes});
  }
  std::map<std::pair<int, int>, ContentionCell> cells;
  for (const auto& [key, xfers] : groups) {
    double ref_rate = 0.0;  // bytes per simulated ns, best in group
    double min_dur = 0.0;
    for (const Xfer& x : xfers) {
      if (x.bytes > 0) {
        ref_rate =
            std::max(ref_rate, static_cast<double>(x.bytes) / x.info->dur);
      }
      if (min_dur == 0.0 || x.info->dur < min_dur) min_dur = x.info->dur;
    }
    for (const Xfer& x : xfers) {
      const double ideal = x.bytes > 0 && ref_rate > 0.0
                               ? static_cast<double>(x.bytes) / ref_rate
                               : min_dur;
      ContentionCell& cell =
          cells[{x.info->begin->node_a, x.info->begin->node_b}];
      cell.node_a = x.info->begin->node_a;
      cell.node_b = x.info->begin->node_b;
      ++cell.spans;
      if (x.bytes > 0) cell.bytes += x.bytes;
      cell.busy_ns += x.info->dur;
      cell.stall_ns += std::max(0.0, x.info->dur - ideal);
    }
  }
  for (const auto& [pair, cell] : cells) out.contention.push_back(cell);
  std::sort(out.contention.begin(), out.contention.end(),
            [](const ContentionCell& a, const ContentionCell& b) {
              if (a.stall_ns != b.stall_ns) return a.stall_ns > b.stall_ns;
              if (a.node_a != b.node_a) return a.node_a < b.node_a;
              return a.node_b < b.node_b;
            });

  // 4. Fault/retry audit.
  std::map<EventId, std::pair<std::string, int>> transitions;
  for (const Event& e : events) {
    if (e.name == "fault.transition") {
      ++out.faults.transitions;
      transitions[e.id] = {e.detail + ' ' + e.outcome + " (id " +
                               std::to_string(e.id) + ')',
                           0};
    }
    if (e.kind == 'I' && ends_with(e.name, ".retry")) ++out.faults.retries;
    if (e.kind == 'I' && ends_with(e.name, ".abort")) ++out.faults.aborts;
    if (e.kind == 'E' && e.outcome == "aborted") ++out.faults.aborts;
    if (e.kind == 'I' && e.parent != 0) {
      const auto it = transitions.find(e.parent);
      if (it != transitions.end()) {
        ++out.faults.caused;
        ++it->second.second;
      }
    }
  }
  for (const auto& [id, labelled] : transitions) {
    out.faults.by_fault.push_back(labelled);
  }
  std::sort(out.faults.by_fault.begin(), out.faults.by_fault.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return out;
}

}  // namespace numaio::obs
