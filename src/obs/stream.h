// The record-stream core the analysis/export stack is built on.
//
// A capture is a flat stream of Event records (obs/trace.h); everything
// that consumes one — analyze_stream(), the Chrome exporter, the run
// report — is written against two small interfaces instead of a
// materialized std::vector<Event>:
//
//   TraceVisitor   receives records one at a time (declared in trace.h
//                  next to TraceSink, its producer-side twin);
//   RecordSource   a *restartable* stream: every stream() call replays
//                  the full capture through a visitor, in record order.
//
// Restartability is the load-bearing property. The analyzers are
// multi-pass by design (span-skeleton fold, then contention attribution
// and cause-chain descent), and a source that can be replayed lets each
// pass hold only open spans plus fixed-size aggregates — memory stays
// O(active spans + nodes²) no matter how many records the capture holds,
// which is what lets `numaio_cli report --trace-in` chew through
// million-record replay traces (ROADMAP "Trace scale").
//
// Sources provided here:
//   VectorSource        an in-memory capture (MemorySink vector);
//   JsonlFileSource     a JSONL capture file, re-read line by line on
//                       every pass (FORMATS.md §4a, including the
//                       record-order guarantees streaming relies on);
//   JsonlTextSource     a JSONL document already in a string;
//   SyntheticTraceSource a deterministic generated workload of arbitrary
//                       record count with a bounded open-span window —
//                       the scale harness for benches, ctests and the
//                       CLI's `synth-trace` subcommand.
//
// Adapters: VisitorSink taps a live TraceRecorder straight into a
// visitor (no intermediate buffer); SinkVisitor points a source at a
// serializer (how `synth-trace` writes its JSONL file).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace numaio::obs {

/// Parses one JSONL trace line (the JsonlSink object layout, FORMATS.md
/// §4a; keys accepted in any order so hand-edited fixtures load too).
/// Accepts records with or without the trailing `wall_us` field (absent
/// parses as -1). Throws std::invalid_argument naming `line_no` on
/// malformed input.
Event parse_trace_line(std::string_view line, int line_no);

/// A restartable stream of trace records. Each stream() call replays the
/// whole capture through the visitor in record order; multi-pass
/// consumers call it again instead of buffering records. Implementations
/// must deliver identical records on every pass.
class RecordSource {
 public:
  virtual ~RecordSource() = default;
  virtual void stream(TraceVisitor& visitor) = 0;
};

/// Adapts an in-memory capture (e.g. a MemorySink's vector) to the
/// streaming interface. The vector must outlive the source.
class VectorSource final : public RecordSource {
 public:
  explicit VectorSource(const std::vector<Event>& events)
      : events_(events) {}
  void stream(TraceVisitor& visitor) override {
    for (const Event& e : events_) visitor.record(e);
  }

 private:
  const std::vector<Event>& events_;
};

/// Streams a JSONL capture file, reopening and re-reading it line by
/// line on every pass, so memory never depends on capture size. Throws
/// std::runtime_error when the file cannot be opened and
/// std::invalid_argument (with a line number) on malformed records.
class JsonlFileSource final : public RecordSource {
 public:
  explicit JsonlFileSource(std::string path) : path_(std::move(path)) {}
  void stream(TraceVisitor& visitor) override;

 private:
  std::string path_;
};

/// Streams records parsed from a JSONL document already in memory (tests
/// and captures small enough to slurp).
class JsonlTextSource final : public RecordSource {
 public:
  explicit JsonlTextSource(std::string text) : text_(std::move(text)) {}
  void stream(TraceVisitor& visitor) override;

 private:
  std::string text_;
};

/// Wraps a visitor as a TraceSink so a live TraceRecorder can feed a
/// streaming consumer directly — analysis during the run, no capture
/// buffer at all.
class VisitorSink final : public TraceSink {
 public:
  explicit VisitorSink(TraceVisitor& visitor) : visitor_(visitor) {}
  void write(const Event& event) override { visitor_.record(event); }

 private:
  TraceVisitor& visitor_;
};

/// Wraps a sink as a visitor so a RecordSource pass can drive a
/// serializer (e.g. SyntheticTraceSource -> JsonlSink).
class SinkVisitor final : public TraceVisitor {
 public:
  explicit SinkVisitor(TraceSink& sink) : sink_(sink) {}
  void record(const Event& event) override { sink_.write(event); }

 private:
  TraceSink& sink_;
};

/// Shape of a generated workload: one root span, a rolling window of at
/// most `concurrent_streams` open transfer spans, instants (attempts and
/// retries citing periodic fault transitions) inside them. Everything is
/// a pure function of this config, so every stream() pass regenerates
/// the identical records.
struct SyntheticTraceConfig {
  std::uint64_t records = 1000000;  ///< Total records emitted (min 8).
  int concurrent_streams = 32;      ///< Open-span window (excl. the root).
  int nodes = 8;                    ///< Node ids drawn for transfer pairs.
  std::uint64_t seed = 42;          ///< Generator seed.
  /// depth > 1 switches to the deep-chain shape: consecutive blocks of
  /// `depth` nested spans (synth.d1;...;synth.leafK paths), the folded-
  /// stack stress fixture. Open spans stay <= depth + 1. depth <= 1
  /// keeps the classic rolling-window shape byte-identical.
  int depth = 1;
  /// Deep-chain mode: distinct leaf names cycled across chains, i.e. the
  /// number of distinct folded stacks the capture produces.
  int fanout = 1;
};

/// Deterministic synthetic capture of arbitrary size with a bounded
/// open-span count: the scale fixture behind the `trace_stream` bench,
/// the 10^6-record ctest and `numaio_cli synth-trace`. Records honor the
/// §4a order guarantees (monotonic ids, LIFO span nesting, causes before
/// consequences) and carry node pairs/bytes so the contention and fault
/// analyzers have real work to do.
class SyntheticTraceSource final : public RecordSource {
 public:
  explicit SyntheticTraceSource(const SyntheticTraceConfig& config = {})
      : config_(config) {}
  void stream(TraceVisitor& visitor) override;

 private:
  void stream_deep(TraceVisitor& visitor);

  SyntheticTraceConfig config_;
};

}  // namespace numaio::obs
