#include "obs/obs.h"

namespace numaio::obs {

std::vector<MetricInfo> known_metrics() {
  return {
      {"characterize.drift_flags", "counter",
       "class probes whose drift check exceeded the relative tolerance"},
      {"characterize.hosts", "counter", "full Algorithm 1 characterizations"},
      {"faults.transitions", "counter",
       "fault on/off transitions applied to the machine"},
      {"fio.aborted_streams", "counter",
       "streams that exhausted retries or hit the job deadline"},
      {"fio.attempts", "counter",
       "stream launch attempts, including retries"},
      {"fio.degraded_jobs", "counter",
       "jobs that finished with at least one aborted stream"},
      {"fio.retries", "counter", "stream relaunches after a failed attempt"},
      {"fio.streams", "counter", "streams shaped and launched by FioRunner"},
      {"iomodel.probes_aborted", "counter",
       "per-node probes with zero usable repetitions"},
      {"iomodel.reps", "counter", "Algorithm 1 repetitions attempted"},
      {"iomodel.reps_dropped", "counter",
       "repetitions discarded (timeout, abort, or trimmed by the robust "
       "estimator)"},
      {"iomodel.retries", "counter", "repetition retries under faults"},
      {"model.refreshes", "counter",
       "stale host models re-characterized by refresh_if_drifted"},
      {"sched.chunks", "counter", "task chunks launched by OnlineScheduler"},
      {"sched.fallbacks", "counter",
       "robust placements that fell back to hop distance"},
      {"sched.migrations", "counter",
       "mid-task node migrations by the adaptive online policy"},
      {"sched.placements", "counter", "robust placement decisions"},
      {"sched.pool_shrunk", "counter",
       "online placements whose candidate pool lost degraded nodes"},
      {"sched.tasks", "counter", "tasks run by OnlineScheduler"},
      {"solver.cache_hits", "counter",
       "solves answered from the epoch cache without re-running"},
      {"solver.cache_misses", "counter",
       "solves that re-ran water-filling after a mutation"},
      {"solver.flows_scanned", "counter",
       "unfrozen-flow visits across water-filling rounds"},
      {"solver.resource_touches", "counter",
       "per-usage residual updates across water-filling rounds"},
      {"solver.rounds", "counter",
       "water-filling rounds across all solves"},
      {"solver.rounds_per_solve", "histogram",
       "water-filling rounds per uncached FlowSolver::solve call"},
      {"solver.solve_us", "histogram",
       "wall-clock microseconds per uncached FlowSolver::solve call"},
      {"solver.solves", "counter",
       "FlowSolver::solve calls (cache hits + misses)"},
  };
}

}  // namespace numaio::obs
