#include "obs/export.h"

#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <string>

#include "obs/obs.h"
#include "obs/stream.h"

namespace numaio::obs {

namespace {

void json_escape(std::ostream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

std::string number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Simulated ns -> the trace-event format's microsecond timestamps, at
/// nanosecond (3-decimal) resolution. Untimed records render at 0.
std::string ts_us(double t_sim_ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", t_sim_ns >= 0.0 ? t_sim_ns / 1e3
                                                         : 0.0);
  return buf;
}

/// Records without a node binding share one dedicated track, numbered
/// past any plausible NUMA node id.
constexpr int kUnboundTid = 4096;

int tid_of(const Event& e) { return e.node_a >= 0 ? e.node_a : kUnboundTid; }

/// Compact end-record stub: everything a begin record needs to render as
/// a complete slice. Kept per span — the "span-skeleton index" — instead
/// of holding end records whole.
struct EndStub {
  double t_sim = -1.0;
  std::string outcome;
  long long bytes = -1;
};

/// Common tail of every emitted trace event: the span/instant payload as
/// importer-visible args.
void write_args(std::ostream& out, const Event& begin, const EndStub* end) {
  out << "\"args\":{\"record\":" << begin.id << ",\"outcome\":\"";
  json_escape(out, end != nullptr ? end->outcome : begin.outcome);
  out << "\",\"detail\":\"";
  json_escape(out, begin.detail);
  const long long bytes =
      end != nullptr && end->bytes > 0 ? end->bytes : begin.bytes;
  out << "\",\"node_a\":" << begin.node_a << ",\"node_b\":" << begin.node_b
      << ",\"dir\":\"" << begin.dir << "\",\"bytes\":" << bytes << "}}";
}

/// Pass 1 over the capture: pair each span with its end stub, collect the
/// tracks in use and the set of records cited as causes. Memory is
/// O(spans + cause edges), never O(records).
class IndexPass final : public TraceVisitor {
 public:
  void record(const Event& e) override {
    if (e.kind == 'E') {
      ends[e.span] = {e.t_sim, e.outcome, e.bytes};
      return;
    }
    tids[tid_of(e)] = true;
    if (e.kind == 'I' && e.parent != 0) cited.insert(e.parent);
  }

  std::map<SpanId, EndStub> ends;
  std::map<int, bool> tids;
  std::set<EventId> cited;
};

/// Pass 2: emit events in record order. Cause records precede their
/// consequences (§4a guarantee), so a compact (tid, ts) stub stashed for
/// each cited record is already available when its flow pair renders.
class EmitPass final : public TraceVisitor {
 public:
  EmitPass(const IndexPass& index, std::ostream& out)
      : index_(index), out_(out) {}

  void record(const Event& e) override {
    if (index_.cited.count(e.id) != 0) {
      stubs_[e.id] = {tid_of(e), e.t_sim};
    }
    if (e.kind == 'E') return;  // folded into its begin record
    if (e.kind == 'B') {
      const auto end_it = index_.ends.find(e.id);
      const EndStub* end =
          end_it != index_.ends.end() ? &end_it->second : nullptr;
      sep();
      if (end != nullptr) {
        const double dur_ns =
            e.t_sim >= 0.0 && end->t_sim >= e.t_sim ? end->t_sim - e.t_sim
                                                    : 0.0;
        out_ << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid_of(e)
             << ",\"ts\":" << ts_us(e.t_sim) << ",\"dur\":" << ts_us(dur_ns)
             << ",\"cat\":\"span\",\"name\":\"";
      } else {
        // Unclosed span: an open slice the importer extends to the end.
        out_ << "{\"ph\":\"B\",\"pid\":0,\"tid\":" << tid_of(e)
             << ",\"ts\":" << ts_us(e.t_sim)
             << ",\"cat\":\"span\",\"name\":\"";
      }
      json_escape(out_, e.name);
      out_ << "\",";
      write_args(out_, e, end);
      return;
    }
    // Instant record.
    sep();
    out_ << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << tid_of(e)
         << ",\"ts\":" << ts_us(e.t_sim) << ",\"cat\":\"instant\",\"name\":\"";
    json_escape(out_, e.name);
    out_ << "\",";
    write_args(out_, e, nullptr);
    // Cause edge -> a flow arrow from the causing record to this one.
    // The flow id is the consequence's record id, unique per edge.
    if (e.parent != 0) {
      const auto cause = stubs_.find(e.parent);
      if (cause != stubs_.end()) {
        sep();
        out_ << "{\"ph\":\"s\",\"pid\":0,\"tid\":" << cause->second.tid
             << ",\"ts\":" << ts_us(cause->second.t_sim)
             << ",\"cat\":\"cause\",\"name\":\"cause\",\"id\":" << e.id
             << "}";
        sep();
        out_ << "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":" << tid_of(e)
             << ",\"ts\":" << ts_us(e.t_sim)
             << ",\"cat\":\"cause\",\"name\":\"cause\",\"id\":" << e.id
             << "}";
      }
    }
  }

  void sep() {
    out_ << (first_ ? "" : ",\n");
    first_ = false;
  }

 private:
  struct CauseStub {
    int tid = kUnboundTid;
    double t_sim = -1.0;
  };

  const IndexPass& index_;
  std::ostream& out_;
  bool first_ = false;  // the metadata events render before pass 2
  std::map<EventId, CauseStub> stubs_;
};

}  // namespace

void export_chrome_trace(RecordSource& source, std::ostream& out) {
  IndexPass index;
  source.stream(index);

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"numaio\"}}";
  for (const auto& [tid, used] : index.tids) {
    out << ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    if (tid == kUnboundTid) out << "unbound";
    else out << "node " << tid;
    out << "\"}}";
  }

  EmitPass emit(index, out);
  source.stream(emit);
  out << "\n]}\n";
}

void export_chrome_trace(const std::vector<Event>& events,
                         std::ostream& out) {
  VectorSource source(events);
  export_chrome_trace(source, out);
}

namespace {

/// Prometheus metric name: "numaio_" + the registry name with every
/// character outside [a-zA-Z0-9_:] mapped to '_'.
std::string prom_name(std::string_view name) {
  std::string out = "numaio_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// HELP text from the known_metrics() catalogue; registry names outside
/// the catalogue (tests, future metrics) fall back to the raw name.
std::string help_for(std::string_view name) {
  for (const MetricInfo& m : known_metrics()) {
    if (name == m.name) return m.help;
  }
  return "numaio metric " + std::string(name);
}

void write_header(std::ostream& out, const std::string& family,
                  std::string_view source_name, const char* type) {
  out << "# HELP " << family << ' ';
  // Exposition format: escape backslash and newline in help text.
  for (const char c : help_for(source_name)) {
    if (c == '\\') out << "\\\\";
    else if (c == '\n') out << "\\n";
    else out << c;
  }
  out << "\n# TYPE " << family << ' ' << type << '\n';
}

}  // namespace

void export_prometheus(const MetricsRegistry& metrics, std::ostream& out) {
  // Already an incremental writer: one family at a time straight from
  // the fixed-size registry — no per-sample state is ever retained.
  for (const auto& [name, value] : metrics.counter_values()) {
    const std::string family = prom_name(name) + "_total";
    write_header(out, family, name, "counter");
    out << family << ' ' << number(value) << '\n';
  }
  for (const auto& [name, value] : metrics.gauge_values()) {
    const std::string family = prom_name(name);
    write_header(out, family, name, "gauge");
    out << family << ' ' << number(value) << '\n';
  }
  for (const MetricsRegistry::Histogram* h : metrics.histograms_sorted()) {
    const std::string family = prom_name(h->name);
    write_header(out, family, h->name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h->counts.size(); ++i) {
      cumulative += h->counts[i];
      out << family << "_bucket{le=\"";
      if (i < h->bounds.size()) out << number(h->bounds[i]);
      else out << "+Inf";
      out << "\"} " << cumulative << '\n';
    }
    out << family << "_sum " << number(h->sum) << '\n';
    out << family << "_count " << h->count << '\n';
  }
}

}  // namespace numaio::obs
