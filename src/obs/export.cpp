#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>

#include "obs/obs.h"

namespace numaio::obs {

namespace {

void json_escape(std::ostream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

std::string number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Simulated ns -> the trace-event format's microsecond timestamps, at
/// nanosecond (3-decimal) resolution. Untimed records render at 0.
std::string ts_us(double t_sim_ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", t_sim_ns >= 0.0 ? t_sim_ns / 1e3
                                                         : 0.0);
  return buf;
}

/// Records without a node binding share one dedicated track, numbered
/// past any plausible NUMA node id.
constexpr int kUnboundTid = 4096;

int tid_of(const Event& e) { return e.node_a >= 0 ? e.node_a : kUnboundTid; }

/// Common tail of every emitted trace event: the span/instant payload as
/// importer-visible args.
void write_args(std::ostream& out, const Event& begin, const Event* end) {
  out << "\"args\":{\"record\":" << begin.id << ",\"outcome\":\"";
  json_escape(out, end != nullptr ? end->outcome : begin.outcome);
  out << "\",\"detail\":\"";
  json_escape(out, begin.detail);
  const long long bytes =
      end != nullptr && end->bytes > 0 ? end->bytes : begin.bytes;
  out << "\",\"node_a\":" << begin.node_a << ",\"node_b\":" << begin.node_b
      << ",\"dir\":\"" << begin.dir << "\",\"bytes\":" << bytes << "}}";
}

}  // namespace

void export_chrome_trace(const std::vector<Event>& events,
                         std::ostream& out) {
  // Pair ends with begins, index records for cause lookups, and collect
  // the tracks in use.
  std::map<SpanId, const Event*> ends;
  std::map<EventId, const Event*> by_id;
  std::map<int, bool> tids;
  for (const Event& e : events) {
    by_id.emplace(e.id, &e);
    if (e.kind == 'E') ends[e.span] = &e;
    else tids[tid_of(e)] = true;
  }

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&]() {
    out << (first ? "" : ",\n");
    first = false;
  };

  sep();
  out << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"numaio\"}}";
  for (const auto& [tid, used] : tids) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    if (tid == kUnboundTid) out << "unbound";
    else out << "node " << tid;
    out << "\"}}";
  }

  for (const Event& e : events) {
    if (e.kind == 'E') continue;  // folded into its begin record
    if (e.kind == 'B') {
      const auto end_it = ends.find(e.id);
      const Event* end = end_it != ends.end() ? end_it->second : nullptr;
      sep();
      if (end != nullptr) {
        const double dur_ns =
            e.t_sim >= 0.0 && end->t_sim >= e.t_sim ? end->t_sim - e.t_sim
                                                    : 0.0;
        out << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid_of(e)
            << ",\"ts\":" << ts_us(e.t_sim) << ",\"dur\":" << ts_us(dur_ns)
            << ",\"cat\":\"span\",\"name\":\"";
      } else {
        // Unclosed span: an open slice the importer extends to the end.
        out << "{\"ph\":\"B\",\"pid\":0,\"tid\":" << tid_of(e)
            << ",\"ts\":" << ts_us(e.t_sim) << ",\"cat\":\"span\",\"name\":\"";
      }
      json_escape(out, e.name);
      out << "\",";
      write_args(out, e, end);
      continue;
    }
    // Instant record.
    sep();
    out << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << tid_of(e)
        << ",\"ts\":" << ts_us(e.t_sim) << ",\"cat\":\"instant\",\"name\":\"";
    json_escape(out, e.name);
    out << "\",";
    write_args(out, e, nullptr);
    // Cause edge -> a flow arrow from the causing record to this one.
    // The flow id is the consequence's record id, unique per edge.
    if (e.parent != 0) {
      const auto cause_it = by_id.find(e.parent);
      const Event* cause =
          cause_it != by_id.end() ? cause_it->second : nullptr;
      if (cause != nullptr) {
        sep();
        out << "{\"ph\":\"s\",\"pid\":0,\"tid\":" << tid_of(*cause)
            << ",\"ts\":" << ts_us(cause->t_sim)
            << ",\"cat\":\"cause\",\"name\":\"cause\",\"id\":" << e.id << "}";
        sep();
        out << "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":" << tid_of(e)
            << ",\"ts\":" << ts_us(e.t_sim)
            << ",\"cat\":\"cause\",\"name\":\"cause\",\"id\":" << e.id << "}";
      }
    }
  }
  out << "\n]}\n";
}

namespace {

/// Prometheus metric name: "numaio_" + the registry name with every
/// character outside [a-zA-Z0-9_:] mapped to '_'.
std::string prom_name(std::string_view name) {
  std::string out = "numaio_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// HELP text from the known_metrics() catalogue; registry names outside
/// the catalogue (tests, future metrics) fall back to the raw name.
std::string help_for(std::string_view name) {
  for (const MetricInfo& m : known_metrics()) {
    if (name == m.name) return m.help;
  }
  return "numaio metric " + std::string(name);
}

void write_header(std::ostream& out, const std::string& family,
                  std::string_view source_name, const char* type) {
  out << "# HELP " << family << ' ';
  // Exposition format: escape backslash and newline in help text.
  for (const char c : help_for(source_name)) {
    if (c == '\\') out << "\\\\";
    else if (c == '\n') out << "\\n";
    else out << c;
  }
  out << "\n# TYPE " << family << ' ' << type << '\n';
}

}  // namespace

void export_prometheus(const MetricsRegistry& metrics, std::ostream& out) {
  for (const auto& [name, value] : metrics.counter_values()) {
    const std::string family = prom_name(name) + "_total";
    write_header(out, family, name, "counter");
    out << family << ' ' << number(value) << '\n';
  }
  for (const auto& [name, value] : metrics.gauge_values()) {
    const std::string family = prom_name(name);
    write_header(out, family, name, "gauge");
    out << family << ' ' << number(value) << '\n';
  }
  for (const MetricsRegistry::Histogram* h : metrics.histograms_sorted()) {
    const std::string family = prom_name(h->name);
    write_header(out, family, h->name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h->counts.size(); ++i) {
      cumulative += h->counts[i];
      out << family << "_bucket{le=\"";
      if (i < h->bounds.size()) out << number(h->bounds[i]);
      else out << "+Inf";
      out << "\"} " << cumulative << '\n';
    }
    out << family << "_sum " << number(h->sum) << '\n';
    out << family << "_count " << h->count << '\n';
  }
}

}  // namespace numaio::obs
