// Profiling views over the record stream: folded stacks and scheduler
// tail latency.
//
// The analysis module (obs/analysis.h) answers "what dominated this
// run"; this one answers the two follow-up questions a tuner asks next:
//
//   1. *Where* exactly did the time go? FoldedStackCollector walks the
//      span tree of any RecordSource in one streaming pass and folds
//      every span into its ancestry path — `root;child;grandchild` — with
//      a simulated-time weight, the folded-stack format flamegraph.pl
//      and speedscope consume directly (docs/FORMATS.md §7). Weight is
//      selectable: kWall charges a span its full duration (inclusive
//      flame), kSelf its duration minus time spent in child spans
//      (exclusive flame, the default — weights sum to distinct time).
//
//   2. How long did *scheduled work wait*? SchedLatencyCollector derives
//      per-task queue-wait, dispatch-to-start and migration-delay
//      distributions from the `fleet.*` / `sched.*` records the serving
//      core and the online scheduler already emit, as fixed-bucket
//      millisecond histograms (p50/p95/p99/p99.9). The profile merges
//      into a MetricsRegistry, so the Prometheus exporter and `report`
//      §6 render it with no extra wiring.
//
// Both collectors are single-pass TraceVisitors holding O(open spans +
// in-flight tasks + distinct stacks) state — they ride the same
// streaming core as everything else and also work as a live tap on a
// running TraceRecorder (obs/serve.h).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "obs/stream.h"
#include "obs/trace.h"

namespace numaio::obs {

/// What a folded stack line weighs.
enum class FoldWeight {
  kWall,  ///< Span duration (inclusive; parents outweigh children).
  kSelf,  ///< Duration minus child-span time (exclusive; sums to total).
};

/// What a fold pass did — the bench/ctest surface for the O(open spans)
/// memory claim and for throughput numbers.
struct FoldStats {
  std::uint64_t records = 0;          ///< Records visited.
  std::uint64_t spans = 0;            ///< Span begins seen.
  std::uint64_t stacks = 0;           ///< Distinct folded lines emitted.
  std::uint64_t peak_open_spans = 0;  ///< High-water open-span count.
};

/// Streams records into a folded-stack profile. Feed every record via
/// record() (directly, through a RecordSource pass, or live through
/// VisitorSink), then finish() once, then write(). Output lines are
/// `path;to;span <weight>` with integer nanosecond weights, sorted by
/// path, zero-weight stacks omitted — byte-deterministic for
/// deterministic captures.
class FoldedStackCollector final : public TraceVisitor {
 public:
  explicit FoldedStackCollector(FoldWeight weight = FoldWeight::kSelf)
      : weight_(weight) {}

  void record(const Event& event) override;

  /// Folds still-open spans (innermost first) using the child time they
  /// accumulated — an unclosed span contributes no self time but keeps
  /// its closed children attributed. Call once, after the last record.
  void finish();

  /// Writes the folded lines. Valid before finish() too (a live rolling
  /// snapshot of closed spans), but stats().stacks is set by finish().
  void write(std::ostream& out) const;

  const FoldStats& stats() const { return stats_; }

 private:
  struct OpenSpan {
    std::string path;     ///< "root;...;this".
    EventId parent = 0;   ///< Enclosing open span (0: root).
    double t0 = -1.0;     ///< Begin t_sim; -1 untimed.
    double child_ns = 0.0;  ///< Closed-child simulated time.
  };

  void fold(EventId id, double end_t);

  FoldWeight weight_;
  std::map<EventId, OpenSpan> open_;
  std::map<std::string, double> folded_;  ///< path -> weight (ns).
  FoldStats stats_;
};

/// One streaming pass: source -> folded-stack lines on `out`. The
/// convenience wrapper behind `numaio_cli export --folded`.
FoldStats export_folded_stacks(RecordSource& source, std::ostream& out,
                               FoldWeight weight = FoldWeight::kSelf);

/// The three scheduler-latency distributions, in milliseconds:
///   queue_wait  fleet.admit -> first fleet.dispatch attempt,
///   dispatch    first dispatch attempt -> the "started" one (refused
///               attempts push it out),
///   migration   gap between consecutive re-placements of one task
///               (sched.migrate instants and fleet.replace events).
struct SchedLatencyProfile {
  MetricsRegistry::Histogram queue_wait;
  MetricsRegistry::Histogram dispatch;
  MetricsRegistry::Histogram migration;

  bool empty() const {
    return queue_wait.count == 0 && dispatch.count == 0 &&
           migration.count == 0;
  }

  /// Folds all three histograms into `registry` (under their catalogued
  /// sched.* names), so export_prometheus renders them as numaio_sched_*
  /// histogram families.
  void merge_into(MetricsRegistry& registry) const;
};

/// Derives the scheduler-latency profile record by record. Tasks are
/// keyed by their request/task detail string; state is dropped when a
/// request completes, fails or is shed, so memory stays O(in-flight
/// requests + live tasks).
class SchedLatencyCollector final : public TraceVisitor {
 public:
  SchedLatencyCollector();

  void record(const Event& event) override;

  const SchedLatencyProfile& profile() const { return profile_; }

 private:
  struct PendingTask {
    double admit_t = -1.0;
    double first_dispatch_t = -1.0;
    bool started = false;
    double last_move_t = -1.0;
  };

  std::map<std::string, PendingTask> pending_;
  SchedLatencyProfile profile_;
};

/// One streaming pass: source -> scheduler-latency profile.
SchedLatencyProfile profile_scheduler(RecordSource& source);

}  // namespace numaio::obs
