#include "obs/trace.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace numaio::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// JSON string escaping for the small character set our names/details use;
/// anything below 0x20 goes out as \u00XX.
void json_escape(std::ostream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

/// CSV field quoting: always quoted, inner quotes doubled, so commas and
/// newlines in details cannot shear a row.
void csv_quote(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

/// Shortest round-trip-safe rendering of a double (%.17g trims trailing
/// noise for the integral values timestamps usually are).
void number(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

}  // namespace

void JsonlSink::write(const Event& e) {
  out_ << "{\"id\":" << e.id << ",\"span\":" << e.span
       << ",\"parent\":" << e.parent << ",\"kind\":\"" << e.kind
       << "\",\"name\":\"";
  json_escape(out_, e.name);
  out_ << "\",\"node_a\":" << e.node_a << ",\"node_b\":" << e.node_b
       << ",\"dir\":\"" << e.dir << "\",\"bytes\":" << e.bytes << ",\"t\":";
  number(out_, e.t_sim);
  out_ << ",\"outcome\":\"";
  json_escape(out_, e.outcome);
  out_ << "\",\"detail\":\"";
  json_escape(out_, e.detail);
  // Deterministic records (wall_us < 0) omit the one nondeterministic
  // field so same-seed trace files compare byte-equal.
  if (e.wall_us >= 0.0) {
    out_ << "\",\"wall_us\":";
    number(out_, e.wall_us);
    out_ << "}\n";
  } else {
    out_ << "\"}\n";
  }
}

void CsvSink::write(const Event& e) {
  if (!header_written_) {
    out_ << "id,span,parent,kind,name,node_a,node_b,dir,bytes,t,outcome,"
            "detail,wall_us\n";
    header_written_ = true;
  }
  out_ << e.id << ',' << e.span << ',' << e.parent << ',' << e.kind << ',';
  csv_quote(out_, e.name);
  out_ << ',' << e.node_a << ',' << e.node_b << ',' << e.dir << ','
       << e.bytes << ',';
  number(out_, e.t_sim);
  out_ << ',';
  csv_quote(out_, e.outcome);
  out_ << ',';
  csv_quote(out_, e.detail);
  out_ << ',';
  if (e.wall_us >= 0.0) number(out_, e.wall_us);  // empty when deterministic
  out_ << '\n';
}

void TraceRecorder::set_sink(TraceSink* sink) {
  sink_ = sink;
  if (sink_ != nullptr && !deterministic_ && epoch_ns_ < 0) {
    epoch_ns_ = steady_ns();
  }
}

EventId TraceRecorder::emit(char kind, std::string_view name, SpanId span,
                            EventId parent, std::string_view outcome,
                            const EventFields& fields) {
  Event e;
  e.id = next_id_++;
  e.span = span == 0 && kind == 'B' ? e.id : span;
  e.parent = parent;
  e.kind = kind;
  e.name.assign(name);
  e.node_a = fields.node_a;
  e.node_b = fields.node_b;
  e.dir = fields.dir;
  e.bytes = fields.bytes;
  e.t_sim = fields.t_sim;
  e.outcome.assign(outcome);
  e.detail.assign(fields.detail);
  if (deterministic_) {
    e.wall_us = -1.0;
  } else {
    if (epoch_ns_ < 0) epoch_ns_ = steady_ns();  // deterministic-then-not
    e.wall_us = static_cast<double>(steady_ns() - epoch_ns_) / 1000.0;
  }
  sink_->write(e);
  return e.id;
}

SpanId TraceRecorder::begin_span(std::string_view name, SpanId parent,
                                 const EventFields& fields) {
  if (sink_ == nullptr) return 0;
  return emit('B', name, 0, parent, {}, fields);
}

void TraceRecorder::end_span(SpanId span, std::string_view outcome,
                             const EventFields& fields) {
  if (sink_ == nullptr || span == 0) return;
  emit('E', {}, span, 0, outcome, fields);
}

EventId TraceRecorder::event(std::string_view name, SpanId span,
                             EventId cause, std::string_view outcome,
                             const EventFields& fields) {
  if (sink_ == nullptr) return 0;
  return emit('I', name, span, cause, outcome, fields);
}

}  // namespace numaio::obs
