#include "obs/serve.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "obs/export.h"

namespace numaio::obs {

// ---------------------------------------------------------------------
// TelemetryHub.

void TelemetryHub::publish(std::string metrics_text,
                           std::string report_text) {
  const std::lock_guard<std::mutex> lock(mu_);
  metrics_ = std::move(metrics_text);
  report_ = std::move(report_text);
  generation_ += 1;
}

std::string TelemetryHub::metrics_text() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

std::string TelemetryHub::report_text() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return report_;
}

std::uint64_t TelemetryHub::generation() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

// ---------------------------------------------------------------------
// TelemetryTap.

TelemetryTap::TelemetryTap(TelemetryHub& hub, const MetricsRegistry* metrics,
                           int refresh_ms)
    : hub_(hub),
      metrics_(metrics),
      refresh_ms_(refresh_ms),
      last_publish_(std::chrono::steady_clock::now()) {}

void TelemetryTap::record(const Event& event) {
  records_ += 1;
  sched_.record(event);
  fold_.record(event);
  if (event.kind == 'B') {
    open_spans_.emplace(event.id,
                        std::make_pair(event.name, event.t_sim));
  } else if (event.kind == 'E') {
    const auto it = open_spans_.find(event.span);
    if (it != open_spans_.end()) {
      auto& [count, total_ns] = span_totals_[it->second.first];
      count += 1;
      if (it->second.second >= 0.0 && event.t_sim >= it->second.second) {
        total_ns += event.t_sim - it->second.second;
      }
      open_spans_.erase(it);
    }
  }
  if (refresh_due()) flush();
}

bool TelemetryTap::refresh_due() {
  if (!published_once_) return true;  // first record: expose *something*
  if (refresh_ms_ <= 0) return true;
  const auto now = std::chrono::steady_clock::now();
  return now - last_publish_ >= std::chrono::milliseconds(refresh_ms_);
}

void TelemetryTap::flush() {
  std::ostringstream prom;
  if (metrics_ != nullptr) {
    // The registry is only ever mutated by the thread feeding this tap,
    // so the copy is race-free; merging the scheduler-latency histograms
    // into the copy keeps the live run's own registry untouched.
    MetricsRegistry snapshot = *metrics_;
    sched_.profile().merge_into(snapshot);
    export_prometheus(snapshot, prom);
  } else {
    MetricsRegistry snapshot;
    sched_.profile().merge_into(snapshot);
    export_prometheus(snapshot, prom);
  }
  hub_.publish(prom.str(), render_report());
  last_publish_ = std::chrono::steady_clock::now();
  published_once_ = true;
}

std::string TelemetryTap::render_report() const {
  std::ostringstream out;
  char buf[96];
  out << "# numaio live telemetry\n\n";
  out << "- records seen: " << records_ << "\n";
  out << "- open spans: " << open_spans_.size() << "\n\n";
  out << "## Span summary (rolling)\n\n";
  if (span_totals_.empty()) {
    out << "(no spans closed yet)\n";
  } else {
    out << "| span kind | count | total ms |\n|---|---|---|\n";
    for (const auto& [name, agg] : span_totals_) {
      std::snprintf(buf, sizeof buf, "%.3f", agg.second / 1e6);
      out << "| " << name << " | " << agg.first << " | " << buf << " |\n";
    }
  }
  out << "\n## Scheduler latency (rolling)\n\n";
  const SchedLatencyProfile& p = sched_.profile();
  if (p.empty()) {
    out << "(no scheduler records yet)\n";
  } else {
    out << "| metric | count | p50 ms | p95 ms | p99 ms | p99.9 ms |\n"
        << "|---|---|---|---|---|---|\n";
    for (const MetricsRegistry::Histogram* h :
         {&p.queue_wait, &p.dispatch, &p.migration}) {
      std::snprintf(buf, sizeof buf,
                    "| %s | %llu | %.3f | %.3f | %.3f | %.3f |\n",
                    h->name.c_str(),
                    static_cast<unsigned long long>(h->count),
                    h->quantile(0.50), h->quantile(0.95), h->quantile(0.99),
                    h->quantile(0.999));
      out << buf;
    }
  }
  out << "\n## Folded stacks (self time, closed spans)\n\n```\n";
  fold_.write(out);
  out << "```\n";
  return out.str();
}

// ---------------------------------------------------------------------
// TelemetryServer.

namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer went away: drop the response
    sent += static_cast<std::size_t>(n);
  }
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.0 " << status << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

}  // namespace

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    const std::string why = std::strerror(errno);
    close_fd(listen_fd_);
    throw std::runtime_error("serve: cannot bind 127.0.0.1:" +
                             std::to_string(port) + ": " + why);
  }
  if (::listen(listen_fd_, 16) != 0) {
    const std::string why = std::strerror(errno);
    close_fd(listen_fd_);
    throw std::runtime_error("serve: listen() failed: " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    port_ = port;
  }
  thread_ = std::thread([this] { serve_loop(); });
}

void TelemetryServer::stop() {
  if (thread_.joinable()) {
    // shutdown() wakes the blocking accept(); the fd is closed only
    // after the join so the accept thread never races a reused fd.
    ::shutdown(listen_fd_, SHUT_RDWR);
    thread_.join();
  }
  close_fd(listen_fd_);
}

void TelemetryServer::serve_loop() {
  const int fd = listen_fd_;
  while (true) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or broken): exit the thread
    }
    char buf[1024];
    const ssize_t n = ::recv(client, buf, sizeof buf - 1, 0);
    std::string target = "/";
    if (n > 0) {
      buf[n] = '\0';
      // "GET /path HTTP/1.x" — we only care about the path.
      const char* sp1 = std::strchr(buf, ' ');
      if (sp1 != nullptr) {
        const char* sp2 = std::strchr(sp1 + 1, ' ');
        if (sp2 != nullptr) target.assign(sp1 + 1, sp2);
      }
    }
    std::string response;
    if (target == "/metrics") {
      response = http_response(
          "200 OK", "text/plain; version=0.0.4; charset=utf-8",
          hub_->metrics_text());
    } else if (target == "/report") {
      response = http_response("200 OK", "text/markdown; charset=utf-8",
                               hub_->report_text());
    } else if (target == "/healthz" || target == "/") {
      response = http_response("200 OK", "text/plain; charset=utf-8",
                               "ok generation=" +
                                   std::to_string(hub_->generation()) +
                                   "\n");
    } else {
      response = http_response("404 Not Found",
                               "text/plain; charset=utf-8",
                               "not found: try /metrics /report /healthz\n");
    }
    send_all(client, response);
    ::close(client);
  }
}

}  // namespace numaio::obs
