// Live telemetry: a rolling snapshot of a run in flight, scrapeable
// while the run is still running.
//
// Every exporter so far renders *after* the run; a fleet storm or a
// million-record replay is invisible until it exits. This module closes
// that gap with three small pieces:
//
//   TelemetryHub     a mutex-guarded mailbox holding the latest rendered
//                    Prometheus text and rolling report, plus a
//                    generation counter (how many refreshes happened).
//                    Writers publish whole documents; readers copy them
//                    out — no partial reads, no reader/writer aliasing.
//
//   TelemetryTap     a TraceVisitor that rides the live record stream
//                    (attach to a TraceRecorder via VisitorSink, usually
//                    teed with the file sink). It feeds the profiling
//                    collectors (obs/profile.h) record by record and, on
//                    a wall-clock cadence (`refresh_ms`), renders the
//                    attached MetricsRegistry + scheduler-latency
//                    histograms to Prometheus text and a rolling
//                    markdown report, publishing both into the hub.
//                    Rendering happens on the *run* thread — the only
//                    thread mutating the registry — so the tap never
//                    races the instrumentation.
//
//   TelemetryServer  a deliberately tiny blocking HTTP/1.0 endpoint on
//                    127.0.0.1 (one accept thread, one request per
//                    connection) serving GET /metrics (Prometheus text
//                    exposition 0.0.4), /report (the rolling markdown)
//                    and /healthz from the hub. Enough for a Prometheus
//                    scrape job or `curl`; not a web server.
//
// Wiring lives in the CLI: `numaio_cli serve` and `fleet --serve-port`
// (docs/OBSERVABILITY.md "Live telemetry"). Port 0 binds an ephemeral
// port, reported by port() — what the refresh-cadence ctest uses.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace numaio::obs {

class TelemetryHub {
 public:
  /// Atomically replaces both documents and bumps the generation.
  void publish(std::string metrics_text, std::string report_text);

  std::string metrics_text() const;
  std::string report_text() const;
  /// Number of publishes so far; 0 until the first refresh lands.
  std::uint64_t generation() const;

 private:
  mutable std::mutex mu_;
  std::string metrics_;
  std::string report_;
  std::uint64_t generation_ = 0;
};

class TelemetryTap final : public TraceVisitor {
 public:
  /// `metrics` may be nullptr (trace-only runs); both referents must
  /// outlive the tap. refresh_ms <= 0 publishes on every record.
  TelemetryTap(TelemetryHub& hub, const MetricsRegistry* metrics,
               int refresh_ms);

  void record(const Event& event) override;

  /// Renders and publishes immediately — call when the run ends so the
  /// final state is scrapeable regardless of cadence phase.
  void flush();

  std::uint64_t records_seen() const { return records_; }

 private:
  bool refresh_due();
  std::string render_report() const;

  TelemetryHub& hub_;
  const MetricsRegistry* metrics_;
  SchedLatencyCollector sched_;
  FoldedStackCollector fold_{FoldWeight::kSelf};
  /// name -> {count, total simulated ns}: the rolling span summary.
  std::map<std::string, std::pair<std::uint64_t, double>> span_totals_;
  std::map<EventId, std::pair<std::string, double>> open_spans_;
  std::uint64_t records_ = 0;
  int refresh_ms_;
  std::chrono::steady_clock::time_point last_publish_;
  bool published_once_ = false;
};

class TelemetryServer {
 public:
  /// Serves `hub`, which must outlive the server.
  explicit TelemetryServer(const TelemetryHub& hub) : hub_(&hub) {}
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept
  /// thread. Throws std::runtime_error when the socket can't be set up.
  void start(int port);

  /// The bound port; valid after start().
  int port() const { return port_; }

  /// Stops accepting and joins the thread. Idempotent.
  void stop();

 private:
  void serve_loop();

  const TelemetryHub* hub_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
};

}  // namespace numaio::obs
