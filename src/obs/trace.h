// Structured tracing for the measurement pipeline.
//
// The paper's methodology stands on *attributable* bandwidth numbers
// (Algorithm 1's per-node samples, Eq. 1's 3.1% validation); once the
// degraded-mode paths landed (retries, timed-out repetitions, stale-model
// fallbacks) a reported Gbps stopped telling the whole story. A
// TraceRecorder captures that story as a flat stream of records:
//
//   span begin  ('B')  an operation opens: a fio job, one of its streams,
//                      an Algorithm 1 probe, an online-scheduler run;
//   span end    ('E')  the operation closes with an outcome;
//   instant     ('I')  something happened inside a span: an attempt
//                      launched, a retry, a fault transition, a placement.
//
// Every record gets a process-unique, monotonically increasing `id`; a
// begin record's id *is* the span's id. Records carry two parentage
// fields: `span` (the enclosing span) and `parent` (for 'B' the parent
// span, for 'I' the *cause* — e.g. a stream-abort event points at the
// fault-transition event that killed it). That cause edge is what makes a
// degraded run auditable: trace consumers can walk from any aborted
// stream back to the fault that did it.
//
// Recording is pull-free and sink-driven: with no sink attached the
// recorder is a handful of predicted branches (begin_span returns 0 and
// nothing allocates), so instrumented code paths can stay instrumented in
// production builds. Sinks receive each record as it is emitted; JSONL and
// CSV sinks serialize them line by line (docs/FORMATS.md §4), MemorySink
// keeps them for tests, TeeSink fans one stream out to several. All
// fields except `wall_us` (a steady-clock timestamp) are deterministic
// for deterministic workloads: two same-seed runs produce identical
// traces modulo wall_us — and byte-identical ones under
// set_deterministic(true), which never samples the clock and makes the
// serializers omit the field entirely (the CLI's --trace-deterministic).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace numaio::obs {

using SpanId = std::uint64_t;
using EventId = std::uint64_t;

/// Optional payload fields shared by spans and instant events. Defaults
/// mean "not applicable" and serialize as such.
struct EventFields {
  int node_a = -1;            ///< NUMA node pair: source / cpu side.
  int node_b = -1;            ///< NUMA node pair: sink / device side.
  char dir = '-';             ///< 'w' device-write, 'r' device-read, '-'.
  long long bytes = -1;       ///< Payload bytes, -1 when not applicable.
  double t_sim = -1.0;        ///< Simulated time (ns), -1 when untimed.
  std::string_view detail{};  ///< Freeform context (reason, attempt #...).
};

/// One trace record, as handed to sinks.
struct Event {
  EventId id = 0;       ///< Unique, monotonically increasing.
  SpanId span = 0;      ///< Enclosing span ('B'/'E': the span itself).
  EventId parent = 0;   ///< 'B': parent span. 'I': causing record (0 none).
  char kind = 'I';      ///< 'B' begin span, 'E' end span, 'I' instant.
  std::string name;     ///< Dotted event name, e.g. "fio.retry".
  int node_a = -1;
  int node_b = -1;
  char dir = '-';
  long long bytes = -1;
  double t_sim = -1.0;
  std::string outcome;  ///< "ok", "retry", "abort", "fallback", ...
  std::string detail;
  /// Steady-clock microseconds since recorder start; -1 in deterministic
  /// mode (serializers omit the field for negative values).
  double wall_us = 0.0;
};

/// Receives records as they are emitted. Implementations must not call
/// back into the recorder.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const Event& event) = 0;
};

/// One JSON object per line; every field always present, `wall_us` last so
/// deterministic comparisons can strip it textually.
class JsonlSink : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(out) {}
  void write(const Event& event) override;

 private:
  std::ostream& out_;
};

/// Header + one comma-separated row per record; strings are quoted with
/// doubled inner quotes (RFC 4180 style).
class CsvSink : public TraceSink {
 public:
  explicit CsvSink(std::ostream& out) : out_(out) {}
  void write(const Event& event) override;

 private:
  std::ostream& out_;
  bool header_written_ = false;
};

/// Receives records one at a time from a streaming pass — a RecordSource
/// replay (obs/stream.h) or a live recorder tap. The consumption-side
/// counterpart of TraceSink: sinks serialize a run as it happens,
/// visitors accumulate analysis state without holding the capture.
class TraceVisitor {
 public:
  virtual ~TraceVisitor() = default;
  virtual void record(const Event& event) = 0;
};

/// Keeps everything in memory; for tests and small in-process captures.
/// Both a sink (attach to a recorder) and a visitor (target of a
/// RecordSource pass) — the thin adapter between the buffered and
/// streaming worlds.
class MemorySink : public TraceSink, public TraceVisitor {
 public:
  void write(const Event& event) override { events.push_back(event); }
  void record(const Event& event) override { events.push_back(event); }
  std::vector<Event> events;
};

/// Fans each record out to every attached sink, in attachment order; lets
/// one run feed a file serializer and an in-process MemorySink at once.
class TeeSink : public TraceSink {
 public:
  void add(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  void write(const Event& event) override {
    for (TraceSink* sink : sinks_) sink->write(event);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

class TraceRecorder {
 public:
  /// Attaches a sink (nullptr detaches: the null-sink fast path). The sink
  /// must outlive recording.
  void set_sink(TraceSink* sink);
  bool enabled() const { return sink_ != nullptr; }
  /// The attached sink (nullptr when detached) — lets callers tee a live
  /// tap with whatever sink is already wired (the CLI's --serve-port).
  TraceSink* sink() const { return sink_; }

  /// Deterministic mode: never sample the wall clock; every record carries
  /// wall_us = -1 and the JSONL/CSV serializers omit the field, so two
  /// same-seed runs produce byte-identical trace files with no textual
  /// post-processing. Set before (or with) the sink.
  void set_deterministic(bool deterministic) { deterministic_ = deterministic; }
  bool deterministic() const { return deterministic_; }

  /// Opens a span; the returned id doubles as the record id. Returns 0
  /// (and records nothing) when no sink is attached.
  SpanId begin_span(std::string_view name, SpanId parent = 0,
                    const EventFields& fields = {});

  /// Closes a span with an outcome. No-op for span id 0 or no sink.
  void end_span(SpanId span, std::string_view outcome = "ok",
                const EventFields& fields = {});

  /// Emits an instant event inside `span`, optionally caused by another
  /// record (`cause`, e.g. a fault transition). Returns the event id, 0
  /// when not recording.
  EventId event(std::string_view name, SpanId span = 0, EventId cause = 0,
                std::string_view outcome = {},
                const EventFields& fields = {});

  /// Records emitted since the recorder was constructed (sink or not —
  /// disabled periods emit nothing and advance nothing).
  std::uint64_t records_emitted() const { return next_id_ - 1; }

 private:
  EventId emit(char kind, std::string_view name, SpanId span, EventId parent,
               std::string_view outcome, const EventFields& fields);

  TraceSink* sink_ = nullptr;
  EventId next_id_ = 1;
  bool deterministic_ = false;
  std::int64_t epoch_ns_ = -1;  ///< Steady-clock origin, set on first sink.
};

}  // namespace numaio::obs
