// numaio — umbrella header for the public API surface.
//
// Including this single header gives a consumer the whole stable library:
// topology presets, the calibrated fabric machine, memory and I/O
// benchmarks, the paper's characterization models (Algorithm 1,
// classification, prediction, scheduling), fault injection, and the
// observability layer (tracing + metrics). Tools and examples in this
// repo include only this header; the per-directory headers remain
// available for consumers who want finer-grained includes, but the set
// re-exported here is the supported surface.
//
// Layering (see src/CMakeLists.txt): obs -> simcore -> topo -> fabric ->
// faults -> nm -> {mem, io} -> model -> fleet. This header includes
// bottom-up so the include order documents the dependency order.
#pragma once

// Observability: structured tracing, metrics registry, scoped timers,
// the streaming record-source core, trace analysis (critical path,
// contention), exporters (Chrome trace JSON for Perfetto, Prometheus
// text exposition), the profiling layer (folded stacks, scheduler
// tail-latency histograms) and the live telemetry serve mode.
#include "obs/analysis.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/serve.h"
#include "obs/stream.h"

// Simulation core: units, RNG, statistics, retry policy, status codes,
// and the solver execution engine (SolveOptions / ThreadPool).
#include "simcore/fluid_sim.h"
#include "simcore/retry.h"
#include "simcore/rng.h"
#include "simcore/solve_options.h"
#include "simcore/stats.h"
#include "simcore/status.h"
#include "simcore/thread_pool.h"
#include "simcore/units.h"

// NUMA topology: graphs, presets, routing, latency.
#include "topo/latency.h"
#include "topo/presets.h"
#include "topo/routing.h"
#include "topo/topology.h"

// Fabric: calibrated machine, path matrices, contention solver.
#include "fabric/calibration.h"
#include "fabric/machine.h"
#include "fabric/path_matrix.h"

// Fault injection: plans and the injector.
#include "faults/fault_plan.h"
#include "faults/injector.h"

// numactl/libnuma-style host views: allocation, policies, SLIT, numastat.
#include "nm/cores.h"
#include "nm/host.h"
#include "nm/hwloc_view.h"
#include "nm/numastat.h"
#include "nm/policy.h"
#include "nm/slit.h"

// Memory benchmarks: STREAM, copy, matrices, numademo.
#include "mem/copy.h"
#include "mem/membench.h"
#include "mem/numademo.h"
#include "mem/stream.h"

// I/O: PCIe devices, fio-style runner, job files, traces, testbed.
#include "io/device.h"
#include "io/fio.h"
#include "io/hostpair.h"
#include "io/jobfile.h"
#include "io/nic.h"
#include "io/ssd.h"
#include "io/testbed.h"
#include "io/trace.h"

// Models: Algorithm 1 characterization, classification, prediction,
// scheduling (robust + online), validation, analysis, reporting.
#include "model/analysis.h"
#include "model/asymmetry.h"
#include "model/baselines.h"
#include "model/characterize.h"
#include "model/classify.h"
#include "model/crossval.h"
#include "model/inference.h"
#include "model/iomodel.h"
#include "model/mitigate.h"
#include "model/online.h"
#include "model/perf_report.h"
#include "model/predictor.h"
#include "model/report.h"
#include "model/scheduler.h"
#include "model/validate.h"
#include "model/workload.h"

// Fleet serving core: admission control, overload shedding, per-host
// circuit breakers, host-failure recovery.
#include "fleet/admission.h"
#include "fleet/breaker.h"
#include "fleet/fleet.h"
