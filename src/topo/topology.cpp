#include "topo/topology.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

namespace numaio::topo {

namespace {

void require(bool cond, const std::string& what) {
  if (!cond) throw std::invalid_argument("Topology: " + what);
}

}  // namespace

Topology Topology::build(std::string name, std::vector<NodeSpec> nodes,
                         std::vector<LinkSpec> links) {
  require(!nodes.empty(), "at least one node required");
  const int n = static_cast<int>(nodes.size());

  std::set<std::pair<NodeId, NodeId>> seen;
  for (const LinkSpec& l : links) {
    require(l.a >= 0 && l.a < n && l.b >= 0 && l.b < n,
            "link endpoint out of range");
    require(l.a != l.b, "self-links are not allowed");
    require(l.width_bits_ab > 0 && l.width_bits_ba > 0,
            "link widths must be positive");
    require(l.latency_ns > 0, "link latency must be positive");
    const auto key = std::minmax(l.a, l.b);
    require(seen.insert(key).second, "duplicate link between a node pair");
  }

  // Connectivity (single node is trivially connected).
  if (n > 1) {
    std::vector<bool> reached(static_cast<std::size_t>(n), false);
    std::vector<NodeId> stack{0};
    reached[0] = true;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const LinkSpec& l : links) {
        const NodeId v = l.a == u ? l.b : (l.b == u ? l.a : -1);
        if (v >= 0 && !reached[static_cast<std::size_t>(v)]) {
          reached[static_cast<std::size_t>(v)] = true;
          stack.push_back(v);
        }
      }
    }
    require(std::all_of(reached.begin(), reached.end(),
                        [](bool r) { return r; }),
            "graph must be connected");
  }

  // AMD G34 port budget (§II-A): at most four 16-bit HT ports per die; an
  // attached I/O hub consumes one. 8-bit links consume half a port
  // (unganged mode).
  for (NodeId u = 0; u < n; ++u) {
    double width_total = 0.0;
    for (const LinkSpec& l : links) {
      if (l.a == u) width_total += std::max(l.width_bits_ab, l.width_bits_ba);
      if (l.b == u) width_total += std::max(l.width_bits_ab, l.width_bits_ba);
    }
    const double ports =
        width_total / 16.0 + (nodes[static_cast<std::size_t>(u)].io_hub ? 1.0 : 0.0);
    require(ports <= 4.0 + 1e-9, "node exceeds the 4-HT-port budget");
  }

  for (const NodeSpec& spec : nodes) {
    require(spec.cores > 0, "node must have at least one core");
    require(spec.memory_gb > 0, "node must have memory attached");
    require(spec.package >= 0, "package index must be non-negative");
  }

  Topology t;
  t.name_ = std::move(name);
  t.nodes_ = std::move(nodes);
  t.links_ = std::move(links);
  t.link_of_pair_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < t.links_.size(); ++i) {
    const LinkSpec& l = t.links_[i];
    t.link_of_pair_[static_cast<std::size_t>(l.a * n + l.b)] = static_cast<int>(i);
    t.link_of_pair_[static_cast<std::size_t>(l.b * n + l.a)] = static_cast<int>(i);
  }
  int max_pkg = 0;
  for (const NodeSpec& spec : t.nodes_) max_pkg = std::max(max_pkg, spec.package);
  t.num_packages_ = max_pkg + 1;
  return t;
}

const NodeSpec& Topology::node(NodeId id) const {
  assert(id >= 0 && id < num_nodes());
  return nodes_[static_cast<std::size_t>(id)];
}

int Topology::total_cores() const {
  int sum = 0;
  for (const NodeSpec& spec : nodes_) sum += spec.cores;
  return sum;
}

bool Topology::adjacent(NodeId a, NodeId b) const {
  return link_index(a, b) >= 0;
}

int Topology::link_index(NodeId a, NodeId b) const {
  assert(a >= 0 && a < num_nodes() && b >= 0 && b < num_nodes());
  if (a == b) return -1;
  return link_of_pair_[static_cast<std::size_t>(a * num_nodes() + b)];
}

double Topology::direction_width(NodeId a, NodeId b) const {
  const int idx = link_index(a, b);
  if (idx < 0) return 0.0;
  const LinkSpec& l = links_[static_cast<std::size_t>(idx)];
  return l.a == a ? l.width_bits_ab : l.width_bits_ba;
}

std::vector<NodeId> Topology::neighbors(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (v != id && adjacent(id, v)) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> Topology::package_peers(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (v != id && node(v).package == node(id).package) out.push_back(v);
  }
  return out;
}

bool Topology::is_neighbor(NodeId a, NodeId b) const {
  return a != b && node(a).package == node(b).package;
}

std::vector<NodeId> Topology::io_hub_nodes() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (node(v).io_hub) out.push_back(v);
  }
  return out;
}

}  // namespace numaio::topo
