#include "topo/presets.h"

#include <stdexcept>

namespace numaio::topo {

namespace {

constexpr double kWide = 16.0;    // ganged HT link width (bits)
constexpr double kNarrow = 8.0;   // unganged HT link width (bits)

std::vector<NodeSpec> magny_cours_nodes(bool io_hubs) {
  std::vector<NodeSpec> nodes(8);
  for (int i = 0; i < 8; ++i) {
    nodes[static_cast<std::size_t>(i)] =
        NodeSpec{/*package=*/i / 2, /*cores=*/4, /*memory_gb=*/4.0,
                 /*io_hub=*/false};
  }
  if (io_hubs) {
    // The DL585 G7 carries two SR5690 I/O hubs; the paper attaches all
    // benchmarked PCIe devices to node 7's hub.
    nodes[1].io_hub = true;
    nodes[7].io_hub = true;
  }
  return nodes;
}

LinkSpec intra(NodeId a, NodeId b, sim::Ns lat) {
  return LinkSpec{a, b, kWide, kWide, lat};
}

LinkSpec inter(NodeId a, NodeId b, sim::Ns lat) {
  return LinkSpec{a, b, kNarrow, kNarrow, lat};
}

std::vector<LinkSpec> magny_cours_links(char variant, sim::Ns intra_lat,
                                        sim::Ns inter_lat) {
  std::vector<LinkSpec> links{
      intra(0, 1, intra_lat), intra(2, 3, intra_lat),
      intra(4, 5, intra_lat), intra(6, 7, intra_lat)};
  switch (variant) {
    case 'a':
      // Cross layout: each odd die links to the even dies of the other
      // packages (so e.g. node 7 is one hop from {0,2,4} and two hops from
      // {1,3,5} — the worked example of §II-A).
      for (const auto& [o, evens] :
           std::vector<std::pair<NodeId, std::vector<NodeId>>>{
               {1, {2, 4, 6}}, {3, {0, 4, 6}}, {5, {0, 2, 6}}, {7, {0, 2, 4}}}) {
        for (NodeId e : evens) links.push_back(inter(o, e, inter_lat));
      }
      break;
    case 'b':
      // Dual-ring layout: even dies form one ring, odd dies the other.
      links.push_back(inter(0, 2, inter_lat));
      links.push_back(inter(2, 4, inter_lat));
      links.push_back(inter(4, 6, inter_lat));
      links.push_back(inter(0, 6, inter_lat));
      links.push_back(inter(1, 3, inter_lat));
      links.push_back(inter(3, 5, inter_lat));
      links.push_back(inter(5, 7, inter_lat));
      links.push_back(inter(1, 7, inter_lat));
      break;
    case 'c':
      // Hub layout: even dies fully connected; odd dies reach the fabric
      // only through their package peer.
      links.push_back(inter(0, 2, inter_lat));
      links.push_back(inter(0, 4, inter_lat));
      links.push_back(inter(0, 6, inter_lat));
      links.push_back(inter(2, 4, inter_lat));
      links.push_back(inter(2, 6, inter_lat));
      links.push_back(inter(4, 6, inter_lat));
      break;
    case 'd':
      // Twisted-ladder layout (the variant of [3]): even ring plus
      // diagonal spokes from the odd dies.
      links.push_back(inter(0, 2, inter_lat));
      links.push_back(inter(2, 4, inter_lat));
      links.push_back(inter(4, 6, inter_lat));
      links.push_back(inter(0, 6, inter_lat));
      links.push_back(inter(1, 4, inter_lat));
      links.push_back(inter(3, 6, inter_lat));
      links.push_back(inter(5, 0, inter_lat));
      links.push_back(inter(7, 2, inter_lat));
      break;
    default:
      throw std::invalid_argument("magny_cours_4p: variant must be 'a'..'d'");
  }
  return links;
}

}  // namespace

Topology magny_cours_4p(char variant) {
  return Topology::build(std::string("magny-cours-4p-") + variant,
                         magny_cours_nodes(/*io_hubs=*/false),
                         magny_cours_links(variant, /*intra=*/50.0,
                                           /*inter=*/120.0));
}

Topology dl585_g7() {
  return Topology::build("hp-dl585-g7",
                         magny_cours_nodes(/*io_hubs=*/true),
                         magny_cours_links('a', /*intra=*/50.0,
                                           /*inter=*/120.0));
}

ServerPreset intel_4socket_4node() {
  // Four fully-connected sockets (QPI-style). Remote = one hop everywhere:
  // 100 ns local + 40 ns link + 10 ns router = 150 ns -> factor 1.50.
  std::vector<NodeSpec> nodes(4);
  for (int i = 0; i < 4; ++i) {
    nodes[static_cast<std::size_t>(i)] = NodeSpec{i, 8, 8.0, i == 0};
  }
  std::vector<LinkSpec> links;
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = a + 1; b < 4; ++b) {
      links.push_back(LinkSpec{a, b, kWide, kWide, 40.0});
    }
  }
  return ServerPreset{"Intel 4 sockets/4 nodes",
                      Topology::build("intel-4s4n", std::move(nodes),
                                      std::move(links)),
                      LatencyParams{100.0, 10.0}, 1.5};
}

ServerPreset amd_4socket_8node() {
  // Figure-1(a) wiring. Mean remote extra over the 7 destinations
  // = (4*intra + 6*inter + 10*router)/7 = (4*50 + 6*120 + 10*27)/7
  // = 170 ns -> factor (100+170)/100 = 2.70.
  return ServerPreset{"AMD 4 sockets/8 nodes", magny_cours_4p('a'),
                      LatencyParams{100.0, 27.0}, 2.7};
}

ServerPreset amd_8socket_8node() {
  // Eight single-die sockets: ring 0-..-7 plus chords i..i+4. Every node
  // sees 3 destinations at one hop and 4 at two, mean 11/7 hops; with
  // 95 ns links and 20 ns router the mean remote extra is
  // 11*(95+20)/7 = 180.7 ns -> factor 2.81.
  std::vector<NodeSpec> nodes(8);
  for (int i = 0; i < 8; ++i) {
    nodes[static_cast<std::size_t>(i)] = NodeSpec{i, 4, 4.0, i == 7};
  }
  std::vector<LinkSpec> links;
  for (NodeId i = 0; i < 8; ++i) {
    links.push_back(LinkSpec{i, (i + 1) % 8, kNarrow, kNarrow, 95.0});
  }
  for (NodeId i = 0; i < 4; ++i) {
    links.push_back(LinkSpec{i, i + 4, kNarrow, kNarrow, 95.0});
  }
  return ServerPreset{"AMD 8 sockets/8 nodes",
                      Topology::build("amd-8s8n", std::move(nodes),
                                      std::move(links)),
                      LatencyParams{100.0, 20.0}, 2.8};
}

ServerPreset hp_blade_32node() {
  // Eight 4-node blades; blades joined in a ring through gateway nodes
  // (node 4*b on blade b). Intra-blade links are fast and fully connected;
  // blade-to-blade hops cross a backplane with much higher latency —
  // which is what pushes the factor to 5.5 on the real system.
  std::vector<NodeSpec> nodes(32);
  for (int i = 0; i < 32; ++i) {
    nodes[static_cast<std::size_t>(i)] = NodeSpec{i / 4, 4, 4.0, i == 0};
  }
  std::vector<LinkSpec> links;
  for (int b = 0; b < 8; ++b) {
    const NodeId base = 4 * b;
    for (NodeId a = 0; a < 4; ++a) {
      for (NodeId c = a + 1; c < 4; ++c) {
        links.push_back(LinkSpec{base + a, base + c, kNarrow, kNarrow, 30.0});
      }
    }
  }
  for (int b = 0; b < 8; ++b) {
    const NodeId g = 4 * b;
    const NodeId next = 4 * ((b + 1) % 8);
    links.push_back(LinkSpec{g, next, kNarrow, kNarrow, 180.0});
  }
  return ServerPreset{"HP blade system 32 nodes",
                      Topology::build("hp-blade-32", std::move(nodes),
                                      std::move(links)),
                      LatencyParams{100.0, 10.0}, 5.5};
}

namespace {
std::vector<NodeSpec> generic_nodes(int n) {
  std::vector<NodeSpec> nodes(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    nodes[static_cast<std::size_t>(i)] = NodeSpec{i, 4, 4.0, i == 0};
  }
  return nodes;
}
}  // namespace

Topology make_fully_connected(int n, double width_bits,
                              sim::Ns link_latency) {
  std::vector<LinkSpec> links;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      links.push_back(LinkSpec{a, b, width_bits, width_bits, link_latency});
    }
  }
  return Topology::build("full-" + std::to_string(n), generic_nodes(n),
                         std::move(links));
}

Topology make_ring(int n, double width_bits, sim::Ns link_latency) {
  std::vector<LinkSpec> links;
  for (NodeId i = 0; i < n; ++i) {
    links.push_back(
        LinkSpec{i, (i + 1) % n, width_bits, width_bits, link_latency});
  }
  return Topology::build("ring-" + std::to_string(n), generic_nodes(n),
                         std::move(links));
}

Topology make_chorded_ring(int n, double width_bits, sim::Ns link_latency) {
  std::vector<LinkSpec> links;
  for (NodeId i = 0; i < n; ++i) {
    links.push_back(
        LinkSpec{i, (i + 1) % n, width_bits, width_bits, link_latency});
  }
  for (NodeId i = 0; i < n / 2; ++i) {
    links.push_back(
        LinkSpec{i, i + n / 2, width_bits, width_bits, link_latency});
  }
  return Topology::build("chorded-ring-" + std::to_string(n),
                         generic_nodes(n), std::move(links));
}

std::vector<ServerPreset> table1_presets() {
  std::vector<ServerPreset> presets;
  presets.push_back(intel_4socket_4node());
  presets.push_back(amd_4socket_8node());
  presets.push_back(amd_8socket_8node());
  presets.push_back(hp_blade_32node());
  return presets;
}

}  // namespace numaio::topo
