// NUMA host topology: nodes (CPU die + memory bank [+ I/O hub]) joined by
// point-to-point coherent interconnect links (HyperTransport in the paper's
// AMD testbed).
//
// Terminology follows the paper (§II-A): a node's "local" resources are
// those attached to its own die; a "neighbor" is the other die in the same
// package; everything else is "remote" at some hop distance.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "simcore/units.h"

namespace numaio::topo {

using NodeId = int;

/// One NUMA node: a CPU die with its directly attached memory, and
/// optionally an I/O hub hanging off one of its HT ports.
struct NodeSpec {
  int package = 0;        ///< CPU package (socket) index.
  int cores = 4;          ///< CPU cores on this die.
  double memory_gb = 4.0; ///< Directly attached memory.
  bool io_hub = false;    ///< True when an I/O hub (PCIe root) is attached.
};

/// A bidirectional interconnect link between two nodes. HT 3.0 links can be
/// configured 8 or 16 bits wide per direction, and the two directions may
/// differ (the paper cites directional width/buffer asymmetry as a source of
/// bandwidth asymmetry).
struct LinkSpec {
  NodeId a = 0;
  NodeId b = 0;
  double width_bits_ab = 16.0;  ///< Link width in the a->b direction.
  double width_bits_ba = 16.0;  ///< Link width in the b->a direction.
  sim::Ns latency_ns = 40.0;    ///< One-way propagation + router latency.
};

/// Validated immutable topology graph.
class Topology {
 public:
  /// Builds and validates a topology. Requirements: at least one node,
  /// link endpoints in range and distinct, no duplicate links, graph
  /// connected, and every node's HT port budget respected
  /// (total attached link width / 16 + 1 for an I/O hub <= 4 ports,
  /// the AMD G34 pin constraint from §II-A).
  /// Throws std::invalid_argument on violation.
  static Topology build(std::string name, std::vector<NodeSpec> nodes,
                        std::vector<LinkSpec> links);

  const std::string& name() const { return name_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const NodeSpec& node(NodeId id) const;
  std::span<const NodeSpec> nodes() const { return nodes_; }
  std::span<const LinkSpec> links() const { return links_; }

  int num_packages() const { return num_packages_; }
  int total_cores() const;

  bool adjacent(NodeId a, NodeId b) const;
  /// Index into links() of the link joining a and b, or -1.
  int link_index(NodeId a, NodeId b) const;
  /// Link width in the a->b direction; 0 when not adjacent.
  double direction_width(NodeId a, NodeId b) const;
  /// Sorted list of nodes directly linked to `id`.
  std::vector<NodeId> neighbors(NodeId id) const;
  /// Nodes sharing `id`'s package, excluding `id` itself (sorted).
  std::vector<NodeId> package_peers(NodeId id) const;
  /// True when a and b share a package but are distinct nodes
  /// ("neighbor" in the paper's terminology).
  bool is_neighbor(NodeId a, NodeId b) const;
  /// Nodes with an attached I/O hub (sorted).
  std::vector<NodeId> io_hub_nodes() const;

 private:
  Topology() = default;

  std::string name_;
  std::vector<NodeSpec> nodes_;
  std::vector<LinkSpec> links_;
  std::vector<int> link_of_pair_;  // n*n matrix of link indices, -1 if none
  int num_packages_ = 0;
};

}  // namespace numaio::topo
