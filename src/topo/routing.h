// Deterministic shortest-path routing over a Topology, plus hop-distance
// matrices — the metric the paper argues is *insufficient* for NUMA cost
// modelling (§I-A). We implement it both because coherent fabrics really do
// route this way and because several benches contrast hop distance against
// measured bandwidth.
#pragma once

#include <vector>

#include "topo/topology.h"

namespace numaio::topo {

/// An ordered node path from src to dst (inclusive at both ends).
struct Route {
  std::vector<NodeId> nodes;
  /// Number of links traversed; 0 for the trivial self-route.
  int hops() const { return static_cast<int>(nodes.size()) - 1; }
};

class Routing {
 public:
  enum class Metric {
    kHops,     ///< Uniform link cost (pure hop distance).
    kLatency,  ///< Link latency_ns as cost.
  };

  Routing(const Topology& topo, Metric metric);

  /// Shortest route from src to dst. Ties are broken by fewer hops, then by
  /// lexicographically smallest node sequence, so routing tables are
  /// deterministic.
  const Route& route(NodeId src, NodeId dst) const;

  int hop_distance(NodeId src, NodeId dst) const;
  /// Total link latency along route(src, dst); 0 for src == dst.
  sim::Ns path_latency(NodeId src, NodeId dst) const;

  /// n x n matrix of hop distances.
  std::vector<std::vector<int>> hop_matrix() const;

  /// Largest hop distance over all pairs.
  int diameter() const;

  /// Mean hop distance over all ordered pairs with src != dst.
  double mean_remote_hops() const;

  const Topology& topology() const { return topo_; }

 private:
  const Topology& topo_;
  std::vector<Route> routes_;       // n*n, row-major
  std::vector<sim::Ns> latencies_;  // n*n, row-major
  std::size_t idx(NodeId s, NodeId d) const {
    return static_cast<std::size_t>(s) *
               static_cast<std::size_t>(topo_.num_nodes()) +
           static_cast<std::size_t>(d);
  }
};

}  // namespace numaio::topo
