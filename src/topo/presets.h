// Topology presets:
//  - the four possible 4P Magny-Cours interconnect layouts of Figure 1,
//  - the four server configurations of Table I (with latency parameters
//    tuned to the published NUMA factors), and
//  - the paper's testbed host (HP ProLiant DL585 G7, Table II).
#pragma once

#include <string>
#include <vector>

#include "topo/latency.h"
#include "topo/topology.h"

namespace numaio::topo {

/// One of the Figure-1 4P Magny-Cours layout variants.
/// 'a'..'c' follow the AMD designers' layouts of [13]; 'd' is the variant
/// reported in [3]. All have 8 nodes in packages {0,1},{2,3},{4,5},{6,7},
/// 16-bit intra-package links and 8-bit inter-package links.
Topology magny_cours_4p(char variant);

/// The paper's testbed: DL585 G7, 8 nodes, 4 cores/node, 4 GB/node,
/// I/O hubs on nodes 1 and 7 (all benchmarked devices sit on node 7).
/// Uses the Figure-1(a) layout as the nominal wiring; the *measured*
/// fabric character comes from fabric::dl585_calibrated(), which — as the
/// paper found — is not explained by any Figure-1 layout.
Topology dl585_g7();

/// A Table-I server configuration: topology + latency parameters tuned so
/// LatencyModel::numa_factor() reproduces the published factor.
struct ServerPreset {
  std::string label;         ///< Row label from Table I.
  Topology topo;
  LatencyParams latency;
  double paper_numa_factor;  ///< Published value.
};

ServerPreset intel_4socket_4node();  ///< Table I row 1: factor 1.5
ServerPreset amd_4socket_8node();    ///< Table I row 2: factor 2.7
ServerPreset amd_8socket_8node();    ///< Table I row 3: factor 2.8
ServerPreset hp_blade_32node();      ///< Table I row 4: factor 5.5

/// All four Table-I rows in order.
std::vector<ServerPreset> table1_presets();

// --- generic topology generators -----------------------------------------
// For studying "other NUMA systems" (§I-B): regular shapes with uniform
// link parameters. All validate the G34 port budget at build time.

/// n nodes, one per package, every pair directly linked.
Topology make_fully_connected(int n, double width_bits = 16.0,
                              sim::Ns link_latency = 40.0);

/// n nodes in a ring (i <-> i+1 mod n).
Topology make_ring(int n, double width_bits = 8.0,
                   sim::Ns link_latency = 90.0);

/// n nodes (even): a ring plus diametric chords i <-> i + n/2, the shape
/// used by the Table-I 8-socket preset.
Topology make_chorded_ring(int n, double width_bits = 8.0,
                           sim::Ns link_latency = 90.0);

}  // namespace numaio::topo
