#include "topo/latency.h"

#include <algorithm>
#include <cassert>

namespace numaio::topo {

sim::Ns LatencyModel::access_latency(NodeId cpu_node, NodeId mem_node) const {
  const int hops = routing_.hop_distance(cpu_node, mem_node);
  return params_.local_dram_ns + routing_.path_latency(cpu_node, mem_node) +
         params_.per_hop_router_ns * hops;
}

std::vector<std::vector<sim::Ns>> LatencyModel::matrix() const {
  const int n = routing_.topology().num_nodes();
  std::vector<std::vector<sim::Ns>> m(
      static_cast<std::size_t>(n),
      std::vector<sim::Ns>(static_cast<std::size_t>(n), 0.0));
  for (NodeId c = 0; c < n; ++c) {
    for (NodeId d = 0; d < n; ++d) {
      m[static_cast<std::size_t>(c)][static_cast<std::size_t>(d)] =
          access_latency(c, d);
    }
  }
  return m;
}

double LatencyModel::numa_factor() const {
  const int n = routing_.topology().num_nodes();
  if (n < 2) return 1.0;
  double local_sum = 0.0;
  double remote_sum = 0.0;
  int remote_count = 0;
  for (NodeId c = 0; c < n; ++c) {
    local_sum += access_latency(c, c);
    for (NodeId d = 0; d < n; ++d) {
      if (c != d) {
        remote_sum += access_latency(c, d);
        ++remote_count;
      }
    }
  }
  const double local_mean = local_sum / n;
  const double remote_mean = remote_sum / remote_count;
  return remote_mean / local_mean;
}

double LatencyModel::max_numa_factor() const {
  const int n = routing_.topology().num_nodes();
  if (n < 2) return 1.0;
  double local_sum = 0.0;
  sim::Ns worst = 0.0;
  for (NodeId c = 0; c < n; ++c) {
    local_sum += access_latency(c, c);
    for (NodeId d = 0; d < n; ++d) {
      if (c != d) worst = std::max(worst, access_latency(c, d));
    }
  }
  return worst / (local_sum / n);
}

}  // namespace numaio::topo
