#include "topo/routing.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <tuple>

namespace numaio::topo {

namespace {

/// Dijkstra from `src` with deterministic tie-breaking: order candidate
/// labels by (cost, hops, path-so-far lexicographic). With at most a few
/// dozen nodes per host, the O(n^2) scan is plenty.
struct Label {
  double cost = std::numeric_limits<double>::infinity();
  int hops = 0;
  std::vector<NodeId> path;
  bool settled = false;
};

bool better(double cost, int hops, const std::vector<NodeId>& path,
            const Label& incumbent) {
  constexpr double kEps = 1e-12;
  if (cost < incumbent.cost - kEps) return true;
  if (cost > incumbent.cost + kEps) return false;
  if (hops != incumbent.hops) return hops < incumbent.hops;
  return path < incumbent.path;
}

}  // namespace

Routing::Routing(const Topology& topo, Metric metric) : topo_(topo) {
  const int n = topo.num_nodes();
  routes_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  latencies_.assign(routes_.size(), 0.0);

  for (NodeId src = 0; src < n; ++src) {
    std::vector<Label> label(static_cast<std::size_t>(n));
    auto& l0 = label[static_cast<std::size_t>(src)];
    l0.cost = 0.0;
    l0.hops = 0;
    l0.path = {src};

    for (int round = 0; round < n; ++round) {
      // Pick the unsettled node with the best label.
      NodeId u = -1;
      for (NodeId v = 0; v < n; ++v) {
        auto& lv = label[static_cast<std::size_t>(v)];
        if (lv.settled || lv.path.empty()) continue;
        if (u < 0 || better(lv.cost, lv.hops, lv.path,
                            label[static_cast<std::size_t>(u)])) {
          u = v;
        }
      }
      if (u < 0) break;
      auto& lu = label[static_cast<std::size_t>(u)];
      lu.settled = true;

      for (NodeId v : topo.neighbors(u)) {
        auto& lv = label[static_cast<std::size_t>(v)];
        if (lv.settled) continue;
        const int li = topo.link_index(u, v);
        assert(li >= 0);
        const LinkSpec& link = topo.links()[static_cast<std::size_t>(li)];
        const double edge =
            metric == Metric::kHops ? 1.0 : link.latency_ns;
        std::vector<NodeId> cand = lu.path;
        cand.push_back(v);
        if (better(lu.cost + edge, lu.hops + 1, cand, lv)) {
          lv.cost = lu.cost + edge;
          lv.hops = lu.hops + 1;
          lv.path = std::move(cand);
        }
      }
    }

    for (NodeId dst = 0; dst < n; ++dst) {
      auto& l = label[static_cast<std::size_t>(dst)];
      assert(!l.path.empty() && "topology is validated connected");
      sim::Ns lat = 0.0;
      for (std::size_t i = 0; i + 1 < l.path.size(); ++i) {
        const int li = topo.link_index(l.path[i], l.path[i + 1]);
        lat += topo.links()[static_cast<std::size_t>(li)].latency_ns;
      }
      latencies_[idx(src, dst)] = lat;
      routes_[idx(src, dst)] = Route{std::move(l.path)};
    }
  }
}

const Route& Routing::route(NodeId src, NodeId dst) const {
  assert(src >= 0 && src < topo_.num_nodes());
  assert(dst >= 0 && dst < topo_.num_nodes());
  return routes_[idx(src, dst)];
}

int Routing::hop_distance(NodeId src, NodeId dst) const {
  return route(src, dst).hops();
}

sim::Ns Routing::path_latency(NodeId src, NodeId dst) const {
  assert(src >= 0 && src < topo_.num_nodes());
  assert(dst >= 0 && dst < topo_.num_nodes());
  return latencies_[idx(src, dst)];
}

std::vector<std::vector<int>> Routing::hop_matrix() const {
  const int n = topo_.num_nodes();
  std::vector<std::vector<int>> m(static_cast<std::size_t>(n),
                                  std::vector<int>(static_cast<std::size_t>(n), 0));
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      m[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)] =
          hop_distance(s, d);
    }
  }
  return m;
}

int Routing::diameter() const {
  int best = 0;
  const int n = topo_.num_nodes();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      best = std::max(best, hop_distance(s, d));
    }
  }
  return best;
}

double Routing::mean_remote_hops() const {
  const int n = topo_.num_nodes();
  if (n < 2) return 0.0;
  double sum = 0.0;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s != d) sum += hop_distance(s, d);
    }
  }
  return sum / (static_cast<double>(n) * (n - 1));
}

}  // namespace numaio::topo
