// Memory access latency model and the "NUMA factor" metric of Table I.
//
// The paper defines the NUMA factor as the ratio of remote to local access
// latency. We model an access from a CPU on node c to memory on node m as
//   local DRAM latency + routed link latency (both ways counted once: the
//   request/response round trip is folded into per-link latency_ns) +
//   a per-hop router/coherence overhead.
#pragma once

#include <vector>

#include "topo/routing.h"

namespace numaio::topo {

struct LatencyParams {
  sim::Ns local_dram_ns = 100.0;  ///< Latency of a local memory access.
  sim::Ns per_hop_router_ns = 0.0; ///< Extra per traversed link (coherence
                                   ///< directory / crossbar overhead).
};

class LatencyModel {
 public:
  LatencyModel(const Routing& routing, LatencyParams params)
      : routing_(routing), params_(params) {}

  /// Latency for a CPU on `cpu_node` to access memory on `mem_node`.
  sim::Ns access_latency(NodeId cpu_node, NodeId mem_node) const;

  /// n x n latency matrix.
  std::vector<std::vector<sim::Ns>> matrix() const;

  /// Mean remote latency / mean local latency (Table I's metric).
  double numa_factor() const;

  /// Worst-case remote latency / mean local latency.
  double max_numa_factor() const;

 private:
  const Routing& routing_;
  LatencyParams params_;
};

}  // namespace numaio::topo
