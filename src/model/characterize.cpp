#include "model/characterize.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "simcore/status.h"

namespace numaio::model {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw StatusError(StatusCode::kParse, "host model line " +
                                            std::to_string(line) + ": " +
                                            what);
}

const char* dir_name(Direction dir) {
  return dir == Direction::kDeviceWrite ? "write" : "read";
}

/// Rebuilds class statistics (avg/range/class_of) from memberships plus
/// the model's bandwidth vector.
Classification rebuild_classification(
    const std::vector<std::vector<NodeId>>& members,
    const std::vector<sim::Gbps>& bw) {
  Classification c;
  c.classes = members;
  c.class_of.assign(bw.size(), 0);
  for (std::size_t cls = 0; cls < members.size(); ++cls) {
    double sum = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = 0.0;
    for (NodeId v : members[cls]) {
      const double value = bw[static_cast<std::size_t>(v)];
      sum += value;
      lo = std::min(lo, value);
      hi = std::max(hi, value);
      c.class_of[static_cast<std::size_t>(v)] = static_cast<int>(cls);
    }
    c.class_avg.push_back(sum / static_cast<double>(members[cls].size()));
    c.class_range.emplace_back(lo, hi);
  }
  return c;
}

}  // namespace

HostModel characterize_host(nm::Host& host,
                            const CharacterizeConfig& config) {
  obs::Context* obs = config.iomodel.obs;
  obs::SpanId span = 0;
  if (obs != nullptr) {
    obs->metrics.add(obs->metrics.counter("characterize.hosts"));
    if (obs->trace.enabled()) {
      obs::EventFields fields;
      fields.detail = host.machine().profile().name;
      span = obs->trace.begin_span("characterize.host",
                                   config.iomodel.obs_parent, fields);
    }
  }
  IoModelConfig iomodel = config.iomodel;
  iomodel.obs_parent = span;

  HostModel model;
  model.host_name = host.machine().profile().name;
  model.num_nodes = host.num_configured_nodes();
  const topo::Topology& topo = host.machine().topology();
  for (NodeId target = 0; target < model.num_nodes; ++target) {
    model.write_models.push_back(build_iomodel(
        host, target, Direction::kDeviceWrite, iomodel));
    model.read_models.push_back(build_iomodel(
        host, target, Direction::kDeviceRead, iomodel));
    model.write_classes.push_back(
        classify(model.write_models.back(), topo, config.classify));
    model.read_classes.push_back(
        classify(model.read_models.back(), topo, config.classify));
  }
  if (obs != nullptr && obs->trace.enabled()) {
    bool degraded = false;
    for (const IoModelResult& m : model.write_models) degraded |= m.degraded;
    for (const IoModelResult& m : model.read_models) degraded |= m.degraded;
    obs->trace.end_span(span, degraded ? "degraded" : "ok");
  }
  return model;
}

int best_remote_class(const HostModel& model, NodeId device_node,
                      Direction dir) {
  const Classification& c = model.classes_for(device_node, dir);
  assert(c.num_classes() >= 1);
  int best = -1;
  for (int cls = 1; cls < c.num_classes(); ++cls) {
    if (best < 0 || c.class_avg[static_cast<std::size_t>(cls)] >
                        c.class_avg[static_cast<std::size_t>(best)]) {
      best = cls;
    }
  }
  return best < 0 ? 0 : best;
}

DriftReport check_drift(nm::Host& host, HostModel& model, NodeId target,
                        Direction dir, const DriftConfig& config) {
  DriftReport report;
  const IoModelResult& stored = model.model_for(target, dir);
  const Classification& classes = model.classes_for(target, dir);

  obs::Context* obs = config.iomodel.obs;
  obs::TraceRecorder* trace =
      obs != nullptr && obs->trace.enabled() ? &obs->trace : nullptr;
  const auto m_drift_flags =
      obs != nullptr ? obs->metrics.counter("characterize.drift_flags")
                     : obs::MetricsRegistry::kNone;

  // One fresh measurement run covers every class's representative.
  const IoModelResult fresh = build_iomodel(host, target, dir, config.iomodel);

  for (int cls = 0; cls < classes.num_classes(); ++cls) {
    const NodeId probe =
        classes.classes[static_cast<std::size_t>(cls)].front();
    const auto p = static_cast<std::size_t>(probe);
    char buf[160];
    if (p < fresh.outcomes.size() && !fresh.outcomes[p].ok) {
      // An aborted probe is no evidence of drift — just of a bad day.
      std::snprintf(buf, sizeof buf,
                    "class %d node %d probe aborted (%d retries)", cls,
                    probe, fresh.outcomes[p].retries);
      report.notes.emplace_back(buf);
      if (trace != nullptr) {
        obs::EventFields fields;
        fields.node_a = probe;
        fields.node_b = target;
        fields.detail = report.notes.back();
        trace->event("drift.probe", config.iomodel.obs_parent, 0, "aborted",
                     fields);
      }
      continue;
    }
    const double old_bw = stored.bw[p];
    const double new_bw = fresh.bw[p];
    const double rel = old_bw > 0.0
                           ? std::abs(new_bw - old_bw) / old_bw
                           : std::numeric_limits<double>::infinity();
    // Boundary check: a probe may drift within tolerance of its own old
    // value yet land inside another class's bandwidth band — that moves a
    // class boundary, which is what placement decisions key off.
    const auto [lo, hi] = classes.class_range[static_cast<std::size_t>(cls)];
    const bool outside_class = new_bw < lo * (1.0 - config.rel_tolerance) ||
                               new_bw > hi * (1.0 + config.rel_tolerance);
    const bool moved = rel > config.rel_tolerance || outside_class;
    std::snprintf(buf, sizeof buf,
                  "class %d node %d: %9.3f -> %9.3f Gbps (%+.1f%%)%s", cls,
                  probe, old_bw, new_bw, 100.0 * (new_bw - old_bw) / old_bw,
                  moved ? " DRIFT" : "");
    report.notes.emplace_back(buf);
    if (moved) {
      report.drifted = true;
      if (obs != nullptr) obs->metrics.add(m_drift_flags);
    }
    if (trace != nullptr) {
      obs::EventFields fields;
      fields.node_a = probe;
      fields.node_b = target;
      fields.detail = report.notes.back();
      trace->event("drift.probe", config.iomodel.obs_parent, 0,
                   moved ? "drift" : "steady", fields);
    }
  }
  if (report.drifted) model.stale = true;
  return report;
}

bool refresh_if_drifted(nm::Host& host, HostModel& model,
                        const CharacterizeConfig& config,
                        const DriftConfig& drift) {
  bool drifted = false;
  for (NodeId target = 0; target < model.num_nodes; ++target) {
    drifted |= check_drift(host, model, target, Direction::kDeviceWrite,
                           drift).drifted;
    drifted |= check_drift(host, model, target, Direction::kDeviceRead,
                           drift).drifted;
  }
  if (!drifted) return false;
  const int revision = model.revision;
  model = characterize_host(host, config);
  model.revision = revision + 1;
  model.stale = false;
  if (obs::Context* obs = config.iomodel.obs; obs != nullptr) {
    obs->metrics.add(obs->metrics.counter("model.refreshes"));
    if (obs->trace.enabled()) {
      obs::EventFields fields;
      fields.detail = "revision " + std::to_string(model.revision);
      obs->trace.event("model.refresh", config.iomodel.obs_parent, 0,
                       "refreshed", fields);
    }
  }
  return true;
}

std::string serialize(const HostModel& model) {
  std::ostringstream out;
  out << "numaio-model v1\n";
  out << "host " << model.host_name << " nodes " << model.num_nodes << '\n';
  if (model.revision != 1 || model.stale) {
    out << "status " << model.revision << ' '
        << (model.stale ? "stale" : "fresh") << '\n';
  }
  auto emit = [&](const IoModelResult& m, const Classification& c,
                  Direction dir) {
    out << "model " << m.target << ' ' << dir_name(dir);
    out << std::setprecision(17);
    for (double v : m.bw) out << ' ' << v;
    out << '\n';
    out << "classes " << m.target << ' ' << dir_name(dir) << ' '
        << c.num_classes();
    for (const auto& cls : c.classes) {
      out << " {";
      for (NodeId v : cls) out << ' ' << v;
      out << " }";
    }
    out << '\n';
  };
  for (int t = 0; t < model.num_nodes; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    emit(model.write_models[ti], model.write_classes[ti],
         Direction::kDeviceWrite);
    emit(model.read_models[ti], model.read_classes[ti],
         Direction::kDeviceRead);
  }
  out << "end\n";
  return out.str();
}

HostModel parse_host_model(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty()) return true;
    }
    return false;
  };

  if (!next_line() || line != "numaio-model v1") {
    fail(line_no, "expected header 'numaio-model v1'");
  }
  if (!next_line()) fail(line_no, "missing host line");
  HostModel model;
  {
    std::istringstream ls(line);
    std::string kw, nodes_kw;
    if (!(ls >> kw >> model.host_name >> nodes_kw >> model.num_nodes) ||
        kw != "host" || nodes_kw != "nodes" || model.num_nodes <= 0) {
      fail(line_no, "malformed host line");
    }
  }
  const auto n = static_cast<std::size_t>(model.num_nodes);
  model.write_models.resize(n);
  model.read_models.resize(n);
  model.write_classes.resize(n);
  model.read_classes.resize(n);
  std::vector<bool> seen_model(2 * n, false);
  std::vector<bool> seen_classes(2 * n, false);

  while (next_line() && line != "end") {
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    if (kw == "status") {
      std::string state;
      if (!(ls >> model.revision >> state) || model.revision < 1 ||
          (state != "fresh" && state != "stale")) {
        fail(line_no, "malformed status line");
      }
      model.stale = state == "stale";
      continue;
    }
    int target = -1;
    std::string dir;
    if (!(ls >> target >> dir) || target < 0 || target >= model.num_nodes ||
        (dir != "write" && dir != "read")) {
      fail(line_no, "malformed record header");
    }
    const bool write = dir == "write";
    const std::size_t slot =
        static_cast<std::size_t>(target) * 2 + (write ? 0 : 1);
    if (kw == "model") {
      IoModelResult m;
      m.target = target;
      m.direction = write ? Direction::kDeviceWrite : Direction::kDeviceRead;
      double v = 0.0;
      while (ls >> v) {
        if (v <= 0.0) fail(line_no, "non-positive bandwidth");
        m.bw.push_back(v);
      }
      if (static_cast<int>(m.bw.size()) != model.num_nodes) {
        fail(line_no, "bandwidth count mismatch");
      }
      (write ? model.write_models : model.read_models)[static_cast<std::size_t>(target)] =
          std::move(m);
      seen_model[slot] = true;
    } else if (kw == "classes") {
      if (!seen_model[slot]) {
        fail(line_no, "classes before their model record");
      }
      int k = 0;
      if (!(ls >> k) || k <= 0) fail(line_no, "bad class count");
      std::vector<std::vector<NodeId>> members;
      std::string tok;
      while (ls >> tok) {
        if (tok == "{") {
          members.emplace_back();
        } else if (tok == "}") {
          if (members.empty() || members.back().empty()) {
            fail(line_no, "empty class");
          }
        } else {
          if (members.empty()) fail(line_no, "node outside class braces");
          try {
            members.back().push_back(std::stoi(tok));
          } catch (const std::exception&) {
            fail(line_no, "bad node id '" + tok + "'");
          }
          if (members.back().back() < 0 ||
              members.back().back() >= model.num_nodes) {
            fail(line_no, "node id out of range");
          }
        }
      }
      if (static_cast<int>(members.size()) != k) {
        fail(line_no, "class count mismatch");
      }
      // Every node appears exactly once.
      std::vector<int> count(n, 0);
      for (const auto& cls : members) {
        for (NodeId v : cls) ++count[static_cast<std::size_t>(v)];
      }
      for (int c : count) {
        if (c != 1) fail(line_no, "classes must partition the nodes");
      }
      const auto& bw =
          (write ? model.write_models : model.read_models)[static_cast<std::size_t>(target)].bw;
      (write ? model.write_classes
             : model.read_classes)[static_cast<std::size_t>(target)] =
          rebuild_classification(members, bw);
      seen_classes[slot] = true;
    } else {
      fail(line_no, "unknown record '" + kw + "'");
    }
  }
  if (line != "end") fail(line_no, "missing 'end'");
  for (std::size_t s = 0; s < 2 * n; ++s) {
    if (!seen_model[s] || !seen_classes[s]) {
      fail(line_no, "incomplete model: missing records");
    }
  }
  return model;
}

HostModel load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw StatusError(StatusCode::kNoFile, "cannot read '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_host_model(text.str());  // throws StatusError kParse
}

void save_model(const HostModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw StatusError(StatusCode::kNoFile, "cannot write '" + path + "'");
  }
  out << serialize(model);
  out.flush();
  if (!out) {
    throw StatusError(StatusCode::kNoFile, "failed writing '" + path + "'");
  }
}

}  // namespace numaio::model
