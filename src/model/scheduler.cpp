#include "model/scheduler.h"

#include <algorithm>
#include <cassert>

namespace numaio::model {

Placement schedule_spread(const Classification& classes,
                          std::span<const sim::Gbps> class_values,
                          int num_processes, const SpreadConfig& config) {
  assert(num_processes > 0);
  assert(static_cast<int>(class_values.size()) == classes.num_classes());

  const double best =
      *std::max_element(class_values.begin(), class_values.end());

  std::vector<NodeId> pool;
  for (int c = 0; c < classes.num_classes(); ++c) {
    if (class_values[static_cast<std::size_t>(c)] >=
        best * (1.0 - config.class_tolerance)) {
      const auto& members = classes.classes[static_cast<std::size_t>(c)];
      pool.insert(pool.end(), members.begin(), members.end());
    }
  }
  assert(!pool.empty());
  std::sort(pool.begin(), pool.end());

  Placement p;
  p.nodes.reserve(static_cast<std::size_t>(num_processes));
  for (int i = 0; i < num_processes; ++i) {
    p.nodes.push_back(pool[static_cast<std::size_t>(i) % pool.size()]);
  }
  return p;
}

Placement schedule_all_local(NodeId device_node, int num_processes) {
  assert(num_processes > 0);
  Placement p;
  p.nodes.assign(static_cast<std::size_t>(num_processes), device_node);
  return p;
}

namespace {

/// Round-robin over the best hop class (local + package neighbour).
Placement spread_by_hops(const topo::Topology& topo, NodeId target,
                         int num_processes) {
  const Classification hops = classify_by_hops(topo, target);
  std::vector<NodeId> pool = hops.classes.front();
  std::sort(pool.begin(), pool.end());
  Placement p;
  p.nodes.reserve(static_cast<std::size_t>(num_processes));
  for (int i = 0; i < num_processes; ++i) {
    p.nodes.push_back(pool[static_cast<std::size_t>(i) % pool.size()]);
  }
  return p;
}

/// First reason the model is unusable for placing against `target`, or ""
/// when it is healthy.
std::string model_unusable_reason(const HostModel& model, NodeId target,
                                  Direction dir,
                                  std::span<const sim::Gbps> class_values,
                                  const RobustScheduleConfig& config) {
  if (model.stale) return "model marked stale";
  if (target < 0 || target >= model.num_nodes) {
    return "target outside the model";
  }
  const IoModelResult& m = model.model_for(target, dir);
  const Classification& c = model.classes_for(target, dir);
  for (sim::Gbps v : m.bw) {
    if (!(v > 0.0)) return "model holds non-positive bandwidth";
  }
  // A model parsed from disk carries no outcomes; absence means the
  // measurements completed cleanly when they were taken.
  for (const sim::MeasurementOutcome& o : m.outcomes) {
    if (!o.ok) return "a model probe aborted";
    if (o.confidence < config.min_confidence) {
      return "a model probe reported low confidence";
    }
  }
  if (static_cast<int>(class_values.size()) != c.num_classes()) {
    return "class value count mismatch";
  }
  bool any_positive = false;
  for (sim::Gbps v : class_values) {
    if (v > 0.0) any_positive = true;
  }
  if (!any_positive) return "no usable class probe values";
  return "";
}

}  // namespace

RobustPlacement schedule_robust(const HostModel& model,
                                const topo::Topology& topo, NodeId target,
                                Direction dir,
                                std::span<const sim::Gbps> class_values,
                                int num_processes,
                                const RobustScheduleConfig& config) {
  assert(num_processes > 0);
  RobustPlacement result;
  result.reason =
      model_unusable_reason(model, target, dir, class_values, config);
  if (result.reason.empty()) {
    result.placement =
        schedule_spread(model.classes_for(target, dir), class_values,
                        num_processes, config.spread);
  } else {
    result.used_fallback = true;
    result.placement = spread_by_hops(topo, target, num_processes);
  }
  if (obs::Context* obs = config.obs; obs != nullptr) {
    obs->metrics.add(obs->metrics.counter("sched.placements"));
    if (result.used_fallback) {
      obs->metrics.add(obs->metrics.counter("sched.fallbacks"));
    }
    if (obs->trace.enabled()) {
      obs::EventFields fields;
      fields.node_a = target;
      fields.dir = dir == Direction::kDeviceWrite ? 'w' : 'r';
      fields.detail = result.reason;
      obs->trace.event("sched.place", config.obs_parent, 0,
                       result.used_fallback ? "fallback" : "model", fields);
    }
  }
  return result;
}

}  // namespace numaio::model
