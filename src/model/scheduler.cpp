#include "model/scheduler.h"

#include <algorithm>
#include <cassert>

namespace numaio::model {

Placement schedule_spread(const Classification& classes,
                          std::span<const sim::Gbps> class_values,
                          int num_processes, const SpreadConfig& config) {
  assert(num_processes > 0);
  assert(static_cast<int>(class_values.size()) == classes.num_classes());

  const double best =
      *std::max_element(class_values.begin(), class_values.end());

  std::vector<NodeId> pool;
  for (int c = 0; c < classes.num_classes(); ++c) {
    if (class_values[static_cast<std::size_t>(c)] >=
        best * (1.0 - config.class_tolerance)) {
      const auto& members = classes.classes[static_cast<std::size_t>(c)];
      pool.insert(pool.end(), members.begin(), members.end());
    }
  }
  assert(!pool.empty());
  std::sort(pool.begin(), pool.end());

  Placement p;
  p.nodes.reserve(static_cast<std::size_t>(num_processes));
  for (int i = 0; i < num_processes; ++i) {
    p.nodes.push_back(pool[static_cast<std::size_t>(i) % pool.size()]);
  }
  return p;
}

Placement schedule_all_local(NodeId device_node, int num_processes) {
  assert(num_processes > 0);
  Placement p;
  p.nodes.assign(static_cast<std::size_t>(num_processes), device_node);
  return p;
}

}  // namespace numaio::model
