#include "model/classify.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace numaio::model {

Classification classify(const IoModelResult& model,
                        const topo::Topology& topo,
                        const ClassifyConfig& config) {
  return classify_values(model.bw, model.target, topo, config);
}

Classification classify_values(std::span<const sim::Gbps> bw, NodeId target,
                               const topo::Topology& topo,
                               const ClassifyConfig& config) {
  const int n = static_cast<int>(bw.size());
  assert(n == topo.num_nodes());
  assert(target >= 0 && target < n);

  Classification result;

  // Class 1: the target and its package neighbors, unconditionally.
  std::vector<NodeId> first{target};
  for (NodeId peer : topo.package_peers(target)) first.push_back(peer);
  std::sort(first.begin(), first.end());
  std::vector<bool> in_first(static_cast<std::size_t>(n), false);
  for (NodeId v : first) in_first[static_cast<std::size_t>(v)] = true;

  // Remote nodes cluster by the shared gap walk (ids ascend, so each
  // class collects its members in sorted order directly).
  std::vector<NodeId> remote;
  std::vector<double> remote_bw;
  for (NodeId v = 0; v < n; ++v) {
    if (in_first[static_cast<std::size_t>(v)]) continue;
    remote.push_back(v);
    remote_bw.push_back(bw[static_cast<std::size_t>(v)]);
  }
  const std::vector<int> remote_class = gap_classes(remote_bw, config.rel_gap);

  result.classes.push_back(std::move(first));
  int remote_classes = 0;
  for (const int c : remote_class) remote_classes = std::max(remote_classes, c + 1);
  result.classes.resize(1 + static_cast<std::size_t>(remote_classes));
  for (std::size_t i = 0; i < remote.size(); ++i) {
    result.classes[1 + static_cast<std::size_t>(remote_class[i])].push_back(
        remote[i]);
  }

  result.class_of.assign(static_cast<std::size_t>(n), 0);
  for (int c = 0; c < result.num_classes(); ++c) {
    double sum = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = 0.0;
    for (NodeId v : result.classes[static_cast<std::size_t>(c)]) {
      result.class_of[static_cast<std::size_t>(v)] = c;
      const double value = bw[static_cast<std::size_t>(v)];
      sum += value;
      lo = std::min(lo, value);
      hi = std::max(hi, value);
    }
    result.class_avg.push_back(
        sum / static_cast<double>(
                  result.classes[static_cast<std::size_t>(c)].size()));
    result.class_range.emplace_back(lo, hi);
  }
  return result;
}

std::vector<int> gap_classes(std::span<const double> values, double rel_gap) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (values[a] != values[b]) return values[a] > values[b];
    return a < b;
  });
  std::vector<int> class_of(n, 0);
  int cls = 0;
  double prev = std::numeric_limits<double>::infinity();
  bool first = true;
  for (const std::size_t pos : order) {
    const double value = values[pos];
    if (!first && value < prev * (1.0 - rel_gap)) ++cls;
    class_of[pos] = cls;
    prev = value;
    first = false;
  }
  return class_of;
}

std::vector<NodeId> representative_nodes(const Classification& c) {
  std::vector<NodeId> reps;
  reps.reserve(c.classes.size());
  for (const auto& cls : c.classes) {
    assert(!cls.empty());
    reps.push_back(cls.front());
  }
  return reps;
}

}  // namespace numaio::model
