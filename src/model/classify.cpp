#include "model/classify.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace numaio::model {

Classification classify(const IoModelResult& model,
                        const topo::Topology& topo,
                        const ClassifyConfig& config) {
  return classify_values(model.bw, model.target, topo, config);
}

Classification classify_values(std::span<const sim::Gbps> bw, NodeId target,
                               const topo::Topology& topo,
                               const ClassifyConfig& config) {
  const int n = static_cast<int>(bw.size());
  assert(n == topo.num_nodes());
  assert(target >= 0 && target < n);

  Classification result;

  // Class 1: the target and its package neighbors, unconditionally.
  std::vector<NodeId> first{target};
  for (NodeId peer : topo.package_peers(target)) first.push_back(peer);
  std::sort(first.begin(), first.end());
  std::vector<bool> in_first(static_cast<std::size_t>(n), false);
  for (NodeId v : first) in_first[static_cast<std::size_t>(v)] = true;

  // Remote nodes, sorted by descending model bandwidth (ties: lower id).
  std::vector<NodeId> remote;
  for (NodeId v = 0; v < n; ++v) {
    if (!in_first[static_cast<std::size_t>(v)]) remote.push_back(v);
  }
  std::sort(remote.begin(), remote.end(), [&](NodeId a, NodeId b) {
    const double ba = bw[static_cast<std::size_t>(a)];
    const double bb = bw[static_cast<std::size_t>(b)];
    if (ba != bb) return ba > bb;
    return a < b;
  });

  result.classes.push_back(std::move(first));
  std::vector<NodeId> current;
  double prev = std::numeric_limits<double>::infinity();
  for (NodeId v : remote) {
    const double value = bw[static_cast<std::size_t>(v)];
    if (!current.empty() && value < prev * (1.0 - config.rel_gap)) {
      std::sort(current.begin(), current.end());
      result.classes.push_back(std::move(current));
      current = {};
    }
    current.push_back(v);
    prev = value;
  }
  if (!current.empty()) {
    std::sort(current.begin(), current.end());
    result.classes.push_back(std::move(current));
  }

  result.class_of.assign(static_cast<std::size_t>(n), 0);
  for (int c = 0; c < result.num_classes(); ++c) {
    double sum = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = 0.0;
    for (NodeId v : result.classes[static_cast<std::size_t>(c)]) {
      result.class_of[static_cast<std::size_t>(v)] = c;
      const double value = bw[static_cast<std::size_t>(v)];
      sum += value;
      lo = std::min(lo, value);
      hi = std::max(hi, value);
    }
    result.class_avg.push_back(
        sum / static_cast<double>(
                  result.classes[static_cast<std::size_t>(c)].size()));
    result.class_range.emplace_back(lo, hi);
  }
  return result;
}

std::vector<NodeId> representative_nodes(const Classification& c) {
  std::vector<NodeId> reps;
  reps.reserve(c.classes.size());
  for (const auto& cls : c.classes) {
    assert(!cls.empty());
    reps.push_back(cls.front());
  }
  return reps;
}

}  // namespace numaio::model
