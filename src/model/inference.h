// Topology inference from bandwidth measurements — and why it fails.
//
// §IV-A tries to reverse-engineer the host's wiring from the STREAM
// matrix: if hop distance governed cost, the per-source bandwidth ranking
// would reveal neighbors (fastest), one-hop, and two-hop nodes, and the
// resulting graph would match one of the Figure-1 layouts. On the real
// host it matches none of them, and the matrix is not even symmetric —
// the paper's first argument that hop distance is the wrong metric.
// This module implements that analysis so the failure is demonstrable.
#pragma once

#include <string>
#include <vector>

#include "mem/membench.h"
#include "topo/routing.h"

namespace numaio::model {

/// How well hop distances under `topo` explain `bw`: the fraction of
/// comparable destination pairs (same source, different hop counts) where
/// fewer hops coincides with higher bandwidth.
double hop_explanation_score(const mem::BandwidthMatrix& bw,
                             const topo::Topology& topo);

struct TopologyFit {
  std::string variant_name;
  double score = 0.0;  ///< hop_explanation_score against that layout.
};

/// Scores the measured matrix against each Figure-1 Magny-Cours layout
/// (a-d), best first.
std::vector<TopologyFit> fit_magny_cours_variants(
    const mem::BandwidthMatrix& bw);

/// Mean relative asymmetry: avg over i<j of |bw(i,j) - bw(j,i)| /
/// mean(bw(i,j), bw(j,i)). Any undirected-topology explanation of the
/// matrix requires this to be ~0; the paper's host (and our calibrated
/// fabric) violate it.
double asymmetry_index(const mem::BandwidthMatrix& bw);

/// Greedy neighbor inference: for each source, the highest-bandwidth
/// remote destination is declared a directly-linked neighbor. Returns the
/// inferred adjacency (pairs), which on the calibrated host contradicts
/// the nominal wiring.
std::vector<std::pair<topo::NodeId, topo::NodeId>> infer_adjacency(
    const mem::BandwidthMatrix& bw);

}  // namespace numaio::model
