// Multi-user aggregate-bandwidth prediction — Equation 1 of §V-B.
//
// When an I/O device serves requests from several NUMA nodes at once, the
// expected aggregate is the class-average bandwidth weighted by each
// class's share of the traffic:
//     BW_io = sum_i alpha_i% * BW_i
// The paper validates this with 2 RDMA_READ processes on node 2 (class 2)
// plus 2 on node 0 (class 3): predicted 20.017 Gbps vs measured
// 19.415 Gbps, a 3.1% relative error.
#pragma once

#include <span>
#include <utility>

#include "model/classify.h"

namespace numaio::model {

/// A traffic mix entry: fraction of accesses coming from `class_index`.
struct ClassShare {
  int class_index = 0;
  double fraction = 0.0;  ///< alpha_i as a fraction (not percent).
};

/// Eq. 1 with per-class bandwidths taken from `class_values` (one value per
/// class, e.g. measured I/O averages of the representative nodes).
sim::Gbps predict_aggregate(std::span<const sim::Gbps> class_values,
                            std::span<const ClassShare> shares);

/// Convenience: predict for a set of process bindings, each contributing an
/// equal traffic share. `bindings` holds (node, process count).
sim::Gbps predict_for_bindings(
    const Classification& classes, std::span<const sim::Gbps> class_values,
    std::span<const std::pair<NodeId, int>> bindings);

/// |predicted - measured| / measured, as a fraction (the paper's epsilon).
double relative_error(sim::Gbps predicted, sim::Gbps measured);

}  // namespace numaio::model
