#include "model/predictor.h"

#include <cassert>
#include <cmath>

namespace numaio::model {

sim::Gbps predict_aggregate(std::span<const sim::Gbps> class_values,
                            std::span<const ClassShare> shares) {
  double total_fraction = 0.0;
  double sum = 0.0;
  for (const ClassShare& s : shares) {
    assert(s.class_index >= 0 &&
           s.class_index < static_cast<int>(class_values.size()));
    assert(s.fraction >= 0.0);
    sum += s.fraction * class_values[static_cast<std::size_t>(s.class_index)];
    total_fraction += s.fraction;
  }
  assert(std::abs(total_fraction - 1.0) < 1e-9 &&
         "traffic shares must sum to 1");
  return sum;
}

sim::Gbps predict_for_bindings(
    const Classification& classes, std::span<const sim::Gbps> class_values,
    std::span<const std::pair<NodeId, int>> bindings) {
  int total = 0;
  for (const auto& [node, count] : bindings) {
    assert(count > 0);
    (void)node;
    total += count;
  }
  assert(total > 0);
  std::vector<ClassShare> shares;
  shares.reserve(bindings.size());
  for (const auto& [node, count] : bindings) {
    shares.push_back(ClassShare{
        classes.class_of[static_cast<std::size_t>(node)],
        static_cast<double>(count) / static_cast<double>(total)});
  }
  return predict_aggregate(class_values, shares);
}

double relative_error(sim::Gbps predicted, sim::Gbps measured) {
  assert(measured > 0.0);
  return std::abs(predicted - measured) / measured;
}

}  // namespace numaio::model
