#include "model/workload.h"

#include <cassert>
#include <cmath>

#include "simcore/rng.h"

namespace numaio::model {

std::vector<IoTask> generate_workload(const WorkloadConfig& config) {
  assert(config.num_tasks > 0);
  assert(!config.engine_mix.empty());
  assert(config.min_bytes > 0 && config.min_bytes <= config.max_bytes);

  sim::Rng rng(config.seed);
  std::vector<IoTask> tasks;
  tasks.reserve(static_cast<std::size_t>(config.num_tasks));
  sim::Ns clock = 0.0;
  const double log_min = std::log(static_cast<double>(config.min_bytes));
  const double log_max = std::log(static_cast<double>(config.max_bytes));
  for (int i = 0; i < config.num_tasks; ++i) {
    // Exponential interarrival via inverse transform.
    const double u = rng.uniform();
    clock += -config.mean_interarrival * std::log(1.0 - u);

    IoTask task;
    task.arrival = clock;
    task.engine = config.engine_mix[rng.below(config.engine_mix.size())];
    // Log-uniform sizes: bulk-transfer workloads span orders of magnitude.
    task.bytes = static_cast<sim::Bytes>(
        std::exp(rng.uniform(log_min, log_max)));
    tasks.push_back(std::move(task));
  }
  return tasks;
}

}  // namespace numaio::model
