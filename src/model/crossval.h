// Benchmark cross-validation — the cbench approach ([18], [27], discussed
// in §IV-B): build a memory cost model from one benchmark, then confirm it
// against others. cross_validate() runs every memory benchmark in the
// toolkit over the full (cpu node x memory node) space and computes the
// pairwise rank agreement of the resulting matrices. Benchmarks in the
// same agreement cluster can stand in for each other; the paper's point is
// that *no* memory-side cluster covers the I/O engines — which is why the
// iomodel methodology exists.
#pragma once

#include <string>
#include <vector>

#include "nm/host.h"

namespace numaio::model {

using topo::NodeId;

struct CrossValidation {
  /// Benchmark names, in matrix order.
  std::vector<std::string> names;
  /// Flattened (cpu, mem) bandwidth matrix per benchmark.
  std::vector<std::vector<double>> cells;
  /// Pairwise Spearman rank agreement of the flattened matrices.
  std::vector<std::vector<double>> agreement;
};

/// Runs the seven numademo modules plus STREAM Copy over every binding.
CrossValidation cross_validate(nm::Host& host);

/// Greedy agreement clustering: benchmarks join a cluster when their
/// agreement with the cluster's seed is at least `threshold`. Returns
/// index groups ordered by seed appearance.
std::vector<std::vector<int>> agreement_clusters(const CrossValidation& cv,
                                                 double threshold);

}  // namespace numaio::model
