#include "model/analysis.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <vector>

namespace numaio::model {

namespace {

/// Average ranks (1-based), ties share the mean of their positions.
std::vector<double> ranks(std::span<const double> v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return v[x] < v[y]; });
  std::vector<double> r(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) +
                             static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg_rank;
    i = j + 1;
  }
  return r;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = a.size();
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace

double spearman(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const auto ra = ranks(a);
  const auto rb = ranks(b);
  return pearson(ra, rb);
}

double kendall_tau(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  long long concordant = 0, discordant = 0, ties_a = 0, ties_b = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      if (da == 0.0 && db == 0.0) continue;
      if (da == 0.0) {
        ++ties_a;
      } else if (db == 0.0) {
        ++ties_b;
      } else if ((da > 0.0) == (db > 0.0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = static_cast<double>(n) * (static_cast<double>(n) - 1) / 2;
  const double denom = std::sqrt((n0 - static_cast<double>(ties_a)) *
                                 (n0 - static_cast<double>(ties_b)));
  if (denom <= 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

double pairwise_agreement(std::span<const double> a,
                          std::span<const double> b) {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  long long agree = 0, comparable = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      if (da == 0.0 || db == 0.0) continue;
      ++comparable;
      if ((da > 0.0) == (db > 0.0)) ++agree;
    }
  }
  if (comparable == 0) return 0.5;
  return static_cast<double>(agree) / static_cast<double>(comparable);
}

}  // namespace numaio::model
