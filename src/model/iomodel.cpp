#include "model/iomodel.h"

#include <cassert>
#include <cmath>

#include "mem/copy.h"
#include "simcore/rng.h"

namespace numaio::model {

IoModelResult build_iomodel(nm::Host& host, NodeId target,
                            Direction direction, const IoModelConfig& config) {
  fabric::Machine& machine = host.machine();
  auto& solver = machine.solver();

  const int n = host.num_configured_nodes();          // Algorithm 1, line 1
  const int m = host.num_configured_cores() / n;      // line 2
  assert(m > 0);

  IoModelResult result;
  result.target = target;
  result.direction = direction;
  result.bw.assign(static_cast<std::size_t>(n), 0.0);

  sim::Rng master =
      sim::Rng(config.seed).fork(static_cast<std::uint64_t>(target),
                                 direction == Direction::kDeviceWrite ? 0u
                                                                      : 1u);

  for (NodeId i = 0; i < n; ++i) {                    // line 3
    const NodeId src = direction == Direction::kDeviceWrite ? i : target;
    const NodeId snk = direction == Direction::kDeviceWrite ? target : i;

    // Lines 4-10: one src/snk buffer pair per thread, placed per mode.
    std::vector<nm::Buffer> buffers;
    buffers.reserve(static_cast<std::size_t>(2 * m));
    for (int p = 0; p < m; ++p) {
      buffers.push_back(host.alloc_on_node(config.buffer_bytes, src));
      buffers.push_back(host.alloc_on_node(config.buffer_bytes, snk));
    }

    // Lines 11-14: m copy threads bound to the target node, all running
    // concurrently; each repetition records the aggregate bandwidth and
    // the average over repetitions is reported.
    mem::CopyTask task;
    task.threads_node = target;   // the simulated DMA engine
    task.src_node = src;
    task.dst_node = snk;
    task.threads = 1;
    task.engine = mem::CopyEngine::kStreaming;
    const sim::Gbps per_thread_cap = mem::copy_rate_cap(machine, task);
    const auto usages = mem::copy_usages(machine, task);

    std::vector<sim::FlowId> flows;
    flows.reserve(static_cast<std::size_t>(m));
    for (int p = 0; p < m; ++p) {
      flows.push_back(solver.add_flow(usages, per_thread_cap));
    }
    const auto rates = solver.solve();
    sim::Gbps aggregate = 0.0;
    for (sim::FlowId f : flows) aggregate += rates[f];
    for (sim::FlowId f : flows) solver.remove_flow(f);

    sim::Rng rng = master.fork(static_cast<std::uint64_t>(i));
    double sum = 0.0;
    for (int rep = 0; rep < config.repetitions; ++rep) {
      // Streaming copies are far steadier than PIO loops; the residual
      // one-sided jitter is well under 1%.
      const double slowdown = std::abs(rng.normal(0.004, 0.003));
      sum += aggregate * (1.0 - std::min(slowdown, 0.2));
    }
    result.bw[static_cast<std::size_t>(i)] =
        sum / config.repetitions;

    for (auto& b : buffers) host.free(b);
  }
  return result;
}

}  // namespace numaio::model
