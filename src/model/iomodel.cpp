#include "model/iomodel.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "mem/copy.h"
#include "simcore/rng.h"
#include "simcore/stats.h"

namespace numaio::model {

IoModelResult build_iomodel(nm::Host& host, NodeId target,
                            Direction direction, const IoModelConfig& config) {
  fabric::Machine& machine = host.machine();
  auto& solver = machine.solver();

  const int n = host.num_configured_nodes();          // Algorithm 1, line 1
  const int m = host.num_configured_cores() / n;      // line 2
  assert(m > 0);

  IoModelResult result;
  result.target = target;
  result.direction = direction;
  result.bw.assign(static_cast<std::size_t>(n), 0.0);
  result.outcomes.assign(static_cast<std::size_t>(n),
                         sim::MeasurementOutcome{});

  obs::Context* obs = config.obs;
  obs::TraceRecorder* trace =
      obs != nullptr && obs->trace.enabled() ? &obs->trace : nullptr;
  auto m_reps = obs::MetricsRegistry::kNone;
  auto m_dropped = obs::MetricsRegistry::kNone;
  auto m_retries = obs::MetricsRegistry::kNone;
  auto m_probes_aborted = obs::MetricsRegistry::kNone;
  if (obs != nullptr) {
    m_reps = obs->metrics.counter("iomodel.reps");
    m_dropped = obs->metrics.counter("iomodel.reps_dropped");
    m_retries = obs->metrics.counter("iomodel.retries");
    m_probes_aborted = obs->metrics.counter("iomodel.probes_aborted");
  }
  const char dir_char = direction == Direction::kDeviceWrite ? 'w' : 'r';
  obs::SpanId build_span = 0;
  if (trace != nullptr) {
    obs::EventFields fields;
    fields.node_a = target;
    fields.dir = dir_char;
    fields.t_sim = config.start_time;
    fields.detail = direction == Direction::kDeviceWrite ? "write-model"
                                                         : "read-model";
    build_span = trace->begin_span("iomodel.build", config.obs_parent, fields);
  }

  sim::Ns clock = config.start_time;
  sim::Rng master =
      sim::Rng(config.seed).fork(static_cast<std::uint64_t>(target),
                                 direction == Direction::kDeviceWrite ? 0u
                                                                      : 1u);

  for (NodeId i = 0; i < n; ++i) {                    // line 3
    const NodeId src = direction == Direction::kDeviceWrite ? i : target;
    const NodeId snk = direction == Direction::kDeviceWrite ? target : i;

    obs::SpanId probe_span = 0;
    if (trace != nullptr) {
      obs::EventFields fields;
      fields.node_a = src;
      fields.node_b = snk;
      fields.dir = dir_char;
      fields.t_sim = clock;
      probe_span = trace->begin_span("iomodel.probe", build_span, fields);
    }

    // Lines 4-10: one src/snk buffer pair per thread, placed per mode.
    std::vector<nm::Buffer> buffers;
    buffers.reserve(static_cast<std::size_t>(2 * m));
    for (int p = 0; p < m; ++p) {
      buffers.push_back(host.alloc_on_node(config.buffer_bytes, src));
      buffers.push_back(host.alloc_on_node(config.buffer_bytes, snk));
    }

    // Lines 11-14: m copy threads bound to the target node, all running
    // concurrently; each repetition records the aggregate bandwidth and
    // the robust average over repetitions is reported.
    mem::CopyTask task;
    task.threads_node = target;   // the simulated DMA engine
    task.src_node = src;
    task.dst_node = snk;
    task.threads = 1;
    task.engine = mem::CopyEngine::kStreaming;
    const sim::Gbps per_thread_cap = mem::copy_rate_cap(machine, task);
    const auto usages = mem::copy_usages(machine, task);

    const auto solve_aggregate = [&]() {
      std::vector<sim::FlowId> flows;
      flows.reserve(static_cast<std::size_t>(m));
      for (int p = 0; p < m; ++p) {
        flows.push_back(solver.add_flow(usages, per_thread_cap));
      }
      const auto& rates = solver.solve();
      sim::Gbps total = 0.0;
      for (sim::FlowId f : flows) total += rates[f];
      for (sim::FlowId f : flows) solver.remove_flow(f);
      return total;
    };

    faults::FaultInjector* injector = config.injector;
    // Attribute a drop/retry to the most recent fault transition only when
    // a fault (capacity or measurement noise) is actually active.
    const auto fault_cause = [&](sim::Ns t) -> obs::EventId {
      if (injector == nullptr) return 0;
      if (!injector->any_capacity_fault_active(t) &&
          injector->noise_amplification(t) <= 1.0) {
        return 0;
      }
      return injector->last_transition_event();
    };
    if (injector != nullptr) injector->advance_to(clock);
    sim::Gbps aggregate = solve_aggregate();
    std::size_t solved_at =
        injector != nullptr ? injector->transitions_applied() : 0;

    // Bits one repetition moves; at the current aggregate rate this sets
    // the rep's duration on the synthetic timeline.
    const double rep_bits = static_cast<double>(m) * 8.0 *
                            static_cast<double>(config.buffer_bytes);

    sim::Rng rng = master.fork(static_cast<std::uint64_t>(i));
    sim::Rng retry_rng = master.fork(static_cast<std::uint64_t>(i), 0x72u);
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(config.repetitions));
    int retries_total = 0;
    int aborted_reps = 0;
    for (int rep = 0; rep < config.repetitions; ++rep) {
      bool recorded = false;
      for (int attempt = 0;; ++attempt) {
        if (injector != nullptr) {
          injector->advance_to(clock);
          if (injector->transitions_applied() != solved_at) {
            // A fault boundary passed: the machine's capacities changed
            // under us, so the contention solve must be repeated.
            aggregate = solve_aggregate();
            solved_at = injector->transitions_applied();
          }
        }
        // Streaming copies are far steadier than PIO loops; the residual
        // one-sided jitter is well under 1%. Active measurement-noise
        // faults amplify it into the heavy-tailed regime.
        const double amp =
            injector != nullptr ? injector->noise_amplification(clock) : 1.0;
        const double slowdown = std::abs(rng.normal(0.004, 0.003)) * amp;
        const double sample = aggregate * (1.0 - std::min(slowdown, 0.8));
        const sim::Ns duration =
            sample > 0.0 ? rep_bits / sample
                         : std::numeric_limits<double>::infinity();
        const bool timed_out =
            config.retry.timeout > 0.0 && duration > config.retry.timeout;
        if (!timed_out) {
          samples.push_back(sample);
          if (obs != nullptr) obs->metrics.add(m_reps);
          if (trace != nullptr) {
            obs::EventFields fields;
            fields.t_sim = clock;
            trace->event("iomodel.rep", probe_span, 0, "ok", fields);
          }
          clock += std::isfinite(duration) ? duration : 0.0;
          recorded = true;
          break;
        }
        if (attempt >= config.retry.max_retries) {
          if (obs != nullptr) {
            obs->metrics.add(m_reps);
            obs->metrics.add(m_dropped);
          }
          if (trace != nullptr) {
            obs::EventFields fields;
            fields.t_sim = clock;
            fields.detail = "timeout, retry budget exhausted";
            trace->event("iomodel.rep", probe_span, fault_cause(clock),
                         "drop", fields);
          }
          clock += config.retry.timeout;  // the abort itself took this long
          break;
        }
        ++retries_total;
        if (obs != nullptr) obs->metrics.add(m_retries);
        if (trace != nullptr) {
          obs::EventFields fields;
          fields.t_sim = clock;
          fields.detail = "timeout";
          trace->event("iomodel.retry", probe_span, fault_cause(clock),
                       "retry", fields);
        }
        clock += config.retry.timeout +
                 sim::backoff_delay(config.retry, attempt + 1, retry_rng);
      }
      if (!recorded) ++aborted_reps;
    }

    sim::MeasurementOutcome outcome;
    outcome.retries = retries_total;
    if (samples.empty()) {
      outcome.ok = false;
      outcome.aborted = true;
      outcome.confidence = 0.0;
      result.bw[static_cast<std::size_t>(i)] = 0.0;
      if (obs != nullptr) obs->metrics.add(m_probes_aborted);
    } else {
      const sim::RobustSummary robust = sim::robust_summarize(samples);
      result.bw[static_cast<std::size_t>(i)] = robust.trimmed_mean;
      double conf = 1.0;
      if (robust.low_confidence) conf -= 0.3;
      conf -= 0.5 * static_cast<double>(aborted_reps) /
              static_cast<double>(config.repetitions);
      conf -= std::min(0.2, 0.02 * retries_total);
      outcome.confidence = std::clamp(conf, 0.05, 1.0);
      if (trace != nullptr) {
        obs::EventFields fields;
        fields.t_sim = clock;
        const std::string detail =
            "trimmed_mean over " + std::to_string(samples.size()) + " of " +
            std::to_string(config.repetitions) + " reps";
        fields.detail = detail;
        trace->event("iomodel.estimator", probe_span, 0,
                     robust.low_confidence ? "low-confidence" : "ok", fields);
      }
    }
    if (!outcome.ok || outcome.retries > 0 || outcome.confidence < 0.5) {
      result.degraded = true;
    }
    result.outcomes[static_cast<std::size_t>(i)] = outcome;
    if (trace != nullptr) {
      obs::EventFields fields;
      fields.t_sim = clock;
      trace->end_span(probe_span, outcome.aborted ? "aborted" : "ok", fields);
    }

    for (auto& b : buffers) host.free(b);
  }
  if (trace != nullptr) {
    obs::EventFields fields;
    fields.t_sim = clock;
    trace->end_span(build_span, result.degraded ? "degraded" : "ok", fields);
  }
  return result;
}

}  // namespace numaio::model
