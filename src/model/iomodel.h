// The paper's proposed methodology (§V, Algorithm 1): model a device-
// attached ("target") node's I/O bandwidth character *without touching the
// device*, by imitating its DMA engine with memcpy threads pinned to the
// target node.
//
//   write model: data sinks on the target node, sources vary  (Fig 9a)
//   read model:  data sources on the target node, sinks vary  (Fig 9b)
//
// Per Algorithm 1: m = cores-per-node threads, each copying its own
// src/snk buffer pair 100 times; the *average* aggregate bandwidth is
// recorded per candidate node. Because the copy threads run on the target
// node and stream one way, they traverse exactly the fabric path a device
// DMA engine would — unlike STREAM, whose PIO round trip takes a different
// path (§IV-C).
#pragma once

#include <cstdint>
#include <vector>

#include "faults/injector.h"
#include "nm/host.h"
#include "obs/obs.h"
#include "simcore/retry.h"
#include "simcore/units.h"

namespace numaio::model {

using topo::NodeId;

enum class Direction {
  kDeviceWrite,  ///< Host memory -> device: DMA engine reads host memory.
  kDeviceRead,   ///< Device -> host memory: DMA engine writes host memory.
};

struct IoModelConfig {
  int repetitions = 100;
  /// Per-thread buffer size. Must dwarf the LLC like STREAM's arrays; the
  /// default moves 64 MiB per copy.
  sim::Bytes buffer_bytes = 64 * sim::kMiB;
  std::uint64_t seed = 20130777;
  /// Optional fault injector: repetitions run on a synthetic timeline
  /// (each rep advances the clock by its own copy duration), faults active
  /// at a rep's time degrade its solve and amplify its noise, and the
  /// retry policy below bounds how long a rep may take. nullptr = the
  /// fault-free Algorithm 1 (same noise draws, no timeouts).
  faults::FaultInjector* injector = nullptr;
  /// Where this measurement starts on the injector's timeline.
  sim::Ns start_time = 0.0;
  /// Per-rep timeout / bounded-retry policy (timeout 0 disables; a rep
  /// whose projected duration exceeds the timeout is retried with backoff
  /// and, once the budget is spent, dropped as an aborted sample).
  sim::RetryPolicy retry{};
  /// Optional observability: an `iomodel.build` span wrapping per-node
  /// `iomodel.probe` spans with per-rep accept/drop events and the
  /// estimator choice, plus the iomodel.* counters. nullptr = silent.
  obs::Context* obs = nullptr;
  /// Parent span for the `iomodel.build` span (e.g. a characterize span).
  obs::SpanId obs_parent = 0;
};

struct IoModelResult {
  NodeId target = 0;
  Direction direction = Direction::kDeviceWrite;
  /// bw[i]: robust (trimmed-mean) aggregate bandwidth with the varied end
  /// on node i (source node for the write model, sink node for the read
  /// model). Under faults, aborted reps are excluded; a node whose every
  /// rep aborted reports 0 with outcome.aborted set.
  std::vector<sim::Gbps> bw;
  /// Per-node degraded-mode accounting: retries spent, abort status and a
  /// confidence score discounted for dispersion, aborted reps and retries.
  std::vector<sim::MeasurementOutcome> outcomes;
  /// True when any node's samples were degraded (aborts, retries or low
  /// confidence) — the model should be treated as provisional.
  bool degraded = false;
};

/// Runs Algorithm 1 for one target node and direction.
IoModelResult build_iomodel(nm::Host& host, NodeId target,
                            Direction direction,
                            const IoModelConfig& config = {});

}  // namespace numaio::model
