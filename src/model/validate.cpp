#include "model/validate.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "model/analysis.h"
#include "model/predictor.h"

namespace numaio::model {

namespace {

std::vector<double> sweep(io::Testbed& tb, const std::string& engine) {
  io::FioRunner fio(tb.host());
  std::vector<double> out;
  for (NodeId node = 0; node < tb.machine().num_nodes(); ++node) {
    io::FioJob j;
    const bool is_ssd = engine.rfind("ssd", 0) == 0;
    j.devices = is_ssd ? tb.ssds()
                       : std::vector<const io::PcieDevice*>{&tb.nic()};
    j.engine = engine;
    j.cpu_node = node;
    j.num_streams = 4;
    out.push_back(fio.run(j).aggregate);
  }
  return out;
}

/// Largest relative spread of measured values within any one class.
double worst_class_spread(const Classification& classes,
                          const std::vector<double>& io) {
  double worst = 0.0;
  for (const auto& cls : classes.classes) {
    double lo = io[static_cast<std::size_t>(cls.front())];
    double hi = lo;
    for (NodeId v : cls) {
      lo = std::min(lo, io[static_cast<std::size_t>(v)]);
      hi = std::max(hi, io[static_cast<std::size_t>(v)]);
    }
    if (hi > 0.0) worst = std::max(worst, (hi - lo) / hi);
  }
  return worst;
}

}  // namespace

std::string ValidationReport::to_string() const {
  std::ostringstream out;
  for (const ClaimResult& c : claims) {
    out << (c.passed ? "[pass] " : "[FAIL] ") << c.name << ": "
        << c.value << " vs " << c.threshold;
    if (!c.detail.empty()) out << "  (" << c.detail << ")";
    out << '\n';
  }
  out << (all_passed() ? "methodology holds on this host\n"
                       : "methodology NOT validated on this host\n");
  return out.str();
}

ValidationReport validate_methodology(io::Testbed& tb,
                                      const ValidateConfig& config) {
  ValidationReport report;
  const NodeId device_node = tb.device_node();
  IoModelConfig model_config;
  model_config.repetitions = config.iomodel_repetitions;

  const auto wm = build_iomodel(tb.host(), device_node,
                                Direction::kDeviceWrite, model_config);
  const auto rm = build_iomodel(tb.host(), device_node,
                                Direction::kDeviceRead, model_config);
  const auto wc = classify(wm, tb.machine().topology());
  const auto rc = classify(rm, tb.machine().topology());

  // Claim 1: the model ranks every offloaded engine's bindings.
  struct EngineCase {
    const char* engine;
    const IoModelResult* model;
    const Classification* classes;
  };
  const EngineCase cases[] = {{io::kRdmaWrite, &wm, &wc},
                              {io::kSsdWrite, &wm, &wc},
                              {io::kRdmaRead, &rm, &rc},
                              {io::kSsdRead, &rm, &rc}};
  std::vector<std::vector<double>> sweeps;
  for (const EngineCase& c : cases) {
    sweeps.push_back(sweep(tb, c.engine));
    const double rho = spearman(c.model->bw, sweeps.back());
    report.claims.push_back(
        ClaimResult{std::string("rank agreement ") + c.engine,
                    rho >= config.min_offloaded_spearman, rho,
                    config.min_offloaded_spearman, "Spearman"});
  }

  // Claim 2: measured I/O is coherent within each model class.
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    const double spread = worst_class_spread(*cases[i].classes, sweeps[i]);
    report.claims.push_back(
        ClaimResult{std::string("class coherence ") + cases[i].engine,
                    spread <= config.max_within_class_spread, spread,
                    config.max_within_class_spread,
                    "worst within-class relative spread"});
  }

  // Claim 3: Eq. 1 predicts a mixed workload from per-class probes.
  {
    io::FioRunner fio(tb.host());
    std::vector<double> class_values;
    for (NodeId rep : representative_nodes(rc)) {
      io::FioJob j;
      j.devices = {&tb.nic()};
      j.engine = io::kRdmaRead;
      j.cpu_node = rep;
      j.num_streams = 4;
      class_values.push_back(fio.run(j).aggregate);
    }
    // Mix: two streams from the best remote class, two from the worst.
    const NodeId strong =
        rc.classes[static_cast<std::size_t>(1 % rc.num_classes())].front();
    const NodeId weak = rc.classes.back().front();
    const std::vector<std::pair<NodeId, int>> bindings{{strong, 2},
                                                       {weak, 2}};
    const double predicted =
        predict_for_bindings(rc, class_values, bindings);
    io::FioJob a;
    a.devices = {&tb.nic()};
    a.engine = io::kRdmaRead;
    a.cpu_node = strong;
    a.num_streams = 2;
    io::FioJob b = a;
    b.cpu_node = weak;
    const double measured =
        io::combined_aggregate(fio.run_concurrent({a, b}));
    const double eps = relative_error(predicted, measured);
    report.claims.push_back(ClaimResult{
        "Eq.1 prediction error", eps <= config.max_prediction_error, eps,
        config.max_prediction_error,
        "mixed RDMA_READ, " + std::to_string(predicted).substr(0, 6) +
            " predicted vs " + std::to_string(measured).substr(0, 6)});
  }

  // Claim 4: the cost reduction is real — probing representatives covers
  // the full sweep (checked via class coherence above); report the ratio.
  {
    const double ratio =
        static_cast<double>(rc.num_classes()) /
        static_cast<double>(tb.machine().num_nodes());
    report.claims.push_back(ClaimResult{
        "characterization cost ratio", ratio <= 0.75, ratio, 0.75,
        std::to_string(rc.num_classes()) + " probes instead of " +
            std::to_string(tb.machine().num_nodes())});
  }
  return report;
}

}  // namespace numaio::model
