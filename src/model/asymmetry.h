// Asymmetry diagnosis — the paper's second future-work direction (§VI):
// "we will study more delicate issues such as architectural details
// leading to performance asymmetry".
//
// Given a measured bandwidth matrix, find the directed node pairs whose
// two directions disagree beyond a threshold — the fingerprints of
// unganged link directions, starved response buffers, or asymmetric
// routing (§IV-A attributes the STREAM asymmetry to "the number of
// request and response buffers, and link width configuration"). On the
// calibrated host this pinpoints {2,3}<->{6,7} and {6,7}->4; on an
// idealized derived host it finds nothing.
#pragma once

#include <string>
#include <vector>

#include "mem/membench.h"
#include "model/iomodel.h"

namespace numaio::model {

struct AsymmetricPair {
  NodeId strong_src = 0;  ///< Direction with the higher bandwidth.
  NodeId strong_dst = 0;
  sim::Gbps forward = 0.0;   ///< strong_src -> strong_dst.
  sim::Gbps backward = 0.0;  ///< strong_dst -> strong_src.
  double ratio = 1.0;        ///< forward / backward (>= 1).
};

/// Scans an (a, b) bandwidth matrix for pairs where one direction exceeds
/// the other by more than `min_ratio`. Sorted by descending ratio.
std::vector<AsymmetricPair> find_asymmetric_pairs(
    const mem::BandwidthMatrix& bw, double min_ratio = 1.15);

/// Builds a DMA-path bandwidth matrix from the two iomodel sweeps of one
/// target (write model fills column `target`, read model fills the row),
/// restricted to those anchored cells — the paper's methodology applied
/// to asymmetry hunting without any I/O device.
mem::BandwidthMatrix iomodel_matrix(nm::Host& host, NodeId target,
                                    const IoModelConfig& config = {});

/// One-line descriptions of the findings for reports.
std::vector<std::string> describe(const std::vector<AsymmetricPair>& pairs);

}  // namespace numaio::model
