// Synthetic data-intensive workloads: open-loop arrivals of bulk I/O
// tasks, the setting the paper's future work targets ("mechanisms of
// placing and migrating parallel I/O threads for data-intensive
// applications", §VI). Deterministic: all randomness derives from the
// config seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/units.h"

namespace numaio::model {

/// One bulk transfer request against a device.
struct IoTask {
  std::string engine;      ///< Device personality (io:: engine name).
  sim::Bytes bytes = 0;    ///< Total payload.
  sim::Ns arrival = 0.0;   ///< Absolute arrival time.
};

struct WorkloadConfig {
  std::uint64_t seed = 20130601;
  int num_tasks = 40;
  /// Mean of the exponential interarrival distribution.
  sim::Ns mean_interarrival = 2.0e9;  // 2 seconds
  sim::Bytes min_bytes = 4 * sim::kGiB;
  sim::Bytes max_bytes = 64 * sim::kGiB;
  /// Engines drawn uniformly per task.
  std::vector<std::string> engine_mix;
};

/// Generates `num_tasks` tasks with exponential interarrivals and
/// log-uniform sizes, cycling deterministically through the engine mix
/// weights via the seeded RNG.
std::vector<IoTask> generate_workload(const WorkloadConfig& config);

}  // namespace numaio::model
