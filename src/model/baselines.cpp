#include "model/baselines.h"

#include <algorithm>
#include <cassert>

namespace numaio::model {

HopModel fit_hop_model(const mem::BandwidthMatrix& bw,
                       const topo::Topology& topo) {
  assert(bw.num_nodes() == topo.num_nodes());
  const topo::Routing routing(topo, topo::Routing::Metric::kHops);
  const int n = topo.num_nodes();
  const int diameter = routing.diameter();

  HopModel model;
  model.level.assign(static_cast<std::size_t>(diameter) + 1, 0.0);
  std::vector<int> count(static_cast<std::size_t>(diameter) + 1, 0);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      const auto h =
          static_cast<std::size_t>(routing.hop_distance(a, b));
      model.level[h] += bw.at(a, b);
      ++count[h];
    }
  }
  for (std::size_t h = 0; h < model.level.size(); ++h) {
    if (count[h] > 0) model.level[h] /= count[h];
  }
  return model;
}

std::vector<sim::Gbps> predict_for_target(const HopModel& model,
                                          const topo::Topology& topo,
                                          NodeId target) {
  const topo::Routing routing(topo, topo::Routing::Metric::kHops);
  std::vector<sim::Gbps> out;
  out.reserve(static_cast<std::size_t>(topo.num_nodes()));
  for (NodeId i = 0; i < topo.num_nodes(); ++i) {
    out.push_back(model.predict(routing.hop_distance(i, target)));
  }
  return out;
}

Classification classify_by_hops(const topo::Topology& topo, NodeId target) {
  const topo::Routing routing(topo, topo::Routing::Metric::kHops);
  Classification c;
  c.class_of.assign(static_cast<std::size_t>(topo.num_nodes()), 0);

  // Class 1: target + package peers (the paper's convention).
  std::vector<NodeId> first{target};
  for (NodeId peer : topo.package_peers(target)) first.push_back(peer);
  std::sort(first.begin(), first.end());
  std::vector<bool> in_first(static_cast<std::size_t>(topo.num_nodes()),
                             false);
  for (NodeId v : first) in_first[static_cast<std::size_t>(v)] = true;
  c.classes.push_back(first);

  // Remaining classes: one per hop count, ascending.
  for (int h = 1; h <= routing.diameter(); ++h) {
    std::vector<NodeId> members;
    for (NodeId v = 0; v < topo.num_nodes(); ++v) {
      if (!in_first[static_cast<std::size_t>(v)] &&
          routing.hop_distance(v, target) == h) {
        members.push_back(v);
      }
    }
    if (!members.empty()) c.classes.push_back(std::move(members));
  }
  for (std::size_t cls = 0; cls < c.classes.size(); ++cls) {
    for (NodeId v : c.classes[cls]) {
      c.class_of[static_cast<std::size_t>(v)] = static_cast<int>(cls);
    }
    // Hop classes carry no bandwidth values; fill neutral stats.
    c.class_avg.push_back(0.0);
    c.class_range.emplace_back(0.0, 0.0);
  }
  return c;
}

double class_agreement(const Classification& reference,
                       const Classification& other) {
  assert(reference.class_of.size() == other.class_of.size());
  const std::size_t n = reference.class_of.size();
  long long agree = 0, comparable = 0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const int ra = reference.class_of[a];
      const int rb = reference.class_of[b];
      if (ra == rb) continue;
      const int oa = other.class_of[a];
      const int ob = other.class_of[b];
      if (oa == ob) continue;
      ++comparable;
      if ((ra < rb) == (oa < ob)) ++agree;
    }
  }
  return comparable > 0
             ? static_cast<double>(agree) / static_cast<double>(comparable)
             : 1.0;
}

}  // namespace numaio::model
