#include "model/asymmetry.h"

#include <algorithm>
#include <cstdio>

namespace numaio::model {

std::vector<AsymmetricPair> find_asymmetric_pairs(
    const mem::BandwidthMatrix& bw, double min_ratio) {
  std::vector<AsymmetricPair> pairs;
  const int n = bw.num_nodes();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      const double fwd = bw.at(a, b);
      const double bwd = bw.at(b, a);
      if (fwd <= 0.0 || bwd <= 0.0) continue;  // unmeasured cell
      AsymmetricPair p;
      if (fwd >= bwd) {
        p.strong_src = a;
        p.strong_dst = b;
        p.forward = fwd;
        p.backward = bwd;
      } else {
        p.strong_src = b;
        p.strong_dst = a;
        p.forward = bwd;
        p.backward = fwd;
      }
      p.ratio = p.forward / p.backward;
      if (p.ratio >= min_ratio) pairs.push_back(p);
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const AsymmetricPair& x, const AsymmetricPair& y) {
              if (x.ratio != y.ratio) return x.ratio > y.ratio;
              if (x.strong_src != y.strong_src) {
                return x.strong_src < y.strong_src;
              }
              return x.strong_dst < y.strong_dst;
            });
  return pairs;
}

mem::BandwidthMatrix iomodel_matrix(nm::Host& host, NodeId target,
                                    const IoModelConfig& config) {
  const int n = host.num_configured_nodes();
  mem::BandwidthMatrix m;
  m.bw.assign(static_cast<std::size_t>(n),
              std::vector<sim::Gbps>(static_cast<std::size_t>(n), 0.0));
  const auto write =
      build_iomodel(host, target, Direction::kDeviceWrite, config);
  const auto read =
      build_iomodel(host, target, Direction::kDeviceRead, config);
  for (NodeId i = 0; i < n; ++i) {
    // Write model: data streams i -> target; read model: target -> i.
    m.bw[static_cast<std::size_t>(i)][static_cast<std::size_t>(target)] =
        write.bw[static_cast<std::size_t>(i)];
    m.bw[static_cast<std::size_t>(target)][static_cast<std::size_t>(i)] =
        read.bw[static_cast<std::size_t>(i)];
  }
  return m;
}

std::vector<std::string> describe(
    const std::vector<AsymmetricPair>& pairs) {
  std::vector<std::string> lines;
  char buf[160];
  for (const AsymmetricPair& p : pairs) {
    std::snprintf(buf, sizeof(buf),
                  "%d->%d runs %.1fx faster than %d->%d (%.1f vs %.1f "
                  "Gbps): suspect unganged link or starved response "
                  "buffers on the return direction",
                  p.strong_src, p.strong_dst, p.ratio, p.strong_dst,
                  p.strong_src, p.forward, p.backward);
    lines.emplace_back(buf);
  }
  return lines;
}

}  // namespace numaio::model
