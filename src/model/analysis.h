// Model-agreement statistics for §IV's mismatch arguments.
//
// The paper's case against hop distance and STREAM rests on *orderings*:
// which bindings a model ranks fast must match which bindings real I/O
// measures fast. Rank correlations quantify that agreement — high for the
// proposed memcpy model against every I/O engine, low (or inverted) for
// the STREAM-derived models against RDMA_READ.
#pragma once

#include <span>

#include "simcore/units.h"

namespace numaio::model {

/// Spearman rank correlation of two equal-length series (average ranks for
/// ties). Returns a value in [-1, 1]; 0 when either series is constant.
double spearman(std::span<const double> a, std::span<const double> b);

/// Kendall tau-b rank correlation (concordant vs discordant pairs, with
/// tie correction). Returns a value in [-1, 1]; 0 when either is constant.
double kendall_tau(std::span<const double> a, std::span<const double> b);

/// Fraction of comparable ordered pairs (i, j) where the models agree on
/// which is larger; pairs tied in either series are skipped. 1.0 = same
/// ordering, 0.0 = fully inverted; 0.5 ~ unrelated.
double pairwise_agreement(std::span<const double> a,
                          std::span<const double> b);

}  // namespace numaio::model
