// Performance-class partitioning (§V-A, Tables IV & V).
//
// The methodology's deliverable is not the raw bandwidth vector but a
// partition of nodes into performance classes: "the local and neighboring
// nodes are always assigned to the first class, and the main task ... is
// to classify the remote nodes". Remote nodes are clustered by relative
// bandwidth gaps: walking the sorted values, a new class opens whenever
// the next value falls more than `rel_gap` below the previous one.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "model/iomodel.h"
#include "topo/topology.h"

namespace numaio::model {

struct ClassifyConfig {
  /// Relative gap that opens a new class among remote nodes.
  double rel_gap = 0.08;
};

struct Classification {
  /// classes[0] is the local+neighbor class; the rest are remote classes
  /// in descending bandwidth order. Node ids within a class are sorted.
  std::vector<std::vector<NodeId>> classes;
  /// Mean model bandwidth per class (same indexing as `classes`).
  std::vector<sim::Gbps> class_avg;
  /// Min/max model bandwidth per class.
  std::vector<std::pair<sim::Gbps, sim::Gbps>> class_range;
  /// class_of[node] = index into `classes`.
  std::vector<int> class_of;

  int num_classes() const { return static_cast<int>(classes.size()); }
};

/// Partitions the nodes of an iomodel result. `topo` supplies the
/// local/neighbor relation for the target node.
Classification classify(const IoModelResult& model,
                        const topo::Topology& topo,
                        const ClassifyConfig& config = {});

/// Generic form over a raw per-node bandwidth vector.
Classification classify_values(std::span<const sim::Gbps> bw, NodeId target,
                               const topo::Topology& topo,
                               const ClassifyConfig& config = {});

/// The §V-A gap walk over an arbitrary value vector — the clustering
/// core shared by classify_values (remote NUMA nodes) and the fleet's
/// host-class placement (per-host capacity summaries). Positions are
/// ranked by descending value (ties: lower index) and a new class opens
/// whenever the next value falls more than `rel_gap` below the previous
/// one. Returns class_of[i] for every input position; class 0 is the
/// fastest band.
std::vector<int> gap_classes(std::span<const double> values, double rel_gap);

/// One representative node per class — the paper's characterization-cost
/// reduction: probing just these bindings stands in for the full sweep
/// ("the evaluation cost decreases by 50%" on the 8-node host).
std::vector<NodeId> representative_nodes(const Classification& c);

}  // namespace numaio::model
