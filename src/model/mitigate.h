// Buffer-policy mitigation: applying the performance model when the
// *processes cannot move*.
//
// §V-B's scheduler rebinds processes to better classes. In practice a
// data-intensive service is often pinned (license, cache warmth, operator
// policy). But the paper's own observation — buffers allocate in the
// process's local memory, and the *buffer's* node determines the DMA path
// — yields a second lever: re-home the buffers with membind/interleave
// while the process stays put. plan_buffer_policies() picks, per process,
// the policy with the best predicted class value; the prediction follows
// Eq. 1 over the resulting buffer classes.
//
// First-order approximation: the probed class values fold in CPU effects
// at the binding node; after a membind the CPU work stays on the original
// node while the DMA path moves, so predictions are exact for offloaded
// engines (RDMA, SSD) and slightly optimistic for TCP.
#pragma once

#include <span>

#include "model/classify.h"
#include "nm/policy.h"

namespace numaio::model {

struct ProcessPlan {
  NodeId cpu_node = 0;           ///< Fixed process binding.
  nm::Policy policy{};           ///< Recommended buffer policy.
  int buffer_class = 0;          ///< Class the buffers land in.
  sim::Gbps predicted = 0.0;     ///< Predicted per-binding rate.
};

struct MitigationPlan {
  std::vector<ProcessPlan> processes;
  /// Eq.-1 aggregate over the planned buffer classes.
  sim::Gbps predicted_aggregate = 0.0;
  /// Eq.-1 aggregate if every process kept local buffers (the baseline).
  sim::Gbps baseline_aggregate = 0.0;
};

/// Plans buffer policies for processes pinned at `process_nodes`, using
/// the device-node classification and the probed per-class I/O values.
/// A process already in the best class keeps --localalloc; others get
/// --membind to the lowest-id node of the best class.
MitigationPlan plan_buffer_policies(const Classification& classes,
                                    std::span<const sim::Gbps> class_values,
                                    std::span<const NodeId> process_nodes);

}  // namespace numaio::model
