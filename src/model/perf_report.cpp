#include "model/perf_report.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "simcore/units.h"

namespace numaio::model {

namespace {

const char* dir_name(Direction dir) {
  return dir == Direction::kDeviceWrite ? "write" : "read";
}

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string ms(double ns) { return fixed(ns / 1e6, 3); }

std::string gib(long long bytes) {
  return fixed(static_cast<double>(bytes) / static_cast<double>(sim::kGiB),
               2);
}

/// "{0 1} {4 5 6 7} {2 3}" — the serialized-model class syntax.
std::string classes_text(const Classification& c) {
  std::string out;
  for (const auto& members : c.classes) {
    if (!out.empty()) out += ' ';
    out += '{';
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i != 0) out += ' ';
      out += std::to_string(members[i]);
    }
    out += '}';
  }
  return out;
}

std::string class_avgs_text(const Classification& c) {
  std::string out;
  for (std::size_t i = 0; i < c.class_avg.size(); ++i) {
    if (i != 0) out += " / ";
    out += fixed(c.class_avg[i], 1);
  }
  return out;
}

void json_string(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

RunReport build_run_report(std::string command, const HostModel* model,
                           obs::RecordSource& source,
                           const obs::MetricsRegistry* metrics) {
  RunReport report;
  report.command = std::move(command);
  if (model != nullptr) {
    report.has_model = true;
    report.model = *model;
  }
  report.analysis = obs::analyze_stream(source);
  // One more streaming pass for §6: the scheduler-latency profile.
  report.sched = obs::profile_scheduler(source);
  if (metrics != nullptr) {
    report.counters = metrics->counter_values();
    // Gauges ride in the same table (the partitioned solver reports its
    // component shape — solver.components & co — as gauges); re-sort so
    // the merged list stays name-ordered for the renderers and the diff.
    const auto gauges = metrics->gauge_values();
    report.counters.insert(report.counters.end(), gauges.begin(),
                           gauges.end());
    std::sort(report.counters.begin(), report.counters.end(),
              [](const obs::MetricsRegistry::NamedValue& a,
                 const obs::MetricsRegistry::NamedValue& b) {
                return a.name < b.name;
              });
  }
  return report;
}

RunReport build_run_report(std::string command, const HostModel* model,
                           const std::vector<obs::Event>& events,
                           const obs::MetricsRegistry* metrics) {
  obs::VectorSource source(events);
  return build_run_report(std::move(command), model, source, metrics);
}

std::string render_markdown(const RunReport& report,
                            const RunReportOptions& options) {
  const obs::TraceAnalysis& a = report.analysis;
  std::ostringstream out;
  out << "# numaio run report\n\n";
  out << "- command: `" << report.command << "`\n";
  out << "- trace records: " << a.num_records;
  if (a.last_ns >= 0.0) {
    out << ", simulated window: " << ms(a.first_ns) << " – " << ms(a.last_ns)
        << " ms";
  }
  out << "\n- critical path: " << ms(a.critical_path_ns)
      << " ms end-to-end over " << a.critical_path.size() << " steps\n";

  if (report.has_model) {
    out << "\n## Performance classes (" << report.model.host_name << ", "
        << report.model.num_nodes << " nodes, revision "
        << report.model.revision << (report.model.stale ? ", STALE" : "")
        << ")\n\n";
    out << "| target | dir | classes | class avg Gbps |\n";
    out << "|---|---|---|---|\n";
    for (NodeId t = 0; t < report.model.num_nodes; ++t) {
      for (const Direction dir :
           {Direction::kDeviceWrite, Direction::kDeviceRead}) {
        const Classification& c = report.model.classes_for(t, dir);
        out << "| " << t << " | " << dir_name(dir) << " | "
            << classes_text(c) << " | " << class_avgs_text(c) << " |\n";
      }
    }
  }

  if (!a.span_kinds.empty()) {
    out << "\n## Span summary\n\n";
    out << "| span | count | total ms | max ms | GiB | outcomes |\n";
    out << "|---|---|---|---|---|---|\n";
    for (const obs::SpanKindStats& k : a.span_kinds) {
      out << "| " << k.name << " | " << k.count << " | " << ms(k.total_ns)
          << " | " << ms(k.max_ns) << " | " << gib(k.bytes) << " | ";
      for (std::size_t i = 0; i < k.outcomes.size(); ++i) {
        out << (i == 0 ? "" : ", ") << k.outcomes[i].first << " × "
            << k.outcomes[i].second;
      }
      out << " |\n";
    }
  }

  if (!a.critical_path.empty()) {
    out << "\n## Critical path\n\n";
    out << "| # | record | name | self ms | outcome | detail |\n";
    out << "|---|---|---|---|---|---|\n";
    int step_no = 0;
    for (const obs::CriticalPathStep& step : a.critical_path) {
      if (++step_no > options.max_path_steps) {
        out << "| … | | ("
            << static_cast<int>(a.critical_path.size()) - step_no + 1
            << " more steps) | | | |\n";
        break;
      }
      out << "| " << step_no << " | id " << step.id << " | " << step.name
          << " | " << ms(step.self_ns) << " | " << step.outcome << " | "
          << step.detail << " |\n";
    }
  }

  if (!a.contention.empty()) {
    out << "\n## Contention (top " << options.top_contended
        << " node pairs by attributed stall)\n\n";
    out << "| pair | spans | GiB | busy ms | stall ms | stall % |\n";
    out << "|---|---|---|---|---|---|\n";
    int rows = 0;
    for (const obs::ContentionCell& cell : a.contention) {
      if (++rows > options.top_contended) break;
      out << "| " << cell.node_a << " → " << cell.node_b << " | "
          << cell.spans << " | " << gib(cell.bytes) << " | "
          << ms(cell.busy_ns) << " | " << ms(cell.stall_ns) << " | "
          << fixed(100.0 * cell.stall_frac(), 1) << " |\n";
    }
  }

  out << "\n## Faults & retries\n\n";
  out << "- transitions: " << a.faults.transitions
      << ", retries: " << a.faults.retries << ", aborts: " << a.faults.aborts
      << ", records caused by faults: " << a.faults.caused << "\n";
  if (!a.faults.by_fault.empty()) {
    out << "\n| fault transition | consequences |\n|---|---|\n";
    for (const auto& [label, count] : a.faults.by_fault) {
      out << "| " << label << " | " << count << " |\n";
    }
  }

  if (!report.sched.empty()) {
    out << "\n## Scheduler latency\n\n";
    out << "| metric | count | p50 ms | p95 ms | p99 ms | p99.9 ms |\n";
    out << "|---|---|---|---|---|---|\n";
    for (const obs::MetricsRegistry::Histogram* h :
         {&report.sched.queue_wait, &report.sched.dispatch,
          &report.sched.migration}) {
      out << "| " << h->name << " | " << h->count << " | "
          << fixed(h->quantile(0.50), 3) << " | "
          << fixed(h->quantile(0.95), 3) << " | "
          << fixed(h->quantile(0.99), 3) << " | "
          << fixed(h->quantile(0.999), 3) << " |\n";
    }
  }

  if (!report.counters.empty()) {
    out << "\n## Counters\n\n| counter | value |\n|---|---|\n";
    for (const auto& c : report.counters) {
      out << "| " << c.name << " | " << g17(c.value) << " |\n";
    }
  }
  return out.str();
}

std::string render_json(const RunReport& report,
                        const RunReportOptions& options) {
  const obs::TraceAnalysis& a = report.analysis;
  std::ostringstream out;
  out << "{\n  \"command\": ";
  json_string(out, report.command);
  out << ",\n  \"records\": " << a.num_records;
  out << ",\n  \"sim_first_ns\": " << g17(a.first_ns);
  out << ",\n  \"sim_last_ns\": " << g17(a.last_ns);
  out << ",\n  \"critical_path_ns\": " << g17(a.critical_path_ns);

  out << ",\n  \"classes\": [";
  if (report.has_model) {
    bool first = true;
    for (NodeId t = 0; t < report.model.num_nodes; ++t) {
      for (const Direction dir :
           {Direction::kDeviceWrite, Direction::kDeviceRead}) {
        const Classification& c = report.model.classes_for(t, dir);
        out << (first ? "\n" : ",\n") << "    {\"target\": " << t
            << ", \"dir\": \"" << dir_name(dir) << "\", \"classes\": [";
        for (std::size_t i = 0; i < c.classes.size(); ++i) {
          out << (i == 0 ? "[" : ", [");
          for (std::size_t j = 0; j < c.classes[i].size(); ++j) {
            out << (j == 0 ? "" : ", ") << c.classes[i][j];
          }
          out << "]";
        }
        out << "], \"avg_gbps\": [";
        for (std::size_t i = 0; i < c.class_avg.size(); ++i) {
          out << (i == 0 ? "" : ", ") << g17(c.class_avg[i]);
        }
        out << "]}";
        first = false;
      }
    }
    if (!first) out << "\n  ";
  }
  out << "]";

  out << ",\n  \"span_kinds\": [";
  for (std::size_t i = 0; i < a.span_kinds.size(); ++i) {
    const obs::SpanKindStats& k = a.span_kinds[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": ";
    json_string(out, k.name);
    out << ", \"count\": " << k.count << ", \"unclosed\": " << k.unclosed
        << ", \"total_ns\": " << g17(k.total_ns) << ", \"max_ns\": "
        << g17(k.max_ns) << ", \"bytes\": " << k.bytes << ", \"outcomes\": {";
    for (std::size_t j = 0; j < k.outcomes.size(); ++j) {
      out << (j == 0 ? "" : ", ");
      json_string(out, k.outcomes[j].first);
      out << ": " << k.outcomes[j].second;
    }
    out << "}}";
  }
  out << (a.span_kinds.empty() ? "]" : "\n  ]");

  out << ",\n  \"critical_path\": [";
  const std::size_t steps =
      std::min(a.critical_path.size(),
               static_cast<std::size_t>(options.max_path_steps));
  for (std::size_t i = 0; i < steps; ++i) {
    const obs::CriticalPathStep& s = a.critical_path[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"id\": " << s.id
        << ", \"name\": ";
    json_string(out, s.name);
    out << ", \"self_ns\": " << g17(s.self_ns) << ", \"start_ns\": "
        << g17(s.start_ns) << ", \"end_ns\": " << g17(s.end_ns)
        << ", \"outcome\": ";
    json_string(out, s.outcome);
    out << ", \"detail\": ";
    json_string(out, s.detail);
    out << "}";
  }
  out << (steps == 0 ? "]" : "\n  ]");

  out << ",\n  \"contention\": [";
  const std::size_t cells =
      std::min(a.contention.size(),
               static_cast<std::size_t>(options.top_contended));
  for (std::size_t i = 0; i < cells; ++i) {
    const obs::ContentionCell& c = a.contention[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"node_a\": " << c.node_a
        << ", \"node_b\": " << c.node_b << ", \"spans\": " << c.spans
        << ", \"bytes\": " << c.bytes << ", \"busy_ns\": " << g17(c.busy_ns)
        << ", \"stall_ns\": " << g17(c.stall_ns) << ", \"stall_frac\": "
        << g17(c.stall_frac()) << "}";
  }
  out << (cells == 0 ? "]" : "\n  ]");

  out << ",\n  \"faults\": {\"transitions\": " << a.faults.transitions
      << ", \"retries\": " << a.faults.retries << ", \"aborts\": "
      << a.faults.aborts << ", \"caused\": " << a.faults.caused
      << ", \"by_fault\": [";
  for (std::size_t i = 0; i < a.faults.by_fault.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "{\"fault\": ";
    json_string(out, a.faults.by_fault[i].first);
    out << ", \"caused\": " << a.faults.by_fault[i].second << "}";
  }
  out << "]}";

  out << ",\n  \"sched_latency\": [";
  if (!report.sched.queue_wait.name.empty()) {
    bool first = true;
    for (const obs::MetricsRegistry::Histogram* h :
         {&report.sched.queue_wait, &report.sched.dispatch,
          &report.sched.migration}) {
      out << (first ? "\n" : ",\n") << "    {\"name\": ";
      json_string(out, h->name);
      out << ", \"count\": " << h->count << ", \"p50_ms\": "
          << g17(h->quantile(0.50)) << ", \"p95_ms\": "
          << g17(h->quantile(0.95)) << ", \"p99_ms\": "
          << g17(h->quantile(0.99)) << ", \"p999_ms\": "
          << g17(h->quantile(0.999)) << "}";
      first = false;
    }
    out << "\n  ]";
  } else {
    out << "]";
  }

  out << ",\n  \"counters\": {";
  for (std::size_t i = 0; i < report.counters.size(); ++i) {
    out << (i == 0 ? "" : ", ");
    json_string(out, report.counters[i].name);
    out << ": " << g17(report.counters[i].value);
  }
  out << "}\n}\n";
  return out.str();
}

namespace {

/// Minimal recursive JSON value, just enough of RFC 8259 to walk
/// render_json() output back into a ReportSummary.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("report json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      v.kind = JsonValue::Kind::kObject;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = string_body();
        skip_ws();
        expect(':');
        v.fields.emplace_back(std::move(key), value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.kind = JsonValue::Kind::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.items.push_back(value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.str = string_body();
      return v;
    }
    if (consume_word("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_word("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_word("null")) return v;
    // Number: delegate range/format checking to strtod.
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == 'i' || text_[pos_] == 'n' || text_[pos_] == 'f')) {
      ++pos_;
    }
    if (pos_ == start) fail("unexpected character");
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    v.kind = JsonValue::Kind::kNumber;
    v.num = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number '" + num + "'");
    }
    return v;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // render_json only escapes control characters, so the code
          // point always fits one byte.
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue& require(const JsonValue& obj, std::string_view key,
                         JsonValue::Kind kind, const char* what) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != kind) {
    throw std::invalid_argument("report json: missing or mistyped field '" +
                                std::string(key) + "' (" + what + ")");
  }
  return *v;
}

}  // namespace

ReportSummary parse_report_json(const std::string& text) {
  const JsonValue root = JsonReader(text).parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::invalid_argument("report json: document is not an object");
  }
  ReportSummary s;
  s.command =
      require(root, "command", JsonValue::Kind::kString, "provenance").str;
  s.records = static_cast<int>(
      require(root, "records", JsonValue::Kind::kNumber, "record count").num);
  s.critical_path_ns =
      require(root, "critical_path_ns", JsonValue::Kind::kNumber, "path span")
          .num;

  for (const JsonValue& row :
       require(root, "classes", JsonValue::Kind::kArray, "class table")
           .items) {
    ReportSummary::ClassRow out;
    out.target = static_cast<int>(
        require(row, "target", JsonValue::Kind::kNumber, "class row").num);
    out.dir = require(row, "dir", JsonValue::Kind::kString, "class row").str;
    for (const JsonValue& cls :
         require(row, "classes", JsonValue::Kind::kArray, "class members")
             .items) {
      if (!out.classes.empty()) out.classes += ' ';
      out.classes += '{';
      for (std::size_t i = 0; i < cls.items.size(); ++i) {
        if (i != 0) out.classes += ' ';
        out.classes += std::to_string(static_cast<int>(cls.items[i].num));
      }
      out.classes += '}';
    }
    const JsonValue& avgs =
        require(row, "avg_gbps", JsonValue::Kind::kArray, "class averages");
    for (std::size_t i = 0; i < avgs.items.size(); ++i) {
      if (i != 0) out.avgs += " / ";
      out.avgs += fixed(avgs.items[i].num, 1);
    }
    s.classes.push_back(std::move(out));
  }

  for (const JsonValue& row :
       require(root, "critical_path", JsonValue::Kind::kArray, "path")
           .items) {
    ReportSummary::PathStep step;
    step.id = static_cast<obs::EventId>(
        require(row, "id", JsonValue::Kind::kNumber, "path step").num);
    step.name = require(row, "name", JsonValue::Kind::kString, "path step")
                    .str;
    step.self_ns =
        require(row, "self_ns", JsonValue::Kind::kNumber, "path step").num;
    step.outcome =
        require(row, "outcome", JsonValue::Kind::kString, "path step").str;
    s.critical_path.push_back(std::move(step));
  }

  for (const JsonValue& row :
       require(root, "span_kinds", JsonValue::Kind::kArray, "span table")
           .items) {
    ReportSummary::SpanRow span;
    span.name =
        require(row, "name", JsonValue::Kind::kString, "span kind").str;
    span.count = static_cast<int>(
        require(row, "count", JsonValue::Kind::kNumber, "span kind").num);
    span.total_ns =
        require(row, "total_ns", JsonValue::Kind::kNumber, "span kind").num;
    s.span_kinds.push_back(std::move(span));
  }

  const JsonValue& faults =
      require(root, "faults", JsonValue::Kind::kObject, "fault audit");
  s.fault_transitions = static_cast<int>(
      require(faults, "transitions", JsonValue::Kind::kNumber, "faults").num);
  s.retries = static_cast<int>(
      require(faults, "retries", JsonValue::Kind::kNumber, "faults").num);
  s.aborts = static_cast<int>(
      require(faults, "aborts", JsonValue::Kind::kNumber, "faults").num);
  s.caused = static_cast<int>(
      require(faults, "caused", JsonValue::Kind::kNumber, "faults").num);

  // §6 is newer than the format: absent (pre-profiling reports) parses
  // as an empty row set so old baselines keep diffing.
  const JsonValue* sched = root.find("sched_latency");
  if (sched != nullptr && sched->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& row : sched->items) {
      ReportSummary::SchedRow r;
      r.name =
          require(row, "name", JsonValue::Kind::kString, "sched row").str;
      r.count = static_cast<int>(
          require(row, "count", JsonValue::Kind::kNumber, "sched row").num);
      r.p50_ms =
          require(row, "p50_ms", JsonValue::Kind::kNumber, "sched row").num;
      r.p95_ms =
          require(row, "p95_ms", JsonValue::Kind::kNumber, "sched row").num;
      r.p99_ms =
          require(row, "p99_ms", JsonValue::Kind::kNumber, "sched row").num;
      r.p999_ms =
          require(row, "p999_ms", JsonValue::Kind::kNumber, "sched row").num;
      s.sched_latency.push_back(std::move(r));
    }
  }
  return s;
}

namespace {

/// "+1.234" / "-1.234" / "+0.000" — signed fixed-point delta text.
std::string signed_ms(double delta_ns) {
  std::string out(delta_ns < 0 ? "-" : "+");
  out += ms(delta_ns < 0 ? -delta_ns : delta_ns);
  return out;
}

std::string pct_change(double before, double after) {
  if (before <= 0.0) return "n/a";
  std::string out(after >= before ? "+" : "");
  out += fixed(100.0 * (after - before) / before, 1);
  out += '%';
  return out;
}

std::string path_step_text(const ReportSummary::PathStep& s) {
  std::string out = "id " + std::to_string(s.id) + " " + s.name + " (" +
                    ms(s.self_ns) + " ms";
  if (!s.outcome.empty()) out += ", " + s.outcome;
  return out + ")";
}

}  // namespace

std::string diff_reports(const ReportSummary& before,
                         const ReportSummary& after) {
  std::ostringstream out;
  out << "# numaio report diff\n\n";
  out << "- before: `" << before.command << "` (" << before.records
      << " records)\n";
  out << "- after:  `" << after.command << "` (" << after.records
      << " records)\n";
  out << "- critical path: " << ms(before.critical_path_ns) << " ms -> "
      << ms(after.critical_path_ns) << " ms ("
      << signed_ms(after.critical_path_ns - before.critical_path_ns)
      << " ms, "
      << pct_change(before.critical_path_ns, after.critical_path_ns)
      << ")\n";

  // Class structure: the Tables IV/V before/after story. Rows pair up by
  // (target, dir); a structure change is the headline signal (a NUMA hop
  // got re-classed), an average drift alone is secondary.
  out << "\n## Class structure\n\n";
  if (before.classes.empty() && after.classes.empty()) {
    out << "- no class tables on either side (trace-only reports)\n";
  } else if (before.classes.empty() || after.classes.empty()) {
    out << "- class table present only "
        << (before.classes.empty() ? "after" : "before")
        << " — runs are not directly comparable\n";
  } else {
    int changed = 0;
    for (const ReportSummary::ClassRow& b : before.classes) {
      const ReportSummary::ClassRow* a = nullptr;
      for (const ReportSummary::ClassRow& row : after.classes) {
        if (row.target == b.target && row.dir == b.dir) {
          a = &row;
          break;
        }
      }
      if (a == nullptr) {
        out << "- target " << b.target << ' ' << b.dir
            << ": dropped (was " << b.classes << ")\n";
        ++changed;
        continue;
      }
      if (a->classes != b.classes) {
        out << "- target " << b.target << ' ' << b.dir << ": " << b.classes
            << " -> " << a->classes << " (avg " << b.avgs << " -> "
            << a->avgs << " Gbps)\n";
        ++changed;
      } else if (a->avgs != b.avgs) {
        out << "- target " << b.target << ' ' << b.dir
            << ": structure unchanged " << b.classes << ", avg " << b.avgs
            << " -> " << a->avgs << " Gbps\n";
        ++changed;
      }
    }
    for (const ReportSummary::ClassRow& a : after.classes) {
      bool known = false;
      for (const ReportSummary::ClassRow& b : before.classes) {
        if (b.target == a.target && b.dir == a.dir) {
          known = true;
          break;
        }
      }
      if (!known) {
        out << "- target " << a.target << ' ' << a.dir << ": added ("
            << a.classes << ")\n";
        ++changed;
      }
    }
    if (changed == 0) {
      out << "- unchanged across " << before.classes.size()
          << " (target, dir) rows\n";
    }
  }

  out << "\n## Critical path\n\n";
  out << "- steps: " << before.critical_path.size() << " -> "
      << after.critical_path.size() << "\n";
  const std::size_t rows =
      std::max(before.critical_path.size(), after.critical_path.size());
  bool path_same = before.critical_path.size() == after.critical_path.size();
  for (std::size_t i = 0; i < rows; ++i) {
    const bool have_b = i < before.critical_path.size();
    const bool have_a = i < after.critical_path.size();
    if (have_b && have_a) {
      const ReportSummary::PathStep& b = before.critical_path[i];
      const ReportSummary::PathStep& a = after.critical_path[i];
      if (b.name == a.name && b.outcome == a.outcome &&
          b.self_ns == a.self_ns) {
        continue;  // identical step: elide, keep the diff about deltas
      }
      path_same = false;
      out << "- step " << i + 1 << ": " << path_step_text(b) << " -> "
          << path_step_text(a) << "\n";
    } else if (have_b) {
      out << "- step " << i + 1 << ": " << path_step_text(
          before.critical_path[i]) << " -> (gone)\n";
    } else {
      out << "- step " << i + 1 << ": (new) -> "
          << path_step_text(after.critical_path[i]) << "\n";
    }
  }
  if (path_same && !before.critical_path.empty()) {
    out << "- every step matches by name, outcome and self time\n";
  }

  out << "\n## Span kinds\n\n";
  int span_changes = 0;
  for (const ReportSummary::SpanRow& b : before.span_kinds) {
    const ReportSummary::SpanRow* a = nullptr;
    for (const ReportSummary::SpanRow& row : after.span_kinds) {
      if (row.name == b.name) {
        a = &row;
        break;
      }
    }
    if (a == nullptr) {
      out << "- " << b.name << ": gone (was " << b.count << " spans, "
          << ms(b.total_ns) << " ms)\n";
      ++span_changes;
    } else if (a->count != b.count || a->total_ns != b.total_ns) {
      out << "- " << b.name << ": count " << b.count << " -> " << a->count
          << ", total " << ms(b.total_ns) << " -> " << ms(a->total_ns)
          << " ms (" << signed_ms(a->total_ns - b.total_ns) << " ms)\n";
      ++span_changes;
    }
  }
  for (const ReportSummary::SpanRow& a : after.span_kinds) {
    bool known = false;
    for (const ReportSummary::SpanRow& b : before.span_kinds) {
      if (b.name == a.name) {
        known = true;
        break;
      }
    }
    if (!known) {
      out << "- " << a.name << ": new (" << a.count << " spans, "
          << ms(a.total_ns) << " ms)\n";
      ++span_changes;
    }
  }
  if (span_changes == 0) {
    out << "- unchanged across " << before.span_kinds.size()
        << " span kinds\n";
  }

  out << "\n## Faults & retries\n\n";
  out << "- transitions: " << before.fault_transitions << " -> "
      << after.fault_transitions << ", retries: " << before.retries
      << " -> " << after.retries << ", aborts: " << before.aborts << " -> "
      << after.aborts << ", caused: " << before.caused << " -> "
      << after.caused << "\n";

  out << "\n## Scheduler latency\n\n";
  if (before.sched_latency.empty() && after.sched_latency.empty()) {
    out << "- no scheduler-latency rows on either side\n";
  } else {
    int sched_changes = 0;
    for (const ReportSummary::SchedRow& b : before.sched_latency) {
      const ReportSummary::SchedRow* a = nullptr;
      for (const ReportSummary::SchedRow& row : after.sched_latency) {
        if (row.name == b.name) {
          a = &row;
          break;
        }
      }
      if (a == nullptr) {
        out << "- " << b.name << ": gone (was " << b.count << " samples)\n";
        ++sched_changes;
      } else if (a->count != b.count || a->p50_ms != b.p50_ms ||
                 a->p99_ms != b.p99_ms || a->p999_ms != b.p999_ms) {
        out << "- " << b.name << ": count " << b.count << " -> " << a->count
            << ", p50 " << fixed(b.p50_ms, 3) << " -> " << fixed(a->p50_ms, 3)
            << " ms, p99 " << fixed(b.p99_ms, 3) << " -> "
            << fixed(a->p99_ms, 3) << " ms, p99.9 " << fixed(b.p999_ms, 3)
            << " -> " << fixed(a->p999_ms, 3) << " ms\n";
        ++sched_changes;
      }
    }
    for (const ReportSummary::SchedRow& a : after.sched_latency) {
      bool known = false;
      for (const ReportSummary::SchedRow& b : before.sched_latency) {
        if (b.name == a.name) {
          known = true;
          break;
        }
      }
      if (!known) {
        out << "- " << a.name << ": new (" << a.count << " samples, p99.9 "
            << fixed(a.p999_ms, 3) << " ms)\n";
        ++sched_changes;
      }
    }
    if (sched_changes == 0) {
      out << "- unchanged across "
          << before.sched_latency.size() << " metrics\n";
    }
  }
  return out.str();
}

}  // namespace numaio::model
