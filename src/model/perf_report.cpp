#include "model/perf_report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "simcore/units.h"

namespace numaio::model {

namespace {

const char* dir_name(Direction dir) {
  return dir == Direction::kDeviceWrite ? "write" : "read";
}

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string ms(double ns) { return fixed(ns / 1e6, 3); }

std::string gib(long long bytes) {
  return fixed(static_cast<double>(bytes) / static_cast<double>(sim::kGiB),
               2);
}

/// "{0 1} {4 5 6 7} {2 3}" — the serialized-model class syntax.
std::string classes_text(const Classification& c) {
  std::string out;
  for (const auto& members : c.classes) {
    if (!out.empty()) out += ' ';
    out += '{';
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i != 0) out += ' ';
      out += std::to_string(members[i]);
    }
    out += '}';
  }
  return out;
}

std::string class_avgs_text(const Classification& c) {
  std::string out;
  for (std::size_t i = 0; i < c.class_avg.size(); ++i) {
    if (i != 0) out += " / ";
    out += fixed(c.class_avg[i], 1);
  }
  return out;
}

void json_string(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

RunReport build_run_report(std::string command, const HostModel* model,
                           const std::vector<obs::Event>& events,
                           const obs::MetricsRegistry* metrics) {
  RunReport report;
  report.command = std::move(command);
  if (model != nullptr) {
    report.has_model = true;
    report.model = *model;
  }
  report.analysis = obs::analyze_trace(events);
  if (metrics != nullptr) report.counters = metrics->counter_values();
  return report;
}

std::string render_markdown(const RunReport& report,
                            const RunReportOptions& options) {
  const obs::TraceAnalysis& a = report.analysis;
  std::ostringstream out;
  out << "# numaio run report\n\n";
  out << "- command: `" << report.command << "`\n";
  out << "- trace records: " << a.num_records;
  if (a.last_ns >= 0.0) {
    out << ", simulated window: " << ms(a.first_ns) << " – " << ms(a.last_ns)
        << " ms";
  }
  out << "\n- critical path: " << ms(a.critical_path_ns)
      << " ms end-to-end over " << a.critical_path.size() << " steps\n";

  if (report.has_model) {
    out << "\n## Performance classes (" << report.model.host_name << ", "
        << report.model.num_nodes << " nodes, revision "
        << report.model.revision << (report.model.stale ? ", STALE" : "")
        << ")\n\n";
    out << "| target | dir | classes | class avg Gbps |\n";
    out << "|---|---|---|---|\n";
    for (NodeId t = 0; t < report.model.num_nodes; ++t) {
      for (const Direction dir :
           {Direction::kDeviceWrite, Direction::kDeviceRead}) {
        const Classification& c = report.model.classes_for(t, dir);
        out << "| " << t << " | " << dir_name(dir) << " | "
            << classes_text(c) << " | " << class_avgs_text(c) << " |\n";
      }
    }
  }

  if (!a.span_kinds.empty()) {
    out << "\n## Span summary\n\n";
    out << "| span | count | total ms | max ms | GiB | outcomes |\n";
    out << "|---|---|---|---|---|---|\n";
    for (const obs::SpanKindStats& k : a.span_kinds) {
      out << "| " << k.name << " | " << k.count << " | " << ms(k.total_ns)
          << " | " << ms(k.max_ns) << " | " << gib(k.bytes) << " | ";
      for (std::size_t i = 0; i < k.outcomes.size(); ++i) {
        out << (i == 0 ? "" : ", ") << k.outcomes[i].first << " × "
            << k.outcomes[i].second;
      }
      out << " |\n";
    }
  }

  if (!a.critical_path.empty()) {
    out << "\n## Critical path\n\n";
    out << "| # | record | name | self ms | outcome | detail |\n";
    out << "|---|---|---|---|---|---|\n";
    int step_no = 0;
    for (const obs::CriticalPathStep& step : a.critical_path) {
      if (++step_no > options.max_path_steps) {
        out << "| … | | ("
            << static_cast<int>(a.critical_path.size()) - step_no + 1
            << " more steps) | | | |\n";
        break;
      }
      out << "| " << step_no << " | id " << step.id << " | " << step.name
          << " | " << ms(step.self_ns) << " | " << step.outcome << " | "
          << step.detail << " |\n";
    }
  }

  if (!a.contention.empty()) {
    out << "\n## Contention (top " << options.top_contended
        << " node pairs by attributed stall)\n\n";
    out << "| pair | spans | GiB | busy ms | stall ms | stall % |\n";
    out << "|---|---|---|---|---|---|\n";
    int rows = 0;
    for (const obs::ContentionCell& cell : a.contention) {
      if (++rows > options.top_contended) break;
      out << "| " << cell.node_a << " → " << cell.node_b << " | "
          << cell.spans << " | " << gib(cell.bytes) << " | "
          << ms(cell.busy_ns) << " | " << ms(cell.stall_ns) << " | "
          << fixed(100.0 * cell.stall_frac(), 1) << " |\n";
    }
  }

  out << "\n## Faults & retries\n\n";
  out << "- transitions: " << a.faults.transitions
      << ", retries: " << a.faults.retries << ", aborts: " << a.faults.aborts
      << ", records caused by faults: " << a.faults.caused << "\n";
  if (!a.faults.by_fault.empty()) {
    out << "\n| fault transition | consequences |\n|---|---|\n";
    for (const auto& [label, count] : a.faults.by_fault) {
      out << "| " << label << " | " << count << " |\n";
    }
  }

  if (!report.counters.empty()) {
    out << "\n## Counters\n\n| counter | value |\n|---|---|\n";
    for (const auto& c : report.counters) {
      out << "| " << c.name << " | " << g17(c.value) << " |\n";
    }
  }
  return out.str();
}

std::string render_json(const RunReport& report,
                        const RunReportOptions& options) {
  const obs::TraceAnalysis& a = report.analysis;
  std::ostringstream out;
  out << "{\n  \"command\": ";
  json_string(out, report.command);
  out << ",\n  \"records\": " << a.num_records;
  out << ",\n  \"sim_first_ns\": " << g17(a.first_ns);
  out << ",\n  \"sim_last_ns\": " << g17(a.last_ns);
  out << ",\n  \"critical_path_ns\": " << g17(a.critical_path_ns);

  out << ",\n  \"classes\": [";
  if (report.has_model) {
    bool first = true;
    for (NodeId t = 0; t < report.model.num_nodes; ++t) {
      for (const Direction dir :
           {Direction::kDeviceWrite, Direction::kDeviceRead}) {
        const Classification& c = report.model.classes_for(t, dir);
        out << (first ? "\n" : ",\n") << "    {\"target\": " << t
            << ", \"dir\": \"" << dir_name(dir) << "\", \"classes\": [";
        for (std::size_t i = 0; i < c.classes.size(); ++i) {
          out << (i == 0 ? "[" : ", [");
          for (std::size_t j = 0; j < c.classes[i].size(); ++j) {
            out << (j == 0 ? "" : ", ") << c.classes[i][j];
          }
          out << "]";
        }
        out << "], \"avg_gbps\": [";
        for (std::size_t i = 0; i < c.class_avg.size(); ++i) {
          out << (i == 0 ? "" : ", ") << g17(c.class_avg[i]);
        }
        out << "]}";
        first = false;
      }
    }
    if (!first) out << "\n  ";
  }
  out << "]";

  out << ",\n  \"span_kinds\": [";
  for (std::size_t i = 0; i < a.span_kinds.size(); ++i) {
    const obs::SpanKindStats& k = a.span_kinds[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": ";
    json_string(out, k.name);
    out << ", \"count\": " << k.count << ", \"unclosed\": " << k.unclosed
        << ", \"total_ns\": " << g17(k.total_ns) << ", \"max_ns\": "
        << g17(k.max_ns) << ", \"bytes\": " << k.bytes << ", \"outcomes\": {";
    for (std::size_t j = 0; j < k.outcomes.size(); ++j) {
      out << (j == 0 ? "" : ", ");
      json_string(out, k.outcomes[j].first);
      out << ": " << k.outcomes[j].second;
    }
    out << "}}";
  }
  out << (a.span_kinds.empty() ? "]" : "\n  ]");

  out << ",\n  \"critical_path\": [";
  const std::size_t steps =
      std::min(a.critical_path.size(),
               static_cast<std::size_t>(options.max_path_steps));
  for (std::size_t i = 0; i < steps; ++i) {
    const obs::CriticalPathStep& s = a.critical_path[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"id\": " << s.id
        << ", \"name\": ";
    json_string(out, s.name);
    out << ", \"self_ns\": " << g17(s.self_ns) << ", \"start_ns\": "
        << g17(s.start_ns) << ", \"end_ns\": " << g17(s.end_ns)
        << ", \"outcome\": ";
    json_string(out, s.outcome);
    out << ", \"detail\": ";
    json_string(out, s.detail);
    out << "}";
  }
  out << (steps == 0 ? "]" : "\n  ]");

  out << ",\n  \"contention\": [";
  const std::size_t cells =
      std::min(a.contention.size(),
               static_cast<std::size_t>(options.top_contended));
  for (std::size_t i = 0; i < cells; ++i) {
    const obs::ContentionCell& c = a.contention[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"node_a\": " << c.node_a
        << ", \"node_b\": " << c.node_b << ", \"spans\": " << c.spans
        << ", \"bytes\": " << c.bytes << ", \"busy_ns\": " << g17(c.busy_ns)
        << ", \"stall_ns\": " << g17(c.stall_ns) << ", \"stall_frac\": "
        << g17(c.stall_frac()) << "}";
  }
  out << (cells == 0 ? "]" : "\n  ]");

  out << ",\n  \"faults\": {\"transitions\": " << a.faults.transitions
      << ", \"retries\": " << a.faults.retries << ", \"aborts\": "
      << a.faults.aborts << ", \"caused\": " << a.faults.caused
      << ", \"by_fault\": [";
  for (std::size_t i = 0; i < a.faults.by_fault.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "{\"fault\": ";
    json_string(out, a.faults.by_fault[i].first);
    out << ", \"caused\": " << a.faults.by_fault[i].second << "}";
  }
  out << "]}";

  out << ",\n  \"counters\": {";
  for (std::size_t i = 0; i < report.counters.size(); ++i) {
    out << (i == 0 ? "" : ", ");
    json_string(out, report.counters[i].name);
    out << ": " << g17(report.counters[i].value);
  }
  out << "}\n}\n";
  return out.str();
}

}  // namespace numaio::model
