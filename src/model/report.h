// Plain-text reporting used by the benchmark binaries: bandwidth matrices
// (Fig 3), per-node series (Figs 4-7, 10), and class tables in the shape of
// the paper's Tables IV/V. Everything also exports as CSV for plotting.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "mem/membench.h"
#include "model/classify.h"

namespace numaio::model {

/// "CPUx x MEMy" bandwidth matrix with row/column headers.
std::string format_matrix(const mem::BandwidthMatrix& m,
                          const std::string& row_prefix = "CPU",
                          const std::string& col_prefix = "MEM");

/// One labelled series, e.g. per-node bandwidths of a model.
std::string format_series(const std::string& title,
                          std::span<const sim::Gbps> values,
                          const std::string& label_prefix = "node");

/// A Tables-IV/V-style block: one classification plus measured rows.
struct MeasuredRow {
  std::string label;                 ///< e.g. "TCP sender".
  std::vector<sim::Gbps> per_node;   ///< Value per node.
};
std::string format_class_table(const Classification& classes,
                               const std::string& model_label,
                               std::span<const sim::Gbps> model_values,
                               std::span<const MeasuredRow> rows);

/// Per-class range/avg of `per_node` under an existing classification.
struct ClassSummary {
  std::vector<std::pair<sim::Gbps, sim::Gbps>> range;
  std::vector<sim::Gbps> avg;
};
ClassSummary summarize_by_class(const Classification& classes,
                                std::span<const sim::Gbps> per_node);

/// CSV with a header row; `row_labels` indexes the first column.
std::string to_csv(std::span<const std::string> col_names,
                   std::span<const std::string> row_labels,
                   const std::vector<std::vector<double>>& cells);

/// ASCII heatmap of a bandwidth matrix: one shade character per cell,
/// scaled min..max over the whole matrix (' ' lightest load, '@' peak
/// bandwidth). Makes the Fig-3 asymmetry visible at a glance in a
/// terminal.
std::string format_heatmap(const mem::BandwidthMatrix& m,
                           const std::string& row_prefix = "CPU",
                           const std::string& col_prefix = "MEM");

}  // namespace numaio::model
