// Run reports: one deterministic document that answers "what did this
// run measure, what dominated its time, and what got in the way".
//
// The paper's deliverables are the Tables IV/V class structure and the
// Eq. 1 validation; the degraded-mode PRs added retries, aborts and
// fault-shaped estimates on top. A RunReport bundles all of it —
//
//   - the class table of the characterized host (when the run built one),
//   - the trace analysis: span aggregates, the critical path with real
//     record ids, the per-node-pair contention heatmap,
//   - the fault/retry audit and the run's deterministic counters —
//
// and renders to Markdown (human review, checked into experiment logs) or
// JSON (machine diffing, the perf-regression harness). Both renderings
// are pure functions of the inputs: a fixed seed plus --trace-deterministic
// reproduces them byte-for-byte, which is what `numaio_cli report` CTests
// pin.
#pragma once

#include <string>
#include <vector>

#include "model/characterize.h"
#include "obs/analysis.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace numaio::model {

struct RunReportOptions {
  int top_contended = 5;    ///< Contention rows rendered (top-k by stall).
  int max_path_steps = 16;  ///< Critical-path rows rendered.
};

struct RunReport {
  std::string command;  ///< Provenance, e.g. "report --seed 42 --reps 12".
  bool has_model = false;
  HostModel model;  ///< Valid when has_model.
  obs::TraceAnalysis analysis;
  /// Deterministic counters AND gauges from the run's registry, merged
  /// name-sorted into one table (gauges carry the partitioned solver's
  /// component shape, solver.components & co). Histograms are
  /// deliberately excluded: solver.solve_us buckets wall time and would
  /// break byte-determinism.
  std::vector<obs::MetricsRegistry::NamedValue> counters;
  /// §6: queue-wait / dispatch-to-start / migration-delay distributions
  /// derived from the capture's fleet.*/sched.* records (obs/profile.h).
  /// Simulated-time based, so it stays byte-deterministic.
  obs::SchedLatencyProfile sched;
};

/// Assembles a report by streaming a record source through the analyzer
/// — the capture is never materialized, so `--trace-in` reports work on
/// arbitrarily large JSONL files. `model` and `metrics` may be nullptr
/// (trace-only reports, e.g. from a loaded capture file).
RunReport build_run_report(std::string command, const HostModel* model,
                           obs::RecordSource& source,
                           const obs::MetricsRegistry* metrics);

/// In-memory convenience wrapper over the streaming overload.
RunReport build_run_report(std::string command, const HostModel* model,
                           const std::vector<obs::Event>& events,
                           const obs::MetricsRegistry* metrics);

std::string render_markdown(const RunReport& report,
                            const RunReportOptions& options = {});
std::string render_json(const RunReport& report,
                        const RunReportOptions& options = {});

/// The diffable surface of one rendered JSON report — what
/// `report --diff old.json` compares: provenance, the class structure
/// (Tables IV/V), the critical path, span-kind totals and the fault
/// audit.
struct ReportSummary {
  std::string command;
  int records = 0;
  double critical_path_ns = 0.0;
  struct ClassRow {
    int target = -1;
    std::string dir;      ///< "write" / "read".
    std::string classes;  ///< "{0 1} {4 5 6 7}" — serialized-model syntax.
    std::string avgs;     ///< "18.3 / 12.1" — per-class avg Gbps.
  };
  std::vector<ClassRow> classes;
  struct PathStep {
    obs::EventId id = 0;
    std::string name;
    std::string outcome;
    double self_ns = 0.0;
  };
  std::vector<PathStep> critical_path;
  struct SpanRow {
    std::string name;
    int count = 0;
    double total_ns = 0.0;
  };
  std::vector<SpanRow> span_kinds;
  int fault_transitions = 0;
  int retries = 0;
  int aborts = 0;
  int caused = 0;
  /// §6 scheduler-latency rows; empty when the report predates them
  /// (parse tolerates their absence so old baselines still diff).
  struct SchedRow {
    std::string name;
    int count = 0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double p999_ms = 0.0;
  };
  std::vector<SchedRow> sched_latency;
};

/// Parses a render_json() document back into its diffable summary.
/// Throws std::invalid_argument on malformed input.
ReportSummary parse_report_json(const std::string& text);

/// Renders the class-structure / critical-path / span / fault deltas
/// between two report summaries — the Tables IV/V before/after story in
/// one deterministic document.
std::string diff_reports(const ReportSummary& before,
                         const ReportSummary& after);

}  // namespace numaio::model
