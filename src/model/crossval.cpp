#include "model/crossval.h"

#include <cassert>

#include "mem/numademo.h"
#include "mem/stream.h"
#include "model/analysis.h"

namespace numaio::model {

CrossValidation cross_validate(nm::Host& host) {
  const int n = host.num_configured_nodes();
  CrossValidation cv;

  for (mem::DemoModule module : mem::all_demo_modules()) {
    cv.names.push_back(mem::to_string(module));
    std::vector<double> flat;
    flat.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    for (NodeId cpu = 0; cpu < n; ++cpu) {
      for (NodeId mem_node = 0; mem_node < n; ++mem_node) {
        flat.push_back(
            mem::run_demo(host, module, cpu, mem_node).bandwidth);
      }
    }
    cv.cells.push_back(std::move(flat));
  }
  {
    // STREAM Copy with the paper's full protocol (best of repetitions).
    cv.names.push_back("STREAM-Copy");
    mem::StreamBenchmark bench(host, mem::StreamConfig{});
    std::vector<double> flat;
    for (NodeId cpu = 0; cpu < n; ++cpu) {
      for (NodeId mem_node = 0; mem_node < n; ++mem_node) {
        flat.push_back(bench.run(cpu, mem_node).best);
      }
    }
    cv.cells.push_back(std::move(flat));
  }

  const std::size_t k = cv.names.size();
  cv.agreement.assign(k, std::vector<double>(k, 1.0));
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a + 1; b < k; ++b) {
      const double rho = spearman(cv.cells[a], cv.cells[b]);
      cv.agreement[a][b] = rho;
      cv.agreement[b][a] = rho;
    }
  }
  return cv;
}

std::vector<std::vector<int>> agreement_clusters(const CrossValidation& cv,
                                                 double threshold) {
  const int k = static_cast<int>(cv.names.size());
  std::vector<bool> assigned(static_cast<std::size_t>(k), false);
  std::vector<std::vector<int>> clusters;
  for (int seed = 0; seed < k; ++seed) {
    if (assigned[static_cast<std::size_t>(seed)]) continue;
    std::vector<int> cluster{seed};
    assigned[static_cast<std::size_t>(seed)] = true;
    for (int other = seed + 1; other < k; ++other) {
      if (assigned[static_cast<std::size_t>(other)]) continue;
      if (cv.agreement[static_cast<std::size_t>(seed)]
                      [static_cast<std::size_t>(other)] >= threshold) {
        cluster.push_back(other);
        assigned[static_cast<std::size_t>(other)] = true;
      }
    }
    clusters.push_back(std::move(cluster));
  }
  return clusters;
}

}  // namespace numaio::model
