// Whole-host characterization and persistence.
//
// §V-B: "The methodology used to model the performance of node 7 can also
// be generalized to other nodes in the host and other NUMA systems."
// characterize_host() runs Algorithm 1 for *every* node in both
// directions and classifies each result — the complete I/O character of a
// host, computed once (milliseconds of memcpy per node) and cached.
//
// The text format is versioned and round-trips exactly:
//
//   numaio-model v1
//   host <name> nodes <n>
//   status <revision> fresh|stale       (optional; default "1 fresh")
//   model <target> write|read <bw0> <bw1> ... <bwN-1>
//   classes <target> write|read <k> { <ids> } { <ids> } ...
//   end
//
// The status record carries the model's re-characterization revision and
// whether drift detection has marked it stale; it is emitted only when it
// differs from the default, so v1 files written before it existed parse
// and re-serialize byte-identically.
#pragma once

#include <string>
#include <vector>

#include "model/classify.h"

namespace numaio::model {

struct HostModel {
  std::string host_name;
  int num_nodes = 0;
  /// Indexed by target node.
  std::vector<IoModelResult> write_models;
  std::vector<IoModelResult> read_models;
  std::vector<Classification> write_classes;
  std::vector<Classification> read_classes;
  /// Bumped each time refresh_if_drifted() re-characterizes the host.
  int revision = 1;
  /// Set by drift detection when a re-probe moved outside its class;
  /// consumers (schedule_robust) treat a stale model as unusable until it
  /// is re-characterized.
  bool stale = false;

  const IoModelResult& model_for(NodeId target, Direction dir) const {
    return dir == Direction::kDeviceWrite
               ? write_models[static_cast<std::size_t>(target)]
               : read_models[static_cast<std::size_t>(target)];
  }
  const Classification& classes_for(NodeId target, Direction dir) const {
    return dir == Direction::kDeviceWrite
               ? write_classes[static_cast<std::size_t>(target)]
               : read_classes[static_cast<std::size_t>(target)];
  }
};

struct CharacterizeConfig {
  IoModelConfig iomodel{};
  ClassifyConfig classify{};
};

/// Runs Algorithm 1 for every node in both directions and classifies.
HostModel characterize_host(nm::Host& host,
                            const CharacterizeConfig& config = {});

/// Best non-local binding class for a device attached to `device_node`:
/// the highest-average class beyond class 1 (useful when the local nodes
/// are contended and the scheduler needs the best remote alternative).
int best_remote_class(const HostModel& model, NodeId device_node,
                      Direction dir);

struct DriftConfig {
  /// A re-probe deviating from the stored value by more than this
  /// fraction — or landing outside its class's stored bandwidth range
  /// widened by it — flags drift.
  double rel_tolerance = 0.10;
  /// Config for the re-probe run; defaults to a short run (the probe only
  /// needs one node per class, not characterization-grade averages).
  IoModelConfig iomodel{.repetitions = 25};
};

struct DriftReport {
  bool drifted = false;
  /// One line per probed class, deterministic format.
  std::vector<std::string> notes;
};

/// Drift detection for one (target, direction) model: re-measures the
/// host and compares one representative node per class against the stored
/// bandwidths. A deviation beyond the tolerance, or a probe that lands in
/// a different class's bandwidth range, marks the whole model stale.
/// Probes that themselves abort never mark drift (no evidence either
/// way); they are reported in the notes.
DriftReport check_drift(nm::Host& host, HostModel& model, NodeId target,
                        Direction dir, const DriftConfig& config = {});

/// Runs check_drift for every (target, direction); if any drift was
/// found, re-characterizes the host in place, bumps the revision, clears
/// the stale flag and returns true.
bool refresh_if_drifted(nm::Host& host, HostModel& model,
                        const CharacterizeConfig& config = {},
                        const DriftConfig& drift = {});

/// Serializes to the versioned text format above.
std::string serialize(const HostModel& model);

/// Parses the text format; throws StatusError (StatusCode::kParse, which
/// is-a std::invalid_argument) with a line number on malformed input.
HostModel parse_host_model(const std::string& text);

/// Reads and parses a host-model file. Throws StatusError:
/// StatusCode::kNoFile when the file cannot be read, StatusCode::kParse
/// when its contents are malformed.
HostModel load_model(const std::string& path);

/// Writes serialize(model) to `path`. Throws StatusError
/// (StatusCode::kNoFile) when the file cannot be written.
void save_model(const HostModel& model, const std::string& path);

}  // namespace numaio::model
