// Whole-host characterization and persistence.
//
// §V-B: "The methodology used to model the performance of node 7 can also
// be generalized to other nodes in the host and other NUMA systems."
// characterize_host() runs Algorithm 1 for *every* node in both
// directions and classifies each result — the complete I/O character of a
// host, computed once (milliseconds of memcpy per node) and cached.
//
// The text format is versioned and round-trips exactly:
//
//   numaio-model v1
//   host <name> nodes <n>
//   model <target> write|read <bw0> <bw1> ... <bwN-1>
//   classes <target> write|read <k> { <ids> } { <ids> } ...
//   end
#pragma once

#include <string>
#include <vector>

#include "model/classify.h"

namespace numaio::model {

struct HostModel {
  std::string host_name;
  int num_nodes = 0;
  /// Indexed by target node.
  std::vector<IoModelResult> write_models;
  std::vector<IoModelResult> read_models;
  std::vector<Classification> write_classes;
  std::vector<Classification> read_classes;

  const IoModelResult& model_for(NodeId target, Direction dir) const {
    return dir == Direction::kDeviceWrite
               ? write_models[static_cast<std::size_t>(target)]
               : read_models[static_cast<std::size_t>(target)];
  }
  const Classification& classes_for(NodeId target, Direction dir) const {
    return dir == Direction::kDeviceWrite
               ? write_classes[static_cast<std::size_t>(target)]
               : read_classes[static_cast<std::size_t>(target)];
  }
};

struct CharacterizeConfig {
  IoModelConfig iomodel{};
  ClassifyConfig classify{};
};

/// Runs Algorithm 1 for every node in both directions and classifies.
HostModel characterize_host(nm::Host& host,
                            const CharacterizeConfig& config = {});

/// Best non-local binding class for a device attached to `device_node`:
/// the highest-average class beyond class 1 (useful when the local nodes
/// are contended and the scheduler needs the best remote alternative).
int best_remote_class(const HostModel& model, NodeId device_node,
                      Direction dir);

/// Serializes to the versioned text format above.
std::string serialize(const HostModel& model);

/// Parses the text format; throws std::invalid_argument with a line
/// number on malformed input.
HostModel parse_host_model(const std::string& text);

}  // namespace numaio::model
