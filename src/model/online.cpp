#include "model/online.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "io/fio.h"
#include "simcore/fluid_sim.h"

namespace numaio::model {

std::string to_string(OnlinePolicy policy) {
  switch (policy) {
    case OnlinePolicy::kAllLocal:
      return "all-local";
    case OnlinePolicy::kRoundRobin:
      return "round-robin";
    case OnlinePolicy::kModelSpread:
      return "model-spread";
    case OnlinePolicy::kModelAdaptive:
      return "model-adaptive";
  }
  return "?";
}

namespace {

/// Pool of nodes from the classes whose model average is within
/// `tolerance` of the best class average.
std::vector<NodeId> build_pool(const Classification& classes,
                               double tolerance) {
  double best = 0.0;
  for (double v : classes.class_avg) best = std::max(best, v);
  std::vector<NodeId> pool;
  for (int c = 0; c < classes.num_classes(); ++c) {
    if (classes.class_avg[static_cast<std::size_t>(c)] >=
        best * (1.0 - tolerance)) {
      const auto& members = classes.classes[static_cast<std::size_t>(c)];
      pool.insert(pool.end(), members.begin(), members.end());
    }
  }
  std::sort(pool.begin(), pool.end());
  assert(!pool.empty());
  return pool;
}

}  // namespace

OnlineScheduler::OnlineScheduler(nm::Host& host,
                                 const io::PcieDevice& device,
                                 Classification write_classes,
                                 Classification read_classes,
                                 OnlineConfig config)
    : host_(host),
      device_(device),
      write_classes_(std::move(write_classes)),
      read_classes_(std::move(read_classes)),
      config_(config),
      active_(static_cast<std::size_t>(host.num_configured_nodes()), 0) {
  assert(config_.chunks_per_task > 0);
  write_pool_ = build_pool(write_classes_, config_.class_tolerance);
  read_pool_ = build_pool(read_classes_, config_.class_tolerance);
}

void OnlineScheduler::set_observer(obs::Context* obs) {
  obs_ = obs;
  if (obs_ == nullptr) return;
  m_tasks_ = obs_->metrics.counter("sched.tasks");
  m_chunks_ = obs_->metrics.counter("sched.chunks");
  m_migrations_ = obs_->metrics.counter("sched.migrations");
  m_pool_shrunk_ = obs_->metrics.counter("sched.pool_shrunk");
}

const std::vector<NodeId>& OnlineScheduler::pool_for(
    const std::string& engine) const {
  return device_.engine(engine).to_device ? write_pool_ : read_pool_;
}

std::vector<NodeId> OnlineScheduler::usable_pool(
    const std::vector<NodeId>& pool, sim::Ns now) const {
  if (faults_ == nullptr) return pool;
  const std::vector<NodeId> degraded = faults_->degraded_nodes(now);
  if (degraded.empty()) return pool;
  std::vector<NodeId> ok;
  ok.reserve(pool.size());
  for (NodeId node : pool) {
    if (!std::binary_search(degraded.begin(), degraded.end(), node)) {
      ok.push_back(node);
    }
  }
  return ok.empty() ? pool : ok;
}

NodeId OnlineScheduler::choose_node(const std::string& engine,
                                    int task_index, sim::Ns now,
                                    obs::SpanId span) {
  // Notes when degraded nodes were dropped from the candidate pool — the
  // moment the policy visibly deviates from its fault-free choice.
  const auto note_shrunk = [&](const std::vector<NodeId>& full,
                               const std::vector<NodeId>& usable) {
    if (obs_ == nullptr || usable.size() >= full.size()) return;
    obs_->metrics.add(m_pool_shrunk_);
    if (obs_->trace.enabled()) {
      obs::EventFields fields;
      fields.t_sim = now;
      const std::string detail =
          std::to_string(full.size() - usable.size()) + " degraded of " +
          std::to_string(full.size()) + " pooled nodes";
      fields.detail = detail;
      obs_->trace.event("sched.avoid_degraded", span,
                        faults_ != nullptr ? faults_->last_transition_event()
                                           : 0,
                        "avoided", fields);
    }
  };
  switch (config_.policy) {
    case OnlinePolicy::kAllLocal:
      return device_.attach_node();  // the naive baseline never reacts
    case OnlinePolicy::kRoundRobin:
      return (rr_cursor_++) % host_.num_configured_nodes();
    case OnlinePolicy::kModelSpread: {
      const auto& full = pool_for(engine);
      const auto pool = usable_pool(full, now);
      note_shrunk(full, pool);
      return pool[static_cast<std::size_t>(task_index) % pool.size()];
    }
    case OnlinePolicy::kModelAdaptive: {
      // Least-loaded non-degraded node of the pool (ties: lowest id).
      const auto& full = pool_for(engine);
      const auto pool = usable_pool(full, now);
      note_shrunk(full, pool);
      NodeId best = pool.front();
      for (NodeId node : pool) {
        if (active_[static_cast<std::size_t>(node)] <
            active_[static_cast<std::size_t>(best)]) {
          best = node;
        }
      }
      return best;
    }
  }
  return device_.attach_node();
}

NodeId OnlineScheduler::place_request(const std::string& engine,
                                      int request_index, sim::Ns now) {
  return choose_node(engine, request_index, now, 0);
}

void OnlineScheduler::note_start(NodeId node) {
  ++active_[static_cast<std::size_t>(node)];
}

void OnlineScheduler::note_finish(NodeId node) {
  assert(active_[static_cast<std::size_t>(node)] > 0);
  --active_[static_cast<std::size_t>(node)];
}

int OnlineScheduler::active_on(NodeId node) const {
  return active_[static_cast<std::size_t>(node)];
}

OnlineReport OnlineScheduler::run(std::span<const IoTask> tasks) {
  fabric::Machine& machine = host_.machine();
  if (config_.solve.has_value()) {
    machine.solver().set_options(*config_.solve);
  }
  sim::FluidSimulation fluid(machine.solver());
  if (faults_ != nullptr) faults_->arm(fluid);

  obs::TraceRecorder* trace =
      obs_ != nullptr && obs_->trace.enabled() ? &obs_->trace : nullptr;
  obs::SpanId run_span = 0;
  if (trace != nullptr) {
    const std::string policy_text = to_string(config_.policy);
    obs::EventFields fields;
    fields.node_a = device_.attach_node();
    fields.detail = policy_text;  // EventFields::detail is a string_view.
    run_span = trace->begin_span("online.run", 0, fields);
  }

  struct TaskState {
    const IoTask* task = nullptr;
    int index = 0;
    int chunks_left = 0;
    sim::Bytes chunk_bytes = 0;
    sim::Bytes last_chunk_bytes = 0;  // absorbs rounding
    NodeId node = 0;
    nm::Buffer buffer;
    TaskOutcome outcome;
  };
  std::vector<TaskState> states(tasks.size());
  std::fill(active_.begin(), active_.end(), 0);
  rr_cursor_ = 0;

  sim::Bytes total_bytes = 0;

  // Chunk launcher; defined as a std::function so completion callbacks can
  // recurse into it.
  std::function<void(TaskState&, sim::Ns)> launch_chunk =
      [&](TaskState& state, sim::Ns at) {
        const sim::Bytes bytes = state.chunks_left == 1
                                     ? state.last_chunk_bytes
                                     : state.chunk_bytes;
        io::StreamSpec spec;
        spec.device = &device_;
        spec.engine = state.task->engine;
        spec.cpu_node = state.node;
        spec.mem_node = state.buffer.home();
        const auto shape = io::shape_stream(machine, spec);
        ++active_[static_cast<std::size_t>(state.node)];
        if (obs_ != nullptr) obs_->metrics.add(m_chunks_);
        fluid.start_transfer_at(
            at, shape.usages, bytes, shape.rate_cap,
            [&, bytes](sim::FluidSimulation::TransferId, sim::Ns now) {
              --active_[static_cast<std::size_t>(state.node)];
              --state.chunks_left;
              (void)bytes;
              if (state.chunks_left == 0) {
                state.outcome.completion = now;
                host_.free(state.buffer);
                return;
              }
              sim::Ns next_start = now;
              if (config_.policy == OnlinePolicy::kModelAdaptive) {
                const NodeId better =
                    choose_node(state.task->engine, state.index, now,
                                run_span);
                if (better != state.node) {
                  // Migrate: re-home the buffer, pay the pause.
                  host_.free(state.buffer);
                  state.buffer = host_.alloc_local(
                      128 * sim::kKiB * 16, better);
                  if (obs_ != nullptr) obs_->metrics.add(m_migrations_);
                  if (trace != nullptr) {
                    obs::EventFields fields;
                    fields.node_a = state.node;
                    fields.node_b = better;
                    fields.t_sim = now;
                    const std::string detail =
                        "task " + std::to_string(state.index);
                    fields.detail = detail;
                    const obs::EventId cause =
                        faults_ != nullptr &&
                                faults_->any_capacity_fault_active(now)
                            ? faults_->last_transition_event()
                            : 0;
                    trace->event("sched.migrate", run_span, cause,
                                 "migrated", fields);
                  }
                  state.node = better;
                  ++state.outcome.migrations;
                  next_start = now + config_.migration_cost;
                }
              }
              launch_chunk(state, next_start);
            });
      };

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    TaskState& state = states[i];
    state.task = &tasks[i];
    state.index = static_cast<int>(i);
    // Tiny tasks run as one chunk; others split for migration points.
    const int chunks =
        tasks[i].bytes < static_cast<sim::Bytes>(config_.chunks_per_task)
            ? 1
            : config_.chunks_per_task;
    state.chunks_left = chunks;
    state.chunk_bytes = tasks[i].bytes / static_cast<sim::Bytes>(chunks);
    state.last_chunk_bytes =
        tasks[i].bytes -
        state.chunk_bytes * static_cast<sim::Bytes>(chunks - 1);
    state.node = choose_node(tasks[i].engine, state.index, tasks[i].arrival,
                             run_span);
    state.outcome.arrival = tasks[i].arrival;
    state.outcome.first_node = state.node;
    state.buffer = host_.alloc_local(128 * sim::kKiB * 16, state.node);
    total_bytes += tasks[i].bytes;
    if (obs_ != nullptr) obs_->metrics.add(m_tasks_);
    if (trace != nullptr) {
      obs::EventFields fields;
      fields.node_a = state.node;
      fields.bytes = static_cast<long long>(tasks[i].bytes);
      fields.t_sim = tasks[i].arrival;
      fields.detail = tasks[i].engine;
      trace->event("online.place", run_span, 0, "placed", fields);
    }
    launch_chunk(state, tasks[i].arrival);
  }

  fluid.run();
  if (faults_ != nullptr) faults_->restore();

  OnlineReport report;
  sim::Ns turnaround_sum = 0.0;
  for (TaskState& state : states) {
    report.tasks.push_back(state.outcome);
    report.makespan = std::max(report.makespan, state.outcome.completion);
    report.total_migrations += state.outcome.migrations;
    turnaround_sum += state.outcome.turnaround();
  }
  if (!states.empty()) {
    report.mean_turnaround = turnaround_sum / static_cast<double>(states.size());
  }
  if (report.makespan > 0.0) {
    report.aggregate = sim::gbps(total_bytes, report.makespan);
  }
  if (trace != nullptr) {
    obs::EventFields fields;
    fields.bytes = static_cast<long long>(total_bytes);
    fields.t_sim = report.makespan;
    trace->end_span(run_span, "ok", fields);
  }
  return report;
}

}  // namespace numaio::model
