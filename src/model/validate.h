// Methodology validation suite.
//
// The paper's pitch is that the memcpy model "can be obtained, and used to
// improve application I/O behavior ... for all NUMA platforms" (§I-B).
// For a new platform an adopter wants to *check* that before trusting the
// classes. ValidationSuite re-runs the paper's own evidence chain on any
// testbed — model vs measured I/O rank agreement, class-value coherence,
// Eq.-1 prediction error, scheduler win — and reports each claim with its
// measured margin.
#pragma once

#include <string>
#include <vector>

#include "io/testbed.h"
#include "model/classify.h"

namespace numaio::model {

struct ClaimResult {
  std::string name;
  bool passed = false;
  double value = 0.0;      ///< The measured statistic.
  double threshold = 0.0;  ///< What it was checked against.
  std::string detail;
};

struct ValidationReport {
  std::vector<ClaimResult> claims;
  bool all_passed() const {
    for (const auto& c : claims) {
      if (!c.passed) return false;
    }
    return true;
  }
  std::string to_string() const;
};

struct ValidateConfig {
  /// Minimum Spearman agreement between the model and each offloaded
  /// engine (RDMA/SSD; TCP is exempted — the paper's own TCP rows carry
  /// non-NUMA residuals).
  double min_offloaded_spearman = 0.6;
  /// Maximum relative spread of measured I/O within one model class.
  double max_within_class_spread = 0.12;
  /// Maximum Eq.-1 relative error on a mixed workload.
  double max_prediction_error = 0.08;
  /// Repetitions for Algorithm 1 (lower for quick checks).
  int iomodel_repetitions = 100;
};

/// Runs the full validation chain on a testbed. Exercises the NIC and SSD
/// engines; leaves the testbed state unchanged.
ValidationReport validate_methodology(io::Testbed& testbed,
                                      const ValidateConfig& config = {});

}  // namespace numaio::model
