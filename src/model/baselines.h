// Baseline models the paper compares (and finds wanting):
//
//  - Hop-distance model (§I-A): "most of current performance models and
//    resource assignment algorithms for NUMA architecture are based on
//    hop-distance, directly or indirectly". We implement it honestly: fit
//    one bandwidth level per hop count from a measured matrix, then
//    predict per-binding I/O bandwidth and classes from hops alone.
//  - STREAM-derived models (Fig 4) are in mem/membench.h.
//
// The benches score these against the iomodel on the same footing
// (rank agreement, class accuracy), which is the paper's §IV argument
// made quantitative.
#pragma once

#include <vector>

#include "mem/membench.h"
#include "model/classify.h"
#include "topo/routing.h"

namespace numaio::model {

/// A fitted hop-distance bandwidth model: one level per hop count.
struct HopModel {
  /// level[h] = mean measured bandwidth over all pairs at h hops.
  std::vector<sim::Gbps> level;

  sim::Gbps predict(int hops) const {
    const auto h = static_cast<std::size_t>(hops);
    return h < level.size() ? level[h] : level.back();
  }
};

/// Fits the hop model from a measured (cpu x mem) bandwidth matrix and
/// the host's nominal wiring.
HopModel fit_hop_model(const mem::BandwidthMatrix& bw,
                       const topo::Topology& topo);

/// Per-node bandwidth prediction for bindings against `target`
/// (prediction for node i = level[hops(i, target)]).
std::vector<sim::Gbps> predict_for_target(const HopModel& model,
                                          const topo::Topology& topo,
                                          NodeId target);

/// Classes implied by hop distance from `target`: one class per hop count
/// (hop 0 and the package neighbor share class 1, mirroring the paper's
/// local+neighbor convention).
Classification classify_by_hops(const topo::Topology& topo, NodeId target);

/// Fraction of nodes two classifications place in the same relative class
/// order: for every node pair ordered by `reference` class, does `other`
/// agree? (1.0 = identical orderings, skips same-class pairs.)
double class_agreement(const Classification& reference,
                       const Classification& other);

}  // namespace numaio::model
