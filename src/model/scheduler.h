// Model-assisted task placement (§V-B, third application).
//
// "In a multi-user environment, binding all I/O tasks to their local node
// will lead to severe performance degradation due to the contention of
// shared resource. With the knowledge of our performance model, the task
// scheduler can distribute application processes to nodes in the same
// class or the classes with the same performance."
//
// The workflow mirrors the paper's RDMA_WRITE example: classify with the
// memcpy model, probe one representative binding per class to get I/O
// class values, pool the classes whose probed performance is within a
// tolerance of the best, and round-robin processes over the pooled nodes.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "model/baselines.h"
#include "model/characterize.h"
#include "model/classify.h"

namespace numaio::model {

struct SpreadConfig {
  /// Classes whose probed value is within this fraction of the best
  /// class's value join the placement pool ("almost identical
  /// performance" in the paper's example).
  double class_tolerance = 0.02;
};

struct Placement {
  /// Binding node per process.
  std::vector<NodeId> nodes;
};

/// Spread `num_processes` over all nodes of the near-best classes,
/// round-robin. `class_values` holds the probed I/O bandwidth per class.
Placement schedule_spread(const Classification& classes,
                          std::span<const sim::Gbps> class_values,
                          int num_processes, const SpreadConfig& config = {});

/// The naive policy the paper argues against: everything on the
/// device-local node.
Placement schedule_all_local(NodeId device_node, int num_processes);

struct RobustScheduleConfig {
  SpreadConfig spread{};
  /// A model whose probe confidence for the target fell below this is
  /// treated as unusable and triggers the hop-distance fallback.
  double min_confidence = 0.5;
  /// Optional observability: each call emits a `sched.place` event
  /// (outcome "model" or "fallback" with the reason) and maintains the
  /// sched.placements / sched.fallbacks counters. nullptr = silent.
  obs::Context* obs = nullptr;
  /// Span the `sched.place` event is recorded under.
  obs::SpanId obs_parent = 0;
};

struct RobustPlacement {
  Placement placement;
  /// True when the hop-distance baseline placed the processes because the
  /// measured model was unusable (stale, aborted probes, low confidence,
  /// or malformed class values).
  bool used_fallback = false;
  std::string reason;  ///< Why the fallback engaged; empty when it didn't.
};

/// Model-assisted spread with graceful degradation. When the model is
/// healthy this is exactly schedule_spread over the target's classes;
/// when it is stale, its probes aborted or came back low-confidence, or
/// the probed class values are unusable, it falls back to the
/// hop-distance baseline (§I-A) and spreads over the local+neighbour hop
/// class instead of failing — degraded placement beats no placement.
RobustPlacement schedule_robust(const HostModel& model,
                                const topo::Topology& topo, NodeId target,
                                Direction dir,
                                std::span<const sim::Gbps> class_values,
                                int num_processes,
                                const RobustScheduleConfig& config = {});

}  // namespace numaio::model
