// Online placement and migration of I/O tasks — the paper's first
// future-work direction (§VI): "placing and migrating parallel I/O
// threads for data-intensive applications based on the result of our
// characterization methodology".
//
// Tasks arrive over time (model/workload.h) and must be bound to a NUMA
// node before they start. Policies:
//   kAllLocal       everything on the device node (the naive baseline the
//                   paper argues against),
//   kRoundRobin     cycle all nodes, model-blind,
//   kModelSpread    cycle only the near-best model classes (static),
//   kModelAdaptive  pick the least-loaded pooled node at every chunk
//                   boundary, migrating the task when a better node opens
//                   up (each move costs a pause).
// Tasks are split into chunks; a migration re-homes the task's buffers and
// continues on the new node after `migration_cost`.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "faults/injector.h"
#include "io/device.h"
#include "model/classify.h"
#include "model/workload.h"
#include "nm/host.h"
#include "simcore/solve_options.h"

namespace numaio::model {

enum class OnlinePolicy {
  kAllLocal,
  kRoundRobin,
  kModelSpread,
  kModelAdaptive,
};

std::string to_string(OnlinePolicy policy);

struct OnlineConfig {
  OnlinePolicy policy = OnlinePolicy::kModelAdaptive;
  /// Migration granularity: a task re-evaluates placement this many times.
  int chunks_per_task = 8;
  /// Pause per migration (buffer re-registration, page moves).
  sim::Ns migration_cost = 2.0e6;  // 2 ms
  /// Classes whose model average is within this fraction of the best
  /// remote-aware class join the placement pool.
  double class_tolerance = 0.25;
  /// When set, run() reconfigures the host solver's execution engine
  /// (threads / component partitioning; simcore/solve_options.h) before
  /// simulating. Unset inherits whatever the host's machine was built
  /// with — so a Testbed configured via --solver-threads keeps its
  /// setting through a default-configured scheduler.
  std::optional<sim::SolveOptions> solve;
};

struct TaskOutcome {
  sim::Ns arrival = 0.0;
  sim::Ns completion = 0.0;
  NodeId first_node = 0;
  int migrations = 0;
  sim::Ns turnaround() const { return completion - arrival; }
};

struct OnlineReport {
  std::vector<TaskOutcome> tasks;
  sim::Ns makespan = 0.0;        ///< Last completion time.
  sim::Gbps aggregate = 0.0;     ///< Total bytes / makespan.
  sim::Ns mean_turnaround = 0.0;
  int total_migrations = 0;
};

/// Executes the workload against a single NIC-style device under the given
/// policy. `write_classes`/`read_classes` are the iomodel classifications
/// of the device's node for the two directions.
class OnlineScheduler {
 public:
  OnlineScheduler(nm::Host& host, const io::PcieDevice& device,
                  Classification write_classes, Classification read_classes,
                  OnlineConfig config = {});

  /// Attaches a fault injector: its plan is armed on the run's timeline,
  /// and the model-driven policies steer chunk placement away from nodes
  /// the injector reports degraded at decision time — so a fault landing
  /// mid-run migrates the affected tasks at their next chunk boundary.
  /// Pass nullptr to detach. The injector must outlive run().
  void set_fault_injector(faults::FaultInjector* injector) {
    faults_ = injector;
  }

  /// Attaches an observability context (nullptr detaches). run() then
  /// opens an `online.run` span, emits `online.place` per task,
  /// `sched.migrate` per migration (citing the causing fault transition
  /// when one is active) and `sched.avoid_degraded` when the candidate
  /// pool shrank, and maintains the sched.* counters. The context must
  /// outlive run().
  void set_observer(obs::Context* obs);

  OnlineReport run(std::span<const IoTask> tasks);

  // --- streaming placement (the fleet serving core drives these) ---------
  // run() owns a whole batch; a fleet host instead asks for one placement
  // at a time and reports starts/finishes itself, so the same class-aware,
  // degraded-node-avoiding policy serves an open-ended request stream.

  /// Picks a node for one request of the given engine ("write"/"read") at
  /// time `now`, honouring the configured policy and steering around nodes
  /// the attached injector reports degraded. Does not change load state.
  NodeId place_request(const std::string& engine, int request_index,
                       sim::Ns now);
  /// Load-tracking hooks: a request started on / left `node`.
  void note_start(NodeId node);
  void note_finish(NodeId node);
  /// Currently tracked in-flight count on `node`.
  int active_on(NodeId node) const;

 private:
  NodeId choose_node(const std::string& engine, int task_index, sim::Ns now,
                     obs::SpanId span = 0);

  const std::vector<NodeId>& pool_for(const std::string& engine) const;
  /// The pool minus currently-degraded nodes; falls back to the full pool
  /// when every pooled node is degraded (bad placement beats none).
  std::vector<NodeId> usable_pool(const std::vector<NodeId>& pool,
                                  sim::Ns now) const;

  nm::Host& host_;
  const io::PcieDevice& device_;
  Classification write_classes_;
  Classification read_classes_;
  OnlineConfig config_;
  faults::FaultInjector* faults_ = nullptr;
  std::vector<NodeId> write_pool_;
  std::vector<NodeId> read_pool_;
  std::vector<int> active_;  ///< Running chunks per node.
  int rr_cursor_ = 0;

  obs::Context* obs_ = nullptr;
  obs::MetricsRegistry::Id m_tasks_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_chunks_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_migrations_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_pool_shrunk_ = obs::MetricsRegistry::kNone;
};

}  // namespace numaio::model
