#include "model/report.h"

#include <cassert>
#include <iomanip>
#include <sstream>

namespace numaio::model {

namespace {
constexpr int kColWidth = 9;

void put_value(std::ostringstream& out, double v) {
  out << std::right << std::setw(kColWidth) << std::fixed
      << std::setprecision(2) << v;
}
}  // namespace

std::string format_matrix(const mem::BandwidthMatrix& m,
                          const std::string& row_prefix,
                          const std::string& col_prefix) {
  std::ostringstream out;
  const int n = m.num_nodes();
  out << std::left << std::setw(kColWidth) << "";
  for (int c = 0; c < n; ++c) {
    out << std::right << std::setw(kColWidth)
        << (col_prefix + std::to_string(c));
  }
  out << '\n';
  for (int r = 0; r < n; ++r) {
    out << std::left << std::setw(kColWidth)
        << (row_prefix + std::to_string(r));
    for (int c = 0; c < n; ++c) put_value(out, m.at(r, c));
    out << '\n';
  }
  return out.str();
}

std::string format_series(const std::string& title,
                          std::span<const sim::Gbps> values,
                          const std::string& label_prefix) {
  std::ostringstream out;
  out << title << '\n';
  out << std::left << std::setw(kColWidth) << "";
  for (std::size_t i = 0; i < values.size(); ++i) {
    out << std::right << std::setw(kColWidth)
        << (label_prefix + std::to_string(i));
  }
  out << '\n' << std::left << std::setw(kColWidth) << "Gbps";
  for (const double v : values) put_value(out, v);
  out << '\n';
  return out.str();
}

ClassSummary summarize_by_class(const Classification& classes,
                                std::span<const sim::Gbps> per_node) {
  ClassSummary s;
  for (const auto& cls : classes.classes) {
    double lo = per_node[static_cast<std::size_t>(cls.front())];
    double hi = lo;
    double sum = 0.0;
    for (NodeId v : cls) {
      const double value = per_node[static_cast<std::size_t>(v)];
      lo = std::min(lo, value);
      hi = std::max(hi, value);
      sum += value;
    }
    s.range.emplace_back(lo, hi);
    s.avg.push_back(sum / static_cast<double>(cls.size()));
  }
  return s;
}

std::string format_class_table(const Classification& classes,
                               const std::string& model_label,
                               std::span<const sim::Gbps> model_values,
                               std::span<const MeasuredRow> rows) {
  std::ostringstream out;
  const int k = classes.num_classes();

  out << std::left << std::setw(18) << "Operation";
  for (int c = 0; c < k; ++c) {
    out << std::right << std::setw(16) << ("Class " + std::to_string(c + 1));
  }
  out << '\n';
  out << std::left << std::setw(18) << "Node IDs";
  for (int c = 0; c < k; ++c) {
    std::string ids;
    for (NodeId v : classes.classes[static_cast<std::size_t>(c)]) {
      if (!ids.empty()) ids += ',';
      ids += std::to_string(v);
    }
    out << std::right << std::setw(16) << ids;
  }
  out << '\n';

  auto emit = [&](const std::string& label,
                  std::span<const sim::Gbps> per_node) {
    const ClassSummary s = summarize_by_class(classes, per_node);
    out << std::left << std::setw(18) << (label + " range");
    for (int c = 0; c < k; ++c) {
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(1)
           << s.range[static_cast<std::size_t>(c)].first << "-"
           << s.range[static_cast<std::size_t>(c)].second;
      out << std::right << std::setw(16) << cell.str();
    }
    out << '\n' << std::left << std::setw(18) << (label + " avg");
    for (int c = 0; c < k; ++c) {
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(1)
           << s.avg[static_cast<std::size_t>(c)];
      out << std::right << std::setw(16) << cell.str();
    }
    out << '\n';
  };

  emit(model_label, model_values);
  for (const MeasuredRow& row : rows) emit(row.label, row.per_node);
  return out.str();
}

std::string to_csv(std::span<const std::string> col_names,
                   std::span<const std::string> row_labels,
                   const std::vector<std::vector<double>>& cells) {
  assert(cells.size() == row_labels.size());
  std::ostringstream out;
  for (std::size_t c = 0; c < col_names.size(); ++c) {
    if (c > 0) out << ',';
    out << col_names[c];
  }
  out << '\n';
  for (std::size_t r = 0; r < cells.size(); ++r) {
    out << row_labels[r];
    assert(cells[r].size() + 1 == col_names.size());
    for (const double v : cells[r]) {
      out << ',' << std::fixed << std::setprecision(3) << v;
    }
    out << '\n';
  }
  return out.str();
}

std::string format_heatmap(const mem::BandwidthMatrix& m,
                           const std::string& row_prefix,
                           const std::string& col_prefix) {
  static constexpr char kShades[] = " .:-=+*#%@";
  constexpr int kLevels = 10;
  const int n = m.num_nodes();
  double lo = m.at(0, 0), hi = lo;
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      lo = std::min(lo, m.at(r, c));
      hi = std::max(hi, m.at(r, c));
    }
  }
  std::ostringstream out;
  out << std::left << std::setw(6) << "";
  for (int c = 0; c < n; ++c) out << (col_prefix.empty() ? "" : "") << c;
  out << '\n';
  for (int r = 0; r < n; ++r) {
    out << std::left << std::setw(6) << (row_prefix + std::to_string(r));
    for (int c = 0; c < n; ++c) {
      int level = 0;
      if (hi > lo) {
        level = static_cast<int>((m.at(r, c) - lo) / (hi - lo) *
                                 (kLevels - 1) + 0.5);
      }
      out << kShades[level];
    }
    out << '\n';
  }
  out << "scale: '" << kShades[0] << "' = " << std::fixed
      << std::setprecision(1) << lo << " Gbps ... '"
      << kShades[kLevels - 1] << "' = " << hi << " Gbps\n";
  (void)col_prefix;
  return out.str();
}

}  // namespace numaio::model
