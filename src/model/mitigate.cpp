#include "model/mitigate.h"

#include <algorithm>
#include <cassert>

namespace numaio::model {

MitigationPlan plan_buffer_policies(const Classification& classes,
                                    std::span<const sim::Gbps> class_values,
                                    std::span<const NodeId> process_nodes) {
  assert(static_cast<int>(class_values.size()) == classes.num_classes());
  assert(!process_nodes.empty());

  // The class every re-homed buffer should target.
  int best_class = 0;
  for (int c = 1; c < classes.num_classes(); ++c) {
    if (class_values[static_cast<std::size_t>(c)] >
        class_values[static_cast<std::size_t>(best_class)]) {
      best_class = c;
    }
  }
  const NodeId best_node =
      classes.classes[static_cast<std::size_t>(best_class)].front();

  MitigationPlan plan;
  double planned_sum = 0.0;
  double baseline_sum = 0.0;
  for (const NodeId p : process_nodes) {
    const int own_class = classes.class_of[static_cast<std::size_t>(p)];
    const double own_value =
        class_values[static_cast<std::size_t>(own_class)];
    const double best_value =
        class_values[static_cast<std::size_t>(best_class)];

    ProcessPlan proc;
    proc.cpu_node = p;
    if (best_value > own_value) {
      proc.policy = nm::parse_numactl("--membind=" +
                                      std::to_string(best_node));
      proc.buffer_class = best_class;
      proc.predicted = best_value;
    } else {
      proc.policy = nm::Policy{};  // local preferred
      proc.buffer_class = own_class;
      proc.predicted = own_value;
    }
    planned_sum += proc.predicted;
    baseline_sum += own_value;
    plan.processes.push_back(std::move(proc));
  }
  // Eq. 1 with equal traffic shares per process.
  const double n = static_cast<double>(process_nodes.size());
  plan.predicted_aggregate = planned_sum / n;
  plan.baseline_aggregate = baseline_sum / n;
  return plan;
}

}  // namespace numaio::model
