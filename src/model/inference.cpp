#include "model/inference.h"

#include <algorithm>
#include <cassert>

#include "topo/presets.h"

namespace numaio::model {

double hop_explanation_score(const mem::BandwidthMatrix& bw,
                             const topo::Topology& topo) {
  assert(bw.num_nodes() == topo.num_nodes());
  const topo::Routing routing(topo, topo::Routing::Metric::kHops);
  const int n = bw.num_nodes();
  long long agree = 0, comparable = 0;
  for (topo::NodeId src = 0; src < n; ++src) {
    for (topo::NodeId a = 0; a < n; ++a) {
      for (topo::NodeId b = a + 1; b < n; ++b) {
        const int ha = routing.hop_distance(src, a);
        const int hb = routing.hop_distance(src, b);
        if (ha == hb) continue;
        const double ba = bw.at(src, a);
        const double bb = bw.at(src, b);
        if (ba == bb) continue;
        ++comparable;
        // Fewer hops should mean more bandwidth.
        if ((ha < hb) == (ba > bb)) ++agree;
      }
    }
  }
  if (comparable == 0) return 0.5;
  return static_cast<double>(agree) / static_cast<double>(comparable);
}

std::vector<TopologyFit> fit_magny_cours_variants(
    const mem::BandwidthMatrix& bw) {
  std::vector<TopologyFit> fits;
  for (char variant : {'a', 'b', 'c', 'd'}) {
    const topo::Topology layout = topo::magny_cours_4p(variant);
    fits.push_back(TopologyFit{layout.name(),
                               hop_explanation_score(bw, layout)});
  }
  std::sort(fits.begin(), fits.end(),
            [](const TopologyFit& x, const TopologyFit& y) {
              if (x.score != y.score) return x.score > y.score;
              return x.variant_name < y.variant_name;
            });
  return fits;
}

double asymmetry_index(const mem::BandwidthMatrix& bw) {
  const int n = bw.num_nodes();
  double sum = 0.0;
  int count = 0;
  for (topo::NodeId i = 0; i < n; ++i) {
    for (topo::NodeId j = i + 1; j < n; ++j) {
      const double forward = bw.at(i, j);
      const double backward = bw.at(j, i);
      const double mean = (forward + backward) / 2.0;
      if (mean <= 0.0) continue;
      sum += std::abs(forward - backward) / mean;
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

std::vector<std::pair<topo::NodeId, topo::NodeId>> infer_adjacency(
    const mem::BandwidthMatrix& bw) {
  const int n = bw.num_nodes();
  std::vector<std::pair<topo::NodeId, topo::NodeId>> edges;
  for (topo::NodeId src = 0; src < n; ++src) {
    topo::NodeId best = -1;
    double best_bw = -1.0;
    for (topo::NodeId dst = 0; dst < n; ++dst) {
      if (dst == src) continue;
      if (bw.at(src, dst) > best_bw) {
        best_bw = bw.at(src, dst);
        best = dst;
      }
    }
    const auto edge = std::minmax(src, best);
    const std::pair<topo::NodeId, topo::NodeId> e{edge.first, edge.second};
    if (std::find(edges.begin(), edges.end(), e) == edges.end()) {
      edges.push_back(e);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

}  // namespace numaio::model
