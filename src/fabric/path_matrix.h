// Per-directed-node-pair fabric characteristics.
//
// The paper's central observation (§IV-C) is that a NUMA fabric presents
// *different* paths to different kinds of traffic:
//   - DMA/streaming traffic (device DMA engines, and the proposed
//     methodology's offloaded bulk memcpy) sees a one-way streaming path
//     with a capacity and an effective round-trip latency (which bounds
//     window-limited engines), and
//   - PIO traffic (CPU load/store loops, i.e. the STREAM benchmark) sees a
//     request/response path whose throughput is limited by outstanding-
//     request buffers, with its own — possibly very different — behaviour.
// PathCharacter carries both, per ordered node pair.
#pragma once

#include <vector>

#include "simcore/units.h"
#include "topo/routing.h"

namespace numaio::fabric {

using topo::NodeId;

struct PathCharacter {
  /// One-way streaming (DMA-engine-style) capacity src -> dst. On the
  /// diagonal this is the node's local copy limit (memory controller).
  sim::Gbps dma_cap = 0.0;
  /// Effective DMA round-trip latency src -> dst; a window-limited engine
  /// with W bits outstanding sustains at most W / dma_lat Gbps.
  sim::Ns dma_lat = 1.0;
  /// Aggregate PIO bandwidth of a full node (all cores) running a
  /// load/store copy loop: threads on node `a` (first index) touching
  /// memory on node `b` (second index). This is exactly what a node-level
  /// STREAM Copy measures.
  sim::Gbps stream_bw = 0.0;
};

/// Dense n x n matrix of PathCharacter, ordered (from, to).
/// For dma_* fields the indices mean (src, dst) of the data movement; for
/// stream_bw they mean (cpu node, memory node).
class PathMatrix {
 public:
  explicit PathMatrix(int num_nodes);

  int num_nodes() const { return n_; }
  PathCharacter& at(NodeId a, NodeId b);
  const PathCharacter& at(NodeId a, NodeId b) const;

 private:
  int n_;
  std::vector<PathCharacter> cells_;
};

/// Parameters for deriving a PathMatrix from a link-level topology, for
/// machines without a measured calibration. Defaults approximate HT 3.0 at
/// 6.4 GT/s (16-bit direction ~ 51.2 Gbps).
struct DerivedFabricParams {
  double gbps_per_width_bit = 3.2;   ///< Streaming Gbps per link width bit.
  sim::Gbps local_copy_gbps = 52.0;  ///< On-node copy (MC) limit.
  sim::Ns dma_lat_local = 300.0;
  sim::Ns dma_lat_base = 220.0;      ///< Remote DMA latency floor.
  double dma_lat_rt_factor = 2.0;    ///< Multiplier on one-way path latency.
  double pio_window_bits = 12500.0;  ///< Outstanding PIO bits per node.
  sim::Ns pio_base_ns = 430.0;       ///< Amortized local issue round trip.
  double pio_lat_factor = 2.2;       ///< Multiplier on one-way path latency.
};

/// Computes a PathMatrix from shortest-path routing: streaming capacity is
/// the min directed link width on the route times gbps_per_width_bit; DMA
/// latency and PIO bandwidth follow the routed latency.
PathMatrix derive_from_topology(const topo::Topology& topo,
                                const topo::Routing& routing,
                                const DerivedFabricParams& params);

}  // namespace numaio::fabric
