#include "fabric/machine.h"

#include <cassert>
#include <string>
#include <utility>

#include "topo/routing.h"

namespace numaio::fabric {

namespace {
std::string pair_name(NodeId a, NodeId b) {
  return "fab:" + std::to_string(a) + ">" + std::to_string(b);
}
}  // namespace

Machine::Machine(HostProfile profile, const sim::SolveOptions& solve)
    : profile_(std::move(profile)), solver_(solve) {
  const int n = profile_.num_nodes();
  fabric_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
  mc_read_.reserve(static_cast<std::size_t>(n));
  mc_write_.reserve(static_cast<std::size_t>(n));
  cpu_.reserve(static_cast<std::size_t>(n));

  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      fabric_[static_cast<std::size_t>(a * n + b)] = solver_.add_resource(
          pair_name(a, b), profile_.paths.at(a, b).dma_cap);
    }
  }

  // Fabric usage lists per ordered pair: the pair resource, plus directed
  // link resources along the routed path when the profile models
  // link-level contention.
  fabric_usages_.assign(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n), {});
  std::vector<sim::ResourceId> link_dir(profile_.topo.links().size() * 2, 0);
  if (profile_.link_level_contention) {
    for (std::size_t l = 0; l < profile_.topo.links().size(); ++l) {
      const topo::LinkSpec& link = profile_.topo.links()[l];
      link_dir[2 * l] = solver_.add_resource(
          "link:" + std::to_string(link.a) + ">" + std::to_string(link.b),
          link.width_bits_ab * profile_.link_gbps_per_width_bit);
      link_dir[2 * l + 1] = solver_.add_resource(
          "link:" + std::to_string(link.b) + ">" + std::to_string(link.a),
          link.width_bits_ba * profile_.link_gbps_per_width_bit);
    }
  }
  // Routing is only needed when links carry their own resources.
  const topo::Routing routing(profile_.topo, topo::Routing::Metric::kLatency);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      auto& usages = fabric_usages_[static_cast<std::size_t>(a * n + b)];
      usages.push_back({fabric_[static_cast<std::size_t>(a * n + b)], 1.0});
      if (!profile_.link_level_contention) continue;
      const topo::Route& route = routing.route(a, b);
      for (std::size_t i = 0; i + 1 < route.nodes.size(); ++i) {
        const int li =
            profile_.topo.link_index(route.nodes[i], route.nodes[i + 1]);
        assert(li >= 0);
        const topo::LinkSpec& link =
            profile_.topo.links()[static_cast<std::size_t>(li)];
        const bool forward = link.a == route.nodes[i];
        usages.push_back(
            {link_dir[2 * static_cast<std::size_t>(li) + (forward ? 0 : 1)],
             1.0});
      }
    }
  }
  for (NodeId i = 0; i < n; ++i) {
    const sim::Gbps local = profile_.paths.at(i, i).dma_cap;
    mc_read_.push_back(
        solver_.add_resource("mc_rd:" + std::to_string(i), local));
    mc_write_.push_back(
        solver_.add_resource("mc_wr:" + std::to_string(i), local));
    cpu_.push_back(solver_.add_resource(
        "cpu:" + std::to_string(i),
        profile_.cpu_units_per_core * topology().node(i).cores));
  }
}

namespace {
// A stalled resource keeps an epsilon of capacity so the progressive-
// filling solve stays finite; the fluid layer's control events bound the
// starvation window in time.
constexpr double kMinScale = 1e-9;
double clamp_scale(double scale) {
  return scale < kMinScale ? kMinScale : scale;
}
}  // namespace

// Scales ride on the solver's capacity factors: the calibrated base
// capacity stays in the solver (set at add_resource time) and a scale of
// 1.0 restores it bit-exactly without re-deriving it from the profile.
// The solver also skips the epoch bump when the effective capacity is
// unchanged, so re-applying the current scale keeps its solve cache warm.
void Machine::set_fabric_scale(NodeId src, NodeId dst, double scale) {
  assert(src != dst);
  assert(src >= 0 && src < num_nodes() && dst >= 0 && dst < num_nodes());
  const auto idx = static_cast<std::size_t>(src * num_nodes() + dst);
  solver_.set_capacity_factor(fabric_[idx], clamp_scale(scale));
}

double Machine::fabric_scale(NodeId src, NodeId dst) const {
  assert(src != dst);
  return solver_.capacity_factor(
      fabric_[static_cast<std::size_t>(src * num_nodes() + dst)]);
}

void Machine::set_mc_scale(NodeId node, double scale) {
  assert(node >= 0 && node < num_nodes());
  const double f = clamp_scale(scale);
  solver_.set_capacity_factor(mc_read_[static_cast<std::size_t>(node)], f);
  solver_.set_capacity_factor(mc_write_[static_cast<std::size_t>(node)], f);
}

void Machine::set_cpu_scale(NodeId node, double scale) {
  assert(node >= 0 && node < num_nodes());
  solver_.set_capacity_factor(cpu_[static_cast<std::size_t>(node)],
                              clamp_scale(scale));
}

void Machine::reset_fault_scales() {
  for (NodeId a = 0; a < num_nodes(); ++a) {
    for (NodeId b = 0; b < num_nodes(); ++b) {
      if (a == b) continue;
      set_fabric_scale(a, b, 1.0);
    }
    set_mc_scale(a, 1.0);
    set_cpu_scale(a, 1.0);
  }
}

sim::ResourceId Machine::fabric_resource(NodeId src, NodeId dst) const {
  assert(src != dst);
  assert(src >= 0 && src < num_nodes() && dst >= 0 && dst < num_nodes());
  return fabric_[static_cast<std::size_t>(src * num_nodes() + dst)];
}

sim::ResourceId Machine::mc_read(NodeId node) const {
  assert(node >= 0 && node < num_nodes());
  return mc_read_[static_cast<std::size_t>(node)];
}

sim::ResourceId Machine::mc_write(NodeId node) const {
  assert(node >= 0 && node < num_nodes());
  return mc_write_[static_cast<std::size_t>(node)];
}

sim::ResourceId Machine::cpu(NodeId node) const {
  assert(node >= 0 && node < num_nodes());
  return cpu_[static_cast<std::size_t>(node)];
}

double Machine::cpu_capacity(NodeId node) const {
  return profile_.cpu_units_per_core * topology().node(node).cores;
}

const std::vector<sim::Usage>& Machine::fabric_usages(NodeId src,
                                                      NodeId dst) const {
  assert(src != dst);
  assert(src >= 0 && src < num_nodes() && dst >= 0 && dst < num_nodes());
  return fabric_usages_[static_cast<std::size_t>(src * num_nodes() + dst)];
}

namespace {
void append(std::vector<sim::Usage>& out,
            const std::vector<sim::Usage>& extra) {
  out.insert(out.end(), extra.begin(), extra.end());
}
}  // namespace

std::vector<sim::Usage> Machine::copy_usages(NodeId via, NodeId src,
                                             NodeId dst) const {
  std::vector<sim::Usage> usages;
  usages.push_back({mc_read(src), 1.0});
  if (src != via) append(usages, fabric_usages(src, via));
  if (via != dst) append(usages, fabric_usages(via, dst));
  usages.push_back({mc_write(dst), 1.0});
  return usages;
}

std::vector<sim::Usage> Machine::dma_usages(NodeId mem_node, NodeId dev_node,
                                            bool to_device) const {
  std::vector<sim::Usage> usages;
  if (to_device) {
    usages.push_back({mc_read(mem_node), 1.0});
    if (mem_node != dev_node) {
      append(usages, fabric_usages(mem_node, dev_node));
    }
  } else {
    if (mem_node != dev_node) {
      append(usages, fabric_usages(dev_node, mem_node));
    }
    usages.push_back({mc_write(mem_node), 1.0});
  }
  return usages;
}

sim::Gbps Machine::window_rate(NodeId src, NodeId dst,
                               double window_bits) const {
  assert(window_bits > 0.0);
  return window_bits / profile_.paths.at(src, dst).dma_lat;
}

}  // namespace numaio::fabric
