// Machine: a simulated NUMA host assembled from a HostProfile.
//
// The Machine owns a FlowSolver populated with the host's shared hardware
// resources:
//   - one fabric resource per directed node pair (streaming capacity),
//   - per-node memory-controller read and write resources,
//   - per-node CPU budgets (protocol processing / interrupt handling).
// Upper layers (mem::, io::) express transfers as weighted usages of these
// resources plus their own device resources, then solve for steady-state
// rates or run fluid-time simulations.
#pragma once

#include <vector>

#include "fabric/calibration.h"
#include "simcore/flow_solver.h"

namespace numaio::fabric {

class Machine {
 public:
  /// `solve` configures the owned solver's execution engine (threads /
  /// component partitioning; simcore/solve_options.h). The default is
  /// the serial monolithic solver — bit-identical to the historical
  /// allocation.
  explicit Machine(HostProfile profile, const sim::SolveOptions& solve = {});

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const HostProfile& profile() const { return profile_; }
  const topo::Topology& topology() const { return profile_.topo; }
  int num_nodes() const { return profile_.num_nodes(); }
  int cores_per_node(NodeId node) const {
    return topology().node(node).cores;
  }

  sim::FlowSolver& solver() { return solver_; }
  const sim::FlowSolver& solver() const { return solver_; }

  const PathCharacter& path(NodeId a, NodeId b) const {
    return profile_.paths.at(a, b);
  }

  /// Fabric resource for the directed pair src -> dst (src != dst).
  sim::ResourceId fabric_resource(NodeId src, NodeId dst) const;

  /// All fabric usages of a src -> dst stream: the pair resource plus,
  /// for link-level profiles, every directed link on the routed path (so
  /// overlapping routes contend on shared links).
  const std::vector<sim::Usage>& fabric_usages(NodeId src,
                                               NodeId dst) const;
  sim::ResourceId mc_read(NodeId node) const;
  sim::ResourceId mc_write(NodeId node) const;
  sim::ResourceId cpu(NodeId node) const;

  /// Total CPU budget of a node (units; 1 unit ~ 1 Gbps of TCP work).
  double cpu_capacity(NodeId node) const;

  /// Usage footprint of a streaming memory copy executed by an engine on
  /// node `via`, loading from memory on `src` and storing to memory on
  /// `dst`: mc_read(src) [+ fabric src->via] + [fabric via->dst +]
  /// mc_write(dst). Every byte crosses each leg once.
  std::vector<sim::Usage> copy_usages(NodeId via, NodeId src,
                                      NodeId dst) const;

  /// Usage footprint of a device DMA transfer between host memory on
  /// `mem_node` and a device attached to `dev_node` (the PCIe side is the
  /// caller's own device resource): the fabric leg plus the memory
  /// controller on the host side. `to_device` true means the DMA engine
  /// reads host memory (device write direction).
  std::vector<sim::Usage> dma_usages(NodeId mem_node, NodeId dev_node,
                                     bool to_device) const;

  /// Throughput limit of a window-limited engine with `window_bits`
  /// outstanding over the src -> dst DMA path.
  sim::Gbps window_rate(NodeId src, NodeId dst, double window_bits) const;

  // --- fault-injection hooks (faults::FaultInjector) ----------------------
  // Capacity scales multiply the *calibrated* resource capacities in the
  // solver, so every consumer — fio streams, iomodel copies, STREAM runs —
  // sees the degradation through the same contention math it always used.
  // profile() keeps reporting the healthy ground truth; scale 1.0 restores
  // it. Scales clamp below at a tiny positive floor so max-min fairness
  // stays well-defined during a full stall.

  /// Scales the directed src -> dst fabric capacity (link degradation).
  void set_fabric_scale(NodeId src, NodeId dst, double scale);
  /// Scales a node's memory-controller read+write capacity (MC throttle).
  void set_mc_scale(NodeId node, double scale);
  /// Scales a node's CPU budget (IRQ storm eating protocol cycles).
  void set_cpu_scale(NodeId node, double scale);
  /// Restores every scaled capacity to its calibrated value.
  void reset_fault_scales();
  /// Current scale of the directed fabric pair (1.0 = healthy).
  double fabric_scale(NodeId src, NodeId dst) const;

 private:
  HostProfile profile_;
  sim::FlowSolver solver_;
  std::vector<sim::ResourceId> fabric_;  // n*n, diagonal unused
  std::vector<std::vector<sim::Usage>> fabric_usages_;  // n*n
  std::vector<sim::ResourceId> mc_read_;
  std::vector<sim::ResourceId> mc_write_;
  std::vector<sim::ResourceId> cpu_;
};

}  // namespace numaio::fabric
