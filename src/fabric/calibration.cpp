#include "fabric/calibration.h"

#include <array>

#include "topo/presets.h"

namespace numaio::fabric {

namespace {

// ---------------------------------------------------------------------------
// DL585 G7 calibrated ground truth.
//
// All benchmarked devices sit on node 7, so the paper pins down row 7 and
// column 7 of each matrix; the remaining cells are filled with values
// consistent with the package structure ({0,1},{2,3},{4,5},{6,7}) and the
// same directional asymmetries mirrored onto node 6.
//
// Anchors (Gbps unless noted):
//  - kDmaCap column 7 = Table IV "Proposed memcpy" (device write model):
//      {6,7} 46.5-55.9 / {0,1,4,5} 42.9-46.9 / {2,3} 26.0-27.3.
//  - kDmaCap row 7 = Table V "Proposed memcpy" (device read model):
//      {6,7} 47.1-51.2 / {2,3} 46.9-50.3 / {0,1,5} 39.9-40.9 / {4} 27.9.
//  - The weak directions ({2,3}->{6,7} and {6,7}->{4}) model unganged
//    8-bit response paths / starved buffer credits (HT allows 8- or
//    16-bit directions; the paper cites [20],[26] for exactly this kind
//    of asymmetric setup). 8 bits * 3.2 Gbps/bit = 25.6 Gbps nominal.
//  - kDmaLat row/col 7 are set so window-limited device engines reproduce
//    the Table IV/V I/O rows (see io/ engine windows):
//      e.g. RDMA_READ: 16650 bits / 910 ns = 18.3 Gbps on {0,1,5},
//      16650 / 1035 = 16.1 on {4}, device-capped 22.0 on {2,3},{6,7} --
//      reproducing the paper's inversion vs. STREAM.
//  - kStream row 7 / column 7 = Fig 3/4 anchors: cpu7/mem4 = 21.34 with
//    mem{2,3} lower; cpu4/mem7 = 18.45 with cpu{2,3} higher; node-0 local
//    boost (31.5 vs ~28 local elsewhere, the OS-residency effect of
//    §IV-A); CPU-centric {0,1} vs {2,3} ~ +88%, memory-centric ~ +43%
//    (the ratios quoted in §IV-B2).
// ---------------------------------------------------------------------------

using Row = std::array<double, 8>;
using Table = std::array<Row, 8>;

// Streaming/DMA one-way capacity, src row -> dst column.
constexpr Table kDmaCap = {{
    /*0*/ {{52.5, 47.5, 41.8, 42.4, 41.2, 43.0, 43.5, 44.0}},
    /*1*/ {{46.8, 51.0, 42.9, 42.2, 42.8, 43.3, 44.8, 45.5}},
    /*2*/ {{42.6, 43.1, 51.8, 47.2, 41.6, 42.1, 26.6, 26.0}},
    /*3*/ {{43.3, 42.5, 46.6, 51.2, 42.3, 41.8, 27.0, 27.3}},
    /*4*/ {{42.1, 42.6, 41.9, 42.7, 51.6, 47.8, 42.5, 42.9}},
    /*5*/ {{43.8, 44.1, 42.4, 41.9, 46.9, 51.3, 46.2, 46.9}},
    /*6*/ {{41.5, 41.0, 49.8, 46.3, 28.4, 40.2, 52.0, 46.5}},
    /*7*/ {{40.9, 40.4, 50.3, 46.9, 27.9, 39.9, 47.1, 53.5}},
}};

// Effective DMA round-trip latency (ns), src row -> dst column.
constexpr Table kDmaLat = {{
    /*0*/ {{300, 520, 700, 700, 700, 700, 640, 620}},
    /*1*/ {{520, 300, 700, 700, 700, 700, 630, 615}},
    /*2*/ {{700, 700, 300, 520, 700, 700, 1005, 1000}},
    /*3*/ {{700, 700, 520, 300, 700, 700, 1005, 1000}},
    /*4*/ {{700, 700, 700, 700, 300, 520, 640, 625}},
    /*5*/ {{700, 700, 700, 700, 520, 300, 615, 610}},
    /*6*/ {{905, 905, 575, 580, 1030, 905, 300, 520}},
    /*7*/ {{910, 910, 570, 570, 1035, 910, 520, 300}},
}};

// Node-level STREAM Copy bandwidth (4 threads), cpu row -> memory column.
constexpr Table kStream = {{
    /*0*/ {{31.5, 26.2, 21.8, 22.0, 21.2, 22.6, 27.2, 28.0}},
    /*1*/ {{25.9, 27.8, 22.1, 21.7, 21.5, 22.2, 26.8, 27.4}},
    /*2*/ {{21.6, 21.9, 28.4, 25.7, 20.8, 21.1, 18.8, 19.2}},
    /*3*/ {{22.0, 21.5, 25.4, 27.9, 21.0, 20.7, 19.1, 19.6}},
    /*4*/ {{21.3, 21.6, 20.9, 21.2, 28.6, 25.9, 18.9, 18.45}},
    /*5*/ {{22.4, 22.7, 21.3, 20.9, 25.6, 28.1, 21.0, 21.5}},
    /*6*/ {{25.8, 25.2, 14.6, 14.2, 21.0, 22.4, 29.2, 26.2}},
    /*7*/ {{26.5, 25.9, 14.0, 13.8, 21.34, 23.0, 25.5, 29.0}},
}};

}  // namespace

HostProfile dl585_profile() {
  topo::Topology topo = topo::dl585_g7();
  PathMatrix paths(topo.num_nodes());
  for (NodeId a = 0; a < 8; ++a) {
    for (NodeId b = 0; b < 8; ++b) {
      PathCharacter& c = paths.at(a, b);
      const auto ai = static_cast<std::size_t>(a);
      const auto bi = static_cast<std::size_t>(b);
      c.dma_cap = kDmaCap[ai][bi];
      c.dma_lat = kDmaLat[ai][bi];
      c.stream_bw = kStream[ai][bi];
    }
  }
  HostProfile profile{"hp-dl585-g7", std::move(topo), std::move(paths)};
  profile.cpu_units_per_core = 7.0;
  return profile;
}

HostProfile pair_profile(const HostProfile& host) {
  const int n = host.num_nodes();

  // Duplicate the node list; host B's packages are offset past A's.
  std::vector<topo::NodeSpec> nodes;
  nodes.reserve(static_cast<std::size_t>(2 * n));
  for (int copy = 0; copy < 2; ++copy) {
    for (NodeId i = 0; i < n; ++i) {
      topo::NodeSpec spec = host.topo.node(i);
      spec.package += copy * host.topo.num_packages();
      nodes.push_back(spec);
    }
  }
  // Duplicate the links. A 2-bit pseudo-link joins the two copies only to
  // satisfy the connectivity validator: the pair's fabric matrices are
  // block-diagonal and link-level contention is disabled, so no transfer
  // ever routes across it — inter-host traffic rides NICs and the wire
  // (io::HostPair).
  std::vector<topo::LinkSpec> links;
  for (int copy = 0; copy < 2; ++copy) {
    for (const topo::LinkSpec& l : host.topo.links()) {
      topo::LinkSpec dup = l;
      dup.a += copy * n;
      dup.b += copy * n;
      links.push_back(dup);
    }
  }
  links.push_back(topo::LinkSpec{0, n, 2.0, 2.0, 1.0e6});

  PathMatrix paths(2 * n);
  for (NodeId a = 0; a < 2 * n; ++a) {
    for (NodeId b = 0; b < 2 * n; ++b) {
      PathCharacter& c = paths.at(a, b);
      if (a / n == b / n) {
        c = host.paths.at(a % n, b % n);
      } else {
        // Cross-host coherent access does not exist; keep the entries
        // valid but absurd so any accidental use is unmistakable.
        c.dma_cap = 0.01;
        c.dma_lat = 1.0e9;
        c.stream_bw = 0.01;
      }
    }
  }

  HostProfile pair{host.name + "-pair",
                   topo::Topology::build(host.name + "-pair",
                                         std::move(nodes), std::move(links)),
                   std::move(paths)};
  pair.cpu_units_per_core = host.cpu_units_per_core;
  pair.llc_mb = host.llc_mb;
  pair.node0_local_stream_boost = host.node0_local_stream_boost;
  pair.link_level_contention = false;
  return pair;
}

HostProfile derived_profile(const topo::Topology& topo,
                            const DerivedFabricParams& params) {
  const topo::Routing routing(topo, topo::Routing::Metric::kLatency);
  PathMatrix paths = derive_from_topology(topo, routing, params);
  HostProfile profile{topo.name(), topo, std::move(paths)};
  profile.link_level_contention = true;
  profile.link_gbps_per_width_bit = params.gbps_per_width_bit;
  return profile;
}

}  // namespace numaio::fabric
