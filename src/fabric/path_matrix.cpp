#include "fabric/path_matrix.h"

#include <algorithm>
#include <cassert>

namespace numaio::fabric {

PathMatrix::PathMatrix(int num_nodes) : n_(num_nodes) {
  assert(num_nodes > 0);
  cells_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
}

PathCharacter& PathMatrix::at(NodeId a, NodeId b) {
  assert(a >= 0 && a < n_ && b >= 0 && b < n_);
  return cells_[static_cast<std::size_t>(a) * static_cast<std::size_t>(n_) +
                static_cast<std::size_t>(b)];
}

const PathCharacter& PathMatrix::at(NodeId a, NodeId b) const {
  return const_cast<PathMatrix*>(this)->at(a, b);
}

PathMatrix derive_from_topology(const topo::Topology& topo,
                                const topo::Routing& routing,
                                const DerivedFabricParams& params) {
  const int n = topo.num_nodes();
  PathMatrix m(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      PathCharacter& c = m.at(a, b);
      if (a == b) {
        c.dma_cap = params.local_copy_gbps;
        c.dma_lat = params.dma_lat_local;
        c.stream_bw = params.pio_window_bits / params.pio_base_ns;
        continue;
      }
      // Streaming capacity: narrowest directed link width along the route.
      const topo::Route& route = routing.route(a, b);
      double min_width = 1e9;
      for (std::size_t i = 0; i + 1 < route.nodes.size(); ++i) {
        min_width = std::min(
            min_width, topo.direction_width(route.nodes[i], route.nodes[i + 1]));
      }
      c.dma_cap = std::min(params.local_copy_gbps,
                           min_width * params.gbps_per_width_bit);
      const sim::Ns one_way = routing.path_latency(a, b);
      c.dma_lat = params.dma_lat_base + params.dma_lat_rt_factor * one_way;
      c.stream_bw = params.pio_window_bits /
                    (params.pio_base_ns + params.pio_lat_factor * one_way);
    }
  }
  return m;
}

}  // namespace numaio::fabric
