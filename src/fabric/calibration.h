// Host profiles: a topology plus the fabric ground truth a Machine runs on.
//
// The dl585 profile is the simulated stand-in for the paper's testbed
// (HP ProLiant DL585 G7, Table II). Its matrices are *calibrated*: the
// directed capacities, DMA latencies, and STREAM bandwidths are chosen so
// that every published number and ordering in the paper emerges from the
// simulation (the anchors are cited cell by cell in calibration.cpp).
// Everything downstream — STREAM characterization, fio-style I/O runs, the
// iomodel methodology — *measures* this ground truth through the same
// procedures the paper used; nothing downstream reads these tables
// directly.
#pragma once

#include <string>
#include <vector>

#include "fabric/path_matrix.h"
#include "topo/topology.h"

namespace numaio::fabric {

struct HostProfile {
  std::string name;
  topo::Topology topo;
  PathMatrix paths;

  /// Protocol-processing capacity per core, in "Gbps of TCP-equivalent
  /// work". A node's CPU resource capacity is cores * this.
  double cpu_units_per_core = 7.0;

  /// Last-level cache per die, MB (Table II: 5 MB on the Opteron 6136).
  /// STREAM's array-sizing rule (arrays >= 4x LLC) is checked against this.
  double llc_mb = 5.0;

  /// Extra multiplier on node 0's *local* STREAM bandwidth. The paper
  /// observed node 0 outperforming other local bindings because OS buffers
  /// and shared libraries resident on node 0 warm its caches/pages (§IV-A);
  /// the dl585 profile folds this into the calibrated stream matrix and
  /// leaves this at 1.0, but derived profiles may set it.
  double node0_local_stream_boost = 1.0;

  /// When true the Machine also models contention on the *individual
  /// interconnect links*: overlapping routes share directed link capacity
  /// (width * link_gbps_per_width_bit), so e.g. two streams whose shortest
  /// paths cross the same HT link contend even though their endpoints
  /// differ. Derived profiles enable this (the wiring is known); the
  /// calibrated DL585 profile keeps endpoint/path contention only (its
  /// matrices are measurements, not wiring).
  bool link_level_contention = false;
  double link_gbps_per_width_bit = 3.2;

  int num_nodes() const { return topo.num_nodes(); }
};

/// The paper's testbed host (8 nodes, devices on node 7). See Table II.
HostProfile dl585_profile();

/// A profile for an arbitrary topology with fabric characteristics derived
/// from link widths and latencies (no measured calibration).
HostProfile derived_profile(const topo::Topology& topo,
                            const DerivedFabricParams& params = {});

/// Two identical hosts in one resource network: nodes [0, n) are host A,
/// [n, 2n) host B, with block-diagonal fabric matrices (no coherent path
/// crosses hosts — inter-host traffic rides NICs and a wire, modelled by
/// io::HostPair). The paper's network experiments use exactly this
/// "another identical host" arrangement (Fig 2).
HostProfile pair_profile(const HostProfile& host);

/// Maps a node id of host B into the pair profile's numbering.
inline NodeId pair_peer_node(const HostProfile& single, NodeId node) {
  return node + single.num_nodes();
}

}  // namespace numaio::fabric
