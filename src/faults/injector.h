// FaultInjector: executes a FaultPlan against a fabric::Machine.
//
// Every fault becomes a sequence of timed *transitions* (fault-on /
// fault-off boundaries; a flap event contributes one pair per dead
// window). Applying a transition recomputes the complete degradation state
// at that instant — the product of all active faults per resource — and
// writes it into the machine through its fault-scale hooks, so overlapping
// faults compose multiplicatively and releasing one fault never forgets
// another that is still active.
//
// Two driving modes, freely mixable along one timeline:
//  - arm(fluid): transitions become FluidSimulation control events, so
//    rates re-solve exactly at each fault boundary (fio runs, the online
//    scheduler);
//  - advance_to(t): applies all transitions up to logical time t directly
//    (measurement loops that take solver snapshots, e.g. Algorithm 1's
//    repetition sweep).
//
// The injector records every applied transition; trace_to_string() renders
// them deterministically — two runs with the same plan produce
// byte-identical traces, which tests and the CLI rely on.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "fabric/machine.h"
#include "faults/fault_plan.h"
#include "obs/obs.h"
#include "simcore/fluid_sim.h"

namespace numaio::faults {

class FaultInjector {
 public:
  /// Validates the plan against the machine (device events additionally
  /// need register_device() before arm/advance touches them).
  FaultInjector(fabric::Machine& machine, FaultPlan plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers a device's solver resources (engine occupancy + PCIe data
  /// resources) for kDeviceStall events. Returns the device index the
  /// plan's FaultEvent::device refers to.
  int register_device(std::string name, NodeId attach_node,
                      std::vector<sim::ResourceId> resources);
  int num_devices() const { return static_cast<int>(devices_.size()); }
  /// Index of a registered device by name; -1 when unknown. Consumers that
  /// receive a stall callback use this to map their own device handles to
  /// the plan's indices.
  int device_index(std::string_view name) const;

  /// Called when a device-stall window opens (after capacities drop), so
  /// the owner can abort in-flight transfers on that device.
  using StallHandler = std::function<void(int device, sim::Ns at)>;
  void set_stall_handler(StallHandler handler);

  /// Called after *every* applied transition (trace line and obs event
  /// already emitted, so last_transition_event() is the cause id). The
  /// fleet layer uses this to react to host crash/hang/recover
  /// boundaries; `on` is true when the fault window opens.
  using TransitionHandler =
      std::function<void(const FaultEvent& event, bool on, sim::Ns at)>;
  void set_transition_handler(TransitionHandler handler);

  /// Schedules every not-yet-applied transition as a control event.
  void arm(sim::FluidSimulation& fluid);

  /// Applies all transitions with time <= t (no-op for times already
  /// passed). Keeps the machine in the degraded state of time t.
  void advance_to(sim::Ns t);

  /// Restores every capacity to healthy. Applied-transition history and
  /// the timeline cursor are kept; use rewind() to replay from t = 0.
  void restore();

  /// restore() + clears the trace and the cursor, for a fresh run.
  void rewind();

  // --- state queries (pure functions of the plan, usable at any time) ----
  /// Product of all active noise amplifications at time t (>= 1).
  double noise_amplification(sim::Ns t) const;
  bool device_stalled(int device, sim::Ns t) const;
  /// True when any capacity-affecting fault is active at time t.
  bool any_capacity_fault_active(sim::Ns t) const;
  /// Nodes touched by active capacity faults at time t (sorted, unique):
  /// endpoints of degraded links, throttled MCs, stormed nodes, and the
  /// attach node of stalled devices. The online scheduler steers clear of
  /// these.
  std::vector<NodeId> degraded_nodes(sim::Ns t) const;
  /// Time of the first transition after t; +inf when none remain.
  sim::Ns next_transition_after(sim::Ns t) const;

  // --- host-level queries (fleet host ids, not NUMA nodes) ---------------
  /// True while a kHostCrash window covers t.
  bool host_crashed(int host, sim::Ns t) const;
  /// True while a kHostHang window covers t.
  bool host_hung(int host, sim::Ns t) const;
  /// Product of (1 - severity) over active kHostRecover windows: the
  /// warm-up capacity multiplier in (0, 1]. Crash/hang are not folded in —
  /// callers gate on host_crashed/host_hung first.
  double host_capacity_factor(int host, sim::Ns t) const;

  const FaultPlan& plan() const { return plan_; }
  fabric::Machine& machine() { return machine_; }

  /// One line per applied transition, byte-identical across same-seed runs.
  std::string trace_to_string() const;
  std::size_t transitions_applied() const { return cursor_; }

  /// Attaches an observability context (nullptr detaches). Every applied
  /// transition then emits a `fault.transition` instant event and bumps
  /// `faults.transitions`; consumers correlate their abort/retry events to
  /// the transition that caused them via last_transition_event().
  void set_observer(obs::Context* obs);
  /// Trace-event id of the most recently applied transition (0 when none
  /// was recorded). The stall handler runs after the transition event is
  /// emitted, so it can already cite this id.
  obs::EventId last_transition_event() const {
    return last_transition_event_;
  }

 private:
  struct Transition {
    sim::Ns at = 0.0;
    std::size_t event = 0;  ///< Index into plan_.events().
    bool on = false;        ///< Fault (or dead flap window) begins here.
    int flap = 0;           ///< Dead-window ordinal for kLinkFlap (1-based).
  };
  struct Device {
    std::string name;
    NodeId attach_node = 0;
    std::vector<sim::ResourceId> resources;
    std::vector<sim::Gbps> healthy_capacity;
  };

  /// Capacity multiplier contributed by event e at time t (1 = inactive).
  double event_factor(const FaultEvent& e, sim::Ns t) const;
  bool event_active(const FaultEvent& e, sim::Ns t) const;
  void apply_state_at(sim::Ns t);
  void apply_transition(std::size_t index);

  fabric::Machine& machine_;
  FaultPlan plan_;
  std::vector<Transition> transitions_;  // ascending (at, event, !on)
  std::vector<Device> devices_;
  std::vector<bool> stalled_applied_;    // per device, currently applied
  StallHandler stall_handler_;
  TransitionHandler transition_handler_;
  std::size_t cursor_ = 0;               // next transition to apply
  std::vector<std::string> trace_;

  obs::Context* obs_ = nullptr;
  obs::MetricsRegistry::Id m_transitions_ = obs::MetricsRegistry::kNone;
  obs::EventId last_transition_event_ = 0;
};

}  // namespace numaio::faults
