// Deterministic fault schedules against a simulated NUMA host.
//
// The paper characterizes a healthy, static machine; its §VI future work
// (online placement/migration, directional-anomaly diagnosis) only matters
// when the machine changes under the workload. A FaultPlan is the ground
// truth of such change: a seeded, validated list of timed fault events —
// directed-link degradation and flapping, memory-controller throttling,
// PCIe device stalls, IRQ storms, and measurement-noise amplification.
// The plan itself is pure data; faults::FaultInjector turns it into
// capacity transitions on a fabric::Machine so all degradation flows
// through the existing FlowSolver contention math.
//
// Determinism guarantee: FaultPlan::random(seed, ...) is a pure function
// of its arguments, and the injector's applied-transition trace renders to
// byte-identical text across runs with the same seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/units.h"
#include "topo/topology.h"

namespace numaio::faults {

using topo::NodeId;

enum class FaultKind {
  kLinkDegrade,   ///< Directed fabric pair loses (severity) of its capacity.
  kLinkFlap,      ///< The pair cycles dead/alive `flaps` times in the window.
  kMcThrottle,    ///< A node's memory controller is throttled.
  kDeviceStall,   ///< A registered PCIe device goes dark; in-flight I/O aborts.
  kIrqStorm,      ///< Interrupt flood burns a node's CPU budget.
  kMeasureNoise,  ///< Repetition noise turns heavy-tailed (amplified).
  // Host-level kinds, consumed by the fleet serving core (src/fleet):
  // `host` indexes a fleet host, a different id space from NUMA nodes.
  kHostCrash,     ///< The whole host dies; in-flight requests are lost.
  kHostHang,      ///< The host freezes: no progress, nothing is lost.
  kHostRecover,   ///< Post-crash warm-up: capacity reduced by `severity`.
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kLinkDegrade;
  sim::Ns start = 0.0;
  sim::Ns duration = 0.0;
  /// Directed pair for link faults (src -> dst).
  NodeId src = -1;
  NodeId dst = -1;
  /// Node for kMcThrottle / kIrqStorm.
  NodeId node = -1;
  /// Index of a device registered with the injector, for kDeviceStall.
  int device = -1;
  /// Fleet host index for the kHost* kinds.
  int host = -1;
  /// Fraction of capacity removed while active (link/MC/IRQ faults and
  /// kHostRecover), or the noise multiplier minus one for kMeasureNoise.
  /// In [0, 1] for capacity faults; >= 0 for noise.
  double severity = 0.5;
  /// kLinkFlap: number of dead windows inside [start, start+duration].
  int flaps = 1;
};

/// Standard config aggregate (DESIGN.md §11 "Config aggregates"), same
/// shape as mem::StreamConfig / io::StreamSpec / sim::SolveOptions.
struct RandomPlanConfig {
  /// Seed and host shape for the config-aggregate random() overload; the
  /// deprecated positional overload overwrites these from its arguments.
  std::uint64_t seed = 0;
  int num_nodes = 0;
  /// Device-stall events are only drawn when num_devices > 0.
  int num_devices = 0;
  /// Fleet width: host-level events (crash/hang/recover) are only drawn
  /// when num_hosts > 0. Zero keeps plans byte-identical to pre-fleet
  /// seeds.
  int num_hosts = 0;
  int num_events = 4;
  sim::Ns horizon = 30.0e9;         ///< Events start within [0, horizon).
  sim::Ns min_duration = 0.5e9;
  sim::Ns max_duration = 6.0e9;
  double min_severity = 0.3;
  double max_severity = 0.9;
  int max_flaps = 4;
  /// Noise events amplify rep noise by up to this factor.
  double max_noise_amplification = 8.0;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  void add(FaultEvent event) { events_.push_back(event); }
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Throws std::invalid_argument when any event is malformed for a host
  /// with `num_nodes` nodes and `num_devices` registered devices (bad
  /// node ids, negative windows, out-of-range severity, ...). `num_hosts`
  /// bounds the host index of the kHost* kinds; pass -1 to check only
  /// that host indices are non-negative (a consumer that registers hosts
  /// later, like the injector does for devices).
  void validate(int num_nodes, int num_devices, int num_hosts = -1) const;

  /// A seeded random plan: identical configs yield an identical plan. The
  /// config aggregate carries the seed and host shape (seed / num_nodes /
  /// num_devices) alongside the event-distribution knobs.
  static FaultPlan random(const RandomPlanConfig& config);

  /// Deprecated: positional seed/shape arguments predate the config
  /// aggregate; prefer random(RandomPlanConfig). This overload copies
  /// `config` and overwrites its seed/num_nodes/num_devices fields from
  /// the positional arguments.
  static FaultPlan random(std::uint64_t seed, int num_nodes, int num_devices,
                          const RandomPlanConfig& config = {});

  /// Deterministic one-line-per-event rendering (for logs and tests).
  std::string to_string() const;

 private:
  std::vector<FaultEvent> events_;
};

/// Parses the fault-plan file format (docs/FORMATS.md §6): one event per
/// line, `<kind> key=value ...`, `#` comments and blank lines skipped.
/// Durations accept s/ms/us/ns suffixes (bare numbers are seconds).
/// Throws numaio::StatusError(kParse) with the offending line number on a
/// duplicate key, an unknown kind or key, a missing required key, or an
/// unparseable value. Syntax only — range errors (zero durations, bad
/// ids) are FaultPlan::validate's job.
FaultPlan parse_fault_plan(const std::string& text);

/// Renders a plan in the file format above; `parse_fault_plan(
/// render_fault_plan(plan))` round-trips every field the kind uses.
std::string render_fault_plan(const FaultPlan& plan);

}  // namespace numaio::faults
