#include "faults/fault_plan.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "simcore/rng.h"

namespace numaio::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDegrade:
      return "link-degrade";
    case FaultKind::kLinkFlap:
      return "link-flap";
    case FaultKind::kMcThrottle:
      return "mc-throttle";
    case FaultKind::kDeviceStall:
      return "device-stall";
    case FaultKind::kIrqStorm:
      return "irq-storm";
    case FaultKind::kMeasureNoise:
      return "measure-noise";
  }
  return "?";
}

namespace {

[[noreturn]] void bad(std::size_t index, const std::string& what) {
  throw std::invalid_argument("fault event " + std::to_string(index) + ": " +
                              what);
}

}  // namespace

void FaultPlan::validate(int num_nodes, int num_devices) const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    if (e.start < 0.0 || !std::isfinite(e.start)) bad(i, "negative start");
    if (e.duration <= 0.0 || !std::isfinite(e.duration)) {
      bad(i, "non-positive duration");
    }
    switch (e.kind) {
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkFlap:
        if (e.src < 0 || e.src >= num_nodes || e.dst < 0 ||
            e.dst >= num_nodes || e.src == e.dst) {
          bad(i, "link fault needs a valid directed node pair");
        }
        if (e.kind == FaultKind::kLinkFlap && e.flaps < 1) {
          bad(i, "flap count must be >= 1");
        }
        break;
      case FaultKind::kMcThrottle:
      case FaultKind::kIrqStorm:
        if (e.node < 0 || e.node >= num_nodes) bad(i, "node out of range");
        break;
      case FaultKind::kDeviceStall:
        if (e.device < 0 || e.device >= num_devices) {
          bad(i, "device index out of range");
        }
        break;
      case FaultKind::kMeasureNoise:
        break;
    }
    if (e.kind == FaultKind::kMeasureNoise) {
      if (e.severity < 0.0) bad(i, "noise amplification must be >= 0");
    } else if (e.severity < 0.0 || e.severity > 1.0) {
      bad(i, "severity must be in [0, 1]");
    }
  }
}

FaultPlan FaultPlan::random(std::uint64_t seed, int num_nodes,
                            int num_devices, const RandomPlanConfig& config) {
  RandomPlanConfig merged = config;
  merged.seed = seed;
  merged.num_nodes = num_nodes;
  merged.num_devices = num_devices;
  return random(merged);
}

FaultPlan FaultPlan::random(const RandomPlanConfig& config) {
  const int num_nodes = config.num_nodes;
  const int num_devices = config.num_devices;
  if (num_nodes < 2) {
    throw std::invalid_argument("random fault plan needs >= 2 nodes");
  }
  sim::Rng rng = sim::Rng(config.seed).fork(0x6661756c74u);  // "fault"
  FaultPlan plan;
  for (int i = 0; i < config.num_events; ++i) {
    FaultEvent e;
    // Draw a kind; skip device stalls when no device is registered.
    const int num_kinds = num_devices > 0 ? 6 : 5;
    int k = static_cast<int>(rng.below(static_cast<std::uint64_t>(num_kinds)));
    if (num_devices == 0 && k >= static_cast<int>(FaultKind::kDeviceStall)) {
      ++k;  // remap {3,4} -> {kIrqStorm, kMeasureNoise}
    }
    e.kind = static_cast<FaultKind>(k);
    e.start = rng.uniform(0.0, config.horizon);
    e.duration = rng.uniform(config.min_duration, config.max_duration);
    e.severity = rng.uniform(config.min_severity, config.max_severity);
    switch (e.kind) {
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkFlap: {
        e.src = static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(num_nodes)));
        e.dst = static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(num_nodes - 1)));
        if (e.dst >= e.src) ++e.dst;
        e.flaps = 1 + static_cast<int>(rng.below(
                          static_cast<std::uint64_t>(config.max_flaps)));
        break;
      }
      case FaultKind::kMcThrottle:
      case FaultKind::kIrqStorm:
        e.node = static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(num_nodes)));
        break;
      case FaultKind::kDeviceStall:
        e.device = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(num_devices)));
        break;
      case FaultKind::kMeasureNoise:
        e.severity =
            rng.uniform(1.0, config.max_noise_amplification) - 1.0;
        break;
    }
    plan.add(e);
  }
  plan.validate(num_nodes, num_devices);
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  char buf[160];
  for (const FaultEvent& e : events_) {
    switch (e.kind) {
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkFlap:
        std::snprintf(buf, sizeof buf,
                      "%-13s %d>%d start %.3fs dur %.3fs sev %.2f flaps %d\n",
                      faults::to_string(e.kind), e.src, e.dst, e.start / 1e9,
                      e.duration / 1e9, e.severity,
                      e.kind == FaultKind::kLinkFlap ? e.flaps : 0);
        break;
      case FaultKind::kMcThrottle:
      case FaultKind::kIrqStorm:
        std::snprintf(buf, sizeof buf,
                      "%-13s node %d start %.3fs dur %.3fs sev %.2f\n",
                      faults::to_string(e.kind), e.node, e.start / 1e9,
                      e.duration / 1e9, e.severity);
        break;
      case FaultKind::kDeviceStall:
        std::snprintf(buf, sizeof buf,
                      "%-13s device %d start %.3fs dur %.3fs\n",
                      faults::to_string(e.kind), e.device, e.start / 1e9,
                      e.duration / 1e9);
        break;
      case FaultKind::kMeasureNoise:
        std::snprintf(buf, sizeof buf,
                      "%-13s start %.3fs dur %.3fs amp %.2fx\n",
                      faults::to_string(e.kind), e.start / 1e9,
                      e.duration / 1e9, 1.0 + e.severity);
        break;
    }
    out += buf;
  }
  return out;
}

}  // namespace numaio::faults
